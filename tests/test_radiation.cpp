#include <gtest/gtest.h>

#include "core/vscrub.h"

namespace vscrub {
namespace {

TEST(Weibull, ThresholdAndSaturation) {
  WeibullCrossSection xs;
  EXPECT_EQ(xs.at(0.5), 0.0);
  EXPECT_EQ(xs.at(1.2), 0.0);
  EXPECT_GT(xs.at(2.0), 0.0);
  EXPECT_LT(xs.at(2.0), xs.at(10.0));
  EXPECT_NEAR(xs.at(125.0), xs.sat_cross_section, xs.sat_cross_section * 0.01);
}

TEST(Orbit, PaperUpsetRates) {
  // Paper §I: the nine-FPGA system sees 1.2 upsets/hour in quiet LEO and
  // 9.6 upsets/hour during solar flares.
  const auto quiet = OrbitEnvironment::leo_quiet();
  const auto flare = OrbitEnvironment::leo_solar_flare();
  EXPECT_NEAR(quiet.system_upsets_per_hour(kXcv1000PaperBits, 9), 1.2, 0.01);
  EXPECT_NEAR(flare.system_upsets_per_hour(kXcv1000PaperBits, 9), 9.6, 0.05);
  EXPECT_NEAR(flare.upset_rate_per_bit_s / quiet.upset_rate_per_bit_s, 8.0,
              0.01);
}

class BeamFixture : public ::testing::Test {
 protected:
  // The fixture design is feed-forward (multiply-add): its configuration
  // sensitivity is independent of machine state, so an exhaustive injection
  // campaign gives a complete prediction of beam behaviour.
  static void SetUpTestSuite() {
    design_ = new PlacedDesign(
        compile(designs::multiply_add(6), device_tiny(8, 8)));
    CampaignOptions copts;  // exhaustive, to get the complete sensitive set
    copts.injection.classify_persistence = false;
    predicted_ = new std::unordered_set<u64>(
        run_campaign(*design_, copts).sensitive_set(*design_));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete predicted_;
    design_ = nullptr;
    predicted_ = nullptr;
  }
  static PlacedDesign* design_;
  static std::unordered_set<u64>* predicted_;
};

PlacedDesign* BeamFixture::design_ = nullptr;
std::unordered_set<u64>* BeamFixture::predicted_ = nullptr;

TEST_F(BeamFixture, UpsetCountApproximatesTarget) {
  BeamOptions opts;
  BeamSession session(*design_, opts);
  const auto r = session.run(300, *predicted_);
  EXPECT_EQ(r.observations, 300u);
  // ~1 upset per observation (Poisson).
  EXPECT_NEAR(static_cast<double>(r.upsets_total), 300.0, 60.0);
  EXPECT_GT(r.upsets_config, r.upsets_halflatch);
}

TEST_F(BeamFixture, HighCorrelationWithSimulatorPredictions) {
  BeamOptions opts;
  opts.seed = 77;
  BeamSession session(*design_, opts);
  const auto r = session.run(600, *predicted_);
  ASSERT_GT(r.output_error_observations, 10u);
  // Paper §III-B: 97.6% of beam-observed output errors were predicted by
  // the SEU simulator; the residue comes from hidden state.
  EXPECT_GT(r.correlation(), 0.90);
  EXPECT_EQ(r.predicted_errors + r.unpredicted_errors,
            r.output_error_observations);
}

TEST_F(BeamFixture, PureConfigBeamIsFullyPredicted) {
  BeamOptions opts;
  opts.hidden_state_fraction = 0.0;  // no hidden state: simulator sees all
  BeamSession session(*design_, opts);
  const auto r = session.run(400, *predicted_);
  ASSERT_GT(r.output_error_observations, 5u);
  EXPECT_EQ(r.unpredicted_errors, 0u);
  EXPECT_DOUBLE_EQ(r.correlation(), 1.0);
}

TEST_F(BeamFixture, RepairsFollowDetections) {
  BeamOptions opts;
  BeamSession session(*design_, opts);
  const auto r = session.run(200, *predicted_);
  EXPECT_EQ(r.bitstream_errors_detected, r.upsets_config);
  // Readback repairs at least one frame per detected upset observation,
  // possibly more (collateral corruption), never without a detection.
  EXPECT_GT(r.repairs, 0u);
  if (r.bitstream_errors_detected == 0) {
    EXPECT_EQ(r.repairs, 0u);
  }
}

TEST_F(BeamFixture, LoopIterationNear430us) {
  BeamOptions opts;
  BeamSession session(*design_, opts);
  const auto r = session.run(1, *predicted_);
  // Paper §III-B: "Each iteration of the test loop takes about 430 us".
  EXPECT_NEAR(r.loop_iteration_time.us(), 430.0, 45.0);
}

TEST_F(BeamFixture, HiddenStateOnlyBeamProducesUnpredictedErrors) {
  BeamOptions opts;
  opts.hidden_state_fraction = 1.0;  // beam tuned onto hidden state
  opts.config_logic_fraction = 0.0;
  opts.target_upsets_per_observation = 4.0;
  BeamSession session(*design_, opts);
  const auto r = session.run(300, *predicted_);
  EXPECT_EQ(r.upsets_config, 0u);
  EXPECT_GT(r.upsets_halflatch, 0u);
  if (r.output_error_observations > 0) {
    EXPECT_EQ(r.predicted_errors, 0u);
  }
}

TEST_F(BeamFixture, ConfigLogicHitsUnprogramTheDevice) {
  BeamOptions opts;
  opts.hidden_state_fraction = 1.0;
  opts.config_logic_fraction = 1.0;
  BeamSession session(*design_, opts);
  const auto r = session.run(50, *predicted_);
  EXPECT_EQ(r.unprogrammed_events, r.upsets_config_logic);
  EXPECT_GE(r.full_reconfigs, r.unprogrammed_events);
}

}  // namespace
}  // namespace vscrub
