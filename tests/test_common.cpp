#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bitvector.h"
#include "common/crc.h"
#include "common/ecc.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace vscrub {
namespace {

TEST(BitVector, SetGetFlip) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.popcount(), 0u);
  bv.set(0, true);
  bv.set(64, true);
  bv.set(129, true);
  EXPECT_TRUE(bv.get(0));
  EXPECT_TRUE(bv.get(64));
  EXPECT_TRUE(bv.get(129));
  EXPECT_FALSE(bv.get(1));
  EXPECT_EQ(bv.popcount(), 3u);
  bv.flip(64);
  EXPECT_FALSE(bv.get(64));
  EXPECT_EQ(bv.popcount(), 2u);
}

TEST(BitVector, WordAtCrossesBoundary) {
  BitVector bv(128);
  bv.set_word_at(60, 10, 0x3FF);
  for (std::size_t i = 60; i < 70; ++i) EXPECT_TRUE(bv.get(i)) << i;
  EXPECT_FALSE(bv.get(59));
  EXPECT_FALSE(bv.get(70));
  EXPECT_EQ(bv.word_at(60, 10), 0x3FFu);
  EXPECT_EQ(bv.word_at(58, 14), 0x3FFu << 2);
}

TEST(BitVector, BytesRoundTrip) {
  BitVector bv(77);
  Rng rng(3);
  for (std::size_t i = 0; i < bv.size(); ++i) bv.set(i, rng.next() & 1);
  const auto bytes = bv.to_bytes();
  EXPECT_EQ(bytes.size(), 10u);
  const BitVector back = BitVector::from_bytes(bytes, 77);
  EXPECT_EQ(bv, back);
}

TEST(BitVector, HammingAndFirstDifference) {
  BitVector a(200), b(200);
  EXPECT_EQ(a.first_difference(b), 200u);
  b.set(77, true);
  b.set(150, true);
  EXPECT_EQ(a.first_difference(b), 77u);
  EXPECT_EQ(a.hamming_distance(b), 2u);
}

TEST(Crc, KnownVectors) {
  const std::vector<u8> check = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(check), 0x29B1);  // CRC-16/CCITT-FALSE check value
  EXPECT_EQ(crc32(check), 0xCBF43926u);   // CRC-32 check value
}

TEST(Crc, IncrementalMatchesOneShot) {
  std::vector<u8> data(257);
  Rng rng(11);
  for (auto& b : data) b = static_cast<u8>(rng.next());
  u32 state = crc32_init();
  state = crc32_update(state, std::span<const u8>(data.data(), 100));
  state = crc32_update(state, std::span<const u8>(data.data() + 100, 157));
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Crc, DetectsSingleBitFlips) {
  std::vector<u8> data(156, 0xA5);
  const u16 golden = crc16_ccitt(data);
  for (int i = 0; i < 156 * 8; i += 37) {
    auto copy = data;
    copy[static_cast<std::size_t>(i / 8)] ^= static_cast<u8>(1u << (i % 8));
    EXPECT_NE(crc16_ccitt(copy), golden) << "missed flip at bit " << i;
  }
}

TEST(Ecc, CleanRoundTrip) {
  for (u64 v : {u64{0}, u64{1}, ~u64{0}, u64{0xDEADBEEFCAFEBABE}}) {
    const EccWord w = ecc_encode(v);
    const auto r = ecc_decode(w);
    EXPECT_EQ(r.status, EccStatus::kClean);
    EXPECT_EQ(r.data, v);
  }
}

TEST(Ecc, CorrectsEverySingleDataBit) {
  const u64 v = 0x0123456789ABCDEF;
  for (int bit = 0; bit < 64; ++bit) {
    EccWord w = ecc_encode(v);
    w.data ^= u64{1} << bit;
    const auto r = ecc_decode(w);
    EXPECT_EQ(r.status, EccStatus::kCorrectedData) << bit;
    EXPECT_EQ(r.data, v) << bit;
  }
}

TEST(Ecc, CorrectsCheckBitErrors) {
  const u64 v = 0xFEDCBA9876543210;
  for (int bit = 0; bit < 8; ++bit) {
    EccWord w = ecc_encode(v);
    w.check ^= static_cast<u8>(1u << bit);
    const auto r = ecc_decode(w);
    EXPECT_EQ(r.status, EccStatus::kCorrectedCheck) << bit;
    EXPECT_EQ(r.data, v) << bit;
  }
}

TEST(Ecc, DetectsDoubleErrors) {
  const u64 v = 0x5555AAAA5555AAAA;
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    EccWord w = ecc_encode(v);
    const int b1 = static_cast<int>(rng.uniform(64));
    int b2 = static_cast<int>(rng.uniform(64));
    while (b2 == b1) b2 = static_cast<int>(rng.uniform(64));
    w.data ^= u64{1} << b1;
    w.data ^= u64{1} << b2;
    const auto r = ecc_decode(w);
    EXPECT_EQ(r.status, EccStatus::kUncorrectable) << b1 << "," << b2;
  }
}

TEST(Rng, DeterministicAndSplittable) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c = a.split();
  EXPECT_NE(c.next(), a.next());
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, PoissonMeanApproximatelyCorrect) {
  Rng rng(13);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    const double est = sum / n;
    EXPECT_NEAR(est, mean, mean * 0.1 + 0.1) << "mean " << mean;
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  const double rate = 2.5;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST(SimTime, ArithmeticAndConversions) {
  const SimTime a = SimTime::microseconds(214);
  EXPECT_DOUBLE_EQ(a.us(), 214.0);
  const SimTime cycle = SimTime::milliseconds(180);
  EXPECT_DOUBLE_EQ((cycle * i64{3}).ms(), 540.0);
  EXPECT_LT(a, cycle);
  SimTime acc;
  for (int i = 0; i < 1000; ++i) acc += a;
  EXPECT_NEAR(acc.ms(), 214.0, 1e-9);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](u64 begin, u64 end) {
    for (u64 i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleAfterManySubmits) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(Error, CheckMacroThrows) {
  EXPECT_THROW(VSCRUB_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(VSCRUB_CHECK(true, "fine"));
}

TEST(ThreadPool, SubmitAfterShutdownIsRefusedNotFatal) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
  pool.shutdown();
  EXPECT_TRUE(pool.stopping());
  // Queued work ran before the join; late submits are dropped loudly, never
  // enqueued into a dead queue.
  EXPECT_EQ(count.load(), 1);
  EXPECT_FALSE(pool.submit([&count] { count.fetch_add(1); }));
  EXPECT_EQ(count.load(), 1);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ParallelWorkRunsInlineOnStoppedPool) {
  ThreadPool pool(2);
  pool.shutdown();
  // A drained daemon must still complete parallel work (inline on the
  // caller) rather than deadlock waiting on workers that are gone.
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](u64 begin, u64 end) {
    for (u64 i = begin; i < end; ++i) ++hits[i];
  });
  std::atomic<u64> total{0};
  pool.parallel_chunks(100, 7, [&](u64 begin, u64 end, unsigned) {
    total.fetch_add(end - begin);
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, ConcurrentParallelChunksCallersShareOnePool) {
  // The serving layer's shape: several campaigns multiplexed onto one pool,
  // each waiting on its own completion latch.
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 4;
  std::vector<std::atomic<u64>> sums(kCallers);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      pool.parallel_chunks(1000, 64, [&sums, c](u64 begin, u64 end, unsigned) {
        for (u64 i = begin; i < end; ++i) sums[c].fetch_add(i);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), 1000u * 999u / 2) << "caller " << c;
  }
}

TEST(Histogram, ExactModeMatchesReservoirUnderCap) {
  Histogram exact;
  Histogram reservoir;
  reservoir.set_reservoir(256);
  for (int i = 0; i < 200; ++i) {
    exact.record(i);
    reservoir.record(i);
  }
  // Under the cap the reservoir holds every sample: identical percentiles.
  EXPECT_DOUBLE_EQ(exact.percentile(50), reservoir.percentile(50));
  EXPECT_DOUBLE_EQ(exact.percentile(99), reservoir.percentile(99));
  EXPECT_EQ(reservoir.count(), 200u);
}

TEST(Histogram, ReservoirBoundsMemoryAndKeepsExactAggregates) {
  Histogram h;
  h.set_reservoir(64, 7);
  for (int i = 1; i <= 100000; ++i) h.record(i);
  // count/sum/min/max stay exact regardless of what the reservoir kept.
  EXPECT_EQ(h.count(), 100000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100000.0);
  EXPECT_DOUBLE_EQ(h.sum(), 100000.0 * 100001.0 / 2);
  // Percentiles come from the 64 retained samples; Algorithm R keeps a
  // uniform subsample, so the median estimate lands in the body of the
  // distribution, not at an extreme.
  const double p50 = h.percentile(50);
  EXPECT_GT(p50, 10000.0);
  EXPECT_LT(p50, 90000.0);
  EXPECT_GE(h.percentile(99), p50);
}

TEST(Histogram, ReservoirIsDeterministic) {
  const auto fill = [](u64 seed) {
    Histogram h;
    h.set_reservoir(32, seed);
    for (int i = 0; i < 5000; ++i) h.record(i * 3 % 997);
    return h;
  };
  Histogram a = fill(42);
  Histogram b = fill(42);
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p)) << "p" << p;
  }
}

}  // namespace
}  // namespace vscrub
