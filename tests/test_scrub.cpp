#include <gtest/gtest.h>

#include "designs/test_designs.h"
#include "pnr/pnr.h"
#include "scrub/scrubber.h"

namespace vscrub {
namespace {

struct ScrubFixture {
  PlacedDesign design;
  FabricSim sim;
  DesignHarness harness;
  FlashStore flash;

  explicit ScrubFixture(Netlist nl, DeviceGeometry geom)
      : design(compile(std::move(nl), geom)),
        sim(design.space),
        harness(design, sim),
        flash(design.bitstream) {
    harness.configure();
  }
};

TEST(Flash, EccCorrectsSingleBitUpsets) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  FlashStore flash(design.bitstream);
  const BitVector clean = flash.fetch_frame(7);
  flash.inject_upset(7, 1, 13);
  const BitVector fetched = flash.fetch_frame(7);
  EXPECT_EQ(fetched, clean);
  EXPECT_EQ(flash.stats().corrected, 1u);
  EXPECT_EQ(flash.stats().uncorrectable, 0u);
  // The corrected word was scrubbed back into the array.
  flash.fetch_frame(7);
  EXPECT_EQ(flash.stats().corrected, 1u);
}

TEST(Flash, EccFlagsDoubleBitUpsets) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  FlashStore flash(design.bitstream);
  flash.inject_upset(3, 0, 5);
  flash.inject_upset(3, 0, 41);
  flash.fetch_frame(3);
  EXPECT_EQ(flash.stats().uncorrectable, 1u);
}

TEST(Flash, CheckBitUpsetsAreCorrected) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  FlashStore flash(design.bitstream);
  const BitVector clean = flash.fetch_frame(2);
  flash.inject_upset(2, 0, 64 + 3);
  EXPECT_EQ(flash.fetch_frame(2), clean);
  EXPECT_EQ(flash.stats().corrected, 1u);
}

TEST(Scrubber, CleanPassFindsNothing) {
  ScrubFixture fx(designs::counter_adder(8), device_tiny(8, 8));
  Scrubber scrubber(fx.design, fx.sim, fx.flash, {});
  const auto pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_EQ(pass.errors_found, 0u);
  EXPECT_EQ(pass.frames_checked, fx.design.space->frame_count());
}

TEST(Scrubber, DetectsAndRepairsInsertedSeu) {
  ScrubFixture fx(designs::counter_adder(8), device_tiny(8, 8));
  Scrubber scrubber(fx.design, fx.sim, fx.flash, {});
  const BitAddress addr = fx.design.space->address_of_linear(4321);
  scrubber.insert_artificial_seu(addr);
  EXPECT_NE(fx.sim.config_bit(addr), fx.design.bitstream.get_bit(addr));

  const auto pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_EQ(pass.errors_found, 1u);
  EXPECT_EQ(pass.repairs, 1u);
  ASSERT_EQ(pass.events.size(), 1u);
  EXPECT_EQ(pass.events[0].global_frame,
            fx.design.space->global_frame_index(addr.frame));
  EXPECT_EQ(fx.sim.config_bit(addr), fx.design.bitstream.get_bit(addr));

  // After repair + reset the design tracks its golden trace again.
  fx.harness.restart();
  const auto golden = DesignHarness::reference_trace(*fx.design.netlist, 60);
  for (u32 t = 0; t < 60; ++t) {
    fx.harness.step();
    ASSERT_EQ(fx.harness.last_outputs(), golden[t]);
  }
}

TEST(Scrubber, DetectsEverySeuLocation) {
  ScrubFixture fx(designs::counter_adder(8), device_tiny(8, 8));
  Scrubber scrubber(fx.design, fx.sim, fx.flash, {});
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const u64 lin = rng.uniform(fx.design.space->total_bits());
    scrubber.insert_artificial_seu(fx.design.space->address_of_linear(lin));
    const auto pass = scrubber.scrub_pass(nullptr);
    EXPECT_EQ(pass.errors_found, 1u) << "trial " << trial << " lin " << lin;
    EXPECT_EQ(pass.repairs, 1u);
  }
}

TEST(Scrubber, MasksDynamicLutFrames) {
  // An SRL16-bearing design: the 16 frames of the slice's LUT bits are
  // masked out of CRC checking (paper §IV-A), so live shifting does not
  // raise false alarms.
  ScrubFixture fx(designs::fir_preproc(3, 4), device_tiny(12, 12));
  Scrubber scrubber(fx.design, fx.sim, fx.flash, {});
  EXPECT_GT(scrubber.codebook().masked_count(), 0u);
  fx.harness.run(40);  // shift the SRLs well away from their init contents
  const auto pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_EQ(pass.errors_found, 0u) << "live SRL state raised a false alarm";
}

TEST(Scrubber, WithoutMaskingLiveSrlsRaiseFalseAlarms) {
  ScrubFixture fx(designs::fir_preproc(3, 4), device_tiny(12, 12));
  ScrubberOptions options;
  options.mask_dynamic_frames = false;
  options.reset_after_repair = false;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, options);
  fx.harness.run(40);
  const auto pass = scrubber.scrub_pass(nullptr);
  EXPECT_GT(pass.errors_found, 0u)
      << "unmasked scrubbing should mistake shifted SRL contents for SEUs";
}

TEST(Scrubber, RmwRepairPreservesDynamicState) {
  // Corrupt a *routing* bit in a column that also holds live SRL state.
  // Plain repair clobbers the SRL contents; RMW repair preserves them
  // (paper §IV-B).
  for (const bool rmw : {false, true}) {
    ScrubFixture fx(designs::fir_preproc(3, 4), device_tiny(12, 12));
    ScrubberOptions options;
    options.repair_mode =
        rmw ? RepairMode::kReadModifyWrite : RepairMode::kGoldenOverwrite;
    options.mask_dynamic_frames = false;  // force repair through LUT frames
    options.reset_after_repair = false;
    Scrubber scrubber(fx.design, fx.sim, fx.flash, options);
    fx.harness.run(40);
    const auto pass = scrubber.scrub_pass(nullptr);
    EXPECT_GT(pass.errors_found, 0u);
    (void)pass;
  }
  SUCCEED();
}

TEST(Scrubber, XCV1000ScrubCycleNear180ms) {
  // Paper §II-A: "each configuration is read every 180 ms" for a board of
  // three XQVR1000s.
  const auto design = compile(designs::counter_adder(4), device_xcv1000ish());
  FabricSim sim(design.space);
  FlashStore flash(design.bitstream);
  Scrubber scrubber(design, sim, flash, {});
  const double board_ms = scrubber.clean_pass_cost().ms() * 3.0;
  EXPECT_NEAR(board_ms, 180.0, 18.0);
}

TEST(Scrubber, ModeledPassTimeMatchesCleanCost) {
  ScrubFixture fx(designs::counter_adder(8), device_tiny(8, 8));
  Scrubber scrubber(fx.design, fx.sim, fx.flash, {});
  const auto pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_NEAR(pass.pass_time.ms(), scrubber.clean_pass_cost().ms(), 0.01);
}

}  // namespace
}  // namespace vscrub
