// The §IV-A readback-free alternative: a self-checking design (concurrent
// BIST), the approach of the payload's Andraka FFT.
#include <gtest/gtest.h>

#include "core/vscrub.h"

namespace vscrub {
namespace {

TEST(SelfCheck, CleanDesignNeverAlarms) {
  const Netlist nl = designs::selfcheck_dsp(6, 5);
  ASSERT_TRUE(run_drc(nl).ok());
  RefSim sim(nl);
  for (int t = 0; t < 1000; ++t) {
    sim.eval();
    ASSERT_FALSE(sim.output(0)) << "false alarm at cycle " << t;
    sim.clock();
  }
}

TEST(SelfCheck, FabricMatchesReference) {
  const Netlist nl = designs::selfcheck_dsp(6, 5);
  const auto design = compile(nl, device_tiny(12, 16));
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  const auto golden = DesignHarness::reference_trace(*design.netlist, 200);
  for (int t = 0; t < 200; ++t) {
    harness.step();
    ASSERT_EQ(harness.last_outputs(), golden[static_cast<std::size_t>(t)])
        << "cycle " << t;
  }
}

TEST(SelfCheck, FlagsMostSensitiveUpsetsWithoutReadback) {
  // Every upset the output comparator would catch, the built-in signature
  // check must also catch (within a few test windows) — that is what lets
  // the payload skip readback for this design.
  const Netlist nl = designs::selfcheck_dsp(6, 5);
  const auto design = compile(nl, device_tiny(12, 16));

  // Ground truth from the SEU simulator.
  CampaignOptions copts;
  copts.sample_bits = 4000;
  copts.record_sampled_bits = true;
  const auto camp = run_campaign(design, copts);
  ASSERT_GT(camp.failures, 20u);

  // Self-test verdict for every simulator-sensitive bit.
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  u64 flagged = 0;
  for (const auto& sb : camp.sensitive_bits) {
    BitVector img = design.bitstream.frame(sb.addr.frame);
    img.flip(sb.addr.offset);
    fabric.write_frame(sb.addr.frame, img);
    bool err = false;
    for (int t = 0; t < 4 * 32 && !err; ++t) {
      harness.step();
      err = (harness.last_outputs().lo & 1) != 0;
    }
    if (err) ++flagged;
    fabric.write_frame(sb.addr.frame, design.bitstream.frame(sb.addr.frame));
    harness.restart();
  }
  const double coverage =
      static_cast<double>(flagged) / static_cast<double>(camp.failures);
  EXPECT_GT(coverage, 0.85) << flagged << "/" << camp.failures;
}

TEST(SelfCheck, InsensitiveBitsDoNotAlarm) {
  const Netlist nl = designs::selfcheck_dsp(6, 5);
  const auto design = compile(nl, device_tiny(12, 16));
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  // Padding bits are provably insensitive; the self-test must stay quiet.
  int checked = 0;
  for (u16 tb = 0; tb < kTileConfigBits && checked < 8; ++tb) {
    if (ConfigSpace::meaning_of_tile_bit(tb).kind != FieldKind::kPad) continue;
    ++checked;
    const BitAddress addr = design.space->address_of(TileCoord{3, 3}, tb);
    fabric.flip_config_bit(addr);
    for (int t = 0; t < 3 * 32; ++t) {
      harness.step();
      ASSERT_EQ(harness.last_outputs().lo & 1, 0u) << "false alarm";
    }
    fabric.flip_config_bit(addr);
    harness.restart();
  }
}

TEST(Legalize, FoldsConstLutInputs) {
  Netlist nl("fold");
  Builder b(nl);
  const NetId x = nl.add_input("x");
  const NetId k1 = nl.const_net(true);
  const NetId k0 = nl.const_net(false);
  // Hand-built LUTs with constant data inputs (bypassing builder folding):
  // mux2(x as select, a0 = const0, a1 = const1) == x.
  const NetId m = nl.add_lut(0xCA, {k0, k1, x});
  nl.add_output("o", m);
  const std::size_t folded = fold_constant_lut_inputs(nl);
  EXPECT_EQ(folded, 2u);
  RefSim sim(nl);
  for (bool v : {false, true, true, false}) {
    sim.set_input(0, v);
    sim.eval();
    EXPECT_EQ(sim.output(0), v);
  }
}

TEST(Legalize, AllConstLutBecomesRomConstant) {
  Netlist nl("rom");
  const NetId k1 = nl.const_net(true);
  const NetId k0 = nl.const_net(false);
  const NetId g = nl.add_lut(0x8, {k1, k1});  // AND(1,1) == 1
  const NetId h = nl.add_lut(0x8, {k1, k0});  // AND(1,0) == 0
  nl.add_output("a", g);
  nl.add_output("b", h);
  fold_constant_lut_inputs(nl);
  EXPECT_EQ(nl.cell(nl.net(g).driver).num_inputs, 0);
  EXPECT_EQ(nl.cell(nl.net(g).driver).lut_truth, 0xFFFF);
  EXPECT_EQ(nl.cell(nl.net(h).driver).lut_truth, 0x0000);
  RefSim sim(nl);
  sim.eval();
  EXPECT_TRUE(sim.output(0));
  EXPECT_FALSE(sim.output(1));
}

}  // namespace
}  // namespace vscrub
