// API v3 scrub-policy laboratory: registry contract, option validation, the
// bit-identity guarantee (explicit readback_crc == no-policy legacy path, at
// both the Scrubber-pass and whole-mission level), the per-pass timing
// invariant, and fleet/race determinism across thread counts for every
// registered policy.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/vscrub.h"

namespace vscrub {
namespace {

// ---------------------------------------------------------------- registry

TEST(PolicyRegistry, FivePoliciesInTableOrder) {
  const std::vector<std::string>& names = scrub_policy_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "readback_crc");
  EXPECT_EQ(names[1], "blind");
  EXPECT_EQ(names[2], "priority");
  EXPECT_EQ(names[3], "staggered");
  EXPECT_EQ(names[4], "golden_ecc");
  for (const std::string& n : names) {
    EXPECT_EQ(make_scrub_policy(n)->name(), n);
  }
}

TEST(PolicyRegistry, DefaultIsTheReadbackCrcLoop) {
  EXPECT_STREQ(default_scrub_policy()->name(), "readback_crc");
  // Empty name = "keep the default", for options plumbing.
  EXPECT_STREQ(make_scrub_policy("")->name(), "readback_crc");
  EXPECT_FALSE(default_scrub_policy()->blind());
  EXPECT_FALSE(default_scrub_policy()->intermodular());
  EXPECT_EQ(default_scrub_policy()->schedule_period(), 1u);
}

TEST(PolicyRegistry, UnknownNameThrowsTypedErrorListingRegistry) {
  try {
    make_scrub_policy("scrub_harder");
    FAIL() << "unknown policy accepted";
  } catch (const ScrubConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scrub_harder"), std::string::npos);
    EXPECT_NE(what.find("readback_crc"), std::string::npos);
    EXPECT_NE(what.find("staggered"), std::string::npos);
  }
}

TEST(PolicyRegistry, ParseListGrammar) {
  EXPECT_TRUE(parse_scrub_policy_list("").empty());
  EXPECT_EQ(parse_scrub_policy_list("all"), scrub_policy_names());
  const std::vector<std::string> two = parse_scrub_policy_list("blind,priority");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], "blind");
  EXPECT_EQ(two[1], "priority");
  EXPECT_THROW(parse_scrub_policy_list("blind,typo"), ScrubConfigError);
  EXPECT_THROW(parse_scrub_policy_list(","), ScrubConfigError);
}

TEST(PolicyRegistry, RepairModeNames) {
  EXPECT_STREQ(repair_mode_name(RepairMode::kGoldenOverwrite),
               "golden_overwrite");
  EXPECT_STREQ(repair_mode_name(RepairMode::kReadModifyWrite),
               "read_modify_write");
  EXPECT_STREQ(repair_mode_name(RepairMode::kBitGranular), "bit_granular");
}

// ------------------------------------------------------------- validation

TEST(PolicyValidation, BlindRejectsContradictoryOptions) {
  ScrubberOptions o;
  o.policy = make_scrub_policy("blind");
  validate_scrub_options(o);  // golden overwrite + masked frames: fine

  ScrubberOptions rmw = o;
  rmw.repair_mode = RepairMode::kReadModifyWrite;
  EXPECT_THROW(validate_scrub_options(rmw), ScrubConfigError);

  ScrubberOptions granular = o;
  granular.repair_mode = RepairMode::kBitGranular;
  EXPECT_THROW(validate_scrub_options(granular), ScrubConfigError);

  ScrubberOptions unmasked = o;
  unmasked.mask_dynamic_frames = false;
  EXPECT_THROW(validate_scrub_options(unmasked), ScrubConfigError);

  ScrubberOptions zeroed = o;
  zeroed.zeroed_dynamic_codebook = true;
  EXPECT_THROW(validate_scrub_options(zeroed), ScrubConfigError);
}

TEST(PolicyValidation, ScrubberCtorEnforcesValidation) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  FabricSim sim(design.space);
  FlashStore flash(design.bitstream);
  ScrubberOptions o;
  o.policy = make_scrub_policy("blind");
  o.repair_mode = RepairMode::kBitGranular;
  EXPECT_THROW(Scrubber(design, sim, flash, o), ScrubConfigError);
}

// ------------------------------------------------------------ plan shapes

TEST(PolicyPlans, PriorityVisitsHotEveryPassColdEveryStride) {
  std::vector<u32> sens(12, 0);
  sens[3] = 9;
  sens[7] = 2;
  sens[11] = 5;
  const ScrubPolicyPtr policy = make_scrub_policy("priority");
  ScrubPolicyContext ctx;
  ctx.frame_count = 12;
  ctx.frame_sensitivity = &sens;
  const u32 period = policy->schedule_period();
  ASSERT_GE(period, 2u);
  std::vector<u32> order;
  std::vector<u32> visits(12, 0);
  for (u64 p = 0; p < period; ++p) {
    ctx.pass_index = p;
    policy->plan_pass(ctx, order);
    // Hottest first, every pass.
    ASSERT_GE(order.size(), 3u);
    EXPECT_EQ(order[0], 3u);
    EXPECT_EQ(order[1], 11u);
    EXPECT_EQ(order[2], 7u);
    // Each pass is a strict subset of the device — that is the speedup.
    EXPECT_LT(order.size(), 12u);
    for (const u32 gf : order) ++visits[gf];
  }
  for (u32 gf = 0; gf < 12; ++gf) {
    const bool hot = sens[gf] > 0;
    EXPECT_EQ(visits[gf], hot ? period : 1u) << "frame " << gf;
  }
}

TEST(PolicyPlans, PriorityDegradesToScanOrderWithoutSensitivity) {
  const ScrubPolicyPtr policy = make_scrub_policy("priority");
  ScrubPolicyContext ctx;
  ctx.frame_count = 5;
  std::vector<u32> order;
  policy->plan_pass(ctx, order);
  EXPECT_EQ(order, (std::vector<u32>{0, 1, 2, 3, 4}));
}

TEST(PolicyPlans, BlindAndStaggeredTraits) {
  const ScrubPolicyPtr blind = make_scrub_policy("blind");
  EXPECT_TRUE(blind->blind());
  ScrubPolicyContext ctx;
  ctx.frame_count = 3;
  EXPECT_EQ(blind->frame_op(ctx, 0), FrameOp::kBlindWrite);
  const ScrubPolicyPtr staggered = make_scrub_policy("staggered");
  EXPECT_TRUE(staggered->intermodular());
  EXPECT_FALSE(staggered->blind());
}

TEST(PolicyPlans, GoldenEccTraits) {
  const ScrubPolicyPtr policy = make_scrub_policy("golden_ecc");
  EXPECT_TRUE(policy->golden_ecc());
  EXPECT_FALSE(policy->blind());
  EXPECT_FALSE(policy->intermodular());
  EXPECT_EQ(policy->schedule_period(), 1u);
  // Scheduling is the full scan — only the flash-escalation branch differs.
  ScrubPolicyContext ctx;
  ctx.frame_count = 4;
  std::vector<u32> order;
  policy->plan_pass(ctx, order);
  EXPECT_EQ(order, (std::vector<u32>{0, 1, 2, 3}));
  // Every other registered policy keeps no shadow.
  EXPECT_FALSE(make_scrub_policy("readback_crc")->golden_ecc());
  EXPECT_FALSE(make_scrub_policy("blind")->golden_ecc());
}

TEST(PolicyPlans, MineFrameSensitivityCountsPerGlobalFrame) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  const ConfigSpace& space = *design.space;
  std::unordered_set<u64> bits;
  bits.insert(0);
  bits.insert(1);
  bits.insert(space.total_bits() / 2);
  bits.insert(space.total_bits() + 17);  // out of range: ignored
  const std::vector<u32> counts = mine_frame_sensitivity(space, bits);
  ASSERT_EQ(counts.size(), space.frame_count());
  u64 total = 0;
  for (const u32 c : counts) total += c;
  EXPECT_EQ(total, 3u);
  // Adjacent linear bits land in the same frame; its count reflects both.
  const u32 gf0 = space.global_frame_index(space.address_of_linear(0).frame);
  const u32 gf1 = space.global_frame_index(space.address_of_linear(1).frame);
  ASSERT_EQ(gf0, gf1);
  EXPECT_EQ(counts[gf0], 2u);
}

// --------------------------------------------- scrubber-level equivalence

struct ScrubFixture {
  PlacedDesign design;
  FabricSim sim;
  DesignHarness harness;
  FlashStore flash;

  explicit ScrubFixture(const ScrubFixture&) = delete;
  ScrubFixture()
      : design(compile(designs::counter_adder(8), device_tiny(8, 8))),
        sim(design.space),
        harness(design, sim),
        flash(design.bitstream) {
    harness.configure();
  }
};

void expect_pass_equal(const ScrubPassResult& a, const ScrubPassResult& b) {
  EXPECT_EQ(a.frames_checked, b.frames_checked);
  EXPECT_EQ(a.errors_found, b.errors_found);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.resets, b.resets);
  EXPECT_EQ(a.blind_writes, b.blind_writes);
  EXPECT_EQ(a.false_alarms, b.false_alarms);
  EXPECT_EQ(a.pass_time.ps(), b.pass_time.ps());
  EXPECT_EQ(a.clean_cost.ps(), b.clean_cost.ps());
  EXPECT_EQ(a.fault_overhead.ps(), b.fault_overhead.ps());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].global_frame, b.events[i].global_frame);
    EXPECT_EQ(a.events[i].time.ps(), b.events[i].time.ps());
    EXPECT_EQ(a.events[i].repaired, b.events[i].repaired);
    EXPECT_EQ(a.events[i].reset_issued, b.events[i].reset_issued);
  }
}

TEST(PolicyEquivalence, ExplicitReadbackCrcMatchesLegacyPassBitForBit) {
  ScrubFixture legacy;
  ScrubFixture v3;
  ScrubberOptions explicit_options;
  explicit_options.policy = make_scrub_policy("readback_crc");
  Scrubber legacy_scrubber(legacy.design, legacy.sim, legacy.flash, {});
  Scrubber v3_scrubber(v3.design, v3.sim, v3.flash, explicit_options);
  EXPECT_STREQ(legacy_scrubber.policy().name(), "readback_crc");

  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const u64 lin = rng.uniform(legacy.design.space->total_bits());
    const BitAddress addr = legacy.design.space->address_of_linear(lin);
    legacy_scrubber.insert_artificial_seu(addr);
    v3_scrubber.insert_artificial_seu(addr);
    const ScrubPassResult a = legacy_scrubber.scrub_pass(&legacy.harness);
    const ScrubPassResult b = v3_scrubber.scrub_pass(&v3.harness);
    expect_pass_equal(a, b);
    // A pass with repairs also spends error-handling + repair-write + reset
    // time, on top of the scheduled scan and the link-fault overhead.
    EXPECT_GE(a.pass_time.ps(), (a.clean_cost + a.fault_overhead).ps());
    EXPECT_EQ(a.clean_cost.ps(), legacy_scrubber.clean_pass_cost().ps());
  }
  // The documented timing invariant is exact for an error-free pass.
  const ScrubPassResult clean_a = legacy_scrubber.scrub_pass(&legacy.harness);
  const ScrubPassResult clean_b = v3_scrubber.scrub_pass(&v3.harness);
  expect_pass_equal(clean_a, clean_b);
  EXPECT_EQ(clean_a.errors_found, 0u);
  EXPECT_EQ(clean_a.pass_time.ps(),
            (clean_a.clean_cost + clean_a.fault_overhead).ps());
  EXPECT_EQ(legacy_scrubber.elapsed().ps(), v3_scrubber.elapsed().ps());
  EXPECT_EQ(legacy_scrubber.total_errors(), v3_scrubber.total_errors());
}

TEST(PolicyEquivalence, BlindPassRepairsWithoutDetecting) {
  ScrubFixture fx;
  ScrubberOptions o;
  o.policy = make_scrub_policy("blind");
  Scrubber scrubber(fx.design, fx.sim, fx.flash, o);
  const BitAddress addr = fx.design.space->address_of_linear(4321);
  scrubber.insert_artificial_seu(addr);
  EXPECT_NE(fx.sim.config_bit(addr), fx.design.bitstream.get_bit(addr));

  const ScrubPassResult pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_EQ(pass.errors_found, 0u);
  EXPECT_EQ(pass.repairs, 0u);
  EXPECT_EQ(pass.resets, 0u);
  EXPECT_GT(pass.blind_writes, 0u);
  EXPECT_EQ(pass.pass_time.ps(),
            (pass.clean_cost + pass.fault_overhead).ps());
  // The upset is gone all the same.
  EXPECT_EQ(fx.sim.config_bit(addr), fx.design.bitstream.get_bit(addr));
  // A follow-up CRC scan confirms the fabric is clean.
  ScrubberOptions check;
  Scrubber checker(fx.design, fx.sim, fx.flash, check);
  EXPECT_EQ(checker.scrub_pass(&fx.harness).errors_found, 0u);
}

TEST(PolicyEquivalence, GoldenEccMatchesReadbackCrcOnPristineFlash) {
  // With a clean flash store the shadow tier is never consulted: the pass
  // must be bit-identical to the paper's readback_crc loop.
  ScrubFixture crc;
  ScrubFixture ecc;
  ScrubberOptions crc_options;
  crc_options.policy = make_scrub_policy("readback_crc");
  ScrubberOptions ecc_options;
  ecc_options.policy = make_scrub_policy("golden_ecc");
  Scrubber crc_scrubber(crc.design, crc.sim, crc.flash, crc_options);
  Scrubber ecc_scrubber(ecc.design, ecc.sim, ecc.flash, ecc_options);
  const BitAddress addr = crc.design.space->address_of_linear(4321);
  crc_scrubber.insert_artificial_seu(addr);
  ecc_scrubber.insert_artificial_seu(addr);
  const ScrubPassResult a = crc_scrubber.scrub_pass(&crc.harness);
  const ScrubPassResult b = ecc_scrubber.scrub_pass(&ecc.harness);
  expect_pass_equal(a, b);
  EXPECT_EQ(b.ecc_fallback_repairs, 0u);
}

TEST(PolicyEquivalence, GoldenEccRepairsFromShadowOnFlashDoubleBit) {
  ScrubFixture fx;
  ScrubberOptions o;
  o.policy = make_scrub_policy("golden_ecc");
  MetricsRegistry metrics;
  o.metrics = &metrics;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, o);
  const BitAddress addr = fx.design.space->address_of_linear(4321);
  const u32 gf = fx.design.space->global_frame_index(addr.frame);
  scrubber.insert_artificial_seu(addr);
  // The golden copy rots in flash: a double-bit word SECDED can only flag.
  // readback_crc would escalate to a reset here (see test_scrub_faults);
  // golden_ecc repairs from its SECDED shadow instead.
  fx.flash.inject_upset(gf, 0, 5);
  fx.flash.inject_upset(gf, 0, 41);
  const ScrubPassResult pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_EQ(pass.errors_found, 1u);
  EXPECT_EQ(pass.flash_uncorrectable, 1u);
  EXPECT_EQ(pass.ecc_fallback_repairs, 1u);
  EXPECT_EQ(pass.repairs, 1u);
  EXPECT_EQ(pass.escalations, 0u);
  EXPECT_EQ(metrics.counter("scrub_ecc_fallback_repairs").value(), 1u);
  // The upset is actually gone, repaired with trustworthy shadow data.
  EXPECT_EQ(fx.sim.config_bit(addr), fx.design.bitstream.get_bit(addr));
}

TEST(PolicyEquivalence, PriorityPassTimingInvariantHolds) {
  ScrubFixture fx;
  ScrubberOptions o;
  o.policy = make_scrub_policy("priority");
  CampaignOptions copts;
  copts.sample_bits = 2000;
  const CampaignResult camp = run_campaign(fx.design, copts);
  o.frame_sensitivity =
      mine_frame_sensitivity(*fx.design.space, camp.sensitive_set(fx.design));
  Scrubber scrubber(fx.design, fx.sim, fx.flash, o);
  for (int pass = 0; pass < 4; ++pass) {
    const ScrubPassResult r = scrubber.scrub_pass(&fx.harness);
    EXPECT_EQ(r.pass_time.ps(), (r.clean_cost + r.fault_overhead).ps());
    EXPECT_LE(r.frames_checked, fx.design.space->frame_count());
    EXPECT_LT(r.clean_cost.ps(), scrubber.clean_pass_cost().ps())
        << "priority pass should be shorter than a full scan";
  }
}

// ------------------------------------------------- mission / fleet / race

class PolicyFleetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new PlacedDesign(
        compile(designs::counter_adder(8), device_tiny(8, 8)));
    CampaignOptions copts;
    copts.sample_bits = 4000;
    const CampaignResult camp = run_campaign(*design_, copts);
    sensitive_ = new std::unordered_set<u64>(camp.sensitive_set(*design_));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete sensitive_;
    design_ = nullptr;
    sensitive_ = nullptr;
  }

  static PayloadOptions mission_options() {
    PayloadOptions o;
    o.environment.upset_rate_per_bit_s = 2e-7;
    return o;
  }

  static PlacedDesign* design_;
  static std::unordered_set<u64>* sensitive_;
};

PlacedDesign* PolicyFleetFixture::design_ = nullptr;
std::unordered_set<u64>* PolicyFleetFixture::sensitive_ = nullptr;

TEST_F(PolicyFleetFixture, ExplicitReadbackCrcMissionMatchesLegacyReport) {
  PayloadOptions legacy = mission_options();
  legacy.seed = 7;
  EventTrace legacy_trace;
  legacy.trace = &legacy_trace;
  Payload legacy_payload(*design_, legacy, *sensitive_);
  const MissionReport a = legacy_payload.run_mission(SimTime::hours(2));

  PayloadOptions v3 = mission_options();
  v3.seed = 7;
  EventTrace v3_trace;
  v3.trace = &v3_trace;
  v3.scrub.policy = make_scrub_policy("readback_crc");
  Payload v3_payload(*design_, v3, *sensitive_);
  const MissionReport b = v3_payload.run_mission(SimTime::hours(2));

  EXPECT_TRUE(a == b);
  EXPECT_EQ(legacy_trace.joined(), v3_trace.joined());
  EXPECT_EQ(a.scrub_policy, "readback_crc");
  ASSERT_GT(a.upsets_total, 0u);
}

TEST_F(PolicyFleetFixture, EveryPolicyFleetIsThreadCountInvariant) {
  for (const std::string& name : scrub_policy_names()) {
    FleetOptions options;
    options.missions = 3;
    options.base_seed = 50;
    options.duration = SimTime::hours(1);
    options.payload = mission_options();
    options.payload.scrub.policy = make_scrub_policy(name);
    options.threads = 1;
    const FleetResult seq = run_fleet(*design_, *sensitive_, options);
    options.threads = 4;
    const FleetResult par = run_fleet(*design_, *sensitive_, options);
    ASSERT_EQ(seq.reports.size(), 3u) << name;
    for (std::size_t i = 0; i < seq.reports.size(); ++i) {
      EXPECT_TRUE(seq.reports[i] == par.reports[i])
          << name << " mission " << i;
      EXPECT_EQ(seq.reports[i].scrub_policy, name);
    }
    EXPECT_EQ(seq.availability_mean, par.availability_mean) << name;
    EXPECT_EQ(seq.mttr_ms, par.mttr_ms) << name;
    EXPECT_EQ(seq.scrub_bandwidth_bytes_per_s, par.scrub_bandwidth_bytes_per_s)
        << name;
  }
}

TEST_F(PolicyFleetFixture, BlindMissionRepairsWithoutDetections) {
  PayloadOptions o = mission_options();
  o.seed = 9;
  o.hidden_state_fraction = 0.0;
  o.scrub.policy = make_scrub_policy("blind");
  Payload payload(*design_, o, *sensitive_);
  const MissionReport r = payload.run_mission(SimTime::hours(4));
  ASSERT_GT(r.upsets_total, 0u);
  EXPECT_EQ(r.detected, 0u);
  EXPECT_EQ(r.resets, 0u);
  EXPECT_GT(r.repaired, 0u);
  EXPECT_TRUE(r.detection_latency_ms.empty());
  EXPECT_GT(r.scrub_bandwidth_bytes_per_s, 0.0);
}

TEST_F(PolicyFleetFixture, RaceHoldsSeedsFixedAcrossPolicies) {
  PolicyRaceOptions ro;
  ro.policies = {"readback_crc", "blind"};
  ro.fleet.missions = 2;
  ro.fleet.base_seed = 30;
  ro.fleet.duration = SimTime::hours(1);
  ro.fleet.payload = mission_options();
  const PolicyRaceResult race = run_policy_race(*design_, *sensitive_, ro);
  ASSERT_EQ(race.entries.size(), 2u);
  EXPECT_EQ(race.entries[0].policy, "readback_crc");
  EXPECT_EQ(race.entries[1].policy, "blind");
  // Same upset histories: the sweep differs only in scheduling.
  EXPECT_EQ(race.entries[0].fleet.upsets_total,
            race.entries[1].fleet.upsets_total);

  // The readback_crc lane is bit-identical to a plain default-policy fleet.
  FleetOptions fo = ro.fleet;
  const FleetResult plain = run_fleet(*design_, *sensitive_, fo);
  ASSERT_EQ(plain.reports.size(), race.entries[0].fleet.reports.size());
  for (std::size_t i = 0; i < plain.reports.size(); ++i) {
    EXPECT_TRUE(plain.reports[i] == race.entries[0].fleet.reports[i]);
  }

  const std::string json = policy_race_report_json(race).to_json();
  EXPECT_NE(json.find("\"kind\": \"policy_race\""), std::string::npos);
  EXPECT_NE(json.find("\"policy_names\": \"readback_crc,blind\""),
            std::string::npos);
  EXPECT_NE(json.find("\"readback_crc_availability_mean\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"blind_mttr_ms\":"), std::string::npos);
}

TEST_F(PolicyFleetFixture, RaceRejectsUnknownPolicyBeforeRunning) {
  PolicyRaceOptions ro;
  ro.policies = {"readback_crc", "typo"};
  ro.fleet.missions = 1;
  ro.fleet.duration = SimTime::hours(1);
  EXPECT_THROW(run_policy_race(*design_, *sensitive_, ro), ScrubConfigError);
}

}  // namespace
}  // namespace vscrub
