// CLI contract: the declarative command table in core/cli.{h,cpp} is the
// single source of truth for vscrubctl. These tests pin the flag-naming
// convention, reject undeclared flags, and require every subcommand's
// --help output to list every flag it accepts.
#include <gtest/gtest.h>

#include <cctype>

#include "core/cli.h"
#include "sim/simd.h"

namespace vscrub {
namespace {

TEST(Cli, EveryCommandHelpListsEveryFlag) {
  for (const CliCommand& cmd : cli_commands()) {
    const std::string help = cli_help(cmd);
    EXPECT_NE(help.find("vscrubctl " + cmd.name), std::string::npos)
        << cmd.name << " help lacks a usage line";
    for (const CliFlag& f : cmd.flags) {
      EXPECT_NE(help.find(f.name), std::string::npos)
          << "`vscrubctl " << cmd.name << " --help` does not list " << f.name;
      EXPECT_FALSE(f.help.empty())
          << cmd.name << " " << f.name << " has no help text";
    }
  }
}

TEST(Cli, UsageScreenListsEveryCommand) {
  const std::string usage = cli_usage();
  for (const CliCommand& cmd : cli_commands()) {
    EXPECT_NE(usage.find(cmd.name), std::string::npos)
        << "usage screen does not list " << cmd.name;
  }
}

TEST(Cli, FlagNamingConventionIsUniform) {
  // Long flags are `--kebab-case` (lowercase letters and single dashes);
  // the only short flag grandfathered in is compile's `-o`.
  for (const CliCommand& cmd : cli_commands()) {
    for (const CliFlag& f : cmd.flags) {
      if (f.name == "-o") continue;
      ASSERT_GE(f.name.size(), 3u) << cmd.name << " flag " << f.name;
      EXPECT_EQ(f.name.substr(0, 2), "--") << cmd.name << " " << f.name;
      for (const char c : f.name.substr(2)) {
        EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) || c == '-')
            << cmd.name << " flag " << f.name
            << " violates the --kebab-case convention";
      }
      EXPECT_EQ(f.takes_value, !f.value_name.empty())
          << cmd.name << " " << f.name << ": value flags need a value name";
    }
  }
}

TEST(Cli, NormalizedFlagsPresentWhereTheyApply) {
  // The PR-4 normalization pass: gang control, scrub-fault toggles and the
  // verdict store use the same spelling everywhere they appear.
  const CliCommand* campaign = cli_find("campaign");
  const CliCommand* recampaign = cli_find("recampaign");
  const CliCommand* mission = cli_find("mission");
  const CliCommand* fleet = cli_find("fleet");
  ASSERT_NE(campaign, nullptr);
  ASSERT_NE(recampaign, nullptr);
  ASSERT_NE(mission, nullptr);
  ASSERT_NE(fleet, nullptr);
  const auto has = [](const CliCommand* cmd, const char* name) {
    for (const CliFlag& f : cmd->flags) {
      if (f.name == name) return true;
    }
    return false;
  };
  for (const CliCommand* cmd : {campaign, recampaign}) {
    EXPECT_TRUE(has(cmd, "--gang-width")) << cmd->name;
    EXPECT_TRUE(has(cmd, "--cache-dir")) << cmd->name;
    EXPECT_TRUE(has(cmd, "--json")) << cmd->name;
  }
  for (const CliCommand* cmd : {mission, fleet}) {
    EXPECT_TRUE(has(cmd, "--scrub-faults")) << cmd->name;
    EXPECT_TRUE(has(cmd, "--json")) << cmd->name;
  }
  // The v3 policy flag: same spelling on every command that runs missions,
  // and the registry is browsable via a dedicated command.
  const CliCommand* submit = cli_find("submit");
  ASSERT_NE(submit, nullptr);
  for (const CliCommand* cmd : {mission, fleet, submit}) {
    EXPECT_TRUE(has(cmd, "--scrub-policy")) << cmd->name;
  }
  EXPECT_NE(cli_find("policies"), nullptr);
}

TEST(Cli, ParseAcceptsDeclaredFlagsOnly) {
  const CliCommand* cmd = cli_find("campaign");
  ASSERT_NE(cmd, nullptr);
  const CliArgs args = cli_parse(
      *cmd, {"lfsrmult", "--sample", "500", "--progress", "--cache-dir", "d"});
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "lfsrmult");
  EXPECT_TRUE(args.flag("--progress"));
  EXPECT_FALSE(args.flag("--exhaustive"));
  EXPECT_EQ(args.option_u64("--sample", 0), 500u);
  EXPECT_EQ(args.option("--cache-dir", ""), "d");
  EXPECT_EQ(args.option_u64("--gang-width", 64), 64u);  // default passthrough

  EXPECT_THROW(cli_parse(*cmd, {"--gangwidth", "8"}), Error);
  EXPECT_THROW(cli_parse(*cmd, {"--observations", "9"}), Error)
      << "beam-only flag must not leak into campaign";
  EXPECT_THROW(cli_parse(*cmd, {"--sample"}), Error)
      << "value flag without a value";
}

TEST(Cli, GangEngineFlagsPresentWhereGangRuns) {
  // The wide-engine knobs ride every command that can dispatch gang runs,
  // with one spelling: --gang-width N, --gang-isa T, --no-gang-plan.
  const auto has = [](const CliCommand* cmd, const char* name) {
    for (const CliFlag& f : cmd->flags) {
      if (f.name == name) return true;
    }
    return false;
  };
  for (const char* name : {"campaign", "recampaign", "submit"}) {
    const CliCommand* cmd = cli_find(name);
    ASSERT_NE(cmd, nullptr) << name;
    EXPECT_TRUE(has(cmd, "--gang-width")) << name;
    EXPECT_TRUE(has(cmd, "--gang-isa")) << name;
    EXPECT_TRUE(has(cmd, "--no-gang-plan")) << name;
  }
  const CliCommand* campaign = cli_find("campaign");
  const CliArgs args = cli_parse(
      *campaign, {"lfsrmult", "--gang-width", "256", "--gang-isa", "avx2",
                  "--no-gang-plan"});
  EXPECT_EQ(args.option_u64("--gang-width", 64), 256u);
  EXPECT_EQ(args.option("--gang-isa", "auto"), "avx2");
  EXPECT_TRUE(args.flag("--no-gang-plan"));
  // The --gang-width help names the supported widths so an error message and
  // the help screen never disagree.
  for (const CliFlag& f : campaign->flags) {
    if (f.name == "--gang-width") {
      EXPECT_NE(f.help.find("256"), std::string::npos) << f.help;
      EXPECT_NE(f.help.find("512"), std::string::npos) << f.help;
    }
    if (f.name == "--gang-isa") {
      EXPECT_NE(f.help.find("avx512"), std::string::npos) << f.help;
    }
  }
}

TEST(Cli, GangWidthAndIsaValuesRejectWithTypedErrors) {
  // The errors vscrubctl surfaces for bad --gang-width / --gang-isa values:
  // typed, and self-describing enough to fix the command line from.
  try {
    validate_gang_width(100);
    FAIL() << "width 100 accepted";
  } catch (const GangWidthError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("100"), std::string::npos) << what;
    EXPECT_NE(what.find(supported_gang_widths_list()), std::string::npos)
        << what;
  }
  try {
    parse_simd_isa("sse9");
    FAIL() << "bad ISA accepted";
  } catch (const SimdIsaError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sse9"), std::string::npos) << what;
    EXPECT_NE(what.find("scalar"), std::string::npos) << what;
  }
}

TEST(Cli, UnknownCommandIsNull) {
  EXPECT_EQ(cli_find("recalibrate"), nullptr);
  EXPECT_NE(cli_find("recampaign"), nullptr);
}

}  // namespace
}  // namespace vscrub
