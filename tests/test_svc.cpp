// The vscrubd serving layer: VSRP1 framing round-trips, FlatJson reads what
// JsonReport writes, the CampaignService enforces bounded admission with
// typed backpressure, and the loopback server hands N concurrent clients
// results bit-identical to a direct library run — with cross-client verdict
// reuse, because every request shares one process-wide store.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/vscrub.h"
#include "sim/simd.h"
#include "svc/client.h"
#include "svc/config.h"
#include "svc/protocol.h"
#include "svc/requests.h"
#include "svc/scheduler.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/session.h"

namespace vscrub {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

bool terminal(FrameKind kind) {
  return kind == FrameKind::kResult || kind == FrameKind::kError ||
         kind == FrameKind::kBusy;
}

/// Thread-safe frame sink for driving CampaignService::handle directly.
struct FrameLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Frame> frames;

  CampaignService::Emit emit() {
    return [this](const Frame& f) {
      // notify under the lock: the waiter may destroy this FrameLog the
      // moment it observes the terminal frame, so the notify must complete
      // before the waiter can re-acquire the mutex.
      std::lock_guard lock(mutex);
      frames.push_back(f);
      cv.notify_all();
    };
  }

  Frame wait_terminal() {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] {
      for (const Frame& f : frames) {
        if (terminal(f.kind)) return true;
      }
      return false;
    });
    for (const Frame& f : frames) {
      if (terminal(f.kind)) return f;
    }
    return {};  // unreachable
  }
};

// ---------------------------------------------------------------------------
// VSRP1 framing
// ---------------------------------------------------------------------------

TEST(Protocol, EncodeDecodeRoundTrip) {
  const Frame in{FrameKind::kCampaign, 0xDEADBEEFCAFEull,
                 R"({"kind": "campaign_request", "sample": 500})"};
  const std::vector<u8> wire = encode_frame(in);
  EXPECT_EQ(wire.size(),
            kFrameHeaderBytes + in.payload.size() + kFrameTrailerBytes);

  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  ASSERT_EQ(decoder.next(&out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kNeedMore);
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Protocol, EmptyPayloadAndByteAtATimeFeed) {
  const Frame in{FrameKind::kPing, 7, ""};
  const std::vector<u8> wire = encode_frame(in);

  FrameDecoder decoder;
  Frame out;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    // Before the last byte there is never a complete frame.
    EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kNeedMore) << i;
    decoder.feed({&wire[i], 1});
  }
  ASSERT_EQ(decoder.next(&out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.kind, FrameKind::kPing);
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_TRUE(out.payload.empty());
}

TEST(Protocol, BackToBackFramesInOneFeed) {
  std::vector<u8> wire;
  for (u64 id = 1; id <= 3; ++id) {
    const std::vector<u8> one =
        encode_frame({FrameKind::kStats, id, "{\"n\": " + std::to_string(id) + "}"});
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  for (u64 id = 1; id <= 3; ++id) {
    ASSERT_EQ(decoder.next(&out), FrameDecoder::Status::kFrame) << id;
    EXPECT_EQ(out.request_id, id);
  }
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kNeedMore);
}

TEST(Protocol, FlatJsonReadsWhatJsonReportWrites) {
  const std::string text = JsonReport("roundtrip")
                               .set_string("name", "tab\there \"quoted\" \\ \n")
                               .set_u64("big", 18446744073709551615ull)
                               .set("ratio", 0.25)
                               .set_bool("yes", true)
                               .set_bool("no", false)
                               .to_json();
  const FlatJson parsed = FlatJson::parse(text);
  EXPECT_EQ(parsed.get_u64("schema_version"),
            static_cast<u64>(kReportSchemaVersion));
  EXPECT_EQ(parsed.get_string("kind"), "roundtrip");
  EXPECT_EQ(parsed.get_string("name"), "tab\there \"quoted\" \\ \n");
  EXPECT_EQ(parsed.get_u64("big"), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(parsed.get_double("ratio"), 0.25);
  EXPECT_TRUE(parsed.get_bool("yes"));
  EXPECT_FALSE(parsed.get_bool("no"));
  EXPECT_FALSE(parsed.has("missing"));
  EXPECT_EQ(parsed.get_u64("missing", 42), 42u);
}

TEST(Protocol, FlatJsonRejectsMalformedInput) {
  EXPECT_THROW(FlatJson::parse("not json"), Error);
  EXPECT_THROW(FlatJson::parse("{\"unterminated\": \"str"), Error);
  EXPECT_THROW(FlatJson::parse("{\"nested\": {\"x\": 1}}"), Error);
  EXPECT_THROW(FlatJson::parse("{\"arr\": [1, 2]}"), Error);
  EXPECT_NO_THROW(FlatJson::parse("{}"));
  EXPECT_NO_THROW(FlatJson::parse("{\"null_ok\": null}"));
}

// ---------------------------------------------------------------------------
// ServiceConfig: the one validated flag surface
// ---------------------------------------------------------------------------

TEST(ServiceConfigTest, FlagTableDrivesSetAndRejectsJunk) {
  ServiceConfig config;
  config.set("--queue", "8");
  config.set("--executors", "3");
  config.set("--sched-weight", "alice=3,bob=2");
  config.set("--sched-weight", "carol=5");  // repeats merge
  config.set("--preempt", "4");
  config.set("--spool-dir", "/tmp/spool");
  EXPECT_EQ(config.queue_capacity, 8u);
  EXPECT_EQ(config.executors, 3u);
  EXPECT_EQ(config.weight_for("alice"), 3u);
  EXPECT_EQ(config.weight_for("bob"), 2u);
  EXPECT_EQ(config.weight_for("carol"), 5u);
  EXPECT_EQ(config.weight_for("unlisted"), 1u);
  EXPECT_EQ(config.preempt_chunks, 4u);
  EXPECT_EQ(config.checkpoint_dir(), "/tmp/spool");
  EXPECT_NO_THROW(config.validate());

  EXPECT_THROW(config.set("--queue", "abc"), ServiceConfigError);
  EXPECT_THROW(config.set("--queue", "-3"), ServiceConfigError);
  EXPECT_THROW(config.set("--no-such-flag", "1"), ServiceConfigError);
  EXPECT_THROW(config.set("--sched-weight", "=3"), ServiceConfigError);
  EXPECT_THROW(config.set("--sched-weight", "alice=0"), ServiceConfigError);
  EXPECT_THROW(config.set("--sched-weight", "alice"), ServiceConfigError);
  EXPECT_THROW(parse_sched_weights("a=1,,b=2"), ServiceConfigError);

  // Every row of the serve flag table round-trips through set() — the CLI
  // cannot offer a flag the config rejects.
  for (const ServiceConfigFlag& flag : service_config_flags()) {
    ServiceConfig fresh;
    const std::string value =
        std::string(flag.name) == "--sched-weight" ? "t=1" : "1";
    EXPECT_NO_THROW(fresh.set(flag.name, flag.takes_value ? value : ""))
        << flag.name;
  }
}

TEST(ServiceConfigTest, ValidateNamesTheInconsistentCombo) {
  ServiceConfig config;
  config.preempt_chunks = 2;  // preemption checkpoints need a directory
  EXPECT_THROW(config.validate(), ServiceConfigError);
  config.spool_dir = "/tmp/spool";
  EXPECT_NO_THROW(config.validate());
  config.queue_capacity = 0;
  EXPECT_THROW(config.validate(), ServiceConfigError);
  config.queue_capacity = 16;
  config.executors = 0;
  EXPECT_THROW(config.validate(), ServiceConfigError);
  config.executors = 2;
  config.socket_path.clear();
  EXPECT_THROW(config.validate(), ServiceConfigError);
}

// ---------------------------------------------------------------------------
// FairScheduler: stride scheduling over tenant lanes
// ---------------------------------------------------------------------------

TEST(FairSchedulerTest, WeightedShareUnderContention) {
  FairScheduler<int> sched;
  sched.set_weight("a", 2);
  sched.set_weight("b", 1);
  for (int i = 0; i < 6; ++i) sched.push("a", i);
  for (int i = 0; i < 3; ++i) sched.push("b", 100 + i);
  // Weight 2 vs weight 1: while both lanes have work, "a" is dispatched
  // twice as often.
  int a_in_first_six = 0;
  for (int i = 0; i < 6; ++i) {
    int v = -1;
    ASSERT_TRUE(sched.pop(&v));
    if (v < 100) ++a_in_first_six;
  }
  EXPECT_EQ(a_in_first_six, 4);
  EXPECT_EQ(sched.size(), 3u);
}

TEST(FairSchedulerTest, PushFrontResumesBeforeOwnBacklog) {
  FairScheduler<int> sched;
  sched.push("a", 1);
  sched.push("a", 2);
  int v = -1;
  ASSERT_TRUE(sched.pop(&v));
  EXPECT_EQ(v, 1);
  sched.push_front("a", 99);  // a preempted job parks at its lane's head
  ASSERT_TRUE(sched.pop(&v));
  EXPECT_EQ(v, 99);
  ASSERT_TRUE(sched.pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(sched.pop(&v));
}

TEST(FairSchedulerTest, ReturningTenantCannotClaimCreditForAbsence) {
  FairScheduler<int> sched;
  for (int i = 0; i < 5; ++i) sched.push("a", i);
  int v = -1;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(sched.pop(&v));
  // "a" consumed 5 quanta alone. A newcomer re-enters at the global virtual
  // time: next in line, but without 5 make-up dispatches.
  for (int i = 0; i < 3; ++i) sched.push("b", 100 + i);
  for (int i = 0; i < 3; ++i) sched.push("a", i);
  ASSERT_TRUE(sched.pop(&v));
  EXPECT_GE(v, 100);  // the newcomer goes first...
  int b_in_next_four = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sched.pop(&v));
    if (v >= 100) ++b_in_next_four;
  }
  EXPECT_EQ(b_in_next_four, 2);  // ...then strict alternation, no starvation
}

TEST(FairSchedulerTest, OtherTenantWaitingIsThePreemptionPredicate) {
  FairScheduler<int> sched;
  EXPECT_FALSE(sched.other_tenant_waiting("a"));
  sched.push("a", 1);
  EXPECT_FALSE(sched.other_tenant_waiting("a"));  // own backlog never preempts
  EXPECT_TRUE(sched.other_tenant_waiting("b"));
  sched.push("b", 2);
  EXPECT_TRUE(sched.other_tenant_waiting("a"));
  EXPECT_EQ(sched.tenants_waiting(), 2u);
}

// ---------------------------------------------------------------------------
// CampaignService (no sockets: handle() driven directly)
// ---------------------------------------------------------------------------

const char* small_campaign_payload() {
  return R"({"design": "lfsr", "device": "campaign", "sample": 300})";
}

TEST(CampaignService, PingStatsAndCancelAnswerInline) {
  CampaignService svc(ServiceConfig{});
  FrameLog ping;
  svc.handle({FrameKind::kPing, 5, ""}, ping.emit());
  // Inline kinds reply synchronously — no waiting needed.
  ASSERT_EQ(ping.frames.size(), 1u);
  EXPECT_EQ(ping.frames[0].kind, FrameKind::kResult);
  EXPECT_EQ(ping.frames[0].request_id, 5u);
  EXPECT_EQ(FlatJson::parse(ping.frames[0].payload).get_string("kind"), "pong");

  FrameLog stats;
  svc.handle({FrameKind::kStats, 6, ""}, stats.emit());
  ASSERT_EQ(stats.frames.size(), 1u);
  const FlatJson s = FlatJson::parse(stats.frames[0].payload);
  EXPECT_EQ(s.get_string("kind"), "service_stats");
  EXPECT_EQ(s.get_u64("pings"), 1u);
  EXPECT_FALSE(s.get_bool("store_enabled"));

  FrameLog cancel;
  svc.handle({FrameKind::kCancel, 7, R"({"target_id": 999})"}, cancel.emit());
  ASSERT_EQ(cancel.frames.size(), 1u);
  EXPECT_EQ(cancel.frames[0].kind, FrameKind::kResult);
  EXPECT_FALSE(FlatJson::parse(cancel.frames[0].payload).get_bool("cancelled"));
}

TEST(CampaignService, ReplyKindGetsTypedError) {
  CampaignService svc(ServiceConfig{});
  FrameLog log;
  svc.handle({FrameKind::kResult, 9, ""}, log.emit());
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(log.frames[0].kind, FrameKind::kError);
  EXPECT_EQ(FlatJson::parse(log.frames[0].payload).get_string("code"),
            "bad_request");
}

TEST(CampaignService, BadRequestJsonGetsTypedErrorNotCrash) {
  ServiceConfig config;
  config.executors = 1;
  config.pool_threads = 2;
  CampaignService svc(config);
  FrameLog log;
  svc.handle({FrameKind::kCampaign, 11, "{{{ not json"}, log.emit());
  const Frame reply = log.wait_terminal();
  EXPECT_EQ(reply.kind, FrameKind::kError);
  EXPECT_EQ(FlatJson::parse(reply.payload).get_string("code"), "bad_request");

  FrameLog unknown;
  svc.handle({FrameKind::kCampaign, 12, R"({"design": "nonsense"})"},
             unknown.emit());
  EXPECT_EQ(unknown.wait_terminal().kind, FrameKind::kError);
}

// Wedges the single executor inside request A's terminal emit, so the queue
// state is frozen while admission decisions are asserted. Deterministic: the
// executor cannot pop another job until `release()`.
class WedgedExecutor {
 public:
  explicit WedgedExecutor(CampaignService& svc) {
    svc.handle({FrameKind::kCampaign, 1, small_campaign_payload()},
               [this](const Frame& f) {
                 if (!terminal(f.kind)) return;
                 std::unique_lock lock(mutex_);
                 wedged_ = true;
                 cv_.notify_all();
                 cv_.wait(lock, [this] { return released_; });
               });
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return wedged_; });
  }

  void release() {
    {
      std::lock_guard lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool wedged_ = false;
  bool released_ = false;
};

TEST(CampaignService, FullQueueGetsTypedBusyWithRetryHint) {
  ServiceConfig config;
  config.queue_capacity = 1;
  config.executors = 1;
  config.pool_threads = 2;
  config.retry_after_ms = 7;
  CampaignService svc(config);
  WedgedExecutor wedge(svc);

  // The executor is wedged on request 1; request 2 takes the only slot.
  FrameLog queued;
  svc.handle({FrameKind::kCampaign, 2, small_campaign_payload()},
             queued.emit());
  // Request 3 finds the queue full: typed kBusy, emitted inline.
  FrameLog rejected;
  svc.handle({FrameKind::kCampaign, 3, small_campaign_payload()},
             rejected.emit());
  {
    std::lock_guard lock(rejected.mutex);
    ASSERT_EQ(rejected.frames.size(), 1u);
    EXPECT_EQ(rejected.frames[0].kind, FrameKind::kBusy);
    const FlatJson busy = FlatJson::parse(rejected.frames[0].payload);
    EXPECT_EQ(busy.get_string("reason"), "queue_full");
    EXPECT_EQ(busy.get_u64("retry_after_ms"), 7u);
  }

  wedge.release();
  // The queued request was never lost: it completes once the executor frees.
  EXPECT_EQ(queued.wait_terminal().kind, FrameKind::kResult);

  FrameLog stats;
  svc.handle({FrameKind::kStats, 90, ""}, stats.emit());
  const FlatJson s = FlatJson::parse(stats.frames[0].payload);
  EXPECT_EQ(s.get_u64("admission_rejects"), 1u);
  EXPECT_EQ(s.get_u64("requests_total"), 2u);
}

TEST(CampaignService, DrainingRejectsNewWorkButFinishesQueued) {
  ServiceConfig config;
  config.executors = 1;
  config.pool_threads = 2;
  CampaignService svc(config);

  FrameLog queued;
  svc.handle({FrameKind::kCampaign, 1, small_campaign_payload()},
             queued.emit());
  svc.begin_drain();

  FrameLog rejected;
  svc.handle({FrameKind::kCampaign, 2, small_campaign_payload()},
             rejected.emit());
  {
    std::lock_guard lock(rejected.mutex);
    ASSERT_EQ(rejected.frames.size(), 1u);
    EXPECT_EQ(rejected.frames[0].kind, FrameKind::kBusy);
    EXPECT_EQ(FlatJson::parse(rejected.frames[0].payload).get_string("reason"),
              "draining");
  }

  svc.wait_drained();
  // The in-flight request finished and delivered before the drain completed.
  std::lock_guard lock(queued.mutex);
  bool delivered = false;
  for (const Frame& f : queued.frames) delivered |= f.kind == FrameKind::kResult;
  EXPECT_TRUE(delivered);
}

TEST(CampaignService, CancelBeforeStartYieldsTypedError) {
  ServiceConfig config;
  config.queue_capacity = 4;
  config.executors = 1;
  config.pool_threads = 2;
  CampaignService svc(config);
  WedgedExecutor wedge(svc);

  FrameLog queued;
  svc.handle({FrameKind::kCampaign, 2, small_campaign_payload()},
             queued.emit());
  FrameLog cancel;
  svc.handle({FrameKind::kCancel, 3, R"({"target_id": 2})"}, cancel.emit());
  EXPECT_TRUE(FlatJson::parse(cancel.frames[0].payload).get_bool("cancelled"));

  wedge.release();
  const Frame reply = queued.wait_terminal();
  EXPECT_EQ(reply.kind, FrameKind::kError);
  EXPECT_EQ(FlatJson::parse(reply.payload).get_string("code"), "cancelled");
}

TEST(CampaignService, CancelIsScopedToTheIssuingClient) {
  ServiceConfig config;
  config.queue_capacity = 4;
  config.executors = 1;
  config.pool_threads = 2;
  CampaignService svc(config);
  WedgedExecutor wedge(svc);

  // Two connections each submit request id 2 — ids are client-chosen and
  // only unique per connection.
  FrameLog a;
  svc.handle({FrameKind::kCampaign, 2, small_campaign_payload()}, a.emit(),
             /*client_id=*/1);
  FrameLog b;
  svc.handle({FrameKind::kCampaign, 2, small_campaign_payload()}, b.emit(),
             /*client_id=*/2);

  // A cancel from a connection that owns no such request touches nothing.
  EXPECT_FALSE(svc.cancel(2, /*client_id=*/42));

  // Client B cancels *its* request 2; client A's must be untouched.
  FrameLog cancel;
  svc.handle({FrameKind::kCancel, 3, R"({"target_id": 2})"}, cancel.emit(),
             /*client_id=*/2);
  EXPECT_TRUE(FlatJson::parse(cancel.frames[0].payload).get_bool("cancelled"));

  wedge.release();
  const Frame a_reply = a.wait_terminal();
  EXPECT_EQ(a_reply.kind, FrameKind::kResult) << a_reply.payload;
  const Frame b_reply = b.wait_terminal();
  EXPECT_EQ(b_reply.kind, FrameKind::kError);
  EXPECT_EQ(FlatJson::parse(b_reply.payload).get_string("code"), "cancelled");
}

TEST(CampaignService, CancelMidFlightDeliversInterruptedResult) {
  ServiceConfig config;
  config.executors = 1;
  config.pool_threads = 2;
  CampaignService svc(config);

  // Many small chunks with per-chunk telemetry: the first kProgress frame
  // proves the campaign is mid-flight, and the cancel lands at the next
  // chunk boundary.
  FrameLog log;
  std::atomic<bool> cancelled_once{false};
  svc.handle({FrameKind::kCampaign, 21,
              R"({"design": "lfsr", "device": "campaign", "sample": 4000,)"
              R"( "chunk": 64, "progress": true, "progress_every_chunks": 1})"},
             [&](const Frame& f) {
               if (f.kind == FrameKind::kProgress &&
                   !cancelled_once.exchange(true)) {
                 EXPECT_TRUE(svc.cancel(21));
               }
               log.emit()(f);
             });
  const Frame reply = log.wait_terminal();
  ASSERT_EQ(reply.kind, FrameKind::kResult);
  const FlatJson report = FlatJson::parse(reply.payload);
  EXPECT_TRUE(report.get_bool("interrupted"));
  EXPECT_LT(report.get_u64("injections"), 4000u);
  EXPECT_TRUE(cancelled_once.load());
}

TEST(CampaignService, PreemptedCampaignResumesFromCheckpointBitIdentical) {
  const std::string spool = fresh_dir("svc_preempt_spool");
  ServiceConfig config;
  config.executors = 1;  // one executor: preemption is the ONLY way B runs
  config.pool_threads = 2;
  config.queue_capacity = 8;
  config.preempt_chunks = 1;
  config.spool_dir = spool;
  CampaignService svc(config);

  // Tenant "alice" starts a long campaign with per-chunk telemetry.
  FrameLog a;
  svc.handle({FrameKind::kCampaign, 1,
              R"({"design": "lfsr", "device": "campaign", "sample": 4000,)"
              R"( "chunk": 64, "tenant": "alice", "progress": true,)"
              R"( "progress_every_chunks": 1})"},
             a.emit(), /*client_id=*/1);
  {
    // Wait until alice is demonstrably mid-flight before bob arrives.
    std::unique_lock lock(a.mutex);
    a.cv.wait(lock, [&] {
      for (const Frame& f : a.frames) {
        if (f.kind == FrameKind::kProgress) return true;
      }
      return false;
    });
  }

  // Tenant "bob" submits a short campaign. The single executor is occupied
  // by alice — only preemption at a chunk boundary can dispatch bob.
  FrameLog b;
  svc.handle({FrameKind::kCampaign, 2,
              R"({"design": "lfsr", "device": "campaign", "sample": 300,)"
              R"( "tenant": "bob"})"},
             b.emit(), /*client_id=*/2);
  EXPECT_EQ(b.wait_terminal().kind, FrameKind::kResult);

  // Alice's campaign parked at a checkpoint, resumed, and finished as if
  // never interrupted.
  const Frame a_reply = a.wait_terminal();
  ASSERT_EQ(a_reply.kind, FrameKind::kResult) << a_reply.payload;
  const FlatJson report = FlatJson::parse(a_reply.payload);
  EXPECT_FALSE(report.get_bool("interrupted"));
  EXPECT_GT(report.get_u64("resumed_injections"), 0u);  // proof of resume
  EXPECT_EQ(report.get_u64("injections"), 4000u);

  FrameLog stats;
  svc.handle({FrameKind::kStats, 50, ""}, stats.emit());
  const FlatJson s = FlatJson::parse(stats.frames[0].payload);
  EXPECT_GE(s.get_u64("preemptions"), 1u);

  // The preempt-resume seam is invisible in the result: bit-identical to the
  // same campaign run directly through the library in one sitting.
  const PlacedDesign design =
      compile(design_by_name("lfsr"), device_by_name("campaign"));
  const CampaignResult direct = run_campaign(
      design,
      CampaignOptions{}
          .with_injection(InjectionOptions{}
                              .with_persistence(false)
                              .with_pruning(true)
                              .with_gang_width(served_gang_width_default()))
          .with_chunk_size(64)
          .with_sample(4000, 99));
  EXPECT_EQ(report.get_u64("sensitive_digest"), direct.sensitive_digest(design));
  EXPECT_EQ(report.get_u64("failures"), direct.failures);
  std::filesystem::remove_all(spool);
}

TEST(CampaignService, ServedGangWidthDefaultIsTheWidestCompiledTier) {
  // Satellite contract: an unspecified gang_width serves the widest SIMD
  // tier this binary can actually run (verdicts and digests are width-
  // invariant, so this is purely a throughput default).
  EXPECT_EQ(served_gang_width_default(), preferred_gang_width());
  EXPECT_TRUE(gang_width_supported(preferred_gang_width()));
}

TEST(CampaignService, RecampaignWithoutStoreIsTypedFailure) {
  ServiceConfig config;
  config.executors = 1;
  config.pool_threads = 2;
  CampaignService svc(config);
  FrameLog log;
  svc.handle({FrameKind::kRecampaign, 31, small_campaign_payload()},
             log.emit());
  const Frame reply = log.wait_terminal();
  EXPECT_EQ(reply.kind, FrameKind::kError);
  EXPECT_EQ(FlatJson::parse(reply.payload).get_string("code"), "failed");
}

// ---------------------------------------------------------------------------
// Loopback integration: SocketServer + ServiceClient
// ---------------------------------------------------------------------------

struct LoopbackServer {
  explicit LoopbackServer(ServiceConfig config) : server(std::move(config)) {
    server.start();
    runner = std::thread([this] { server.run(); });
  }
  ~LoopbackServer() {
    if (runner.joinable()) {
      server.request_stop();
      runner.join();
    }
  }
  void stop_and_join() {
    server.request_stop();
    runner.join();
  }
  SocketServer server;
  std::thread runner;
};

ServiceConfig loopback_config(const char* socket_name) {
  ServiceConfig config;
  config.socket_path = ::testing::TempDir() + socket_name;
  std::filesystem::remove(config.socket_path);
  config.queue_capacity = 32;
  config.executors = 3;
  config.pool_threads = 3;
  return config;
}

TEST(ServiceLoopback, ConcurrentClientsMatchDirectRunAndShareVerdicts) {
  const std::string dir = fresh_dir("svc_loopback_store");
  ServiceConfig options = loopback_config("svc_loop.sock");
  options.cache_dir = dir;
  LoopbackServer loop(options);

  const std::string payload = JsonReport("campaign_request")
                                  .set_string("design", "lfsrmult")
                                  .set_string("device", "campaign")
                                  .set_u64("sample", 1200)
                                  .to_json();
  constexpr std::size_t kClients = 8;
  std::vector<u64> digests(kClients, 0);
  std::vector<u64> hits(kClients, 0);
  std::vector<u64> injections(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServiceClient client =
          ServiceClient::connect_unix(options.socket_path);
      const Frame reply = client.call(FrameKind::kCampaign, payload);
      EXPECT_EQ(reply.kind, FrameKind::kResult) << reply.payload;
      if (reply.kind != FrameKind::kResult) return;
      const FlatJson report = FlatJson::parse(reply.payload);
      digests[c] = report.get_u64("sensitive_digest");
      hits[c] = report.get_u64("cache_hits");
      injections[c] = report.get_u64("injections");
    });
  }
  for (std::thread& t : clients) t.join();

  // The ground truth: the same campaign run directly through the library
  // with the server's defaults (gang 64, pruning on, sample seed 99).
  const PlacedDesign design =
      compile(design_by_name("lfsrmult"), device_by_name("campaign"));
  const CampaignResult direct = run_campaign(
      design, CampaignOptions{}
                  .with_injection(InjectionOptions{}
                                      .with_persistence(false)
                                      .with_pruning(true)
                                      .with_gang_width(64))
                  .with_sample(1200, 99));
  const u64 expected = direct.sensitive_digest(design);

  u64 total_hits = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(digests[c], expected) << "client " << c;
    EXPECT_EQ(injections[c], direct.injections) << "client " << c;
    total_hits += hits[c];
  }
  // Concurrent clients share one store: someone must have reused a verdict
  // another client computed.
  EXPECT_GT(total_hits, 0u);

  // The shared store also serves delta re-campaigns across the same socket.
  ServiceClient client = ServiceClient::connect_unix(options.socket_path);
  const Frame re = client.call(FrameKind::kRecampaign, payload);
  ASSERT_EQ(re.kind, FrameKind::kResult) << re.payload;
  const FlatJson rr = FlatJson::parse(re.payload);
  EXPECT_TRUE(rr.get_bool("sensitive_match"));
  EXPECT_EQ(rr.get_u64("current_sensitive_digest"), expected);

  loop.stop_and_join();
  std::filesystem::remove_all(dir);
}

TEST(ServiceLoopback, AcceptedAndProgressStreamBeforeResult) {
  ServiceConfig options = loopback_config("svc_progress.sock");
  LoopbackServer loop(options);

  ServiceClient client = ServiceClient::connect_unix(options.socket_path);
  const std::string payload =
      R"({"design": "lfsr", "device": "campaign", "sample": 2000,)"
      R"( "chunk": 64, "progress": true, "progress_every_chunks": 1})";
  const u64 id = client.send_request(FrameKind::kCampaign, payload);
  u64 progress_frames = 0;
  u64 last_done = 0;
  const Frame reply = client.wait(id, [&](const Frame& f) {
    if (f.kind != FrameKind::kProgress) return;
    ++progress_frames;
    const FlatJson p = FlatJson::parse(f.payload);
    const u64 done = p.get_u64("injections_done");
    EXPECT_GE(done, last_done);
    last_done = done;
  });
  ASSERT_EQ(reply.kind, FrameKind::kResult) << reply.payload;
  EXPECT_GT(progress_frames, 0u);
  const FlatJson report = FlatJson::parse(reply.payload);
  EXPECT_FALSE(report.get_bool("interrupted"));
  EXPECT_GT(report.get_u64("injections"), 0u);
}

TEST(ServiceLoopback, DrainDeliversInFlightResultThenExits) {
  ServiceConfig options = loopback_config("svc_drain.sock");
  LoopbackServer loop(options);

  ServiceClient client = ServiceClient::connect_unix(options.socket_path);
  const u64 id = client.send_request(
      FrameKind::kCampaign,
      R"({"design": "lfsrmult", "device": "campaign", "sample": 1500})");
  // Stop the server the moment the request is admitted: the drain must still
  // finish the in-flight campaign and deliver its result.
  std::atomic<bool> stopped{false};
  const Frame reply = client.wait(id, [&](const Frame& f) {
    if (f.kind == FrameKind::kAccepted && !stopped.exchange(true)) {
      loop.server.request_stop();
    }
  });
  // A fast executor may beat the kAccepted handoff; stop now in that case.
  if (!stopped.exchange(true)) loop.server.request_stop();
  EXPECT_EQ(reply.kind, FrameKind::kResult) << reply.payload;
  loop.runner.join();
  // A clean drain removes the socket.
  EXPECT_FALSE(std::filesystem::exists(options.socket_path));
}

// ---------------------------------------------------------------------------
// Session API (v4): ServiceSession + JobHandle over the event loop
// ---------------------------------------------------------------------------

TEST(ServiceSessionApi, ConcurrentJobsWaitOutOfOrderOnOneConnection) {
  ServiceConfig options = loopback_config("svc_session.sock");
  LoopbackServer loop(options);

  ServiceSession session = ServiceSession::connect_unix(options.socket_path);
  JobHandle big = session.submit(
      FrameKind::kCampaign,
      R"({"design": "lfsrmult", "device": "campaign", "sample": 1500})");
  JobHandle small = session.submit(
      FrameKind::kCampaign,
      R"({"design": "lfsr", "device": "campaign", "sample": 300})");
  ASSERT_TRUE(big.valid());
  ASSERT_TRUE(small.valid());
  EXPECT_NE(big.id(), small.id());

  // Waits land in any order; the reader demultiplexes by request id.
  const Frame small_reply = small.wait();
  EXPECT_EQ(small_reply.kind, FrameKind::kResult) << small_reply.payload;
  const Frame big_reply = big.wait();
  EXPECT_EQ(big_reply.kind, FrameKind::kResult) << big_reply.payload;
  EXPECT_TRUE(big.poll());  // terminal already delivered: poll is immediate
  EXPECT_TRUE(session.connected());
  EXPECT_EQ(session.ping().kind, FrameKind::kResult);
}

TEST(ServiceSessionApi, SubmitCallbackStreamsProgressFromReaderThread) {
  ServiceConfig options = loopback_config("svc_session_events.sock");
  LoopbackServer loop(options);

  ServiceSession session = ServiceSession::connect_unix(options.socket_path);
  std::atomic<u64> progress{0};
  std::atomic<bool> accepted{false};
  JobHandle job = session.submit(
      FrameKind::kCampaign,
      R"({"design": "lfsr", "device": "campaign", "sample": 2000,)"
      R"( "chunk": 64, "progress": true, "progress_every_chunks": 1})",
      [&](const Frame& f) {
        if (f.kind == FrameKind::kAccepted) accepted = true;
        if (f.kind == FrameKind::kProgress) ++progress;
      });
  const Frame reply = job.wait();
  ASSERT_EQ(reply.kind, FrameKind::kResult) << reply.payload;
  EXPECT_TRUE(accepted.load());
  EXPECT_GT(progress.load(), 0u);
}

TEST(ServiceSessionApi, JobHandleOutlivesItsSession) {
  ServiceConfig options = loopback_config("svc_session_lifetime.sock");
  LoopbackServer loop(options);

  JobHandle job;
  {
    ServiceSession session =
        ServiceSession::connect_unix(options.socket_path);
    job = session.submit(
        FrameKind::kCampaign,
        R"({"design": "lfsr", "device": "campaign", "sample": 600})");
  }  // session destroyed — the handle keeps the connection + reader alive
  const Frame reply = job.wait();
  EXPECT_EQ(reply.kind, FrameKind::kResult) << reply.payload;
}

TEST(ServiceSessionApi, CancelThroughTheHandleDeliversInterruptedResult) {
  ServiceConfig options = loopback_config("svc_session_cancel.sock");
  LoopbackServer loop(options);

  ServiceSession session = ServiceSession::connect_unix(options.socket_path);
  std::atomic<bool> mid_flight{false};
  JobHandle job = session.submit(
      FrameKind::kCampaign,
      R"({"design": "lfsr", "device": "campaign", "sample": 8000,)"
      R"( "chunk": 64, "progress": true, "progress_every_chunks": 1})",
      [&](const Frame& f) {
        if (f.kind == FrameKind::kProgress) mid_flight = true;
      });
  while (!mid_flight.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(job.cancel());  // cancel() must run OFF the reader thread
  const Frame reply = job.wait();
  ASSERT_EQ(reply.kind, FrameKind::kResult) << reply.payload;
  const FlatJson report = FlatJson::parse(reply.payload);
  EXPECT_TRUE(report.get_bool("interrupted"));
  EXPECT_LT(report.get_u64("injections"), 8000u);
  // The session survives a cancel: submit again on the same connection.
  EXPECT_EQ(session.ping().kind, FrameKind::kResult);
}

TEST(ServiceSessionApi, WaitForTimesOutWithoutConsumingTheJob) {
  ServiceConfig options = loopback_config("svc_session_timeout.sock");
  LoopbackServer loop(options);

  ServiceSession session = ServiceSession::connect_unix(options.socket_path);
  JobHandle job = session.submit(
      FrameKind::kCampaign,
      R"({"design": "lfsrmult", "device": "campaign", "sample": 2000})");
  // An impatient poll may time out; the job stays live and a later wait
  // still returns the terminal frame.
  (void)job.wait_for(std::chrono::milliseconds(1));
  const auto reply = job.wait_for(std::chrono::milliseconds(60000));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->kind, FrameKind::kResult) << reply->payload;
}

}  // namespace
}  // namespace vscrub
