#include <gtest/gtest.h>

#include <bit>
#include <string>

#include "common/rng.h"
#include "designs/test_designs.h"
#include "netlist/builder.h"
#include "netlist/drc.h"
#include "netlist/refsim.h"

namespace vscrub {
namespace {

void drive_bus(RefSim& sim, const Netlist& nl, const std::string& prefix,
               u64 value, std::size_t width) {
  std::size_t port = 0;
  for (CellId id : nl.input_cells()) {
    const std::string& name = nl.cell(id).name;
    if (name.rfind(prefix + "[", 0) == 0) {
      const std::size_t idx = static_cast<std::size_t>(
          std::stoul(name.substr(prefix.size() + 1)));
      if (idx < width) sim.set_input(port, (value >> idx) & 1);
    }
    ++port;
  }
}

u64 read_bus(const RefSim& sim, const Netlist& nl, const std::string& prefix) {
  u64 value = 0;
  std::size_t port = 0;
  for (CellId id : nl.output_cells()) {
    const std::string& name = nl.cell(id).name;
    if (name.rfind(prefix + "[", 0) == 0) {
      const std::size_t idx = static_cast<std::size_t>(
          std::stoul(name.substr(prefix.size() + 1)));
      if (sim.output(port)) value |= u64{1} << idx;
    }
    ++port;
  }
  return value;
}

TEST(Builder, AdderMatchesArithmetic) {
  Netlist nl("adder");
  Builder b(nl);
  const Bus a = b.input_bus("a", 12);
  const Bus c = b.input_bus("b", 12);
  b.output_bus("s", b.add(a, c));
  ASSERT_TRUE(run_drc(nl).ok());
  RefSim sim(nl);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const u64 x = rng.uniform(1 << 12), y = rng.uniform(1 << 12);
    drive_bus(sim, nl, "a", x, 12);
    drive_bus(sim, nl, "b", y, 12);
    sim.eval();
    EXPECT_EQ(read_bus(sim, nl, "s"), x + y);
  }
}

TEST(Builder, MultiplierMatchesArithmetic) {
  Netlist nl("mul");
  Builder b(nl);
  const Bus a = b.input_bus("a", 8);
  const Bus c = b.input_bus("b", 8);
  b.output_bus("p", b.multiply(a, c, /*pipeline_rows=*/0));
  RefSim sim(nl);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const u64 x = rng.uniform(256), y = rng.uniform(256);
    drive_bus(sim, nl, "a", x, 8);
    drive_bus(sim, nl, "b", y, 8);
    sim.eval();
    EXPECT_EQ(read_bus(sim, nl, "p"), x * y);
  }
}

TEST(Builder, PipelinedMultiplierMatchesAfterLatency) {
  Netlist nl("mulp");
  Builder b(nl);
  const Bus a = b.input_bus("a", 8);
  const Bus c = b.input_bus("b", 8);
  b.output_bus("p", b.multiply(a, c, /*pipeline_rows=*/2));
  RefSim sim(nl);
  // Hold inputs constant: after the pipeline flushes, the product appears.
  drive_bus(sim, nl, "a", 13, 8);
  drive_bus(sim, nl, "b", 11, 8);
  for (int i = 0; i < 16; ++i) {
    sim.eval();
    sim.clock();
  }
  sim.eval();
  EXPECT_EQ(read_bus(sim, nl, "p"), 13u * 11u);
}

TEST(Builder, CounterCounts) {
  Netlist nl("ctr");
  Builder b(nl);
  b.output_bus("q", b.counter(10, 5));
  RefSim sim(nl);
  for (u64 t = 0; t < 40; ++t) {
    sim.eval();
    EXPECT_EQ(read_bus(sim, nl, "q"), (5 + t) & 0x3FF);
    sim.clock();
  }
}

TEST(Builder, CounterWrapsAround) {
  Netlist nl("ctrw");
  Builder b(nl);
  b.output_bus("q", b.counter(4, 14));
  RefSim sim(nl);
  std::vector<u64> seen;
  for (int t = 0; t < 5; ++t) {
    sim.eval();
    seen.push_back(read_bus(sim, nl, "q"));
    sim.clock();
  }
  EXPECT_EQ(seen, (std::vector<u64>{14, 15, 0, 1, 2}));
}

TEST(Builder, LfsrHasLongPeriodAndNeverZero) {
  Netlist nl("lfsr");
  Builder b(nl);
  b.output_bus("q", b.lfsr(16, 0, 0xACE1));
  RefSim sim(nl);
  const u64 start = [&] {
    sim.eval();
    return read_bus(sim, nl, "q");
  }();
  u64 period = 0;
  for (u64 t = 1; t <= 70000; ++t) {
    sim.clock();
    const u64 v = read_bus(sim, nl, "q");
    ASSERT_NE(v, 0u) << "LFSR reached the all-zero lockup state";
    if (v == start) {
      period = t;
      break;
    }
  }
  EXPECT_EQ(period, 65535u);  // maximal length for the width-16 taps
}

TEST(Builder, XorReduceParity) {
  Netlist nl("xr");
  Builder b(nl);
  const Bus in = b.input_bus("a", 13);
  nl.add_output("p", b.xor_reduce(in));
  RefSim sim(nl);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const u64 v = rng.uniform(1 << 13);
    drive_bus(sim, nl, "a", v, 13);
    sim.eval();
    EXPECT_EQ(sim.output(0), (std::popcount(v) & 1) != 0);
  }
}

TEST(Builder, ConstantFolding) {
  Netlist nl("fold");
  Builder b(nl);
  const NetId x = nl.add_input("x");
  const NetId t = nl.const_net(true);
  const NetId f = nl.const_net(false);
  EXPECT_EQ(b.and_(x, t), x);
  EXPECT_EQ(b.or_(x, f), x);
  EXPECT_EQ(b.xor_(x, f), x);
  EXPECT_EQ(b.and_(x, f), f);
  EXPECT_EQ(b.or_(x, t), t);
  EXPECT_EQ(b.mux2(t, x, f), f);
  EXPECT_EQ(b.mux2(f, x, f), x);
}

TEST(Builder, Srl16Delay) {
  Netlist nl("srl");
  Builder b(nl);
  const NetId d = nl.add_input("d");
  nl.add_output("q", b.delay_srl(d, 7));
  RefSim sim(nl);
  Rng rng(4);
  std::vector<u8> history;
  for (int t = 0; t < 100; ++t) {
    const bool v = rng.next() & 1;
    history.push_back(v);
    sim.set_input(0, v);
    sim.eval();
    if (t >= 7) {
      EXPECT_EQ(sim.output(0), history[static_cast<std::size_t>(t - 7)] != 0)
          << "cycle " << t;
    }
    sim.clock();
  }
}

TEST(Builder, LongSrlDelayChains) {
  Netlist nl("srl2");
  Builder b(nl);
  const NetId d = nl.add_input("d");
  nl.add_output("q", b.delay_srl(d, 35));  // chains three SRL16s
  RefSim sim(nl);
  std::vector<u8> history;
  Rng rng(6);
  for (int t = 0; t < 120; ++t) {
    const bool v = rng.next() & 1;
    history.push_back(v);
    sim.set_input(0, v);
    sim.eval();
    if (t >= 35) {
      EXPECT_EQ(sim.output(0), history[static_cast<std::size_t>(t - 35)] != 0);
    }
    sim.clock();
  }
}

TEST(RefSim, BramWriteFirstSemantics) {
  Netlist nl("bram");
  Builder b(nl);
  const NetId we = nl.add_input("we");
  Bus addr = b.input_bus("addr", 8);
  Bus din = b.input_bus("din", 16);
  std::array<NetId, 8> addr_arr{};
  std::copy(addr.begin(), addr.end(), addr_arr.begin());
  std::array<NetId, 16> din_arr{};
  std::copy(din.begin(), din.end(), din_arr.begin());
  std::vector<u16> init(256);
  for (int i = 0; i < 256; ++i) init[static_cast<std::size_t>(i)] = static_cast<u16>(i * 3);
  const auto ports = nl.add_bram(we, addr_arr, din_arr, init);
  Bus dout(ports.dout.begin(), ports.dout.end());
  b.output_bus("dout", dout);
  RefSim sim(nl);

  // Read address 7 (registered: appears after the clock).
  sim.set_input(0, false);
  drive_bus(sim, nl, "addr", 7, 8);
  sim.eval();
  sim.clock();
  EXPECT_EQ(read_bus(sim, nl, "dout"), 21u);

  // Write-first: writing 0x1234 to address 7 shows the new data immediately
  // after the edge.
  sim.set_input(0, true);
  drive_bus(sim, nl, "din", 0x1234, 16);
  sim.eval();
  sim.clock();
  EXPECT_EQ(read_bus(sim, nl, "dout"), 0x1234u);

  // Read back the written word.
  sim.set_input(0, false);
  sim.eval();
  sim.clock();
  EXPECT_EQ(read_bus(sim, nl, "dout"), 0x1234u);
}

TEST(Drc, CatchesCombinationalCycle) {
  Netlist nl("loop");
  Builder b(nl);
  const NetId x = nl.add_input("x");
  const NetId g1 = nl.add_lut(0x6, {x, x});  // placeholder second input
  const NetId g2 = nl.add_lut(0x6, {g1, x});
  nl.rewire_input(nl.net(g1).driver, 1, g2);  // close a comb loop
  nl.add_output("o", g2);
  const auto report = run_drc(nl);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].find("cycle"), std::string::npos);
}

TEST(Drc, CleanDesignsPass) {
  for (const Netlist& nl :
       {designs::lfsr_cluster(2), designs::mult_tree(8), designs::vmult(8),
        designs::counter_adder(12), designs::multiply_add(8),
        designs::lfsr_multiplier(8), designs::fir_preproc(3),
        designs::bram_selftest(1)}) {
    const auto report = run_drc(nl);
    EXPECT_TRUE(report.ok()) << nl.name() << ": "
                             << (report.errors.empty() ? "" : report.errors[0]);
  }
}

TEST(Designs, StatsScaleWithParameters) {
  const auto s1 = designs::lfsr_cluster(1).stats();
  const auto s2 = designs::lfsr_cluster(2).stats();
  const auto s4 = designs::lfsr_cluster(4).stats();
  EXPECT_NEAR(static_cast<double>(s2.ffs), 2.0 * static_cast<double>(s1.ffs), 4.0);
  EXPECT_NEAR(static_cast<double>(s4.ffs), 4.0 * static_cast<double>(s1.ffs), 8.0);
  // Multiplier area grows quadratically with operand width.
  const auto m8 = designs::mult_tree(8).stats();
  const auto m16 = designs::mult_tree(16).stats();
  EXPECT_GT(m16.luts, 3 * m8.luts);
}

TEST(Designs, ReferenceSimsRun) {
  // Every design family must simulate without X/undefined behaviour.
  for (const Netlist& nl :
       {designs::lfsr_cluster(1), designs::mult_tree(8),
        designs::counter_adder(8), designs::multiply_add(6),
        designs::lfsr_multiplier(8), designs::fir_preproc(3, 4)}) {
    RefSim sim(nl);
    for (std::size_t p = 0; p < nl.num_inputs(); ++p) sim.set_input(p, true);
    for (int t = 0; t < 32; ++t) {
      sim.eval();
      sim.clock();
    }
    SUCCEED();
  }
}

}  // namespace
}  // namespace vscrub
