#include <gtest/gtest.h>

#include <set>

#include "bist/bist.h"
#include "designs/test_designs.h"
#include "pnr/pnr.h"

namespace vscrub {
namespace {

TEST(WireTest, CleanFabricPassesWithPaperOperationCounts) {
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8));
  FabricSim fabric(space);
  const auto r = run_wire_test(space, fabric);
  EXPECT_TRUE(r.pass());
  // Paper §II-B: twenty partial reconfigurations and 40 readbacks test the
  // 80 OMUX wires of each CLB. (The initial load of the test design is a
  // full configuration; 19 walk steps follow — we count the initial load as
  // the 20th reconfiguration.)
  EXPECT_EQ(r.partial_reconfigs + 1, kOmuxWiresPerDir);
  EXPECT_EQ(r.readbacks, 2 * kOmuxWiresPerDir);
}

TEST(WireTest, DetectsAndIsolatesStuckAtOne) {
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8));
  FabricSim fabric(space);
  FabricSim::PermanentFault fault;
  fault.kind = FabricSim::StuckKind::kWireStuck1;
  fault.tile = TileCoord{3, 4};
  fault.dir = Dir::kEast;
  fault.windex = 7;
  fabric.inject_permanent_fault(fault);

  const auto r = run_wire_test(space, fabric);
  ASSERT_FALSE(r.pass());
  // The first finding appears when wire 7 is under test, at the receiving
  // neighbor of the faulted tile, on the east chain (site 1 == kEast).
  bool isolated = false;
  for (const auto& f : r.findings) {
    if (f.windex == 7 && f.tile == TileCoord{3, 5} &&
        f.site == static_cast<u8>(Dir::kEast)) {
      isolated = true;
      EXPECT_TRUE(f.stuck_at_one);
      break;
    }
  }
  EXPECT_TRUE(isolated) << "fault not isolated to the faulted wire/tile";
  // No findings while other wires were under test... the fault is specific.
  for (const auto& f : r.findings) EXPECT_EQ(f.windex, 7) << "false alarm";
}

TEST(WireTest, DetectsStuckAtZeroOnSecondStep) {
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8));
  FabricSim fabric(space);
  FabricSim::PermanentFault fault;
  fault.kind = FabricSim::StuckKind::kWireStuck0;
  fault.tile = TileCoord{2, 2};
  fault.dir = Dir::kSouth;
  fault.windex = 3;
  fabric.inject_permanent_fault(fault);

  const auto r = run_wire_test(space, fabric);
  ASSERT_FALSE(r.pass());
  bool found_stuck0 = false;
  for (const auto& f : r.findings) {
    if (f.windex == 3 && !f.stuck_at_one) found_stuck0 = true;
  }
  EXPECT_TRUE(found_stuck0);
}

TEST(WireTest, DetectsFaultsInEveryDirection) {
  for (int d = 0; d < kDirs; ++d) {
    auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8));
    FabricSim fabric(space);
    FabricSim::PermanentFault fault;
    fault.kind = FabricSim::StuckKind::kWireStuck1;
    fault.tile = TileCoord{4, 4};
    fault.dir = static_cast<Dir>(d);
    fault.windex = 11;
    fabric.inject_permanent_fault(fault);
    const auto r = run_wire_test(space, fabric);
    EXPECT_FALSE(r.pass()) << "direction " << d;
  }
}

TEST(ClbBist, CleanPatternReportsNoError) {
  const auto pattern = compile(bist_clb_cascade(6, 20), device_tiny(12, 12));
  FabricSim fabric(pattern.space);
  fabric.full_configure(pattern.bitstream);
  const auto r = run_clb_bist(pattern, fabric, 300);
  EXPECT_FALSE(r.error_detected);
  EXPECT_GT(r.slice_coverage, 0.3);
}

TEST(ClbBist, DetectsStuckOutputInCascade) {
  const auto pattern = compile(bist_clb_cascade(6, 20), device_tiny(12, 12));
  FabricSim fabric(pattern.space);
  fabric.full_configure(pattern.bitstream);
  // Stick the registered output of a used site: pick a routed net's source.
  ASSERT_FALSE(pattern.routed_nets.empty());
  int detected = 0, tried = 0;
  for (const RoutedNet& net : pattern.routed_nets) {
    if (net.wires.empty() || tried >= 8) continue;
    ++tried;
    fabric.full_configure(pattern.bitstream);
    fabric.clear_permanent_faults();
    FabricSim::PermanentFault fault;
    fault.kind = FabricSim::StuckKind::kWireStuck1;
    fault.tile = net.wires[0].tile;
    fault.dir = net.wires[0].dir;
    fault.windex = net.wires[0].windex;
    fabric.inject_permanent_fault(fault);
    const auto r = run_clb_bist(pattern, fabric, 300);
    if (r.error_detected) ++detected;
  }
  EXPECT_GE(detected, tried / 2) << "BIST missed too many injected faults";
}

TEST(ClbBist, ComplementaryPatternsIncreaseCoverage) {
  // Two placements (the paper's complementary design pair) cover more
  // slices together than either alone.
  PnrOptions o1;
  o1.seed = 1;
  PnrOptions o2;
  o2.seed = 12345;
  const auto p1 = compile(std::make_shared<const Netlist>(bist_clb_cascade(6, 20)),
                          std::make_shared<const ConfigSpace>(device_tiny(12, 12)), o1);
  const auto p2 = compile(std::make_shared<const Netlist>(bist_clb_cascade(6, 20)),
                          std::make_shared<const ConfigSpace>(device_tiny(12, 12)), o2);
  // Union coverage over slices.
  std::set<std::pair<u32, u8>> used;
  auto collect = [&](const PlacedDesign& p) {
    for (const RoutedNet& net : p.routed_nets) {
      for (const RoutedWire& rw : net.wires) {
        used.insert({p.space->geometry().tile_index(rw.tile), 0});
      }
    }
  };
  collect(p1);
  const std::size_t solo = used.size();
  collect(p2);
  EXPECT_GE(used.size(), solo);
}

TEST(BramBist, CleanRamPasses) {
  const auto checker = compile(designs::bram_selftest(2), device_tiny(8, 8, 2));
  FabricSim fabric(checker.space);
  fabric.full_configure(checker.bitstream);
  const auto r = run_bram_bist(checker, fabric, 300);
  EXPECT_FALSE(r.error_detected);
}

TEST(BramBist, DetectsContentCorruption) {
  const auto checker = compile(designs::bram_selftest(1), device_tiny(8, 8, 2));
  FabricSim fabric(checker.space);
  fabric.full_configure(checker.bitstream);
  // Corrupt a content bit of the bound block at an address the counter will
  // visit: the address-in-data pattern breaks there.
  ASSERT_FALSE(checker.brams.empty());
  const auto& binding = checker.brams[0];
  BitAddress addr;
  addr.frame = FrameAddress{ColumnKind::kBram, binding.bram_col,
                            static_cast<u16>((20 * kBramWidth + 3) / 64)};
  addr.offset = static_cast<u32>(binding.block) * 64 +
                static_cast<u32>((20 * kBramWidth + 3) % 64);
  fabric.flip_config_bit(addr);
  const auto r = run_bram_bist(checker, fabric, 300);
  EXPECT_TRUE(r.error_detected);
  EXPECT_GT(r.cycles_to_detect, 15u);  // found when address 20 is read
  EXPECT_LT(r.cycles_to_detect, 30u);
}

}  // namespace
}  // namespace vscrub
