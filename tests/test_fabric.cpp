#include <gtest/gtest.h>

#include <set>

#include "fabric/config_space.h"
#include "fabric/geometry.h"
#include "fabric/routing_model.h"

namespace vscrub {
namespace {

TEST(Geometry, Presets) {
  const auto g = device_xcv1000ish();
  EXPECT_EQ(g.tile_count(), 6144u);
  EXPECT_EQ(g.slice_count(), 12288u);
  // 156-byte frames like the XQVR1000 (paper §II-A).
  EXPECT_EQ(g.clb_frame_bytes(), 156u);
  // Configuration volume in the millions of bits, like the real part.
  EXPECT_GT(g.total_config_bits(), 4'000'000u);
  EXPECT_LT(g.total_config_bits(), 8'000'000u);
}

TEST(Geometry, Neighbors) {
  const auto g = device_tiny(8, 8);
  EXPECT_FALSE(g.neighbor(TileCoord{0, 3}, Dir::kNorth).has_value());
  EXPECT_FALSE(g.neighbor(TileCoord{7, 3}, Dir::kSouth).has_value());
  EXPECT_FALSE(g.neighbor(TileCoord{3, 0}, Dir::kWest).has_value());
  EXPECT_FALSE(g.neighbor(TileCoord{3, 7}, Dir::kEast).has_value());
  const auto n = g.neighbor(TileCoord{3, 3}, Dir::kEast);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, (TileCoord{3, 4}));
}

TEST(ConfigSpace, TileLayoutIsBijective) {
  std::set<std::pair<u16, u16>> seen;
  for (u16 tb = 0; tb < kTileConfigBits; ++tb) {
    const auto pos = ConfigSpace::tile_bit_pos(tb);
    EXPECT_TRUE(seen.emplace(pos.frame, pos.slot).second)
        << "duplicate position for tile bit " << tb;
    EXPECT_EQ(ConfigSpace::tile_bit_at(pos.frame, pos.slot), tb);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kTileConfigBits));
}

TEST(ConfigSpace, LutTruthBitsRespectFrameConstraint) {
  // Paper §IV-A: the LUT bits of slice s live in 16 specific frames.
  for (int lut = 0; lut < kLutsPerClb; ++lut) {
    const int slice = lut / kLutsPerSlice;
    for (u8 j = 0; j < kLutTruthBits; ++j) {
      const u16 tb = ConfigSpace::tile_bit_of_field(FieldKind::kLutTruth,
                                                    static_cast<u8>(lut), j);
      const auto pos = ConfigSpace::tile_bit_pos(tb);
      EXPECT_TRUE(ConfigSpace::frame_holds_slice_lut_bits(pos.frame, slice));
      EXPECT_EQ(pos.frame, slice * kLutTruthBits + j);
    }
  }
}

TEST(ConfigSpace, FieldMeaningsRoundTrip) {
  for (u16 tb = 0; tb < kTileConfigBits; ++tb) {
    const BitMeaning& m = ConfigSpace::meaning_of_tile_bit(tb);
    if (m.kind == FieldKind::kPad) continue;
    EXPECT_EQ(ConfigSpace::tile_bit_of_field(m.kind, m.unit, m.bit), tb);
  }
}

TEST(ConfigSpace, AddressLinearRoundTrip) {
  const ConfigSpace space(device_tiny(8, 12, 2));
  const u64 total = space.total_bits();
  EXPECT_EQ(total, space.geometry().total_config_bits());
  // Spot-check a spread of linear indices.
  for (u64 lin = 0; lin < total; lin += 9973) {
    const BitAddress addr = space.address_of_linear(lin);
    EXPECT_EQ(space.linear_of(addr), lin);
  }
  // And frame addressing.
  for (u32 gf = 0; gf < space.frame_count(); ++gf) {
    EXPECT_EQ(space.global_frame_index(space.frame_of_global(gf)), gf);
  }
}

TEST(ConfigSpace, TileRefRoundTrip) {
  const ConfigSpace space(device_tiny(8, 12));
  const TileCoord t{5, 7};
  for (u16 tb = 0; tb < kTileConfigBits; tb = static_cast<u16>(tb + 17)) {
    const BitAddress addr = space.address_of(t, tb);
    const auto ref = space.tile_ref_of(addr);
    ASSERT_TRUE(ref.valid);
    EXPECT_EQ(ref.tile, t);
    EXPECT_EQ(ref.tile_bit, tb);
  }
  // Frame padding region maps to no tile.
  BitAddress pad;
  pad.frame = FrameAddress{ColumnKind::kClb, 0, 0};
  pad.offset = static_cast<u32>(space.geometry().rows * kBitsPerTilePerFrame + 1);
  EXPECT_FALSE(space.tile_ref_of(pad).valid);
}

TEST(RoutingModel, OmuxDecodeEncodeRoundTrip) {
  for (int d = 0; d < kDirs; ++d) {
    for (int w = 0; w < kWiresPerDir; ++w) {
      for (int code = 0; code < (1 << kOmuxBits); ++code) {
        const WireSource src =
            decode_omux(static_cast<Dir>(d), w, static_cast<u8>(code));
        const auto back = encode_omux(static_cast<Dir>(d), w, src);
        ASSERT_TRUE(back.has_value());
        // decode(encode(decode(c))) == decode(c): encode may find an alias
        // but must be semantically identical.
        EXPECT_EQ(decode_omux(static_cast<Dir>(d), w, *back), src);
      }
    }
  }
}

TEST(RoutingModel, OnlyOmuxWiresAcceptClbOutputs) {
  // Paper §II-B: 20 wires per direction come from the output multiplexer,
  // the other 4 do not.
  for (int d = 0; d < kDirs; ++d) {
    for (int w = 0; w < kWiresPerDir; ++w) {
      bool accepts_output = false;
      for (int code = 0; code < (1 << kOmuxBits); ++code) {
        if (decode_omux(static_cast<Dir>(d), w, static_cast<u8>(code)).kind ==
            WireSource::Kind::kClbOutput) {
          accepts_output = true;
        }
      }
      EXPECT_EQ(accepts_output, w < kOmuxWiresPerDir) << "dir " << d << " w " << w;
    }
  }
}

TEST(RoutingModel, ImuxRoundTrip) {
  for (int code = 0; code < (1 << kImuxBits); ++code) {
    const PinSource src = decode_imux(static_cast<u8>(code));
    const u8 back = encode_imux(src);
    EXPECT_EQ(decode_imux(back), src);
  }
  // Every incoming wire and every CLB output is selectable.
  for (int d = 0; d < kDirs; ++d) {
    for (u8 w = 0; w < kWiresPerDir; ++w) {
      const PinSource src{PinSource::Kind::kIncoming, static_cast<Dir>(d), w, 0};
      EXPECT_EQ(decode_imux(encode_imux(src)), src);
    }
  }
  for (u8 o = 0; o < kClbOutputs; ++o) {
    const PinSource src{PinSource::Kind::kClbOutput, Dir::kNorth, 0, o};
    EXPECT_EQ(decode_imux(encode_imux(src)), src);
  }
}

TEST(RoutingModel, ReverseTablesConsistent) {
  for (int d = 0; d < kDirs; ++d) {
    for (int w = 0; w < kWiresPerDir; ++w) {
      for (const OmuxSlot& slot :
           omux_consumers_of_incoming(static_cast<Dir>(d), w)) {
        const WireSource src = decode_omux(slot.dir, slot.windex, slot.code);
        EXPECT_EQ(src.kind, WireSource::Kind::kIncoming);
        EXPECT_EQ(src.from_dir, static_cast<Dir>(d));
        EXPECT_EQ(src.windex, w);
      }
    }
  }
  for (int o = 0; o < kClbOutputs; ++o) {
    const auto& slots = omux_consumers_of_output(o);
    // Each CLB output can reach the 20 OMUX wires in all 4 directions.
    EXPECT_EQ(slots.size(), static_cast<std::size_t>(kDirs * kOmuxWiresPerDir));
    for (const OmuxSlot& slot : slots) {
      const WireSource src = decode_omux(slot.dir, slot.windex, slot.code);
      EXPECT_EQ(src.kind, WireSource::Kind::kClbOutput);
      EXPECT_EQ(src.output, o);
    }
  }
}

TEST(RoutingModel, HalfLatchStartupPolarity) {
  // CE and LUT inputs idle high; SR, bypass and IOPAD idle low.
  EXPECT_TRUE(halflatch_startup_value(lut_input_pin(0, 0)));
  EXPECT_TRUE(halflatch_startup_value(lut_input_pin(3, 3)));
  EXPECT_TRUE(halflatch_startup_value(ce_pin(0)));
  EXPECT_TRUE(halflatch_startup_value(ce_pin(1)));
  EXPECT_FALSE(halflatch_startup_value(sr_pin(0)));
  EXPECT_FALSE(halflatch_startup_value(byp_pin(2)));
  EXPECT_FALSE(halflatch_startup_value(iopad_pin(3)));
}

}  // namespace
}  // namespace vscrub
