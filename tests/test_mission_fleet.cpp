// Mission determinism and fleet Monte-Carlo aggregation: same seed =>
// byte-identical MissionReport and event trace, across runs and across
// FleetRunner thread counts; scrub-path faults at paper-plausible rates
// cause zero false repairs and negligible availability loss.
#include <gtest/gtest.h>

#include "core/vscrub.h"

namespace vscrub {
namespace {

class FleetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new PlacedDesign(
        compile(designs::counter_adder(8), device_tiny(8, 8)));
    CampaignOptions copts;
    copts.sample_bits = 4000;
    const CampaignResult camp = run_campaign(*design_, copts);
    sensitive_ = new std::unordered_set<u64>(camp.sensitive_set(*design_));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete sensitive_;
    design_ = nullptr;
    sensitive_ = nullptr;
  }

  static PayloadOptions faulty_options() {
    PayloadOptions o;
    // Scaled so a short mission on the small test device sees a useful
    // number of upsets, plus paper-plausible scrub-path fault rates.
    o.environment.upset_rate_per_bit_s = 2e-7;
    o.scrub.link_faults = ScrubLinkFaults::leo_profile();
    o.flash_faults = FlashFaultModel::leo_profile();
    return o;
  }

  static PlacedDesign* design_;
  static std::unordered_set<u64>* sensitive_;
};

PlacedDesign* FleetFixture::design_ = nullptr;
std::unordered_set<u64>* FleetFixture::sensitive_ = nullptr;

TEST_F(FleetFixture, SameSeedReproducesReportAndTrace) {
  const auto run_once = [&](EventTrace* trace) {
    PayloadOptions o = faulty_options();
    o.seed = 7;
    o.trace = trace;
    Payload payload(*design_, o, *sensitive_);
    return payload.run_mission(SimTime::hours(2));
  };
  EventTrace t1;
  EventTrace t2;
  const MissionReport r1 = run_once(&t1);
  const MissionReport r2 = run_once(&t2);
  EXPECT_TRUE(r1 == r2);
  ASSERT_GT(t1.size(), 0u);
  EXPECT_EQ(t1.joined(), t2.joined());
  // Observability sinks must not influence the simulation.
  const MissionReport r3 = run_once(nullptr);
  EXPECT_TRUE(r1 == r3);
}

TEST_F(FleetFixture, FleetReproducesSingleThreadBitForBit) {
  FleetOptions options;
  options.missions = 6;
  options.base_seed = 100;
  options.duration = SimTime::hours(1);
  options.payload = faulty_options();
  options.capture_traces = true;
  options.threads = 1;
  const FleetResult seq = run_fleet(*design_, *sensitive_, options);
  options.threads = 4;
  const FleetResult par = run_fleet(*design_, *sensitive_, options);
  ASSERT_EQ(seq.reports.size(), 6u);
  ASSERT_EQ(par.reports.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(seq.reports[i] == par.reports[i]) << "mission " << i;
    EXPECT_EQ(seq.traces[i], par.traces[i]) << "mission " << i;
    EXPECT_FALSE(seq.traces[i].empty()) << "mission " << i;
  }
  EXPECT_EQ(seq.detected, par.detected);
  EXPECT_EQ(seq.availability_mean, par.availability_mean);
  EXPECT_EQ(seq.detection_latency_p99_ms, par.detection_latency_p99_ms);
  // Fleet mission i is exactly a standalone mission with seed base_seed+i.
  PayloadOptions o = faulty_options();
  o.seed = 103;
  Payload payload(*design_, o, *sensitive_);
  EXPECT_TRUE(payload.run_mission(options.duration) == seq.reports[3]);
}

TEST_F(FleetFixture, LeoFaultRatesCauseZeroFalseRepairs) {
  PayloadOptions clean;
  clean.environment.upset_rate_per_bit_s = 2e-7;
  clean.seed = 11;
  Payload clean_payload(*design_, clean, *sensitive_);
  const MissionReport rc = clean_payload.run_mission(SimTime::hours(4));

  PayloadOptions faulty = faulty_options();
  faulty.seed = 11;
  Payload faulty_payload(*design_, faulty, *sensitive_);
  const MissionReport rf = faulty_payload.run_mission(SimTime::hours(4));

  // The fault processes ride an independent rng stream: the upset history is
  // identical, the scrub-path faults are extra.
  EXPECT_EQ(rf.upsets_total, rc.upsets_total);
  EXPECT_GT(rf.false_alarms + rf.scrub_transfer_timeouts, 0u)
      << "fault model should actually fire at LEO rates over 4 h";
  EXPECT_EQ(rf.false_repairs, 0u) << "noise must never become a repair";
  // Availability within 1% of the fault-free mission (acceptance bar).
  EXPECT_NEAR(rf.availability, rc.availability, 0.01);
}

TEST_F(FleetFixture, FlashDoubleBitEscalatesNeverRepairsCorrupt) {
  PayloadOptions o;
  o.environment.upset_rate_per_bit_s = 2e-7;
  o.hidden_state_fraction = 0.0;
  o.seed = 3;
  // Exaggerated double-bit rate so escalations actually occur in 2 h.
  o.flash_faults.word_double_upset_prob = 0.05;
  Payload payload(*design_, o, *sensitive_);
  const MissionReport r = payload.run_mission(SimTime::hours(2));
  ASSERT_GT(r.detected, 10u);
  EXPECT_GT(r.flash_escalations, 0u);
  // Every detection either repaired from a clean fetch or escalated —
  // corrupt golden data is never written.
  EXPECT_EQ(r.detected, r.repaired + r.flash_escalations);
  EXPECT_GT(r.flash_stats.uncorrectable, 0u);
}

TEST_F(FleetFixture, FleetAggregatesMatchPerMissionReports) {
  FleetOptions options;
  options.missions = 4;
  options.base_seed = 40;
  options.duration = SimTime::hours(1);
  options.payload = faulty_options();
  const FleetResult r = run_fleet(*design_, *sensitive_, options);
  u64 upsets = 0;
  u64 detected = 0;
  u64 alarms = 0;
  double avail_sum = 0.0;
  double lat_max = 0.0;
  for (const MissionReport& m : r.reports) {
    upsets += m.upsets_total;
    detected += m.detected;
    alarms += m.false_alarms;
    avail_sum += m.availability;
    lat_max = std::max(lat_max, m.max_detection_latency_ms);
  }
  EXPECT_EQ(r.upsets_total, upsets);
  EXPECT_EQ(r.detected, detected);
  EXPECT_EQ(r.false_alarms, alarms);
  EXPECT_DOUBLE_EQ(r.availability_mean, avail_sum / 4.0);
  EXPECT_GE(r.availability_ci95, 0.0);
  EXPECT_LE(r.detection_latency_p50_ms, r.detection_latency_p99_ms);
  EXPECT_LE(r.detection_latency_p99_ms, lat_max + 1e-9);

  MetricsRegistry metrics;
  fill_fleet_metrics(r, metrics);
  EXPECT_EQ(metrics.counter("fleet_missions").value(), 4u);
  EXPECT_EQ(metrics.counter("fleet_upsets").value(), upsets);
  const std::string json = fleet_report_json(r).to_json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet_availability_mean\":"), std::string::npos);
  EXPECT_NE(json.find("\"fleet_false_repairs\": 0"), std::string::npos);
}

TEST_F(FleetFixture, MissionMetricsMatchReport) {
  MetricsRegistry metrics;
  PayloadOptions o = faulty_options();
  o.seed = 21;
  o.metrics = &metrics;
  Payload payload(*design_, o, *sensitive_);
  const MissionReport r = payload.run_mission(SimTime::hours(1));
  EXPECT_EQ(metrics.counter("mission_upsets").value(), r.upsets_total);
  EXPECT_EQ(metrics.counter("mission_detected").value(), r.detected);
  EXPECT_EQ(metrics.counter("mission_false_alarms").value(), r.false_alarms);
  EXPECT_EQ(metrics.histogram("mission_detection_latency_ms").count(),
            static_cast<u64>(r.detection_latency_ms.size()));
}

}  // namespace
}  // namespace vscrub
