// Verilog export, campaign reports, heavy-ion characterization.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/vscrub.h"

namespace vscrub {
namespace {

TEST(Verilog, ExportsEveryDesignFamily) {
  for (const Netlist& nl :
       {designs::counter_adder(8), designs::lfsr_cluster(1),
        designs::mult_tree(6), designs::fir_preproc(3, 4),
        designs::bram_selftest(1), designs::selfcheck_dsp(4, 4)}) {
    const std::string v = export_verilog(nl);
    EXPECT_NE(v.find("module "), std::string::npos) << nl.name();
    EXPECT_NE(v.find("endmodule"), std::string::npos) << nl.name();
    EXPECT_NE(v.find("posedge clk"), std::string::npos) << nl.name();
    // Every output port appears.
    for (CellId id : nl.output_cells()) {
      std::string port = nl.cell(id).name;
      for (char& c : port) {
        if (c == '[' || c == ']') c = '_';
      }
      EXPECT_NE(v.find(port), std::string::npos)
          << nl.name() << " missing port " << port;
    }
  }
}

TEST(Verilog, SrlAndBramConstructsEmitted) {
  const std::string fir = export_verilog(designs::fir_preproc(3, 4));
  EXPECT_NE(fir.find("srl_"), std::string::npos);
  const std::string bram = export_verilog(designs::bram_selftest(1));
  EXPECT_NE(bram.find(" [0:255];"), std::string::npos);
}

TEST(Verilog, WritesFile) {
  const std::string path = "/tmp/vscrub_test_export.v";
  write_verilog(designs::counter_adder(6), path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Report, CorrelationCsvHasOneRowPerSensitiveBit) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  CampaignOptions opts;
  opts.sample_bits = 4000;
  const auto result = run_campaign(design, opts);
  ASSERT_GT(result.sensitive_bits.size(), 0u);
  const std::string csv = correlation_table_csv(*design.space, result);
  std::size_t rows = 0;
  for (char c : csv) rows += c == '\n';
  EXPECT_EQ(rows, result.sensitive_bits.size() + 1);  // + header
  EXPECT_NE(csv.find("column_kind,column,frame,offset"), std::string::npos);
}

TEST(Report, SummaryMentionsKeyNumbers) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  CampaignOptions opts;
  opts.sample_bits = 1500;
  const auto result = run_campaign(design, opts);
  const std::string s = campaign_summary(result);
  EXPECT_NE(s.find("1500 injections"), std::string::npos) << s;
  EXPECT_NE(s.find("sensitivity"), std::string::npos);
}

TEST(HeavyIon, BelowThresholdNoUpsets) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  HeavyIonSession session(design, {});
  const auto run = session.expose(1.0);  // below the 1.2 MeV·cm²/mg threshold
  EXPECT_EQ(run.upsets, 0u);
  EXPECT_FALSE(run.latchup);
}

TEST(HeavyIon, CrossSectionFollowsWeibull) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  HeavyIonOptions options;
  options.fluence_per_run = 2e5;  // enough statistics on the small device
  HeavyIonSession session(design, options);
  const auto runs = session.sweep({2.0, 10.0, 40.0, 125.0});
  const u64 bits = design.space->total_bits();
  double prev_sigma = 0.0;
  for (const auto& run : runs) {
    const double sigma =
        run.measured_sigma_per_bit(bits, options.fluence_per_run);
    EXPECT_GE(sigma, prev_sigma * 0.8) << "LET " << run.let;  // monotone-ish
    const double expect = options.response.at(run.let);
    if (expect * options.fluence_per_run * static_cast<double>(bits) > 50) {
      EXPECT_NEAR(sigma, expect, expect * 0.4) << "LET " << run.let;
    }
    EXPECT_FALSE(run.latchup) << "SEL below the immunity bound";
    prev_sigma = sigma;
  }
}

TEST(HeavyIon, SaturatesNearSigmaSat) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  HeavyIonOptions options;
  options.fluence_per_run = 5e5;
  HeavyIonSession session(design, options);
  const auto run = session.expose(125.0);
  const double sigma = run.measured_sigma_per_bit(
      design.space->total_bits(), options.fluence_per_run);
  EXPECT_NEAR(sigma, options.response.sat_cross_section,
              options.response.sat_cross_section * 0.25);
}

}  // namespace
}  // namespace vscrub
