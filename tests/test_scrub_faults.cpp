// Scrub-datapath fault model: readback noise must never cause a repair,
// transfer timeouts retry with backoff (and escalate on exhaustion), flash
// double-bit ECC aborts the repair — all with exact SimTime accounting.
#include <gtest/gtest.h>

#include "designs/test_designs.h"
#include "pnr/pnr.h"
#include "report/json.h"
#include "scrub/scrubber.h"

namespace vscrub {
namespace {

struct FaultFixture {
  PlacedDesign design;
  FabricSim sim;
  DesignHarness harness;
  FlashStore flash;

  FaultFixture()
      : design(compile(designs::counter_adder(8), device_tiny(8, 8))),
        sim(design.space),
        harness(design, sim),
        flash(design.bitstream) {
    harness.configure();
  }
};

TEST(ScrubFaults, ReadbackNoiseIsFilteredNeverRepaired) {
  FaultFixture fx;
  ScrubberOptions options;
  options.link_faults.readback_flip_prob = 0.05;
  options.link_faults.seed = 99;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, options);
  u32 alarms = 0;
  for (int p = 0; p < 3; ++p) {
    const auto pass = scrubber.scrub_pass(&fx.harness);
    EXPECT_EQ(pass.errors_found, 0u) << "pass " << p;
    EXPECT_EQ(pass.repairs, 0u) << "noise must never trigger a repair";
    EXPECT_EQ(pass.resets, 0u);
    alarms += pass.false_alarms;
    // Exact accounting: every picosecond beyond the clean pass is fault
    // overhead (the confirming re-reads).
    EXPECT_EQ(pass.pass_time, scrubber.clean_pass_cost() + pass.fault_overhead);
  }
  EXPECT_GT(alarms, 0u) << "flip probability 0.05 should raise alarms";
  // The device configuration was never touched.
  const ConfigSpace& space = *fx.design.space;
  for (u32 gf = 0; gf < space.frame_count(); ++gf) {
    ASSERT_EQ(fx.sim.read_frame(space.frame_of_global(gf), false),
              fx.design.bitstream.frame(gf))
        << "frame " << gf;
  }
}

TEST(ScrubFaults, RealUpsetRepairedThroughNoisyLink) {
  FaultFixture fx;
  ScrubberOptions options;
  options.link_faults.readback_flip_prob = 0.05;
  options.link_faults.seed = 17;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, options);
  const BitAddress addr = fx.design.space->address_of_linear(4321);
  scrubber.insert_artificial_seu(addr);
  const auto pass = scrubber.scrub_pass(&fx.harness);
  // The re-read filter must confirm the real upset (two consecutive
  // identical CRC-failing reads), not mistake it for noise.
  EXPECT_EQ(pass.errors_found, 1u);
  EXPECT_EQ(pass.repairs, 1u);
  EXPECT_EQ(pass.escalations, 0u);
  EXPECT_EQ(fx.sim.config_bit(addr), fx.design.bitstream.get_bit(addr));
}

TEST(ScrubFaults, TimeoutRetriesThenSucceeds) {
  FaultFixture fx;
  ScrubberOptions options;
  options.link_faults.transfer_timeout_prob = 0.2;
  options.link_faults.seed = 5;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, options);
  const auto pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_EQ(pass.frames_checked, fx.design.space->frame_count());
  EXPECT_EQ(pass.errors_found, 0u);
  EXPECT_EQ(pass.repairs, 0u);
  EXPECT_GT(pass.transfer_timeouts, 0u);
  // Timeout + backoff time is accounted exactly as fault overhead.
  EXPECT_EQ(pass.pass_time, scrubber.clean_pass_cost() + pass.fault_overhead);
  EXPECT_GT(pass.fault_overhead, SimTime());
}

TEST(ScrubFaults, RetryExhaustionEscalatesWithExactModeledTime) {
  FaultFixture fx;
  ScrubberOptions options;
  options.link_faults.transfer_timeout_prob = 1.0;  // every attempt times out
  options.link_faults.max_transfer_retries = 2;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, options);
  const auto pass = scrubber.scrub_pass(nullptr);
  const u32 frames = fx.design.space->frame_count();
  EXPECT_EQ(pass.retries_exhausted, frames);
  EXPECT_EQ(pass.escalations, frames);
  EXPECT_EQ(pass.resets, frames);
  EXPECT_EQ(pass.errors_found, 0u);
  EXPECT_EQ(pass.repairs, 0u);
  // 3 attempts per frame (initial + 2 retries), each costing the timeout;
  // exponential backoff of 1x + 2x the base between attempts.
  EXPECT_EQ(pass.transfer_timeouts, 3u * frames);
  const SimTime per_frame = options.link_faults.timeout_cost * i64{3} +
                            options.link_faults.backoff_base * i64{3};
  EXPECT_EQ(pass.pass_time, per_frame * static_cast<i64>(frames));
  EXPECT_EQ(pass.pass_time, scrubber.clean_pass_cost() + pass.fault_overhead);
}

TEST(ScrubFaults, FlashDoubleBitEscalatesInsteadOfCorruptRepair) {
  FaultFixture fx;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, {});
  const BitAddress addr = fx.design.space->address_of_linear(4321);
  const u32 gf = fx.design.space->global_frame_index(addr.frame);
  scrubber.insert_artificial_seu(addr);
  // The golden copy of this frame rots in flash: a double-bit word that
  // SECDED can only flag.
  fx.flash.inject_upset(gf, 0, 5);
  fx.flash.inject_upset(gf, 0, 41);
  const auto pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_EQ(pass.errors_found, 1u);
  EXPECT_EQ(pass.repairs, 0u) << "corrupt golden data must never be written";
  EXPECT_EQ(pass.flash_uncorrectable, 1u);
  EXPECT_EQ(pass.escalations, 1u);
  EXPECT_EQ(pass.resets, 1u);
  // The frame was left alone (still carrying the SEU), not overwritten with
  // the corrupt fetch.
  EXPECT_NE(fx.sim.config_bit(addr), fx.design.bitstream.get_bit(addr));
}

TEST(ScrubFaults, MetricsAndTracePublished) {
  FaultFixture fx;
  MetricsRegistry metrics;
  EventTrace trace;
  ScrubberOptions options;
  options.metrics = &metrics;
  options.trace = &trace;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, options);
  scrubber.insert_artificial_seu(fx.design.space->address_of_linear(1234));
  const auto pass = scrubber.scrub_pass(&fx.harness);
  ASSERT_EQ(pass.repairs, 1u);
  EXPECT_EQ(metrics.counter("scrub_frames_checked").value(),
            static_cast<u64>(pass.frames_checked));
  EXPECT_EQ(metrics.counter("scrub_errors").value(), 1u);
  EXPECT_EQ(metrics.counter("scrub_repairs").value(), 1u);
  EXPECT_EQ(metrics.histogram("scrub_pass_ms").count(), 1u);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_NE(trace.joined().find("\"ev\":\"scrub_repair\""), std::string::npos);
  const std::string json = JsonReport("scrub").add_metrics(metrics).to_json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"scrub_repairs\": 1"), std::string::npos);
  EXPECT_NE(json.find("scrub_pass_ms_p50"), std::string::npos);
}

TEST(ScrubFaults, IdealLinkBehaviourUnchangedByFaultMachinery) {
  // With an all-zero fault model the pass must be byte-identical to the
  // legacy path: no extra reads, no overhead, same events.
  FaultFixture fx;
  Scrubber scrubber(fx.design, fx.sim, fx.flash, {});
  const auto pass = scrubber.scrub_pass(&fx.harness);
  EXPECT_EQ(pass.false_alarms, 0u);
  EXPECT_EQ(pass.transfer_timeouts, 0u);
  EXPECT_EQ(pass.fault_overhead, SimTime());
  EXPECT_EQ(pass.pass_time, scrubber.clean_pass_cost());
}

}  // namespace
}  // namespace vscrub
