// The eval-plan compiler (sim/eval_plan.h): differential equivalence of the
// compiled schedule against the interpreting FabricSim, per cycle and per
// value; typed rejection of cyclic cones; and the validate() gauntlet over
// hostile/corrupted plans, one test per error kind.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/vscrub.h"
#include "sim/eval_plan.h"

using namespace vscrub;

namespace {

/// Per-tile effective override mask, read back from the configured fabric
/// (harness drives + external constants both land in Tile::override_mask).
std::vector<u8> override_mask_of(const FabricSim& sim) {
  std::vector<u8> mask(sim.geometry().tile_count());
  for (u32 t = 0; t < mask.size(); ++t) mask[t] = sim.tile_state(t).override_mask;
  return mask;
}

/// Override *values*, indexed like the flat out array.
std::vector<u8> override_values_of(const FabricSim& sim) {
  std::vector<u8> ovr(static_cast<std::size_t>(sim.geometry().tile_count()) *
                      kClbOutputs);
  for (u32 t = 0; t < sim.geometry().tile_count(); ++t) {
    const FabricSim::Tile& tl = sim.tile_state(t);
    for (int o = 0; o < kClbOutputs; ++o) {
      if (tl.override_mask & (1u << o)) {
        ovr[static_cast<std::size_t>(t) * kClbOutputs +
            static_cast<std::size_t>(o)] = (tl.override_vals >> o) & 1;
      }
    }
  }
  return ovr;
}

/// Scrambles every plan-written entry, executes the plan from the fabric's
/// registered/external state, and asserts the result is exactly the
/// interpreter's settled fixpoint. The scramble is what makes this a real
/// differential test: the plan must *recompute* each value, not keep it.
void expect_plan_reproduces_fixpoint(const EvalPlan& plan, FabricSim& sim,
                                     const std::string& context) {
  std::vector<u8> outs = sim.out_values();
  std::vector<u8> wires = sim.wire_values();
  for (const EvalPlan::Op& op : plan.ops) {
    if (op.dst_arr == EvalPlan::Arr::kOut) {
      outs[op.dst] ^= 1;
    } else {
      wires[op.dst] ^= 1;
    }
  }
  plan_execute(plan, sim.halflatch_values(), override_values_of(sim), outs,
               wires);
  const std::vector<u8>& want_outs = sim.out_values();
  const std::vector<u8>& want_wires = sim.wire_values();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    ASSERT_EQ(outs[i] != 0, want_outs[i] != 0)
        << context << ": output " << i << " diverges from the interpreter";
  }
  for (std::size_t i = 0; i < wires.size(); ++i) {
    ASSERT_EQ(wires[i] != 0, want_wires[i] != 0)
        << context << ": wire " << i << " diverges from the interpreter";
  }
}

bool op_equal(const EvalPlan::Op& a, const EvalPlan::Op& b) {
  if (a.kind != b.kind || a.dst_arr != b.dst_arr || a.dst != b.dst ||
      a.cells != b.cells) {
    return false;
  }
  for (int k = 0; k < kLutInputs; ++k) {
    if (a.src[k].arr != b.src[k].arr || a.src[k].idx != b.src[k].idx) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Differential: compiled plan vs interpreter, cycle by cycle
// ---------------------------------------------------------------------------

TEST(EvalPlan, MatchesInterpreterPerCycleOnStaticDesigns) {
  struct Case {
    const char* name;
    Netlist netlist;
    DeviceGeometry device;
  };
  std::vector<Case> cases;
  cases.push_back({"counter_adder", designs::counter_adder(4), device_tiny(4, 6)});
  cases.push_back({"mult_tree", designs::mult_tree(4), device_tiny(8, 12)});
  cases.push_back({"lfsr_cluster", designs::lfsr_cluster(2), device_tiny(8, 8)});

  for (Case& c : cases) {
    const auto design = compile(std::move(c.netlist), c.device);
    FabricSim sim(design.space);
    DesignHarness harness(design, sim);
    harness.configure();
    sim.eval();

    const EvalPlan plan = compile_eval_plan(sim, override_mask_of(sim));
    EXPECT_NO_THROW(plan.validate()) << c.name;
    EXPECT_GT(plan.ops.size(), 0u) << c.name;

    // Per-cycle state snapshots: after every clocked cycle the plan must
    // rebuild the interpreter's exact settled state from scratch.
    for (int cycle = 0; cycle < 48; ++cycle) {
      harness.step();
      sim.eval();  // make the post-clock state a settled fixpoint
      expect_plan_reproduces_fixpoint(
          plan, sim, std::string(c.name) + " cycle " + std::to_string(cycle));
    }
  }
}

TEST(EvalPlan, CompilesOnBramAttachedDesigns) {
  // BRAM blocks live outside the CLB tile arrays the plan schedules; the
  // relay tiles the harness drives are plan inputs (override copies). The
  // *gang engine* refuses BRAM designs for other reasons (readback hazards),
  // but the compiler itself must handle the CLB cone fine.
  const auto design = compile(designs::bram_selftest(1), device_tiny(8, 8, 2));
  FabricSim sim(design.space);
  DesignHarness harness(design, sim);
  harness.configure();
  sim.eval();

  const EvalPlan plan = compile_eval_plan(sim, override_mask_of(sim));
  EXPECT_GT(plan.ops.size(), 0u);
  for (int cycle = 0; cycle < 16; ++cycle) {
    harness.step();
    sim.eval();
    expect_plan_reproduces_fixpoint(plan, sim,
                                    "bram cycle " + std::to_string(cycle));
  }
}

TEST(EvalPlan, CompilationIsDeterministic) {
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  FabricSim sim(design.space);
  DesignHarness harness(design, sim);
  harness.configure();
  sim.eval();

  const EvalPlan a = compile_eval_plan(sim, override_mask_of(sim));
  const EvalPlan b = compile_eval_plan(sim, override_mask_of(sim));
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_TRUE(op_equal(a.ops[i], b.ops[i])) << "op " << i;
  }
}

// ---------------------------------------------------------------------------
// Property fuzz: randomly corrupted configurations
// ---------------------------------------------------------------------------

TEST(EvalPlan, CorruptedConfigsEitherCompileAndMatchOrRejectAsCyclic) {
  // Random multi-bit corruptions produce hostile decodes: rerouted cones,
  // feedback loops, oscillators, LUTs flipped into dynamic modes. For every
  // such configuration the compiler must either (a) produce a plan whose
  // execution is bit-identical to the interpreter's settled state across
  // several clocked cycles, or (b) reject with the typed combinational-cycle
  // error. Nothing else is acceptable.
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  FabricSim sim(design.space);
  Rng rng(0xE5A1u);
  const u64 total = design.space->total_bits();

  int compiled = 0, cyclic = 0;
  for (int trial = 0; trial < 120; ++trial) {
    Bitstream corrupt = design.bitstream;
    // Alternate light corruption (a handful of upsets, the realistic case)
    // with heavy corruption (hundreds of flips, which is what it takes to
    // reroute a closed combinational path on a device this small).
    const int flips = (trial % 2 == 0)
                          ? 1 + static_cast<int>(rng.next() % 24)
                          : 64 + static_cast<int>(rng.next() % 512);
    for (int f = 0; f < flips; ++f) {
      corrupt.flip_bit(design.space->address_of_linear(rng.next() % total));
    }
    sim.full_configure(corrupt);
    sim.eval();

    const std::vector<u8> no_ovr(sim.geometry().tile_count(), 0);
    try {
      const EvalPlan plan = compile_eval_plan(sim, no_ovr);
      ++compiled;
      // A flip can create SRL16/RAM16 sites whose cells change under
      // clocking; the plan snapshots cells at compile time, so only the
      // unclocked settled state is comparable here. That is exactly how the
      // gang engine uses plans too (it refuses dynamic designs).
      expect_plan_reproduces_fixpoint(plan, sim,
                                      "trial " + std::to_string(trial));
    } catch (const EvalPlanError& e) {
      EXPECT_EQ(e.kind(), EvalPlanError::Kind::kCombinationalCycle)
          << "trial " << trial << ": " << e.what();
      EXPECT_NE(std::string(e.what()).find("combinational"), std::string::npos);
      ++cyclic;
    }
  }
  // Both outcomes must actually be exercised by the seed above.
  EXPECT_GT(compiled, 0);
  EXPECT_GT(cyclic, 0) << "fuzz seed never produced a combinational loop; "
                          "pick a different seed";
}

// ---------------------------------------------------------------------------
// Hostile plans: validate() must stop anything malformed before execution
// ---------------------------------------------------------------------------

namespace {

EvalPlan small_plan() {
  static const PlacedDesign design =
      compile(designs::counter_adder(4), device_tiny(4, 6));
  FabricSim sim(design.space);
  DesignHarness harness(design, sim);
  harness.configure();
  sim.eval();
  return compile_eval_plan(sim, override_mask_of(sim));
}

void expect_rejected(EvalPlan plan, EvalPlanError::Kind kind) {
  try {
    plan.validate();
    FAIL() << "expected rejection with kind "
           << eval_plan_error_kind_name(kind);
  } catch (const EvalPlanError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
    EXPECT_NE(std::string(e.what()).find(eval_plan_error_kind_name(kind)),
              std::string::npos)
        << e.what();
  }
}

}  // namespace

TEST(EvalPlanValidate, AcceptsCompilerOutput) {
  EXPECT_NO_THROW(small_plan().validate());
}

TEST(EvalPlanValidate, RejectsUnknownOpKind) {
  EvalPlan plan = small_plan();
  plan.ops[0].kind = static_cast<EvalPlan::OpKind>(7);
  expect_rejected(std::move(plan), EvalPlanError::Kind::kBadOpKind);
}

TEST(EvalPlanValidate, RejectsWritesToReadOnlyArrays) {
  EvalPlan plan = small_plan();
  plan.ops[0].dst_arr = EvalPlan::Arr::kOvr;
  expect_rejected(std::move(plan), EvalPlanError::Kind::kBadOpKind);
}

TEST(EvalPlanValidate, RejectsDestinationOutOfRange) {
  {
    EvalPlan plan = small_plan();
    plan.ops[0].dst_arr = EvalPlan::Arr::kOut;
    plan.ops[0].dst = plan.num_outs;
    expect_rejected(std::move(plan), EvalPlanError::Kind::kIndexOutOfRange);
  }
  {
    EvalPlan plan = small_plan();
    plan.ops[0].dst_arr = EvalPlan::Arr::kWire;
    plan.ops[0].dst = plan.num_wires + 17;
    expect_rejected(std::move(plan), EvalPlanError::Kind::kIndexOutOfRange);
  }
}

TEST(EvalPlanValidate, RejectsSourceOutOfRange) {
  {
    EvalPlan plan = small_plan();
    plan.ops[0].src[0] = {EvalPlan::Arr::kWire, plan.num_wires};
    expect_rejected(std::move(plan), EvalPlanError::Kind::kIndexOutOfRange);
  }
  {
    EvalPlan plan = small_plan();
    plan.ops[0].src[0] = {EvalPlan::Arr::kHalfLatch, plan.num_halflatches};
    expect_rejected(std::move(plan), EvalPlanError::Kind::kIndexOutOfRange);
  }
  {
    EvalPlan plan = small_plan();
    plan.ops[0].src[0] = {EvalPlan::Arr::kOvr, plan.num_outs + 1};
    expect_rejected(std::move(plan), EvalPlanError::Kind::kIndexOutOfRange);
  }
}

TEST(EvalPlanValidate, RejectsDuplicateWriters) {
  EvalPlan plan = small_plan();
  plan.ops.push_back(plan.ops[0]);
  expect_rejected(std::move(plan), EvalPlanError::Kind::kDuplicateWriter);
}

TEST(EvalPlanValidate, RejectsTopologyViolations) {
  EvalPlan plan = small_plan();
  // Find a (writer, reader) pair and swap them: the reader then consumes a
  // value written later, which the branch-free executor would silently
  // evaluate with stale data.
  std::size_t writer = plan.ops.size(), reader = plan.ops.size();
  for (std::size_t i = 0; i < plan.ops.size() && reader == plan.ops.size();
       ++i) {
    const EvalPlan::Op& op = plan.ops[i];
    const int nsrc = op.kind == EvalPlan::OpKind::kLut ? kLutInputs : 1;
    for (int k = 0; k < nsrc; ++k) {
      const EvalPlan::Ref& r = op.src[k];
      if (r.arr != EvalPlan::Arr::kOut && r.arr != EvalPlan::Arr::kWire) {
        continue;
      }
      for (std::size_t w = 0; w < i; ++w) {
        const EvalPlan::Op& cand = plan.ops[w];
        const EvalPlan::Arr want = r.arr;
        if (cand.dst_arr == want && cand.dst == r.idx) {
          writer = w;
          reader = i;
          break;
        }
      }
      if (reader != plan.ops.size()) break;
    }
  }
  ASSERT_LT(reader, plan.ops.size())
      << "design has no internal dataflow edge to corrupt";
  std::swap(plan.ops[writer], plan.ops[reader]);
  expect_rejected(std::move(plan), EvalPlanError::Kind::kTopologyViolation);
}

TEST(EvalPlanValidate, ErrorKindNamesAreStable) {
  // The kind names ride in VSRP1 error payloads; renaming them is a
  // protocol change, not a refactor.
  EXPECT_STREQ(eval_plan_error_kind_name(EvalPlanError::Kind::kCombinationalCycle),
               "combinational-cycle");
  EXPECT_STREQ(eval_plan_error_kind_name(EvalPlanError::Kind::kIndexOutOfRange),
               "index-out-of-range");
  EXPECT_STREQ(eval_plan_error_kind_name(EvalPlanError::Kind::kDuplicateWriter),
               "duplicate-writer");
  EXPECT_STREQ(eval_plan_error_kind_name(EvalPlanError::Kind::kTopologyViolation),
               "topology-violation");
  EXPECT_STREQ(eval_plan_error_kind_name(EvalPlanError::Kind::kBadOpKind),
               "bad-op-kind");
}
