// Property-style parameterized suites: invariants that must hold across the
// whole design/device/seed space, not just hand-picked cases.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "core/vscrub.h"

namespace vscrub {
namespace {

// ---- P1: fabric/reference equivalence across designs x seeds ----------------

struct EquivCase {
  const char* name;
  Netlist (*make)();
  u16 rows, cols, bram;
};

Netlist mk_lfsr() { return designs::lfsr_cluster(1); }
Netlist mk_mult() { return designs::mult_tree(8); }
Netlist mk_vmult() { return designs::vmult(8); }
Netlist mk_counter() { return designs::counter_adder(10); }
Netlist mk_multadd() { return designs::multiply_add(6); }
Netlist mk_lfsrmult() { return designs::lfsr_multiplier(6); }
Netlist mk_fir() { return designs::fir_preproc(3, 4); }
Netlist mk_bram() { return designs::bram_selftest(1); }

class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<EquivCase, u64>> {};

TEST_P(EquivalenceSweep, FabricMatchesReferenceForAnyStimulusSeed) {
  const auto& [c, seed] = GetParam();
  const auto design = compile(c.make(), device_tiny(c.rows, c.cols, c.bram));
  FabricSim sim(design.space);
  DesignHarness harness(design, sim, seed);
  harness.configure();
  const auto golden =
      DesignHarness::reference_trace(*design.netlist, 90, seed);
  // SRL designs need a flush window only after *reset*; a fresh full
  // configuration restores SRL init contents, so traces match from cycle 0.
  for (std::size_t t = 0; t < 90; ++t) {
    harness.step();
    ASSERT_EQ(harness.last_outputs(), golden[t])
        << c.name << " seed " << seed << " cycle " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, EquivalenceSweep,
    ::testing::Combine(
        ::testing::Values(EquivCase{"lfsr", mk_lfsr, 12, 12, 0},
                          EquivCase{"mult", mk_mult, 12, 12, 0},
                          EquivCase{"vmult", mk_vmult, 12, 12, 0},
                          EquivCase{"counter", mk_counter, 8, 10, 0},
                          EquivCase{"multadd", mk_multadd, 12, 12, 0},
                          EquivCase{"lfsrmult", mk_lfsrmult, 12, 12, 0},
                          EquivCase{"fir", mk_fir, 12, 12, 0},
                          EquivCase{"bram", mk_bram, 8, 8, 2}),
        ::testing::Values(u64{7}, u64{1234}, u64{987654321})),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param).name) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---- P2: configuration-port identity properties ------------------------------

class FrameRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(FrameRoundTrip, WriteThenReadIsIdentityWithClockStopped) {
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8, 2));
  FabricSim fabric(space);
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const u32 gf = static_cast<u32>(rng.uniform(space->frame_count()));
    const FrameAddress fa = space->frame_of_global(gf);
    BitVector data(space->frame_bits(fa.kind));
    for (std::size_t i = 0; i < data.size(); ++i) data.set(i, rng.next() & 1);
    fabric.write_frame(fa, data);
    EXPECT_EQ(fabric.read_frame(fa, /*clock_running=*/false), data)
        << "frame " << gf;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameRoundTrip,
                         ::testing::Values(u64{1}, u64{55}, u64{20260707}));

class BitFlipProperties : public ::testing::TestWithParam<u64> {};

TEST_P(BitFlipProperties, DoubleFlipRestoresConfiguration) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  FabricSim fabric(design.space);
  fabric.full_configure(design.bitstream);
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const u64 lin = rng.uniform(design.space->total_bits());
    const BitAddress addr = design.space->address_of_linear(lin);
    const bool before = fabric.config_bit(addr);
    fabric.flip_config_bit(addr);
    EXPECT_NE(fabric.config_bit(addr), before);
    fabric.flip_config_bit(addr);
    EXPECT_EQ(fabric.config_bit(addr), before);
  }
  // Whole configuration identical to golden afterwards.
  for (u32 gf = 0; gf < design.space->frame_count(); ++gf) {
    EXPECT_EQ(fabric.read_frame(design.space->frame_of_global(gf)),
              design.bitstream.frame(gf));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitFlipProperties,
                         ::testing::Values(u64{3}, u64{77}, u64{999}));

// ---- P3: every injection leaves the device configuration golden --------------

class InjectionHygiene : public ::testing::TestWithParam<u64> {};

TEST_P(InjectionHygiene, ConfigurationGoldenAfterEveryInjection) {
  const auto design = compile(designs::lfsr_multiplier(6), device_tiny(8, 12));
  SeuInjector injector(design, {});
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const u64 lin = rng.uniform(design.space->total_bits());
    injector.inject(design.space->address_of_linear(lin));
    const BitAddress addr = design.space->address_of_linear(lin);
    EXPECT_EQ(injector.fabric().config_bit(addr),
              design.bitstream.get_bit(addr))
        << "bit " << lin << " left corrupted";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InjectionHygiene,
                         ::testing::Values(u64{5}, u64{808}, u64{31415}));

// ---- P4: CRC codebook flags any single-bit frame corruption ------------------

class CodebookProperty : public ::testing::TestWithParam<u64> {};

TEST_P(CodebookProperty, DetectsEverySingleBitCorruption) {
  const auto design = compile(designs::mult_tree(8), device_tiny(8, 12));
  const CrcCodebook codebook(design.bitstream);
  Rng rng(GetParam());
  for (int trial = 0; trial < 120; ++trial) {
    const u32 gf = static_cast<u32>(rng.uniform(design.space->frame_count()));
    BitVector frame = design.bitstream.frame(gf);
    frame.flip(rng.uniform(frame.size()));
    EXPECT_FALSE(codebook.check(gf, frame)) << "missed corruption in " << gf;
    EXPECT_TRUE(codebook.check(gf, design.bitstream.frame(gf)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodebookProperty,
                         ::testing::Values(u64{2}, u64{42}, u64{271828}));

// ---- P5: routed nets are structurally consistent ------------------------------

class RoutedNetConsistency
    : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(RoutedNetConsistency, EveryWireCodeDecodesToATreeMember) {
  const auto& [design_id, seed] = GetParam();
  PnrOptions options;
  options.seed = seed;
  Netlist nl = design_id == 0   ? designs::mult_tree(8)
               : design_id == 1 ? designs::lfsr_cluster(1)
                                : designs::counter_adder(10);
  const auto design =
      compile(std::make_shared<const Netlist>(std::move(nl)),
              std::make_shared<const ConfigSpace>(device_tiny(12, 12)), options);
  const DeviceGeometry& geom = design.space->geometry();

  for (const RoutedNet& net : design.routed_nets) {
    // Collect the tree's wires for membership tests.
    std::set<std::tuple<u16, u16, int, int>> members;
    for (const RoutedWire& rw : net.wires) {
      members.insert({rw.tile.row, rw.tile.col, static_cast<int>(rw.dir),
                      rw.windex});
    }
    for (const RoutedWire& rw : net.wires) {
      const WireSource src = decode_omux(rw.dir, rw.windex, rw.code);
      ASSERT_NE(src.kind, WireSource::Kind::kNone)
          << "tree contains an undriven wire";
      if (src.kind == WireSource::Kind::kIncoming) {
        // The feeding wire is the neighbor's out-wire; it must be in the
        // same tree.
        const auto nb = geom.neighbor(rw.tile, src.from_dir);
        ASSERT_TRUE(nb.has_value()) << "route fed from off-device";
        EXPECT_TRUE(members.count({nb->row, nb->col,
                                   static_cast<int>(opposite(src.from_dir)),
                                   src.windex}))
            << "feeding wire not in the same net tree";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndSeeds, RoutedNetConsistency,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(u64{1}, u64{7}, u64{12345})));

// ---- P6: persistence implies output error -------------------------------------

TEST(CampaignInvariants, PersistentImpliesSensitive) {
  const auto design = compile(designs::lfsr_cluster(1), device_tiny(8, 12));
  CampaignOptions opts;
  opts.sample_bits = 3000;
  opts.injection.classify_persistence = true;
  const auto r = run_campaign(design, opts);
  EXPECT_LE(r.persistent, r.failures);
  EXPECT_LE(r.failures, r.injections);
  for (const auto& sb : r.sensitive_bits) {
    // Every recorded sensitive bit has a meaningful first-error cycle
    // within the observation window.
    EXPECT_LT(sb.first_error_cycle, 200u);
  }
}

// ---- P7: geometry/addressing invariants across presets -------------------------

class PresetSweep : public ::testing::TestWithParam<int> {};

TEST_P(PresetSweep, AddressingBijective) {
  DeviceGeometry geom;
  switch (GetParam()) {
    case 0: geom = device_xcv50ish(); break;
    case 1: geom = device_xcv100ish(); break;
    case 2: geom = device_xcv300ish(); break;
    default: geom = device_xcv1000ish(); break;
  }
  const ConfigSpace space(geom);
  // Frame addressing is bijective.
  for (u32 gf = 0; gf < space.frame_count(); gf += 7) {
    EXPECT_EQ(space.global_frame_index(space.frame_of_global(gf)), gf);
  }
  // Linear addressing round-trips at sampled points.
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const u64 lin = rng.uniform(space.total_bits());
    EXPECT_EQ(space.linear_of(space.address_of_linear(lin)), lin);
  }
  // Total bits equals the sum of frame sizes.
  u64 sum = 0;
  for (u32 gf = 0; gf < space.frame_count(); ++gf) {
    sum += space.frame_bits(space.frame_of_global(gf).kind);
  }
  EXPECT_EQ(sum, space.total_bits());
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetSweep, ::testing::Values(0, 1, 2, 3));

// ---- P8: reset/reconfigure semantics -------------------------------------------

class ResetSemantics : public ::testing::TestWithParam<u64> {};

TEST_P(ResetSemantics, HalfLatchesSurviveResetButNotReconfigure) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  FabricSim fabric(design.space);
  fabric.full_configure(design.bitstream);
  Rng rng(GetParam());
  const DeviceGeometry& geom = design.space->geometry();
  const TileCoord t =
      geom.tile_coord(static_cast<u32>(rng.uniform(geom.tile_count())));
  const u8 pin = static_cast<u8>(rng.uniform(kImuxPins));
  fabric.flip_halflatch(t, pin);
  const bool flipped = fabric.halflatch(t, pin);
  EXPECT_NE(flipped, halflatch_startup_value(pin));
  fabric.reset();
  EXPECT_EQ(fabric.halflatch(t, pin), flipped) << "reset must not touch latches";
  fabric.full_configure(design.bitstream);
  EXPECT_EQ(fabric.halflatch(t, pin), halflatch_startup_value(pin));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResetSemantics,
                         ::testing::Values(u64{11}, u64{222}, u64{3333}));

}  // namespace
}  // namespace vscrub
