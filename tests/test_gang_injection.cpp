// Bit-sliced gang injection engine (GangSim): per-bit equivalence with the
// scalar inject() loop, early-exit soundness on reconvergent logic cones,
// eligibility rules, and the deprecated-API compile check riding this PR.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/vscrub.h"

using namespace vscrub;

namespace {

/// Every field a single injection promises to reproduce.
void expect_same_verdict(const InjectionResult& scalar,
                         const InjectionResult& gang, std::size_t i) {
  EXPECT_EQ(scalar.addr, gang.addr) << "bit " << i;
  EXPECT_EQ(scalar.output_error, gang.output_error) << "bit " << i;
  EXPECT_EQ(scalar.persistent, gang.persistent) << "bit " << i;
  EXPECT_EQ(scalar.first_error_cycle, gang.first_error_cycle) << "bit " << i;
  EXPECT_EQ(scalar.error_output_mask_lo, gang.error_output_mask_lo)
      << "bit " << i;
  EXPECT_EQ(scalar.modeled_time.ps(), gang.modeled_time.ps()) << "bit " << i;
}

std::vector<BitAddress> eligible_bits(const SeuInjector& injector,
                                      const PlacedDesign& design,
                                      u64 stride = 1) {
  std::vector<BitAddress> addrs;
  const u64 total = design.space->total_bits();
  for (u64 i = 0; i < total; i += stride) {
    const BitAddress addr = design.space->address_of_linear(i);
    if (injector.gang_eligible(addr)) addrs.push_back(addr);
  }
  return addrs;
}

}  // namespace

TEST(GangInjection, MatchesScalarPerBitExhaustive) {
  // Every gang-eligible bit of a small sequential design, verdicts compared
  // field-by-field against the scalar loop (persistence included).
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  const InjectionOptions opts = InjectionOptions{}.with_persistence();

  SeuInjector gang(design, InjectionOptions(opts).with_gang_width(64));
  SeuInjector scalar(design, InjectionOptions(opts).with_gang_width(1));
  ASSERT_TRUE(gang.gang_capable());
  EXPECT_FALSE(scalar.gang_capable());

  const auto addrs = eligible_bits(gang, design);
  ASSERT_GT(addrs.size(), 64u);  // spans several gang runs

  const auto results = gang.run_gang(addrs);
  ASSERT_EQ(results.size(), addrs.size());
  u64 errors = 0;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    expect_same_verdict(scalar.inject(addrs[i]), results[i], i);
    errors += results[i].output_error;
  }
  EXPECT_GT(errors, 0u);
  EXPECT_GT(gang.phases().gang_runs, 1u);
  EXPECT_EQ(gang.phases().gang_lanes, addrs.size());
}

TEST(GangInjection, EarlyExitMatchesFullScalarOnReconvergentCones) {
  // mult_tree's multiply-add tree reconverges many partial products into one
  // accumulator: corrupted lanes whose divergence dies out are retired early
  // by the golden-divergence rule, and their verdicts (including persistence,
  // which the early exit skips simulating) must equal the full-length run.
  const auto design = compile(designs::mult_tree(4), device_tiny(8, 12));
  const InjectionOptions opts =
      InjectionOptions{}.with_persistence().with_observe_cycles(96);

  SeuInjector gang(design, InjectionOptions(opts).with_gang_width(64));
  SeuInjector scalar(design, InjectionOptions(opts).with_gang_width(1));
  ASSERT_TRUE(gang.gang_capable());

  // Stride the space to keep per-bit scalar reruns affordable; the stride is
  // coprime with the lane width so batches mix tiles and frames.
  const auto addrs = eligible_bits(gang, design, 13);
  ASSERT_GT(addrs.size(), 128u);

  const auto results = gang.run_gang(addrs);
  ASSERT_EQ(results.size(), addrs.size());
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    expect_same_verdict(scalar.inject(addrs[i]), results[i], i);
  }
  // The point of the test: early exits actually happened, and they happened
  // on runs whose verdicts just matched the full-length scalar loop.
  EXPECT_GT(gang.phases().gang_early_exits, 0u);
}

TEST(GangInjection, WidthOneAndBramDesignsFallBackToScalar) {
  // gang_width <= 1 disables ganging; run_gang() must still answer, via the
  // scalar loop.
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  SeuInjector inj(design, InjectionOptions{}.with_gang_width(1));
  EXPECT_FALSE(inj.gang_capable());
  const std::vector<BitAddress> addrs = {design.space->address_of_linear(0)};
  const auto results = inj.run_gang(addrs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].addr, addrs[0]);
  EXPECT_EQ(inj.phases().gang_runs, 0u);

  // Designs holding live SRL16 delay lines are not gang-capable: corrupting
  // a frame clobbers shifting cell contents mid-run, which the gang engine's
  // shared golden lane cannot represent.
  const auto fir = compile(designs::fir_preproc(2), device_tiny(8, 12));
  ASSERT_FALSE(fir.dynamic_lut_sites.empty());
  SeuInjector fir_inj(fir, InjectionOptions{}.with_gang_width(64));
  EXPECT_FALSE(fir_inj.gang_capable());
}

TEST(GangInjection, PrunedBitsAreNotGangEligible) {
  // Observability-pruned bits stay on the scalar path, which short-circuits
  // them without a clocked run; padding slots and idle-region bits must not
  // occupy gang lanes.
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  SeuInjector inj(design, InjectionOptions{});
  const u64 total = design.space->total_bits();
  u64 eligible = 0, skipped = 0;
  for (u64 i = 0; i < total; ++i) {
    const BitAddress addr = design.space->address_of_linear(i);
    if (inj.gang_eligible(addr)) {
      ++eligible;
      EXPECT_TRUE(inj.bit_observable(addr));
    } else {
      ++skipped;
    }
  }
  EXPECT_GT(eligible, 0u);
  EXPECT_GT(skipped, 0u);  // device_tiny(4, 6) has idle regions
}
