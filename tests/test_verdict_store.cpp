// Content-addressed verdict store: warm-cache campaign runs must be
// bit-identical to cold runs (same failures, same sensitive set, same
// modeled time) with ~100% verdict reuse; delta re-campaigns of a changed
// design reuse unmoved keys and still match a from-scratch cold run; a
// corrupted store degrades to a cold run with identical results.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/vscrub.h"
#include "store/verdict_store.h"

namespace vscrub {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CampaignOptions cached_options(const std::string& dir, u64 sample = 4000) {
  return CampaignOptions{}.with_sample(sample).with_cache(dir);
}

// Everything about a campaign outcome that must be reproduced bit-exactly by
// a warm run (provenance flags excluded — those are the only allowed delta).
struct Outcome {
  u64 injections, failures, persistent, sensitive_digest;
  i64 modeled_ps;
  std::vector<std::tuple<u64, bool, u32, u64>> sensitive;
  bool operator==(const Outcome&) const = default;
};

Outcome outcome_of(const PlacedDesign& design, const CampaignResult& r) {
  Outcome o{r.injections, r.failures, r.persistent,
            r.sensitive_digest(design), r.modeled_hardware_time.ps(), {}};
  for (const auto& sb : r.sensitive_bits) {
    o.sensitive.emplace_back(design.space->linear_of(sb.addr), sb.persistent,
                             sb.first_error_cycle, sb.error_output_mask_lo);
  }
  std::sort(o.sensitive.begin(), o.sensitive.end());
  return o;
}

TEST(VerdictStore, WarmRunIsBitIdenticalAndFullyCached) {
  const std::string dir = fresh_dir("vstore_warm");
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));

  const CampaignResult cold = run_campaign(design, cached_options(dir));
  EXPECT_TRUE(cold.cache_enabled);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cold.injections);
  EXPECT_EQ(cold.cache_stores, cold.injections);

  const CampaignResult warm = run_campaign(design, cached_options(dir));
  EXPECT_EQ(outcome_of(design, warm), outcome_of(design, cold));
  EXPECT_EQ(warm.cache_hits, warm.injections);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_GE(static_cast<double>(warm.cache_hits) /
                static_cast<double>(warm.injections),
            0.99);
  for (const auto& sb : warm.sensitive_bits) {
    EXPECT_TRUE(sb.from_cache) << "warm sensitive bit not marked cached";
  }
  for (const auto& sb : cold.sensitive_bits) {
    EXPECT_FALSE(sb.from_cache) << "cold sensitive bit marked cached";
  }
  std::filesystem::remove_all(dir);
}

TEST(VerdictStore, WarmRunMatchesAcrossThreadCountsAndGangWidths) {
  const std::string dir = fresh_dir("vstore_threads");
  const auto design = compile(designs::lfsr_cluster(2), device_tiny(8, 8));
  const CampaignResult cold =
      run_campaign(design, cached_options(dir).with_threads(1));
  const CampaignResult warm4 =
      run_campaign(design, cached_options(dir).with_threads(4));
  CampaignOptions scalar = cached_options(dir).with_threads(2);
  scalar.injection.gang_width = 1;
  const CampaignResult warm_scalar = run_campaign(design, scalar);
  EXPECT_EQ(outcome_of(design, warm4), outcome_of(design, cold));
  EXPECT_EQ(outcome_of(design, warm_scalar), outcome_of(design, cold));
  EXPECT_EQ(warm4.cache_hits, warm4.injections);
  EXPECT_EQ(warm_scalar.cache_hits, warm_scalar.injections);
  std::filesystem::remove_all(dir);
}

TEST(VerdictStore, PersistenceVerdictsRoundTrip) {
  const std::string dir = fresh_dir("vstore_persist");
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  CampaignOptions options = cached_options(dir, 2500);
  options.injection.classify_persistence = true;
  const CampaignResult cold = run_campaign(design, options);
  const CampaignResult warm = run_campaign(design, options);
  EXPECT_EQ(outcome_of(design, warm), outcome_of(design, cold));
  EXPECT_EQ(warm.persistent, cold.persistent);
  EXPECT_EQ(warm.cache_hits, warm.injections);
  std::filesystem::remove_all(dir);
}

TEST(VerdictStore, RecampaignOfUnchangedDesignReusesEverything) {
  const std::string dir = fresh_dir("vstore_recamp");
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  const CampaignResult cold = run_campaign(design, cached_options(dir));

  const RecampaignResult r = run_recampaign(design, cached_options(dir));
  ASSERT_TRUE(r.had_prior);
  EXPECT_EQ(r.frames_changed, 0u);
  EXPECT_GT(r.frames_total, 0u);
  EXPECT_DOUBLE_EQ(r.hit_rate(), 1.0);
  EXPECT_TRUE(r.sensitive_match);
  EXPECT_EQ(r.prior_injections, cold.injections);
  EXPECT_EQ(r.prior_sensitive_digest, cold.sensitive_digest(design));
  EXPECT_EQ(r.current_sensitive_digest, r.prior_sensitive_digest);
  EXPECT_EQ(outcome_of(design, r.result), outcome_of(design, cold));
  std::filesystem::remove_all(dir);
}

TEST(VerdictStore, RecampaignWithoutPriorRunsColdAndSeedsStore) {
  const std::string dir = fresh_dir("vstore_noprior");
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  const RecampaignResult r = run_recampaign(design, cached_options(dir));
  EXPECT_FALSE(r.had_prior);
  EXPECT_EQ(r.result.cache_hits, 0u);
  EXPECT_EQ(r.result.cache_stores, r.result.injections);
  // The seeding run wrote a manifest: a second recampaign is fully warm.
  const RecampaignResult warm = run_recampaign(design, cached_options(dir));
  EXPECT_TRUE(warm.had_prior);
  EXPECT_DOUBLE_EQ(warm.hit_rate(), 1.0);
  EXPECT_TRUE(warm.sensitive_match);
  std::filesystem::remove_all(dir);
}

TEST(VerdictStore, DeltaRecampaignOfChangedPlacementMatchesColdRun) {
  // Same netlist, different placement seed: most frame contents move, but
  // the campaign against the new placement must match its own cold run
  // exactly — cached verdicts may only be reused where the key (frame
  // content + influence closure) genuinely did not move.
  const std::string dir = fresh_dir("vstore_delta");
  PnrOptions pnr_a;
  PnrOptions pnr_b;
  pnr_b.seed = 7;
  const auto design_a =
      compile(std::make_shared<const Netlist>(designs::counter_adder(8)),
              std::make_shared<const ConfigSpace>(device_tiny(8, 8)), pnr_a);
  const auto design_b =
      compile(std::make_shared<const Netlist>(designs::counter_adder(8)),
              std::make_shared<const ConfigSpace>(device_tiny(8, 8)), pnr_b);

  run_campaign(design_a, cached_options(dir));
  const RecampaignResult delta = run_recampaign(design_b, cached_options(dir));
  ASSERT_TRUE(delta.had_prior);
  EXPECT_GT(delta.frames_changed, 0u);

  const std::string cold_dir = fresh_dir("vstore_delta_cold");
  const CampaignResult cold = run_campaign(design_b, cached_options(cold_dir));
  EXPECT_EQ(outcome_of(design_b, delta.result), outcome_of(design_b, cold));
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(cold_dir);
}

TEST(VerdictStore, CorruptedStoreFallsBackToColdWithIdenticalResults) {
  const std::string dir = fresh_dir("vstore_corrupt");
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  const CampaignResult cold = run_campaign(design, cached_options(dir));

  // Trash every shard file in the store directory.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".vvs") continue;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "garbage, not a VVS1 record";
  }

  const CampaignResult fallback = run_campaign(design, cached_options(dir));
  EXPECT_EQ(fallback.cache_hits, 0u) << "corrupt store served verdicts";
  EXPECT_EQ(outcome_of(design, fallback), outcome_of(design, cold));
  // ...and the fallback run healed the store: a third run is fully warm.
  const CampaignResult warm = run_campaign(design, cached_options(dir));
  EXPECT_EQ(warm.cache_hits, warm.injections);
  EXPECT_EQ(outcome_of(design, warm), outcome_of(design, cold));
  std::filesystem::remove_all(dir);
}

TEST(VerdictStore, OscillationProneDesignStaysExactUnderCache) {
  // selfcheck_dsp exercises dynamic LUT sites; bram_selftest exercises BRAM
  // bindings. Both force the conservative whole-design key mode — reuse
  // must still be total for an unchanged design, and exact vs a cold run.
  for (const char* which : {"selfcheck", "bram"}) {
    const std::string dir = fresh_dir("vstore_osc");
    const Netlist nl = std::string(which) == "bram"
                           ? designs::bram_selftest(2)
                           : designs::selfcheck_dsp(8, 5);
    const auto design = compile(nl, device_tiny(8, 12, 2));
    const CampaignResult cold = run_campaign(design, cached_options(dir, 2000));
    const CampaignResult warm = run_campaign(design, cached_options(dir, 2000));
    EXPECT_EQ(outcome_of(design, warm), outcome_of(design, cold)) << which;
    EXPECT_EQ(warm.cache_hits, warm.injections) << which;
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace vscrub
