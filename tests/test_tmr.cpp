#include <gtest/gtest.h>

#include "designs/test_designs.h"
#include "netlist/drc.h"
#include "netlist/tmr.h"
#include "pnr/pnr.h"
#include "seu/campaign.h"
#include "sim/harness.h"

namespace vscrub {
namespace {

TEST(Tmr, PreservesFunctionAcrossDesigns) {
  for (Netlist nl :
       {designs::counter_adder(8), designs::mult_tree(6),
        designs::lfsr_cluster(1), designs::multiply_add(6),
        designs::fir_preproc(3, 4)}) {
    const std::string name = nl.name();
    const Netlist tmr = apply_tmr(nl);
    ASSERT_TRUE(run_drc(tmr).ok()) << name;
    const auto a = DesignHarness::reference_trace(nl, 120);
    const auto b = DesignHarness::reference_trace(tmr, 120);
    EXPECT_EQ(a, b) << "TMR changed the function of " << name;
  }
}

TEST(Tmr, TriplicatesAreaRoughly3x) {
  const Netlist nl = designs::counter_adder(10);
  const Netlist tmr = apply_tmr(nl);
  const auto s = nl.stats();
  const auto t = tmr.stats();
  EXPECT_GE(t.luts, 3 * s.luts);       // triplication + voters
  EXPECT_EQ(t.ffs, 3 * s.ffs);
}

TEST(Tmr, CompilesAndMatchesOnFabric) {
  const Netlist nl = designs::counter_adder(8);
  const auto design = compile(apply_tmr(nl), device_tiny(12, 12));
  FabricSim sim(design.space);
  DesignHarness harness(design, sim);
  harness.configure();
  const auto golden = DesignHarness::reference_trace(nl, 100);
  for (std::size_t t = 0; t < 100; ++t) {
    harness.step();
    ASSERT_EQ(harness.last_outputs(), golden[t]) << "cycle " << t;
  }
}

TEST(Tmr, MasksFlipFlopStateUpsets) {
  // §II-C: FF-state SEUs do not disturb the bitstream. Flip every used FF,
  // one at a time: the plain design's outputs diverge for some of them; the
  // TMR design's voters mask all of them within a cycle.
  const Netlist base_nl = designs::counter_adder(8);
  auto count_ff_failures = [](const PlacedDesign& design, std::size_t* ffs) {
    FabricSim sim(design.space);
    DesignHarness harness(design, sim);
    harness.configure();
    const auto golden = DesignHarness::reference_trace(*design.netlist, 4000);
    const DeviceGeometry& geom = design.space->geometry();
    std::size_t failures = 0;
    *ffs = 0;
    for (u32 t = 0; t < geom.tile_count(); ++t) {
      for (u8 f = 0; f < kFfsPerClb; ++f) {
        const TileCoord tc = geom.tile_coord(t);
        if (!design.bitstream.ff_used(tc, f)) continue;
        ++*ffs;
        harness.restart();
        harness.run(20);
        sim.flip_ff(tc, f);
        bool failed = false;
        // Observe a short window; TMR voters correct within one cycle.
        for (int c = 0; c < 12; ++c) {
          harness.step();
          if (!(harness.last_outputs() == golden[harness.cycle() - 1])) {
            failed = true;
          }
        }
        if (failed) ++failures;
        harness.restart();
      }
    }
    return failures;
  };
  std::size_t plain_ffs = 0, tmr_ffs = 0;
  const auto plain = compile(base_nl, device_tiny(12, 12));
  const auto tmr = compile(apply_tmr(base_nl), device_tiny(12, 12));
  const std::size_t plain_failures = count_ff_failures(plain, &plain_ffs);
  const std::size_t tmr_failures = count_ff_failures(tmr, &tmr_ffs);
  EXPECT_GT(plain_failures, plain_ffs / 2) << "plain design should be fragile";
  EXPECT_EQ(tmr_failures, 0u) << "TMR voters must mask single FF upsets";
}

TEST(Tmr, ReducesConfigurationSensitivity) {
  const Netlist base_nl = designs::counter_adder(8);
  const auto base = compile(base_nl, device_tiny(12, 12));
  const auto tmr = compile(apply_tmr(base_nl), device_tiny(12, 12));

  CampaignOptions opts;
  opts.sample_bits = 5000;
  opts.record_sensitive_bits = false;
  const auto r_base = run_campaign(base, opts);
  const auto r_tmr = run_campaign(tmr, opts);

  ASSERT_GT(r_base.failures, 20u);
  // Per-area sensitivity must drop substantially: voters mask single-domain
  // upsets. (Raw sensitivity also drops despite TMR being ~3x larger.)
  EXPECT_LT(r_tmr.normalized_sensitivity(),
            r_base.normalized_sensitivity() * 0.5)
      << "base norm " << r_base.normalized_sensitivity() << " tmr norm "
      << r_tmr.normalized_sensitivity();
}

TEST(Tmr, ShrinksSensitiveAndPersistentCrossSections) {
  // Voters after FFs resynchronize single-domain state corruption, so the
  // persistent cross-section collapses. What remains is the shared primary
  // input network — a genuine single point of failure that full XTMR flows
  // remove by triplicating the input pads as well.
  const Netlist base_nl = designs::lfsr_cluster(1);
  const auto base = compile(base_nl, device_tiny(12, 16));
  const auto tmr = compile(apply_tmr(base_nl), device_tiny(12, 18));

  CampaignOptions opts;
  opts.sample_bits = 5000;
  opts.injection.classify_persistence = true;
  opts.record_sensitive_bits = false;
  const auto r_base = run_campaign(base, opts);
  const auto r_tmr = run_campaign(tmr, opts);

  ASSERT_GT(r_base.failures, 20u);
  EXPECT_GT(r_base.persistence_ratio(), 0.7);  // plain LFSR: almost all
  // Sensitive and persistent cross-sections (per injected bit) both drop by
  // at least 5x even though the TMR design occupies ~3x the area.
  EXPECT_LT(r_tmr.sensitivity() * 5.0, r_base.sensitivity());
  const double base_pers_xsec = static_cast<double>(r_base.persistent) /
                                static_cast<double>(r_base.injections);
  const double tmr_pers_xsec = static_cast<double>(r_tmr.persistent) /
                               static_cast<double>(r_tmr.injections);
  EXPECT_LT(tmr_pers_xsec * 5.0, base_pers_xsec);
}

}  // namespace
}  // namespace vscrub
