#include <gtest/gtest.h>

#include "designs/test_designs.h"
#include "pnr/pnr.h"
#include "seu/campaign.h"

namespace vscrub {
namespace {

PlacedDesign small_counter() {
  return compile(designs::counter_adder(8), device_tiny(8, 8));
}

TEST(SeuInjector, PaddingBitsAreInsensitive) {
  const auto design = small_counter();
  SeuInjector injector(design, {});
  int checked = 0;
  for (u16 tb = 0; tb < kTileConfigBits && checked < 6; ++tb) {
    if (ConfigSpace::meaning_of_tile_bit(tb).kind != FieldKind::kPad) continue;
    ++checked;
    const auto r = injector.inject(design.space->address_of(TileCoord{2, 2}, tb));
    EXPECT_FALSE(r.output_error);
  }
  EXPECT_GT(checked, 0);
}

TEST(SeuInjector, RoutedWireBitsAreSensitive) {
  const auto design = small_counter();
  SeuInjector injector(design, {});
  // Flip the low bit of routed wires' OMUX codes: rerouting a live net must
  // disturb outputs for at least some of them.
  int errors = 0, tried = 0;
  for (const RoutedNet& net : design.routed_nets) {
    for (const RoutedWire& rw : net.wires) {
      if (tried >= 12) break;
      ++tried;
      const u8 wire = static_cast<u8>(static_cast<int>(rw.dir) * kWiresPerDir +
                                      rw.windex);
      const u16 tb = ConfigSpace::tile_bit_of_field(FieldKind::kOmux, wire, 0);
      const auto r = injector.inject(design.space->address_of(rw.tile, tb));
      if (r.output_error) ++errors;
    }
  }
  EXPECT_GE(errors, 4) << "rerouting live wires barely ever failed";
}

TEST(SeuInjector, InjectionIsRepeatable) {
  const auto design = small_counter();
  SeuInjector injector(design, {});
  const BitAddress addr = design.space->address_of_linear(12345);
  const auto r1 = injector.inject(addr);
  const auto r2 = injector.inject(addr);
  EXPECT_EQ(r1.output_error, r2.output_error);
  EXPECT_EQ(r1.first_error_cycle, r2.first_error_cycle);
}

TEST(SeuInjector, NoResidueAcrossThousandsOfInjections) {
  // After any injection+repair+reset sequence, a clean run must match the
  // golden trace exactly — state must never leak between injections.
  const auto design = small_counter();
  InjectionOptions opts;
  SeuInjector injector(design, opts);
  for (u64 lin = 0; lin < design.space->total_bits(); lin += 97) {
    injector.inject(design.space->address_of_linear(lin));
  }
  auto& h = injector.harness();
  h.restart();
  const auto& eff = injector.options();  // warmup may have been adapted
  for (u32 t = 0; t < eff.warmup_cycles + eff.observe_cycles; ++t) {
    h.step();
    ASSERT_EQ(h.last_outputs(), injector.golden()[t]) << "residue at " << t;
  }
}

TEST(SeuInjector, ModeledIterationTimeNearPaper) {
  // Paper §III-A: one corrupt/observe/repair iteration takes ~214 us on the
  // SLAAC-1V (XCV1000, 156-byte frames).
  const auto design =
      compile(designs::counter_adder(4), device_xcv1000ish());
  SeuInjector injector(design, {});
  const double us = injector.modeled_iteration_time().us();
  EXPECT_NEAR(us, 214.0, 25.0);
}

TEST(Campaign, DeterministicForFixedSeeds) {
  const auto design = small_counter();
  CampaignOptions opts;
  opts.sample_bits = 1500;
  const auto r1 = run_campaign(design, opts);
  const auto r2 = run_campaign(design, opts);
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.persistent, r2.persistent);
  EXPECT_EQ(r1.sensitive_bits.size(), r2.sensitive_bits.size());
}

TEST(Campaign, SampledApproximatesExhaustive) {
  const auto design = compile(designs::counter_adder(6), device_tiny(4, 8));
  CampaignOptions exhaustive;
  exhaustive.record_sensitive_bits = false;
  const auto full = run_campaign(design, exhaustive);
  CampaignOptions sampled = exhaustive;
  sampled.sample_bits = full.device_bits / 3;
  const auto part = run_campaign(design, sampled);
  EXPECT_NEAR(part.sensitivity(), full.sensitivity(),
              3.0 * full.sensitivity() / 10.0 + 0.01);
}

TEST(Campaign, SampleWithoutReplacement) {
  const auto design = compile(designs::counter_adder(6), device_tiny(4, 8));
  CampaignOptions opts;
  opts.sample_bits = 2000;
  const auto r = run_campaign(design, opts);
  EXPECT_EQ(r.injections, 2000u);
  // Sensitive-bit addresses must be unique.
  for (std::size_t i = 1; i < r.sensitive_bits.size(); ++i) {
    EXPECT_TRUE(r.sensitive_bits[i - 1].addr < r.sensitive_bits[i].addr);
  }
}

TEST(Campaign, PersistenceSeparatesDesignClasses) {
  // Paper Table II: feed-forward multiply-add has ~0% persistence; the LFSR
  // is almost entirely persistent; the counter/adder sits between.
  CampaignOptions opts;
  opts.sample_bits = 4000;
  opts.injection.classify_persistence = true;

  const auto ff = run_campaign(
      compile(designs::multiply_add(6), device_tiny(8, 12)), opts);
  const auto lfsr = run_campaign(
      compile(designs::lfsr_cluster(1), device_tiny(8, 12)), opts);

  ASSERT_GT(ff.failures, 10u);
  ASSERT_GT(lfsr.failures, 10u);
  EXPECT_LT(ff.persistence_ratio(), 0.25);
  EXPECT_GT(lfsr.persistence_ratio(), 0.75);
  EXPECT_LT(ff.persistence_ratio(), lfsr.persistence_ratio());
}

TEST(Campaign, RoutingDominatesSensitiveCrossSection) {
  const auto design = small_counter();
  CampaignOptions opts;
  opts.sample_bits = 6000;
  const auto r = run_campaign(design, opts);
  u64 routing = r.failures_by_field.count(static_cast<u8>(FieldKind::kOmux))
                    ? r.failures_by_field.at(static_cast<u8>(FieldKind::kOmux))
                    : 0;
  routing += r.failures_by_field.count(static_cast<u8>(FieldKind::kImux))
                 ? r.failures_by_field.at(static_cast<u8>(FieldKind::kImux))
                 : 0;
  ASSERT_GT(r.failures, 0u);
  EXPECT_GT(static_cast<double>(routing) / static_cast<double>(r.failures), 0.5);
}

TEST(Campaign, NormalizedSensitivityIsSizeInvariant) {
  // Paper Table I: LFSR18..72 all normalize to ~7.3-7.6%. Same family at
  // two sizes must normalize to similar values.
  CampaignOptions opts;
  opts.sample_bits = 6000;
  opts.record_sensitive_bits = false;
  const auto small =
      run_campaign(compile(designs::lfsr_cluster(1), device_tiny(12, 16)), opts);
  const auto large =
      run_campaign(compile(designs::lfsr_cluster(2), device_tiny(12, 16)), opts);
  ASSERT_GT(small.failures, 20u);
  ASSERT_GT(large.failures, 20u);
  // Raw sensitivity roughly doubles with size...
  EXPECT_GT(large.sensitivity(), small.sensitivity() * 1.4);
  // ...while normalized sensitivity stays within a factor ~1.5.
  const double ratio =
      large.normalized_sensitivity() / small.normalized_sensitivity();
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace vscrub
