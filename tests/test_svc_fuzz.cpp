// Adversarial input on the VSRP1 framing layer and the live socket server:
// truncated frames, bit flips, hostile length prefixes, unknown kinds and
// plain garbage must all decode to *typed* errors — the decoder never yields
// a corrupted frame as valid, and the server answers, closes, and keeps
// serving other clients. Mirrors the artifact fuzz suite (test_fuzz.cpp),
// which gives the on-disk formats the same discipline.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/crc.h"
#include "common/rng.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace vscrub {
namespace {

std::vector<u8> sample_wire() {
  return encode_frame({FrameKind::kCampaign, 0x1122334455667788ull,
                       R"({"design": "lfsr", "sample": 100})"});
}

/// Re-signs a hand-mutated frame so only the intended field is corrupt.
void resign(std::vector<u8>* wire) {
  const u32 crc = crc32(
      std::span<const u8>(wire->data(), wire->size() - kFrameTrailerBytes));
  for (int i = 0; i < 4; ++i) {
    (*wire)[wire->size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<u8>(crc >> (8 * i));
  }
}

TEST(ProtocolFuzz, TruncatedFramesNeverYieldAFrame) {
  const std::vector<u8> wire = sample_wire();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(std::span<const u8>(wire.data(), cut));
    Frame out;
    EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kNeedMore)
        << "cut at " << cut;
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(ProtocolFuzz, EverySingleBitFlipIsDetected) {
  const std::vector<u8> wire = sample_wire();
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<u8> mutated = wire;
      mutated[byte] = static_cast<u8>(mutated[byte] ^ (1u << bit));
      FrameDecoder decoder;
      decoder.feed(mutated);
      Frame out;
      const FrameDecoder::Status status = decoder.next(&out);
      // A flip may land in the length field and leave the decoder waiting
      // for bytes that never come (kNeedMore) — but it must never produce a
      // validated frame: the CRC catches every single-bit error.
      EXPECT_NE(status, FrameDecoder::Status::kFrame)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ProtocolFuzz, OversizedLengthRejectedBeforeBuffering) {
  std::vector<u8> wire = sample_wire();
  const u64 huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    wire[14 + static_cast<std::size_t>(i)] = static_cast<u8>(huge >> (8 * i));
  }
  FrameDecoder decoder;
  // Feed only the header: the hostile length must be rejected right there,
  // not after the decoder tries to buffer kMaxFramePayload+1 bytes.
  decoder.feed(std::span<const u8>(wire.data(), kFrameHeaderBytes));
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kOversized);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_LE(decoder.buffered(), kFrameHeaderBytes);
  // Poisoned is sticky: the stream has lost sync for good.
  decoder.feed(sample_wire());
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kOversized);
}

TEST(ProtocolFuzz, GarbageStreamPoisonsWithBadMagic) {
  Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u8> garbage(16 + rng.uniform(256));
    for (u8& b : garbage) b = static_cast<u8>(rng.uniform(256));
    if (garbage[0] == 'V') garbage[0] = 'X';  // guarantee a magic mismatch
    FrameDecoder decoder;
    decoder.feed(garbage);
    Frame out;
    EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadMagic) << trial;
    EXPECT_TRUE(decoder.poisoned());
  }
}

TEST(ProtocolFuzz, MagicMismatchDetectedOnPartialPrefix) {
  // "VSRX" diverges from the magic at byte 3: the decoder must not wait for
  // a full header to call it — a hostile peer could drip-feed forever.
  const u8 early[] = {'V', 'S', 'R', 'X'};
  FrameDecoder decoder;
  decoder.feed(early);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadMagic);
}

TEST(ProtocolFuzz, UnknownKindIsConsumedNotPoisoning) {
  std::vector<u8> wire = sample_wire();
  wire[5] = 11;  // not a FrameKind (9 became kStorePublish)
  resign(&wire);
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadKind);
  EXPECT_EQ(out.request_id, 0x1122334455667788ull);
  EXPECT_FALSE(decoder.poisoned());
  // Framing stayed in sync: the next valid frame decodes normally.
  decoder.feed(encode_frame({FrameKind::kPing, 3, ""}));
  ASSERT_EQ(decoder.next(&out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.kind, FrameKind::kPing);
  EXPECT_EQ(out.request_id, 3u);
}

TEST(ProtocolFuzz, CorruptedPayloadFailsCrcNotJson) {
  std::vector<u8> wire = sample_wire();
  wire[kFrameHeaderBytes + 4] ^= 0x20;  // flip inside the JSON payload
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadCrc);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ProtocolFuzz, RandomChunkingNeverChangesDecodeResults) {
  // Valid frames interleaved through arbitrary chunk boundaries must decode
  // identically to a single feed.
  std::vector<u8> wire;
  for (u64 id = 1; id <= 20; ++id) {
    const std::vector<u8> one = encode_frame(
        {FrameKind::kStats, id, std::string(static_cast<std::size_t>(id * 7), 'x')});
    wire.insert(wire.end(), one.begin(), one.end());
  }
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    FrameDecoder decoder;
    std::size_t fed = 0;
    u64 expect_id = 1;
    while (fed < wire.size()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<u64>(wire.size() - fed, 1 + rng.uniform(64)));
      decoder.feed(std::span<const u8>(wire.data() + fed, n));
      fed += n;
      Frame out;
      while (decoder.next(&out) == FrameDecoder::Status::kFrame) {
        EXPECT_EQ(out.request_id, expect_id);
        EXPECT_EQ(out.payload.size(), expect_id * 7);
        ++expect_id;
      }
    }
    EXPECT_EQ(expect_id, 21u) << "trial " << trial;
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Live server under hostile bytes
// ---------------------------------------------------------------------------

int raw_connect(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

/// Reads until EOF and decodes everything the server sent back.
std::vector<Frame> drain_replies(int fd) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  u8 buf[4096];
  while (true) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
    Frame out;
    while (decoder.next(&out) == FrameDecoder::Status::kFrame) {
      frames.push_back(out);
    }
  }
  return frames;
}

class ServerFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.socket_path = ::testing::TempDir() + "svc_fuzz.sock";
    std::filesystem::remove(options_.socket_path);
    options_.executors = 1;
    options_.pool_threads = 2;
    server_ = std::make_unique<SocketServer>(options_);
    server_->start();
    runner_ = std::thread([this] { server_->run(); });
  }
  void TearDown() override {
    // Whatever the hostile client did, a fresh client must still get a pong.
    ServiceClient client = ServiceClient::connect_unix(options_.socket_path);
    const Frame pong = client.ping();
    EXPECT_EQ(pong.kind, FrameKind::kResult);
    EXPECT_EQ(FlatJson::parse(pong.payload).get_string("kind"), "pong");
    server_->request_stop();
    runner_.join();
  }

  ServiceConfig options_;
  std::unique_ptr<SocketServer> server_;
  std::thread runner_;
};

TEST_F(ServerFuzz, GarbageBytesGetTypedErrorThenClose) {
  const int fd = raw_connect(options_.socket_path);
  const char garbage[] = "GET / HTTP/1.1\r\nHost: not-vsrp\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof garbage - 1, 0), 0);
  const std::vector<Frame> replies = drain_replies(fd);  // returns on close
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, FrameKind::kError);
  EXPECT_EQ(FlatJson::parse(replies[0].payload).get_string("code"),
            "bad_magic");
  ::close(fd);
}

TEST_F(ServerFuzz, BadCrcGetsTypedErrorThenClose) {
  std::vector<u8> wire = encode_frame({FrameKind::kPing, 1, ""});
  wire[6] ^= 0xFF;  // corrupt the request id under the CRC
  const int fd = raw_connect(options_.socket_path);
  ASSERT_GT(::send(fd, wire.data(), wire.size(), 0), 0);
  const std::vector<Frame> replies = drain_replies(fd);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(FlatJson::parse(replies[0].payload).get_string("code"), "bad_crc");
  ::close(fd);
}

TEST_F(ServerFuzz, OversizedLengthPrefixRejectedImmediately) {
  std::vector<u8> wire = encode_frame({FrameKind::kPing, 1, ""});
  const u64 huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    wire[14 + static_cast<std::size_t>(i)] = static_cast<u8>(huge >> (8 * i));
  }
  const int fd = raw_connect(options_.socket_path);
  ASSERT_GT(::send(fd, wire.data(), kFrameHeaderBytes, 0), 0);
  const std::vector<Frame> replies = drain_replies(fd);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(FlatJson::parse(replies[0].payload).get_string("code"),
            "oversized");
  ::close(fd);
}

TEST_F(ServerFuzz, UnknownKindKeepsConnectionServing) {
  std::vector<u8> wire = encode_frame({FrameKind::kPing, 42, ""});
  wire[5] = 13;  // not a FrameKind
  const u32 crc =
      crc32(std::span<const u8>(wire.data(), wire.size() - kFrameTrailerBytes));
  for (int i = 0; i < 4; ++i) {
    wire[wire.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<u8>(crc >> (8 * i));
  }
  const std::vector<u8> ping = encode_frame({FrameKind::kPing, 43, ""});
  const int fd = raw_connect(options_.socket_path);
  ASSERT_GT(::send(fd, wire.data(), wire.size(), 0), 0);
  ASSERT_GT(::send(fd, ping.data(), ping.size(), 0), 0);

  // Same connection: a typed unknown_kind error for 42, then a pong for 43.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  u8 buf[4096];
  while (frames.size() < 2) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0);
    decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
    Frame out;
    while (decoder.next(&out) == FrameDecoder::Status::kFrame) {
      frames.push_back(out);
    }
  }
  EXPECT_EQ(frames[0].kind, FrameKind::kError);
  EXPECT_EQ(frames[0].request_id, 42u);
  EXPECT_EQ(FlatJson::parse(frames[0].payload).get_string("code"),
            "unknown_kind");
  EXPECT_EQ(frames[1].kind, FrameKind::kResult);
  EXPECT_EQ(frames[1].request_id, 43u);
  ::close(fd);
}

TEST_F(ServerFuzz, TruncatedFrameThenDisconnectLeavesServerHealthy) {
  const std::vector<u8> wire =
      encode_frame({FrameKind::kCampaign, 9, R"({"sample": 100})"});
  const int fd = raw_connect(options_.socket_path);
  ASSERT_GT(::send(fd, wire.data(), wire.size() / 2, 0), 0);
  ::close(fd);  // hang up mid-frame; TearDown proves the server still serves
}

TEST_F(ServerFuzz, RandomGarbageFloodNeverKillsTheServer) {
  Rng rng(31337);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<u8> garbage(64 + rng.uniform(512));
    for (u8& b : garbage) b = static_cast<u8>(rng.uniform(256));
    const int fd = raw_connect(options_.socket_path);
    ASSERT_GT(::send(fd, garbage.data(), garbage.size(), 0), 0);
    drain_replies(fd);  // server answers (or just closes); never crashes
    ::close(fd);
  }
}

// ---------------------------------------------------------------------------
// Hostile clients against the event loop: slow-loris writers, deadbeat
// readers and mid-stream disconnects must cost the server one connection
// each — never an executor, never another client's latency.
// ---------------------------------------------------------------------------

void sendall(int fd, const u8* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const auto n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

struct HostileServer {
  explicit HostileServer(ServiceConfig config_in, bool check_health_in = true)
      : config(std::move(config_in)), check_health(check_health_in),
        server(config) {
    server.start();
    runner = std::thread([this] { server.run(); });
  }
  ~HostileServer() {
    // After every hostile episode, a fresh client still gets a pong. (Skipped
    // when the config itself dooms every reply, e.g. a 1-byte backlog bound.)
    if (check_health) {
      ServiceClient client = ServiceClient::connect_unix(config.socket_path);
      EXPECT_EQ(client.ping().kind, FrameKind::kResult);
    }
    server.request_stop();
    runner.join();
  }
  ServiceConfig config;
  bool check_health;
  SocketServer server;
  std::thread runner;
};

ServiceConfig hostile_config(const char* socket_name) {
  ServiceConfig config;
  config.socket_path = ::testing::TempDir() + socket_name;
  std::filesystem::remove(config.socket_path);
  config.executors = 1;
  config.pool_threads = 2;
  return config;
}

TEST(ServerHostile, SlowLorisDribblerNeverStallsOtherClients) {
  HostileServer host(hostile_config("svc_loris.sock"));

  // The loris holds a connection mid-frame forever, one byte at a time.
  const int loris = raw_connect(host.config.socket_path);
  const std::vector<u8> wire = encode_frame(
      {FrameKind::kCampaign, 1,
       R"({"design": "lfsr", "device": "campaign", "sample": 300})"});
  std::atomic<bool> stop_dribble{false};
  std::thread dribbler([&] {
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
      if (stop_dribble.load(std::memory_order_relaxed)) break;
      if (::send(loris, wire.data() + i, 1, MSG_NOSIGNAL) <= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Meanwhile every other client is served at full speed: a partial frame
  // parks in that connection's decoder, not in the event loop.
  ServiceClient client = ServiceClient::connect_unix(host.config.socket_path);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(client.ping().kind, FrameKind::kResult);
  }
  const Frame reply = client.call(
      FrameKind::kCampaign,
      R"({"design": "lfsr", "device": "campaign", "sample": 300})");
  EXPECT_EQ(reply.kind, FrameKind::kResult) << reply.payload;

  stop_dribble.store(true, std::memory_order_relaxed);
  dribbler.join();
  ::close(loris);
}

TEST(ServerHostile, MidStreamDisconnectCancelsOrphanedWork) {
  HostileServer host(hostile_config("svc_orphan.sock"));

  // Submit a long campaign, then vanish with it still running.
  {
    ServiceClient client = ServiceClient::connect_unix(host.config.socket_path);
    (void)client.send_request(
        FrameKind::kCampaign,
        R"({"design": "lfsrmult", "device": "campaign", "sample": 20000,)"
        R"( "chunk": 64})");
  }  // destructor closes the socket

  // The disconnect cancels the orphan at its next chunk boundary: live work
  // drains to zero far sooner than 20k injections could complete.
  ServiceClient probe = ServiceClient::connect_unix(host.config.socket_path);
  u64 live = ~0ull;
  for (int i = 0; i < 1000 && live != 0; ++i) {
    live = FlatJson::parse(probe.stats().payload).get_u64("live_requests");
    if (live != 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(live, 0u);
}

TEST(ServerHostile, BacklogBoundDeclaresANonReadingClientDead) {
  ServiceConfig config = hostile_config("svc_deadbeat.sock");
  config.max_conn_backlog_bytes = 1;  // every queued reply overflows
  HostileServer host(config, /*check_health_in=*/false);

  const int fd = raw_connect(host.config.socket_path);
  const std::vector<u8> ping = encode_frame({FrameKind::kPing, 1, ""});
  sendall(fd, ping.data(), ping.size());
  // The pong overflows the 1-byte backlog bound: the connection is declared
  // dead and shut down instead of buffering toward a client that may never
  // read. The client observes EOF, not a reply — and observing EOF at all
  // (rather than hanging) proves the event loop is still turning.
  const std::vector<Frame> replies = drain_replies(fd);
  EXPECT_TRUE(replies.empty());
  ::close(fd);

  // A second victim gets the same deterministic treatment: accepted, then
  // dropped at first reply. The loop survives its own backlog kills.
  const int fd2 = raw_connect(host.config.socket_path);
  sendall(fd2, ping.data(), ping.size());
  EXPECT_TRUE(drain_replies(fd2).empty());
  ::close(fd2);
}

TEST(ServerHostile, SendDeadlineDropsAClientThatStopsReading) {
  ServiceConfig config = hostile_config("svc_slowread.sock");
  config.send_timeout_ms = 200;
  HostileServer host(config);

  // Enough pings that the replies overrun the kernel socket buffer while we
  // read nothing: the server's write queue blocks, the 200ms write-progress
  // deadline expires, and the connection is closed server-side.
  const int fd = raw_connect(host.config.socket_path);
  std::vector<u8> burst;
  for (u64 id = 1; id <= 4000; ++id) {
    const std::vector<u8> one = encode_frame({FrameKind::kPing, id, ""});
    burst.insert(burst.end(), one.begin(), one.end());
  }
  sendall(fd, burst.data(), burst.size());
  // Refuse to read for longer than the deadline: the pong backlog exceeds the
  // kernel buffer, so the server's writes stay blocked until it gives up.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  // Drain whatever was in flight until the server hangs up. If the deadline
  // failed to fire this would block forever on the 4000th pong; instead the
  // stream ends early.
  const std::vector<Frame> replies = drain_replies(fd);
  EXPECT_LT(replies.size(), 4000u);
  ::close(fd);
}

TEST(ServerHostile, ManyFramesInOneWriteAllAnswered) {
  HostileServer host(hostile_config("svc_batch.sock"));

  // Edge-triggered readiness: 50 frames arriving as ONE readable event must
  // all be decoded and answered from that single edge.
  const int fd = raw_connect(host.config.socket_path);
  std::vector<u8> burst;
  for (u64 id = 1; id <= 50; ++id) {
    const std::vector<u8> one = encode_frame({FrameKind::kPing, id, ""});
    burst.insert(burst.end(), one.begin(), one.end());
  }
  sendall(fd, burst.data(), burst.size());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  u8 buf[8192];
  while (frames.size() < 50) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0);
    decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
    Frame out;
    while (decoder.next(&out) == FrameDecoder::Status::kFrame) {
      frames.push_back(out);
    }
  }
  for (u64 id = 1; id <= 50; ++id) {
    EXPECT_EQ(frames[static_cast<std::size_t>(id - 1)].request_id, id);
    EXPECT_EQ(frames[static_cast<std::size_t>(id - 1)].kind,
              FrameKind::kResult);
  }
  ::close(fd);
}

}  // namespace
}  // namespace vscrub
