// Adversarial input on the VSRP1 framing layer and the live socket server:
// truncated frames, bit flips, hostile length prefixes, unknown kinds and
// plain garbage must all decode to *typed* errors — the decoder never yields
// a corrupted frame as valid, and the server answers, closes, and keeps
// serving other clients. Mirrors the artifact fuzz suite (test_fuzz.cpp),
// which gives the on-disk formats the same discipline.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc.h"
#include "common/rng.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace vscrub {
namespace {

std::vector<u8> sample_wire() {
  return encode_frame({FrameKind::kCampaign, 0x1122334455667788ull,
                       R"({"design": "lfsr", "sample": 100})"});
}

/// Re-signs a hand-mutated frame so only the intended field is corrupt.
void resign(std::vector<u8>* wire) {
  const u32 crc = crc32(
      std::span<const u8>(wire->data(), wire->size() - kFrameTrailerBytes));
  for (int i = 0; i < 4; ++i) {
    (*wire)[wire->size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<u8>(crc >> (8 * i));
  }
}

TEST(ProtocolFuzz, TruncatedFramesNeverYieldAFrame) {
  const std::vector<u8> wire = sample_wire();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(std::span<const u8>(wire.data(), cut));
    Frame out;
    EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kNeedMore)
        << "cut at " << cut;
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(ProtocolFuzz, EverySingleBitFlipIsDetected) {
  const std::vector<u8> wire = sample_wire();
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<u8> mutated = wire;
      mutated[byte] = static_cast<u8>(mutated[byte] ^ (1u << bit));
      FrameDecoder decoder;
      decoder.feed(mutated);
      Frame out;
      const FrameDecoder::Status status = decoder.next(&out);
      // A flip may land in the length field and leave the decoder waiting
      // for bytes that never come (kNeedMore) — but it must never produce a
      // validated frame: the CRC catches every single-bit error.
      EXPECT_NE(status, FrameDecoder::Status::kFrame)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ProtocolFuzz, OversizedLengthRejectedBeforeBuffering) {
  std::vector<u8> wire = sample_wire();
  const u64 huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    wire[14 + static_cast<std::size_t>(i)] = static_cast<u8>(huge >> (8 * i));
  }
  FrameDecoder decoder;
  // Feed only the header: the hostile length must be rejected right there,
  // not after the decoder tries to buffer kMaxFramePayload+1 bytes.
  decoder.feed(std::span<const u8>(wire.data(), kFrameHeaderBytes));
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kOversized);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_LE(decoder.buffered(), kFrameHeaderBytes);
  // Poisoned is sticky: the stream has lost sync for good.
  decoder.feed(sample_wire());
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kOversized);
}

TEST(ProtocolFuzz, GarbageStreamPoisonsWithBadMagic) {
  Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u8> garbage(16 + rng.uniform(256));
    for (u8& b : garbage) b = static_cast<u8>(rng.uniform(256));
    if (garbage[0] == 'V') garbage[0] = 'X';  // guarantee a magic mismatch
    FrameDecoder decoder;
    decoder.feed(garbage);
    Frame out;
    EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadMagic) << trial;
    EXPECT_TRUE(decoder.poisoned());
  }
}

TEST(ProtocolFuzz, MagicMismatchDetectedOnPartialPrefix) {
  // "VSRX" diverges from the magic at byte 3: the decoder must not wait for
  // a full header to call it — a hostile peer could drip-feed forever.
  const u8 early[] = {'V', 'S', 'R', 'X'};
  FrameDecoder decoder;
  decoder.feed(early);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadMagic);
}

TEST(ProtocolFuzz, UnknownKindIsConsumedNotPoisoning) {
  std::vector<u8> wire = sample_wire();
  wire[5] = 9;  // not a FrameKind
  resign(&wire);
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadKind);
  EXPECT_EQ(out.request_id, 0x1122334455667788ull);
  EXPECT_FALSE(decoder.poisoned());
  // Framing stayed in sync: the next valid frame decodes normally.
  decoder.feed(encode_frame({FrameKind::kPing, 3, ""}));
  ASSERT_EQ(decoder.next(&out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.kind, FrameKind::kPing);
  EXPECT_EQ(out.request_id, 3u);
}

TEST(ProtocolFuzz, CorruptedPayloadFailsCrcNotJson) {
  std::vector<u8> wire = sample_wire();
  wire[kFrameHeaderBytes + 4] ^= 0x20;  // flip inside the JSON payload
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadCrc);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ProtocolFuzz, RandomChunkingNeverChangesDecodeResults) {
  // Valid frames interleaved through arbitrary chunk boundaries must decode
  // identically to a single feed.
  std::vector<u8> wire;
  for (u64 id = 1; id <= 20; ++id) {
    const std::vector<u8> one = encode_frame(
        {FrameKind::kStats, id, std::string(static_cast<std::size_t>(id * 7), 'x')});
    wire.insert(wire.end(), one.begin(), one.end());
  }
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    FrameDecoder decoder;
    std::size_t fed = 0;
    u64 expect_id = 1;
    while (fed < wire.size()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<u64>(wire.size() - fed, 1 + rng.uniform(64)));
      decoder.feed(std::span<const u8>(wire.data() + fed, n));
      fed += n;
      Frame out;
      while (decoder.next(&out) == FrameDecoder::Status::kFrame) {
        EXPECT_EQ(out.request_id, expect_id);
        EXPECT_EQ(out.payload.size(), expect_id * 7);
        ++expect_id;
      }
    }
    EXPECT_EQ(expect_id, 21u) << "trial " << trial;
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Live server under hostile bytes
// ---------------------------------------------------------------------------

int raw_connect(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

/// Reads until EOF and decodes everything the server sent back.
std::vector<Frame> drain_replies(int fd) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  u8 buf[4096];
  while (true) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
    Frame out;
    while (decoder.next(&out) == FrameDecoder::Status::kFrame) {
      frames.push_back(out);
    }
  }
  return frames;
}

class ServerFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.socket_path = ::testing::TempDir() + "svc_fuzz.sock";
    std::filesystem::remove(options_.socket_path);
    options_.service.executors = 1;
    options_.service.pool_threads = 2;
    server_ = std::make_unique<SocketServer>(options_);
    server_->start();
    runner_ = std::thread([this] { server_->run(); });
  }
  void TearDown() override {
    // Whatever the hostile client did, a fresh client must still get a pong.
    ServiceClient client = ServiceClient::connect_unix(options_.socket_path);
    const Frame pong = client.ping();
    EXPECT_EQ(pong.kind, FrameKind::kResult);
    EXPECT_EQ(FlatJson::parse(pong.payload).get_string("kind"), "pong");
    server_->request_stop();
    runner_.join();
  }

  ServerOptions options_;
  std::unique_ptr<SocketServer> server_;
  std::thread runner_;
};

TEST_F(ServerFuzz, GarbageBytesGetTypedErrorThenClose) {
  const int fd = raw_connect(options_.socket_path);
  const char garbage[] = "GET / HTTP/1.1\r\nHost: not-vsrp\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof garbage - 1, 0), 0);
  const std::vector<Frame> replies = drain_replies(fd);  // returns on close
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, FrameKind::kError);
  EXPECT_EQ(FlatJson::parse(replies[0].payload).get_string("code"),
            "bad_magic");
  ::close(fd);
}

TEST_F(ServerFuzz, BadCrcGetsTypedErrorThenClose) {
  std::vector<u8> wire = encode_frame({FrameKind::kPing, 1, ""});
  wire[6] ^= 0xFF;  // corrupt the request id under the CRC
  const int fd = raw_connect(options_.socket_path);
  ASSERT_GT(::send(fd, wire.data(), wire.size(), 0), 0);
  const std::vector<Frame> replies = drain_replies(fd);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(FlatJson::parse(replies[0].payload).get_string("code"), "bad_crc");
  ::close(fd);
}

TEST_F(ServerFuzz, OversizedLengthPrefixRejectedImmediately) {
  std::vector<u8> wire = encode_frame({FrameKind::kPing, 1, ""});
  const u64 huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    wire[14 + static_cast<std::size_t>(i)] = static_cast<u8>(huge >> (8 * i));
  }
  const int fd = raw_connect(options_.socket_path);
  ASSERT_GT(::send(fd, wire.data(), kFrameHeaderBytes, 0), 0);
  const std::vector<Frame> replies = drain_replies(fd);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(FlatJson::parse(replies[0].payload).get_string("code"),
            "oversized");
  ::close(fd);
}

TEST_F(ServerFuzz, UnknownKindKeepsConnectionServing) {
  std::vector<u8> wire = encode_frame({FrameKind::kPing, 42, ""});
  wire[5] = 13;  // not a FrameKind
  const u32 crc =
      crc32(std::span<const u8>(wire.data(), wire.size() - kFrameTrailerBytes));
  for (int i = 0; i < 4; ++i) {
    wire[wire.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<u8>(crc >> (8 * i));
  }
  const std::vector<u8> ping = encode_frame({FrameKind::kPing, 43, ""});
  const int fd = raw_connect(options_.socket_path);
  ASSERT_GT(::send(fd, wire.data(), wire.size(), 0), 0);
  ASSERT_GT(::send(fd, ping.data(), ping.size(), 0), 0);

  // Same connection: a typed unknown_kind error for 42, then a pong for 43.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  u8 buf[4096];
  while (frames.size() < 2) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0);
    decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
    Frame out;
    while (decoder.next(&out) == FrameDecoder::Status::kFrame) {
      frames.push_back(out);
    }
  }
  EXPECT_EQ(frames[0].kind, FrameKind::kError);
  EXPECT_EQ(frames[0].request_id, 42u);
  EXPECT_EQ(FlatJson::parse(frames[0].payload).get_string("code"),
            "unknown_kind");
  EXPECT_EQ(frames[1].kind, FrameKind::kResult);
  EXPECT_EQ(frames[1].request_id, 43u);
  ::close(fd);
}

TEST_F(ServerFuzz, TruncatedFrameThenDisconnectLeavesServerHealthy) {
  const std::vector<u8> wire =
      encode_frame({FrameKind::kCampaign, 9, R"({"sample": 100})"});
  const int fd = raw_connect(options_.socket_path);
  ASSERT_GT(::send(fd, wire.data(), wire.size() / 2, 0), 0);
  ::close(fd);  // hang up mid-frame; TearDown proves the server still serves
}

TEST_F(ServerFuzz, RandomGarbageFloodNeverKillsTheServer) {
  Rng rng(31337);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<u8> garbage(64 + rng.uniform(512));
    for (u8& b : garbage) b = static_cast<u8>(rng.uniform(256));
    const int fd = raw_connect(options_.socket_path);
    ASSERT_GT(::send(fd, garbage.data(), garbage.size(), 0), 0);
    drain_replies(fd);  // server answers (or just closes); never crashes
    ::close(fd);
  }
}

}  // namespace
}  // namespace vscrub
