// Scrub-repair safety property (paper §IV): a scrub pass over frames that
// hold live dynamic LUT state must never perturb design outputs, for every
// §IV architecture variant and its matching repair mode. Verified by
// golden-trace continuation: warm the design up, scrub, then require the
// outputs to keep tracking the netlist reference simulator cycle-for-cycle.
#include <gtest/gtest.h>

#include "core/vscrub.h"

namespace vscrub {
namespace {

PlacedDesign fir_design() {
  return compile(designs::fir_preproc(4), device_tiny(12, 16));
}

// Steps `n` further cycles and asserts the outputs continue the golden trace
// from absolute cycle `from` (harness cycles already consumed).
void expect_tracks_golden(DesignHarness& harness, const Netlist& nl, u32 from,
                          u32 n) {
  const auto golden = DesignHarness::reference_trace(nl, from + n);
  for (u32 t = from; t < from + n; ++t) {
    harness.step();
    ASSERT_EQ(harness.last_outputs(), golden[t]) << "cycle " << t;
  }
}

TEST(ScrubSafety, BaselineMaskedRmwPassIsFunctionalNoop) {
  const auto design = fir_design();
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  FlashStore flash(design.bitstream);
  ScrubberOptions options;
  options.repair_mode = RepairMode::kReadModifyWrite;
  options.reset_after_repair = false;
  Scrubber scrubber(design, fabric, flash, options);
  ASSERT_GT(design.dynamic_lut_sites.size(), 0u);
  harness.run(24);
  for (int p = 0; p < 2; ++p) {
    const auto pass = scrubber.scrub_pass(nullptr);
    EXPECT_EQ(pass.errors_found, 0u) << "masked frames must not alarm";
  }
  expect_tracks_golden(harness, *design.netlist, 24, 60);
}

TEST(ScrubSafety, ShadowReadbackRmwRepairPreservesLiveState) {
  const auto design = fir_design();
  ArchVariants variants;
  variants.shadow_readback = true;
  FabricSim fabric(design.space, variants);
  DesignHarness harness(design, fabric);
  harness.configure();
  FlashStore flash(design.bitstream);
  ScrubberOptions options;
  options.repair_mode = RepairMode::kReadModifyWrite;
  options.mask_dynamic_frames = false;  // force repairs through live frames
  options.reset_after_repair = false;
  Scrubber scrubber(design, fabric, flash, options);
  harness.run(24);
  // Unmasked live SRL frames are flagged and rewritten every pass; the RMW
  // merge must make each rewrite a no-op on the live bits.
  const auto pass = scrubber.scrub_pass(nullptr);
  EXPECT_GT(pass.errors_found, 0u);
  EXPECT_EQ(pass.repairs, pass.errors_found);
  expect_tracks_golden(harness, *design.netlist, 24, 40);
  scrubber.scrub_pass(nullptr);
  expect_tracks_golden(harness, *design.netlist, 64, 20);
}

TEST(ScrubSafety, ZeroedReadbackScrubIsFunctionalNoop) {
  const auto design = fir_design();
  ArchVariants variants;
  variants.zeroed_dynamic_readback = true;
  FabricSim fabric(design.space, variants);
  DesignHarness harness(design, fabric);
  harness.configure();
  FlashStore flash(design.bitstream);
  ScrubberOptions options;
  options.zeroed_dynamic_codebook = true;
  options.reset_after_repair = false;
  Scrubber scrubber(design, fabric, flash, options);
  harness.run(24);
  for (int p = 0; p < 2; ++p) {
    const auto pass = scrubber.scrub_pass(nullptr);
    EXPECT_EQ(pass.errors_found, 0u)
        << "zeroed readback must match the zeroed codebook while live";
  }
  expect_tracks_golden(harness, *design.netlist, 24, 60);
}

TEST(ScrubSafety, BitGranularRepairPreservesLiveState) {
  const auto design = fir_design();
  ArchVariants variants;
  variants.bit_granular_access = true;
  FabricSim fabric(design.space, variants);
  DesignHarness harness(design, fabric);
  harness.configure();
  FlashStore flash(design.bitstream);
  ScrubberOptions options;
  options.repair_mode = RepairMode::kBitGranular;
  options.mask_dynamic_frames = false;
  options.reset_after_repair = false;
  Scrubber scrubber(design, fabric, flash, options);
  harness.run(24);
  const auto pass = scrubber.scrub_pass(nullptr);
  EXPECT_GT(pass.errors_found, 0u);
  expect_tracks_golden(harness, *design.netlist, 24, 40);
  scrubber.scrub_pass(nullptr);
  expect_tracks_golden(harness, *design.netlist, 64, 20);
}

TEST(ScrubSafety, MaskedRmwPassSafeAcrossAllVariants) {
  const auto design = fir_design();
  for (int v = 0; v < 4; ++v) {
    ArchVariants variants;
    if (v == 1) variants.shadow_readback = true;
    if (v == 2) variants.zeroed_dynamic_readback = true;
    if (v == 3) variants.bit_granular_access = true;
    FabricSim fabric(design.space, variants);
    DesignHarness harness(design, fabric);
    harness.configure();
    FlashStore flash(design.bitstream);
    ScrubberOptions options;
    options.repair_mode = RepairMode::kReadModifyWrite;
    options.reset_after_repair = false;
    Scrubber scrubber(design, fabric, flash, options);
    harness.run(24);
    const auto pass = scrubber.scrub_pass(nullptr);
    EXPECT_EQ(pass.errors_found, 0u) << "variant " << v;
    const auto golden = DesignHarness::reference_trace(*design.netlist, 64);
    for (u32 t = 24; t < 64; ++t) {
      harness.step();
      ASSERT_EQ(harness.last_outputs(), golden[t])
          << "variant " << v << " cycle " << t;
    }
  }
}

}  // namespace
}  // namespace vscrub
