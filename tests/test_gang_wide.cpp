// The wide-gang SIMD engine: differential proof that every (width, ISA,
// plan) combination produces verdicts bit-identical to the scalar injection
// loop and to each other — plus the typed width/ISA contract errors at every
// intake surface (GangSim, SeuInjector, VSRP1 requests).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/vscrub.h"
#include "sim/gang_sim.h"
#include "svc/protocol.h"
#include "svc/requests.h"

using namespace vscrub;

namespace {

void expect_same_verdict(const InjectionResult& want,
                         const InjectionResult& got, const std::string& tag,
                         std::size_t i) {
  ASSERT_EQ(want.addr, got.addr) << tag << " bit " << i;
  ASSERT_EQ(want.output_error, got.output_error) << tag << " bit " << i;
  ASSERT_EQ(want.persistent, got.persistent) << tag << " bit " << i;
  ASSERT_EQ(want.first_error_cycle, got.first_error_cycle)
      << tag << " bit " << i;
  ASSERT_EQ(want.error_output_mask_lo, got.error_output_mask_lo)
      << tag << " bit " << i;
  ASSERT_EQ(want.modeled_time.ps(), got.modeled_time.ps())
      << tag << " bit " << i;
}

std::vector<BitAddress> eligible_bits(const SeuInjector& injector,
                                      const PlacedDesign& design,
                                      u64 stride = 1) {
  std::vector<BitAddress> addrs;
  const u64 total = design.space->total_bits();
  for (u64 i = 0; i < total; i += stride) {
    const BitAddress addr = design.space->address_of_linear(i);
    if (injector.gang_eligible(addr)) addrs.push_back(addr);
  }
  return addrs;
}

/// ISA names this binary can actually execute right now; always contains
/// "scalar". Each gets forced explicitly so the differential coverage is per
/// code path, not just whatever auto-dispatch picks.
std::vector<std::string> usable_isa_names() {
  std::vector<std::string> names;
  for (const char* name : {"scalar", "avx2", "avx512"}) {
    if (simd_isa_usable(parse_simd_isa(name))) names.push_back(name);
  }
  return names;
}

/// RAII environment-variable override (VSCRUB_FORCE_ISA tests).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      saved_ = old;
      had_ = true;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Differential battery: every width x ISA x plan combination
// ---------------------------------------------------------------------------

TEST(GangWide, EveryWidthIsaAndPlanMatchesScalarPerBit) {
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  const InjectionOptions base = InjectionOptions{}.with_persistence();

  SeuInjector scalar(design, InjectionOptions(base).with_gang_width(1));
  SeuInjector probe(design, InjectionOptions(base));
  const auto addrs = eligible_bits(probe, design);
  ASSERT_GT(addrs.size(), 64u);

  std::vector<InjectionResult> want;
  want.reserve(addrs.size());
  for (const BitAddress& addr : addrs) want.push_back(scalar.inject(addr));

  for (const u32 width : {64u, 256u, 512u}) {
    for (const std::string& isa : usable_isa_names()) {
      for (const bool plan : {true, false}) {
        SeuInjector gang(design, InjectionOptions(base)
                                     .with_gang_width(width)
                                     .with_gang_isa(isa)
                                     .with_gang_plan(plan));
        ASSERT_TRUE(gang.gang_capable());
        const auto got = gang.run_gang(addrs);
        ASSERT_EQ(got.size(), addrs.size());
        const std::string tag = "width=" + std::to_string(width) + " isa=" +
                                isa + (plan ? " plan" : " noplan");
        for (std::size_t i = 0; i < addrs.size(); ++i) {
          expect_same_verdict(want[i], got[i], tag, i);
        }
      }
    }
  }
}

TEST(GangWide, WideLanesFillPastSixtyFour) {
  // A 512-lane run must actually pack >63 candidates per dispatch — the
  // whole point of the wide words — and still match the u64 engine.
  const auto design = compile(designs::mult_tree(4), device_tiny(8, 12));
  const InjectionOptions base =
      InjectionOptions{}.with_observe_cycles(96).with_persistence();

  SeuInjector wide(design, InjectionOptions(base).with_gang_width(512));
  SeuInjector narrow(design, InjectionOptions(base).with_gang_width(64));
  ASSERT_TRUE(wide.gang_capable());

  const auto addrs = eligible_bits(wide, design, /*stride=*/7);
  ASSERT_GT(addrs.size(), 511u);  // forces at least two full wide dispatches

  const auto wide_results = wide.run_gang(addrs);
  const auto narrow_results = narrow.run_gang(addrs);
  ASSERT_EQ(wide_results.size(), narrow_results.size());
  for (std::size_t i = 0; i < wide_results.size(); ++i) {
    expect_same_verdict(narrow_results[i], wide_results[i], "512-vs-64", i);
  }

  // 511 candidate lanes per dispatch: the batch count must reflect it.
  const u64 wide_runs = wide.phases().gang_runs;
  const u64 narrow_runs = narrow.phases().gang_runs;
  EXPECT_EQ(wide_runs, (addrs.size() + 510) / 511);
  EXPECT_GT(narrow_runs, wide_runs * 4);
}

TEST(GangWide, CampaignDigestInvariantAcrossEngineConfigs) {
  // The campaign-level guarantee the verdict cache and checkpoints rely on:
  // sensitive-set digests are identical across widths, ISAs, plan modes,
  // thread counts and chunk sizes.
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  const auto digest_with = [&](u32 width, const std::string& isa, bool plan,
                               unsigned threads, u64 chunk) {
    const CampaignResult r = run_campaign(
        design, CampaignOptions{}
                    .with_exhaustive()
                    .with_threads(threads)
                    .with_chunk_size(chunk)
                    .with_injection(InjectionOptions{}
                                        .with_persistence()
                                        .with_gang_width(width)
                                        .with_gang_isa(isa)
                                        .with_gang_plan(plan)));
    return r.sensitive_digest(design);
  };

  const u64 want = digest_with(1, "auto", true, 1, 64);  // scalar loop
  EXPECT_EQ(want, digest_with(64, "auto", false, 1, 64));  // seed u64 engine
  EXPECT_EQ(want, digest_with(64, "auto", true, 2, 128));
  EXPECT_EQ(want, digest_with(256, "scalar", true, 4, 32));
  EXPECT_EQ(want, digest_with(512, "auto", true, 2, 256));
  for (const std::string& isa : usable_isa_names()) {
    EXPECT_EQ(want, digest_with(512, isa, true, 4, 64)) << isa;
  }
}

// ---------------------------------------------------------------------------
// Width / ISA contract
// ---------------------------------------------------------------------------

TEST(GangWide, WidthContract) {
  EXPECT_TRUE(gang_width_supported(1));
  EXPECT_TRUE(gang_width_supported(2));
  EXPECT_TRUE(gang_width_supported(37));
  EXPECT_TRUE(gang_width_supported(64));
  EXPECT_TRUE(gang_width_supported(256));
  EXPECT_TRUE(gang_width_supported(512));
  EXPECT_FALSE(gang_width_supported(0));
  EXPECT_FALSE(gang_width_supported(65));
  EXPECT_FALSE(gang_width_supported(128));  // not compiled in
  EXPECT_FALSE(gang_width_supported(257));
  EXPECT_FALSE(gang_width_supported(1024));
  EXPECT_EQ(supported_gang_widths_list(), "1..64, 256, 512");

  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  // Narrow widths cap lanes on the u64 engine and always report kScalar.
  GangSim narrow(design, GangOptions{}.with_width(32));
  EXPECT_EQ(narrow.width(), 32u);
  EXPECT_EQ(narrow.max_variants(), 31);
  EXPECT_EQ(narrow.isa(), SimdIsa::kScalar);

  GangSim wide(design, GangOptions{}.with_width(512));
  EXPECT_EQ(wide.max_variants(), 511);
  EXPECT_TRUE(wide.plan_active()) << wide.plan_note();
  EXPECT_EQ(wide.plan_note(), "");

  GangSim unplanned(design, GangOptions{}.with_width(256).with_plan(false));
  EXPECT_FALSE(unplanned.plan_active());
  EXPECT_EQ(unplanned.plan_note(), "disabled by options");
}

TEST(GangWide, UnsupportedWidthsRaiseTypedErrorsListingSupport) {
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  for (const u32 width : {0u, 65u, 100u, 128u, 511u, 513u, 4096u}) {
    try {
      GangSim sim(design, GangOptions{}.with_width(width));
      FAIL() << "width " << width << " accepted";
    } catch (const GangWidthError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(std::to_string(width)), std::string::npos) << what;
      EXPECT_NE(what.find("1..64, 256, 512"), std::string::npos) << what;
    }
  }
  // The injector validates eagerly at construction — not at the first gang
  // batch — so campaigns reject bad widths before any injection runs.
  EXPECT_THROW(
      SeuInjector(design, InjectionOptions{}.with_gang_width(100)),
      GangWidthError);
  // Widths 0/1 mean "gang off" at the injector level, not an error.
  EXPECT_NO_THROW(SeuInjector(design, InjectionOptions{}.with_gang_width(0)));
  EXPECT_NO_THROW(SeuInjector(design, InjectionOptions{}.with_gang_width(1)));
}

TEST(GangWide, UnknownIsaNamesRaiseTypedErrorsListingNames) {
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  try {
    SeuInjector injector(design,
                         InjectionOptions{}.with_gang_isa("avx9000"));
    FAIL() << "bad ISA name accepted";
  } catch (const SimdIsaError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("avx9000"), std::string::npos) << what;
    EXPECT_NE(what.find("scalar"), std::string::npos) << what;
    EXPECT_NE(what.find("avx2"), std::string::npos) << what;
    EXPECT_NE(what.find("avx512"), std::string::npos) << what;
  }
  // "auto" and "" both mean auto-dispatch.
  EXPECT_EQ(parse_simd_isa("auto"), SimdIsa::kAuto);
  EXPECT_EQ(parse_simd_isa(""), SimdIsa::kAuto);
  EXPECT_EQ(parse_simd_isa("scalar"), SimdIsa::kScalar);
}

TEST(GangWide, ForceIsaEnvironmentOverridePinsAutoDispatch) {
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  {
    ScopedEnv force("VSCRUB_FORCE_ISA", "scalar");
    GangSim sim(design, GangOptions{}.with_width(256));
    EXPECT_EQ(sim.isa(), SimdIsa::kScalar);
  }
  {
    // The override only steers kAuto; an explicit request wins.
    ScopedEnv force("VSCRUB_FORCE_ISA", "scalar");
    const SimdIsa resolved = resolve_simd_isa(SimdIsa::kScalar);
    EXPECT_EQ(resolved, SimdIsa::kScalar);
  }
  {
    ScopedEnv force("VSCRUB_FORCE_ISA", "not-an-isa");
    EXPECT_THROW(GangSim(design, GangOptions{}.with_width(256)), SimdIsaError);
  }
}

// ---------------------------------------------------------------------------
// VSRP1 intake: served campaigns get the same typed errors
// ---------------------------------------------------------------------------

TEST(GangWide, ServedRequestsValidateWidthAndIsa) {
  RequestContext ctx;
  EXPECT_THROW(
      execute_request(
          FrameKind::kCampaign,
          FlatJson::parse(
              R"({"design": "counter", "device": "tiny:4x6", "sample": 8, "gang_width": 100})"),
          ctx),
      GangWidthError);
  EXPECT_THROW(
      execute_request(
          FrameKind::kCampaign,
          FlatJson::parse(
              R"({"design": "counter", "device": "tiny:4x6", "sample": 8, "gang_isa": "mmx"})"),
          ctx),
      SimdIsaError);
  // A supported configuration sails through the same path.
  const JsonReport ok = execute_request(
      FrameKind::kCampaign,
      FlatJson::parse(
          R"({"design": "counter", "device": "tiny:4x6", "sample": 64, "gang_width": 256, "gang_isa": "auto"})"),
      ctx);
  EXPECT_EQ(FlatJson::parse(ok.to_json()).get_string("kind"), "campaign");
}
