// The load-bearing integration tests: a compiled design running on the
// fabric simulator must match the netlist reference simulator cycle for
// cycle — that equivalence is what makes configuration-level fault injection
// meaningful.
#include <gtest/gtest.h>

#include <memory>

#include "designs/test_designs.h"
#include "netlist/builder.h"
#include "pnr/pnr.h"
#include "sim/harness.h"

namespace vscrub {
namespace {

struct CompiledFixture {
  PlacedDesign design;
  std::unique_ptr<FabricSim> sim;
  std::unique_ptr<DesignHarness> harness;

  explicit CompiledFixture(Netlist nl, DeviceGeometry geom,
                           PnrOptions options = {})
      : design(compile(std::move(nl), geom, options)) {
    sim = std::make_unique<FabricSim>(design.space);
    harness = std::make_unique<DesignHarness>(design, *sim);
    harness->configure();
  }
};

void expect_equivalent(CompiledFixture& fx, std::size_t cycles,
                       std::size_t warmup = 0) {
  const auto golden =
      DesignHarness::reference_trace(*fx.design.netlist, cycles);
  fx.harness->restart();
  for (std::size_t t = 0; t < cycles; ++t) {
    fx.harness->step();
    if (t < warmup) continue;
    ASSERT_EQ(fx.harness->last_outputs(), golden[t])
        << fx.design.netlist->name() << " diverges at cycle " << t;
  }
  ASSERT_FALSE(fx.sim->oscillating());
}

TEST(PnrSim, CounterEquivalence) {
  CompiledFixture fx(designs::counter_adder(8), device_tiny(8, 8));
  expect_equivalent(fx, 100);
}

TEST(PnrSim, MultTreeEquivalence) {
  CompiledFixture fx(designs::mult_tree(8), device_tiny(12, 12));
  expect_equivalent(fx, 100);
}

TEST(PnrSim, VmultEquivalence) {
  CompiledFixture fx(designs::vmult(8), device_tiny(12, 12));
  expect_equivalent(fx, 100);
}

TEST(PnrSim, LfsrClusterEquivalence) {
  CompiledFixture fx(designs::lfsr_cluster(1), device_tiny(12, 12));
  expect_equivalent(fx, 200);
}

TEST(PnrSim, LfsrMultiplierEquivalence) {
  CompiledFixture fx(designs::lfsr_multiplier(6), device_tiny(12, 12));
  expect_equivalent(fx, 150);
}

TEST(PnrSim, MultiplyAddEquivalence) {
  CompiledFixture fx(designs::multiply_add(6), device_tiny(12, 12));
  expect_equivalent(fx, 100);
}

TEST(PnrSim, FirPreprocEquivalence) {
  CompiledFixture fx(designs::fir_preproc(3, 4), device_tiny(12, 12));
  expect_equivalent(fx, 120);
}

TEST(PnrSim, BramSelftestEquivalence) {
  CompiledFixture fx(designs::bram_selftest(1), device_tiny(8, 8, 2));
  expect_equivalent(fx, 80);
}

TEST(PnrSim, RadDrcLutRomPolicyEquivalence) {
  PnrOptions options;
  options.halflatch_policy = HalfLatchPolicy::kLutRomConstants;
  CompiledFixture fx(designs::lfsr_cluster(1), device_tiny(12, 12), options);
  expect_equivalent(fx, 150);
  // RadDRC removes every *critical* half-latch dependency.
  for (const auto& use : fx.design.halflatch_uses) {
    EXPECT_FALSE(use.critical);
  }
}

TEST(PnrSim, RadDrcExternalPolicyEquivalence) {
  PnrOptions options;
  options.halflatch_policy = HalfLatchPolicy::kExternalConstants;
  CompiledFixture fx(designs::counter_adder(8), device_tiny(8, 10), options);
  expect_equivalent(fx, 100);
  for (const auto& use : fx.design.halflatch_uses) {
    EXPECT_FALSE(use.critical);
  }
}

TEST(PnrSim, DefaultPolicyUsesCriticalHalfLatches) {
  CompiledFixture fx(designs::lfsr_cluster(1), device_tiny(12, 12));
  std::size_t critical = 0;
  for (const auto& use : fx.design.halflatch_uses) critical += use.critical;
  // Every slice of the LFSR relies on half-latch CE/SR idle values.
  EXPECT_GT(critical, 10u);
}

TEST(PnrSim, ResetResynchronizesFfDesigns) {
  CompiledFixture fx(designs::counter_adder(8), device_tiny(8, 8));
  fx.harness->run(37);
  fx.harness->restart();
  const auto golden = DesignHarness::reference_trace(*fx.design.netlist, 50);
  for (std::size_t t = 0; t < 50; ++t) {
    fx.harness->step();
    ASSERT_EQ(fx.harness->last_outputs(), golden[t]) << "cycle " << t;
  }
}

TEST(PnrSim, SrlContentsSurviveResetButFlush) {
  // Reset does not clear SRL16 contents (it is a logic reset, not a
  // reconfiguration) — outputs re-converge once the delay lines flush.
  CompiledFixture fx(designs::fir_preproc(3, 4), device_tiny(12, 12));
  fx.harness->run(29);
  fx.harness->restart();
  const std::size_t cycles = 120;
  const auto golden = DesignHarness::reference_trace(*fx.design.netlist, cycles);
  std::size_t first_match = cycles;
  bool matched_tail = true;
  for (std::size_t t = 0; t < cycles; ++t) {
    fx.harness->step();
    const bool match = fx.harness->last_outputs() == golden[t];
    if (match && first_match == cycles) first_match = t;
    if (t >= 48 && !match) matched_tail = false;
  }
  EXPECT_TRUE(matched_tail) << "FIR did not re-converge after reset";
}

TEST(PnrSim, FullReconfigureRestoresExactState) {
  CompiledFixture fx(designs::fir_preproc(3, 4), device_tiny(12, 12));
  fx.harness->run(29);
  fx.harness->configure();  // full reconfiguration, startup sequence
  const auto golden = DesignHarness::reference_trace(*fx.design.netlist, 60);
  for (std::size_t t = 0; t < 60; ++t) {
    fx.harness->step();
    ASSERT_EQ(fx.harness->last_outputs(), golden[t]) << "cycle " << t;
  }
}

TEST(PnrSim, UtilizationReportedSanely) {
  CompiledFixture fx(designs::lfsr_cluster(2), device_tiny(16, 16));
  const auto& stats = fx.design.stats;
  EXPECT_GT(stats.slices_used, 100u);
  EXPECT_LE(stats.slices_used, fx.design.space->geometry().slice_count());
  EXPECT_GT(stats.wires_used, stats.slices_used);  // routing dominates
  EXPECT_GT(stats.utilization, 0.0);
  EXPECT_LT(stats.utilization, 1.0);
}

TEST(PnrSim, DeterministicCompile) {
  auto d1 = compile(designs::counter_adder(8), device_tiny(8, 8));
  auto d2 = compile(designs::counter_adder(8), device_tiny(8, 8));
  EXPECT_TRUE(d1.bitstream == d2.bitstream);
}

TEST(PnrSim, DesignTooBigThrows) {
  EXPECT_THROW(compile(designs::mult_tree(16), device_tiny(4, 4)), Error);
}

}  // namespace
}  // namespace vscrub
