#include <gtest/gtest.h>

#include "core/vscrub.h"

namespace vscrub {
namespace {

class PayloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    design_ = std::make_unique<PlacedDesign>(
        compile(designs::counter_adder(8), device_tiny(8, 8)));
    CampaignOptions copts;
    copts.sample_bits = 4000;
    campaign_ = std::make_unique<CampaignResult>(run_campaign(*design_, copts));
    sensitive_ = campaign_->sensitive_set(*design_);
  }
  std::unique_ptr<PlacedDesign> design_;
  std::unique_ptr<CampaignResult> campaign_;
  std::unordered_set<u64> sensitive_;
};

TEST_F(PayloadFixture, QuietMissionMatchesPredictedRate) {
  PayloadOptions options;
  // Scale the environment to this small device so a short mission still
  // sees a statistically useful number of upsets.
  options.environment.upset_rate_per_bit_s = 2e-7;
  Payload payload(*design_, options, sensitive_);
  const auto report = payload.run_mission(SimTime::hours(2));
  EXPECT_EQ(report.devices, 9);
  EXPECT_GT(report.upsets_total, 20u);
  EXPECT_NEAR(report.observed_upsets_per_hour,
              report.predicted_upsets_per_hour,
              report.predicted_upsets_per_hour * 0.5);
}

TEST_F(PayloadFixture, DetectsAndRepairsAllDetectableUpsets) {
  PayloadOptions options;
  options.environment.upset_rate_per_bit_s = 2e-7;
  options.hidden_state_fraction = 0.0;
  Payload payload(*design_, options, sensitive_);
  const auto report = payload.run_mission(SimTime::hours(1));
  ASSERT_GT(report.upsets_total, 5u);
  EXPECT_EQ(report.detected, report.repaired);
  // Everything except masked-frame hits gets detected; the counter design
  // has no dynamic frames, so all upsets are detectable.
  u64 outstanding = 0;
  for (const auto& dev : report.per_device) {
    outstanding += dev.undetected_outstanding;
  }
  EXPECT_EQ(report.detected + outstanding, report.upsets_total);
}

TEST_F(PayloadFixture, DetectionLatencyBoundedByBoardCycle) {
  PayloadOptions options;
  options.environment.upset_rate_per_bit_s = 2e-7;
  options.hidden_state_fraction = 0.0;
  Payload payload(*design_, options, sensitive_);
  const auto report = payload.run_mission(SimTime::hours(1));
  ASSERT_GT(report.detected, 5u);
  const double cycle_ms = report.scrub_cycle_per_board.ms();
  EXPECT_LT(report.max_detection_latency_ms, cycle_ms * 1.1);
  EXPECT_GT(report.mean_detection_latency_ms, cycle_ms * 0.2);
  EXPECT_LT(report.mean_detection_latency_ms, cycle_ms * 0.8);
}

TEST_F(PayloadFixture, AvailabilityHighUnderQuietRates) {
  PayloadOptions options;
  options.environment.upset_rate_per_bit_s = 2e-7;
  Payload payload(*design_, options, sensitive_);
  const auto report = payload.run_mission(SimTime::hours(2));
  EXPECT_GT(report.availability, 0.99);
}

TEST_F(PayloadFixture, FlareRateScalesUpsets) {
  PayloadOptions quiet_opts;
  quiet_opts.environment.upset_rate_per_bit_s = 1e-7;
  quiet_opts.seed = 1;
  PayloadOptions flare_opts = quiet_opts;
  flare_opts.environment.upset_rate_per_bit_s = 8e-7;
  flare_opts.seed = 2;

  Payload quiet(*design_, quiet_opts, sensitive_);
  Payload flare(*design_, flare_opts, sensitive_);
  const auto rq = quiet.run_mission(SimTime::hours(2));
  const auto rf = flare.run_mission(SimTime::hours(2));
  ASSERT_GT(rq.upsets_total, 5u);
  const double ratio = static_cast<double>(rf.upsets_total) /
                       static_cast<double>(rq.upsets_total);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 16.0);
}

TEST_F(PayloadFixture, HiddenUpsetsStayUndetectedUntilFullReconfig) {
  PayloadOptions options;
  options.environment.upset_rate_per_bit_s = 2e-7;
  options.hidden_state_fraction = 0.5;  // exaggerate for statistics
  options.full_reconfig_interval = SimTime::hours(0.5);
  Payload payload(*design_, options, sensitive_);
  const auto report = payload.run_mission(SimTime::hours(2));
  EXPECT_GT(report.hidden_upsets, 5u);
  EXPECT_GE(report.full_reconfigs, 3u);
  // Hidden upsets never count as scrub detections.
  EXPECT_LE(report.detected, report.upsets_total - report.hidden_upsets);
}

TEST_F(PayloadFixture, PaperScaleRatesOnXcv1000) {
  // With the real geometry and the paper's orbital rates, the expected
  // system rate is 1.2/hour; a short mission just sanity-checks plumbing.
  const auto design = compile(designs::counter_adder(4), device_xcv1000ish());
  PayloadOptions options;
  options.environment = OrbitEnvironment::leo_quiet();
  Payload payload(design, options, {});
  const auto report = payload.run_mission(SimTime::hours(3));
  EXPECT_NEAR(report.predicted_upsets_per_hour, 1.2 / 0.9958, 0.1);
  EXPECT_NEAR(report.scrub_cycle_per_board.ms(), 180.0, 20.0);
}

TEST(GroundLink, Xcv1000UploadFitsInOnePass) {
  // Paper §II: configuration uploads happen during "one pass over a ground
  // station" on the 10 Mbit interface.
  const ConfigSpace space(device_xcv1000ish());
  const Bitstream image(std::make_shared<const ConfigSpace>(space.geometry()));
  GroundLink link;
  const u64 bytes = GroundLink::image_bytes(image);
  EXPECT_GT(bytes, 700'000u);  // ~0.73 MB, like the real XCV1000 bitstream
  EXPECT_LT(bytes, 800'000u);
  const SimTime t = link.upload_time(image);
  EXPECT_GT(t.sec(), 0.4);
  EXPECT_LT(t.sec(), 1.0);
  EXPECT_TRUE(link.upload_fits_in_pass(image));
}

TEST(GroundLink, FlashHoldsMoreThanTwentyXcv1000Images) {
  // Paper §II: "The 16MB flash memory module stores more than twenty
  // configuration bit streams for the Xilinx FPGAs (without compression)."
  const Bitstream image(
      std::make_shared<const ConfigSpace>(device_xcv1000ish()));
  ConfigLibrary library;
  EXPECT_GT(library.remaining_capacity_for(image), 20u);
  std::size_t added = 0;
  try {
    for (;;) {
      library.add_image(image);
      ++added;
    }
  } catch (const Error&) {
  }
  EXPECT_GT(added, 20u);
  EXPECT_EQ(library.image_count(), added);
}

TEST(GroundLink, SlotsAreReusable) {
  const Bitstream image(std::make_shared<const ConfigSpace>(device_tiny(8, 8)));
  ConfigLibrary library(1024 * 1024);
  const std::size_t a = library.add_image(image);
  const std::size_t b = library.add_image(image);
  EXPECT_NE(a, b);
  const u64 used = library.used_bytes();
  library.remove_image(a);
  EXPECT_LT(library.used_bytes(), used);
  EXPECT_EQ(library.add_image(image), a);  // freed slot reused
  EXPECT_THROW(library.remove_image(99), Error);
}

TEST(GroundLink, SohDownlinkScalesWithRecords) {
  GroundLink link;
  const SimTime small = link.soh_downlink_time(10);
  const SimTime large = link.soh_downlink_time(100000);
  EXPECT_LT(small, large);
  EXPECT_LT(large.sec(), 10.0);  // well within a pass
}

}  // namespace
}  // namespace vscrub
