#include <gtest/gtest.h>

#include "designs/test_designs.h"
#include "halflatch/raddrc.h"
#include "pnr/pnr.h"
#include "sim/harness.h"

namespace vscrub {
namespace {

PlacedDesign compile_policy(HalfLatchPolicy policy) {
  PnrOptions options;
  options.halflatch_policy = policy;
  return compile(std::make_shared<const Netlist>(designs::lfsr_cluster(1)),
                 std::make_shared<const ConfigSpace>(device_tiny(12, 12)),
                 options);
}

TEST(RadDrc, AnalysisCountsCriticalUses) {
  const auto unmitigated = compile_policy(HalfLatchPolicy::kUseHalfLatches);
  const auto report = raddrc_analyze(unmitigated);
  EXPECT_GT(report.critical_uses, 10u);      // CE/SR idle pins
  EXPECT_GT(report.noncritical_uses, 10u);   // unused LUT inputs
  EXPECT_GT(report.total_halflatch_sites, 1000u);
}

TEST(RadDrc, LutRomPolicyRemovesCriticalUses) {
  const auto mitigated = compile_policy(HalfLatchPolicy::kLutRomConstants);
  const auto report = raddrc_analyze(mitigated);
  EXPECT_EQ(report.critical_uses, 0u);
  // Non-critical (redundantly-encoded LUT input) uses legitimately remain.
  EXPECT_GT(report.noncritical_uses, 0u);
}

TEST(HalfLatch, UpsetInvisibleToReadbackAndPartialReconfig) {
  const auto design = compile_policy(HalfLatchPolicy::kUseHalfLatches);
  FabricSim sim(design.space);
  DesignHarness harness(design, sim);
  harness.configure();

  // Find a critical half-latch the design depends on.
  const HalfLatchUse* critical = nullptr;
  for (const auto& use : design.halflatch_uses) {
    if (use.critical) {
      critical = &use;
      break;
    }
  }
  ASSERT_NE(critical, nullptr);

  // Snapshot readback before and after the upset: identical (paper §III-C:
  // "configuration bitstream readback does not detect half-latch state").
  std::vector<BitVector> before;
  for (u32 gf = 0; gf < design.space->frame_count(); ++gf) {
    before.push_back(sim.read_frame(design.space->frame_of_global(gf)));
  }
  sim.flip_halflatch(critical->tile, critical->pin);
  for (u32 gf = 0; gf < design.space->frame_count(); ++gf) {
    EXPECT_EQ(sim.read_frame(design.space->frame_of_global(gf)), before[gf]);
  }

  // Partial reconfiguration of every frame does not restore the latch...
  for (u32 gf = 0; gf < design.space->frame_count(); ++gf) {
    sim.write_frame(design.space->frame_of_global(gf),
                    design.bitstream.frame(gf));
  }
  EXPECT_NE(sim.halflatch(critical->tile, critical->pin),
            halflatch_startup_value(critical->pin));

  // ...but full reconfiguration (startup sequence) does (Fig. 14(c)).
  sim.full_configure(design.bitstream);
  EXPECT_EQ(sim.halflatch(critical->tile, critical->pin),
            halflatch_startup_value(critical->pin));
}

TEST(HalfLatch, CriticalUpsetBreaksDesign) {
  // Fig. 14(d): a proton flipping the CE half-latch disables the flip-flop;
  // the design output diverges and neither readback nor partial
  // reconfiguration can fix it.
  // The counter's FFs have no CE net, so their clock enables ride on
  // half-latches (the LFSR design routes CE from its `run` input instead).
  const auto design = compile(designs::counter_adder(8), device_tiny(12, 12));
  FabricSim sim(design.space);
  DesignHarness harness(design, sim);
  harness.configure();
  const auto golden = DesignHarness::reference_trace(*design.netlist, 120);

  const HalfLatchUse* ce_use = nullptr;
  for (const auto& use : design.halflatch_uses) {
    if (use.critical && use.pin >= kPinCeBase && use.pin < kPinSrBase) {
      ce_use = &use;
      break;
    }
  }
  ASSERT_NE(ce_use, nullptr);
  sim.flip_halflatch(ce_use->tile, ce_use->pin);

  bool diverged = false;
  harness.restart();
  for (u32 t = 0; t < 120; ++t) {
    harness.step();
    if (t >= 48 && !(harness.last_outputs() == golden[t])) diverged = true;
  }
  EXPECT_TRUE(diverged) << "CE half-latch upset did not disturb the design";
}

TEST(RadDrc, MitigationReducesHalfLatchFailures) {
  // The paper's headline: RadDRC-mitigated designs were ~100x more
  // resistant to failure under the beam. Under a pure half-latch upset
  // trial the unmitigated design fails often, the mitigated one rarely.
  const auto unmitigated = compile_policy(HalfLatchPolicy::kUseHalfLatches);
  const auto mitigated = compile_policy(HalfLatchPolicy::kLutRomConstants);

  const auto base = halflatch_upset_trial(unmitigated, 600);
  const auto fixed = halflatch_upset_trial(mitigated, 600);
  ASSERT_GT(base.output_failures, 5u);
  EXPECT_LT(fixed.failure_rate(), base.failure_rate() / 5.0)
      << "unmitigated " << base.failure_rate() << " vs mitigated "
      << fixed.failure_rate();
}

TEST(RadDrc, ExternalConstantPolicyAlsoMitigates) {
  const auto mitigated = compile_policy(HalfLatchPolicy::kExternalConstants);
  const auto report = raddrc_analyze(mitigated);
  EXPECT_EQ(report.critical_uses, 0u);
  EXPECT_FALSE(mitigated.external_consts.empty());
}

}  // namespace
}  // namespace vscrub
