// Robustness fuzzing: the fabric must decode and execute *any* bit pattern
// deterministically — corrupted configurations are the whole point of the
// system, so there is no such thing as an invalid bitstream.
#include <gtest/gtest.h>

#include "core/vscrub.h"

namespace vscrub {
namespace {

class RandomBitstreamFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(RandomBitstreamFuzz, RandomConfigurationsExecuteDeterministically) {
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8, 2));
  Rng rng(GetParam());
  Bitstream bs(space);
  for (u32 gf = 0; gf < bs.frame_count(); ++gf) {
    BitVector& frame = bs.frame(gf);
    for (auto& word : frame.words()) word = rng.next();
    // Re-normalize the tail bits.
    frame.resize(frame.size());
  }

  auto run_once = [&](std::vector<u64>* trace) {
    FabricSim fabric(space);
    fabric.full_configure(bs);
    for (int t = 0; t < 40; ++t) {
      fabric.clock();
      u64 sample = 0;
      for (int i = 0; i < 16; ++i) {
        const TileCoord tile{static_cast<u16>(i % 8), static_cast<u16>(i)};
        if (fabric.output_value(TileCoord{tile.row, static_cast<u16>(i % 8)},
                                static_cast<u8>(i % 8))) {
          sample |= u64{1} << i;
        }
      }
      trace->push_back(sample);
    }
  };
  std::vector<u64> a, b;
  run_once(&a);
  run_once(&b);
  EXPECT_EQ(a, b) << "corrupt-config execution must be deterministic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBitstreamFuzz,
                         ::testing::Values(u64{1}, u64{2}, u64{3}, u64{4},
                                           u64{5}, u64{6}));

class RandomFrameWriteFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(RandomFrameWriteFuzz, LiveDesignSurvivesArbitraryFrameWrites) {
  // Write random garbage frames into a running design, then restore from
  // golden and verify full recovery (scrubbing must always be able to bring
  // the device back without a power cycle).
  const auto design = compile(designs::mult_tree(8), device_tiny(8, 12));
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const u32 gf = static_cast<u32>(rng.uniform(design.space->frame_count()));
    const FrameAddress fa = design.space->frame_of_global(gf);
    BitVector garbage(design.space->frame_bits(fa.kind));
    for (auto& word : garbage.words()) word = rng.next();
    garbage.resize(garbage.size());
    fabric.write_frame(fa, garbage);
    harness.run(8);  // let the corruption do whatever it does
    // Full scrub restore.
    for (u32 g2 = 0; g2 < design.space->frame_count(); ++g2) {
      const FrameAddress f2 = design.space->frame_of_global(g2);
      if (!(fabric.read_frame(f2) == design.bitstream.frame(g2))) {
        fabric.write_frame(f2, design.bitstream.frame(g2));
      }
    }
    harness.restart();
    const auto golden = DesignHarness::reference_trace(*design.netlist, 40);
    for (int t = 0; t < 40; ++t) {
      harness.step();
      ASSERT_EQ(harness.last_outputs(), golden[static_cast<std::size_t>(t)])
          << "round " << round << " cycle " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFrameWriteFuzz,
                         ::testing::Values(u64{11}, u64{22}, u64{33}));

TEST(FuzzMisc, OscillationBoundTerminates) {
  // Hand-craft a combinational loop through the fabric: a LUT inverter
  // whose input is its own output via the feedback IMUX code.
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8));
  Bitstream bs(space);
  const TileCoord t{3, 3};
  bs.set_lut_truth(t, 0, 0x5555);  // inverter on pin 0
  bs.set_imux_code(t, lut_input_pin(0, 0),
                   encode_imux(PinSource{PinSource::Kind::kClbOutput,
                                         Dir::kNorth, 0,
                                         static_cast<u8>(comb_output_index(0))}));
  FabricSim fabric(space);
  fabric.full_configure(bs);  // must not hang
  EXPECT_TRUE(fabric.oscillating());
  fabric.clock();  // still terminates
  SUCCEED();
}

TEST(FuzzMisc, AllOnesAndAllZerosConfigurations) {
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8, 2));
  for (const bool ones : {false, true}) {
    Bitstream bs(space);
    if (ones) {
      for (u32 gf = 0; gf < bs.frame_count(); ++gf) bs.frame(gf).fill(true);
    }
    FabricSim fabric(space);
    fabric.full_configure(bs);
    for (int t = 0; t < 20; ++t) fabric.clock();
    SUCCEED();
  }
}

TEST(FuzzMisc, RandomHalfLatchStormIsRecoverable) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  Rng rng(99);
  const DeviceGeometry& geom = design.space->geometry();
  for (int i = 0; i < 200; ++i) {
    fabric.flip_halflatch(
        geom.tile_coord(static_cast<u32>(rng.uniform(geom.tile_count()))),
        static_cast<u8>(rng.uniform(kImuxPins)));
  }
  harness.run(20);
  // Full reconfiguration restores everything.
  harness.configure();
  const auto golden = DesignHarness::reference_trace(*design.netlist, 40);
  for (int t = 0; t < 40; ++t) {
    harness.step();
    ASSERT_EQ(harness.last_outputs(), golden[static_cast<std::size_t>(t)]);
  }
}

}  // namespace
}  // namespace vscrub
