// Robustness fuzzing: the fabric must decode and execute *any* bit pattern
// deterministically — corrupted configurations are the whole point of the
// system, so there is no such thing as an invalid bitstream. Likewise the
// VSCK checkpoint reader: truncated or bit-flipped records must fail
// cleanly, never crash or resume from a corrupt cursor.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bitstream/record_io.h"
#include "core/vscrub.h"
#include "seu/checkpoint.h"
#include "store/verdict_store.h"

namespace vscrub {
namespace {

class RandomBitstreamFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(RandomBitstreamFuzz, RandomConfigurationsExecuteDeterministically) {
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8, 2));
  Rng rng(GetParam());
  Bitstream bs(space);
  for (u32 gf = 0; gf < bs.frame_count(); ++gf) {
    BitVector& frame = bs.frame(gf);
    for (auto& word : frame.words()) word = rng.next();
    // Re-normalize the tail bits.
    frame.resize(frame.size());
  }

  auto run_once = [&](std::vector<u64>* trace) {
    FabricSim fabric(space);
    fabric.full_configure(bs);
    for (int t = 0; t < 40; ++t) {
      fabric.clock();
      u64 sample = 0;
      for (int i = 0; i < 16; ++i) {
        const TileCoord tile{static_cast<u16>(i % 8), static_cast<u16>(i)};
        if (fabric.output_value(TileCoord{tile.row, static_cast<u16>(i % 8)},
                                static_cast<u8>(i % 8))) {
          sample |= u64{1} << i;
        }
      }
      trace->push_back(sample);
    }
  };
  std::vector<u64> a, b;
  run_once(&a);
  run_once(&b);
  EXPECT_EQ(a, b) << "corrupt-config execution must be deterministic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBitstreamFuzz,
                         ::testing::Values(u64{1}, u64{2}, u64{3}, u64{4},
                                           u64{5}, u64{6}));

class RandomFrameWriteFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(RandomFrameWriteFuzz, LiveDesignSurvivesArbitraryFrameWrites) {
  // Write random garbage frames into a running design, then restore from
  // golden and verify full recovery (scrubbing must always be able to bring
  // the device back without a power cycle).
  const auto design = compile(designs::mult_tree(8), device_tiny(8, 12));
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const u32 gf = static_cast<u32>(rng.uniform(design.space->frame_count()));
    const FrameAddress fa = design.space->frame_of_global(gf);
    BitVector garbage(design.space->frame_bits(fa.kind));
    for (auto& word : garbage.words()) word = rng.next();
    garbage.resize(garbage.size());
    fabric.write_frame(fa, garbage);
    harness.run(8);  // let the corruption do whatever it does
    // Full scrub restore.
    for (u32 g2 = 0; g2 < design.space->frame_count(); ++g2) {
      const FrameAddress f2 = design.space->frame_of_global(g2);
      if (!(fabric.read_frame(f2) == design.bitstream.frame(g2))) {
        fabric.write_frame(f2, design.bitstream.frame(g2));
      }
    }
    harness.restart();
    const auto golden = DesignHarness::reference_trace(*design.netlist, 40);
    for (int t = 0; t < 40; ++t) {
      harness.step();
      ASSERT_EQ(harness.last_outputs(), golden[static_cast<std::size_t>(t)])
          << "round " << round << " cycle " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFrameWriteFuzz,
                         ::testing::Values(u64{11}, u64{22}, u64{33}));

TEST(FuzzMisc, OscillationBoundTerminates) {
  // Hand-craft a combinational loop through the fabric: a LUT inverter
  // whose input is its own output via the feedback IMUX code.
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8));
  Bitstream bs(space);
  const TileCoord t{3, 3};
  bs.set_lut_truth(t, 0, 0x5555);  // inverter on pin 0
  bs.set_imux_code(t, lut_input_pin(0, 0),
                   encode_imux(PinSource{PinSource::Kind::kClbOutput,
                                         Dir::kNorth, 0,
                                         static_cast<u8>(comb_output_index(0))}));
  FabricSim fabric(space);
  fabric.full_configure(bs);  // must not hang
  EXPECT_TRUE(fabric.oscillating());
  fabric.clock();  // still terminates
  SUCCEED();
}

TEST(FuzzMisc, AllOnesAndAllZerosConfigurations) {
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8, 2));
  for (const bool ones : {false, true}) {
    Bitstream bs(space);
    if (ones) {
      for (u32 gf = 0; gf < bs.frame_count(); ++gf) bs.frame(gf).fill(true);
    }
    FabricSim fabric(space);
    fabric.full_configure(bs);
    for (int t = 0; t < 20; ++t) fabric.clock();
    SUCCEED();
  }
}

TEST(FuzzMisc, RandomHalfLatchStormIsRecoverable) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  Rng rng(99);
  const DeviceGeometry& geom = design.space->geometry();
  for (int i = 0; i < 200; ++i) {
    fabric.flip_halflatch(
        geom.tile_coord(static_cast<u32>(rng.uniform(geom.tile_count()))),
        static_cast<u8>(rng.uniform(kImuxPins)));
  }
  harness.run(20);
  // Full reconfiguration restores everything.
  harness.configure();
  const auto golden = DesignHarness::reference_trace(*design.netlist, 40);
  for (int t = 0; t < 40; ++t) {
    harness.step();
    ASSERT_EQ(harness.last_outputs(), golden[static_cast<std::size_t>(t)]);
  }
}

CampaignCheckpoint sample_checkpoint() {
  CampaignCheckpoint ck;
  ck.fingerprint = 0xABCDEF;
  ck.total_injections = 512;
  ck.chunk_size = 64;
  ck.done.assign(8, 0x55);
  ck.injections = 448;
  ck.failures = 17;
  ck.persistent = 3;
  ck.pruned = 12;
  ck.modeled_ps = 123456789;
  ck.phases.corrupt_s = 1.5;
  ck.phases.run_s = 2.5;
  for (u32 i = 0; i < 5; ++i) {
    CampaignResult::SensitiveBit sb;
    sb.addr = BitAddress{FrameAddress{ColumnKind::kClb, static_cast<u16>(i),
                                      static_cast<u16>(i * 3)},
                         i * 7};
    sb.persistent = (i & 1) != 0;
    sb.first_error_cycle = i * 11;
    sb.error_output_mask_lo = u64{1} << i;
    ck.sensitive_bits.push_back(sb);
  }
  ck.failures_by_field.emplace_back(u8{2}, u64{9});
  ck.failures_by_field.emplace_back(u8{5}, u64{8});
  return ck;
}

std::vector<u8> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<u8>(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<u8>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Attempts a load that must NOT succeed: clean failure (false return or a
// vscrub::Error) is fine, resuming with data is not. Any other outcome
// (crash, uncaught foreign exception) fails the test harness itself.
void expect_clean_rejection(const std::string& path, const char* what) {
  CampaignCheckpoint out;
  bool loaded = false;
  try {
    loaded = load_campaign_checkpoint(path, &out);
  } catch (const Error&) {
    return;  // clean, typed failure
  }
  EXPECT_FALSE(loaded) << what << ": corrupt record accepted";
}

TEST(CheckpointFuzz, RoundTripsIntact) {
  const std::string path = ::testing::TempDir() + "ckfuzz_roundtrip.vsck";
  const CampaignCheckpoint ck = sample_checkpoint();
  save_campaign_checkpoint(path, ck);
  CampaignCheckpoint out;
  ASSERT_TRUE(load_campaign_checkpoint(path, &out));
  EXPECT_EQ(out.fingerprint, ck.fingerprint);
  EXPECT_EQ(out.done, ck.done);
  EXPECT_EQ(out.sensitive_bits.size(), ck.sensitive_bits.size());
  EXPECT_EQ(out.failures_by_field, ck.failures_by_field);
  std::remove(path.c_str());
}

TEST(CheckpointFuzz, TruncatedCheckpointsFailCleanly) {
  const std::string path = ::testing::TempDir() + "ckfuzz_trunc.vsck";
  save_campaign_checkpoint(path, sample_checkpoint());
  const std::vector<u8> full = read_file(path);
  ASSERT_GT(full.size(), 16u);
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_file(path, std::vector<u8>(full.begin(),
                                     full.begin() +
                                         static_cast<std::ptrdiff_t>(len)));
    expect_clean_rejection(path, "truncation");
  }
  std::remove(path.c_str());
}

TEST(CheckpointFuzz, BitFlippedCheckpointsNeverResume) {
  const std::string path = ::testing::TempDir() + "ckfuzz_flip.vsck";
  save_campaign_checkpoint(path, sample_checkpoint());
  const std::vector<u8> full = read_file(path);
  // Every single-bit flip anywhere in the record — header, counts, payload,
  // CRC trailer — must be rejected (crc32 catches all single-bit errors).
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<u8> flipped = full;
      flipped[byte] = static_cast<u8>(flipped[byte] ^ (1u << bit));
      write_file(path, flipped);
      expect_clean_rejection(path, "bit flip");
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointFuzz, OversizedCountsRejectedBeforeAllocation) {
  // A record with a valid magic and CRC but an absurd element count must be
  // rejected by the size guards, not attempt a huge resize. (CRC-valid
  // hostile input models a corrupt-then-rewritten cursor.)
  const std::string path = ::testing::TempDir() + "ckfuzz_oversize.vsck";
  {
    RecordWriter w("VSCK3");
    w.put_u64(1);              // fingerprint
    w.put_u64(512);            // total_injections
    w.put_u64(64);             // chunk_size
    w.put_u64(u64{1} << 60);   // done bitmap "size": absurd
    w.write(path);
    expect_clean_rejection(path, "oversized done bitmap");
  }
  {
    RecordWriter w("VSCK3");
    w.put_u64(1);    // fingerprint
    w.put_u64(512);  // total_injections
    w.put_u64(64);   // chunk_size
    w.put_u64(0);    // done bitmap empty
    w.put_u64(0);    // injections
    w.put_u64(0);    // failures
    w.put_u64(0);    // persistent
    w.put_u64(0);    // pruned
    w.put_u64(0);    // cache_hits
    w.put_u64(0);    // cache_misses
    w.put_u64(0);    // modeled_ps
    for (int i = 0; i < 9; ++i) w.put_u64(0);  // phases block
    w.put_u64(u64{1} << 59);  // sensitive-bit count: absurd
    w.write(path);
    expect_clean_rejection(path, "oversized sensitive-bit table");
  }
  std::remove(path.c_str());
}

TEST(CheckpointFuzz, WrongMagicIsIgnoredNotFatal) {
  const std::string path = ::testing::TempDir() + "ckfuzz_magic.vsck";
  RecordWriter w("VSCB1");  // a bitstream-image record, not a checkpoint
  w.put_u64(42);
  w.write(path);
  CampaignCheckpoint out;
  EXPECT_FALSE(load_campaign_checkpoint(path, &out))
      << "foreign record types must be skipped so campaigns start fresh";
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Verdict-store format fuzzing: a corrupt, truncated or hostile shard file
// must only ever degrade to cache misses — never crash, never serve a wrong
// verdict — and the next flush() must rewrite the shard clean.

VerdictKey vkey(u64 i) { return VerdictKey{i * 0x9E3779B97F4A7C15ULL + 1, i}; }

StoredVerdict vverdict(u64 i) {
  StoredVerdict v;
  v.output_error = (i & 1) != 0;
  v.persistent = (i & 2) != 0;
  v.first_error_cycle = static_cast<u32>(i * 3);
  v.error_output_mask_lo = i << 8;
  return v;
}

std::string fresh_store_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Seeds a store with kEntries verdicts and returns its directory.
constexpr u64 kEntries = 64;
std::string seeded_store(const char* name) {
  const std::string dir = fresh_store_dir(name);
  VerdictStore store(dir);
  for (u64 i = 0; i < kEntries; ++i) store.put(vkey(i), vverdict(i));
  EXPECT_EQ(store.flush(), kEntries);
  return dir;
}

// Opens the store and counts how many seeded entries are still served; every
// served verdict must be byte-exact (a wrong verdict is the one failure mode
// the format must rule out).
u64 served_entries(const std::string& dir) {
  VerdictStore store(dir);
  u64 served = 0;
  for (u64 i = 0; i < kEntries; ++i) {
    if (const std::optional<StoredVerdict> v = store.find(vkey(i))) {
      EXPECT_EQ(*v, vverdict(i)) << "entry " << i << " served corrupted";
      ++served;
    }
  }
  return served;
}

TEST(VerdictStoreFuzz, RoundTripsIntact) {
  const std::string dir = seeded_store("vsfuzz_roundtrip");
  EXPECT_EQ(served_entries(dir), kEntries);
  VerdictStore store(dir);
  EXPECT_EQ(store.corrupt_shards(), 0u);
  EXPECT_EQ(store.size(), kEntries);
  std::filesystem::remove_all(dir);
}

TEST(VerdictStoreFuzz, TruncatedShardsDegradeToMisses) {
  const std::string dir = seeded_store("vsfuzz_trunc");
  VerdictStore probe(dir);
  const std::string shard = probe.shard_path(VerdictStore::shard_of(vkey(0)));
  const std::vector<u8> full = read_file(shard);
  ASSERT_GT(full.size(), 16u);
  // Every truncation length: the shard drops wholesale, the rest survive.
  for (std::size_t len = 0; len < full.size(); len += 7) {
    write_file(shard, std::vector<u8>(full.begin(),
                                      full.begin() +
                                          static_cast<std::ptrdiff_t>(len)));
    EXPECT_LT(served_entries(dir), kEntries) << "truncated shard accepted";
  }
  write_file(shard, full);
  EXPECT_EQ(served_entries(dir), kEntries);
  std::filesystem::remove_all(dir);
}

TEST(VerdictStoreFuzz, BitFlippedShardsNeverServeWrongVerdicts) {
  const std::string dir = seeded_store("vsfuzz_flip");
  VerdictStore probe(dir);
  const std::string shard = probe.shard_path(VerdictStore::shard_of(vkey(0)));
  const std::vector<u8> full = read_file(shard);
  for (std::size_t byte = 0; byte < full.size(); byte += 5) {
    for (int bit = 0; bit < 8; bit += 5) {
      std::vector<u8> flipped = full;
      flipped[byte] = static_cast<u8>(flipped[byte] ^ (1u << bit));
      write_file(shard, flipped);
      // served_entries verifies any served verdict byte-exactly; the CRC
      // trailer must reject the whole shard for every single-bit flip.
      EXPECT_LT(served_entries(dir), kEntries) << "bit-flipped shard accepted";
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(VerdictStoreFuzz, OversizedCountRejectedBeforeAllocation) {
  // Valid magic and CRC, absurd entry count: the count guard must drop the
  // shard without attempting the allocation.
  const std::string dir = seeded_store("vsfuzz_oversize");
  VerdictStore probe(dir);
  const u32 shard_idx = VerdictStore::shard_of(vkey(0));
  {
    RecordWriter w("VVS1");
    w.put_u64(u64{1} << 58);
    w.write(probe.shard_path(shard_idx));
  }
  VerdictStore store(dir);
  EXPECT_EQ(store.corrupt_shards(), 1u);
  EXPECT_FALSE(store.find(vkey(0)).has_value())
      << "hostile shard served a verdict";
  std::filesystem::remove_all(dir);
}

TEST(VerdictStoreFuzz, WrongMagicShardIsDroppedNotFatal) {
  const std::string dir = seeded_store("vsfuzz_magic");
  VerdictStore probe(dir);
  const u32 shard_idx = VerdictStore::shard_of(vkey(0));
  {
    RecordWriter w("VSCK3");  // a checkpoint record, not a verdict shard
    w.put_u64(42);
    w.write(probe.shard_path(shard_idx));
  }
  VerdictStore store(dir);
  EXPECT_EQ(store.corrupt_shards(), 1u);
  EXPECT_FALSE(store.find(vkey(0)).has_value());
  std::filesystem::remove_all(dir);
}

TEST(VerdictStoreFuzz, FlushRewritesCorruptShardsClean) {
  const std::string dir = seeded_store("vsfuzz_heal");
  VerdictStore probe(dir);
  const u32 shard_idx = VerdictStore::shard_of(vkey(0));
  write_file(probe.shard_path(shard_idx), {0xDE, 0xAD, 0xBE, 0xEF});
  {
    VerdictStore store(dir);
    ASSERT_EQ(store.corrupt_shards(), 1u);
    // Re-put one verdict that hashes into the corrupt shard and flush: the
    // shard must come back readable.
    store.put(vkey(0), vverdict(0));
    store.flush();
  }
  VerdictStore healed(dir);
  EXPECT_EQ(healed.corrupt_shards(), 0u);
  const std::optional<StoredVerdict> v = healed.find(vkey(0));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, vverdict(0));
  std::filesystem::remove_all(dir);
}

TEST(VerdictStoreFuzz, ManifestCorruptionFailsCleanly) {
  const std::string dir = fresh_store_dir("vsfuzz_manifest");
  std::filesystem::create_directories(dir);
  const std::string path = campaign_manifest_path(dir, "tiny", "fuzz_design");
  CampaignManifest m;
  m.arch_fingerprint = 7;
  m.stimulus_hash = 9;
  m.design_name = "fuzz_design";
  m.device_name = "tiny";
  m.injections = 100;
  m.frame_hashes = {1, 2, 3};
  save_campaign_manifest(path, m);
  const std::vector<u8> full = read_file(path);
  for (std::size_t len = 0; len < full.size(); len += 3) {
    write_file(path, std::vector<u8>(full.begin(),
                                     full.begin() +
                                         static_cast<std::ptrdiff_t>(len)));
    CampaignManifest out;
    bool loaded = false;
    try {
      loaded = load_campaign_manifest(path, &out);
    } catch (const Error&) {
      continue;  // clean, typed failure — callers treat it as "no prior"
    }
    EXPECT_FALSE(loaded) << "truncated manifest accepted at " << len;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vscrub
