// Campaign determinism and checkpoint/resume guarantees of the chunked
// scheduler: identical CampaignOptions must yield bit-identical campaign
// results regardless of thread count, chunk size, observability pruning, or
// whether the campaign was interrupted and resumed from a checkpoint.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/vscrub.h"

using namespace vscrub;

namespace {

PlacedDesign small_static_design() {
  return compile(designs::counter_adder(6), device_tiny(4, 8));
}

/// Everything a campaign promises to reproduce exactly (wall clock and
/// phase telemetry are measurements, not results, and are excluded).
/// `pruned` counts are compared separately: they are deterministic across
/// schedules but intentionally differ between prune-on and prune-off runs.
void expect_same_result(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.device_bits, b.device_bits);
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.persistent, b.persistent);
  EXPECT_EQ(a.modeled_hardware_time.ps(), b.modeled_hardware_time.ps());
  ASSERT_EQ(a.sensitive_bits.size(), b.sensitive_bits.size());
  for (std::size_t i = 0; i < a.sensitive_bits.size(); ++i) {
    const auto& sa = a.sensitive_bits[i];
    const auto& sb = b.sensitive_bits[i];
    EXPECT_EQ(sa.addr, sb.addr) << "sensitive bit " << i;
    EXPECT_EQ(sa.persistent, sb.persistent) << "sensitive bit " << i;
    EXPECT_EQ(sa.first_error_cycle, sb.first_error_cycle)
        << "sensitive bit " << i;
    EXPECT_EQ(sa.error_output_mask_lo, sb.error_output_mask_lo)
        << "sensitive bit " << i;
  }
  EXPECT_EQ(a.failures_by_field, b.failures_by_field);
}

}  // namespace

TEST(CampaignDeterminism, ThreadCountInvarianceSampled) {
  const auto design = small_static_design();
  CampaignOptions opts = CampaignOptions{}
                             .with_sample(3000, 17)
                             .with_chunk_size(128)
                             .with_injection(InjectionOptions{}.with_persistence());
  const auto r1 = run_campaign(design, opts.with_threads(1));
  const auto r8 = run_campaign(design, opts.with_threads(8));
  expect_same_result(r1, r8);
  EXPECT_EQ(r1.pruned, r8.pruned);
  EXPECT_GT(r1.failures, 0u);
}

TEST(CampaignDeterminism, ThreadCountInvarianceExhaustive) {
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  CampaignOptions opts = CampaignOptions{}.with_exhaustive();
  const auto r1 = run_campaign(design, opts.with_threads(1));
  const auto r8 = run_campaign(design, opts.with_threads(8));
  EXPECT_EQ(r1.injections, r1.device_bits);
  expect_same_result(r1, r8);
  EXPECT_EQ(r1.pruned, r8.pruned);
}

TEST(CampaignDeterminism, ChunkSizeInvariance) {
  const auto design = small_static_design();
  CampaignOptions opts = CampaignOptions{}.with_sample(3000, 17).with_threads(8);
  const auto small_chunks = run_campaign(design, opts.with_chunk_size(32));
  const auto big_chunks = run_campaign(design, opts.with_chunk_size(1024));
  expect_same_result(small_chunks, big_chunks);
  EXPECT_EQ(small_chunks.pruned, big_chunks.pruned);
}

TEST(CampaignDeterminism, PruningMatchesUnprunedSimulation) {
  const auto design = small_static_design();
  CampaignOptions opts = CampaignOptions{}.with_sample(2500, 23);
  const auto pruned =
      run_campaign(design, opts.with_injection(InjectionOptions{}.with_pruning(true)));
  const auto full =
      run_campaign(design, opts.with_injection(InjectionOptions{}.with_pruning(false)));
  expect_same_result(pruned, full);
  EXPECT_GT(pruned.pruned, 0u);  // the device has idle regions to skip
  EXPECT_EQ(full.pruned, 0u);
}

TEST(CampaignDeterminism, PruningMatchesUnprunedWithDynamicLutState) {
  // fir_preproc holds live SRL16 delay lines: frames covering them must
  // never be pruned (writing such a frame clobbers shifting contents — an
  // effect the full loop reproduces and pruning would miss).
  const auto design = compile(designs::fir_preproc(2), device_tiny(8, 12));
  ASSERT_FALSE(design.dynamic_lut_sites.empty());
  CampaignOptions opts = CampaignOptions{}.with_sample(1200, 5);
  const auto pruned =
      run_campaign(design, opts.with_injection(InjectionOptions{}.with_pruning(true)));
  const auto full =
      run_campaign(design, opts.with_injection(InjectionOptions{}.with_pruning(false)));
  expect_same_result(pruned, full);
}

TEST(CampaignDeterminism, GangWidthInvarianceExhaustive) {
  // The bit-sliced gang engine promises results bit-for-bit identical to the
  // scalar loop at every lane width and thread count: sensitivity set,
  // persistence classification, first-error cycles, output masks, modeled
  // hardware time — everything expect_same_result checks.
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  CampaignOptions base =
      CampaignOptions{}.with_exhaustive().with_chunk_size(128);
  auto with_gang = [&](u32 width, u32 threads) {
    CampaignOptions o = base;
    return run_campaign(
        design, o.with_threads(threads)
                    .with_injection(InjectionOptions{}
                                        .with_persistence()
                                        .with_gang_width(width)));
  };
  const auto scalar = with_gang(1u, 1u);  // gang disabled: the reference
  EXPECT_GT(scalar.failures, 0u);
  for (const u32 width : {8u, 64u}) {
    for (const u32 threads : {1u, 4u}) {
      const auto ganged = with_gang(width, threads);
      SCOPED_TRACE("gang_width=" + std::to_string(width) +
                   " threads=" + std::to_string(threads));
      expect_same_result(scalar, ganged);
      EXPECT_EQ(scalar.pruned, ganged.pruned);
    }
  }
}

TEST(CampaignDeterminism, GangMatchesScalarWithPruningOff) {
  // Prune-off forces every CLB bit through a clocked run, so the gang engine
  // carries the entire load (no scalar short-circuits to hide behind).
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  CampaignOptions opts = CampaignOptions{}.with_exhaustive().with_threads(4);
  const auto scalar = run_campaign(
      design, opts.with_injection(
                  InjectionOptions{}.with_pruning(false).with_gang_width(1)));
  const auto ganged = run_campaign(
      design, opts.with_injection(
                  InjectionOptions{}.with_pruning(false).with_gang_width(64)));
  expect_same_result(scalar, ganged);
}

TEST(CampaignDeterminism, CheckpointResumeRoundTrip) {
  const auto design = compile(designs::counter_adder(4), device_tiny(4, 6));
  const std::string path =
      ::testing::TempDir() + "vscrub_campaign_checkpoint_test.vsck";
  std::remove(path.c_str());

  CampaignOptions opts = CampaignOptions{}
                             .with_exhaustive()
                             .with_threads(2)
                             .with_chunk_size(64);
  const auto uninterrupted = run_campaign(design, opts);

  // Interrupt after a few chunks: the progress callback asks the campaign
  // to stop, and the final checkpoint captures the completed chunks.
  auto interrupted_opts = opts;
  interrupted_opts.with_checkpoint(path, 2).with_progress(
      [](const CampaignProgress& p) { return p.chunks_done < 4; }, 1);
  const auto partial = run_campaign(design, interrupted_opts);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_LT(partial.injections, uninterrupted.injections);
  EXPECT_GT(partial.injections, 0u);

  // Resume: picks up the checkpoint, runs only the remaining chunks, and
  // lands on the same final result as the uninterrupted campaign.
  auto resume_opts = opts;
  resume_opts.with_checkpoint(path, 8);
  const auto resumed = run_campaign(design, resume_opts);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.resumed_injections, partial.injections);
  expect_same_result(uninterrupted, resumed);
  EXPECT_EQ(uninterrupted.pruned, resumed.pruned);

  // A checkpoint from different options must be ignored, not resumed.
  auto mismatched = opts;
  mismatched.with_sample(2000, 77).with_checkpoint(path);
  const auto fresh = run_campaign(design, mismatched);
  EXPECT_EQ(fresh.resumed_injections, 0u);
  EXPECT_EQ(fresh.injections, 2000u);

  std::remove(path.c_str());
}
