#include <gtest/gtest.h>

#include <cstdio>

#include "core/vscrub.h"

namespace vscrub {
namespace {

std::string temp_path(const char* name) {
  return std::string("/tmp/vscrub_test_") + name + ".vsb";
}

TEST(ImageIo, RoundTripPreservesEveryFrame) {
  const auto design = compile(designs::counter_adder(10), device_tiny(8, 12, 2));
  const std::string path = temp_path("roundtrip");
  save_bitstream(design.bitstream, path);
  const LoadedImage loaded = load_bitstream(path);
  EXPECT_EQ(loaded.geometry.rows, 8);
  EXPECT_EQ(loaded.geometry.cols, 12);
  EXPECT_EQ(loaded.geometry.bram_columns, 2);
  ASSERT_EQ(loaded.bits.frame_count(), design.bitstream.frame_count());
  for (u32 gf = 0; gf < loaded.bits.frame_count(); ++gf) {
    EXPECT_EQ(loaded.bits.frame(gf), design.bitstream.frame(gf)) << gf;
  }
  std::remove(path.c_str());
}

TEST(ImageIo, LoadedImageRunsIdentically) {
  const auto design = compile(designs::lfsr_multiplier(8), device_tiny(8, 12));
  const std::string path = temp_path("run");
  save_bitstream(design.bitstream, path);
  const Bitstream loaded = load_bitstream(design.space, path);
  FabricSim fabric(design.space);
  fabric.full_configure(loaded);
  DesignHarness harness(design, fabric);
  harness.restart();
  const auto golden = DesignHarness::reference_trace(*design.netlist, 80);
  for (int t = 0; t < 80; ++t) {
    harness.step();
    ASSERT_EQ(harness.last_outputs(), golden[static_cast<std::size_t>(t)]);
  }
  std::remove(path.c_str());
}

TEST(ImageIo, RejectsCorruptedFile) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  const std::string path = temp_path("corrupt");
  save_bitstream(design.bitstream, path);
  // Flip one byte in the middle of the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 100, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  EXPECT_THROW(load_bitstream(path), Error);
  std::remove(path.c_str());
}

TEST(ImageIo, RejectsGeometryMismatch) {
  const auto design = compile(designs::counter_adder(8), device_tiny(8, 8));
  const std::string path = temp_path("mismatch");
  save_bitstream(design.bitstream, path);
  auto other = std::make_shared<const ConfigSpace>(device_tiny(8, 12));
  EXPECT_THROW(load_bitstream(other, path), Error);
  std::remove(path.c_str());
}

TEST(ImageIo, RejectsBadMagic) {
  const std::string path = temp_path("magic");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a bitstream image at all, sorry", f);
  std::fclose(f);
  EXPECT_THROW(load_bitstream(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vscrub
