// Hostile-fleet tests for the distributed campaign fabric: workers that die
// after a checkpoint, go silent past their lease, or deliver zombie results
// after reassignment must cost the campaign nothing but wall clock — the
// merged report stays bit-identical to a one-shot run, with the round trip
// through a shipped VSCK checkpoint proved by resumed_injections. A fleet
// with no live workers is a *typed* error, never a hang or a crash. The
// VSRP1 fuzz battery is extended over the fabric's new frame kinds
// (kStoreLookup / kStorePublish / kCheckpoint), at the decoder, the
// CoordinatorService, and a live coordinator socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc.h"
#include "coord/coordinator.h"
#include "coord/fabric.h"
#include "coord/partition.h"
#include "svc/client.h"
#include "svc/config.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/store_wire.h"

namespace vscrub {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

bool terminal(FrameKind kind) {
  return kind == FrameKind::kResult || kind == FrameKind::kError ||
         kind == FrameKind::kBusy;
}

/// A worker engine with a scripted failure mode wrapped around the real
/// CampaignService. The failure is injected at the reply seam, so the inner
/// engine computes honestly while the fabric sees a worker that died or
/// hung — the in-process equivalent of a SIGKILL mid-range.
class HostileWorkerService final : public FrameService {
 public:
  enum class Mode {
    kHonest,
    /// Forwards frames until the first kCheckpoint of a campaign has gone
    /// out, then drops every later frame of that campaign (terminal
    /// included): a worker killed right after its checkpoint shipped.
    kDieAfterFirstCheckpoint,
    /// Drops every campaign frame from the start: a worker that accepted
    /// the range and then hung without a word.
    kBlackHole,
    /// Drops the campaign's event frames but delivers its terminal reply
    /// late — after the lease has expired and the range moved on: a zombie
    /// completion that must be dropped by first-wins.
    kZombieTerminal,
  };

  HostileWorkerService(const ServiceConfig& config, Mode mode)
      : inner_(config), mode_(mode) {}

  void handle(const Frame& request, Emit emit, u64 client_id) override {
    if (mode_ == Mode::kHonest || request.kind != FrameKind::kCampaign) {
      inner_.handle(request, std::move(emit), client_id);
      return;
    }
    const Mode mode = mode_;
    auto dead = std::make_shared<std::atomic<bool>>(
        mode != Mode::kDieAfterFirstCheckpoint);
    inner_.handle(
        request,
        [emit = std::move(emit), dead, mode](const Frame& f) {
          if (mode == Mode::kZombieTerminal) {
            if (!terminal(f.kind)) return;  // silent until the zombie reply
            std::this_thread::sleep_for(std::chrono::milliseconds(800));
            emit(f);
            return;
          }
          if (dead->load(std::memory_order_acquire)) return;
          emit(f);
          if (f.kind == FrameKind::kCheckpoint) {
            dead->store(true, std::memory_order_release);
          }
        },
        client_id);
  }
  void begin_drain() override { inner_.begin_drain(); }
  void wait_drained() override { inner_.wait_drained(); }
  bool idle() const override { return inner_.idle(); }
  void cancel_client(u64 client_id) override {
    inner_.cancel_client(client_id);
  }
  void cancel_all() override { inner_.cancel_all(); }
  JsonReport stats_report() const override { return inner_.stats_report(); }

 private:
  CampaignService inner_;
  Mode mode_;
};

struct ServerBox {
  explicit ServerBox(ServiceConfig config)
      : server(std::make_unique<SocketServer>(std::move(config))) {
    run();
  }
  ServerBox(ServiceConfig config, std::unique_ptr<FrameService> svc)
      : server(std::make_unique<SocketServer>(std::move(config),
                                              std::move(svc))) {
    run();
  }
  ~ServerBox() {
    server->request_stop();
    runner.join();
  }
  void run() {
    server->start();
    runner = std::thread([this] { server->run(); });
  }
  std::unique_ptr<SocketServer> server;
  std::thread runner;
};

ServiceConfig worker_config(const char* socket_name, const std::string& spool) {
  ServiceConfig config;
  config.socket_path = ::testing::TempDir() + socket_name;
  std::filesystem::remove(config.socket_path);
  config.executors = 2;
  config.pool_threads = 2;
  config.spool_dir = spool;
  return config;
}

std::string campaign_payload(const char* design, u64 sample) {
  return JsonReport("campaign_request")
      .set_string("design", design)
      .set_string("device", "campaign")
      .set_u64("sample", sample)
      .set_u64("chunk", 64)
      .to_json();
}

/// The ground truth: the identical campaign served one-shot (no range) by a
/// plain worker — the report every sharded/hostile variant must reproduce.
FlatJson one_shot_report(const std::string& socket, const char* design,
                         u64 sample) {
  ServiceClient client = ServiceClient::connect_unix(socket);
  const Frame reply =
      client.call(FrameKind::kCampaign, campaign_payload(design, sample));
  EXPECT_EQ(reply.kind, FrameKind::kResult) << reply.payload;
  return FlatJson::parse(reply.payload);
}

void expect_merged_matches(const JsonReport& merged_report,
                           const FlatJson& expected) {
  const FlatJson merged = FlatJson::parse(merged_report.to_json());
  EXPECT_EQ(merged.get_u64("injections"), expected.get_u64("injections"));
  EXPECT_EQ(merged.get_u64("failures"), expected.get_u64("failures"));
  EXPECT_EQ(merged.get_u64("persistent"), expected.get_u64("persistent"));
  EXPECT_EQ(merged.get_u64("pruned"), expected.get_u64("pruned"));
  EXPECT_EQ(merged.get_u64("sensitive_bits"),
            expected.get_u64("sensitive_bits"));
  EXPECT_EQ(merged.get_u64("sensitive_digest"),
            expected.get_u64("sensitive_digest"));
  EXPECT_FALSE(merged.get_bool("interrupted"));
}

FabricOptions fabric_options(const std::vector<std::string>& workers,
                             const char* design, u64 sample, u64 lease_ms) {
  FabricOptions options;
  options.workers = workers;
  options.params = FlatJson::parse(campaign_payload(design, sample));
  options.shards_per_worker = 1;
  options.lease_ms = lease_ms;
  options.checkpoint_every_chunks = 1;
  return options;
}

// ---------------------------------------------------------------------------
// Fault-tolerant range reassignment
// ---------------------------------------------------------------------------

TEST(FabricHostile, WorkerDeadAfterCheckpointRangeResumesElsewhere) {
  const std::string spool_a = fresh_dir("fab_die_a");
  const std::string spool_b = fresh_dir("fab_die_b");
  ServiceConfig ca = worker_config("fab_die_a.sock", spool_a);
  ServiceConfig cb = worker_config("fab_die_b.sock", spool_b);
  ServerBox hostile(ca, std::make_unique<HostileWorkerService>(
                            ca, HostileWorkerService::Mode::
                                    kDieAfterFirstCheckpoint));
  ServerBox honest(cb);

  const FabricResult result = run_fabric_campaign(
      fabric_options({ca.socket_path, cb.socket_path}, "lfsr", 4000,
                     /*lease_ms=*/400));

  // The dead worker's range restarted from its shipped VSCK blob, not from
  // scratch — resumed_injections is the proof of the checkpoint round trip.
  EXPECT_EQ(result.workers_lost, 1u);
  EXPECT_GE(result.reassignments, 1u);
  EXPECT_GT(result.resumed_injections, 0u);
  EXPECT_FALSE(result.interrupted);

  // And the seam is invisible in the merge: bit-identical to one-shot.
  expect_merged_matches(result.merged,
                        one_shot_report(cb.socket_path, "lfsr", 4000));
  std::filesystem::remove_all(spool_a);
  std::filesystem::remove_all(spool_b);
}

TEST(FabricHostile, SilentWorkerForfeitsLeaseAndSurvivorsAbsorbTheRange) {
  const std::string spool_a = fresh_dir("fab_hang_a");
  const std::string spool_b = fresh_dir("fab_hang_b");
  ServiceConfig ca = worker_config("fab_hang_a.sock", spool_a);
  ServiceConfig cb = worker_config("fab_hang_b.sock", spool_b);
  ServerBox hostile(ca, std::make_unique<HostileWorkerService>(
                            ca, HostileWorkerService::Mode::kBlackHole));
  ServerBox honest(cb);

  const FabricResult result = run_fabric_campaign(
      fabric_options({ca.socket_path, cb.socket_path}, "lfsr", 2000,
                     /*lease_ms=*/300));

  EXPECT_EQ(result.workers_lost, 1u);
  EXPECT_GE(result.reassignments, 1u);
  EXPECT_FALSE(result.interrupted);
  expect_merged_matches(result.merged,
                        one_shot_report(cb.socket_path, "lfsr", 2000));
  std::filesystem::remove_all(spool_a);
  std::filesystem::remove_all(spool_b);
}

TEST(FabricHostile, ZombieResultAfterReassignmentIsNotDoubleCounted) {
  const std::string spool_a = fresh_dir("fab_zombie_a");
  const std::string spool_b = fresh_dir("fab_zombie_b");
  ServiceConfig ca = worker_config("fab_zombie_a.sock", spool_a);
  ServiceConfig cb = worker_config("fab_zombie_b.sock", spool_b);
  ServerBox hostile(ca, std::make_unique<HostileWorkerService>(
                            ca, HostileWorkerService::Mode::kZombieTerminal));
  ServerBox honest(cb);

  const FabricResult result = run_fabric_campaign(
      fabric_options({ca.socket_path, cb.socket_path}, "lfsr", 2000,
                     /*lease_ms=*/300));

  // The zombie's late completion (delivered well after its lease expired
  // and the range was reassigned) is dropped by first-wins: every counter
  // matches one-shot exactly — nothing was double-counted into the merge.
  EXPECT_GE(result.reassignments, 1u);
  EXPECT_FALSE(result.interrupted);
  expect_merged_matches(result.merged,
                        one_shot_report(cb.socket_path, "lfsr", 2000));
  std::filesystem::remove_all(spool_a);
  std::filesystem::remove_all(spool_b);
}

TEST(FabricHostile, FleetWithNoLiveWorkersIsATypedError) {
  // No worker ever reachable: the connect phase loses every link.
  FabricOptions unreachable = fabric_options(
      {::testing::TempDir() + "fab_no_such_worker.sock"}, "lfsr", 500,
      /*lease_ms=*/300);
  EXPECT_THROW(run_fabric_campaign(unreachable), Error);

  // A worker that connects but never speaks: the lease expires, the link is
  // declared lost, and with no survivors the fabric fails typed — it must
  // never hang on an outstanding range.
  const std::string spool = fresh_dir("fab_only_hang");
  ServiceConfig config = worker_config("fab_only_hang.sock", spool);
  ServerBox hostile(config, std::make_unique<HostileWorkerService>(
                                config,
                                HostileWorkerService::Mode::kBlackHole));
  FabricOptions silent =
      fabric_options({config.socket_path}, "lfsr", 500, /*lease_ms=*/300);
  EXPECT_THROW(run_fabric_campaign(silent), Error);
  std::filesystem::remove_all(spool);
}

// ---------------------------------------------------------------------------
// Coordinator end to end: sharded == one-shot, cross-worker verdict reuse
// ---------------------------------------------------------------------------

TEST(FabricHostile, CoordinatorFleetMatchesOneShotWithCrossWorkerReuse) {
  const std::string spool_a = fresh_dir("fab_coord_a");
  const std::string spool_b = fresh_dir("fab_coord_b");
  const std::string hub = fresh_dir("fab_coord_hub");
  ServiceConfig ca = worker_config("fab_coord_a.sock", spool_a);
  ServiceConfig cb = worker_config("fab_coord_b.sock", spool_b);
  ServerBox worker_a(ca);
  ServerBox worker_b(cb);

  CoordinatorConfig coord;
  coord.socket_path = ::testing::TempDir() + "fab_coord.sock";
  std::filesystem::remove(coord.socket_path);
  coord.workers = {ca.socket_path, cb.socket_path};
  coord.cache_dir = hub;
  coord.shards_per_worker = 2;
  coord.lease_ms = 10000;
  coord.checkpoint_every_chunks = 2;
  ServiceConfig transport;
  transport.socket_path = coord.socket_path;
  ServerBox coordinator(transport,
                        std::make_unique<CoordinatorService>(coord));

  ServiceClient client = ServiceClient::connect_unix(coord.socket_path);
  const FlatJson pong = FlatJson::parse(client.ping().payload);
  EXPECT_EQ(pong.get_string("role"), "coordinator");
  EXPECT_EQ(pong.get_u64("workers"), 2u);

  const FlatJson expected =
      one_shot_report(ca.socket_path, "lfsrmult", 1200);

  // Cold fleet run: 4 disjoint ranges over 2 workers, every fresh verdict
  // published into the coordinator's hub store.
  const Frame cold = client.call(FrameKind::kCampaign,
                                 campaign_payload("lfsrmult", 1200));
  ASSERT_EQ(cold.kind, FrameKind::kResult) << cold.payload;
  const FlatJson cold_report = FlatJson::parse(cold.payload);
  EXPECT_EQ(cold_report.get_u64("fabric_workers"), 2u);
  EXPECT_EQ(cold_report.get_u64("fabric_ranges"), 4u);
  EXPECT_GT(cold_report.get_u64("remote_publishes"), 0u);
  EXPECT_EQ(cold_report.get_u64("sensitive_digest"),
            expected.get_u64("sensitive_digest"));
  EXPECT_EQ(cold_report.get_u64("injections"),
            expected.get_u64("injections"));
  EXPECT_EQ(cold_report.get_u64("failures"), expected.get_u64("failures"));

  // Warm rerun: the workers (which hold no local store) answer out of each
  // other's published verdicts via the hub — cross-worker reuse > 0, same
  // digest.
  const Frame warm = client.call(FrameKind::kCampaign,
                                 campaign_payload("lfsrmult", 1200));
  ASSERT_EQ(warm.kind, FrameKind::kResult) << warm.payload;
  const FlatJson warm_report = FlatJson::parse(warm.payload);
  EXPECT_GT(warm_report.get_u64("remote_hits"), 0u);
  EXPECT_EQ(warm_report.get_u64("sensitive_digest"),
            expected.get_u64("sensitive_digest"));

  const FlatJson stats = FlatJson::parse(client.stats().payload);
  EXPECT_EQ(stats.get_string("kind"), "coordinator_stats");
  EXPECT_EQ(stats.get_u64("campaigns_total"), 2u);
  EXPECT_GT(stats.get_u64("store_publishes"), 0u);
  EXPECT_GT(stats.get_u64("store_hits"), 0u);

  std::filesystem::remove_all(spool_a);
  std::filesystem::remove_all(spool_b);
  std::filesystem::remove_all(hub);
}

// ---------------------------------------------------------------------------
// VSRP1 fuzz over the fabric's new frame kinds
// ---------------------------------------------------------------------------

TEST(FabricFuzz, NewKindsRoundTripAndInvalidNeighborsAreRejected) {
  EXPECT_TRUE(frame_kind_valid(static_cast<u8>(FrameKind::kStoreLookup)));
  EXPECT_TRUE(frame_kind_valid(static_cast<u8>(FrameKind::kStorePublish)));
  EXPECT_TRUE(frame_kind_valid(static_cast<u8>(FrameKind::kCheckpoint)));
  // The unassigned neighbors stay rejected: a corrupted kind byte cannot
  // alias into the fabric verbs.
  for (const int kind : {0, 10, 11, 12, 13, 14, 15, 22, 23, 255}) {
    EXPECT_FALSE(frame_kind_valid(static_cast<u8>(kind))) << kind;
  }

  for (const FrameKind kind : {FrameKind::kStoreLookup,
                               FrameKind::kStorePublish,
                               FrameKind::kCheckpoint}) {
    const Frame in{kind, 0xFAB51Cull, R"({"keys": "1:2"})"};
    FrameDecoder decoder;
    decoder.feed(encode_frame(in));
    Frame out;
    ASSERT_EQ(decoder.next(&out), FrameDecoder::Status::kFrame);
    EXPECT_EQ(out.kind, kind);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.payload, in.payload);
  }

  // A store frame whose kind byte is nudged into a hole (re-signed so only
  // the kind is wrong) is consumed as kBadKind without poisoning the stream.
  std::vector<u8> wire =
      encode_frame({FrameKind::kStoreLookup, 77, R"({"keys": ""})"});
  wire[5] = 11;
  const u32 crc = crc32(
      std::span<const u8>(wire.data(), wire.size() - kFrameTrailerBytes));
  for (int i = 0; i < 4; ++i) {
    wire[wire.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<u8>(crc >> (8 * i));
  }
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Status::kBadKind);
  EXPECT_FALSE(decoder.poisoned());
}

/// Thread-safe frame sink for driving FrameService::handle directly.
struct FrameLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Frame> frames;

  FrameService::Emit emit() {
    return [this](const Frame& f) {
      std::lock_guard lock(mutex);
      frames.push_back(f);
      cv.notify_all();
    };
  }
};

TEST(FabricFuzz, StoreRequestsDegradeToTypedErrorsNeverCrash) {
  const std::string hub = fresh_dir("fab_fuzz_hub");
  CoordinatorConfig no_store;
  no_store.socket_path = "/tmp/fab_fuzz_unused.sock";
  no_store.workers = {"/tmp/fab_fuzz_worker_unused.sock"};
  {
    // Without a cache dir the store verbs fail typed, not null-deref.
    CoordinatorService svc(no_store);
    FrameLog log;
    svc.handle({FrameKind::kStoreLookup, 1, R"({"keys": "1:2"})"},
               log.emit(), 0);
    ASSERT_EQ(log.frames.size(), 1u);
    EXPECT_EQ(log.frames[0].kind, FrameKind::kError);
    EXPECT_EQ(FlatJson::parse(log.frames[0].payload).get_string("code"),
              "no_store");
  }

  CoordinatorConfig with_store = no_store;
  with_store.cache_dir = hub;
  {
    CoordinatorService svc(with_store);

    // Hostile payloads against the verb whose field they corrupt (a missing
    // field is a valid empty batch, so a keys attack must ride a lookup):
    // unparseable JSON, non-hex keys, truncated tuples, out-of-range flag
    // bits — every one a typed bad_request.
    const std::pair<FrameKind, const char*> hostile[] = {
        {FrameKind::kStoreLookup, "{{{ not json"},
        {FrameKind::kStorePublish, "{{{ not json"},
        {FrameKind::kStoreLookup, R"({"keys": "zz:qq"})"},
        {FrameKind::kStoreLookup, R"({"keys": "1"})"},
        {FrameKind::kStorePublish, R"({"entries": "1:2:3"})"},
        {FrameKind::kStorePublish, R"({"entries": "ff:ff:ff:ff:f"})"},
    };
    u64 id = 10;
    for (const auto& [kind, payload] : hostile) {
      FrameLog log;
      svc.handle({kind, id++, payload}, log.emit(), 0);
      ASSERT_EQ(log.frames.size(), 1u) << payload;
      EXPECT_EQ(log.frames[0].kind, FrameKind::kError) << payload;
      EXPECT_EQ(FlatJson::parse(log.frames[0].payload).get_string("code"),
                "bad_request")
          << payload;
    }

    // The well-formed path still works after the abuse: publish one verdict,
    // read it back through the wire codecs.
    const VerdictKey key{0x1234, 0x5678};
    StoredVerdict verdict;
    verdict.output_error = true;
    verdict.first_error_cycle = 7;
    FrameLog publish;
    svc.handle({FrameKind::kStorePublish, 90,
                JsonReport("store_publish")
                    .set_string("entries", encode_store_entries({{key, verdict}}))
                    .to_json()},
               publish.emit(), 0);
    ASSERT_EQ(publish.frames.size(), 1u);
    ASSERT_EQ(publish.frames[0].kind, FrameKind::kResult);
    EXPECT_EQ(FlatJson::parse(publish.frames[0].payload).get_u64("accepted"),
              1u);

    FrameLog lookup;
    svc.handle({FrameKind::kStoreLookup, 91,
                JsonReport("store_lookup")
                    .set_string("keys", encode_store_keys({key}))
                    .to_json()},
               lookup.emit(), 0);
    ASSERT_EQ(lookup.frames.size(), 1u);
    ASSERT_EQ(lookup.frames[0].kind, FrameKind::kResult);
    const FlatJson verdicts = FlatJson::parse(lookup.frames[0].payload);
    EXPECT_EQ(verdicts.get_u64("hits"), 1u);
    std::vector<std::optional<StoredVerdict>> decoded;
    decode_store_verdicts(verdicts.get_string("verdicts"), 1, &decoded);
    ASSERT_TRUE(decoded[0].has_value());
    EXPECT_EQ(*decoded[0], verdict);

    // kCheckpoint is a reply kind: as a *request* it gets a typed error from
    // both engines, coordinator and worker.
    FrameLog coord_ckpt;
    svc.handle({FrameKind::kCheckpoint, 92, R"({"blob": "ff"})"},
               coord_ckpt.emit(), 0);
    ASSERT_EQ(coord_ckpt.frames.size(), 1u);
    EXPECT_EQ(coord_ckpt.frames[0].kind, FrameKind::kError);

    ServiceConfig worker;
    worker.executors = 1;
    worker.pool_threads = 2;
    CampaignService worker_svc(worker);
    FrameLog worker_ckpt;
    worker_svc.handle({FrameKind::kCheckpoint, 93, R"({"blob": "ff"})"},
                      worker_ckpt.emit());
    ASSERT_EQ(worker_ckpt.frames.size(), 1u);
    EXPECT_EQ(worker_ckpt.frames[0].kind, FrameKind::kError);
    EXPECT_EQ(FlatJson::parse(worker_ckpt.frames[0].payload).get_string("code"),
              "bad_request");
  }  // flush the hub store before removing its directory
  std::filesystem::remove_all(hub);
}

int raw_connect(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

std::vector<Frame> drain_replies(int fd) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  u8 buf[4096];
  while (true) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
    Frame out;
    while (decoder.next(&out) == FrameDecoder::Status::kFrame) {
      frames.push_back(out);
    }
  }
  return frames;
}

TEST(FabricFuzz, GarbageAtALiveCoordinatorSocketGetsTypedErrorThenClose) {
  CoordinatorConfig coord;
  coord.socket_path = ::testing::TempDir() + "fab_fuzz_coord.sock";
  std::filesystem::remove(coord.socket_path);
  coord.workers = {"/tmp/fab_fuzz_worker_unused.sock"};
  ServiceConfig transport;
  transport.socket_path = coord.socket_path;
  ServerBox coordinator(transport,
                        std::make_unique<CoordinatorService>(coord));

  const int fd = raw_connect(coord.socket_path);
  const char garbage[] = "GET /fleet HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof garbage - 1, 0), 0);
  const std::vector<Frame> replies = drain_replies(fd);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, FrameKind::kError);
  EXPECT_EQ(FlatJson::parse(replies[0].payload).get_string("code"),
            "bad_magic");
  ::close(fd);

  // The hostile episode cost one connection; the coordinator still serves.
  ServiceClient client = ServiceClient::connect_unix(coord.socket_path);
  EXPECT_EQ(FlatJson::parse(client.ping().payload).get_string("role"),
            "coordinator");
}

}  // namespace
}  // namespace vscrub
