// The §IV proposed architecture variants: each removes one limitation of
// the baseline Virtex-generation readback/partial-reconfiguration model.
#include <gtest/gtest.h>

#include "core/vscrub.h"

namespace vscrub {
namespace {

PlacedDesign fir_design() {
  return compile(designs::fir_preproc(4), device_tiny(12, 16));
}

TEST(ArchVariants, BaselineHasWriteDuringReadbackHazard) {
  const auto design = fir_design();
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  harness.run(24);
  const LutSiteRef site = design.dynamic_lut_sites.front();
  const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                        static_cast<u16>((site.lut / kLutsPerSlice) *
                                         kLutTruthBits)};
  EXPECT_NE(fabric.read_frame(fa, true), fabric.read_frame(fa, false));
}

TEST(ArchVariants, ShadowReadbackRemovesLutRamHazard) {
  const auto design = fir_design();
  ArchVariants variants;
  variants.shadow_readback = true;
  FabricSim fabric(design.space, variants);
  DesignHarness harness(design, fabric);
  harness.configure();
  harness.run(24);
  const LutSiteRef site = design.dynamic_lut_sites.front();
  const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                        static_cast<u16>((site.lut / kLutsPerSlice) *
                                         kLutTruthBits)};
  EXPECT_EQ(fabric.read_frame(fa, true), fabric.read_frame(fa, false));
}

TEST(ArchVariants, ShadowReadbackPreservesBramOutputRegister) {
  const auto design =
      compile(designs::bram_selftest(1), device_tiny(8, 8, 2));
  ArchVariants variants;
  variants.shadow_readback = true;
  FabricSim fabric(design.space, variants);
  DesignHarness harness(design, fabric);
  harness.configure();
  harness.run(10);
  const auto& binding = design.brams[0];
  const u16 before = fabric.bram_dout(binding.bram_col, binding.block);
  fabric.read_frame(FrameAddress{ColumnKind::kBram, binding.bram_col, 0});
  EXPECT_EQ(fabric.bram_dout(binding.bram_col, binding.block), before);
}

TEST(ArchVariants, ZeroedReadbackMakesDynamicFramesCheckable) {
  const auto design = fir_design();
  ArchVariants variants;
  variants.zeroed_dynamic_readback = true;
  FabricSim fabric(design.space, variants);
  DesignHarness harness(design, fabric);
  harness.configure();
  FlashStore flash(design.bitstream);
  ScrubberOptions options;
  options.zeroed_dynamic_codebook = true;
  Scrubber scrubber(design, fabric, flash, options);
  // Nothing is masked except BRAM (this device has none).
  EXPECT_EQ(scrubber.codebook().masked_count(), 0u);

  // Live shifting raises no false alarms.
  harness.run(40);
  const auto clean_pass = scrubber.scrub_pass(&harness);
  EXPECT_EQ(clean_pass.errors_found, 0u);

  // A corrupted *static* bit inside a dynamic-LUT frame — which the
  // baseline masking scheme cannot see — is detected and repaired.
  const LutSiteRef site = design.dynamic_lut_sites.front();
  const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                        static_cast<u16>((site.lut / kLutsPerSlice) *
                                         kLutTruthBits)};
  // Pick a slot in this frame that is NOT a dynamic LUT cell: any tile-bit
  // slot >= 2 is non-LUT payload.
  const BitAddress addr{fa, 5};
  fabric.flip_config_bit(addr);
  const auto pass = scrubber.scrub_pass(&harness);
  // The flip may cascade (e.g. a LutMode bit briefly un-zeroes a dynamic
  // site's readback): at least one error, and the flipped bit ends golden.
  EXPECT_GE(pass.errors_found, 1u);
  EXPECT_GE(pass.repairs, 1u);
  EXPECT_EQ(fabric.config_bit(addr), design.bitstream.get_bit(addr));
}

TEST(ArchVariants, BaselineMaskedFrameMissesStaticCorruption) {
  const auto design = fir_design();
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  FlashStore flash(design.bitstream);
  Scrubber scrubber(design, fabric, flash, {});
  const LutSiteRef site = design.dynamic_lut_sites.front();
  const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                        static_cast<u16>((site.lut / kLutsPerSlice) *
                                         kLutTruthBits)};
  const BitAddress addr{fa, 5};
  fabric.flip_config_bit(addr);
  const auto pass = scrubber.scrub_pass(&harness);
  EXPECT_EQ(pass.errors_found, 0u)
      << "baseline masking is blind to this frame — that is the limitation";
}

TEST(ArchVariants, BitGranularAccessRequiresVariant) {
  const auto design = fir_design();
  FabricSim fabric(design.space);
  fabric.full_configure(design.bitstream);
  EXPECT_THROW(
      fabric.write_config_bit(design.space->address_of_linear(100), true),
      Error);
}

TEST(ArchVariants, BitGranularRepairPreservesDynamicState) {
  const auto design = fir_design();
  ArchVariants variants;
  variants.bit_granular_access = true;
  FabricSim fabric(design.space, variants);
  DesignHarness harness(design, fabric);
  harness.configure();
  FlashStore flash(design.bitstream);
  ScrubberOptions options;
  options.repair_mode = RepairMode::kBitGranular;
  options.mask_dynamic_frames = false;  // force detection through LUT frames
  options.reset_after_repair = false;
  Scrubber scrubber(design, fabric, flash, options);

  harness.run(40);
  const LutSiteRef site = design.dynamic_lut_sites.front();
  const auto live_contents = [&] {
    u16 v = 0;
    for (int j = 0; j < kLutTruthBits; ++j) {
      const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                            static_cast<u16>((site.lut / kLutsPerSlice) *
                                                 kLutTruthBits +
                                             j)};
      const u32 off = static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
                      static_cast<u32>(site.lut % kLutsPerSlice);
      if (fabric.read_frame(fa).get(off)) v |= static_cast<u16>(1 << j);
    }
    return v;
  };
  const u16 before = live_contents();
  // Without masking the live SRL state is flagged; bit-granular repair
  // rewrites only genuinely-corrupted static bits and leaves it alone.
  const auto pass = scrubber.scrub_pass(nullptr);
  EXPECT_GT(pass.errors_found, 0u);
  EXPECT_EQ(live_contents(), before) << "bit repair clobbered SRL contents";
}

TEST(ArchVariants, EquivalenceUnaffectedByVariants) {
  // The variants change the configuration *port*, never design behaviour.
  const auto design = fir_design();
  for (int v = 0; v < 3; ++v) {
    ArchVariants variants;
    if (v == 0) variants.shadow_readback = true;
    if (v == 1) variants.zeroed_dynamic_readback = true;
    if (v == 2) variants.bit_granular_access = true;
    FabricSim fabric(design.space, variants);
    DesignHarness harness(design, fabric);
    harness.configure();
    const auto golden = DesignHarness::reference_trace(*design.netlist, 60);
    for (int t = 0; t < 60; ++t) {
      harness.step();
      ASSERT_EQ(harness.last_outputs(), golden[static_cast<std::size_t>(t)])
          << "variant " << v << " cycle " << t;
    }
  }
}

}  // namespace
}  // namespace vscrub
