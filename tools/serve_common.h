// Shared `serve` implementation for the two daemon entry points: the
// dedicated `vscrubd` binary and `vscrubctl serve`. Both parse the same
// declarative `serve` command table from core/cli, so flags, help text and
// behavior cannot drift apart.
#pragma once

#include <cstdio>

#include "core/cli.h"
#include "svc/server.h"

namespace vscrub {

inline ServerOptions server_options_from(const CliArgs& args) {
  ServerOptions options;
  options.socket_path = args.option("--socket", "/tmp/vscrubd.sock");
  options.tcp_port = static_cast<u16>(args.option_u64("--tcp-port", 0));
  options.service.queue_capacity = args.option_u64("--queue", 16);
  options.service.executors =
      static_cast<unsigned>(args.option_u64("--executors", 2));
  options.service.pool_threads =
      static_cast<unsigned>(args.option_u64("--threads", 0));
  options.service.cache_dir = args.option("--cache-dir", "");
  options.service.retry_after_ms = args.option_u64("--retry-after", 250);
  options.service.checkpoint_every_chunks =
      args.option_u64("--checkpoint-every", 0);
  options.send_timeout_ms =
      static_cast<int>(args.option_u64("--send-timeout", 10000));
  return options;
}

/// Runs the daemon until SIGTERM/SIGINT: first signal drains gracefully
/// (in-flight requests finish and deliver), a second cancels live work at
/// the next chunk boundary. Returns 0 after a clean drain.
inline int run_serve(const CliArgs& args) {
  const ServerOptions options = server_options_from(args);
  SocketServer server(options);
  server.start();
  server.bind_signals();
  std::printf("vscrubd: listening on %s", options.socket_path.c_str());
  if (options.tcp_port != 0) {
    std::printf(" and 127.0.0.1:%u", options.tcp_port);
  }
  std::printf(" (queue %zu, %u executors, store %s)\n",
              options.service.queue_capacity, options.service.executors,
              options.service.cache_dir.empty()
                  ? "disabled"
                  : options.service.cache_dir.c_str());
  std::fflush(stdout);
  server.run();
  const std::string stats_path = args.option("--stats-json", "");
  if (!stats_path.empty() &&
      server.service().stats_report().write(stats_path)) {
    std::printf("vscrubd: wrote service stats to %s\n", stats_path.c_str());
  }
  std::printf("vscrubd: drained, exiting\n");
  return 0;
}

}  // namespace vscrub
