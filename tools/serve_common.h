// Shared `serve` implementation for the two daemon entry points: the
// dedicated `vscrubd` binary and `vscrubctl serve`. Both parse the same
// declarative `serve` command table (derived from service_config_flags() in
// svc/config.h), and both apply the parsed flags through ServiceConfig::set,
// so flags, help text and behavior cannot drift apart.
#pragma once

#include <cstdio>

#include "core/cli.h"
#include "svc/config.h"
#include "svc/server.h"

namespace vscrub {

inline ServiceConfig service_config_from(const CliArgs& args) {
  ServiceConfig config;
  for (const auto& [flag, value] : args.options) config.set(flag, value);
  config.validate();
  return config;
}

/// Runs the daemon until SIGTERM/SIGINT: first signal drains gracefully
/// (in-flight requests finish and deliver), a second cancels live work at
/// the next chunk boundary. Returns 0 after a clean drain.
inline int run_serve(const CliArgs& args) {
  const ServiceConfig config = service_config_from(args);
  SocketServer server(config);
  server.start();
  server.bind_signals();
  std::printf("vscrubd: listening on %s", config.socket_path.c_str());
  if (config.tcp_port != 0) {
    std::printf(" and 127.0.0.1:%u", config.tcp_port);
  }
  std::printf(" (queue %zu, %u executors, store %s",
              config.queue_capacity, config.executors,
              config.cache_dir.empty() ? "disabled"
                                       : config.cache_dir.c_str());
  if (config.preempt_chunks > 0) {
    std::printf(", preempt every %llu chunks",
                static_cast<unsigned long long>(config.preempt_chunks));
  }
  std::printf(")\n");
  std::fflush(stdout);
  server.run();
  if (!config.stats_json.empty() &&
      server.service().stats_report().write(config.stats_json)) {
    std::printf("vscrubd: wrote service stats to %s\n",
                config.stats_json.c_str());
  }
  std::printf("vscrubd: drained, exiting\n");
  return 0;
}

}  // namespace vscrub
