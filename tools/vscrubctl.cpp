// vscrubctl — command-line driver for the vscrub library.
//
// The command table (subcommands, positionals, flags and their help text)
// lives in core/cli.{h,cpp} so the test suite can enforce the CLI contract;
// this file only maps parsed arguments onto library calls. Run
// `vscrubctl <command> --help` for per-command flags.
//
// Designs: lfsr mult vmult counter multadd lfsrmult fir selfcheck bram
// Devices: campaign (default), xcv50, xcv100, xcv300, xcv1000, tiny:RxC
#include <cstdio>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/vscrub.h"
#include "sim/simd.h"
#include "fleet_common.h"
#include "serve_common.h"
#include "svc/client.h"
#include "svc/requests.h"

using namespace vscrub;

namespace {

// The name catalogs live in svc/requests so the serving layer resolves the
// exact same designs and devices this CLI does.
Netlist make_design(const std::string& name) { return design_by_name(name); }

DeviceGeometry make_device(const std::string& name) {
  return device_by_name(name);
}

int cmd_compile(const CliArgs& args) {
  VSCRUB_CHECK(!args.positional.empty(), "compile needs a design name");
  Netlist nl = make_design(args.positional[0]);
  if (args.flag("--tmr")) nl = apply_tmr(nl);
  PnrOptions options;
  if (args.flag("--raddrc")) {
    options.halflatch_policy = HalfLatchPolicy::kLutRomConstants;
  }
  const auto design =
      compile(std::make_shared<const Netlist>(std::move(nl)),
              std::make_shared<const ConfigSpace>(
                  make_device(args.option("--device", "campaign"))),
              options);
  std::printf("compiled %-22s %5zu slices (%.1f%%), %zu wires, %d router "
              "iterations\n",
              design.netlist->name().c_str(), design.stats.slices_used,
              design.stats.utilization * 100, design.stats.wires_used,
              design.stats.router_iterations);
  const RadDrcReport hl = raddrc_analyze(design);
  std::printf("half-latch uses: %zu critical, %zu non-critical\n",
              hl.critical_uses, hl.noncritical_uses);
  const std::string out = args.option("-o", "");
  if (!out.empty()) {
    save_bitstream(design.bitstream, out);
    std::printf("wrote configuration image to %s (%u frames)\n", out.c_str(),
                design.bitstream.frame_count());
  }
  return 0;
}

CampaignOptions campaign_options_from(const CliArgs& args) {
  // --no-gang forces every injection down the scalar path (gang width 1);
  // --gang-width picks the lanes packed per bit-sliced run (default 64);
  // --gang-isa pins the SIMD tier; --no-gang-plan interprets settles.
  const u32 gang_width =
      args.flag("--no-gang")
          ? 1u
          : static_cast<u32>(args.option_u64("--gang-width", 64));
  // Reject unsupported widths/tiers before any work starts: GangWidthError /
  // SimdIsaError carry the full supported list in their message.
  if (gang_width >= 2) validate_gang_width(gang_width);
  const std::string gang_isa = args.option("--gang-isa", "auto");
  const SimdIsa requested_isa = parse_simd_isa(gang_isa);
  if (requested_isa != SimdIsa::kAuto) (void)resolve_simd_isa(requested_isa);
  CampaignOptions options =
      CampaignOptions{}
          .with_injection(InjectionOptions{}
                              .with_persistence(args.flag("--persistence"))
                              .with_pruning(!args.flag("--no-prune"))
                              .with_gang_width(gang_width)
                              .with_gang_isa(gang_isa)
                              .with_gang_plan(!args.flag("--no-gang-plan")))
          .with_threads(static_cast<unsigned>(args.option_u64("--threads", 0)))
          .with_chunk_size(args.option_u64("--chunk", 0));
  if (args.flag("--exhaustive")) {
    options.with_exhaustive();
  } else {
    options.with_sample(args.option_u64("--sample", 20000));
  }
  const std::string checkpoint = args.option("--checkpoint", "");
  if (!checkpoint.empty()) options.with_checkpoint(checkpoint);
  const std::string cache_dir = args.option("--cache-dir", "");
  if (!cache_dir.empty()) options.with_cache(cache_dir);
  if (args.flag("--progress")) {
    options.with_progress([](const CampaignProgress& p) {
      std::fprintf(stderr,
                   "\r%llu/%llu bits  %llu failures  %llu cached  "
                   "%.0f bits/s  ETA %.0f s   ",
                   static_cast<unsigned long long>(p.injections_done),
                   static_cast<unsigned long long>(p.injections_total),
                   static_cast<unsigned long long>(p.failures),
                   static_cast<unsigned long long>(p.cache_hits), p.bits_per_s,
                   p.eta_s);
      return true;
    });
  }
  return options;
}

void print_campaign_result(const CampaignResult& r, bool persistence) {
  std::printf("%llu injections (%llu resumed, %llu pruned), %llu failures\n",
              static_cast<unsigned long long>(r.injections),
              static_cast<unsigned long long>(r.resumed_injections),
              static_cast<unsigned long long>(r.pruned),
              static_cast<unsigned long long>(r.failures));
  std::printf("sensitivity %.3f%%  normalized %.2f%%\n", r.sensitivity() * 100,
              r.normalized_sensitivity() * 100);
  if (persistence) {
    std::printf("persistence ratio %.1f%%\n", r.persistence_ratio() * 100);
  }
  std::printf("modeled SLAAC-1V time %.1f s, wall %.1f s\n",
              r.modeled_hardware_time.sec(), r.wall_seconds);
  std::printf("phases: corrupt %.1f s, run %.1f s, repair %.1f s, "
              "persistence %.1f s\n",
              r.phases.corrupt_s, r.phases.run_s, r.phases.repair_s,
              r.phases.persist_s);
  if (r.cache_enabled) {
    std::printf("verdict store: %llu hits, %llu misses, %llu stored\n",
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses),
                static_cast<unsigned long long>(r.cache_stores));
  }
  if (r.phases.gang_runs > 0) {
    std::printf("gang: %llu runs, %.1f lanes/run, %.1f%% early exit, "
                "%llu fallbacks\n",
                static_cast<unsigned long long>(r.phases.gang_runs),
                static_cast<double>(r.phases.gang_lanes) /
                    static_cast<double>(r.phases.gang_runs),
                100.0 * static_cast<double>(r.phases.gang_early_exits) /
                    static_cast<double>(r.phases.gang_runs),
                static_cast<unsigned long long>(r.phases.gang_fallbacks));
  }
  if (r.interrupted) std::printf("campaign interrupted; checkpoint saved\n");
}

int cmd_campaign(const CliArgs& args) {
  VSCRUB_CHECK(!args.positional.empty(), "campaign needs a design name");
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(make_design(args.positional[0]));
  const CampaignOptions options = campaign_options_from(args);
  const auto r = bench.campaign(design, options);
  if (args.flag("--progress")) std::fprintf(stderr, "\n");
  print_campaign_result(r, options.injection.classify_persistence);
  const std::string json_path = args.option("--json", "");
  if (!json_path.empty() && campaign_report_json(design, r).write(json_path)) {
    std::printf("wrote campaign report to %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_recampaign(const CliArgs& args) {
  VSCRUB_CHECK(!args.positional.empty(), "recampaign needs a design name");
  const std::string cache_dir = args.option("--cache-dir", "");
  VSCRUB_CHECK(!cache_dir.empty(), "recampaign needs --cache-dir DIR");
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(make_design(args.positional[0]));
  const CampaignOptions options = campaign_options_from(args);
  const auto r = bench.recampaign(design, cache_dir, options);
  if (args.flag("--progress")) std::fprintf(stderr, "\n");
  print_campaign_result(r.result, options.injection.classify_persistence);
  if (r.had_prior) {
    std::printf("delta: %llu/%llu frames changed, reuse %.1f%%, "
                "speedup vs prior %.1fx, sensitive set %s\n",
                static_cast<unsigned long long>(r.frames_changed),
                static_cast<unsigned long long>(r.frames_total),
                r.hit_rate() * 100, r.speedup_vs_prior(),
                r.sensitive_match ? "MATCH" : "DIVERGED");
  } else {
    std::printf("no prior manifest in %s; ran cold and seeded the store\n",
                cache_dir.c_str());
  }
  const std::string json_path = args.option("--json", "");
  if (!json_path.empty() && recampaign_report_json(design, r).write(json_path)) {
    std::printf("wrote recampaign report to %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_beam(const CliArgs& args) {
  VSCRUB_CHECK(!args.positional.empty(), "beam needs a design name");
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(make_design(args.positional[0]));
  CampaignOptions copts;
  copts.sample_bits = 15000;
  copts.record_sampled_bits = true;
  const auto camp = bench.campaign(design, copts);
  BeamSession session(design, {});
  const u64 n = args.option_u64("--observations", 1000);
  const auto r = session.run(n, camp.sensitive_set(design),
                             camp.sampled_bits);
  std::printf("%llu observations, %llu upsets, %llu output errors\n",
              static_cast<unsigned long long>(r.observations),
              static_cast<unsigned long long>(r.upsets_total),
              static_cast<unsigned long long>(r.output_error_observations));
  std::printf("correlation with simulator predictions: %.1f%%\n",
              r.correlation() * 100);
  return 0;
}

void apply_mission_flags(const CliArgs& args, PayloadOptions& options,
                         u64 total_bits) {
  options.environment = args.flag("--flare")
                            ? OrbitEnvironment::leo_solar_flare()
                            : OrbitEnvironment::leo_quiet();
  options.environment.upset_rate_per_bit_s *=
      static_cast<double>(kXcv1000PaperBits) / static_cast<double>(total_bits);
  if (args.flag("--scrub-faults")) {
    // Paper-plausible fault rates for the scrub datapath and golden store.
    options.scrub.link_faults = ScrubLinkFaults::leo_profile();
    options.flash_faults = FlashFaultModel::leo_profile();
  }
}

void print_fleet_line(const std::string& label, const FleetResult& r) {
  std::printf("%-14s availability %.6f +/- %.6f  mttr %8.1f ms  "
              "bw %8.0f B/s  repaired %llu\n",
              label.c_str(), r.availability_mean, r.availability_ci95,
              r.mttr_ms, r.scrub_bandwidth_bytes_per_s,
              static_cast<unsigned long long>(r.repaired));
}

int cmd_mission(const CliArgs& args) {
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(designs::lfsr_multiplier(10));
  CampaignOptions copts;
  copts.sample_bits = 10000;
  const auto camp = bench.campaign(design, copts);
  PayloadOptions options;
  apply_mission_flags(args, options, design.space->total_bits());
  options.seed = args.option_u64("--seed", 4242);
  const std::string policy = args.option("--scrub-policy", "");
  if (!policy.empty()) options.scrub.policy = make_scrub_policy(policy);
  MetricsRegistry metrics;
  EventTrace trace;
  const std::string trace_path = args.option("--trace", "");
  const std::string json_path = args.option("--json", "");
  if (!json_path.empty()) options.metrics = &metrics;
  if (!trace_path.empty()) options.trace = &trace;
  Payload payload(design, options, camp.sensitive_set(design));
  const double hours = args.option_double("--hours", 24);
  const auto r = payload.run_mission(SimTime::hours(hours));
  std::printf("%.0f h mission (%s): %llu upsets, %llu detected, %llu "
              "repaired, availability %.5f\n",
              hours, options.environment.name.c_str(),
              static_cast<unsigned long long>(r.upsets_total),
              static_cast<unsigned long long>(r.detected),
              static_cast<unsigned long long>(r.repaired), r.availability);
  std::printf("policy %s: scrub cycle %.1f ms/board, detection latency mean "
              "%.1f ms, mttr %.1f ms\n",
              r.scrub_policy.c_str(), r.scrub_cycle_per_board.ms(),
              r.mean_detection_latency_ms, r.mttr_ms);
  if (options.scrub.link_faults.enabled() || options.flash_faults.enabled()) {
    std::printf("scrub faults: %llu false alarms, %llu false repairs, %llu "
                "timeouts, %llu flash escalations\n",
                static_cast<unsigned long long>(r.false_alarms),
                static_cast<unsigned long long>(r.false_repairs),
                static_cast<unsigned long long>(r.scrub_transfer_timeouts),
                static_cast<unsigned long long>(r.flash_escalations));
  }
  if (!trace_path.empty() && trace.write_jsonl(trace_path)) {
    std::printf("wrote %zu trace events to %s\n", trace.size(),
                trace_path.c_str());
  }
  if (!json_path.empty() && mission_report_json(metrics).write(json_path)) {
    std::printf("wrote mission report to %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_fleet(const CliArgs& args) {
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(designs::lfsr_multiplier(10));
  CampaignOptions copts;
  copts.sample_bits = 10000;
  const auto camp = bench.campaign(design, copts);
  FleetOptions options;
  options.missions = static_cast<u32>(args.option_u64("--missions", 8));
  options.base_seed = args.option_u64("--seed", 1);
  options.threads = static_cast<u32>(args.option_u64("--threads", 0));
  options.duration = SimTime::hours(args.option_double("--hours", 24));
  apply_mission_flags(args, options.payload, design.space->total_bits());
  const std::vector<std::string> policies =
      parse_scrub_policy_list(args.option("--scrub-policy", ""));
  if (policies.size() > 1) {
    // Race mode: the same seed sweep once per policy.
    PolicyRaceOptions ro;
    ro.policies = policies;
    ro.fleet = options;
    const auto race = bench.policy_race(design, camp.sensitive_set(design), ro);
    std::printf("%u missions x %.0f h (%s), %zu policies:\n", options.missions,
                options.duration.sec() / 3600.0,
                options.payload.environment.name.c_str(),
                race.entries.size());
    for (const PolicyRaceEntry& e : race.entries) {
      print_fleet_line(e.policy, e.fleet);
    }
    const std::string json_path = args.option("--json", "");
    if (!json_path.empty() &&
        policy_race_report_json(race).write(json_path)) {
      std::printf("wrote policy race report to %s\n", json_path.c_str());
    }
    return 0;
  }
  if (policies.size() == 1) {
    options.payload.scrub.policy = make_scrub_policy(policies[0]);
  }
  const auto r = bench.fleet(design, camp.sensitive_set(design), options);
  std::printf("%u missions x %.0f h (%s): %llu upsets, %llu detected, %llu "
              "repaired\n",
              options.missions, options.duration.sec() / 3600.0,
              options.payload.environment.name.c_str(),
              static_cast<unsigned long long>(r.upsets_total),
              static_cast<unsigned long long>(r.detected),
              static_cast<unsigned long long>(r.repaired));
  std::printf("availability %.6f +/- %.6f (95%% CI), latency p50 %.1f ms, "
              "p99 %.1f ms\n",
              r.availability_mean, r.availability_ci95,
              r.detection_latency_p50_ms, r.detection_latency_p99_ms);
  std::printf("scrub faults: %llu false alarms, %llu false repairs, %llu "
              "timeouts, %llu flash escalations\n",
              static_cast<unsigned long long>(r.false_alarms),
              static_cast<unsigned long long>(r.false_repairs),
              static_cast<unsigned long long>(r.scrub_transfer_timeouts),
              static_cast<unsigned long long>(r.flash_escalations));
  const std::string json_path = args.option("--json", "");
  if (!json_path.empty() && fleet_report_json(r).write(json_path)) {
    std::printf("wrote fleet report to %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_bist(const CliArgs& args) {
  auto space = std::make_shared<const ConfigSpace>(
      make_device(args.option("--device", "tiny:8x12")));
  FabricSim fabric(space);
  const auto wire = run_wire_test(space, fabric);
  std::printf("wire test: %s (%d reconfigs, %d readbacks, %.0f ms modeled)\n",
              wire.pass() ? "PASS" : "FAIL", wire.partial_reconfigs + 1,
              wire.readbacks, wire.modeled_time.ms());
  const auto pattern =
      compile(std::make_shared<const Netlist>(bist_clb_cascade(6, 20)), space, {});
  fabric.full_configure(pattern.bitstream);
  const auto clb = run_clb_bist(pattern, fabric, 400);
  std::printf("CLB BIST: %s (%.0f%% slice coverage)\n",
              clb.error_detected ? "ERROR DETECTED" : "PASS",
              clb.slice_coverage * 100);
  return 0;
}

int cmd_version(const CliArgs&) {
  std::printf("vscrub %s\n", version());
  std::printf("workbench api %d\n", kWorkbenchApiVersion);
  std::printf("report schema %d\n", kReportSchemaVersion);
  std::printf("vsrp protocol 1\n");
  return 0;
}

FrameKind submit_kind(const std::string& op) {
  if (op == "ping") return FrameKind::kPing;
  if (op == "stats") return FrameKind::kStats;
  if (op == "campaign") return FrameKind::kCampaign;
  if (op == "recampaign") return FrameKind::kRecampaign;
  if (op == "mission") return FrameKind::kMission;
  if (op == "fleet") return FrameKind::kFleet;
  throw Error("unknown submit op '" + op +
              "' (ping stats campaign recampaign mission fleet)");
}

// Request parameters mirror the one-shot commands' flags (underscored), and
// are only set when given on the command line — the server's defaults are
// the CLI's defaults, so a bare submit equals a bare one-shot run.
std::string submit_payload(const CliArgs& args, const std::string& op) {
  JsonReport req(op + "_request");
  if (args.positional.size() > 1) req.set_string("design", args.positional[1]);
  req.set_string("device", args.option("--device", "campaign"));
  if (args.flag("--exhaustive")) {
    req.set_bool("exhaustive", true);
  } else if (args.flag("--sample")) {
    req.set_u64("sample", args.option_u64("--sample", 20000));
  }
  if (args.flag("--persistence")) req.set_bool("persistence", true);
  if (args.flag("--no-gang")) req.set_bool("no_gang", true);
  if (args.flag("--gang-width")) {
    req.set_u64("gang_width", args.option_u64("--gang-width", 64));
  }
  if (args.flag("--gang-isa")) {
    req.set_string("gang_isa", args.option("--gang-isa", "auto"));
  }
  if (args.flag("--no-gang-plan")) req.set_bool("no_gang_plan", true);
  if (args.flag("--seed")) req.set_u64("seed", args.option_u64("--seed", 0));
  if (args.flag("--hours")) req.set("hours", args.option_double("--hours", 24));
  if (args.flag("--missions")) {
    req.set_u64("missions", args.option_u64("--missions", 8));
  }
  if (args.flag("--flare")) req.set_bool("flare", true);
  if (args.flag("--scrub-faults")) req.set_bool("scrub_faults", true);
  if (args.flag("--scrub-policy")) {
    req.set_string("scrub_policy", args.option("--scrub-policy", ""));
  }
  if (args.flag("--progress")) req.set_bool("progress", true);
  if (args.flag("--tenant")) {
    req.set_string("tenant", args.option("--tenant", ""));
  }
  return req.to_json();
}

int cmd_submit(const CliArgs& args) {
  VSCRUB_CHECK(!args.positional.empty(),
               "submit needs an op (ping|stats|campaign|recampaign|mission|"
               "fleet)");
  const std::string op = args.positional[0];
  const FrameKind kind = submit_kind(op);
  ServiceClient client =
      ServiceClient::connect_unix(args.option("--socket", "/tmp/vscrubd.sock"));
  const bool progress = args.flag("--progress");
  const auto event = [progress](const Frame& f) {
    if (!progress || f.kind != FrameKind::kProgress) return;
    const FlatJson p = FlatJson::parse(f.payload);
    std::fprintf(stderr, "\r%llu/%llu bits  %llu failures  %llu cached   ",
                 static_cast<unsigned long long>(p.get_u64("injections_done")),
                 static_cast<unsigned long long>(p.get_u64("injections_total")),
                 static_cast<unsigned long long>(p.get_u64("failures")),
                 static_cast<unsigned long long>(p.get_u64("cache_hits")));
  };
  const bool immediate = kind == FrameKind::kPing || kind == FrameKind::kStats;
  const Frame reply =
      client.call(kind, immediate ? "" : submit_payload(args, op), event);
  if (progress) std::fprintf(stderr, "\n");
  if (reply.kind == FrameKind::kBusy) {
    const FlatJson busy = FlatJson::parse(reply.payload);
    std::fprintf(stderr, "vscrubctl: server busy (%s); retry in %llu ms\n",
                 busy.get_string("reason", "busy").c_str(),
                 static_cast<unsigned long long>(
                     busy.get_u64("retry_after_ms", 0)));
    return 3;
  }
  if (reply.kind == FrameKind::kError) {
    std::fprintf(stderr, "vscrubctl: server error: %s\n",
                 FlatJson::parse(reply.payload)
                     .get_string("error", "unknown").c_str());
    return 1;
  }
  std::fputs(reply.payload.c_str(), stdout);
  const std::string json_path = args.option("--json", "");
  if (!json_path.empty()) write_text_file(reply.payload, json_path);
  return 0;
}

int cmd_fleet_submit(const CliArgs& args) {
  VSCRUB_CHECK(!args.positional.empty(), "fleet-submit needs a design name");
  // Same underscored parameter convention as cmd_submit: only flags given
  // on the command line are set, so the coordinator's (= worker's) defaults
  // are the CLI's defaults.
  JsonReport req("fleet_campaign_request");
  req.set_string("design", args.positional[0]);
  req.set_string("device", args.option("--device", "campaign"));
  if (args.flag("--exhaustive")) {
    req.set_bool("exhaustive", true);
  } else if (args.flag("--sample")) {
    req.set_u64("sample", args.option_u64("--sample", 20000));
  }
  if (args.flag("--persistence")) req.set_bool("persistence", true);
  if (args.flag("--seed")) req.set_u64("seed", args.option_u64("--seed", 0));
  if (args.flag("--chunk")) {
    req.set_u64("chunk", args.option_u64("--chunk", 0));
  }
  if (args.flag("--no-gang")) req.set_bool("no_gang", true);
  if (args.flag("--gang-width")) {
    req.set_u64("gang_width", args.option_u64("--gang-width", 64));
  }
  if (args.flag("--gang-isa")) {
    req.set_string("gang_isa", args.option("--gang-isa", "auto"));
  }
  if (args.flag("--no-gang-plan")) req.set_bool("no_gang_plan", true);
  if (args.flag("--no-prune")) req.set_bool("no_prune", true);
  const bool progress = args.flag("--progress");
  if (progress) req.set_bool("progress", true);
  ServiceClient client = ServiceClient::connect_unix(
      args.option("--socket", "/tmp/vscrub-coord.sock"));
  const auto event = [progress](const Frame& f) {
    if (!progress || f.kind != FrameKind::kProgress) return;
    const FlatJson p = FlatJson::parse(f.payload);
    std::fprintf(stderr,
                 "\r%llu/%llu bits  ranges %llu/%llu  %llu reassigned   ",
                 static_cast<unsigned long long>(p.get_u64("injections_done")),
                 static_cast<unsigned long long>(p.get_u64("injections_total")),
                 static_cast<unsigned long long>(p.get_u64("ranges_done")),
                 static_cast<unsigned long long>(p.get_u64("ranges_total")),
                 static_cast<unsigned long long>(p.get_u64("reassignments")));
  };
  const Frame reply =
      client.call(FrameKind::kCampaign, req.to_json(), event);
  if (progress) std::fprintf(stderr, "\n");
  if (reply.kind == FrameKind::kBusy) {
    const FlatJson busy = FlatJson::parse(reply.payload);
    std::fprintf(stderr,
                 "vscrubctl: coordinator busy (%s); retry in %llu ms\n",
                 busy.get_string("reason", "busy").c_str(),
                 static_cast<unsigned long long>(
                     busy.get_u64("retry_after_ms", 0)));
    return 3;
  }
  if (reply.kind == FrameKind::kError) {
    std::fprintf(stderr, "vscrubctl: coordinator error: %s\n",
                 FlatJson::parse(reply.payload)
                     .get_string("error", "unknown").c_str());
    return 1;
  }
  std::fputs(reply.payload.c_str(), stdout);
  const std::string json_path = args.option("--json", "");
  if (!json_path.empty()) write_text_file(reply.payload, json_path);
  return 0;
}

int cmd_info(const CliArgs& args) {
  VSCRUB_CHECK(!args.positional.empty(), "info needs an image path");
  const LoadedImage image = load_bitstream(args.positional[0]);
  u64 set_bits = 0;
  for (u32 gf = 0; gf < image.bits.frame_count(); ++gf) {
    set_bits += image.bits.frame(gf).popcount();
  }
  std::printf("device   %s (%ux%u CLBs, %u BRAM columns)\n",
              image.geometry.name.c_str(), image.geometry.rows,
              image.geometry.cols, image.geometry.bram_columns);
  std::printf("frames   %u (CLB frame %u bytes)\n", image.bits.frame_count(),
              image.geometry.clb_frame_bytes());
  std::printf("bits     %llu total, %llu set\n",
              static_cast<unsigned long long>(
                  image.geometry.total_config_bits()),
              static_cast<unsigned long long>(set_bits));
  std::printf("CRC      ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(cli_usage().c_str(), stderr);
    return 2;
  }
  const std::string name = argv[1];
  if (name == "--help" || name == "-h" || name == "help") {
    std::fputs(cli_usage().c_str(), stdout);
    return 0;
  }
  if (name == "--version" || name == "-V") return cmd_version(CliArgs{});
  const CliCommand* cmd = cli_find(name);
  if (cmd == nullptr) {
    std::fputs(cli_usage().c_str(), stderr);
    return 2;
  }
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--help" || std::string(argv[i]) == "-h") {
      std::fputs(cli_help(*cmd).c_str(), stdout);
      return 0;
    }
    rest.emplace_back(argv[i]);
  }
  try {
    const CliArgs args = cli_parse(*cmd, rest);
    if (name == "compile") return cmd_compile(args);
    if (name == "campaign") return cmd_campaign(args);
    if (name == "recampaign") return cmd_recampaign(args);
    if (name == "beam") return cmd_beam(args);
    if (name == "mission") return cmd_mission(args);
    if (name == "fleet") return cmd_fleet(args);
    if (name == "bist") return cmd_bist(args);
    if (name == "serve") return run_serve(args);
    if (name == "submit") return cmd_submit(args);
    if (name == "fleet-serve") return run_fleet_serve(args);
    if (name == "fleet-submit") return cmd_fleet_submit(args);
    if (name == "version") return cmd_version(args);
    if (name == "info") return cmd_info(args);
    if (name == "designs") {
      std::printf("lfsr mult vmult counter multadd lfsrmult fir selfcheck bram\n");
      return 0;
    }
    if (name == "devices") {
      std::printf("campaign xcv50 xcv100 xcv300 xcv1000 tiny:RxC\n");
      return 0;
    }
    if (name == "policies") {
      for (const std::string& p : scrub_policy_names()) {
        const auto policy = make_scrub_policy(p);
        std::printf("%-14s %s%s%s\n", p.c_str(),
                    policy->blind() ? "blind golden rewrite" : "readback+CRC",
                    policy->intermodular() ? ", intermodular stagger"
                    : policy->schedule_period() > 1 ? ", rotating subset"
                                                    : "",
                    policy->golden_ecc() ? ", SECDED golden shadow" : "");
      }
      return 0;
    }
    std::fputs(cli_usage().c_str(), stderr);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vscrubctl: %s\n", e.what());
    return 1;
  }
}
