// vscrubctl — command-line driver for the vscrub library.
//
//   vscrubctl compile <design> [--device NAME] [--raddrc] [--tmr] [-o FILE]
//   vscrubctl campaign <design> [--sample N | --exhaustive] [--persistence]
//                      [--threads N] [--chunk N] [--checkpoint FILE]
//                      [--progress] [--no-prune] [--gang-width N] [--no-gang]
//   vscrubctl beam <design> [--observations N]
//   vscrubctl mission [--hours H] [--flare] [--seed S] [--scrub-faults]
//                     [--trace FILE.jsonl] [--json FILE.json]
//   vscrubctl fleet [--missions N] [--hours H] [--flare] [--seed S]
//                   [--threads N] [--scrub-faults] [--json FILE.json]
//   vscrubctl bist
//   vscrubctl info <image.vsb>
//   vscrubctl designs | devices
//
// Designs: lfsr mult vmult counter multadd lfsrmult fir selfcheck bram
// Devices: campaign (default), xcv50, xcv100, xcv300, xcv1000, tiny:RxC
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/vscrub.h"

using namespace vscrub;

namespace {

struct Args {
  std::vector<std::string> positional;
  bool flag(const char* name) const {
    for (const auto& a : raw) {
      if (a == name) return true;
    }
    return false;
  }
  std::string option(const char* name, const std::string& dflt) const {
    for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
      if (raw[i] == name) return raw[i + 1];
    }
    return dflt;
  }
  std::vector<std::string> raw;
};

Netlist make_design(const std::string& name) {
  if (name == "lfsr") return designs::lfsr_cluster(2);
  if (name == "mult") return designs::mult_tree(10);
  if (name == "vmult") return designs::vmult(8);
  if (name == "counter") return designs::counter_adder(16);
  if (name == "multadd") return designs::multiply_add(8);
  if (name == "lfsrmult") return designs::lfsr_multiplier(10);
  if (name == "fir") return designs::fir_preproc(4);
  if (name == "selfcheck") return designs::selfcheck_dsp(8, 5);
  if (name == "bram") return designs::bram_selftest(2);
  throw Error("unknown design '" + name + "' (see `vscrubctl designs`)");
}

DeviceGeometry make_device(const std::string& name) {
  if (name == "campaign") return device_tiny(12, 16);
  if (name == "xcv50") return device_xcv50ish();
  if (name == "xcv100") return device_xcv100ish();
  if (name == "xcv300") return device_xcv300ish();
  if (name == "xcv1000") return device_xcv1000ish();
  if (name.rfind("tiny:", 0) == 0) {
    const auto x = name.find('x', 5);
    VSCRUB_CHECK(x != std::string::npos, "tiny device format is tiny:RxC");
    return device_tiny(static_cast<u16>(std::stoi(name.substr(5, x - 5))),
                       static_cast<u16>(std::stoi(name.substr(x + 1))), 2);
  }
  throw Error("unknown device '" + name + "' (see `vscrubctl devices`)");
}

int cmd_compile(const Args& args) {
  VSCRUB_CHECK(!args.positional.empty(), "compile needs a design name");
  Netlist nl = make_design(args.positional[0]);
  if (args.flag("--tmr")) nl = apply_tmr(nl);
  PnrOptions options;
  if (args.flag("--raddrc")) {
    options.halflatch_policy = HalfLatchPolicy::kLutRomConstants;
  }
  const auto design =
      compile(std::make_shared<const Netlist>(std::move(nl)),
              std::make_shared<const ConfigSpace>(
                  make_device(args.option("--device", "campaign"))),
              options);
  std::printf("compiled %-22s %5zu slices (%.1f%%), %zu wires, %d router "
              "iterations\n",
              design.netlist->name().c_str(), design.stats.slices_used,
              design.stats.utilization * 100, design.stats.wires_used,
              design.stats.router_iterations);
  const RadDrcReport hl = raddrc_analyze(design);
  std::printf("half-latch uses: %zu critical, %zu non-critical\n",
              hl.critical_uses, hl.noncritical_uses);
  const std::string out = args.option("-o", "");
  if (!out.empty()) {
    save_bitstream(design.bitstream, out);
    std::printf("wrote configuration image to %s (%u frames)\n", out.c_str(),
                design.bitstream.frame_count());
  }
  return 0;
}

int cmd_campaign(const Args& args) {
  VSCRUB_CHECK(!args.positional.empty(), "campaign needs a design name");
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(make_design(args.positional[0]));
  // --no-gang forces every injection down the scalar path (gang width 1);
  // --gang-width caps the lanes packed per bit-sliced run (default 64).
  const u32 gang_width =
      args.flag("--no-gang")
          ? 1u
          : static_cast<u32>(std::strtoul(
                args.option("--gang-width", "64").c_str(), nullptr, 10));
  CampaignOptions options =
      CampaignOptions{}
          .with_injection(InjectionOptions{}
                              .with_persistence(args.flag("--persistence"))
                              .with_pruning(!args.flag("--no-prune"))
                              .with_gang_width(gang_width))
          .with_threads(static_cast<unsigned>(
              std::strtoul(args.option("--threads", "0").c_str(), nullptr, 10)))
          .with_chunk_size(
              std::strtoull(args.option("--chunk", "0").c_str(), nullptr, 10));
  if (args.flag("--exhaustive")) {
    options.with_exhaustive();
  } else {
    options.with_sample(
        std::strtoull(args.option("--sample", "20000").c_str(), nullptr, 10));
  }
  const std::string checkpoint = args.option("--checkpoint", "");
  if (!checkpoint.empty()) options.with_checkpoint(checkpoint);
  if (args.flag("--progress")) {
    options.with_progress([](const CampaignProgress& p) {
      std::fprintf(stderr,
                   "\r%llu/%llu bits  %llu failures  %.0f bits/s  "
                   "ETA %.0f s   ",
                   static_cast<unsigned long long>(p.injections_done),
                   static_cast<unsigned long long>(p.injections_total),
                   static_cast<unsigned long long>(p.failures), p.bits_per_s,
                   p.eta_s);
      return true;
    });
  }
  const auto r = bench.campaign(design, options);
  if (args.flag("--progress")) std::fprintf(stderr, "\n");
  std::printf("%llu injections (%llu resumed, %llu pruned), %llu failures\n",
              static_cast<unsigned long long>(r.injections),
              static_cast<unsigned long long>(r.resumed_injections),
              static_cast<unsigned long long>(r.pruned),
              static_cast<unsigned long long>(r.failures));
  std::printf("sensitivity %.3f%%  normalized %.2f%%\n", r.sensitivity() * 100,
              r.normalized_sensitivity() * 100);
  if (options.injection.classify_persistence) {
    std::printf("persistence ratio %.1f%%\n", r.persistence_ratio() * 100);
  }
  std::printf("modeled SLAAC-1V time %.1f s, wall %.1f s\n",
              r.modeled_hardware_time.sec(), r.wall_seconds);
  std::printf("phases: corrupt %.1f s, run %.1f s, repair %.1f s, "
              "persistence %.1f s\n",
              r.phases.corrupt_s, r.phases.run_s, r.phases.repair_s,
              r.phases.persist_s);
  if (r.phases.gang_runs > 0) {
    std::printf("gang: %llu runs, %.1f lanes/run, %.1f%% early exit, "
                "%llu fallbacks\n",
                static_cast<unsigned long long>(r.phases.gang_runs),
                static_cast<double>(r.phases.gang_lanes) /
                    static_cast<double>(r.phases.gang_runs),
                100.0 * static_cast<double>(r.phases.gang_early_exits) /
                    static_cast<double>(r.phases.gang_runs),
                static_cast<unsigned long long>(r.phases.gang_fallbacks));
  }
  if (r.interrupted) std::printf("campaign interrupted; checkpoint saved\n");
  return 0;
}

int cmd_beam(const Args& args) {
  VSCRUB_CHECK(!args.positional.empty(), "beam needs a design name");
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(make_design(args.positional[0]));
  CampaignOptions copts;
  copts.sample_bits = 15000;
  copts.record_sampled_bits = true;
  const auto camp = bench.campaign(design, copts);
  BeamSession session(design, {});
  const u64 n =
      std::strtoull(args.option("--observations", "1000").c_str(), nullptr, 10);
  const auto r = session.run(n, camp.sensitive_set(design),
                             camp.sampled_bits);
  std::printf("%llu observations, %llu upsets, %llu output errors\n",
              static_cast<unsigned long long>(r.observations),
              static_cast<unsigned long long>(r.upsets_total),
              static_cast<unsigned long long>(r.output_error_observations));
  std::printf("correlation with simulator predictions: %.1f%%\n",
              r.correlation() * 100);
  return 0;
}

void apply_mission_flags(const Args& args, PayloadOptions& options,
                         u64 total_bits) {
  options.environment = args.flag("--flare")
                            ? OrbitEnvironment::leo_solar_flare()
                            : OrbitEnvironment::leo_quiet();
  options.environment.upset_rate_per_bit_s *=
      static_cast<double>(kXcv1000PaperBits) / static_cast<double>(total_bits);
  if (args.flag("--scrub-faults")) {
    // Paper-plausible fault rates for the scrub datapath and golden store.
    options.scrub.link_faults = ScrubLinkFaults::leo_profile();
    options.flash_faults = FlashFaultModel::leo_profile();
  }
}

int cmd_mission(const Args& args) {
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(designs::lfsr_multiplier(10));
  CampaignOptions copts;
  copts.sample_bits = 10000;
  const auto camp = bench.campaign(design, copts);
  PayloadOptions options;
  apply_mission_flags(args, options, design.space->total_bits());
  options.seed =
      std::strtoull(args.option("--seed", "4242").c_str(), nullptr, 10);
  MetricsRegistry metrics;
  EventTrace trace;
  const std::string trace_path = args.option("--trace", "");
  const std::string json_path = args.option("--json", "");
  if (!json_path.empty()) options.metrics = &metrics;
  if (!trace_path.empty()) options.trace = &trace;
  Payload payload(design, options, camp.sensitive_set(design));
  const double hours = std::atof(args.option("--hours", "24").c_str());
  const auto r = payload.run_mission(SimTime::hours(hours));
  std::printf("%.0f h mission (%s): %llu upsets, %llu detected, %llu "
              "repaired, availability %.5f\n",
              hours, options.environment.name.c_str(),
              static_cast<unsigned long long>(r.upsets_total),
              static_cast<unsigned long long>(r.detected),
              static_cast<unsigned long long>(r.repaired), r.availability);
  std::printf("scrub cycle %.1f ms/board, detection latency mean %.1f ms\n",
              r.scrub_cycle_per_board.ms(), r.mean_detection_latency_ms);
  if (options.scrub.link_faults.enabled() || options.flash_faults.enabled()) {
    std::printf("scrub faults: %llu false alarms, %llu false repairs, %llu "
                "timeouts, %llu flash escalations\n",
                static_cast<unsigned long long>(r.false_alarms),
                static_cast<unsigned long long>(r.false_repairs),
                static_cast<unsigned long long>(r.scrub_transfer_timeouts),
                static_cast<unsigned long long>(r.flash_escalations));
  }
  if (!trace_path.empty() && trace.write_jsonl(trace_path)) {
    std::printf("wrote %zu trace events to %s\n", trace.size(),
                trace_path.c_str());
  }
  if (!json_path.empty() && metrics.write_json(json_path)) {
    std::printf("wrote mission metrics to %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_fleet(const Args& args) {
  Workbench bench(make_device(args.option("--device", "campaign")));
  const auto design = bench.compile(designs::lfsr_multiplier(10));
  CampaignOptions copts;
  copts.sample_bits = 10000;
  const auto camp = bench.campaign(design, copts);
  FleetOptions options;
  options.missions = static_cast<u32>(
      std::strtoul(args.option("--missions", "8").c_str(), nullptr, 10));
  options.base_seed =
      std::strtoull(args.option("--seed", "1").c_str(), nullptr, 10);
  options.threads = static_cast<u32>(
      std::strtoul(args.option("--threads", "0").c_str(), nullptr, 10));
  options.duration =
      SimTime::hours(std::atof(args.option("--hours", "24").c_str()));
  apply_mission_flags(args, options.payload, design.space->total_bits());
  const auto r = bench.fleet(design, camp.sensitive_set(design), options);
  std::printf("%u missions x %.0f h (%s): %llu upsets, %llu detected, %llu "
              "repaired\n",
              options.missions, options.duration.sec() / 3600.0,
              options.payload.environment.name.c_str(),
              static_cast<unsigned long long>(r.upsets_total),
              static_cast<unsigned long long>(r.detected),
              static_cast<unsigned long long>(r.repaired));
  std::printf("availability %.6f +/- %.6f (95%% CI), latency p50 %.1f ms, "
              "p99 %.1f ms\n",
              r.availability_mean, r.availability_ci95,
              r.detection_latency_p50_ms, r.detection_latency_p99_ms);
  std::printf("scrub faults: %llu false alarms, %llu false repairs, %llu "
              "timeouts, %llu flash escalations\n",
              static_cast<unsigned long long>(r.false_alarms),
              static_cast<unsigned long long>(r.false_repairs),
              static_cast<unsigned long long>(r.scrub_transfer_timeouts),
              static_cast<unsigned long long>(r.flash_escalations));
  const std::string json_path = args.option("--json", "");
  if (!json_path.empty()) {
    MetricsRegistry metrics;
    fill_fleet_metrics(r, metrics);
    if (metrics.write_json(json_path)) {
      std::printf("wrote fleet metrics to %s\n", json_path.c_str());
    }
  }
  return 0;
}

int cmd_bist(const Args& args) {
  auto space = std::make_shared<const ConfigSpace>(
      make_device(args.option("--device", "tiny:8x12")));
  FabricSim fabric(space);
  const auto wire = run_wire_test(space, fabric);
  std::printf("wire test: %s (%d reconfigs, %d readbacks, %.0f ms modeled)\n",
              wire.pass() ? "PASS" : "FAIL", wire.partial_reconfigs + 1,
              wire.readbacks, wire.modeled_time.ms());
  const auto pattern =
      compile(std::make_shared<const Netlist>(bist_clb_cascade(6, 20)), space, {});
  fabric.full_configure(pattern.bitstream);
  const auto clb = run_clb_bist(pattern, fabric, 400);
  std::printf("CLB BIST: %s (%.0f%% slice coverage)\n",
              clb.error_detected ? "ERROR DETECTED" : "PASS",
              clb.slice_coverage * 100);
  return 0;
}

int cmd_info(const Args& args) {
  VSCRUB_CHECK(!args.positional.empty(), "info needs an image path");
  const LoadedImage image = load_bitstream(args.positional[0]);
  u64 set_bits = 0;
  for (u32 gf = 0; gf < image.bits.frame_count(); ++gf) {
    set_bits += image.bits.frame(gf).popcount();
  }
  std::printf("device   %s (%ux%u CLBs, %u BRAM columns)\n",
              image.geometry.name.c_str(), image.geometry.rows,
              image.geometry.cols, image.geometry.bram_columns);
  std::printf("frames   %u (CLB frame %u bytes)\n", image.bits.frame_count(),
              image.geometry.clb_frame_bytes());
  std::printf("bits     %llu total, %llu set\n",
              static_cast<unsigned long long>(
                  image.geometry.total_config_bits()),
              static_cast<unsigned long long>(set_bits));
  std::printf("CRC      ok\n");
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: vscrubctl <command> [args]\n"
      "  compile <design> [--device D] [--raddrc] [--tmr] [-o FILE]\n"
      "  campaign <design> [--sample N | --exhaustive] [--persistence]\n"
      "           [--threads N] [--chunk N] [--checkpoint FILE] [--progress]\n"
      "           [--no-prune] [--gang-width N] [--no-gang]\n"
      "  beam <design> [--observations N]\n"
      "  mission [--hours H] [--flare] [--seed S] [--scrub-faults]\n"
      "          [--trace FILE.jsonl] [--json FILE.json]\n"
      "  fleet [--missions N] [--hours H] [--flare] [--seed S] [--threads N]\n"
      "        [--scrub-faults] [--json FILE.json]\n"
      "  bist [--device D]\n"
      "  info <image.vsb>\n"
      "  designs | devices\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  for (int i = 2; i < argc; ++i) {
    args.raw.emplace_back(argv[i]);
    if (argv[i][0] != '-') args.positional.emplace_back(argv[i]);
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "compile") return cmd_compile(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "beam") return cmd_beam(args);
    if (cmd == "mission") return cmd_mission(args);
    if (cmd == "fleet") return cmd_fleet(args);
    if (cmd == "bist") return cmd_bist(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "designs") {
      std::printf("lfsr mult vmult counter multadd lfsrmult fir selfcheck bram\n");
      return 0;
    }
    if (cmd == "devices") {
      std::printf("campaign xcv50 xcv100 xcv300 xcv1000 tiny:RxC\n");
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vscrubctl: %s\n", e.what());
    return 1;
  }
}
