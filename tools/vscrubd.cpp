// vscrubd — the standalone campaign-service daemon. A thin shell over the
// same `serve` command implementation `vscrubctl serve` uses; exists so a
// deployment can ship and supervise the daemon without the full CLI.
#include <cstdio>
#include <string>
#include <vector>

#include "core/cli.h"
#include "serve_common.h"

int main(int argc, char** argv) {
  using namespace vscrub;
  const CliCommand* cmd = cli_find("serve");
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string word = argv[i];
    if (word == "--help" || word == "-h") {
      std::string help = cli_help(*cmd);
      // The shared command table prints `vscrubctl serve`; this binary is
      // invoked as plain `vscrubd`.
      const std::string from = "vscrubctl serve";
      const auto at = help.find(from);
      if (at != std::string::npos) help.replace(at, from.size(), "vscrubd");
      std::fputs(help.c_str(), stdout);
      return 0;
    }
    rest.push_back(word);
  }
  try {
    return run_serve(cli_parse(*cmd, rest));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vscrubd: %s\n", e.what());
    return 1;
  }
}
