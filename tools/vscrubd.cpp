// vscrubd — the standalone campaign-service daemon. A thin shell over the
// same `serve` command implementation `vscrubctl serve` uses; exists so a
// deployment can ship and supervise the daemon without the full CLI.
//
// `vscrubd --coordinator` runs the campaign-fabric coordinator instead
// (the `vscrubctl fleet-serve` engine): same VSRP1 socket transport, but
// the frames shard campaigns across a registered fleet of worker daemons.
#include <cstdio>
#include <string>
#include <vector>

#include "core/cli.h"
#include "fleet_common.h"
#include "serve_common.h"

int main(int argc, char** argv) {
  using namespace vscrub;
  bool coordinator = false;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string word = argv[i];
    if (word == "--coordinator") {
      coordinator = true;
      continue;
    }
    rest.push_back(word);
  }
  const CliCommand* cmd = cli_find(coordinator ? "fleet-serve" : "serve");
  for (const std::string& word : rest) {
    if (word == "--help" || word == "-h") {
      std::string help = cli_help(*cmd);
      // The shared command table prints `vscrubctl <cmd>`; this binary is
      // invoked as plain `vscrubd` (with --coordinator for fleet-serve).
      const std::string from =
          coordinator ? "vscrubctl fleet-serve" : "vscrubctl serve";
      const auto at = help.find(from);
      if (at != std::string::npos) {
        help.replace(at, from.size(),
                     coordinator ? "vscrubd --coordinator" : "vscrubd");
      }
      std::fputs(help.c_str(), stdout);
      return 0;
    }
  }
  try {
    const CliArgs args = cli_parse(*cmd, rest);
    return coordinator ? run_fleet_serve(args) : run_serve(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vscrubd: %s\n", e.what());
    return 1;
  }
}
