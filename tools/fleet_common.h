// Shared `fleet-serve` implementation for the two coordinator entry points:
// `vscrubd --coordinator` and `vscrubctl fleet-serve`. Both parse the same
// declarative `fleet-serve` command table in core/cli.cpp and build one
// CoordinatorConfig here, so flags and behavior cannot drift apart.
#pragma once

#include <cstdio>
#include <memory>

#include "coord/coordinator.h"
#include "core/cli.h"
#include "svc/config.h"
#include "svc/server.h"

namespace vscrub {

inline CoordinatorConfig coordinator_config_from(const CliArgs& args) {
  CoordinatorConfig config;
  config.socket_path = args.option("--socket", "/tmp/vscrub-coord.sock");
  config.workers = args.option_all("--worker");
  config.cache_dir = args.option("--cache-dir", "");
  config.shards_per_worker = args.option_u64("--shards-per-worker", 2);
  config.lease_ms = args.option_u64("--lease-ms", 10000);
  config.checkpoint_every_chunks =
      args.option_u64("--checkpoint-every-chunks", 2);
  config.max_concurrent =
      static_cast<unsigned>(args.option_u64("--max-concurrent", 2));
  config.validate();
  return config;
}

/// Runs the coordinator daemon until SIGTERM/SIGINT: the first signal
/// drains gracefully (live sharded campaigns finish and deliver their
/// merged reports), a second cancels them at the next range boundary.
inline int run_fleet_serve(const CliArgs& args) {
  CoordinatorConfig config = coordinator_config_from(args);
  // Only the transport fields of ServiceConfig matter here; the engine is
  // the CoordinatorService, not the default CampaignService.
  ServiceConfig transport;
  transport.socket_path = config.socket_path;
  auto service = std::make_unique<CoordinatorService>(std::move(config));
  const CoordinatorConfig& cfg = service->config();
  SocketServer server(transport, std::move(service));
  server.start();
  server.bind_signals();
  std::printf("vscrubd: coordinating %zu worker(s) on %s (x%llu shards, "
              "lease %llu ms, hub store %s)\n",
              cfg.workers.size(), cfg.socket_path.c_str(),
              static_cast<unsigned long long>(cfg.shards_per_worker),
              static_cast<unsigned long long>(cfg.lease_ms),
              cfg.cache_dir.empty() ? "disabled" : cfg.cache_dir.c_str());
  std::fflush(stdout);
  server.run();
  const std::string stats_json = args.option("--stats-json", "");
  if (!stats_json.empty() &&
      server.service().stats_report().write(stats_json)) {
    std::printf("vscrubd: wrote coordinator stats to %s\n",
                stats_json.c_str());
  }
  std::printf("vscrubd: coordinator drained, exiting\n");
  return 0;
}

}  // namespace vscrub
