// E12 (ablation) — the design choices DESIGN.md calls out:
//   * placer annealing on/off: wirelength and router effort;
//   * scrub read-modify-write on/off over dynamic frames (also in E10);
//   * injection observation-window length: sensitivity saturation.
#include "bench_util.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE12 (ablation) — PnR and campaign design choices\n");
  rule();

  // Annealing ablation.
  std::printf("placer annealing (mult_tree w=10 on the campaign device):\n");
  std::printf("%12s %12s %14s %12s\n", "anneal", "wires", "router iters",
              "wall (s)");
  for (const u32 moves : {0u, 16u, 64u, 256u}) {
    PnrOptions options;
    options.anneal_moves_per_site = moves;
    const auto t0 = std::chrono::steady_clock::now();
    const auto design =
        compile(std::make_shared<const Netlist>(designs::mult_tree(10)),
                std::make_shared<const ConfigSpace>(campaign_device()), options);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%12u %12zu %14d %12.2f\n", moves, design.stats.wires_used,
                design.stats.router_iterations, secs);
  }
  std::printf("(annealing shortens routes; shorter routes -> smaller "
              "sensitive routing cross-section)\n");
  rule();

  // Observation-window ablation: sensitivity saturates once the window
  // exceeds the design latency.
  std::printf("observation window vs measured sensitivity (counter_adder):\n");
  const auto design = compile(designs::counter_adder(10), campaign_device());
  std::printf("%14s %14s\n", "observe cycles", "sensitivity");
  for (const u32 window : {8u, 16u, 32u, 64u, 128u}) {
    CampaignOptions opts;
    opts.sample_bits = 4000;
    opts.record_sensitive_bits = false;
    opts.injection.observe_cycles = window;
    const auto r = run_campaign(design, opts);
    std::printf("%14u %13.2f%%\n", window, r.sensitivity() * 100);
  }
  std::printf("\n");
}

void BM_CompileNoAnneal(benchmark::State& state) {
  for (auto _ : state) {
    PnrOptions options;
    options.anneal_moves_per_site = 0;
    const auto design =
        compile(std::make_shared<const Netlist>(designs::mult_tree(8)),
                std::make_shared<const ConfigSpace>(campaign_device()), options);
    benchmark::DoNotOptimize(design.stats.wires_used);
  }
}
BENCHMARK(BM_CompileNoAnneal)->Unit(benchmark::kMillisecond);

void BM_CompileWithAnneal(benchmark::State& state) {
  for (auto _ : state) {
    const auto design =
        compile(std::make_shared<const Netlist>(designs::mult_tree(8)),
                std::make_shared<const ConfigSpace>(campaign_device()), {});
    benchmark::DoNotOptimize(design.stats.wires_used);
  }
}
BENCHMARK(BM_CompileWithAnneal)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
