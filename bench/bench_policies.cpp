// E14 — the scrub-policy laboratory: the paper's readback+CRC loop raced
// against the deployed alternatives (blind golden rewrite, sensitivity-mined
// frame priority, Belle II-style intermodular staggering) over the identical
// Monte-Carlo seed sweep.
//
// Comparability is the whole design: every policy runs the same missions
// (same seeds, duration, environment, sensitivity map), so differences in
// availability / MTTR / scrub bandwidth are attributable to scheduling alone.
// CI asserts two invariants from the emitted BENCH_policies.json:
//   * readback_crc availability == the no-policy baseline, exactly — the
//     default path of API v3 is bit-identical to v2;
//   * priority MTTR <= blind MTTR on this sensitivity-skewed design — hot
//     frames are revisited more often than a full rotation, by construction.
#include "bench_util.h"

namespace vscrub::bench {
namespace {

/// Upset rate scaled for the campaign device so each mission sees enough
/// functional upsets for the MTTR estimate to be meaningful (the orbital
/// rate on the small part would give ~0 per mission).
FleetOptions race_fleet_options() {
  FleetOptions fo;
  fo.missions = 8;
  fo.base_seed = 1;
  fo.duration = SimTime::hours(6);
  fo.payload.environment.upset_rate_per_bit_s = 2e-7;
  // Functional corruption ends when the frame is scrubbed, not when a
  // device reset flushes hidden state — MTTR then measures the scrub
  // schedule (the thing being raced), not the reset policy.
  fo.payload.hidden_state_fraction = 0.0;
  return fo;
}

void run_report() {
  std::printf("\nE11 — scrub-policy race (API v3 laboratory)\n");
  rule();

  Workbench bench(campaign_device());
  const PlacedDesign design = bench.compile(designs::lfsr_multiplier(10));
  CampaignOptions copts;
  copts.sample_bits = 10000;
  const CampaignResult camp = run_campaign(design, copts);
  const std::unordered_set<u64> sensitive = camp.sensitive_set(design);
  const std::vector<u32> sens_map = mine_frame_sensitivity(*design.space, sensitive);
  u32 hot_frames = 0;
  for (const u32 s : sens_map) hot_frames += s > 0 ? 1 : 0;
  std::printf("design lfsrmult on %s: %u frames, %u hot (%.0f%% of frames "
              "hold every sensitive bit)\n",
              design.space->geometry().name.c_str(),
              design.space->frame_count(), hot_frames,
              100.0 * hot_frames / design.space->frame_count());

  // Baseline: the v2 path — no policy configured at all.
  const FleetOptions fo = race_fleet_options();
  const FleetResult baseline = run_fleet(design, sensitive, fo);

  PolicyRaceOptions ro;
  ro.policies = scrub_policy_names();
  ro.fleet = fo;
  const PolicyRaceResult race = run_policy_race(design, sensitive, ro);

  std::printf("\n%-14s %-22s %10s %14s %10s %10s\n", "policy",
              "availability", "mttr ms", "scrub B/s", "p50 ms", "p99 ms");
  rule();
  const auto print_row = [](const char* label, const FleetResult& r) {
    std::printf("%-14s %.6f +/- %.6f %10.2f %14.0f %10.2f %10.2f\n", label,
                r.availability_mean, r.availability_ci95, r.mttr_ms,
                r.scrub_bandwidth_bytes_per_s, r.detection_latency_p50_ms,
                r.detection_latency_p99_ms);
  };
  print_row("(baseline)", baseline);
  for (const PolicyRaceEntry& e : race.entries) {
    print_row(e.policy.c_str(), e.fleet);
  }

  BenchJson json;
  json.set("missions", fo.missions);
  json.set("mission_hours", fo.duration.sec() / 3600.0);
  json.set("hot_frames", hot_frames);
  json.set("baseline_availability_mean", baseline.availability_mean);
  json.set("baseline_mttr_ms", baseline.mttr_ms);
  json.set("baseline_functional_upsets",
           static_cast<double>(baseline.functional_upsets));
  for (const PolicyRaceEntry& e : race.entries) {
    const FleetResult& r = e.fleet;
    json.set(e.policy + "_availability_mean", r.availability_mean);
    json.set(e.policy + "_availability_ci95", r.availability_ci95);
    json.set(e.policy + "_mttr_ms", r.mttr_ms);
    json.set(e.policy + "_scrub_bandwidth_bytes_per_s",
             r.scrub_bandwidth_bytes_per_s);
    json.set(e.policy + "_detection_latency_p50_ms",
             r.detection_latency_p50_ms);
    json.set(e.policy + "_detection_latency_p99_ms",
             r.detection_latency_p99_ms);
    json.set(e.policy + "_functional_upsets",
             static_cast<double>(r.functional_upsets));
    json.set(e.policy + "_repaired", static_cast<double>(r.repaired));
    json.set(e.policy + "_ecc_fallback_repairs",
             static_cast<double>(r.ecc_fallback_repairs));
  }
  json.write(bench_json_path("BENCH_policies.json"));
  std::printf("\n");
}

void BM_PolicyPlanPass(benchmark::State& state, const char* policy_name) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::lfsr_multiplier(10));
  static CampaignOptions copts = [] {
    CampaignOptions o;
    o.sample_bits = 10000;
    return o;
  }();
  static const CampaignResult camp = run_campaign(design, copts);
  static const std::vector<u32> sens =
      mine_frame_sensitivity(*design.space, camp.sensitive_set(design));
  const ScrubPolicyPtr policy = make_scrub_policy(policy_name);
  ScrubPolicyContext ctx;
  ctx.frame_count = design.space->frame_count();
  ctx.frame_sensitivity = &sens;
  std::vector<u32> order;
  for (auto _ : state) {
    policy->plan_pass(ctx, order);
    benchmark::DoNotOptimize(order.data());
    ++ctx.pass_index;
  }
}
BENCHMARK_CAPTURE(BM_PolicyPlanPass, readback_crc, "readback_crc")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PolicyPlanPass, blind, "blind")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PolicyPlanPass, priority, "priority")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PolicyPlanPass, staggered, "staggered")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PolicyPlanPass, golden_ecc, "golden_ecc")
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
