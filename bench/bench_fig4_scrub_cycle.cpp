// E4 — Fig. 4 / §II-A: the on-orbit SEU detection & correction loop.
//
// Paper numbers reproduced:
//   * frame size: 156 bytes on the XQVR1000;
//   * readback+CRC cycle: ~180 ms for a board of three XQVR1000s;
//   * repair: fetch golden frame from ECC flash, partial reconfigure, reset;
//   * detection latency: uniform within the scrub rotation (mean ~half the
//     board cycle).
#include "bench_util.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE4 — on-orbit scrub loop (Fig. 4)\n");
  rule();

  // Timing model on the real-geometry device.
  const auto design = compile(designs::counter_adder(8), device_xcv1000ish());
  FabricSim sim(design.space);
  FlashStore flash(design.bitstream);
  Scrubber scrubber(design, sim, flash, {});
  const DeviceGeometry& geom = design.space->geometry();
  std::printf("device %s: %u frames, CLB frame = %u bytes (paper: 156)\n",
              geom.name.c_str(), design.space->frame_count(),
              geom.clb_frame_bytes());
  std::printf("one-device readback+CRC pass: %.1f ms\n",
              scrubber.clean_pass_cost().ms());
  std::printf("board cycle (3 devices):      %.1f ms   (paper: ~180 ms)\n",
              scrubber.clean_pass_cost().ms() * 3);

  // Functional demonstration on the campaign device: insert artificial
  // SEUs (paper §II-A) and scrub them while the design runs.
  Workbench bench(campaign_device());
  const PlacedDesign small = bench.compile(designs::lfsr_multiplier(10));
  FabricSim fabric(small.space);
  DesignHarness harness(small, fabric);
  harness.configure();
  FlashStore small_flash(small.bitstream);
  Scrubber small_scrubber(small, fabric, small_flash, {});

  Rng rng(11);
  u32 found = 0, repaired = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    small_scrubber.insert_artificial_seu(small.space->address_of_linear(
        rng.uniform(small.space->total_bits())));
    const ScrubPassResult pass = small_scrubber.scrub_pass(&harness);
    found += pass.errors_found;
    repaired += pass.repairs;
  }
  std::printf("\nartificial SEU insertion (%d trials on the campaign "
              "device): %u detected, %u repaired\n",
              trials, found, repaired);

  // Detection-latency distribution from the mission simulator.
  CampaignOptions copts;
  copts.sample_bits = 8000;
  const auto camp = run_campaign(small, copts);
  PayloadOptions popts;
  popts.environment.upset_rate_per_bit_s = 2e-7;  // scaled for statistics
  popts.hidden_state_fraction = 0.0;
  Payload payload(small, popts, camp.sensitive_set(small));
  const MissionReport mission = payload.run_mission(SimTime::hours(2));
  std::printf("\nmission (2 h, scaled rate): %llu upsets, %llu detected\n",
              static_cast<unsigned long long>(mission.upsets_total),
              static_cast<unsigned long long>(mission.detected));
  std::printf("board scrub cycle %.1f ms; detection latency mean %.1f ms, "
              "max %.1f ms (mean ~ cycle/2)\n",
              mission.scrub_cycle_per_board.ms(),
              mission.mean_detection_latency_ms,
              mission.max_detection_latency_ms);
  std::printf("availability: %.5f\n\n", mission.availability);
}

void BM_ScrubPass(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::counter_adder(12));
  static FabricSim fabric(design.space);
  static DesignHarness harness(design, fabric);
  static FlashStore flash(design.bitstream);
  static Scrubber scrubber(design, fabric, flash, {});
  static bool init = [] {
    harness.configure();
    return true;
  }();
  (void)init;
  for (auto _ : state) {
    const auto pass = scrubber.scrub_pass(&harness);
    benchmark::DoNotOptimize(pass.frames_checked);
  }
}
BENCHMARK(BM_ScrubPass)->Unit(benchmark::kMillisecond);

void BM_FrameReadbackCrc(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::counter_adder(12));
  static FabricSim fabric(design.space);
  static const CrcCodebook codebook(design.bitstream);
  static bool init = [] {
    fabric.full_configure(design.bitstream);
    return true;
  }();
  (void)init;
  u32 gf = 0;
  for (auto _ : state) {
    const auto data =
        fabric.read_frame(design.space->frame_of_global(gf), true);
    benchmark::DoNotOptimize(codebook.check(gf, data));
    gf = (gf + 1) % design.space->frame_count();
  }
}
BENCHMARK(BM_FrameReadbackCrc)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
