// E-service — the vscrubd serving layer under concurrent load.
//
// Not a paper experiment: this bench characterizes the serving subsystem
// (event-loop transport + fair-share scheduler, API v4). It reports (a)
// end-to-end throughput and request latency for a fleet of concurrent
// loopback clients running the standard sampled campaign, (b) how much work
// the process-wide verdict store absorbs across those clients, (c) typed
// backpressure when the admission queue is deliberately starved, (d) a
// high-concurrency submit/cancel churn — hundreds of client identities,
// including deliberately greedy pipeliners — scored by Jain's fairness
// index and served-digest integrity, (e) preemption: a bulk tenant's long
// campaign yielding to interactive tenants and resuming from its VSCK
// checkpoint bit-identically, and (f) wire-protocol microcosts.
//
// CI gates on the churn/preempt fields of BENCH_service.json: fairness,
// tail latency, digest equality with one-shot runs, and at least one
// observed preemption.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "bench_util.h"
#include "svc/client.h"
#include "svc/config.h"
#include "svc/protocol.h"
#include "svc/requests.h"
#include "svc/server.h"
#include "svc/session.h"

namespace vscrub::bench {
namespace {

constexpr const char* kSocket = "/tmp/vscrub_bench_svc.sock";
constexpr const char* kStore = "/tmp/vscrub_bench_svc_store";
constexpr const char* kSpool = "/tmp/vscrub_bench_svc_spool";

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start).count();
}

u64 env_u64(const char* name, u64 dflt) {
  const char* value = std::getenv(name);
  return value == nullptr ? dflt : std::strtoull(value, nullptr, 10);
}

double percentile(std::vector<double> sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[idx];
}

/// Jain's fairness index over per-client allocations: (Σx)² / (n·Σx²).
/// 1.0 = perfectly even, 1/n = one client got everything.
double jain_index(const std::vector<u64>& x) {
  double sum = 0.0, sum_sq = 0.0;
  for (const u64 v : x) {
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(x.size()) * sum_sq);
}

struct RunningServer {
  explicit RunningServer(ServiceConfig config) : server(std::move(config)) {
    server.start();
    runner = std::thread([this] { server.run(); });
  }
  ~RunningServer() {
    server.request_stop();
    runner.join();
  }
  SocketServer server;
  std::thread runner;
};

void run_report() {
  std::printf("\nE-service — vscrubd concurrent campaign service\n");
  rule();

  std::filesystem::remove_all(kStore);
  std::filesystem::remove_all(kSpool);
  const std::string payload = JsonReport("campaign_request")
                                  .set_string("design", "lfsrmult")
                                  .set_string("device", "campaign")
                                  .set_u64("sample", 1000)
                                  .to_json();
  const std::string churn_payload =
      JsonReport("campaign_request")
          .set_string("design", "lfsr")
          .set_string("device", "campaign")
          .set_u64("sample", 300)
          .to_json();

  // Ground truth for served-result integrity: the same campaigns run once,
  // directly through the library, with the server's defaults.
  const PlacedDesign churn_design =
      compile(design_by_name("lfsr"), device_by_name("campaign"));
  const auto direct_options = [](u64 sample) {
    return CampaignOptions{}
        .with_injection(InjectionOptions{}
                            .with_persistence(false)
                            .with_pruning(true)
                            .with_gang_width(served_gang_width_default()))
        .with_sample(sample, 99);
  };
  const u64 churn_digest = run_campaign(churn_design, direct_options(300))
                               .sensitive_digest(churn_design);
  const u64 bulk_digest =
      run_campaign(churn_design,
                   CampaignOptions(direct_options(6000)).with_chunk_size(64))
          .sensitive_digest(churn_design);

  constexpr std::size_t kClients = 8;
  constexpr int kRequestsPerClient = 2;
  double wall_s = 0.0;
  u64 cache_hits = 0;
  u64 results = 0;
  double p50 = 0.0, p99 = 0.0;
  double ping_us = 0.0;
  {
    ServiceConfig config;
    config.socket_path = kSocket;
    config.queue_capacity = 32;
    config.executors = 3;
    config.pool_threads = 3;
    config.cache_dir = kStore;

    // Warm the shared store with one cold run against a throwaway server so
    // the fleet below (and its latency histogram) measures the daemon's
    // steady state — the regime the p50 target is about — not first-compute.
    {
      RunningServer warm_server(config);
      ServiceClient warm = ServiceClient::connect_unix(kSocket);
      (void)warm.call(FrameKind::kCampaign, payload);
    }
    RunningServer running(config);

    // Ping round-trip cost over the real socket (frame encode + send + server
    // dispatch + reply decode), amortized over many probes.
    {
      ServiceClient client = ServiceClient::connect_unix(kSocket);
      constexpr int kPings = 2000;
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kPings; ++i) client.ping();
      ping_us = seconds_since(start) * 1e6 / kPings;
    }

    std::vector<u64> hits(kClients, 0);
    std::vector<u64> ok(kClients, 0);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        ServiceClient client = ServiceClient::connect_unix(kSocket);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const Frame reply = client.call(FrameKind::kCampaign, payload);
          if (reply.kind != FrameKind::kResult) continue;
          ++ok[c];
          hits[c] += FlatJson::parse(reply.payload).get_u64("cache_hits");
        }
      });
    }
    for (std::thread& t : clients) t.join();
    wall_s = seconds_since(start);
    for (std::size_t c = 0; c < kClients; ++c) {
      cache_hits += hits[c];
      results += ok[c];
    }

    ServiceClient client = ServiceClient::connect_unix(kSocket);
    const FlatJson stats = FlatJson::parse(client.stats().payload);
    p50 = stats.get_double("request_latency_ms_p50");
    p99 = stats.get_double("request_latency_ms_p99");
  }

  const u64 requests = static_cast<u64>(kClients) * kRequestsPerClient;
  std::printf("%zu clients x %d campaigns (sample 1000): %llu/%llu results in "
              "%.2f s (%.1f req/s)\n",
              kClients, kRequestsPerClient,
              static_cast<unsigned long long>(results),
              static_cast<unsigned long long>(requests), wall_s,
              static_cast<double>(results) / wall_s);
  std::printf("request latency p50 %.1f ms, p99 %.1f ms; ping round-trip "
              "%.1f us\n", p50, p99, ping_us);
  std::printf("cross-client verdict reuse: %llu cached verdicts served\n",
              static_cast<unsigned long long>(cache_hits));

  // Backpressure: one executor, a single queue slot, a burst of requests —
  // the excess must come back as typed kBusy, not buffer or block.
  u64 busy = 0;
  u64 served = 0;
  u64 admission_rejects = 0;
  {
    ServiceConfig config;
    config.socket_path = kSocket;
    config.queue_capacity = 1;
    config.executors = 1;
    config.pool_threads = 3;
    RunningServer running(config);
    std::vector<std::thread> burst;
    std::vector<u64> was_busy(kClients, 0);
    std::vector<u64> was_served(kClients, 0);
    for (std::size_t c = 0; c < kClients; ++c) {
      burst.emplace_back([&, c] {
        ServiceClient client = ServiceClient::connect_unix(kSocket);
        const Frame reply = client.call(FrameKind::kCampaign, payload);
        if (reply.kind == FrameKind::kBusy) was_busy[c] = 1;
        if (reply.kind == FrameKind::kResult) was_served[c] = 1;
      });
    }
    for (std::thread& t : burst) t.join();
    for (std::size_t c = 0; c < kClients; ++c) {
      busy += was_busy[c];
      served += was_served[c];
    }
    ServiceClient client = ServiceClient::connect_unix(kSocket);
    admission_rejects =
        FlatJson::parse(client.stats().payload).get_u64("admission_rejects");
  }
  std::printf("starved admission (queue 1, 1 executor), %zu-request burst: "
              "%llu served, %llu typed kBusy rejects\n",
              kClients, static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(busy));

  // ---- high-concurrency submit/cancel churn --------------------------------
  // Hundreds of client identities hammer one server. A quarter of them are
  // greedy (4 requests pipelined on one connection); the rest are polite
  // closed-loop clients, and every 4th polite submission is cancelled right
  // after submit. Scored: Jain fairness over polite completion counts,
  // client-observed latency percentiles, and digest equality of every served
  // result with the one-shot run.
  const std::size_t churn_clients =
      static_cast<std::size_t>(env_u64("VSCRUB_BENCH_CHURN_CLIENTS", 256));
  const double churn_seconds =
      static_cast<double>(env_u64("VSCRUB_BENCH_CHURN_SECONDS", 3));
  const std::size_t greedy_clients = churn_clients / 4;
  u64 churn_results = 0, churn_cancels = 0, churn_mismatches = 0;
  double churn_p50 = 0.0, churn_p99 = 0.0, churn_jain = 0.0;
  {
    ServiceConfig config;
    config.socket_path = kSocket;
    config.queue_capacity = churn_clients * 8;
    config.executors = 4;
    config.pool_threads = 3;
    config.cache_dir = kStore;
    RunningServer running(config);

    // Warm the shared store once so churn measures serving, not first-compute.
    {
      ServiceClient warm = ServiceClient::connect_unix(kSocket);
      (void)warm.call(FrameKind::kCampaign, churn_payload);
    }

    std::vector<u64> completions(churn_clients, 0);
    std::vector<u64> cancels(churn_clients, 0);
    std::vector<u64> mismatches(churn_clients, 0);
    std::vector<std::vector<double>> latencies(churn_clients);
    std::vector<std::thread> threads;
    threads.reserve(churn_clients);
    // Start barrier: spawning hundreds of threads is itself slow, and a
    // fixed deadline would hand early starters a longer window than late
    // ones — a fairness artifact of the bench, not the scheduler. Everyone
    // connects first; the clock starts when the whole fleet is ready.
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> go{false};
    std::chrono::steady_clock::time_point deadline{};
    for (std::size_t c = 0; c < churn_clients; ++c) {
      threads.emplace_back([&, c] {
        ServiceSession session = ServiceSession::connect_unix(kSocket);
        ready.fetch_add(1);
        while (!go.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        const bool greedy = c < greedy_clients;
        u64 n = 0;
        const auto check = [&](const Frame& reply, double lat_ms) {
          if (reply.kind != FrameKind::kResult) return;
          ++completions[c];
          if (lat_ms >= 0.0) latencies[c].push_back(lat_ms);
          const FlatJson report = FlatJson::parse(reply.payload);
          if (report.get_bool("interrupted")) return;  // cancelled mid-run
          if (report.get_u64("sensitive_digest") != churn_digest) {
            ++mismatches[c];
          }
        };
        while (std::chrono::steady_clock::now() < deadline) {
          if (greedy) {
            std::vector<JobHandle> jobs;
            for (int k = 0; k < 4; ++k) {
              jobs.push_back(session.submit(FrameKind::kCampaign,
                                            churn_payload));
            }
            for (JobHandle& job : jobs) check(job.wait(), -1.0);
            continue;
          }
          ++n;
          const auto t0 = std::chrono::steady_clock::now();
          JobHandle job = session.submit(FrameKind::kCampaign, churn_payload);
          if (n % 4 == 2) {
            if (job.cancel()) ++cancels[c];
            (void)job.wait();  // interrupted result or typed cancel error
            continue;
          }
          const Frame reply = job.wait();
          check(reply, seconds_since(t0) * 1e3);
        }
      });
    }
    while (ready.load() < churn_clients) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(churn_seconds));
    go.store(true);
    for (std::thread& t : threads) t.join();

    std::vector<double> all_latencies;
    for (std::size_t c = greedy_clients; c < churn_clients; ++c) {
      all_latencies.insert(all_latencies.end(), latencies[c].begin(),
                           latencies[c].end());
    }
    churn_p50 = percentile(all_latencies, 0.50);
    churn_p99 = percentile(all_latencies, 0.99);
    const std::vector<u64> polite(completions.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          greedy_clients),
                                  completions.end());
    churn_jain = jain_index(polite);
    for (std::size_t c = 0; c < churn_clients; ++c) {
      churn_results += completions[c];
      churn_cancels += cancels[c];
      churn_mismatches += mismatches[c];
    }
  }
  std::printf("churn: %zu clients (%zu greedy) for %.0f s: %llu results, "
              "%llu cancels, %llu digest mismatches\n",
              churn_clients, greedy_clients, churn_seconds,
              static_cast<unsigned long long>(churn_results),
              static_cast<unsigned long long>(churn_cancels),
              static_cast<unsigned long long>(churn_mismatches));
  std::printf("churn latency p50 %.1f ms p99 %.1f ms; Jain fairness %.3f "
              "over %zu polite clients\n",
              churn_p50, churn_p99, churn_jain,
              churn_clients - greedy_clients);

  // ---- preemption: bulk tenant yields, resumes bit-identically -------------
  u64 preemptions = 0;
  u64 preempt_resumed = 0;
  u64 preempt_digest_match = 0;
  u64 interactive_served = 0;
  {
    ServiceConfig config;
    config.socket_path = kSocket;
    config.queue_capacity = 64;
    config.executors = 1;  // preemption is the only path for the short jobs
    config.pool_threads = 3;
    config.preempt_chunks = 1;
    config.spool_dir = kSpool;
    RunningServer running(config);

    ServiceSession bulk = ServiceSession::connect_unix(kSocket);
    std::atomic<bool> mid_flight{false};
    JobHandle big = bulk.submit(
        FrameKind::kCampaign,
        R"({"design": "lfsr", "device": "campaign", "sample": 6000,)"
        R"( "chunk": 64, "tenant": "bulk", "progress": true,)"
        R"( "progress_every_chunks": 1})",
        [&](const Frame& f) {
          if (f.kind == FrameKind::kProgress) mid_flight = true;
        });
    while (!mid_flight.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ServiceSession interactive = ServiceSession::connect_unix(kSocket);
    for (int i = 0; i < 3; ++i) {
      const Frame reply = interactive.call(
          FrameKind::kCampaign,
          R"({"design": "lfsr", "device": "campaign", "sample": 300,)"
          R"( "tenant": "interactive"})");
      if (reply.kind == FrameKind::kResult) ++interactive_served;
    }
    const Frame big_reply = big.wait();
    if (big_reply.kind == FrameKind::kResult) {
      const FlatJson report = FlatJson::parse(big_reply.payload);
      preempt_resumed = report.get_u64("resumed_injections");
      preempt_digest_match =
          report.get_u64("sensitive_digest") == bulk_digest &&
                  !report.get_bool("interrupted")
              ? 1
              : 0;
    }
    const FlatJson stats = FlatJson::parse(interactive.stats().payload);
    preemptions = stats.get_u64("preemptions");
  }
  std::printf("preempt: bulk campaign yielded %llu time(s), served %llu "
              "interactive jobs, resumed %llu injections, digest %s\n\n",
              static_cast<unsigned long long>(preemptions),
              static_cast<unsigned long long>(interactive_served),
              static_cast<unsigned long long>(preempt_resumed),
              preempt_digest_match != 0 ? "bit-identical" : "MISMATCH");

  BenchJson json;
  json.set("requests", static_cast<double>(requests));
  json.set("results", static_cast<double>(results));
  json.set("wall_s", wall_s);
  json.set("requests_per_s", static_cast<double>(results) / wall_s);
  json.set("latency_p50_ms", p50);
  json.set("latency_p99_ms", p99);
  json.set("ping_us", ping_us);
  json.set("cache_hits", static_cast<double>(cache_hits));
  json.set("burst_served", static_cast<double>(served));
  json.set("burst_busy", static_cast<double>(busy));
  json.set("admission_rejects", static_cast<double>(admission_rejects));
  json.set("churn_clients", static_cast<double>(churn_clients));
  json.set("churn_results", static_cast<double>(churn_results));
  json.set("churn_cancels", static_cast<double>(churn_cancels));
  json.set("churn_digest_mismatches", static_cast<double>(churn_mismatches));
  json.set("churn_p50_ms", churn_p50);
  json.set("churn_p99_ms", churn_p99);
  json.set("churn_jain", churn_jain);
  json.set("preemptions", static_cast<double>(preemptions));
  json.set("preempt_resumed_injections", static_cast<double>(preempt_resumed));
  json.set("preempt_digest_match", static_cast<double>(preempt_digest_match));
  json.write(bench_json_path("BENCH_service.json"));
  std::filesystem::remove_all(kStore);
  std::filesystem::remove_all(kSpool);
}

void BM_FrameEncode(benchmark::State& state) {
  const Frame frame{FrameKind::kCampaign, 42,
                    R"({"design": "lfsrmult", "device": "campaign",)"
                    R"( "sample": 20000, "seed": 99})"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_frame(frame));
  }
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  const std::vector<u8> wire =
      encode_frame({FrameKind::kCampaign, 42,
                    R"({"design": "lfsrmult", "device": "campaign",)"
                    R"( "sample": 20000, "seed": 99})"});
  for (auto _ : state) {
    FrameDecoder decoder;
    decoder.feed(wire);
    Frame out;
    benchmark::DoNotOptimize(decoder.next(&out));
  }
}
BENCHMARK(BM_FrameDecode);

void BM_RequestParse(benchmark::State& state) {
  const std::string text = JsonReport("campaign_request")
                               .set_string("design", "lfsrmult")
                               .set_string("device", "campaign")
                               .set_u64("sample", 20000)
                               .set_u64("seed", 99)
                               .set_bool("persistence", true)
                               .to_json();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatJson::parse(text));
  }
}
BENCHMARK(BM_RequestParse);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
