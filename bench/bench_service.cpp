// E-service — the vscrubd serving layer under concurrent load.
//
// Not a paper experiment: this bench characterizes the PR-5 subsystem that
// turns the workbench into a shared service. It reports (a) end-to-end
// throughput and request latency for a fleet of concurrent loopback clients
// running the standard sampled campaign, (b) how much work the process-wide
// verdict store absorbs across those clients, (c) typed-backpressure behavior
// when the admission queue is deliberately starved, and (d) wire-protocol
// microcosts (frame encode/decode, request parse).
#include <chrono>
#include <filesystem>
#include <thread>

#include "bench_util.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace vscrub::bench {
namespace {

constexpr const char* kSocket = "/tmp/vscrub_bench_svc.sock";
constexpr const char* kStore = "/tmp/vscrub_bench_svc_store";

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start).count();
}

struct RunningServer {
  explicit RunningServer(ServerOptions options) : server(std::move(options)) {
    server.start();
    runner = std::thread([this] { server.run(); });
  }
  ~RunningServer() {
    server.request_stop();
    runner.join();
  }
  SocketServer server;
  std::thread runner;
};

void run_report() {
  std::printf("\nE-service — vscrubd concurrent campaign service\n");
  rule();

  std::filesystem::remove_all(kStore);
  const std::string payload = JsonReport("campaign_request")
                                  .set_string("design", "lfsrmult")
                                  .set_string("device", "campaign")
                                  .set_u64("sample", 1000)
                                  .to_json();

  constexpr std::size_t kClients = 8;
  constexpr int kRequestsPerClient = 2;
  double wall_s = 0.0;
  u64 cache_hits = 0;
  u64 results = 0;
  double p50 = 0.0, p99 = 0.0;
  double ping_us = 0.0;
  {
    ServerOptions options;
    options.socket_path = kSocket;
    options.service.queue_capacity = 32;
    options.service.executors = 3;
    options.service.pool_threads = 3;
    options.service.cache_dir = kStore;
    RunningServer running(options);

    // Ping round-trip cost over the real socket (frame encode + send + server
    // dispatch + reply decode), amortized over many probes.
    {
      ServiceClient client = ServiceClient::connect_unix(kSocket);
      constexpr int kPings = 2000;
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kPings; ++i) client.ping();
      ping_us = seconds_since(start) * 1e6 / kPings;
    }

    std::vector<u64> hits(kClients, 0);
    std::vector<u64> ok(kClients, 0);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        ServiceClient client = ServiceClient::connect_unix(kSocket);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const Frame reply = client.call(FrameKind::kCampaign, payload);
          if (reply.kind != FrameKind::kResult) continue;
          ++ok[c];
          hits[c] += FlatJson::parse(reply.payload).get_u64("cache_hits");
        }
      });
    }
    for (std::thread& t : clients) t.join();
    wall_s = seconds_since(start);
    for (std::size_t c = 0; c < kClients; ++c) {
      cache_hits += hits[c];
      results += ok[c];
    }

    ServiceClient client = ServiceClient::connect_unix(kSocket);
    const FlatJson stats = FlatJson::parse(client.stats().payload);
    p50 = stats.get_double("request_latency_ms_p50");
    p99 = stats.get_double("request_latency_ms_p99");
  }

  const u64 requests = static_cast<u64>(kClients) * kRequestsPerClient;
  std::printf("%zu clients x %d campaigns (sample 1000): %llu/%llu results in "
              "%.2f s (%.1f req/s)\n",
              kClients, kRequestsPerClient,
              static_cast<unsigned long long>(results),
              static_cast<unsigned long long>(requests), wall_s,
              static_cast<double>(results) / wall_s);
  std::printf("request latency p50 %.1f ms, p99 %.1f ms; ping round-trip "
              "%.1f us\n", p50, p99, ping_us);
  std::printf("cross-client verdict reuse: %llu cached verdicts served\n",
              static_cast<unsigned long long>(cache_hits));

  // Backpressure: one executor, a single queue slot, a burst of requests —
  // the excess must come back as typed kBusy, not buffer or block.
  u64 busy = 0;
  u64 served = 0;
  u64 admission_rejects = 0;
  {
    ServerOptions options;
    options.socket_path = kSocket;
    options.service.queue_capacity = 1;
    options.service.executors = 1;
    options.service.pool_threads = 3;
    RunningServer running(options);
    std::vector<std::thread> burst;
    std::vector<u64> was_busy(kClients, 0);
    std::vector<u64> was_served(kClients, 0);
    for (std::size_t c = 0; c < kClients; ++c) {
      burst.emplace_back([&, c] {
        ServiceClient client = ServiceClient::connect_unix(kSocket);
        const Frame reply = client.call(FrameKind::kCampaign, payload);
        if (reply.kind == FrameKind::kBusy) was_busy[c] = 1;
        if (reply.kind == FrameKind::kResult) was_served[c] = 1;
      });
    }
    for (std::thread& t : burst) t.join();
    for (std::size_t c = 0; c < kClients; ++c) {
      busy += was_busy[c];
      served += was_served[c];
    }
    ServiceClient client = ServiceClient::connect_unix(kSocket);
    admission_rejects =
        FlatJson::parse(client.stats().payload).get_u64("admission_rejects");
  }
  std::printf("starved admission (queue 1, 1 executor), %zu-request burst: "
              "%llu served, %llu typed kBusy rejects\n\n",
              kClients, static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(busy));

  BenchJson json;
  json.set("requests", static_cast<double>(requests));
  json.set("results", static_cast<double>(results));
  json.set("wall_s", wall_s);
  json.set("requests_per_s", static_cast<double>(results) / wall_s);
  json.set("latency_p50_ms", p50);
  json.set("latency_p99_ms", p99);
  json.set("ping_us", ping_us);
  json.set("cache_hits", static_cast<double>(cache_hits));
  json.set("burst_served", static_cast<double>(served));
  json.set("burst_busy", static_cast<double>(busy));
  json.set("admission_rejects", static_cast<double>(admission_rejects));
  json.write(bench_json_path("BENCH_service.json"));
  std::filesystem::remove_all(kStore);
}

void BM_FrameEncode(benchmark::State& state) {
  const Frame frame{FrameKind::kCampaign, 42,
                    R"({"design": "lfsrmult", "device": "campaign",)"
                    R"( "sample": 20000, "seed": 99})"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_frame(frame));
  }
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  const std::vector<u8> wire =
      encode_frame({FrameKind::kCampaign, 42,
                    R"({"design": "lfsrmult", "device": "campaign",)"
                    R"( "sample": 20000, "seed": 99})"});
  for (auto _ : state) {
    FrameDecoder decoder;
    decoder.feed(wire);
    Frame out;
    benchmark::DoNotOptimize(decoder.next(&out));
  }
}
BENCHMARK(BM_FrameDecode);

void BM_RequestParse(benchmark::State& state) {
  const std::string text = JsonReport("campaign_request")
                               .set_string("design", "lfsrmult")
                               .set_string("device", "campaign")
                               .set_u64("sample", 20000)
                               .set_u64("seed", 99)
                               .set_bool("persistence", true)
                               .to_json();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatJson::parse(text));
  }
}
BENCHMARK(BM_RequestParse);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
