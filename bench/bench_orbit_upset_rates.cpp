// E9 — §I: expected on-orbit upset rates.
//
// Paper: heavy-ion testing put the Virtex threshold LET at 1.2 MeV·cm²/mg
// with an average saturation cross-section of 8.0e-8 cm²; in LEO "the
// nine-FPGA system ... can be expected to experience radiation-induced
// upsets 1.2 times/hour in low radiation zones and 9.6 times/hour when
// there are solar flares."
#include "bench_util.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE9 — on-orbit upset-rate calibration (§I)\n");
  rule();
  const WeibullCrossSection xs;
  std::printf("Weibull SEU response: threshold LET %.1f MeV·cm²/mg, "
              "sigma_sat %.1e cm²\n",
              xs.threshold_let, xs.sat_cross_section);
  std::printf("  sigma(LET):");
  for (double let : {1.0, 1.5, 2.0, 5.0, 10.0, 40.0, 125.0}) {
    std::printf("  %g→%.2e", let, xs.at(let));
  }
  std::printf("\n");
  rule();

  const auto quiet = OrbitEnvironment::leo_quiet();
  const auto flare = OrbitEnvironment::leo_solar_flare();
  const auto geom = device_xcv1000ish();
  const u64 bits = geom.total_config_bits();
  std::printf("%-18s %16s %16s\n", "environment", "1 device (/h)",
              "9-FPGA system (/h)");
  for (const auto& env : {quiet, flare}) {
    std::printf("%-18s %16.3f %16.2f\n", env.name.c_str(),
                env.device_upsets_per_hour(bits),
                env.system_upsets_per_hour(bits, 9));
  }
  std::printf("(paper: 1.2/h quiet, 9.6/h solar flare for the nine-FPGA "
              "system)\n");
  rule();

  // Poisson expectations over mission horizons.
  std::printf("expected upsets, 9-FPGA system:\n");
  for (double hours : {1.0, 24.0, 24.0 * 7, 24.0 * 365}) {
    std::printf("  %8.0f h:  quiet %8.1f   flare %8.1f\n", hours,
                quiet.system_upsets_per_hour(bits, 9) * hours,
                flare.system_upsets_per_hour(bits, 9) * hours);
  }

  // Empirical check: a scaled mission must observe its predicted rate.
  Workbench bench(campaign_device());
  const PlacedDesign design = bench.compile(designs::counter_adder(12));
  PayloadOptions popts;
  popts.environment.name = "scaled quiet";
  popts.environment.upset_rate_per_bit_s = 3e-7;
  Payload payload(design, popts, {});
  const MissionReport mission = payload.run_mission(SimTime::hours(4));
  std::printf("\nscaled mission check: observed %.2f/h vs predicted %.2f/h "
              "(%llu upsets in 4 h)\n\n",
              mission.observed_upsets_per_hour,
              mission.predicted_upsets_per_hour,
              static_cast<unsigned long long>(mission.upsets_total));
}

void BM_MissionHour(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::counter_adder(12));
  for (auto _ : state) {
    PayloadOptions popts;
    popts.environment.upset_rate_per_bit_s = 3e-7;
    Payload payload(design, popts, {});
    const auto r = payload.run_mission(SimTime::hours(1));
    benchmark::DoNotOptimize(r.upsets_total);
  }
}
BENCHMARK(BM_MissionHour)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
