// E13 (future work) — §IV: "Readback and Reconfiguration: Architectural
// Implications". The paper proposes three device changes; this bench builds
// each and measures what it buys on a design with dynamic LUT state:
//
//   1. shadow readback (dual-ported LUT/BRAM state): no write-during-
//      readback hazard, BRAM output registers survive;
//   2. zeroed dynamic readback: standard per-frame CRC works with no
//      masking, so upsets in previously-masked frames become detectable;
//   3. bit-granular configuration access: repairs touch only corrupted
//      bits, removing the read-modify-write hazard.
#include "bench_util.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE13 (future work) — §IV architecture variants\n");
  rule();
  Workbench bench(campaign_device());
  const PlacedDesign design = bench.compile(designs::fir_preproc(4));
  std::printf("design %s: %zu SRL16 sites (dynamic LUT state)\n",
              design.netlist->name().c_str(), design.dynamic_lut_sites.size());

  // Coverage: fraction of the device's frames a scrubber can check.
  {
    FabricSim base(design.space);
    FlashStore flash(design.bitstream);
    Scrubber baseline(design, base, flash, {});
    ArchVariants zv;
    zv.zeroed_dynamic_readback = true;
    FabricSim zfab(design.space, zv);
    ScrubberOptions zopts;
    zopts.zeroed_dynamic_codebook = true;
    Scrubber zeroed(design, zfab, flash, zopts);
    const u32 total = design.space->frame_count();
    std::printf("\nscrub coverage: baseline %u/%u frames checkable "
                "(%zu masked); zeroed-readback variant %u/%u (%zu masked)\n",
                total - static_cast<u32>(baseline.codebook().masked_count()),
                total, baseline.codebook().masked_count(),
                total - static_cast<u32>(zeroed.codebook().masked_count()),
                total, zeroed.codebook().masked_count());
  }

  // Detection sweep: corrupt random bits inside dynamic-LUT frames; count
  // detections under each scheme.
  {
    Rng rng(17);
    const int trials = 60;
    int base_detected = 0, zero_detected = 0;
    // Enumerate offsets within masked frames that are not dynamic cells.
    std::vector<BitAddress> candidates;
    for (const LutSiteRef& site : design.dynamic_lut_sites) {
      const int slice = site.lut / kLutsPerSlice;
      for (int j = 0; j < kLutTruthBits; j += 5) {
        const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                              static_cast<u16>(slice * kLutTruthBits + j)};
        candidates.push_back(BitAddress{fa, 7});  // non-LUT slot
      }
    }
    for (int trial = 0; trial < trials; ++trial) {
      const BitAddress addr =
          candidates[rng.uniform(candidates.size())];
      {
        FabricSim fabric(design.space);
        DesignHarness harness(design, fabric);
        harness.configure();
        FlashStore flash(design.bitstream);
        Scrubber scrubber(design, fabric, flash, {});
        fabric.flip_config_bit(addr);
        base_detected += scrubber.scrub_pass(&harness).errors_found > 0;
      }
      {
        ArchVariants zv;
        zv.zeroed_dynamic_readback = true;
        FabricSim fabric(design.space, zv);
        DesignHarness harness(design, fabric);
        harness.configure();
        FlashStore flash(design.bitstream);
        ScrubberOptions zopts;
        zopts.zeroed_dynamic_codebook = true;
        Scrubber scrubber(design, fabric, flash, zopts);
        fabric.flip_config_bit(addr);
        zero_detected += scrubber.scrub_pass(&harness).errors_found > 0;
      }
    }
    std::printf("upsets inside dynamic-LUT frames (%d trials): baseline "
                "detects %d, zeroed-readback variant detects %d\n",
                trials, base_detected, zero_detected);
  }

  // Hazard demonstration: readback while the design writes its SRLs.
  {
    for (const bool shadow : {false, true}) {
      ArchVariants variants;
      variants.shadow_readback = shadow;
      FabricSim fabric(design.space, variants);
      DesignHarness harness(design, fabric);
      harness.configure();
      harness.run(24);
      const LutSiteRef site = design.dynamic_lut_sites.front();
      const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                            static_cast<u16>((site.lut / kLutsPerSlice) *
                                             kLutTruthBits)};
      const std::size_t diff = fabric.read_frame(fa, true).hamming_distance(
          fabric.read_frame(fa, false));
      std::printf("%s: clock-running readback differs from stopped readback "
                  "in %zu bit(s)\n",
                  shadow ? "shadow-readback variant " : "baseline (hazard)     ",
                  diff);
    }
  }
  std::printf("(bit-granular repair is exercised in test_arch_variants and "
              "the E10 RMW comparison)\n\n");
}

void BM_ZeroedScrubPass(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::fir_preproc(4));
  static ArchVariants variants = [] {
    ArchVariants v;
    v.zeroed_dynamic_readback = true;
    return v;
  }();
  static FabricSim fabric(design.space, variants);
  static DesignHarness harness(design, fabric);
  static FlashStore flash(design.bitstream);
  static ScrubberOptions options = [] {
    ScrubberOptions o;
    o.zeroed_dynamic_codebook = true;
    return o;
  }();
  static Scrubber scrubber(design, fabric, flash, options);
  static bool init = [] {
    harness.configure();
    return true;
  }();
  (void)init;
  for (auto _ : state) {
    const auto pass = scrubber.scrub_pass(&harness);
    benchmark::DoNotOptimize(pass.frames_checked);
  }
}
BENCHMARK(BM_ZeroedScrubPass)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
