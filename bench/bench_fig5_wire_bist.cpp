// E7 — §II-B / Fig. 5: permanent-fault BIST.
//
// Paper procedure reproduced: one wire-test design, repeatedly partially
// reconfigured — "a total of twenty partial reconfigurations and 40
// readbacks are required to test 80 output wires of each CLB" — plus the
// CLB LFSR-cascade BIST (two complementary placements) and the BRAM
// address-in-data test.
#include "bench_util.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE7 — permanent-fault BIST (Fig. 5)\n");
  rule();
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 12, 2));
  const DeviceGeometry& geom = space->geometry();

  // Clean fabric: the walk must pass with the paper's operation counts.
  {
    FabricSim fabric(space);
    const WireTestResult clean = run_wire_test(space, fabric);
    std::printf("clean device: %s — %d partial reconfigurations, %d "
                "readbacks (paper: 20 and 40), %d wires tested per CLB, "
                "modeled time %.0f ms\n",
                clean.pass() ? "PASS" : "FAIL", clean.partial_reconfigs + 1,
                clean.readbacks, kDirs * kOmuxWiresPerDir,
                clean.modeled_time.ms());
  }

  // Detection/isolation sweep: inject one stuck wire at a time.
  Rng rng(5);
  int detected = 0, isolated = 0;
  const int trials = 24;
  for (int i = 0; i < trials; ++i) {
    FabricSim fabric(space);
    FabricSim::PermanentFault fault;
    fault.kind = rng.bernoulli(0.5) ? FabricSim::StuckKind::kWireStuck1
                                    : FabricSim::StuckKind::kWireStuck0;
    fault.tile = TileCoord{static_cast<u16>(rng.uniform(geom.rows)),
                           static_cast<u16>(rng.uniform(geom.cols))};
    fault.dir = static_cast<Dir>(rng.uniform(kDirs));
    fault.windex = static_cast<u8>(rng.uniform(kOmuxWiresPerDir));
    fabric.inject_permanent_fault(fault);
    const WireTestResult r = run_wire_test(space, fabric);
    if (!r.pass()) {
      ++detected;
      // Isolation: some finding names the faulted wire index and direction.
      for (const auto& f : r.findings) {
        if (f.windex == fault.windex &&
            f.site == static_cast<u8>(fault.dir)) {
          ++isolated;
          break;
        }
      }
    }
  }
  std::printf("stuck-at sweep: %d/%d detected, %d/%d isolated to the "
              "correct wire+direction\n",
              detected, trials, isolated, trials);

  // CLB BIST coverage with the two complementary patterns.
  {
    PnrOptions o1;
    o1.seed = 1;
    PnrOptions o2;
    o2.seed = 424242;
    const auto nl = std::make_shared<const Netlist>(bist_clb_cascade(8, 24));
    const auto p1 = compile(nl, space, o1);
    const auto p2 = compile(nl, space, o2);
    std::printf("CLB BIST patterns: %.0f%% and %.0f%% slice coverage "
                "(complementary placements)\n",
                p1.stats.utilization * 100, p2.stats.utilization * 100);
    // Detection of stuck faults under pattern 1.
    int clb_detected = 0;
    const int clb_trials = 10;
    int tried = 0;
    FabricSim fabric(space);
    for (const RoutedNet& net : p1.routed_nets) {
      if (net.wires.empty() || tried >= clb_trials) continue;
      ++tried;
      fabric.full_configure(p1.bitstream);
      fabric.clear_permanent_faults();
      FabricSim::PermanentFault fault;
      fault.kind = FabricSim::StuckKind::kWireStuck1;
      fault.tile = net.wires[0].tile;
      fault.dir = net.wires[0].dir;
      fault.windex = net.wires[0].windex;
      fabric.inject_permanent_fault(fault);
      if (run_clb_bist(p1, fabric, 400).error_detected) ++clb_detected;
    }
    std::printf("CLB BIST: %d/%d injected faults on pattern nets detected\n",
                clb_detected, tried);
  }

  // BRAM BIST.
  {
    const auto checker =
        compile(std::make_shared<const Netlist>(designs::bram_selftest(2)),
                space, {});
    FabricSim fabric(space);
    fabric.full_configure(checker.bitstream);
    fabric.flip_config_bit(
        BitAddress{FrameAddress{ColumnKind::kBram, checker.brams[0].bram_col,
                                12},
                   static_cast<u32>(checker.brams[0].block) * 64 + 7});
    const BramBistResult r = run_bram_bist(checker, fabric, 400);
    std::printf("BRAM BIST (address-in-data): corruption %s after %llu "
                "cycles\n\n",
                r.error_detected ? "detected" : "NOT detected",
                static_cast<unsigned long long>(r.cycles_to_detect));
  }
}

void BM_WireTestFullWalk(benchmark::State& state) {
  static auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8));
  for (auto _ : state) {
    FabricSim fabric(space);
    const auto r = run_wire_test(space, fabric);
    benchmark::DoNotOptimize(r.readbacks);
  }
}
BENCHMARK(BM_WireTestFullWalk)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
