// E1 — Table I: "SEU Simulator Results for Test Designs".
//
// Paper rows: LFSR{18,36,54,72}, VMULT{18,36,54,72}, MULT{12,24,36,48} with
// logic slices, failures, sensitivity and normalized sensitivity. The paper
// device is an XCV1000 (12288 slices); ours is the 384-slice campaign
// device, with each row's parameters chosen to hit the same utilization
// point. Shape checks (paper):
//   * sensitivity grows ~linearly with size within a family;
//   * normalized sensitivity is ~size-invariant within a family
//     (LFSR 7.3-7.6%, VMULT ~25%, MULT ~22-24%);
//   * multiplier families normalize several times higher than the LFSR.
#include "bench_util.h"

namespace vscrub::bench {
namespace {

constexpr u64 kSample = 6000;

struct TableSpec {
  const char* paper_label;
  const char* scaled_as;
  Netlist (*make)();
};

const std::vector<TableSpec>& specs() {
  static const std::vector<TableSpec> table = {
      // LFSR N: N clusters of six 20-bit LFSRs (paper util 15.8..63.0%).
      {"LFSR 18", "lfsr x1 cluster", [] { return designs::lfsr_cluster(1); }},
      {"LFSR 36", "lfsr x2 clusters", [] { return designs::lfsr_cluster(2); }},
      {"LFSR 54", "lfsr x3 clusters", [] { return designs::lfsr_cluster(3); }},
      {"LFSR 72", "lfsr x4 clusters", [] { return designs::lfsr_cluster(4); }},
      // VMULT N: four-lane dot product, ascending utilization ladder
      // (paper: 4.2..60.1%; compressed upward on the small device).
      {"VMULT 18", "vmult w=4", [] { return designs::vmult(4); }},
      {"VMULT 36", "vmult w=6", [] { return designs::vmult(6); }},
      {"VMULT 54", "vmult w=8", [] { return designs::vmult(8); }},
      {"VMULT 72", "vmult w=10", [] { return designs::vmult(10); }},
      // MULT k: pipelined multiply-add tree (paper util 1.0..16.0%;
      // compressed upward — a 1%-of-device multiplier is sub-minimal here).
      {"MULT 12", "mult_tree w=4", [] { return designs::mult_tree(4); }},
      {"MULT 24", "mult_tree w=6", [] { return designs::mult_tree(6); }},
      {"MULT 36", "mult_tree w=8", [] { return designs::mult_tree(8); }},
      {"MULT 48", "mult_tree w=10", [] { return designs::mult_tree(10); }},
  };
  return table;
}

void run_table() {
  Workbench bench(campaign_device());
  std::vector<SensitivityRow> rows;
  for (const TableSpec& spec : specs()) {
    const PlacedDesign design = bench.compile(spec.make());
    const CampaignResult result = table_campaign(design, kSample, false);
    rows.push_back(
        make_row(spec.paper_label, spec.scaled_as, design, result, false));
  }
  print_sensitivity_table(
      "Table I — SEU simulator results for test designs "
      "(paper: XCV1000; here: 384-slice campaign device, matched utilization)",
      rows);
  std::printf("paper shape: normalized sensitivity ~constant per family; "
              "LFSR ~7.5%%, VMULT ~25%%, MULT ~23%% — multipliers several "
              "times above the LFSR.\n\n");
}

// Microbenchmark: one full injection iteration (corrupt/observe/repair/
// reset) on a mid-size design.
void BM_InjectionIteration(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::mult_tree(8));
  static SeuInjector injector(design, {});
  u64 lin = 1;
  for (auto _ : state) {
    const auto r = injector.inject(
        design.space->address_of_linear(lin % design.space->total_bits()));
    benchmark::DoNotOptimize(r.output_error);
    lin += 7919;
  }
}
BENCHMARK(BM_InjectionIteration)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
