// E3 — Fig. 7: "Errors Induced by Persistent Configuration Bits".
//
// The paper upsets the high bit of a counter around cycle 500: the actual
// counter value diverges from the expected value and never resynchronizes
// after the configuration is repaired — only a reset recovers it. This
// bench finds such a persistent bit with the SEU simulator, replays the
// scenario on the fabric, and prints the expected/actual series.
#include "bench_util.h"

namespace vscrub::bench {
namespace {

u64 outputs_value(const OutputWord& w) { return w.lo; }

void run_figure() {
  Workbench bench(campaign_device());
  const PlacedDesign design = bench.compile(designs::counter_adder(12));

  // Locate a persistent sensitive bit whose first error shows in the
  // counter's high output bits.
  CampaignOptions copts;
  copts.sample_bits = 20000;
  copts.injection.classify_persistence = true;
  const CampaignResult camp = run_campaign(design, copts);
  const CampaignResult::SensitiveBit* chosen = nullptr;
  for (const auto& sb : camp.sensitive_bits) {
    if (sb.persistent && (sb.error_output_mask_lo >> 8) != 0) {
      chosen = &sb;
      break;
    }
  }
  if (chosen == nullptr) {
    for (const auto& sb : camp.sensitive_bits) {
      if (sb.persistent) {
        chosen = &sb;
        break;
      }
    }
  }
  if (chosen == nullptr) {
    std::printf("no persistent bit found (unexpected)\n");
    return;
  }

  // Replay: run clean to cycle 500, upset, observe divergence, repair at
  // ~cycle 540 (scrub), observe the error persist, reset at cycle 580.
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  const auto golden = DesignHarness::reference_trace(*design.netlist, 700);

  std::printf("\nFig. 7 — errors induced by a persistent configuration bit\n");
  std::printf("(upset injected at cycle 500, configuration repaired at 540, "
              "reset at 580)\n");
  rule();
  std::printf("%8s %14s %14s %s\n", "cycle", "expected", "actual", "match");
  rule();

  auto show = [&](u64 cycle) {
    const u64 want = outputs_value(golden[cycle - 1]);
    const u64 got = outputs_value(harness.last_outputs());
    std::printf("%8llu %14llu %14llu %s\n",
                static_cast<unsigned long long>(cycle),
                static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(got),
                want == got ? "yes" : "NO  <--");
  };

  while (harness.cycle() < 498) harness.step();
  for (int i = 0; i < 2; ++i) {
    harness.step();
    show(harness.cycle());
  }
  // Upset (partial reconfiguration with the corrupted frame).
  {
    BitVector img = design.bitstream.frame(chosen->addr.frame);
    img.flip(chosen->addr.offset);
    fabric.write_frame(chosen->addr.frame, img);
  }
  std::printf("%8s --- SEU: configuration bit upset ---\n", "");
  while (harness.cycle() < 540) {
    harness.step();
    if (harness.cycle() % 8 == 4) show(harness.cycle());
  }
  fabric.write_frame(chosen->addr.frame,
                     design.bitstream.frame(chosen->addr.frame));
  std::printf("%8s --- scrub: frame repaired (no reset) ---\n", "");
  u64 persist_mismatch = 0;
  while (harness.cycle() < 580) {
    harness.step();
    if (!(outputs_value(harness.last_outputs()) ==
          outputs_value(golden[harness.cycle() - 1]))) {
      ++persist_mismatch;
    }
    if (harness.cycle() % 8 == 4) show(harness.cycle());
  }
  harness.restart();
  std::printf("%8s --- reset: design resynchronized ---\n", "");
  bool resync_ok = true;
  for (int t = 0; t < 40; ++t) {
    harness.step();
    resync_ok = resync_ok && harness.last_outputs() ==
                                 golden[static_cast<std::size_t>(t)];
  }
  rule();
  std::printf("mismatched cycles after repair without reset: %llu / 40 "
              "(paper: \"the actual counter value never matches... the "
              "design must be reset\")\n",
              static_cast<unsigned long long>(persist_mismatch));
  std::printf("after reset, output matches golden: %s\n\n",
              resync_ok ? "yes" : "NO");
}

void BM_PersistenceReplay(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::counter_adder(8));
  static FabricSim fabric(design.space);
  static DesignHarness harness(design, fabric);
  static bool configured = [] {
    harness.configure();
    return true;
  }();
  (void)configured;
  for (auto _ : state) {
    harness.step();
    benchmark::DoNotOptimize(harness.last_outputs());
  }
}
BENCHMARK(BM_PersistenceReplay)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
