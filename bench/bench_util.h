// Shared helpers for the experiment-reproduction benches.
//
// Every bench binary does two things:
//  1. Reproduces its paper table/figure, printing the same rows/series the
//     paper reports (shape comparison, not absolute numbers — see
//     EXPERIMENTS.md).
//  2. Registers google-benchmark microbenchmarks for the kernel it exercises.
//
// The campaign device is a scaled-down part ("campaign device"); design
// sizes are chosen so the *device utilization* of each row matches the
// paper's Table I/II utilization points, which is the quantity sensitivity
// actually depends on (the paper itself normalizes by area).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/vscrub.h"

namespace vscrub::bench {

/// The standard campaign device: 192 CLBs / 384 slices.
inline DeviceGeometry campaign_device() { return device_tiny(12, 16); }

/// Row of a Table-I-style report.
struct SensitivityRow {
  std::string label;        ///< paper design name
  std::string scaled_as;    ///< our scaled instantiation
  std::size_t slices = 0;
  double utilization = 0.0;
  u64 injections = 0;
  u64 failures = 0;
  double sensitivity = 0.0;
  double normalized = 0.0;
  double persistence = -1.0;  ///< <0: not classified
};

void print_sensitivity_table(const char* title,
                             const std::vector<SensitivityRow>& rows);

/// Standard sampled campaign for the table benches.
CampaignResult table_campaign(const PlacedDesign& design, u64 sample_bits,
                              bool persistence);

inline SensitivityRow make_row(const char* paper_label, const char* scaled_as,
                               const PlacedDesign& design,
                               const CampaignResult& result,
                               bool with_persistence) {
  SensitivityRow row;
  row.label = paper_label;
  row.scaled_as = scaled_as;
  row.slices = design.stats.slices_used;
  row.utilization = design.stats.utilization;
  row.injections = result.injections;
  row.failures = result.failures;
  row.sensitivity = result.sensitivity();
  row.normalized = result.normalized_sensitivity();
  if (with_persistence) row.persistence = result.persistence_ratio();
  return row;
}

/// Separator line for bench stdout reports.
inline void rule() {
  std::printf("────────────────────────────────────────────────────────────"
              "────────────────────\n");
}

/// Machine-readable bench output: an ordered flat map of numeric metrics,
/// written as a single JSON object. CI runs the bench binaries in Release and
/// uploads these files as artifacts, so the performance trajectory is tracked
/// per commit instead of living only in scrollback.
class BenchJson {
 public:
  void set(const std::string& key, double value);
  /// Writes `{"key": value, ...}` to `path` (overwrites). Returns false and
  /// warns on stderr if the file cannot be written; benches keep going.
  bool write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, double>> fields_;
};

/// Resolves a bench's JSON output path: $VSCRUB_BENCH_JSON_DIR/<name> when the
/// environment variable is set, plain <name> (cwd) otherwise.
std::string bench_json_path(const std::string& name);

}  // namespace vscrub::bench
