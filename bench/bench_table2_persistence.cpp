// E2 — Table II: persistence of SEU-induced errors per design class.
//
// Paper rows (sensitivity, persistence ratio):
//   54 Multiply-Add   8.87%   0%      (feed-forward: errors flush out)
//   36 Counter/Adder  0.09%   9.88%   (small, state feedback in the counter)
//   72 LFSR           4.2%    93.9%   (feedback everywhere: almost all
//                                      errors latch into state)
//   LFSR Multiplier   6.4%    15.0%
//   Filter Preproc.   9.5%    1.2%
// Shape check: multiply-add ~0 << filter preproc < counter/adder <
// lfsr-multiplier << LFSR.
#include "bench_util.h"

namespace vscrub::bench {
namespace {

constexpr u64 kSample = 6000;

void run_table() {
  Workbench bench(campaign_device());
  struct Spec {
    const char* label;
    const char* scaled;
    Netlist nl;
  };
  std::vector<Spec> specs;
  specs.push_back({"54 Mult-Add", "multiply_add w=8", designs::multiply_add(8)});
  specs.push_back({"36 Ctr/Adder", "counter_adder w=12", designs::counter_adder(12)});
  specs.push_back({"72 LFSR", "lfsr x3 clusters", designs::lfsr_cluster(3)});
  specs.push_back({"LFSR Mult", "lfsr_multiplier w=10", designs::lfsr_multiplier(10)});
  specs.push_back({"Filter Prep", "fir_preproc taps=4", designs::fir_preproc(4)});

  std::vector<SensitivityRow> rows;
  for (auto& spec : specs) {
    const PlacedDesign design = bench.compile(std::move(spec.nl));
    const CampaignResult result = table_campaign(design, kSample, true);
    rows.push_back(make_row(spec.label, spec.scaled, design, result, true));
  }
  print_sensitivity_table(
      "Table II — persistence of SEU-induced errors (persistent bits per "
      "sensitive bit)",
      rows);
  std::printf("paper shape: Mult-Add 0%% << Filter 1.2%% < Ctr/Adder 9.9%% < "
              "LFSR-Mult 15%% << LFSR 93.9%%.\n\n");
}

// Microbenchmark: persistence-classified injection (the expensive variant).
void BM_PersistenceInjection(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::lfsr_cluster(1));
  static SeuInjector injector(design, [] {
    InjectionOptions o;
    o.classify_persistence = true;
    return o;
  }());
  u64 lin = 3;
  for (auto _ : state) {
    const auto r = injector.inject(
        design.space->address_of_linear(lin % design.space->total_bits()));
    benchmark::DoNotOptimize(r.persistent);
    lin += 104729;
  }
}
BENCHMARK(BM_PersistenceInjection)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
