// E8 — §III-A / Fig. 8: fault-injection throughput.
//
// Paper numbers reproduced:
//   * "a single bit can be modified and loaded in 100 us";
//   * one corrupt/observe/repair loop iteration takes ~214 us;
//   * "exhaustively test the entire bitstream of 5.8 million bits in 20
//     minutes";
//   * "many orders of magnitude speed-up over purely software techniques" —
//     here inverted: we report how much slower our software fabric model is
//     than the modeled SLAAC-1V hardware, which is exactly the speed-up a
//     hardware testbed buys.
#include <algorithm>
#include <cstdlib>

#include "bench_util.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE8 — injection throughput (Fig. 8 loop)\n");
  rule();

  // Modeled SLAAC-1V timing on the real-geometry device.
  const auto big = compile(designs::counter_adder(4), device_xcv1000ish());
  SeuInjector big_injector(big, {});
  const double iter_us = big_injector.modeled_iteration_time().us();
  const double bits = static_cast<double>(big.space->total_bits());
  std::printf("XCV1000-class device: %.2f M configuration bits "
              "(paper: 5.8 M)\n", bits / 1e6);
  std::printf("modeled loop iteration: %.0f us  (paper: ~214 us)\n", iter_us);
  std::printf("modeled single-bit modify+load: %.0f us  (paper: ~100 us)\n",
              SelectMapTiming::pci_profile()
                  .frame_op(big.space->geometry().clb_frame_bytes())
                  .us());
  std::printf("exhaustive campaign, modeled: %.1f minutes  (paper: ~20 min)\n",
              bits * iter_us / 60e6);

  // Software wall-clock on the campaign device: the scalar loop, the seed
  // u64 gang engine, and the wide-word engines (256/512 lanes + compiled
  // eval plan), all over the identical sampled workload. Sensitive-bit
  // recording stays on so every engine's digest can be compared: the width
  // sweep is only a valid speedup claim if the verdicts are bit-identical.
  Workbench bench(campaign_device());
  const PlacedDesign design = bench.compile(designs::mult_tree(8));
  auto sampled = [&](u32 gang_width, const char* gang_isa, bool gang_plan) {
    CampaignOptions copts;
    copts.sample_bits = 6000;
    // Auto-chunking splits a sample this small into 64-bit chunks, which
    // starves the wide engines (a 512-lane dispatch would never see more
    // than ~20 candidates). Fixed 2048-bit chunks keep several hundred
    // eligible bits per batch so lane occupancy reflects the engine, not
    // the scheduler. Chunking never changes results, only wall clock.
    copts.chunk_size = 2048;
    copts.injection.gang_width = gang_width;
    copts.injection.gang_isa = gang_isa;
    copts.injection.gang_plan = gang_plan;
    return run_campaign(design, copts);
  };
  const CampaignResult scalar_camp = sampled(1, "auto", true);
  // The pre-wide baseline: u64 words, interpreted settles (what the seed
  // engine shipped). The >=4x CI gate measures the wide engines against it.
  const CampaignResult u64_camp = sampled(64, "scalar", false);
  const CampaignResult camp = sampled(64, "auto", true);
  const CampaignResult w256_camp = sampled(256, "auto", true);
  const CampaignResult w512_camp = sampled(512, "auto", true);
  const double scalar_us_per_bit = scalar_camp.wall_seconds * 1e6 /
                                   static_cast<double>(scalar_camp.injections);
  const double sw_us_per_bit =
      camp.wall_seconds * 1e6 / static_cast<double>(camp.injections);
  const double early_exit_rate =
      camp.phases.gang_runs > 0
          ? static_cast<double>(camp.phases.gang_early_exits) /
                static_cast<double>(camp.phases.gang_runs)
          : 0.0;
  const double lanes_per_run =
      camp.phases.gang_runs > 0
          ? static_cast<double>(camp.phases.gang_lanes) /
                static_cast<double>(camp.phases.gang_runs)
          : 0.0;
  const auto rate = [](const CampaignResult& r) {
    return static_cast<double>(r.injections) / r.wall_seconds;
  };
  // Gang-phase throughput: candidate lanes retired per second of wall clock
  // spent inside gang dispatches. The campaign-level bits/s above mixes in
  // the scalar-path bits (pruned short-circuits, BRAM columns) and the
  // corrupt/repair bookkeeping, which the engine width cannot touch — this
  // is the number the width sweep actually accelerates, so the CI speedup
  // gate reads it.
  const auto gang_rate = [](const CampaignResult& r) {
    return r.phases.gang_s > 0.0
               ? static_cast<double>(r.phases.gang_lanes) / r.phases.gang_s
               : 0.0;
  };
  const u64 want_digest = scalar_camp.sensitive_digest(design);
  const bool digests_match = want_digest == u64_camp.sensitive_digest(design) &&
                             want_digest == camp.sensitive_digest(design) &&
                             want_digest == w256_camp.sensitive_digest(design) &&
                             want_digest == w512_camp.sensitive_digest(design);
  rule();
  std::printf("software fabric model, scalar loop: %.0f us per injected bit\n",
              scalar_us_per_bit);
  std::printf("software fabric model, gang engine: %.0f us per injected bit "
              "(%.1fx; %.1f lanes/run, %.0f%% early exit)\n",
              sw_us_per_bit, scalar_us_per_bit / sw_us_per_bit, lanes_per_run,
              early_exit_rate * 100);
  std::printf("width sweep (same workload, digests %s; gang-phase rate = "
              "lanes retired per second inside gang dispatches):\n",
              digests_match ? "identical" : "DIVERGED");
  std::printf("  u64 interpreted (seed engine): %7.0f bits/s  gang %7.0f "
              "lanes/s\n",
              rate(u64_camp), gang_rate(u64_camp));
  std::printf("  64-lane + eval plan:           %7.0f bits/s  gang %7.0f "
              "lanes/s (%.1fx)\n",
              rate(camp), gang_rate(camp),
              gang_rate(camp) / gang_rate(u64_camp));
  std::printf("  256-lane + eval plan:          %7.0f bits/s  gang %7.0f "
              "lanes/s (%.1fx)\n",
              rate(w256_camp), gang_rate(w256_camp),
              gang_rate(w256_camp) / gang_rate(u64_camp));
  std::printf("  512-lane + eval plan:          %7.0f bits/s  gang %7.0f "
              "lanes/s (%.1fx)\n",
              rate(w512_camp), gang_rate(w512_camp),
              gang_rate(w512_camp) / gang_rate(u64_camp));
  if (sw_us_per_bit >= iter_us) {
    std::printf("hardware-testbed speed-up implied: %.0fx per bit — and the\n"
                "paper's comparison point, gate-level software simulation of\n"
                "a V1000-scale design, is orders of magnitude slower still.\n",
                sw_us_per_bit / iter_us);
  } else {
    std::printf("the ganged software model now retires a bit every %.0f us —\n"
                "%.1fx faster than the modeled %.0f us hardware iteration,\n"
                "whose loop is SelectMAP-transfer-bound, not compute-bound.\n",
                sw_us_per_bit, iter_us / sw_us_per_bit, iter_us);
  }
  std::printf("exhaustive XCV1000 campaign at software speed: %.1f minutes vs "
              "%.1f minutes in modeled hardware\n\n",
              bits * sw_us_per_bit / 60e6, bits * iter_us / 60e6);

  BenchJson json;
  json.set("injections", static_cast<double>(camp.injections));
  json.set("wall_s", camp.wall_seconds);
  json.set("bits_per_s",
           static_cast<double>(camp.injections) / camp.wall_seconds);
  json.set("scalar_wall_s", scalar_camp.wall_seconds);
  json.set("scalar_bits_per_s", static_cast<double>(scalar_camp.injections) /
                                    scalar_camp.wall_seconds);
  json.set("gang_speedup", scalar_camp.wall_seconds / camp.wall_seconds);
  json.set("gang_runs", static_cast<double>(camp.phases.gang_runs));
  json.set("gang_lanes_per_run", lanes_per_run);
  json.set("gang_early_exit_rate", early_exit_rate);
  json.set("gang_fallbacks", static_cast<double>(camp.phases.gang_fallbacks));
  // Width-sweep keys the CI gate reads: the best wide engine's gang-phase
  // throughput must be >= 4x the seed u64 engine's, with every engine's
  // sensitive digest identical (a speedup that changes verdicts is a bug,
  // not a speedup).
  json.set("u64_bits_per_s", rate(u64_camp));
  json.set("w64_plan_bits_per_s", rate(camp));
  json.set("w256_bits_per_s", rate(w256_camp));
  json.set("w512_bits_per_s", rate(w512_camp));
  json.set("wide_bits_per_s", std::max(rate(w256_camp), rate(w512_camp)));
  json.set("u64_gang_lanes_per_s", gang_rate(u64_camp));
  json.set("w64_plan_gang_lanes_per_s", gang_rate(camp));
  json.set("w256_gang_lanes_per_s", gang_rate(w256_camp));
  json.set("w512_gang_lanes_per_s", gang_rate(w512_camp));
  const double wide_gang =
      std::max(gang_rate(w256_camp), gang_rate(w512_camp));
  json.set("wide_gang_lanes_per_s", wide_gang);
  json.set("wide_speedup_vs_u64", wide_gang / gang_rate(u64_camp));
  json.set("digest_match", digests_match ? 1.0 : 0.0);
  json.write(bench_json_path("BENCH_injection.json"));

  // Full exhaustive sweep of an XCV50-class part — the acceptance workload
  // for the incremental-repair + observability-pruning engine. Takes tens of
  // minutes of host time, so it only runs when asked:
  //   VSCRUB_E8_EXHAUSTIVE=1 ./bench_fig8_injection_throughput
  if (const char* gate = std::getenv("VSCRUB_E8_EXHAUSTIVE");
      gate != nullptr && gate[0] == '1') {
    std::printf("exhaustive XCV50-class campaign (VSCRUB_E8_EXHAUSTIVE)\n");
    rule();
    // VSCRUB_E8_GANG_WIDTH=1 runs the scalar baseline for comparison.
    u32 xgang = 64;
    if (const char* gw = std::getenv("VSCRUB_E8_GANG_WIDTH"); gw != nullptr) {
      xgang = static_cast<u32>(std::strtoul(gw, nullptr, 10));
    }
    Workbench xbench(device_xcv50ish());
    const PlacedDesign xdesign = xbench.compile(designs::mult_tree(8));
    const CampaignOptions xopts =
        CampaignOptions{}.with_exhaustive().with_injection(
            InjectionOptions{}.with_persistence().with_gang_width(xgang));
    const CampaignResult r = xbench.campaign(xdesign, xopts);
    // Order-independent digest of (bit, persistence) pairs: two engines
    // agree on results iff they agree on this hash.
    u64 h = 1469598103934665603ull;
    for (const auto& sb : r.sensitive_bits) {
      const u64 v =
          xdesign.space->linear_of(sb.addr) * 2 + (sb.persistent ? 1 : 0);
      h = (h ^ v) * 1099511628211ull;
    }
    std::printf("injections %llu, failures %llu, persistent %llu, pruned "
                "%llu\n",
                static_cast<unsigned long long>(r.injections),
                static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(r.persistent),
                static_cast<unsigned long long>(r.pruned));
    std::printf("result hash %016llx\n", static_cast<unsigned long long>(h));
    std::printf("wall %.1f s (%.1f us per bit); phases: corrupt %.1f s, run "
                "%.1f s, repair %.1f s, persistence %.1f s\n",
                r.wall_seconds,
                r.wall_seconds * 1e6 / static_cast<double>(r.injections),
                r.phases.corrupt_s, r.phases.run_s, r.phases.repair_s,
                r.phases.persist_s);
    if (r.phases.gang_runs > 0) {
      std::printf("gang: %llu runs, %.1f lanes/run, %.1f%% early exit, %llu "
                  "fallbacks\n",
                  static_cast<unsigned long long>(r.phases.gang_runs),
                  static_cast<double>(r.phases.gang_lanes) /
                      static_cast<double>(r.phases.gang_runs),
                  100.0 * static_cast<double>(r.phases.gang_early_exits) /
                      static_cast<double>(r.phases.gang_runs),
                  static_cast<unsigned long long>(r.phases.gang_fallbacks));
    }
    std::printf("\n");
    BenchJson xjson;
    xjson.set("gang_width", static_cast<double>(xgang));
    xjson.set("injections", static_cast<double>(r.injections));
    xjson.set("failures", static_cast<double>(r.failures));
    xjson.set("persistent", static_cast<double>(r.persistent));
    xjson.set("result_hash", static_cast<double>(h >> 12));  // 52-bit-safe
    xjson.set("wall_s", r.wall_seconds);
    xjson.set("bits_per_s",
              static_cast<double>(r.injections) / r.wall_seconds);
    xjson.write(bench_json_path("BENCH_injection_exhaustive.json"));
  }
}

void BM_CorruptRepairOnly(benchmark::State& state) {
  // The configuration-port half of the loop (no design execution).
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::mult_tree(8));
  static FabricSim fabric(design.space);
  static bool init = [] {
    fabric.full_configure(design.bitstream);
    return true;
  }();
  (void)init;
  u64 lin = 17;
  for (auto _ : state) {
    const BitAddress addr =
        design.space->address_of_linear(lin % design.space->total_bits());
    fabric.flip_config_bit(addr);
    fabric.flip_config_bit(addr);
    lin += 7919;
  }
}
BENCHMARK(BM_CorruptRepairOnly)->Unit(benchmark::kMicrosecond);

void BM_DesignCycle(benchmark::State& state) {
  // One design clock cycle on the fabric (the observation window's unit).
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::mult_tree(8));
  static FabricSim fabric(design.space);
  static DesignHarness harness(design, fabric);
  static bool init = [] {
    harness.configure();
    return true;
  }();
  (void)init;
  for (auto _ : state) {
    harness.step();
    benchmark::DoNotOptimize(harness.last_outputs());
  }
}
BENCHMARK(BM_DesignCycle)->Unit(benchmark::kMicrosecond);

void BM_FullConfigure(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::mult_tree(8));
  static FabricSim fabric(design.space);
  for (auto _ : state) {
    fabric.full_configure(design.bitstream);
    benchmark::DoNotOptimize(fabric.active_tile_count());
  }
}
BENCHMARK(BM_FullConfigure)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
