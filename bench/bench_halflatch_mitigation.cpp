// E6 — §III-C / Figs. 13-14: half-latch upsets and RadDRC mitigation.
//
// Paper claims reproduced:
//   * half-latch upsets are invisible to readback and survive partial
//     reconfiguration; only full reconfiguration restores them;
//   * "Mitigated designs were found to be 100X [more] resistant to failure
//     than unmitigated designs" under beam testing.
#include "bench_util.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE6 — half-latch vulnerability and RadDRC mitigation\n");
  rule();

  Workbench bench(campaign_device());
  PnrOptions plain;
  const PlacedDesign unmitigated =
      bench.compile(designs::lfsr_cluster(2), plain);
  PnrOptions raddrc;
  raddrc.halflatch_policy = HalfLatchPolicy::kLutRomConstants;
  const PlacedDesign mitigated =
      bench.compile(designs::lfsr_cluster(2), raddrc);

  const RadDrcReport before = raddrc_analyze(unmitigated);
  const RadDrcReport after = raddrc_analyze(mitigated);
  std::printf("%-22s %10s %14s\n", "", "critical", "non-critical");
  std::printf("%-22s %10zu %14zu\n", "unmitigated (CAD-like)",
              before.critical_uses, before.noncritical_uses);
  std::printf("%-22s %10zu %14zu\n", "RadDRC (LUT-ROM)", after.critical_uses,
              after.noncritical_uses);

  // Half-latch upset trials: random strikes, full reconfig between trials.
  const u64 trials = 3000;
  const auto base = halflatch_upset_trial(unmitigated, trials);
  const auto fixed = halflatch_upset_trial(mitigated, trials);
  rule();
  std::printf("upset trials (%llu strikes each):\n",
              static_cast<unsigned long long>(trials));
  std::printf("  unmitigated failure rate: %.3f%%  (%llu failures)\n",
              base.failure_rate() * 100,
              static_cast<unsigned long long>(base.output_failures));
  std::printf("  mitigated failure rate:   %.3f%%  (%llu failures)\n",
              fixed.failure_rate() * 100,
              static_cast<unsigned long long>(fixed.output_failures));
  if (fixed.output_failures == 0) {
    std::printf("  improvement: > %llux (no mitigated failures in %llu "
                "trials; paper: ~100x)\n",
                static_cast<unsigned long long>(base.output_failures),
                static_cast<unsigned long long>(trials));
  } else {
    std::printf("  improvement: %.0fx (paper: ~100x)\n",
                base.failure_rate() / fixed.failure_rate());
  }

  // Beam sessions biased onto hidden state (the half-latch test campaigns
  // of [13]): same design compiled both ways under the same beam.
  BeamOptions bopts;
  bopts.hidden_state_fraction = 1.0;
  bopts.config_logic_fraction = 0.0;
  bopts.target_upsets_per_observation = 2.0;
  const u64 observations = 600;
  BeamSession unmit_session(unmitigated, bopts);
  const BeamResult unmit = unmit_session.run(observations, {});
  BeamSession mit_session(mitigated, bopts);
  const BeamResult mit = mit_session.run(observations, {});
  rule();
  std::printf("hidden-state beam (%llu observations, ~2 strikes each):\n",
              static_cast<unsigned long long>(observations));
  std::printf("  unmitigated: %llu output-error observations\n",
              static_cast<unsigned long long>(unmit.output_error_observations));
  std::printf("  mitigated:   %llu output-error observations\n",
              static_cast<unsigned long long>(mit.output_error_observations));
  std::printf("\n");
}

void BM_HalfLatchFlip(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::lfsr_cluster(1));
  static FabricSim fabric(design.space);
  static bool init = [] {
    fabric.full_configure(design.bitstream);
    return true;
  }();
  (void)init;
  Rng rng(3);
  const DeviceGeometry& geom = design.space->geometry();
  for (auto _ : state) {
    const TileCoord t =
        geom.tile_coord(static_cast<u32>(rng.uniform(geom.tile_count())));
    const u8 pin = static_cast<u8>(rng.uniform(kImuxPins));
    fabric.flip_halflatch(t, pin);
    fabric.flip_halflatch(t, pin);
    benchmark::DoNotOptimize(fabric.halflatch(t, pin));
  }
}
BENCHMARK(BM_HalfLatchFlip)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
