// E10 — §II-C / §IV: the limitations of readback-based techniques.
//
// Reproduced behaviours:
//   * a LUT used as SRL16/RAM16 must not be written during readback — doing
//     so corrupts the readback data (§IV-A);
//   * masking: using LUT memory in one slice makes 16 of the 48 frames of
//     that CLB column unreadable, both slices 32 of 48 (§IV-A);
//   * BRAM readback corrupts the block's output register (§IV-A);
//   * plain frame repair clobbers live SRL contents; read-modify-write
//     repair preserves them (§IV-B).
#include "bench_util.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE10 — readback limitations (§II-C, §IV)\n");
  rule();

  Workbench bench(campaign_device());
  const PlacedDesign fir = bench.compile(designs::fir_preproc(4));

  // 1. Frame masking arithmetic.
  {
    FabricSim fabric(fir.space);
    FlashStore flash(fir.bitstream);
    Scrubber scrubber(fir, fabric, flash, {});
    // Columns with dynamic slices and how many frames are masked in each.
    std::unordered_map<u16, std::unordered_set<int>> slices_per_col;
    for (const LutSiteRef& site : fir.dynamic_lut_sites) {
      slices_per_col[site.tile.col].insert(site.lut / kLutsPerSlice);
    }
    std::printf("design %s uses %zu SRL16 sites across %zu columns\n",
                fir.netlist->name().c_str(), fir.dynamic_lut_sites.size(),
                slices_per_col.size());
    std::size_t one_slice = 0, two_slice = 0;
    for (const auto& [col, slices] : slices_per_col) {
      (slices.size() == 1 ? one_slice : two_slice) += 1;
    }
    std::printf("masked frames per affected column: %zu columns at 16/48, "
                "%zu columns at 32/48 (paper: \"16 out of the 48\" / \"32 "
                "out of the 48\")\n",
                one_slice, two_slice);
    std::printf("codebook masks %zu of %u frames in total\n",
                scrubber.codebook().masked_count(), fir.space->frame_count());
  }

  // 2. Write-during-readback hazard.
  {
    FabricSim fabric(fir.space);
    DesignHarness harness(fir, fabric);
    harness.configure();
    harness.run(24);  // SRLs are now shifting with CE enabled
    const LutSiteRef site = fir.dynamic_lut_sites.front();
    const int slice = site.lut / kLutsPerSlice;
    const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                          static_cast<u16>(slice * kLutTruthBits)};
    const BitVector stopped = fabric.read_frame(fa, /*clock_running=*/false);
    const BitVector running = fabric.read_frame(fa, /*clock_running=*/true);
    std::printf("\nLUT-RAM readback hazard: frame read with clock stopped "
                "vs running differs in %zu bit(s) (write-enabled SRL sites "
                "corrupt on readback)\n",
                stopped.hamming_distance(running));
  }

  // 3. BRAM output-register corruption on readback.
  {
    auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 12, 2));
    const auto checker = compile(
        std::make_shared<const Netlist>(designs::bram_selftest(1)), space, {});
    FabricSim fabric(space);
    DesignHarness harness(checker, fabric);
    harness.configure();
    harness.run(10);
    const u16 before =
        fabric.bram_dout(checker.brams[0].bram_col, checker.brams[0].block);
    fabric.read_frame(FrameAddress{ColumnKind::kBram,
                                   checker.brams[0].bram_col, 0});
    const u16 after =
        fabric.bram_dout(checker.brams[0].bram_col, checker.brams[0].block);
    std::printf("BRAM readback corrupts the output register: dout 0x%04x -> "
                "0x%04x\n", before, after);
  }

  // 4. Plain repair vs read-modify-write over live SRL frames.
  {
    std::printf("\nrepair of a dynamic-state frame while the design runs:\n");
    for (const bool rmw : {false, true}) {
      FabricSim fabric(fir.space);
      DesignHarness harness(fir, fabric);
      harness.configure();
      harness.run(40);
      const LutSiteRef site = fir.dynamic_lut_sites.front();
      const int slice = site.lut / kLutsPerSlice;
      // Read live contents, then "repair" the 16 LUT frames of the column.
      const u16 live_before = [&] {
        u16 v = 0;
        for (int j = 0; j < kLutTruthBits; ++j) {
          const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                                static_cast<u16>(slice * kLutTruthBits + j)};
          const u32 offset =
              static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
              static_cast<u32>(site.lut % kLutsPerSlice);
          if (fabric.read_frame(fa).get(offset)) v |= static_cast<u16>(1 << j);
        }
        return v;
      }();
      for (int j = 0; j < kLutTruthBits; ++j) {
        const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                              static_cast<u16>(slice * kLutTruthBits + j)};
        BitVector golden = fir.bitstream.frame(fa);
        if (rmw) {
          const BitVector live = fabric.read_frame(fa);
          const u32 offset =
              static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
              static_cast<u32>(site.lut % kLutsPerSlice);
          golden.set(offset, live.get(offset));
        }
        fabric.write_frame(fa, golden);
      }
      const u16 live_after = [&] {
        u16 v = 0;
        for (int j = 0; j < kLutTruthBits; ++j) {
          const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                                static_cast<u16>(slice * kLutTruthBits + j)};
          const u32 offset =
              static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
              static_cast<u32>(site.lut % kLutsPerSlice);
          if (fabric.read_frame(fa).get(offset)) v |= static_cast<u16>(1 << j);
        }
        return v;
      }();
      std::printf("  %s repair: SRL contents 0x%04x -> 0x%04x (%s)\n",
                  rmw ? "read-modify-write" : "plain            ",
                  live_before, live_after,
                  live_before == live_after ? "preserved" : "CLOBBERED");
    }
  }
  std::printf("\n");
}

void BM_ReadFrame(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::fir_preproc(4));
  static FabricSim fabric(design.space);
  static bool init = [] {
    fabric.full_configure(design.bitstream);
    return true;
  }();
  (void)init;
  u32 gf = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fabric.read_frame(design.space->frame_of_global(gf), true));
    gf = (gf + 1) % design.space->frame_count();
  }
}
BENCHMARK(BM_ReadFrame)->Unit(benchmark::kMicrosecond);

void BM_WriteFrame(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::fir_preproc(4));
  static FabricSim fabric(design.space);
  static bool init = [] {
    fabric.full_configure(design.bitstream);
    return true;
  }();
  (void)init;
  u32 gf = 0;
  for (auto _ : state) {
    fabric.write_frame(design.space->frame_of_global(gf),
                       design.bitstream.frame(gf));
    gf = (gf + 1) % design.space->frame_count();
  }
}
BENCHMARK(BM_WriteFrame)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
