// E5 — §III-B / Figs. 11-12: SEU-simulator validation against proton-beam
// testing. The paper: "Analysis of the log data showed a 97.6% correlation
// between output errors discovered through radiation testing and output
// errors predicted by the simulator."
//
// Mechanism reproduced here: the simulator predicts every *configuration*
// bit's effect; the beam also strikes hidden state (half-latches, config
// control logic — 0.42% of the sensitive cross-section) that the simulator
// cannot reach, and those strikes produce the unpredicted residue.
//
// To keep the bench affordable the campaign and beam share a sampled
// configuration-bit universe (statistically equivalent to exhaustive; see
// BeamSession::run docs).
#include "bench_util.h"

namespace vscrub::bench {
namespace {

constexpr u64 kUniverse = 20000;
constexpr u64 kObservations = 4000;

void run_validation() {
  Workbench bench(campaign_device());
  const PlacedDesign design = bench.compile(designs::multiply_add(8));

  // 1. SEU-simulator campaign over a sampled bit universe.
  CampaignOptions copts;
  copts.sample_bits = kUniverse;
  copts.record_sampled_bits = true;
  const CampaignResult camp = run_campaign(design, copts);
  const auto predicted = camp.sensitive_set(design);
  const std::vector<u64>& universe = camp.sampled_bits;
  std::printf("\nE5 — SEU-simulator validation against the proton beam\n");
  rule();
  std::printf("design %s: sensitivity %.2f%% over %llu-bit universe\n",
              design.netlist->name().c_str(), camp.sensitivity() * 100,
              static_cast<unsigned long long>(kUniverse));

  // 2. Beam session. The hidden-state share of the *error-producing*
  //    cross-section is calibrated so the hidden residue lands near the
  //    paper's 2.4% (hidden sites are individually likelier to matter than
  //    an average configuration bit: half-latches sit on control pins).
  BeamOptions bopts;
  bopts.hidden_state_fraction = 0.02;
  bopts.seed = 20260707;
  BeamSession session(design, bopts);
  const BeamResult beam = session.run(kObservations, predicted, universe);

  std::printf("beam: %llu observations (%.0f s beam time), %llu upsets "
              "(%llu config, %llu half-latch, %llu config-logic)\n",
              static_cast<unsigned long long>(beam.observations),
              beam.beam_time.sec(),
              static_cast<unsigned long long>(beam.upsets_total),
              static_cast<unsigned long long>(beam.upsets_config),
              static_cast<unsigned long long>(beam.upsets_halflatch),
              static_cast<unsigned long long>(beam.upsets_config_logic));
  std::printf("test-loop iteration: %.0f us (paper: ~430 us)\n",
              beam.loop_iteration_time.us());
  std::printf("bitstream errors detected/repaired: %llu/%llu; resets %llu; "
              "full reconfigs %llu\n",
              static_cast<unsigned long long>(beam.bitstream_errors_detected),
              static_cast<unsigned long long>(beam.repairs),
              static_cast<unsigned long long>(beam.resets),
              static_cast<unsigned long long>(beam.full_reconfigs));
  rule();
  std::printf("output-error observations : %llu\n",
              static_cast<unsigned long long>(beam.output_error_observations));
  std::printf("  predicted by simulator  : %llu\n",
              static_cast<unsigned long long>(beam.predicted_errors));
  std::printf("  unpredicted (hidden)    : %llu\n",
              static_cast<unsigned long long>(beam.unpredicted_errors));
  std::printf("correlation               : %.1f%%   (paper: 97.6%%)\n\n",
              beam.correlation() * 100);
}

void BM_BeamObservation(benchmark::State& state) {
  static Workbench bench(campaign_device());
  static const PlacedDesign design = bench.compile(designs::multiply_add(8));
  static BeamSession session(design, {});
  static const std::unordered_set<u64> empty;
  for (auto _ : state) {
    const auto r = session.run(1, empty);
    benchmark::DoNotOptimize(r.upsets_total);
  }
}
BENCHMARK(BM_BeamObservation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_validation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
