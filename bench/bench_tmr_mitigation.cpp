// E11 (extension) — selective mitigation of the sensitive cross-section.
//
// Paper §III-A: "High correlation between specific locations in the bit
// stream and output area helps to characterize the sensitive cross-section
// of the design. Selective Triple Module Redundancy (TMR) or other
// mitigation techniques can then be selectively applied to the sensitive
// cross section." This bench applies the library's XTMR-style transform
// (triplication + per-domain feedback voters + placement-separated domains)
// and measures what it buys against configuration upsets, FF-state upsets,
// and error persistence.
#include "bench_util.h"

#include "netlist/tmr.h"

namespace vscrub::bench {
namespace {

void run_report() {
  std::printf("\nE11 (extension) — TMR mitigation of the sensitive "
              "cross-section\n");
  rule();

  struct Row {
    const char* name;
    Netlist (*make)();
  };
  const Row rows[] = {
      {"counter_adder", [] { return designs::counter_adder(8); }},
      {"lfsr cluster", [] { return designs::lfsr_cluster(1); }},
      {"mult_tree", [] { return designs::mult_tree(6); }},
  };

  std::printf("%-14s %10s %10s %9s %9s %10s %10s\n", "design", "sens%",
              "sens%TMR", "pers/inj%", "persTMR%", "slices", "slicesTMR");
  for (const Row& row : rows) {
    const Netlist base_nl = row.make();
    const auto base = compile(base_nl, device_tiny(12, 18));
    const auto tmr = compile(apply_tmr(base_nl), device_tiny(12, 18));
    CampaignOptions opts;
    opts.sample_bits = 5000;
    opts.injection.classify_persistence = true;
    opts.record_sensitive_bits = false;
    const auto rb = run_campaign(base, opts);
    const auto rt = run_campaign(tmr, opts);
    std::printf("%-14s %9.2f%% %9.2f%% %8.2f%% %8.2f%% %10zu %10zu\n",
                row.name, rb.sensitivity() * 100, rt.sensitivity() * 100,
                100.0 * static_cast<double>(rb.persistent) /
                    static_cast<double>(rb.injections),
                100.0 * static_cast<double>(rt.persistent) /
                    static_cast<double>(rt.injections),
                base.stats.slices_used, tmr.stats.slices_used);
  }
  std::printf("\n(TMR triples area; domains are placement-separated so one "
              "tile-level upset cannot straddle domains. The residual "
              "sensitivity is the shared primary-input network — the single "
              "point of failure full XTMR removes by triplicating pads.)\n");

  // FF-state upsets (§II-C: invisible to the bitstream): TMR masks them.
  {
    const Netlist nl = designs::counter_adder(8);
    auto count = [](const PlacedDesign& design) {
      FabricSim sim(design.space);
      DesignHarness harness(design, sim);
      harness.configure();
      const auto golden =
          DesignHarness::reference_trace(*design.netlist, 200);
      const DeviceGeometry& geom = design.space->geometry();
      std::size_t failures = 0, ffs = 0;
      for (u32 t = 0; t < geom.tile_count(); ++t) {
        for (u8 f = 0; f < kFfsPerClb; ++f) {
          const TileCoord tc = geom.tile_coord(t);
          if (!design.bitstream.ff_used(tc, f)) continue;
          ++ffs;
          harness.restart();
          harness.run(20);
          sim.flip_ff(tc, f);
          for (int c = 0; c < 12; ++c) {
            harness.step();
            if (!(harness.last_outputs() == golden[harness.cycle() - 1])) {
              ++failures;
              break;
            }
          }
          harness.restart();
        }
      }
      return std::pair<std::size_t, std::size_t>{failures, ffs};
    };
    const auto plain = compile(nl, device_tiny(12, 18));
    const auto tmr = compile(apply_tmr(nl), device_tiny(12, 18));
    const auto [pf, pn] = count(plain);
    const auto [tf, tn] = count(tmr);
    rule();
    std::printf("FF-state upsets (bitstream-invisible): plain %zu/%zu FFs "
                "cause output errors; TMR %zu/%zu\n\n",
                pf, pn, tf, tn);
  }
}

void BM_TmrTransform(benchmark::State& state) {
  const Netlist nl = designs::mult_tree(8);
  for (auto _ : state) {
    const Netlist t = apply_tmr(nl);
    benchmark::DoNotOptimize(t.cell_count());
  }
}
BENCHMARK(BM_TmrTransform)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
