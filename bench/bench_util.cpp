#include "bench_util.h"

#include <cstdlib>

namespace vscrub::bench {

void print_sensitivity_table(const char* title,
                             const std::vector<SensitivityRow>& rows) {
  std::printf("\n%s\n", title);
  rule();
  const bool with_persistence =
      !rows.empty() && rows.front().persistence >= 0.0;
  std::printf("%-12s %-22s %7s %7s %9s %8s %8s%s\n", "Design", "(scaled as)",
              "Slices", "Util%", "Failures", "Sens%", "Norm%",
              with_persistence ? "  Persist%" : "");
  rule();
  for (const SensitivityRow& r : rows) {
    std::printf("%-12s %-22s %7zu %6.1f%% %9llu %7.2f%% %7.1f%%", r.label.c_str(),
                r.scaled_as.c_str(), r.slices, r.utilization * 100,
                static_cast<unsigned long long>(r.failures),
                r.sensitivity * 100, r.normalized * 100);
    if (with_persistence) std::printf("   %6.1f%%", r.persistence * 100);
    std::printf("\n");
  }
  rule();
}

CampaignResult table_campaign(const PlacedDesign& design, u64 sample_bits,
                              bool persistence) {
  CampaignOptions options;
  options.sample_bits = sample_bits;
  options.record_sensitive_bits = false;
  options.injection.classify_persistence = persistence;
  return run_campaign(design, options);
}

void BenchJson::set(const std::string& key, double value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  fields_.emplace_back(key, value);
}

bool BenchJson::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    // %.17g round-trips doubles; integral metrics print without a point.
    std::fprintf(f, "  \"%s\": %.17g%s\n", fields_[i].first.c_str(),
                 fields_[i].second, i + 1 < fields_.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

std::string bench_json_path(const std::string& name) {
  if (const char* dir = std::getenv("VSCRUB_BENCH_JSON_DIR");
      dir != nullptr && dir[0] != '\0') {
    return std::string(dir) + "/" + name;
  }
  return name;
}

}  // namespace vscrub::bench
