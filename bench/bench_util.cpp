#include "bench_util.h"

#include <cstdlib>

#include "report/json.h"

namespace vscrub::bench {

void print_sensitivity_table(const char* title,
                             const std::vector<SensitivityRow>& rows) {
  std::printf("\n%s\n", title);
  rule();
  const bool with_persistence =
      !rows.empty() && rows.front().persistence >= 0.0;
  std::printf("%-12s %-22s %7s %7s %9s %8s %8s%s\n", "Design", "(scaled as)",
              "Slices", "Util%", "Failures", "Sens%", "Norm%",
              with_persistence ? "  Persist%" : "");
  rule();
  for (const SensitivityRow& r : rows) {
    std::printf("%-12s %-22s %7zu %6.1f%% %9llu %7.2f%% %7.1f%%", r.label.c_str(),
                r.scaled_as.c_str(), r.slices, r.utilization * 100,
                static_cast<unsigned long long>(r.failures),
                r.sensitivity * 100, r.normalized * 100);
    if (with_persistence) std::printf("   %6.1f%%", r.persistence * 100);
    std::printf("\n");
  }
  rule();
}

CampaignResult table_campaign(const PlacedDesign& design, u64 sample_bits,
                              bool persistence) {
  CampaignOptions options;
  options.sample_bits = sample_bits;
  options.record_sensitive_bits = false;
  options.injection.classify_persistence = persistence;
  return run_campaign(design, options);
}

void BenchJson::set(const std::string& key, double value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  fields_.emplace_back(key, value);
}

bool BenchJson::write(const std::string& path) const {
  // Serialized through the shared report/json emitter, so bench artifacts
  // carry the same schema_version/kind preamble as every other report.
  JsonReport report("bench");
  for (const auto& [key, value] : fields_) report.set(key, value);
  if (!report.write(path)) return false;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

std::string bench_json_path(const std::string& name) {
  if (const char* dir = std::getenv("VSCRUB_BENCH_JSON_DIR");
      dir != nullptr && dir[0] != '\0') {
    return std::string(dir) + "/" + name;
  }
  return name;
}

}  // namespace vscrub::bench
