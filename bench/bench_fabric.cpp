// E16 — the distributed campaign fabric: scale-out sweep over a fleet of
// single-threaded vscrubd workers.
//
// Not a paper experiment: this bench characterizes the coordinator subsystem
// (coord/fabric.h) the way E-service characterizes the serving layer. It
// reports (a) the scale-out curve — the identical sampled campaign served
// one-shot by one worker, then sharded over 1/2/4 workers, every merged
// digest bit-identical; (b) the cross-worker reuse tier — a cold fleet run
// publishing verdicts into a coordinator hub store and a warm rerun
// answering out of it; and (c) the price of a mid-campaign worker loss —
// one worker dies right after shipping its first checkpoint, the range
// resumes elsewhere from the blob, and the merge still matches one-shot.
//
// Workers are pinned to one executor and one compute thread each, so the
// sweep measures fabric scale-out, not the intra-worker thread pool. CI
// gates BENCH_fabric.json on digest equality everywhere and >= 3x at 4
// workers.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "coord/coordinator.h"
#include "coord/fabric.h"
#include "coord/partition.h"
#include "svc/client.h"
#include "svc/config.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/service.h"

namespace vscrub::bench {
namespace {

constexpr const char* kPrefix = "/tmp/vscrub_bench_fab_";

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start).count();
}

u64 env_u64(const char* name, u64 dflt) {
  const char* value = std::getenv(name);
  return value == nullptr ? dflt : std::strtoull(value, nullptr, 10);
}

struct RunningServer {
  explicit RunningServer(ServiceConfig config) : server(std::move(config)) {
    boot();
  }
  RunningServer(ServiceConfig config, std::unique_ptr<FrameService> svc)
      : server(std::move(config), std::move(svc)) {
    boot();
  }
  ~RunningServer() {
    server.request_stop();
    runner.join();
  }
  void boot() {
    server.start();
    runner = std::thread([this] { server.run(); });
  }
  SocketServer server;
  std::thread runner;
};

/// A worker that forwards campaign frames until its first kCheckpoint has
/// shipped, then drops everything — the in-process stand-in for a worker
/// killed mid-range (the tsan smoke job kills a real process instead).
class DyingWorkerService final : public FrameService {
 public:
  explicit DyingWorkerService(const ServiceConfig& config) : inner_(config) {}

  void handle(const Frame& request, Emit emit, u64 client_id) override {
    if (request.kind != FrameKind::kCampaign) {
      inner_.handle(request, std::move(emit), client_id);
      return;
    }
    auto dead = std::make_shared<std::atomic<bool>>(false);
    inner_.handle(
        request,
        [emit = std::move(emit), dead](const Frame& f) {
          if (dead->load(std::memory_order_acquire)) return;
          emit(f);
          if (f.kind == FrameKind::kCheckpoint) {
            dead->store(true, std::memory_order_release);
          }
        },
        client_id);
  }
  void begin_drain() override { inner_.begin_drain(); }
  void wait_drained() override { inner_.wait_drained(); }
  bool idle() const override { return inner_.idle(); }
  void cancel_client(u64 client_id) override {
    inner_.cancel_client(client_id);
  }
  void cancel_all() override { inner_.cancel_all(); }
  JsonReport stats_report() const override { return inner_.stats_report(); }

 private:
  CampaignService inner_;
};

ServiceConfig worker_config(int index) {
  ServiceConfig config;
  config.socket_path = kPrefix + std::to_string(index) + ".sock";
  std::filesystem::remove(config.socket_path);
  config.executors = 1;
  config.pool_threads = 1;  // serial worker: the sweep measures the fabric
  config.spool_dir = kPrefix + std::to_string(index) + ".spool";
  std::filesystem::remove_all(config.spool_dir);
  return config;
}

std::string campaign_payload(u64 sample) {
  return JsonReport("campaign_request")
      .set_string("design", "lfsrmult")
      .set_string("device", "campaign")
      .set_u64("sample", sample)
      .set_u64("chunk", 64)
      .to_json();
}

FabricOptions fabric_options(const std::vector<std::string>& workers,
                             u64 sample) {
  FabricOptions options;
  options.workers = workers;
  options.params = FlatJson::parse(campaign_payload(sample));
  options.shards_per_worker = 2;
  return options;
}

void run_report() {
  std::printf("\nE16 — distributed campaign fabric scale-out\n");
  rule();

  const u64 sample = env_u64("VSCRUB_BENCH_FABRIC_SAMPLE", 16000);
  const u64 hub_sample = env_u64("VSCRUB_BENCH_FABRIC_HUB_SAMPLE", 6000);

  std::vector<std::unique_ptr<RunningServer>> workers;
  std::vector<std::string> sockets;
  for (int i = 0; i < 4; ++i) {
    ServiceConfig config = worker_config(i);
    sockets.push_back(config.socket_path);
    workers.push_back(std::make_unique<RunningServer>(config));
  }

  // Ground truth and serial baseline in one: the campaign served one-shot
  // by a single single-threaded worker.
  ServiceClient client = ServiceClient::connect_unix(sockets[0]);
  const auto one_shot_start = std::chrono::steady_clock::now();
  const Frame one_shot =
      client.call(FrameKind::kCampaign, campaign_payload(sample));
  const double one_shot_seconds = seconds_since(one_shot_start);
  VSCRUB_CHECK(one_shot.kind == FrameKind::kResult,
               "bench_fabric: one-shot campaign failed: " + one_shot.payload);
  const FlatJson expected = FlatJson::parse(one_shot.payload);
  const u64 expected_digest = expected.get_u64("sensitive_digest");
  std::printf("one-shot (1 worker, 1 thread): %.2f s, %llu injections\n",
              one_shot_seconds,
              static_cast<unsigned long long>(expected.get_u64("injections")));

  BenchJson json;
  json.set("sample", static_cast<double>(sample));
  json.set("one_shot_seconds", one_shot_seconds);

  // (a) Scale-out sweep: the same campaign sharded over 1, 2, 4 workers.
  bool digests_match = true;
  double fab4_seconds = 0.0;
  for (const std::size_t fleet : {1u, 2u, 4u}) {
    const std::vector<std::string> fleet_sockets(sockets.begin(),
                                                 sockets.begin() +
                                                     static_cast<long>(fleet));
    const auto start = std::chrono::steady_clock::now();
    const FabricResult result =
        run_fabric_campaign(fabric_options(fleet_sockets, sample));
    const double seconds = seconds_since(start);
    const FlatJson merged = FlatJson::parse(result.merged.to_json());
    const bool match = merged.get_u64("sensitive_digest") == expected_digest &&
                       merged.get_u64("injections") ==
                           expected.get_u64("injections");
    digests_match = digests_match && match;
    std::printf("fabric %zuw x2 shards: %.2f s (%.2fx vs one-shot)%s\n",
                fleet, seconds, one_shot_seconds / seconds,
                match ? "" : "  DIGEST MISMATCH");
    json.set("fabric_" + std::to_string(fleet) + "w_seconds", seconds);
    if (fleet == 4) fab4_seconds = seconds;
  }
  json.set("digest_match", digests_match ? 1.0 : 0.0);
  json.set("speedup_4w", one_shot_seconds / fab4_seconds);

  // (b) The reuse tier: a coordinator hub store behind the fleet. The cold
  // run publishes every fresh verdict; the warm rerun answers out of them.
  const std::string hub_socket = std::string(kPrefix) + "coord.sock";
  const std::string hub_dir = std::string(kPrefix) + "hub";
  std::filesystem::remove(hub_socket);
  std::filesystem::remove_all(hub_dir);
  FabricResult cold;
  FabricResult warm;
  double warm_seconds = 0.0;
  {
    CoordinatorConfig coord;
    coord.socket_path = hub_socket;
    coord.workers = sockets;
    coord.cache_dir = hub_dir;
    ServiceConfig transport;
    transport.socket_path = hub_socket;
    RunningServer hub(transport, std::make_unique<CoordinatorService>(coord));

    FabricOptions hub_options = fabric_options(sockets, hub_sample);
    hub_options.remote_store_socket = hub_socket;
    cold = run_fabric_campaign(hub_options);
    const auto warm_start = std::chrono::steady_clock::now();
    warm = run_fabric_campaign(hub_options);
    warm_seconds = seconds_since(warm_start);
  }  // flush the hub store before run_report removes its directory
  const u64 warm_injections =
      FlatJson::parse(warm.merged.to_json()).get_u64("injections");
  const double reuse_rate =
      warm_injections == 0
          ? 0.0
          : static_cast<double>(warm.remote_hits) /
                static_cast<double>(warm_injections);
  std::printf("hub reuse: cold published %llu, warm hit %llu of %llu "
              "(%.1f%%) in %.2f s\n",
              static_cast<unsigned long long>(cold.remote_publishes),
              static_cast<unsigned long long>(warm.remote_hits),
              static_cast<unsigned long long>(warm_injections),
              100.0 * reuse_rate, warm_seconds);
  json.set("hub_sample", static_cast<double>(hub_sample));
  json.set("cold_remote_publishes", static_cast<double>(cold.remote_publishes));
  json.set("warm_remote_hits", static_cast<double>(warm.remote_hits));
  json.set("warm_reuse_rate", reuse_rate);

  // (c) Worker loss mid-campaign: one worker dies after its first shipped
  // checkpoint; its range must resume elsewhere from the blob and the merge
  // must still match the one-shot digest.
  ServiceConfig dying_config = worker_config(4);
  RunningServer dying(dying_config,
                      std::make_unique<DyingWorkerService>(dying_config));
  std::vector<std::string> lossy_sockets = {dying_config.socket_path,
                                            sockets[1], sockets[2],
                                            sockets[3]};
  FabricOptions lossy = fabric_options(lossy_sockets, sample);
  lossy.lease_ms = 1000;
  lossy.checkpoint_every_chunks = 4;
  const FabricResult killed = run_fabric_campaign(lossy);
  const FlatJson killed_merged = FlatJson::parse(killed.merged.to_json());
  const bool killed_match =
      killed_merged.get_u64("sensitive_digest") == expected_digest &&
      killed_merged.get_u64("injections") == expected.get_u64("injections");
  std::printf("worker killed mid-range: %llu reassigned, %llu injections "
              "resumed from checkpoint, digest %s\n",
              static_cast<unsigned long long>(killed.reassignments),
              static_cast<unsigned long long>(killed.resumed_injections),
              killed_match ? "identical" : "MISMATCH");
  json.set("kill_digest_match", killed_match ? 1.0 : 0.0);
  json.set("kill_workers_lost", static_cast<double>(killed.workers_lost));
  json.set("kill_reassignments", static_cast<double>(killed.reassignments));
  json.set("kill_resumed_injections",
           static_cast<double>(killed.resumed_injections));

  json.write(bench_json_path("BENCH_fabric.json"));
  std::printf("\n");

  for (int i = 0; i < 5; ++i) {
    std::filesystem::remove_all(kPrefix + std::to_string(i) + ".spool");
  }
  std::filesystem::remove_all(hub_dir);
}

void BM_PartitionUniverse(benchmark::State& state) {
  const u64 universe = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    auto ranges = partition_universe(universe, 64);
    benchmark::DoNotOptimize(ranges.data());
  }
}
BENCHMARK(BM_PartitionUniverse)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vscrub::bench

int main(int argc, char** argv) {
  vscrub::bench::run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
