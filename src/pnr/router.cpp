// PathFinder-style negotiated-congestion router over the single-wire fabric.
//
// Node space: every out-wire of every tile (tile * 96 + dir * 24 + windex).
// A wire has capacity 1 (its OMUX selects exactly one source). Sources are
// CLB outputs (reachable onto the 20 OMUX wires per direction of the source
// tile); sinks are IMUX pins (reachable from any wire arriving at the sink
// tile, or directly from a same-tile CLB output via the feedback codes).
#include <algorithm>
#include <cmath>
#include <queue>

#include "common/log.h"
#include "fabric/routing_model.h"
#include "pnr/pnr_internal.h"

namespace vscrub::pnr_detail {
namespace {

constexpr u32 kNoWire = 0xFFFFFFFFu;

struct WireRef {
  u32 tile;  ///< tile index
  Dir dir;
  u8 windex;
};

u32 wire_id(const DeviceGeometry& geom, TileCoord t, Dir d, u8 w) {
  return (geom.tile_index(t) * static_cast<u32>(kDirs) +
          static_cast<u32>(d)) *
             kWiresPerDir +
         w;
}

WireRef wire_of(u32 id) {
  WireRef r;
  r.windex = static_cast<u8>(id % kWiresPerDir);
  const u32 rest = id / kWiresPerDir;
  r.dir = static_cast<Dir>(rest % kDirs);
  r.tile = rest / kDirs;
  return r;
}

struct QueueEntry {
  double priority;
  double cost;
  u32 wire;
  bool operator>(const QueueEntry& o) const { return priority > o.priority; }
};

}  // namespace

Router::Router(const DeviceGeometry& geom, int max_iters)
    : geom_(geom), max_iters_(max_iters) {}

std::vector<RouteTree> Router::route(const std::vector<PhysNet>& nets,
                                     int* iterations_out) {
  const u32 num_wires = geom_.tile_count() * kWiresPerClb;
  std::vector<u16> occ(num_wires, 0);
  std::vector<float> hist(num_wires, 0.0f);

  // Dijkstra scratch, reused across searches via an epoch stamp.
  std::vector<u32> epoch(num_wires, 0);
  std::vector<double> dist(num_wires, 0.0);
  std::vector<u32> parent(num_wires, kNoWire);
  std::vector<u8> parent_code(num_wires, 0);
  u32 current_epoch = 0;

  std::vector<RouteTree> trees(nets.size());
  // Per-net tree membership, also epoch-stamped.
  std::vector<u32> tree_epoch(num_wires, 0);
  u32 tree_stamp = 0;

  double pres_fac = 0.8;
  int iter = 0;
  for (iter = 1; iter <= max_iters_; ++iter) {
    bool any_overuse = false;
    for (std::size_t ni = 0; ni < nets.size(); ++ni) {
      const PhysNet& net = nets[ni];
      RouteTree& tree = trees[ni];
      // Rip up the previous route of this net.
      for (const RoutedWire& rw : tree.wires) {
        --occ[wire_id(geom_, rw.tile, rw.dir, rw.windex)];
      }
      tree.wires.clear();
      tree.sink_codes.assign(net.sinks.size(), 0);
      if (net.sinks.empty()) continue;

      ++tree_stamp;

      auto wire_cost = [&](u32 w) -> double {
        const double congestion =
            1.0 + pres_fac * static_cast<double>(occ[w]);  // cap == 1
        return (1.0 + static_cast<double>(hist[w])) * congestion;
      };

      // Route each sink, nearest first.
      std::vector<std::size_t> sink_order(net.sinks.size());
      for (std::size_t i = 0; i < sink_order.size(); ++i) sink_order[i] = i;
      std::sort(sink_order.begin(), sink_order.end(),
                [&](std::size_t a, std::size_t b) {
                  auto d = [&](const PhysNet::Sink& s) {
                    return std::abs(static_cast<int>(s.tile.row) -
                                    static_cast<int>(net.src_tile.row)) +
                           std::abs(static_cast<int>(s.tile.col) -
                                    static_cast<int>(net.src_tile.col));
                  };
                  return d(net.sinks[a]) < d(net.sinks[b]);
                });

      for (std::size_t si : sink_order) {
        const PhysNet::Sink& sink = net.sinks[si];
        // Same-tile feedback needs no wires.
        if (sink.tile == net.src_tile) {
          tree.sink_codes[si] = encode_imux(PinSource{
              PinSource::Kind::kClbOutput, Dir::kNorth, 0, net.src_out});
          continue;
        }
        // Does an existing tree wire already arrive at the sink tile?
        {
          bool done = false;
          for (const RoutedWire& rw : tree.wires) {
            const auto nb = geom_.neighbor(rw.tile, rw.dir);
            if (nb && *nb == sink.tile) {
              tree.sink_codes[si] = encode_imux(
                  PinSource{PinSource::Kind::kIncoming, opposite(rw.dir),
                            rw.windex, 0});
              done = true;
              break;
            }
          }
          if (done) continue;
        }

        // A* from the source slots + existing tree.
        ++current_epoch;
        std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                            std::greater<QueueEntry>>
            queue;
        auto heuristic = [&](u32 w) -> double {
          const WireRef r = wire_of(w);
          const auto head = geom_.neighbor(geom_.tile_coord(r.tile), r.dir);
          const TileCoord t = head ? *head : geom_.tile_coord(r.tile);
          return static_cast<double>(
              std::abs(static_cast<int>(t.row) - static_cast<int>(sink.tile.row)) +
              std::abs(static_cast<int>(t.col) - static_cast<int>(sink.tile.col)));
        };
        auto relax = [&](u32 w, double cost, u32 par, u8 code) {
          if (epoch[w] == current_epoch && dist[w] <= cost) return;
          epoch[w] = current_epoch;
          dist[w] = cost;
          parent[w] = par;
          parent_code[w] = code;
          queue.push(QueueEntry{cost + heuristic(w), cost, w});
        };

        // Seed: wires drivable from the source CLB output...
        for (const OmuxSlot& slot : omux_consumers_of_output(net.src_out)) {
          const u32 w = wire_id(geom_, net.src_tile, slot.dir, slot.windex);
          relax(w, wire_cost(w), kNoWire, slot.code);
        }
        // ...plus the existing tree at zero cost (keeping recorded codes).
        for (const RoutedWire& rw : tree.wires) {
          const u32 w = wire_id(geom_, rw.tile, rw.dir, rw.windex);
          relax(w, 0.0, kNoWire, rw.code);
          // Mark as pre-existing so backtracking stops here.
        }

        u32 found = kNoWire;
        while (!queue.empty()) {
          const QueueEntry e = queue.top();
          queue.pop();
          if (epoch[e.wire] != current_epoch || e.cost > dist[e.wire]) continue;
          const WireRef r = wire_of(e.wire);
          const auto head = geom_.neighbor(geom_.tile_coord(r.tile), r.dir);
          if (!head) continue;  // dangles off the device edge
          if (*head == sink.tile) {
            found = e.wire;
            break;
          }
          const Dir from = opposite(r.dir);
          for (const OmuxSlot& slot :
               omux_consumers_of_incoming(from, r.windex)) {
            const u32 nw = wire_id(geom_, *head, slot.dir, slot.windex);
            relax(nw, e.cost + wire_cost(nw), e.wire, slot.code);
          }
        }
        VSCRUB_CHECK(found != kNoWire, "router: unreachable sink");

        // Record the sink's IMUX code from the arriving wire.
        {
          const WireRef r = wire_of(found);
          tree.sink_codes[si] = encode_imux(PinSource{
              PinSource::Kind::kIncoming, opposite(r.dir), r.windex, 0});
        }
        // Backtrack, appending new wires (stop at wires already in the tree).
        u32 w = found;
        while (w != kNoWire && tree_epoch[w] != tree_stamp) {
          tree_epoch[w] = tree_stamp;
          const WireRef r = wire_of(w);
          RoutedWire rw;
          rw.tile = geom_.tile_coord(r.tile);
          rw.dir = r.dir;
          rw.windex = r.windex;
          rw.code = parent_code[w];
          tree.wires.push_back(rw);
          w = parent[w];
        }
      }

      for (const RoutedWire& rw : tree.wires) {
        const u32 w = wire_id(geom_, rw.tile, rw.dir, rw.windex);
        if (++occ[w] > 1) any_overuse = true;
      }
    }

    if (!any_overuse) break;
    // Update history costs on overused wires and sharpen the present factor.
    for (u32 w = 0; w < num_wires; ++w) {
      if (occ[w] > 1) hist[w] += 0.5f * static_cast<float>(occ[w] - 1);
    }
    pres_fac *= 1.6;
    VSCRUB_CHECK(iter < max_iters_, "router: congestion did not resolve");
  }

  if (iterations_out) *iterations_out = iter;
  return trees;
}

}  // namespace vscrub::pnr_detail
