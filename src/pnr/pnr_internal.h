// Internal data model shared by the packer/placer, router, and bitgen.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "pnr/placed_design.h"

namespace vscrub::pnr_detail {

using namespace vscrub;

/// What occupies a LUT position (and optionally its paired FF position).
struct Site {
  enum class Kind : u8 {
    kLogic,      ///< LUT and/or FF from the netlist
    kSrl,        ///< SRL16 cell (no FF use at this position)
    kInput,      ///< primary input (output overridden by harness)
    kBramRelay,  ///< BRAM DOUT lane relay (output overridden by harness)
    kRomConst,   ///< LUT-ROM constant generator
    kExtConst,   ///< external-constant port (output overridden by harness)
  };
  Kind kind = Kind::kLogic;
  CellId lut_cell = kNoCell;  ///< kLut / kSrl16 / kInput cell, or kNoCell
  CellId ff_cell = kNoCell;   ///< kFf cell co-located here, or kNoCell
  // For kBramRelay: which BRAM cell + dout lane.
  CellId bram_cell = kNoCell;
  u8 bram_lane = 0;
  // For kRomConst / kExtConst: the constant value provided.
  bool const_value = false;
  // Slice-compat key (CE net, SR net) — kNoNet means "half-latch idle".
  NetId ce_net = kNoNet;
  NetId sr_net = kNoNet;
  bool has_ff() const { return ff_cell != kNoCell; }
  // Optional placement region (column range), used to keep BRAM relays near
  // their column.
  u16 min_col = 0;
  u16 max_col = 0xFFFF;
};

/// Placement state: site index -> position, and the reverse map.
struct Placement {
  // position id = tile_index * 4 + lut_position
  std::vector<i32> site_of_pos;  ///< -1 if free
  std::vector<u32> pos_of_site;
};

/// A net to route on the fabric.
struct PhysNet {
  NetId net = kNoNet;           ///< netlist net (kNoNet for synthetic nets)
  // Source: a CLB output.
  TileCoord src_tile;
  u8 src_out = 0;
  // Sinks: imux pins.
  struct Sink {
    TileCoord tile;
    u8 pin = 0;
  };
  std::vector<Sink> sinks;
};

/// Result of routing one net.
struct RouteTree {
  std::vector<RoutedWire> wires;
  // Per sink: the imux code programmed at the sink pin.
  std::vector<u8> sink_codes;
};

struct PackPlaceResult {
  std::vector<Site> sites;
  Placement placement;
  // cell -> site index (for kLut/kSrl16/kInput cells and FFs)
  std::unordered_map<CellId, u32> site_of_cell;
  // net -> list of (site providing the value as CLB output)
  // Output taps assigned per output cell.
  std::vector<TapPoint> output_taps;
  // BRAM bindings (taps filled later by the router phase glue).
  std::vector<PlacedDesign::BramBinding> brams;
  // Synthetic const provider sites per polarity (sharded); empty if policy
  // keeps half-latches everywhere.
  std::vector<u32> const_sites[2];
  PnrStats stats;
};

PackPlaceResult pack_and_place(const Netlist& nl, const DeviceGeometry& geom,
                               const PnrOptions& options, Rng& rng);

class Router {
 public:
  Router(const DeviceGeometry& geom, int max_iters);
  /// Routes all nets; throws on failure. Returns trees aligned with `nets`.
  std::vector<RouteTree> route(const std::vector<PhysNet>& nets,
                               int* iterations_out);

 private:
  const DeviceGeometry& geom_;
  int max_iters_;
};

}  // namespace vscrub::pnr_detail
