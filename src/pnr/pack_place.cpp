// Packing (cells -> sites) and placement (sites -> LUT positions).
#include <algorithm>
#include <cmath>
#include <queue>

#include "common/log.h"
#include "pnr/pnr_internal.h"

namespace vscrub::pnr_detail {
namespace {

constexpr u32 kPositionsPerTile = 4;

struct SliceKey {
  // CE/SR compatibility key. kNoNet is a concrete value ("idle pin"); the
  // wildcard (no FF/SRL at the site) is encoded separately.
  bool ce_wild = true;
  bool sr_wild = true;
  NetId ce = kNoNet;
  NetId sr = kNoNet;
};

SliceKey site_key(const Site& s) {
  SliceKey k;
  switch (s.kind) {
    case Site::Kind::kLogic:
      if (s.has_ff()) {
        k.ce_wild = false;
        k.sr_wild = false;
        k.ce = s.ce_net;
        k.sr = s.sr_net;
      }
      break;
    case Site::Kind::kSrl:
      k.ce_wild = false;
      k.ce = s.ce_net;
      break;
    default:
      break;
  }
  return k;
}

bool keys_compatible(const SliceKey& a, const SliceKey& b) {
  if (!a.ce_wild && !b.ce_wild && a.ce != b.ce) return false;
  if (!a.sr_wild && !b.sr_wild && a.sr != b.sr) return false;
  return true;
}

bool in_region(const DeviceGeometry& geom, const Site& s, u32 pos) {
  const u32 tile = pos / kPositionsPerTile;
  const u16 col = geom.tile_coord(tile).col;
  return col >= s.min_col && col <= s.max_col;
}

}  // namespace

PackPlaceResult pack_and_place(const Netlist& nl, const DeviceGeometry& geom,
                               const PnrOptions& options, Rng& rng) {
  PackPlaceResult result;
  auto& sites = result.sites;

  // ---- 1. Pack cells into sites ---------------------------------------------
  std::vector<bool> lut_claimed(nl.cell_count(), false);

  // FF pairing: an FF shares a site with the LUT driving its D input when
  // that LUT output has no other sink.
  std::vector<i32> ff_paired_lut(nl.cell_count(), -1);
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::kFf) continue;
    const NetId d = c.inputs[0];
    const Net& dn = nl.net(d);
    const Cell& driver = nl.cell(dn.driver);
    if (driver.kind == CellKind::kLut && dn.sinks.size() == 1 &&
        !lut_claimed[dn.driver]) {
      ff_paired_lut[id] = static_cast<i32>(dn.driver);
      lut_claimed[dn.driver] = true;
    }
  }

  auto add_site = [&](Site s) -> u32 {
    sites.push_back(s);
    return static_cast<u32>(sites.size() - 1);
  };

  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    switch (c.kind) {
      case CellKind::kFf: {
        Site s;
        s.kind = Site::Kind::kLogic;
        s.ff_cell = id;
        if (ff_paired_lut[id] >= 0) {
          s.lut_cell = static_cast<CellId>(ff_paired_lut[id]);
        }
        s.ce_net = c.inputs[1];
        s.sr_net = c.inputs[2];
        const u32 idx = add_site(s);
        result.site_of_cell[id] = idx;
        if (s.lut_cell != kNoCell) result.site_of_cell[s.lut_cell] = idx;
        break;
      }
      case CellKind::kSrl16: {
        Site s;
        s.kind = Site::Kind::kSrl;
        s.lut_cell = id;
        s.ce_net = c.inputs[1];
        result.site_of_cell[id] = add_site(s);
        break;
      }
      case CellKind::kInput: {
        Site s;
        s.kind = Site::Kind::kInput;
        s.lut_cell = id;
        result.site_of_cell[id] = add_site(s);
        break;
      }
      default:
        break;
    }
  }
  // Unclaimed LUTs get their own sites.
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::kLut || lut_claimed[id]) continue;
    Site s;
    s.kind = Site::Kind::kLogic;
    s.lut_cell = id;
    result.site_of_cell[id] = add_site(s);
  }

  // ---- 2. BRAM bindings and relay sites --------------------------------------
  u16 next_bram_col = 0;
  u16 next_block[2] = {0, 0};
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::kBram) continue;
    VSCRUB_CHECK(geom.bram_columns > 0, "design uses BRAM but device has none");
    PlacedDesign::BramBinding binding;
    binding.cell = id;
    binding.bram_col = next_bram_col;
    binding.block = next_block[next_bram_col];
    VSCRUB_CHECK(binding.block < geom.bram_blocks_per_column(),
                 "design exceeds BRAM block capacity");
    ++next_block[next_bram_col];
    next_bram_col = static_cast<u16>((next_bram_col + 1) % geom.bram_columns);

    binding.input_taps.resize(c.inputs.size());
    binding.input_tap_valid.assign(c.inputs.size(), 0);
    binding.const_pin_values.assign(c.inputs.size(), 0);
    binding.dout_drives.resize(c.outputs.size());
    binding.dout_drive_valid.assign(c.outputs.size(), 0);

    // Relay site per DOUT lane that actually has sinks.
    const bool west = binding.bram_col == 0;
    const u16 lo = west ? 0 : static_cast<u16>(geom.cols - 3);
    const u16 hi = west ? 2 : static_cast<u16>(geom.cols - 1);
    for (std::size_t lane = 0; lane < c.outputs.size(); ++lane) {
      if (nl.net(c.outputs[lane]).sinks.empty()) continue;
      Site s;
      s.kind = Site::Kind::kBramRelay;
      s.bram_cell = id;
      s.bram_lane = static_cast<u8>(lane);
      s.min_col = lo;
      s.max_col = hi;
      add_site(s);
      binding.dout_drive_valid[lane] = 1;  // drive point filled after placement
    }
    result.brams.push_back(std::move(binding));
  }

  // ---- 3. Constant provider sites --------------------------------------------
  // Count pins that will need a routed constant, then shard providers at a
  // fan-out of 24 sinks each. Demand depends on the half-latch policy:
  //  * kUseHalfLatches: only polarity-mismatched constants are routed.
  //  * kLutRomConstants / kExternalConstants: every constant *control* pin is
  //    routed, including idle CE/SR pins that would otherwise ride on
  //    half-latches (this is RadDRC's transformation).
  const bool raddrc = options.halflatch_policy != HalfLatchPolicy::kUseHalfLatches;
  std::size_t demand[2] = {0, 0};
  // SRL tap-address constant pins.
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kSrl16) {
      for (int i = 0; i < 4; ++i) {
        const NetId a = c.inputs[static_cast<std::size_t>(2 + i)];
        if (a == kNoNet) continue;
        const Cell& drv = nl.cell(nl.net(a).driver);
        if (drv.kind == CellKind::kConst) {
          if (raddrc || !drv.const_value) ++demand[drv.const_value ? 1 : 0];
        }
      }
    }
  }
  // CE/SR slice pins: one per slice worst-case. Count sites with FF/SRL.
  std::size_t ctl_sites = 0;
  for (const Site& s : sites) {
    if (s.kind == Site::Kind::kLogic ? s.has_ff() : s.kind == Site::Kind::kSrl) {
      ++ctl_sites;
    }
  }
  if (raddrc) {
    demand[1] += ctl_sites;  // CE tied high
    demand[0] += ctl_sites;  // SR tied low
  } else {
    // Explicit const nets with mismatched polarity at control pins.
    for (CellId id = 0; id < nl.cell_count(); ++id) {
      const Cell& c = nl.cell(id);
      if (c.kind != CellKind::kFf) continue;
      for (int pin = 1; pin <= 2; ++pin) {
        const NetId n = c.inputs[static_cast<std::size_t>(pin)];
        if (n == kNoNet) continue;
        const Cell& drv = nl.cell(nl.net(n).driver);
        if (drv.kind != CellKind::kConst) continue;
        const bool match = (pin == 1) ? drv.const_value : !drv.const_value;
        if (!match) ++demand[drv.const_value ? 1 : 0];
      }
    }
  }
  for (int v = 0; v < 2; ++v) {
    const std::size_t providers = (demand[v] + 23) / 24;
    for (std::size_t p = 0; p < providers; ++p) {
      Site s;
      s.kind = options.halflatch_policy == HalfLatchPolicy::kExternalConstants
                   ? Site::Kind::kExtConst
                   : Site::Kind::kRomConst;
      s.const_value = v != 0;
      result.const_sites[v].push_back(add_site(s));
    }
  }

  // ---- 3b. Placement-group bands ----------------------------------------------
  // Cells tagged with placement groups (TMR domains) are confined to
  // disjoint column bands so a single tile-level fault cannot straddle
  // domains.
  {
    u8 max_group = 0;
    for (const Cell& c : nl.cells()) max_group = std::max(max_group, c.placement_group);
    if (max_group > 0) {
      const u16 band = static_cast<u16>(geom.cols / max_group);
      VSCRUB_CHECK(band >= 1, "more placement groups than device columns");
      for (u32 si = 0; si < sites.size(); ++si) {
        Site& s = sites[si];
        u8 group = 0;
        if (s.lut_cell != kNoCell) group = nl.cell(s.lut_cell).placement_group;
        if (group == 0 && s.ff_cell != kNoCell) {
          group = nl.cell(s.ff_cell).placement_group;
        }
        if (group == 0) continue;
        s.min_col = static_cast<u16>((group - 1) * band);
        s.max_col = group == max_group ? static_cast<u16>(geom.cols - 1)
                                       : static_cast<u16>(group * band - 1);
      }
    }
  }

  // ---- 4. Capacity check ------------------------------------------------------
  const u32 capacity = geom.tile_count() * kPositionsPerTile;
  VSCRUB_CHECK(sites.size() <= capacity,
               "design does not fit: " + std::to_string(sites.size()) +
                   " sites > " + std::to_string(capacity) + " positions");

  // ---- 5. Initial placement (BFS order, slice-compatible greedy fill) -------
  // Site adjacency via netlist connectivity.
  std::vector<std::vector<u32>> adj(sites.size());
  auto site_of = [&](CellId id) -> i32 {
    auto it = result.site_of_cell.find(id);
    return it == result.site_of_cell.end() ? -1 : static_cast<i32>(it->second);
  };
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    const i32 src = site_of(net.driver);
    if (src < 0) continue;
    for (const Net::Sink& sink : net.sinks) {
      const i32 dst = site_of(sink.cell);
      if (dst < 0 || dst == src) continue;
      adj[static_cast<u32>(src)].push_back(static_cast<u32>(dst));
      adj[static_cast<u32>(dst)].push_back(static_cast<u32>(src));
    }
  }
  // BFS from input sites (then any unvisited).
  std::vector<u32> order;
  order.reserve(sites.size());
  std::vector<bool> visited(sites.size(), false);
  std::queue<u32> frontier;
  auto push = [&](u32 s) {
    if (!visited[s]) {
      visited[s] = true;
      frontier.push(s);
    }
  };
  for (u32 s = 0; s < sites.size(); ++s) {
    if (sites[s].kind == Site::Kind::kInput) push(s);
  }
  for (u32 seed = 0; seed < sites.size(); ++seed) {
    push(seed);
    while (!frontier.empty()) {
      const u32 s = frontier.front();
      frontier.pop();
      order.push_back(s);
      for (u32 t : adj[s]) push(t);
    }
  }

  Placement& pl = result.placement;
  pl.site_of_pos.assign(capacity, -1);
  pl.pos_of_site.assign(sites.size(), 0);

  // Snake order over tiles; within a tile, positions 0..3 (two slices).
  std::vector<u32> tile_order;
  tile_order.reserve(geom.tile_count());
  for (u16 col = 0; col < geom.cols; ++col) {
    if (col % 2 == 0) {
      for (u16 row = 0; row < geom.rows; ++row) {
        tile_order.push_back(geom.tile_index(TileCoord{row, col}));
      }
    } else {
      for (int row = geom.rows - 1; row >= 0; --row) {
        tile_order.push_back(
            geom.tile_index(TileCoord{static_cast<u16>(row), col}));
      }
    }
  }

  // Place region-constrained sites first into their regions, then the rest.
  std::vector<u32> constrained;
  std::vector<u32> free_sites;
  for (u32 s : order) {
    (sites[s].max_col != 0xFFFF ? constrained : free_sites).push_back(s);
  }
  auto try_place_at = [&](u32 s, u32 pos) -> bool {
    if (pl.site_of_pos[pos] >= 0) return false;
    if (!in_region(geom, sites[s], pos)) return false;
    // Slice compatibility with the sibling position.
    const u32 sibling = pos ^ 1u;
    const i32 other = pl.site_of_pos[sibling];
    if (other >= 0 &&
        !keys_compatible(site_key(sites[s]), site_key(sites[static_cast<u32>(other)]))) {
      return false;
    }
    pl.site_of_pos[pos] = static_cast<i32>(s);
    pl.pos_of_site[s] = pos;
    return true;
  };
  for (u32 s : constrained) {
    bool placed = false;
    for (u32 tile : tile_order) {
      for (u32 p = 0; p < kPositionsPerTile && !placed; ++p) {
        placed = try_place_at(s, tile * kPositionsPerTile + p);
      }
      if (placed) break;
    }
    VSCRUB_CHECK(placed, "could not place region-constrained site");
  }
  std::size_t cursor = 0;  // rolling scan over tile positions
  for (u32 s : free_sites) {
    bool placed = false;
    for (std::size_t step = 0; step < tile_order.size() * kPositionsPerTile && !placed;
         ++step) {
      const std::size_t raw = (cursor + step) % (tile_order.size() * kPositionsPerTile);
      const u32 tile = tile_order[raw / kPositionsPerTile];
      const u32 p = static_cast<u32>(raw % kPositionsPerTile);
      placed = try_place_at(s, tile * kPositionsPerTile + p);
      if (placed) cursor = raw;
    }
    VSCRUB_CHECK(placed, "could not place site (device full or incompatible)");
  }

  // ---- 6. Annealing refinement (HPWL) ----------------------------------------
  // Nets as site lists.
  std::vector<std::vector<u32>> net_sites(nl.net_count());
  std::vector<std::vector<u32>> nets_of_site(sites.size());
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    std::vector<u32> ss;
    const i32 src = site_of(net.driver);
    if (src >= 0) ss.push_back(static_cast<u32>(src));
    for (const Net::Sink& sink : net.sinks) {
      const i32 d = site_of(sink.cell);
      if (d >= 0) ss.push_back(static_cast<u32>(d));
    }
    std::sort(ss.begin(), ss.end());
    ss.erase(std::unique(ss.begin(), ss.end()), ss.end());
    if (ss.size() < 2) continue;
    net_sites[n] = ss;
    for (u32 s : ss) nets_of_site[s].push_back(n);
  }
  auto net_hpwl = [&](NetId n) -> i64 {
    const auto& ss = net_sites[n];
    if (ss.empty()) return 0;
    int min_r = 1 << 30, max_r = -1, min_c = 1 << 30, max_c = -1;
    for (u32 s : ss) {
      const TileCoord t = geom.tile_coord(pl.pos_of_site[s] / kPositionsPerTile);
      min_r = std::min<int>(min_r, t.row);
      max_r = std::max<int>(max_r, t.row);
      min_c = std::min<int>(min_c, t.col);
      max_c = std::max<int>(max_c, t.col);
    }
    return (max_r - min_r) + (max_c - min_c);
  };

  const u64 total_moves =
      static_cast<u64>(options.anneal_moves_per_site) * sites.size();
  if (total_moves > 0 && !sites.empty()) {
    double temperature = 4.0;
    const double cooling =
        total_moves > 1 ? std::pow(0.005 / temperature,
                                   1.0 / static_cast<double>(total_moves))
                        : 1.0;
    for (u64 move = 0; move < total_moves; ++move, temperature *= cooling) {
      const u32 s = static_cast<u32>(rng.uniform(sites.size()));
      const u32 old_pos = pl.pos_of_site[s];
      // Propose a target position within a window around the current one.
      const TileCoord ct = geom.tile_coord(old_pos / kPositionsPerTile);
      const int window = 1 + static_cast<int>(temperature * 4);
      const int nr = std::clamp<int>(
          ct.row + static_cast<int>(rng.uniform(static_cast<u64>(2 * window + 1))) - window,
          0, geom.rows - 1);
      const int nc = std::clamp<int>(
          ct.col + static_cast<int>(rng.uniform(static_cast<u64>(2 * window + 1))) - window,
          0, geom.cols - 1);
      const u32 new_pos =
          geom.tile_index(TileCoord{static_cast<u16>(nr), static_cast<u16>(nc)}) *
              kPositionsPerTile +
          static_cast<u32>(rng.uniform(kPositionsPerTile));
      if (new_pos == old_pos) continue;
      const i32 other = pl.site_of_pos[new_pos];
      // Region constraints for both movers.
      if (!in_region(geom, sites[s], new_pos)) continue;
      if (other >= 0 && !in_region(geom, sites[static_cast<u32>(other)], old_pos)) continue;
      // Slice compatibility after the swap.
      auto compatible_at = [&](u32 site_idx, u32 pos) -> bool {
        const u32 sibling = pos ^ 1u;
        i32 sib = pl.site_of_pos[sibling];
        // The sibling may be one of the movers; resolve post-move occupancy.
        if (sibling == old_pos) sib = other;
        if (sibling == new_pos) sib = static_cast<i32>(s);
        if (sib < 0 || sib == static_cast<i32>(site_idx)) return true;
        return keys_compatible(site_key(sites[site_idx]),
                               site_key(sites[static_cast<u32>(sib)]));
      };
      if (!compatible_at(s, new_pos)) continue;
      if (other >= 0 && !compatible_at(static_cast<u32>(other), old_pos)) continue;

      // Cost delta over affected nets.
      std::vector<NetId> affected = nets_of_site[s];
      if (other >= 0) {
        affected.insert(affected.end(), nets_of_site[static_cast<u32>(other)].begin(),
                        nets_of_site[static_cast<u32>(other)].end());
        std::sort(affected.begin(), affected.end());
        affected.erase(std::unique(affected.begin(), affected.end()),
                       affected.end());
      }
      i64 before = 0;
      for (NetId n : affected) before += net_hpwl(n);
      // Apply.
      pl.site_of_pos[old_pos] = other;
      pl.site_of_pos[new_pos] = static_cast<i32>(s);
      pl.pos_of_site[s] = new_pos;
      if (other >= 0) pl.pos_of_site[static_cast<u32>(other)] = old_pos;
      i64 after = 0;
      for (NetId n : affected) after += net_hpwl(n);
      const i64 delta = after - before;
      if (delta > 0 &&
          rng.uniform01() >= std::exp(-static_cast<double>(delta) / temperature)) {
        // Revert.
        pl.site_of_pos[old_pos] = static_cast<i32>(s);
        pl.site_of_pos[new_pos] = other;
        pl.pos_of_site[s] = old_pos;
        if (other >= 0) pl.pos_of_site[static_cast<u32>(other)] = new_pos;
      }
    }
  }

  // ---- 7. Output taps ---------------------------------------------------------
  std::vector<u8> iopads_used(geom.tile_count(), 0);
  auto alloc_iopad = [&](TileCoord near) -> TapPoint {
    // BFS ring search outward from `near` for a tile with a free IOPAD.
    for (int radius = 0; radius < geom.rows + geom.cols; ++radius) {
      for (int dr = -radius; dr <= radius; ++dr) {
        for (int dc : {-(radius - std::abs(dr)), radius - std::abs(dr)}) {
          const int r = near.row + dr;
          const int c = near.col + dc;
          if (!geom.contains(r, c)) continue;
          const u32 t = geom.tile_index(
              TileCoord{static_cast<u16>(r), static_cast<u16>(c)});
          if (iopads_used[t] < 4) {
            TapPoint tap;
            tap.tile = geom.tile_coord(t);
            tap.pin = static_cast<u8>(iopad_pin(iopads_used[t]));
            ++iopads_used[t];
            return tap;
          }
          if (radius == 0) break;
        }
      }
    }
    throw Error("out of IOPAD observation pins");
  };

  result.output_taps.reserve(nl.output_cells().size());
  for (CellId out : nl.output_cells()) {
    const NetId src = nl.cell(out).inputs[0];
    const i32 drv_site = site_of(nl.net(src).driver);
    TileCoord near{0, 0};
    if (drv_site >= 0) {
      near = geom.tile_coord(pl.pos_of_site[static_cast<u32>(drv_site)] /
                             kPositionsPerTile);
    }
    result.output_taps.push_back(alloc_iopad(near));
  }

  // BRAM input taps for non-constant pins.
  for (auto& binding : result.brams) {
    const Cell& c = nl.cell(binding.cell);
    const bool west = binding.bram_col == 0;
    const TileCoord near{static_cast<u16>(std::min<int>(
                             binding.block * 4, geom.rows - 1)),
                         west ? static_cast<u16>(0)
                              : static_cast<u16>(geom.cols - 1)};
    for (std::size_t pin = 0; pin < c.inputs.size(); ++pin) {
      const NetId n = c.inputs[pin];
      if (n == kNoNet) {
        binding.const_pin_values[pin] = 0;
        continue;
      }
      const Cell& drv = nl.cell(nl.net(n).driver);
      if (drv.kind == CellKind::kConst) {
        binding.const_pin_values[pin] = drv.const_value ? 1 : 0;
        continue;
      }
      binding.input_taps[pin] = alloc_iopad(near);
      binding.input_tap_valid[pin] = 1;
    }
  }

  // ---- 8. Stats ---------------------------------------------------------------
  result.stats.sites_used = sites.size();
  std::vector<bool> slice_used(geom.tile_count() * 2, false);
  std::size_t ffs = 0;
  for (u32 s = 0; s < sites.size(); ++s) {
    slice_used[pl.pos_of_site[s] / 2] = true;
    if (sites[s].has_ff()) ++ffs;
  }
  result.stats.ffs_used = ffs;
  result.stats.slices_used = static_cast<std::size_t>(
      std::count(slice_used.begin(), slice_used.end(), true));
  result.stats.utilization = static_cast<double>(result.stats.slices_used) /
                             static_cast<double>(geom.slice_count());
  return result;
}

}  // namespace vscrub::pnr_detail
