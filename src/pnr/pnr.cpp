// compile(): packing/placement -> physical netlist -> routing -> bitgen.
#include "pnr/pnr.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/log.h"
#include "common/rng.h"
#include "fabric/routing_model.h"
#include "netlist/legalize.h"
#include "pnr/pnr_internal.h"

namespace vscrub {

using namespace pnr_detail;

namespace {

constexpr u32 kPositionsPerTile = 4;

struct SiteLoc {
  TileCoord tile;
  int lut = 0;  ///< LUT position 0..3 (== FF index); slice = lut/2
};

SiteLoc loc_of(const DeviceGeometry& geom, const Placement& pl, u32 site) {
  const u32 pos = pl.pos_of_site[site];
  return SiteLoc{geom.tile_coord(pos / kPositionsPerTile),
                 static_cast<int>(pos % kPositionsPerTile)};
}

/// Expands a k-input truth table to the 4-input physical LUT by making the
/// output independent of the unused (half-latch-fed) pins — the "redundant
/// encoding" of paper §III-C.
u16 expand_truth(u16 truth, int num_inputs) {
  const unsigned mask = (1u << num_inputs) - 1;
  u16 expanded = 0;
  for (unsigned idx = 0; idx < 16; ++idx) {
    if ((truth >> (idx & mask)) & 1) expanded |= static_cast<u16>(1u << idx);
  }
  return expanded;
}

}  // namespace

PlacedDesign compile(std::shared_ptr<const Netlist> netlist,
                     std::shared_ptr<const ConfigSpace> space,
                     const PnrOptions& options) {
  // Legalize: constants feeding LUT data pins must be folded into truth
  // tables (a half-latch cannot represent a constant 0 at a LUT pin).
  {
    Netlist legalized = *netlist;
    if (fold_constant_lut_inputs(legalized) > 0) {
      netlist = std::make_shared<const Netlist>(std::move(legalized));
    }
  }
  const Netlist& nl = *netlist;
  const DeviceGeometry& geom = space->geometry();
  Rng rng(options.seed);

  PlacedDesign design(netlist, space);
  design.options = options;

  PackPlaceResult pp = pack_and_place(nl, geom, options, rng);
  const auto& sites = pp.sites;
  const Placement& pl = pp.placement;
  design.output_taps = pp.output_taps;
  design.brams = std::move(pp.brams);
  design.stats = pp.stats;

  const bool raddrc =
      options.halflatch_policy != HalfLatchPolicy::kUseHalfLatches;

  auto site_of = [&](CellId id) -> i32 {
    auto it = pp.site_of_cell.find(id);
    return it == pp.site_of_cell.end() ? -1 : static_cast<i32>(it->second);
  };
  std::unordered_map<CellId, std::size_t> bram_index;
  for (std::size_t i = 0; i < design.brams.size(); ++i) {
    bram_index[design.brams[i].cell] = i;
  }
  std::unordered_map<CellId, std::size_t> output_index;
  for (std::size_t i = 0; i < nl.output_cells().size(); ++i) {
    output_index[nl.output_cells()[i]] = i;
  }
  std::unordered_map<u64, u32> relay_lookup;  // key: bram cell<<8 | lane
  for (u32 s = 0; s < sites.size(); ++s) {
    if (sites[s].kind == Site::Kind::kBramRelay) {
      relay_lookup[(static_cast<u64>(sites[s].bram_cell) << 8) |
                   sites[s].bram_lane] = s;
    }
  }

  // ---- Build the physical netlist --------------------------------------------
  std::vector<PhysNet> phys;

  // Source of a netlist net in fabric coordinates (invalid => not routed
  // from the fabric: consts and internal nets).
  auto net_source = [&](NetId n) -> std::optional<PhysNet> {
    const Net& net = nl.net(n);
    const Cell& drv = nl.cell(net.driver);
    PhysNet p;
    p.net = n;
    switch (drv.kind) {
      case CellKind::kLut:
      case CellKind::kSrl16:
      case CellKind::kInput: {
        const i32 s = site_of(net.driver);
        VSCRUB_CHECK(s >= 0, "unplaced driver cell");
        const SiteLoc loc = loc_of(geom, pl, static_cast<u32>(s));
        p.src_tile = loc.tile;
        p.src_out = static_cast<u8>(comb_output_index(loc.lut));
        return p;
      }
      case CellKind::kFf: {
        const i32 s = site_of(net.driver);
        VSCRUB_CHECK(s >= 0, "unplaced FF cell");
        const SiteLoc loc = loc_of(geom, pl, static_cast<u32>(s));
        p.src_tile = loc.tile;
        p.src_out = static_cast<u8>(reg_output_index(loc.lut));
        return p;
      }
      case CellKind::kBram: {
        const u64 key = (static_cast<u64>(net.driver) << 8) | net.driver_pin;
        auto it = relay_lookup.find(key);
        if (it == relay_lookup.end()) return std::nullopt;  // lane unused
        const SiteLoc loc = loc_of(geom, pl, it->second);
        p.src_tile = loc.tile;
        p.src_out = static_cast<u8>(comb_output_index(loc.lut));
        return p;
      }
      default:
        return std::nullopt;  // consts handled separately
    }
  };

  // Sink pin mapping. CE/SR/const pins are handled at slice level below.
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    if (net.sinks.empty()) continue;
    const Cell& drv = nl.cell(net.driver);
    if (drv.kind == CellKind::kConst || drv.kind == CellKind::kOutput) continue;
    auto src = net_source(n);
    if (!src) continue;
    const i32 drv_site = site_of(net.driver);

    std::vector<PhysNet::Sink> sinks;
    for (const Net::Sink& sink : net.sinks) {
      const Cell& sc = nl.cell(sink.cell);
      switch (sc.kind) {
        case CellKind::kLut: {
          const i32 s = site_of(sink.cell);
          VSCRUB_CHECK(s >= 0, "unplaced LUT sink");
          const SiteLoc loc = loc_of(geom, pl, static_cast<u32>(s));
          sinks.push_back(
              {loc.tile, static_cast<u8>(lut_input_pin(loc.lut, sink.pin))});
          break;
        }
        case CellKind::kSrl16: {
          const i32 s = site_of(sink.cell);
          const SiteLoc loc = loc_of(geom, pl, static_cast<u32>(s));
          if (sink.pin == 0) {  // shift data in via the bypass pin
            sinks.push_back({loc.tile, static_cast<u8>(byp_pin(loc.lut))});
          } else if (sink.pin >= 2) {  // tap address on the LUT input pins
            sinks.push_back({loc.tile, static_cast<u8>(lut_input_pin(
                                           loc.lut, sink.pin - 2))});
          }
          // pin 1 (CE) handled at slice level.
          break;
        }
        case CellKind::kFf: {
          if (sink.pin != 0) break;  // CE/SR at slice level
          const i32 s = site_of(sink.cell);
          VSCRUB_CHECK(s >= 0, "unplaced FF sink");
          if (s == drv_site && sites[static_cast<u32>(s)].lut_cell == net.driver) {
            break;  // paired LUT->FF: internal D path, not routed
          }
          const SiteLoc loc = loc_of(geom, pl, static_cast<u32>(s));
          sinks.push_back({loc.tile, static_cast<u8>(byp_pin(loc.lut))});
          break;
        }
        case CellKind::kOutput: {
          const TapPoint& tap = design.output_taps[output_index.at(sink.cell)];
          sinks.push_back({tap.tile, tap.pin});
          break;
        }
        case CellKind::kBram: {
          auto& binding = design.brams[bram_index.at(sink.cell)];
          if (binding.input_tap_valid[sink.pin]) {
            const TapPoint& tap = binding.input_taps[sink.pin];
            sinks.push_back({tap.tile, tap.pin});
          }
          break;
        }
        default:
          break;
      }
    }
    // Dedupe pins (a net can feed two pins that map to one physical pin).
    std::sort(sinks.begin(), sinks.end(), [](const auto& a, const auto& b) {
      return std::tie(a.tile.row, a.tile.col, a.pin) <
             std::tie(b.tile.row, b.tile.col, b.pin);
    });
    sinks.erase(std::unique(sinks.begin(), sinks.end(),
                            [](const auto& a, const auto& b) {
                              return a.tile == b.tile && a.pin == b.pin;
                            }),
                sinks.end());
    if (sinks.empty()) continue;
    src->sinks = std::move(sinks);
    phys.push_back(std::move(*src));
  }

  // ---- Slice-level control pins (CE/SR) and constant ties --------------------
  // Gather per-slice control requirements.
  struct SliceCtl {
    bool has_seq = false;  ///< any FF or SRL in the slice
    NetId ce = kNoNet;
    NetId sr = kNoNet;
  };
  std::map<std::pair<u32, int>, SliceCtl> slice_ctl;  // (tile index, slice)
  for (u32 s = 0; s < sites.size(); ++s) {
    const Site& site = sites[s];
    const bool seq = site.kind == Site::Kind::kSrl ||
                     (site.kind == Site::Kind::kLogic && site.has_ff());
    if (!seq) continue;
    const SiteLoc loc = loc_of(geom, pl, s);
    auto& ctl = slice_ctl[{geom.tile_index(loc.tile), loc.lut / 2}];
    ctl.has_seq = true;
    if (site.ce_net != kNoNet) ctl.ce = site.ce_net;
    if (site.kind == Site::Kind::kLogic && site.sr_net != kNoNet) {
      ctl.sr = site.sr_net;
    }
  }

  // Constant ties: collected per polarity, then sharded over providers.
  std::vector<PhysNet::Sink> const_ties[2];
  auto tie_const = [&](TileCoord tile, u8 pin, bool value) {
    const_ties[value ? 1 : 0].push_back({tile, pin});
  };
  auto record_halflatch = [&](TileCoord tile, u8 pin, bool critical) {
    design.halflatch_uses.push_back({tile, pin, critical});
  };

  // Map net id -> pointer into phys for appending control-pin sinks.
  std::unordered_map<NetId, std::size_t> phys_of_net;
  for (std::size_t i = 0; i < phys.size(); ++i) phys_of_net[phys[i].net] = i;
  auto append_sink = [&](NetId n, TileCoord tile, u8 pin) {
    auto it = phys_of_net.find(n);
    if (it == phys_of_net.end()) {
      auto src = net_source(n);
      VSCRUB_CHECK(src.has_value(), "control net has no routable source");
      phys_of_net[n] = phys.size();
      phys.push_back(std::move(*src));
      it = phys_of_net.find(n);
    }
    phys[it->second].sinks.push_back({tile, pin});
  };

  for (const auto& [key, ctl] : slice_ctl) {
    const TileCoord tile = geom.tile_coord(key.first);
    const int slice = key.second;
    const u8 cep = static_cast<u8>(ce_pin(slice));
    const u8 srp = static_cast<u8>(sr_pin(slice));
    // CE pin: routed net, constant, or idle (half-latch high).
    bool ce_const;
    const bool ce_is_const =
        ctl.ce != kNoNet &&
        nl.cell(nl.net(ctl.ce).driver).kind == CellKind::kConst &&
        (ce_const = nl.cell(nl.net(ctl.ce).driver).const_value, true);
    if (ctl.ce != kNoNet && !ce_is_const) {
      append_sink(ctl.ce, tile, cep);
    } else {
      const bool want = ce_is_const ? ce_const : true;  // idle CE == enabled
      if (!raddrc && want == halflatch_startup_value(cep)) {
        record_halflatch(tile, cep, /*critical=*/true);
      } else {
        tie_const(tile, cep, want);
      }
    }
    // SR pin.
    bool sr_const;
    const bool sr_is_const =
        ctl.sr != kNoNet &&
        nl.cell(nl.net(ctl.sr).driver).kind == CellKind::kConst &&
        (sr_const = nl.cell(nl.net(ctl.sr).driver).const_value, true);
    if (ctl.sr != kNoNet && !sr_is_const) {
      append_sink(ctl.sr, tile, srp);
    } else {
      const bool want = sr_is_const ? sr_const : false;  // idle SR == inactive
      if (!raddrc && want == halflatch_startup_value(srp)) {
        record_halflatch(tile, srp, /*critical=*/true);
      } else {
        tie_const(tile, srp, want);
      }
    }
  }

  // SRL constant tap-address pins.
  for (u32 s = 0; s < sites.size(); ++s) {
    const Site& site = sites[s];
    if (site.kind != Site::Kind::kSrl) continue;
    const Cell& c = nl.cell(site.lut_cell);
    const SiteLoc loc = loc_of(geom, pl, s);
    for (int i = 0; i < 4; ++i) {
      const NetId a = c.inputs[static_cast<std::size_t>(2 + i)];
      const u8 pin = static_cast<u8>(lut_input_pin(loc.lut, i));
      if (a == kNoNet) {
        record_halflatch(loc.tile, pin, /*critical=*/true);
        continue;
      }
      const Cell& drv = nl.cell(nl.net(a).driver);
      if (drv.kind != CellKind::kConst) continue;  // routed via normal sinks
      if (!raddrc && drv.const_value == halflatch_startup_value(pin)) {
        // Unlike plain LUT inputs, an SRL tap address is *not* redundantly
        // encoded: a half-latch flip moves the tap.
        record_halflatch(loc.tile, pin, /*critical=*/true);
      } else {
        tie_const(loc.tile, pin, drv.const_value);
      }
    }
  }

  // Unused LUT input pins on plain LUTs: non-critical half-latch uses
  // (redundant truth encoding makes them don't-cares).
  for (u32 s = 0; s < sites.size(); ++s) {
    const Site& site = sites[s];
    if (site.kind != Site::Kind::kLogic || site.lut_cell == kNoCell) continue;
    const Cell& c = nl.cell(site.lut_cell);
    const SiteLoc loc = loc_of(geom, pl, s);
    for (int i = c.num_inputs; i < kLutInputs; ++i) {
      record_halflatch(loc.tile, static_cast<u8>(lut_input_pin(loc.lut, i)),
                       /*critical=*/false);
    }
  }

  // Shard constant ties over the provider sites.
  for (int v = 0; v < 2; ++v) {
    auto& ties = const_ties[v];
    const auto& providers = pp.const_sites[v];
    VSCRUB_CHECK(ties.empty() || !providers.empty(),
                 "constant demand was underestimated at packing time");
    for (std::size_t i = 0; i < ties.size(); i += 24) {
      const u32 provider = providers[(i / 24) % providers.size()];
      const SiteLoc loc = loc_of(geom, pl, provider);
      PhysNet p;
      p.net = kNoNet;
      p.src_tile = loc.tile;
      p.src_out = static_cast<u8>(comb_output_index(loc.lut));
      for (std::size_t j = i; j < std::min(ties.size(), i + 24); ++j) {
        p.sinks.push_back(ties[j]);
      }
      phys.push_back(std::move(p));
    }
  }

  // ---- Route ------------------------------------------------------------------
  Router router(geom, options.router_max_iters);
  int iterations = 0;
  std::vector<RouteTree> trees = router.route(phys, &iterations);
  design.stats.router_iterations = iterations;

  // ---- Bitgen -----------------------------------------------------------------
  Bitstream& bs = design.bitstream;

  // Sites.
  for (u32 s = 0; s < sites.size(); ++s) {
    const Site& site = sites[s];
    const SiteLoc loc = loc_of(geom, pl, s);
    const TileCoord t = loc.tile;
    const int lut = loc.lut;
    switch (site.kind) {
      case Site::Kind::kLogic: {
        if (site.lut_cell != kNoCell) {
          const Cell& c = nl.cell(site.lut_cell);
          bs.set_lut_truth(t, lut, expand_truth(c.lut_truth, c.num_inputs));
          bs.set_lut_mode(t, lut, LutMode::kLut);
        }
        if (site.ff_cell != kNoCell) {
          const Cell& f = nl.cell(site.ff_cell);
          bs.set_ff_used(t, lut, true);
          bs.set_ff_init(t, lut, f.ff_init);
          bs.set_ff_dsrc_bypass(t, lut, site.lut_cell == kNoCell ||
                                            nl.net(f.inputs[0]).driver !=
                                                site.lut_cell);
          bs.set_slice_clk_en(t, lut / 2, true);
        }
        break;
      }
      case Site::Kind::kSrl: {
        const Cell& c = nl.cell(site.lut_cell);
        bs.set_lut_mode(t, lut, LutMode::kSrl16);
        bs.set_lut_truth(t, lut, c.lut_truth);  // initial contents
        bs.set_slice_clk_en(t, lut / 2, true);
        design.dynamic_lut_sites.push_back(
            {t, static_cast<u8>(lut)});
        break;
      }
      case Site::Kind::kInput:
      case Site::Kind::kBramRelay:
      case Site::Kind::kExtConst: {
        // Overridden by the harness; configure as a benign empty LUT.
        bs.set_lut_mode(t, lut, LutMode::kLut);
        break;
      }
      case Site::Kind::kRomConst: {
        bs.set_lut_mode(t, lut, LutMode::kLut);
        bs.set_lut_truth(t, lut, site.const_value ? 0xFFFF : 0x0000);
        break;
      }
    }
  }

  // Routing programming.
  design.routed_nets.reserve(phys.size());
  for (std::size_t i = 0; i < phys.size(); ++i) {
    const PhysNet& p = phys[i];
    const RouteTree& tree = trees[i];
    RoutedNet rn;
    rn.net = p.net;
    rn.wires = tree.wires;
    for (const RoutedWire& rw : tree.wires) {
      bs.set_omux_code(rw.tile, rw.dir, rw.windex, rw.code);
    }
    for (std::size_t si = 0; si < p.sinks.size(); ++si) {
      bs.set_imux_code(p.sinks[si].tile, p.sinks[si].pin, tree.sink_codes[si]);
    }
    design.stats.wires_used += tree.wires.size();
    design.routed_nets.push_back(std::move(rn));
  }
  design.stats.total_wirelength = design.stats.wires_used;

  // BRAM configuration.
  for (auto& binding : design.brams) {
    bs.set_bram_config(binding.bram_col, binding.block, 0x01);  // bit0: used
    const auto& init = nl.bram_init(binding.cell);
    for (int word = 0; word < kBramWords; ++word) {
      for (int bit = 0; bit < kBramWidth; ++bit) {
        bs.set_bram_content_bit(
            binding.bram_col, binding.block,
            static_cast<u16>(word * kBramWidth + bit),
            (init[static_cast<std::size_t>(word)] >> bit) & 1);
      }
    }
    // Fill harness drive points for used DOUT lanes.
    const Cell& c = nl.cell(binding.cell);
    for (std::size_t lane = 0; lane < c.outputs.size(); ++lane) {
      if (!binding.dout_drive_valid[lane]) continue;
      const u32 relay =
          relay_lookup.at((static_cast<u64>(binding.cell) << 8) | lane);
      const SiteLoc loc = loc_of(geom, pl, relay);
      binding.dout_drives[lane] = DrivePoint{
          loc.tile, static_cast<u8>(comb_output_index(loc.lut))};
    }
  }

  // Input drive points / external constants.
  design.input_drives.resize(nl.input_cells().size());
  for (std::size_t i = 0; i < nl.input_cells().size(); ++i) {
    const i32 s = site_of(nl.input_cells()[i]);
    VSCRUB_CHECK(s >= 0, "unplaced input cell");
    const SiteLoc loc = loc_of(geom, pl, static_cast<u32>(s));
    design.input_drives[i] = DrivePoint{
        loc.tile, static_cast<u8>(comb_output_index(loc.lut))};
  }
  for (int v = 0; v < 2; ++v) {
    for (u32 s : pp.const_sites[v]) {
      if (sites[s].kind != Site::Kind::kExtConst) continue;
      const SiteLoc loc = loc_of(geom, pl, s);
      design.external_consts.push_back(
          {DrivePoint{loc.tile, static_cast<u8>(comb_output_index(loc.lut))},
           v != 0});
    }
  }

  VSCRUB_INFO("compiled ", nl.name(), ": ", design.stats.slices_used,
              " slices (", design.stats.utilization * 100.0, "%), ",
              design.stats.wires_used, " wires, router iters ",
              design.stats.router_iterations);
  return design;
}

PlacedDesign compile(Netlist netlist, const DeviceGeometry& geom,
                     const PnrOptions& options) {
  return compile(std::make_shared<const Netlist>(std::move(netlist)),
                 std::make_shared<const ConfigSpace>(geom), options);
}

}  // namespace vscrub
