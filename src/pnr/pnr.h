// Public PnR entry point: compile a netlist onto a device.
#pragma once

#include <memory>

#include "pnr/placed_design.h"

namespace vscrub {

/// Packs, places, routes and bitgens `netlist` for the device described by
/// `space`. Throws Error if the design does not fit or cannot be routed
/// within options.router_max_iters PathFinder iterations.
PlacedDesign compile(std::shared_ptr<const Netlist> netlist,
                     std::shared_ptr<const ConfigSpace> space,
                     const PnrOptions& options = {});

/// Convenience overload owning fresh copies.
PlacedDesign compile(Netlist netlist, const DeviceGeometry& geom,
                     const PnrOptions& options = {});

}  // namespace vscrub
