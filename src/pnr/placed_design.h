// PlacedDesign: the output of compile() — a netlist bound to fabric sites,
// its routed nets, the generated golden bitstream, and the bookkeeping the
// rest of the system needs (harness attachment points, half-latch usage for
// RadDRC and the beam model, dynamic-state frames for scrub masking).
#pragma once

#include <memory>
#include <vector>

#include "bitstream/bitstream.h"
#include "netlist/netlist.h"

namespace vscrub {

/// A LUT site on the fabric: tile + LUT index 0..3 (slice = lut/2).
struct LutSiteRef {
  TileCoord tile;
  u8 lut = 0;
  constexpr auto operator<=>(const LutSiteRef&) const = default;
};

/// CLB output index of a site's combinational output: slice s, LUT l ->
/// s*4 + (l%2); the registered outputs are s*4 + 2 + (f%2).
constexpr int comb_output_index(int lut) {
  return (lut / kLutsPerSlice) * 4 + (lut % kLutsPerSlice);
}
constexpr int reg_output_index(int ff) {
  return (ff / kLutsPerSlice) * 4 + 2 + (ff % kLutsPerSlice);
}

/// A point the simulation harness drives directly (primary inputs and BRAM
/// dout relays): the combinational output `out_index` of `tile` is overridden
/// with a harness-supplied value every cycle.
struct DrivePoint {
  TileCoord tile;
  u8 out_index = 0;
};

/// A point the harness observes (primary outputs): IOPAD pin `pin` of `tile`.
struct TapPoint {
  TileCoord tile;
  u8 pin = 0;  ///< kPinIopadBase..kPinIopadBase+3
};

/// One wire of a routed net: the out-wire (dir, windex) of `tile`, with the
/// OMUX code that was programmed to feed it.
struct RoutedWire {
  TileCoord tile;
  Dir dir = Dir::kNorth;
  u8 windex = 0;
  u8 code = 0;
};

struct RoutedNet {
  NetId net = kNoNet;
  std::vector<RoutedWire> wires;
};

/// Record of a pin whose value comes from a half-latch (no routed source).
/// `critical` pins change design behaviour if the half-latch flips (CE, SR);
/// non-critical ones are covered by redundant LUT encoding (unused LUT
/// inputs). Paper §III-C.
struct HalfLatchUse {
  TileCoord tile;
  u8 pin = 0;
  bool critical = false;
};

enum class HalfLatchPolicy : u8 {
  /// Xilinx-CAD-like default: constants and idle control pins come from
  /// half-latches wherever the polarity matches.
  kUseHalfLatches,
  /// RadDRC output: control-pin constants are routed from LUT-ROM constant
  /// generators; only non-critical (redundantly-encoded) LUT-input
  /// half-latches remain.
  kLutRomConstants,
  /// RadDRC alternative: constants are routed from external input ports
  /// that the harness drives.
  kExternalConstants,
};

struct PnrOptions {
  HalfLatchPolicy halflatch_policy = HalfLatchPolicy::kUseHalfLatches;
  u64 seed = 1;
  /// Simulated-annealing moves per site (0 disables refinement).
  u32 anneal_moves_per_site = 64;
  /// PathFinder iterations before the router gives up.
  int router_max_iters = 48;
};

struct PnrStats {
  std::size_t sites_used = 0;   ///< LUT sites (LUT/SRL/input/relay/ROM)
  std::size_t slices_used = 0;
  std::size_t ffs_used = 0;
  std::size_t wires_used = 0;   ///< routed wire segments
  std::size_t total_wirelength = 0;
  int router_iterations = 0;
  double utilization = 0.0;     ///< slices_used / device slices
};

struct PlacedDesign {
  std::shared_ptr<const Netlist> netlist;
  std::shared_ptr<const ConfigSpace> space;
  PnrOptions options;

  Bitstream bitstream;  ///< the golden configuration

  /// Harness attachment, aligned with netlist->input_cells() /
  /// output_cells().
  std::vector<DrivePoint> input_drives;
  std::vector<TapPoint> output_taps;

  /// Constant values the harness must drive when the design was compiled
  /// with HalfLatchPolicy::kExternalConstants: drive point + value.
  struct ExternalConst {
    DrivePoint drive;
    bool value = false;
  };
  std::vector<ExternalConst> external_consts;

  /// BRAM binding: netlist cell -> block, virtual port wiring.
  struct BramBinding {
    CellId cell = kNoCell;
    u16 bram_col = 0;
    u16 block = 0;
    /// Tap points carrying the routed values of non-constant input pins;
    /// aligned with the cell's input pins (pin -> tap), kNoTap if the pin is
    /// constant or unconnected (then `const_pin_values` applies).
    std::vector<TapPoint> input_taps;
    std::vector<u8> input_tap_valid;    // bool per pin
    std::vector<u8> const_pin_values;   // value per pin when no tap
    /// Drive points emitting DOUT lanes into the fabric (only lanes with
    /// sinks are materialized).
    std::vector<DrivePoint> dout_drives;
    std::vector<u8> dout_drive_valid;   // bool per lane
  };
  std::vector<BramBinding> brams;

  std::vector<RoutedNet> routed_nets;
  std::vector<HalfLatchUse> halflatch_uses;

  /// LUT sites holding dynamic state (SRL16/RAM16) — drives the scrubber's
  /// frame masking and the read-modify-write repair path.
  std::vector<LutSiteRef> dynamic_lut_sites;

  PnrStats stats;

  PlacedDesign(std::shared_ptr<const Netlist> nl,
               std::shared_ptr<const ConfigSpace> sp)
      : netlist(std::move(nl)), space(std::move(sp)), bitstream(space) {}
};

}  // namespace vscrub
