#include "bist/bist.h"

#include <memory>

#include "bitstream/selectmap.h"
#include "fabric/routing_model.h"
#include "netlist/builder.h"
#include "sim/harness.h"

namespace vscrub {
namespace {

/// Builds the wire-walk configuration for wire index `w`. Each CLB hosts
/// four chains at once -- LUT/FF site `l` drives the tile's direction-`l`
/// wire `w` -- so one 20-step reconfiguration sequence exercises all
/// 4*20 = 80 OMUX wires of every CLB (paper SII-B). Chain heads (tiles with
/// no upstream neighbor in a direction) hold constant zero; every other
/// tile is an inverter of its upstream FF, all FFs initialized to zero.
Bitstream build_wire_test_config(std::shared_ptr<const ConfigSpace> space,
                                 int w) {
  const DeviceGeometry& geom = space->geometry();
  Bitstream bs(space);
  for (u16 row = 0; row < geom.rows; ++row) {
    for (u16 col = 0; col < geom.cols; ++col) {
      const TileCoord t{row, col};
      for (int l = 0; l < kLutsPerClb; ++l) {
        const Dir dir = static_cast<Dir>(l);
        const Dir from = opposite(dir);
        const bool head = !geom.neighbor(t, from).has_value();
        if (head) {
          bs.set_lut_truth(t, l, 0x0000);  // constant zero at the chain head
        } else {
          // Inverter on pin 0, fed by the upstream tile's dir-going wire.
          bs.set_lut_truth(t, l, 0x5555);
          bs.set_imux_code(t, lut_input_pin(l, 0),
                           encode_imux(PinSource{PinSource::Kind::kIncoming,
                                                 from, static_cast<u8>(w), 0}));
        }
        bs.set_ff_used(t, l, true);
        bs.set_ff_init(t, l, false);
        bs.set_ff_dsrc_bypass(t, l, false);
        bs.set_slice_clk_en(t, l / kLutsPerSlice, true);
        if (geom.neighbor(t, dir).has_value()) {
          const auto code = encode_omux(
              dir, w,
              WireSource{WireSource::Kind::kClbOutput,
                         static_cast<u8>(reg_output_index(l)), Dir::kNorth,
                         0});
          VSCRUB_CHECK(code.has_value(), "wire test: OMUX wire must accept FF");
          bs.set_omux_code(t, dir, w, *code);
        }
      }
    }
  }
  return bs;
}

/// Captured FF states of the whole device (the "readback with capture"):
/// one nibble per tile, one bit per chained FF.
std::vector<u8> capture_ffs(const DeviceGeometry& geom, FabricSim& fabric) {
  std::vector<u8> state(geom.tile_count());
  for (u32 t = 0; t < geom.tile_count(); ++t) {
    u8 nibble = 0;
    for (int l = 0; l < kLutsPerClb; ++l) {
      if (fabric.output_value(geom.tile_coord(t),
                              static_cast<u8>(reg_output_index(l)))) {
        nibble |= static_cast<u8>(1u << l);
      }
    }
    state[t] = nibble;
  }
  return state;
}

}  // namespace

WireTestResult run_wire_test(std::shared_ptr<const ConfigSpace> space,
                             FabricSim& fabric, const WireTestOptions& options) {
  const DeviceGeometry& geom = space->geometry();
  WireTestResult result;
  const SelectMapPort port(space.get(), SelectMapTiming::actel_profile());
  const SimTime readback_cost = port.full_readback_cost();

  // Fault-free reference fabric run in lockstep.
  FabricSim reference(space);

  for (int w = 0; w < options.wires_to_test; ++w) {
    const Bitstream config = build_wire_test_config(space, w);
    if (w == 0) {
      fabric.full_configure(config);
      reference.full_configure(config);
      // The initial load is the test configuration, not a partial reconfig.
    } else {
      // Partial reconfiguration: rewrite only the frames that changed
      // (IMUX pin codes and OMUX codes for the new wire index).
      ++result.partial_reconfigs;
      // A partial reconfiguration cannot re-initialize FFs; issue a logic
      // reset after rewriting (the test controller owns the device).
      for (u32 gf = 0; gf < space->frame_count(); ++gf) {
        const FrameAddress fa = space->frame_of_global(gf);
        const BitVector& want = config.frame(gf);
        if (!(fabric.read_frame(fa) == want)) {
          fabric.write_frame(fa, want);
          result.modeled_time += port.frame_cost(fa);
        }
        if (!(reference.read_frame(fa) == want)) {
          reference.write_frame(fa, want);
        }
      }
      fabric.reset();
      reference.reset();
    }

    for (int step = 0; step < 2; ++step) {
      fabric.clock();
      reference.clock();
      ++result.readbacks;
      result.modeled_time += readback_cost;
      const auto got = capture_ffs(geom, fabric);
      const auto want = capture_ffs(geom, reference);
      for (u32 t = 0; t < geom.tile_count(); ++t) {
        if (got[t] == want[t]) continue;
        const u8 diff = got[t] ^ want[t];
        for (u8 l = 0; l < kLutsPerClb; ++l) {
          if (diff & (1u << l)) {
            result.findings.push_back(WireTestFinding{
                geom.tile_coord(t), static_cast<u8>(w), l, step == 0});
          }
        }
      }
    }
  }
  return result;
}

Netlist bist_clb_cascade(int cascades, int width) {
  VSCRUB_CHECK(cascades >= 2, "need at least two cascades to compare");
  Netlist nl("bist_clb_" + std::to_string(cascades));
  Builder b(nl);
  // 6-bit LFSR counter generates the shared stimulus bit (paper §II-B).
  const Bus counter = b.lfsr(6, 0, 0x2B);
  const NetId stim = counter[5];

  // Identical shift-register cascades; adjacent outputs compared.
  std::vector<NetId> outs;
  for (int c = 0; c < cascades; ++c) {
    NetId d = stim;
    Bus regs;
    for (int i = 0; i < width; ++i) {
      d = b.add_reg(d);
      regs.push_back(d);
    }
    // Fold the cascade state so a fault anywhere in it reaches the output.
    outs.push_back(b.xor_reduce(regs));
  }
  for (int c = 0; c + 1 < cascades; ++c) {
    const NetId mismatch =
        b.xor_(outs[static_cast<std::size_t>(c)], outs[static_cast<std::size_t>(c + 1)]);
    // Sticky error latch.
    const NetId placeholder = nl.const_net(false);
    const NetId q = nl.add_ff(placeholder, false);
    nl.rewire_input(nl.net(q).driver, 0, b.or_(q, mismatch));
    nl.add_output("err[" + std::to_string(c) + "]", q);
  }
  return nl;
}

ClbBistResult run_clb_bist(const PlacedDesign& pattern, FabricSim& fabric,
                           u64 max_cycles) {
  ClbBistResult result;
  result.slice_coverage = pattern.stats.utilization;
  DesignHarness harness(pattern, fabric);
  // Do not reconfigure: the caller has loaded the pattern and injected
  // faults underneath it.
  harness.restart();
  for (u64 t = 0; t < max_cycles; ++t) {
    harness.step();
    if (harness.last_outputs().lo != 0 || harness.last_outputs().hi != 0) {
      result.error_detected = true;
      result.cycles_to_detect = t + 1;
      break;
    }
  }
  return result;
}

BramBistResult run_bram_bist(const PlacedDesign& checker, FabricSim& fabric,
                             u64 max_cycles) {
  BramBistResult result;
  DesignHarness harness(checker, fabric);
  harness.restart();
  for (u64 t = 0; t < max_cycles; ++t) {
    harness.step();
    if (harness.last_outputs().lo != 0) {
      result.error_detected = true;
      result.cycles_to_detect = t + 1;
      break;
    }
  }
  return result;
}

}  // namespace vscrub
