// Built-in self-test for permanent faults (paper §II-B, Fig. 5): on-orbit
// detection and isolation of opens/shorts with a minimum number of
// configurations.
//
//  * Wire test: one hand-crafted configuration — column 0 driving constant
//    zero, all other columns inverters chained through the same output-mux
//    wire, all FFs initialized to zero — repeatedly partially reconfigured
//    to walk the 20 OMUX wires per direction. One clock step + readback
//    checks stuck-at-1, a second checks stuck-at-0: 20 partial
//    reconfigurations and 40 readbacks test the 80 OMUX wires of each CLB.
//  * CLB test: a cascade of 34-bit LFSRs fed by a 6-bit LFSR counter;
//    adjacent registers are compared and mismatches latch into an error
//    accumulator. Two complementary placements cover all CLBs.
//  * BRAM test: every location holds its own address in both bytes;
//    comparison logic logs byte mismatches.
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "pnr/placed_design.h"
#include "sim/fabric_sim.h"

namespace vscrub {

// ---- Wire test ---------------------------------------------------------------

struct WireTestOptions {
  /// Wires walked per direction (paper: the 20 OMUX wires). Each CLB hosts
  /// four chains at once (one per direction, using its four LUT/FF sites),
  /// so the walk covers 4 * wires_to_test OMUX wires per CLB.
  int wires_to_test = kOmuxWiresPerDir;
};

struct WireTestFinding {
  TileCoord tile;  ///< CLB whose captured FF deviated
  u8 windex = 0;   ///< wire index under test when the deviation appeared
  u8 site = 0;     ///< chained FF site (== direction) that deviated
  bool stuck_at_one = false;  ///< detected at step 1 (else stuck-at-0, step 2)
};

struct WireTestResult {
  int partial_reconfigs = 0;
  int readbacks = 0;
  std::vector<WireTestFinding> findings;
  bool pass() const { return findings.empty(); }
  SimTime modeled_time;
};

/// Runs the wire-walk test on `fabric` (which may carry injected permanent
/// faults). The fabric is reconfigured by the test; prior contents are lost.
WireTestResult run_wire_test(std::shared_ptr<const ConfigSpace> space,
                             FabricSim& fabric,
                             const WireTestOptions& options = {});

// ---- CLB test -----------------------------------------------------------------

/// The CLB BIST netlist: `cascades` LFSRs of `width` bits fed by a shared
/// 6-bit LFSR counter; adjacent outputs compared into sticky error latches.
Netlist bist_clb_cascade(int cascades, int width = 34);

struct ClbBistResult {
  bool error_detected = false;
  u64 cycles_to_detect = 0;
  double slice_coverage = 0.0;  ///< slices exercised / device slices
};

/// Runs a compiled CLB BIST pattern on `fabric` for up to `max_cycles`.
ClbBistResult run_clb_bist(const PlacedDesign& pattern, FabricSim& fabric,
                           u64 max_cycles);

// ---- BRAM test ------------------------------------------------------------------

struct BramBistResult {
  bool error_detected = false;
  u64 cycles_to_detect = 0;
};

/// Runs the compiled address-in-data BRAM checker (designs::bram_selftest).
BramBistResult run_bram_bist(const PlacedDesign& checker, FabricSim& fabric,
                             u64 max_cycles);

}  // namespace vscrub
