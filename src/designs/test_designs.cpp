#include "designs/test_designs.h"

#include <string>

#include "netlist/builder.h"
#include "netlist/refsim.h"

namespace vscrub::designs {

Netlist lfsr_cluster(int clusters, int lfsr_width, int lfsrs_per_cluster) {
  VSCRUB_CHECK(clusters >= 1, "need at least one cluster");
  Netlist nl("lfsr_" + std::to_string(clusters));
  Builder b(nl);
  // One seed input keeps the design externally controllable (the testbench
  // gates the LFSRs' clock-enable to start them deterministically).
  const NetId run = nl.add_input("run");
  for (int c = 0; c < clusters; ++c) {
    Bus cluster_bits;
    for (int l = 0; l < lfsrs_per_cluster; ++l) {
      // Distinct non-zero seeds per LFSR keep the cluster outputs mixed.
      const u64 seed =
          (static_cast<u64>(c) * 2654435761u + static_cast<u64>(l) * 40503u + 1) &
          ((u64{1} << lfsr_width) - 1);
      const Bus q = b.lfsr(static_cast<std::size_t>(lfsr_width), 0,
                           seed == 0 ? 1 : seed, run);
      cluster_bits.push_back(q[static_cast<std::size_t>(lfsr_width) - 1]);
    }
    nl.add_output("o[" + std::to_string(c) + "]", b.xor_reduce(cluster_bits));
  }
  return nl;
}

Netlist mult_tree(int operand_width, int pipeline_rows) {
  VSCRUB_CHECK(operand_width >= 4 && operand_width % 2 == 0,
               "operand width must be even and >= 4");
  Netlist nl("mult_" + std::to_string(operand_width));
  Builder b(nl);
  const Bus a = b.input_bus("a", static_cast<std::size_t>(operand_width));
  const Bus bb = b.input_bus("b", static_cast<std::size_t>(operand_width));

  // Split each operand into low/high halves; compute the four cross
  // products in parallel (the "parallel tree of multipliers and adders" of
  // Fig. 9), then sum with shifts in an adder tree.
  const std::size_t h = static_cast<std::size_t>(operand_width) / 2;
  const Bus al(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(h));
  const Bus ah(a.begin() + static_cast<std::ptrdiff_t>(h), a.end());
  const Bus bl(bb.begin(), bb.begin() + static_cast<std::ptrdiff_t>(h));
  const Bus bh(bb.begin() + static_cast<std::ptrdiff_t>(h), bb.end());

  const Bus p_ll = b.multiply(al, bl, pipeline_rows);
  const Bus p_lh = b.multiply(al, bh, pipeline_rows);
  const Bus p_hl = b.multiply(ah, bl, pipeline_rows);
  const Bus p_hh = b.multiply(ah, bh, pipeline_rows);

  const std::size_t w = 2 * static_cast<std::size_t>(operand_width);
  auto widen = [&](const Bus& p, std::size_t shift) {
    Bus out = b.const_bus(0, w);
    for (std::size_t i = 0; i < p.size() && i + shift < w; ++i) {
      out[i + shift] = p[i];
    }
    return out;
  };
  Bus sum = b.add(widen(p_ll, 0), widen(p_lh, h), /*keep_width=*/true);
  sum = b.register_bus(sum);
  Bus sum2 = b.add(widen(p_hl, h), widen(p_hh, 2 * h), /*keep_width=*/true);
  sum2 = b.register_bus(sum2);
  const Bus total = b.register_bus(b.add(sum, sum2, /*keep_width=*/true));
  b.output_bus("o", total);
  return nl;
}

Netlist vmult(int width, int pipeline_rows) {
  VSCRUB_CHECK(width >= 4 && width % 2 == 0, "width must be even and >= 4");
  Netlist nl("vmult_" + std::to_string(width));
  Builder b(nl);
  const std::size_t lane_w = static_cast<std::size_t>(width) / 2;
  Bus acc;
  for (int lane = 0; lane < 4; ++lane) {
    const Bus x = b.input_bus("x" + std::to_string(lane), lane_w);
    const Bus y = b.input_bus("y" + std::to_string(lane), lane_w);
    Bus p = b.multiply(x, y, pipeline_rows);
    p = b.register_bus(p);
    if (acc.empty()) {
      acc = p;
    } else {
      const std::size_t w = std::max(acc.size(), p.size());
      acc = b.register_bus(b.add(b.zext(acc, w), b.zext(p, w), false));
      if (acc.size() > 2 * lane_w + 2) acc.resize(2 * lane_w + 2);
    }
  }
  b.output_bus("o", acc);
  return nl;
}

Netlist counter_adder(int width) {
  Netlist nl("counter_adder_" + std::to_string(width));
  Builder b(nl);
  const Bus in = b.input_bus("a", static_cast<std::size_t>(width));
  const Bus count = b.counter(static_cast<std::size_t>(width), 1);
  const Bus sum = b.add(count, in, /*keep_width=*/true);
  b.output_bus("o", b.register_bus(sum));
  return nl;
}

Netlist multiply_add(int operand_width, int pipeline_rows) {
  Netlist nl("multiply_add_" + std::to_string(operand_width));
  Builder b(nl);
  const std::size_t w = static_cast<std::size_t>(operand_width);
  const Bus a = b.input_bus("a", w);
  const Bus x = b.input_bus("b", w);
  const Bus c = b.input_bus("c", w);
  Bus p = b.multiply(a, x, pipeline_rows);
  p = b.register_bus(p);
  Bus cw = b.const_bus(0, p.size());
  for (std::size_t i = 0; i < w; ++i) cw[i] = c[i];
  // The addend arrives later than the pipelined product; delay it to match
  // is unnecessary for fault-injection purposes, but register it once so
  // timing stays uniform.
  cw = b.register_bus(cw);
  const Bus sum = b.register_bus(b.add(p, cw, /*keep_width=*/true));
  b.output_bus("o", sum);
  return nl;
}

Netlist lfsr_multiplier(int operand_width, int pipeline_rows) {
  Netlist nl("lfsr_multiplier_" + std::to_string(operand_width));
  Builder b(nl);
  const NetId run = nl.add_input("run");
  const Bus a = b.lfsr(static_cast<std::size_t>(operand_width), 0, 0xACE1, run);
  const Bus x = b.lfsr(static_cast<std::size_t>(operand_width), 0, 0xBEEF, run);
  Bus p = b.multiply(a, x, pipeline_rows);
  p = b.register_bus(p);
  b.output_bus("o", p);
  return nl;
}

Netlist fir_preproc(int taps, int width) {
  VSCRUB_CHECK(taps >= 2, "FIR needs at least two taps");
  Netlist nl("fir_preproc_" + std::to_string(taps));
  Builder b(nl);
  const std::size_t w = static_cast<std::size_t>(width);
  const Bus x = b.input_bus("x", w);

  // Delay line: tap d sees the input delayed by 4*d cycles via SRL16s.
  std::vector<Bus> delayed(static_cast<std::size_t>(taps));
  delayed[0] = x;
  for (int d = 1; d < taps; ++d) {
    Bus stage(w);
    for (std::size_t i = 0; i < w; ++i) {
      stage[i] = b.delay_srl(delayed[static_cast<std::size_t>(d - 1)][i], 4);
    }
    delayed[static_cast<std::size_t>(d)] = stage;
  }

  // Fixed coefficient per tap (odd constants), multiply and accumulate.
  Bus acc;
  for (int d = 0; d < taps; ++d) {
    const u64 coeff = static_cast<u64>(2 * d + 3) & ((u64{1} << 4) - 1);
    const Bus cbus = b.const_bus(coeff | 1, 4);
    Bus p = b.multiply(delayed[static_cast<std::size_t>(d)], cbus, 0);
    p = b.register_bus(p);
    if (acc.empty()) {
      acc = p;
    } else {
      const std::size_t wmax = std::max(acc.size(), p.size());
      acc = b.register_bus(b.add(b.zext(acc, wmax), b.zext(p, wmax), false));
    }
  }
  b.output_bus("y", acc);
  return nl;
}

Netlist bram_selftest(int blocks) {
  Netlist nl("bram_selftest_" + std::to_string(blocks));
  Builder b(nl);
  const Bus addr = b.counter(8, 0);
  const NetId we = nl.const_net(false);
  std::array<NetId, 8> addr_arr{};
  for (int i = 0; i < 8; ++i) addr_arr[static_cast<std::size_t>(i)] = addr[static_cast<std::size_t>(i)];
  std::array<NetId, 16> din{};
  for (auto& d : din) d = nl.const_net(false);

  // Each location holds its own address in both bytes (paper §II-B); the
  // checker compares the two bytes of the read-out word.
  std::vector<u16> init(256);
  for (int a = 0; a < 256; ++a) {
    init[static_cast<std::size_t>(a)] =
        static_cast<u16>((a << 8) | a);
  }

  Bus err_bits;
  for (int blk = 0; blk < blocks; ++blk) {
    const auto ports = nl.add_bram(we, addr_arr, din, init,
                                   "bram" + std::to_string(blk));
    Bus lo(ports.dout.begin(), ports.dout.begin() + 8);
    Bus hi(ports.dout.begin() + 8, ports.dout.end());
    err_bits.push_back(b.not_(b.equals(lo, hi)));
  }
  // Sticky error latch per block.
  for (std::size_t i = 0; i < err_bits.size(); ++i) {
    const NetId placeholder = nl.const_net(false);
    const NetId q = nl.add_ff(placeholder, false);
    const NetId sticky = b.or_(q, err_bits[i]);
    nl.rewire_input(nl.net(q).driver, 0, sticky);
    nl.add_output("err[" + std::to_string(i) + "]", q);
  }
  return nl;
}

namespace {

/// Builds the self-checking datapath with a given expected signature. The
/// public factory runs this twice: once to *measure* the fault-free
/// signature by reference simulation, then with the measured constant baked
/// into the comparator.
Netlist build_selfcheck(int width, int period_log2, u64 signature,
                        bool expose_misr) {
  Netlist nl("selfcheck_dsp_" + std::to_string(width));
  Builder b(nl);
  const std::size_t w = static_cast<std::size_t>(width);
  const std::size_t misr_w = 2 * w;
  const u64 stim_seed = 0x5EED;
  const u64 misr_seed = 0xACE1;
  const NetId placeholder = nl.const_net(false);

  // Test-period counter; `wrap` is high during the last cycle of each
  // 2^period_log2-cycle window.
  const Bus counter = b.counter(static_cast<std::size_t>(period_log2), 0);
  const NetId wrap = b.and_reduce(counter);

  // Stimulus LFSR, reseeded at every wrap so each test window replays the
  // identical vector sequence (that is what makes one expected signature
  // valid forever).
  const std::size_t stim_w = 2 * w;
  Bus stim;
  stim.reserve(stim_w);
  for (std::size_t i = 0; i < stim_w; ++i) {
    stim.push_back(nl.add_ff(placeholder, (stim_seed >> i) & 1));
  }
  {
    const u64 taps = default_lfsr_taps(stim_w);
    Bus tapped;
    for (std::size_t i = 0; i < stim_w; ++i) {
      if ((taps >> i) & 1) tapped.push_back(stim[i]);
    }
    const NetId fb = b.xor_reduce(tapped);
    for (std::size_t i = 0; i < stim_w; ++i) {
      const NetId normal = i == 0 ? fb : stim[i - 1];
      const NetId seed_bit = nl.const_net(((stim_seed >> i) & 1) != 0);
      nl.rewire_input(nl.net(stim[i]).driver, 0,
                      b.mux2(wrap, normal, seed_bit));
    }
  }
  const Bus a(stim.begin(), stim.begin() + static_cast<std::ptrdiff_t>(w));
  const Bus c(stim.begin() + static_cast<std::ptrdiff_t>(w), stim.end());

  // Butterfly-style datapath: (a+b) * (a-b), registered.
  const Bus sum = b.add(a, c, /*keep_width=*/true);
  const Bus diff = b.sub(a, c);
  Bus prod = b.multiply(sum, diff, /*pipeline_rows=*/0);
  // The pipeline register is synchronously cleared at each wrap so every
  // test window starts from the identical machine state.
  Bus data = b.register_bus(b.zext(prod, misr_w), kNoNet, wrap);

  // MISR: rotate-and-fold signature register, reseeded at wrap.
  Bus misr;
  misr.reserve(misr_w);
  for (std::size_t i = 0; i < misr_w; ++i) {
    misr.push_back(nl.add_ff(placeholder, (misr_seed >> (i % 16)) & 1));
  }
  for (std::size_t i = 0; i < misr_w; ++i) {
    const NetId rotated = i == 0 ? misr[misr_w - 1] : misr[i - 1];
    const NetId folded = b.xor_(rotated, data[i]);
    const NetId seed_bit = nl.const_net(((misr_seed >> (i % 16)) & 1) != 0);
    nl.rewire_input(nl.net(misr[i]).driver, 0,
                    b.mux2(wrap, folded, seed_bit));
  }

  // Signature compare at wrap; sticky error latch (the "signal a full
  // reconfiguration is needed" flag of SIV-A).
  Bus expected(misr_w);
  for (std::size_t i = 0; i < misr_w; ++i) {
    expected[i] = nl.const_net((signature >> i) & 1);
  }
  const NetId mismatch = b.and_(wrap, b.not_(b.equals(misr, expected)));
  const NetId err_q = nl.add_ff(placeholder, false);
  nl.rewire_input(nl.net(err_q).driver, 0, b.or_(err_q, mismatch));
  nl.add_output("err", err_q);
  if (expose_misr) b.output_bus("misr", misr);
  // A few datapath bits observed, like any DSP output stream.
  for (std::size_t i = 0; i < std::min<std::size_t>(8, misr_w); ++i) {
    nl.add_output("y[" + std::to_string(i) + "]", data[i]);
  }
  return nl;
}

}  // namespace

Netlist selfcheck_dsp(int width, int period_log2) {
  VSCRUB_CHECK(width >= 4 && width <= 16, "selfcheck width 4..16");
  VSCRUB_CHECK(period_log2 >= 3 && period_log2 <= 12, "period 3..12");
  // Phase 1: measure the fault-free MISR signature at the compare phase.
  Netlist probe = build_selfcheck(width, period_log2, 0, /*expose_misr=*/true);
  RefSim sim(probe);
  const u64 period = u64{1} << period_log2;
  for (u64 cycle = 0; cycle + 1 < period; ++cycle) {
    sim.eval();
    sim.clock();
  }
  sim.eval();  // counter == all-ones: the comparator fires this cycle
  u64 signature = 0;
  const std::size_t misr_w = 2 * static_cast<std::size_t>(width);
  for (std::size_t i = 0; i < misr_w; ++i) {
    if (sim.output(1 + i)) signature |= u64{1} << i;
  }
  // Phase 2: the deliverable design with the measured constant. Stimulus
  // and MISR reseed at every wrap, so the same constant holds for every
  // window of the mission.
  return build_selfcheck(width, period_log2, signature, /*expose_misr=*/false);
}

}  // namespace vscrub::designs
