// The paper's test-design library (§III-A, Figs. 9 & 10, Tables I & II).
//
// Design families:
//  * lfsr_cluster  — "LFSR N": clusters of six 20-bit LFSRs whose outputs are
//    XOR'ed into one output bit (Fig. 10); N clusters = N output bits.
//    Local-feedback, register-dominated: low normalized sensitivity, very
//    high persistence.
//  * mult_tree     — "MULT k": pipelined multiply-add tree (Fig. 9): the two
//    k-bit operands are split into half-width words, the four cross products
//    are computed in pipelined array multipliers and summed in an adder
//    tree. Feed-forward, routing-heavy: high normalized sensitivity, ~zero
//    persistence.
//  * vmult         — "VMULT N": vector (dot-product) multiplier: four lanes
//    of (N/2)x(N/2) multipliers feeding an adder tree.
//  * counter_adder — "Counter/Adder": free-running counter summed with an
//    input operand; small, with state feedback (moderate persistence).
//  * multiply_add  — "Multiply-Add": purely feed-forward multiplier + adder
//    (the design the paper found to have 0% persistence).
//  * lfsr_multiplier — LFSR-generated operands feeding a multiplier.
//  * fir_preproc   — "Filter Preproc.": FIR filter front-end with SRL16
//    delay lines (exercises the LUT-RAM readback hazards).
//  * bram_selftest — BRAM address-in-data checker (§II-B BRAM BIST pattern).
//
// All builders produce pure netlists; sizes are parameters so campaigns can
// match the paper's device-utilization points on any device preset.
#pragma once

#include "netlist/netlist.h"

namespace vscrub::designs {

/// "LFSR N" (Fig. 10). One cluster = `lfsrs_per_cluster` LFSRs of
/// `lfsr_width` bits, XOR-reduced to one output bit.
Netlist lfsr_cluster(int clusters, int lfsr_width = 20, int lfsrs_per_cluster = 6);

/// "MULT k" (Fig. 9). Operands of `operand_width` bits; pipeline register
/// rank every `pipeline_rows` partial-product rows.
Netlist mult_tree(int operand_width, int pipeline_rows = 4);

/// "VMULT N": four-lane dot product of (N/2)-bit elements.
Netlist vmult(int width, int pipeline_rows = 2);

/// Counter/Adder: `width`-bit free-running counter added to a `width`-bit
/// input; registered output.
Netlist counter_adder(int width);

/// Feed-forward multiply-add: out = a*b + c, fully pipelined, no feedback.
Netlist multiply_add(int operand_width, int pipeline_rows = 2);

/// LFSR-driven multiplier: two on-chip LFSRs generate operands for a
/// pipelined multiplier.
Netlist lfsr_multiplier(int operand_width, int pipeline_rows = 4);

/// FIR preprocessor: `taps` coefficient taps over an `width`-bit input with
/// SRL16 delay lines and a multiply-accumulate tree.
Netlist fir_preproc(int taps, int width = 8);

/// BRAM self-test pattern: each location holds its own address in both
/// bytes; comparison logic reads locations sequentially and raises an error
/// flag on mismatch (paper §II-B).
Netlist bram_selftest(int blocks = 1);

/// Self-checking DSP datapath — the paper's §IV-A alternative to readback,
/// "taken by Ray Andraka when designing the 4096-point FFT used in our
/// space application": the design carries its own concurrent built-in
/// self-test. An LFSR generates stimulus for a butterfly-style datapath
/// ((a+b)*(a-b)); outputs fold into a MISR signature register that is
/// compared against the expected signature (a build-time constant obtained
/// by reference simulation) every 2^period_log2 cycles. A configuration
/// upset anywhere in the path raises the sticky `err` output — no readback
/// needed; the system responds with a full reconfiguration.
Netlist selfcheck_dsp(int width = 8, int period_log2 = 5);

}  // namespace vscrub::designs
