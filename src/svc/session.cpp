#include "svc/session.h"

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "report/json.h"

namespace vscrub {
namespace {

bool terminal(FrameKind kind) {
  return kind == FrameKind::kResult || kind == FrameKind::kError ||
         kind == FrameKind::kBusy;
}

/// Where this session dials (and redials): one of the two connect flavors.
struct Endpoint {
  bool tcp = false;
  std::string socket_path;
  u16 port = 0;
};

/// One connection attempt; -1 on failure (reconnect loops treat a failed
/// dial as one consumed attempt, the first connect throws instead).
int try_dial(const Endpoint& ep) {
  if (ep.tcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (ep.socket_path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, ep.socket_path.c_str(),
              ep.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Events buffered per job before a wait()/submit callback exists. Progress
/// is advisory telemetry: past this bound the oldest buffered frame is
/// dropped rather than growing without bound for a client that never waits.
constexpr std::size_t kMaxEventBacklog = 256;

}  // namespace

const char* session_error_name(SessionErrorCode code) {
  switch (code) {
    case SessionErrorCode::kConnectionLost: return "connection_lost";
    case SessionErrorCode::kReconnectFailed: return "reconnect_failed";
  }
  return "unknown";
}

struct JobHandle::State {
  u64 id = 0;
  /// Delivery callback; once set, the reader delivers directly. Guarded by
  /// the session mutex. Only installed when `backlog` is empty, so exactly
  /// one thread delivers at a time and arrival order is preserved.
  EventFn sink;
  /// Non-terminal frames that arrived before a sink existed.
  std::deque<Frame> backlog;
  std::optional<Frame> terminal_frame;
  bool lost = false;
  std::string lost_reason;
  SessionErrorCode lost_code = SessionErrorCode::kConnectionLost;
};

struct SessionCore {
  SessionCore(int fd_in, Endpoint ep, ReconnectPolicy rp)
      : fd(fd_in), endpoint(std::move(ep)), reconnect(rp) {}
  ~SessionCore() {
    {
      std::lock_guard lock(mutex);
      shutting_down = true;
    }
    cv.notify_all();
    {
      // The reader swaps fd under both locks, so shutting down under
      // send_mutex always hits the live socket and wakes a blocked recv.
      std::lock_guard slock(send_mutex);
      ::shutdown(fd, SHUT_RDWR);
    }
    if (reader.joinable()) reader.join();
    ::close(fd);
  }

  /// Guarded by send_mutex for writers; only the reader thread replaces it
  /// (holding mutex + send_mutex), so the reader may read it lock-free.
  int fd;
  const Endpoint endpoint;
  const ReconnectPolicy reconnect;
  std::mutex mutex;  ///< guards jobs / states / closed / shutting_down
  std::condition_variable cv;
  u64 next_id = 1;
  std::map<u64, std::shared_ptr<JobHandle::State>> jobs;
  bool closed = false;
  bool shutting_down = false;
  std::string close_reason;
  SessionErrorCode close_code = SessionErrorCode::kConnectionLost;
  u64 reconnect_count = 0;  ///< guarded by mutex
  std::mutex send_mutex;    ///< one whole frame on the wire at a time
  std::thread reader;

  std::shared_ptr<JobHandle::State> send_request(FrameKind kind,
                                                 const std::string& payload,
                                                 JobHandle::EventFn on_event) {
    auto state = std::make_shared<JobHandle::State>();
    {
      std::lock_guard lock(mutex);
      if (closed) throw SessionError(close_code, "client: " + close_reason);
      state->id = next_id++;
      state->sink = std::move(on_event);
      jobs.emplace(state->id, state);
    }
    const std::vector<u8> bytes = encode_frame(Frame{kind, state->id, payload});
    std::size_t sent = 0;
    std::lock_guard slock(send_mutex);
    while (sent < bytes.size()) {
      const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                            MSG_NOSIGNAL);
      if (n <= 0) {
        {
          std::lock_guard lock(mutex);
          jobs.erase(state->id);
        }
        throw SessionError(SessionErrorCode::kConnectionLost,
                           "client: connection lost while sending");
      }
      sent += static_cast<std::size_t>(n);
    }
    return state;
  }

  /// Submit + block for the terminal reply — the immediate kinds
  /// (ping/stats/cancel). Must not run on the reader thread.
  Frame call_inline(FrameKind kind, const std::string& payload) {
    const auto state = send_request(kind, payload, {});
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] {
      return state->terminal_frame.has_value() || state->lost;
    });
    if (state->lost) {
      throw SessionError(state->lost_code, "client: " + state->lost_reason);
    }
    return *state->terminal_frame;
  }

  void reader_loop() {
    while (true) {
      const std::string reason = read_connection();
      if (!try_reconnect(reason)) return;
    }
  }

  /// Demultiplexes the current connection until it dies; returns why.
  std::string read_connection() {
    FrameDecoder decoder;
    u8 buf[16384];
    while (true) {
      Frame frame;
      const FrameDecoder::Status status = decoder.next(&frame);
      if (status == FrameDecoder::Status::kFrame) {
        dispatch(frame);
        continue;
      }
      if (status != FrameDecoder::Status::kNeedMore) {
        return std::string("frame decode failed: ") +
               decode_status_name(status);
      }
      const auto n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) return "connection closed by server";
      decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
    }
  }

  /// Runs the reconnect policy after a drop. In-flight jobs are lost either
  /// way (the server scopes request identity to the connection); the session
  /// itself survives when a redial lands. Returns true when the reader
  /// should keep demultiplexing on a fresh socket.
  bool try_reconnect(const std::string& reason) {
    {
      std::lock_guard lock(mutex);
      if (shutting_down || reconnect.max_attempts == 0) {
        fail_locked(reason, SessionErrorCode::kConnectionLost);
        cv.notify_all();
        return false;
      }
      // Jobs die now, the session stays open for post-reconnect submits.
      lose_jobs_locked(reason + " (session reconnecting)",
                       SessionErrorCode::kConnectionLost);
    }
    cv.notify_all();
    u32 backoff_ms = std::max<u32>(1, reconnect.backoff_initial_ms);
    for (u32 attempt = 1; attempt <= reconnect.max_attempts; ++attempt) {
      {
        std::unique_lock lock(mutex);
        if (cv.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                        [&] { return shutting_down; })) {
          fail_locked("session closed", SessionErrorCode::kConnectionLost);
          cv.notify_all();
          return false;
        }
      }
      const int nfd = try_dial(endpoint);
      if (nfd >= 0) {
        std::scoped_lock lock(mutex, send_mutex);
        if (shutting_down) {
          ::close(nfd);
          fail_locked("session closed", SessionErrorCode::kConnectionLost);
          cv.notify_all();
          return false;
        }
        ::close(fd);
        fd = nfd;
        ++reconnect_count;
        return true;
      }
      backoff_ms = std::min(backoff_ms * 2,
                            std::max<u32>(1, reconnect.backoff_max_ms));
    }
    {
      std::lock_guard lock(mutex);
      fail_locked("reconnect failed after " +
                      std::to_string(reconnect.max_attempts) + " attempts (" +
                      reason + ")",
                  SessionErrorCode::kReconnectFailed);
    }
    cv.notify_all();
    return false;
  }

  void dispatch(const Frame& frame) {
    std::shared_ptr<JobHandle::State> state;
    JobHandle::EventFn sink;
    std::deque<Frame> backlog;
    const bool is_terminal = terminal(frame.kind);
    {
      std::lock_guard lock(mutex);
      const auto it = jobs.find(frame.request_id);
      if (it == jobs.end()) return;  // job already terminal, or a stray id
      state = it->second;
      sink = state->sink;
      if (is_terminal) {
        jobs.erase(it);
        // With no sink the backlog stays put: a later wait(on_event) still
        // replays the job's events before returning the terminal frame.
        if (sink) {
          backlog = std::move(state->backlog);
          state->backlog.clear();
        }
      } else if (sink) {
        backlog = std::move(state->backlog);
        state->backlog.clear();
      } else {
        if (state->backlog.size() >= kMaxEventBacklog) {
          state->backlog.pop_front();
        }
        state->backlog.push_back(frame);
        return;
      }
    }
    // Delivery happens outside the lock (a callback may be slow), but only
    // ever on this thread once a sink exists — order is preserved.
    if (sink) {
      for (const Frame& buffered : backlog) sink(buffered);
      if (!is_terminal) sink(frame);
    }
    if (is_terminal) {
      {
        std::lock_guard lock(mutex);
        state->terminal_frame = frame;
      }
      cv.notify_all();
    }
  }

  /// Marks every pending job lost without closing the session (the
  /// reconnect window). Caller holds `mutex` and notifies the cv after.
  void lose_jobs_locked(const std::string& reason, SessionErrorCode code) {
    for (auto& [id, state] : jobs) {
      state->lost = true;
      state->lost_reason = reason;
      state->lost_code = code;
    }
    jobs.clear();
  }

  /// Permanent death: every pending job and every later submit throws the
  /// typed error from here on. Caller holds `mutex` and notifies the cv.
  void fail_locked(const std::string& reason, SessionErrorCode code) {
    closed = true;
    close_reason = reason;
    close_code = code;
    lose_jobs_locked(reason, code);
  }
};

u64 JobHandle::id() const {
  VSCRUB_CHECK(state_ != nullptr, "client: id() on an empty JobHandle");
  return state_->id;
}

bool JobHandle::poll() const {
  VSCRUB_CHECK(state_ != nullptr, "client: poll() on an empty JobHandle");
  std::lock_guard lock(core_->mutex);
  return state_->terminal_frame.has_value() || state_->lost;
}

Frame JobHandle::wait(const EventFn& on_event) {
  const auto reply = wait_for(std::chrono::milliseconds(-1), on_event);
  return *reply;  // a negative deadline never times out
}

std::optional<Frame> JobHandle::wait_for(std::chrono::milliseconds timeout,
                                         const EventFn& on_event) {
  VSCRUB_CHECK(state_ != nullptr, "client: wait() on an empty JobHandle");
  const bool forever = timeout.count() < 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(core_->mutex);
  while (true) {
    if (on_event && !state_->sink) {
      // Flush the backlog on THIS thread, then install the sink. The sink
      // is only installed once the backlog is empty (under the lock), so
      // the reader never delivers concurrently with this flush.
      while (!state_->backlog.empty()) {
        Frame buffered = std::move(state_->backlog.front());
        state_->backlog.pop_front();
        lock.unlock();
        on_event(buffered);
        lock.lock();
      }
      if (state_->backlog.empty() && !state_->terminal_frame.has_value()) {
        state_->sink = on_event;
      }
    }
    if (state_->terminal_frame.has_value()) return *state_->terminal_frame;
    if (state_->lost) {
      throw SessionError(state_->lost_code, "client: " + state_->lost_reason);
    }
    if (forever) {
      core_->cv.wait(lock);
    } else if (core_->cv.wait_until(lock, deadline) ==
               std::cv_status::timeout) {
      return std::nullopt;
    }
  }
}

bool JobHandle::cancel() {
  VSCRUB_CHECK(state_ != nullptr, "client: cancel() on an empty JobHandle");
  const Frame reply = core_->call_inline(
      FrameKind::kCancel,
      JsonReport("cancel_request").set_u64("target_id", state_->id).to_json());
  return reply.kind == FrameKind::kResult &&
         FlatJson::parse(reply.payload).get_bool("cancelled", false);
}

ServiceSession ServiceSession::connect_unix(const std::string& socket_path,
                                            ReconnectPolicy reconnect) {
  VSCRUB_CHECK(socket_path.size() < sizeof sockaddr_un{}.sun_path,
               "client: socket path too long: " + socket_path);
  Endpoint ep;
  ep.socket_path = socket_path;
  const int fd = try_dial(ep);
  if (fd < 0) throw Error("client: cannot connect to " + socket_path);
  auto core = std::make_shared<SessionCore>(fd, std::move(ep), reconnect);
  core->reader = std::thread([raw = core.get()] { raw->reader_loop(); });
  return ServiceSession(std::move(core));
}

ServiceSession ServiceSession::connect_tcp(u16 port,
                                           ReconnectPolicy reconnect) {
  Endpoint ep;
  ep.tcp = true;
  ep.port = port;
  const int fd = try_dial(ep);
  if (fd < 0) {
    throw Error("client: cannot connect to loopback port " +
                std::to_string(port));
  }
  auto core = std::make_shared<SessionCore>(fd, std::move(ep), reconnect);
  core->reader = std::thread([raw = core.get()] { raw->reader_loop(); });
  return ServiceSession(std::move(core));
}

JobHandle ServiceSession::submit(FrameKind kind, const std::string& payload,
                                 EventFn on_event) {
  VSCRUB_CHECK(core_ != nullptr, "client: submit() on a moved-from session");
  auto state = core_->send_request(kind, payload, std::move(on_event));
  return JobHandle(core_, std::move(state));
}

Frame ServiceSession::call(FrameKind kind, const std::string& payload,
                           const EventFn& on_event) {
  return submit(kind, payload).wait(on_event);
}

bool ServiceSession::cancel_request(u64 target_id) {
  VSCRUB_CHECK(core_ != nullptr, "client: cancel on a moved-from session");
  const Frame reply = core_->call_inline(
      FrameKind::kCancel,
      JsonReport("cancel_request").set_u64("target_id", target_id).to_json());
  return reply.kind == FrameKind::kResult &&
         FlatJson::parse(reply.payload).get_bool("cancelled", false);
}

bool ServiceSession::connected() const {
  if (core_ == nullptr) return false;
  std::lock_guard lock(core_->mutex);
  return !core_->closed;
}

u64 ServiceSession::reconnects() const {
  if (core_ == nullptr) return 0;
  std::lock_guard lock(core_->mutex);
  return core_->reconnect_count;
}

}  // namespace vscrub
