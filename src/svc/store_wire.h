// The remote verdict tier's wire layer: the compact string codecs shared by
// both ends of the kStoreLookup / kStorePublish frames, plus the client that
// implements store/remote_store.h's RemoteVerdictClient over a VSRP1
// session. The payloads stay flat JSON (one "keys"/"entries"/"verdicts"
// string field), so the frames ride the exact same FlatJson/JsonReport
// machinery — and the same fuzz discipline — as every other request kind.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "report/json.h"
#include "store/remote_store.h"
#include "svc/session.h"

namespace vscrub {

// Hex blobs (checkpoint shipping). Lowercase, two chars per byte; decode
// throws Error on odd length or a non-hex character.
std::string hex_encode(std::span<const u8> bytes);
std::vector<u8> hex_decode(const std::string& text);

/// Whole-file byte IO for checkpoint shipping. Reading returns false when
/// the file is missing or unreadable; writing is atomic (tmp + rename, like
/// every record writer) and throws Error on failure.
bool read_file_bytes(const std::string& path, std::vector<u8>* out);
void write_file_bytes(const std::string& path, std::span<const u8> bytes);

/// "hi:lo,hi:lo,..." (hex). Empty string = no keys.
std::string encode_store_keys(const std::vector<VerdictKey>& keys);
std::vector<VerdictKey> decode_store_keys(const std::string& text);

/// Lookup reply: "index:flags:cycle:mask,..." (hex; flags bit0 =
/// output_error, bit1 = persistent). Misses are simply absent.
std::string encode_store_verdicts(
    const std::vector<std::optional<StoredVerdict>>& verdicts);
void decode_store_verdicts(const std::string& text, std::size_t key_count,
                           std::vector<std::optional<StoredVerdict>>* out);

/// Publish request: "hi:lo:flags:cycle:mask,..." (hex).
std::string encode_store_entries(
    const std::vector<std::pair<VerdictKey, StoredVerdict>>& entries);
std::vector<std::pair<VerdictKey, StoredVerdict>> decode_store_entries(
    const std::string& text);

/// Answers one kStoreLookup request payload against `store`, returning the
/// kResult "store_verdicts" report. `out_keys`/`out_hits` (optional) get
/// the batch size and hit count for the caller's metrics. Throws Error on
/// a malformed payload — the caller turns that into a typed kError reply.
JsonReport answer_store_lookup(VerdictStore& store, const FlatJson& params,
                               u64* out_keys = nullptr,
                               u64* out_hits = nullptr);
/// Answers one kStorePublish request payload against `store`, returning the
/// kResult "store_ack" report. `out_entries` (optional) gets the batch
/// size. Throws Error on a malformed payload.
JsonReport answer_store_publish(VerdictStore& store, const FlatJson& params,
                                u64* out_entries = nullptr);

/// The coordinator-backed verdict tier a fabric worker campaign probes:
/// one VSRP1 session (with reconnect) to the coordinator, one kStoreLookup
/// or kStorePublish round trip per batched call. Transport failure degrades
/// exactly as the RemoteVerdictClient contract demands — all-miss lookups,
/// dropped publishes — so a dead coordinator never fails a campaign.
/// Thread-safe: batched calls from concurrent campaign workers multiplex
/// over the one session.
class VsrpRemoteStore : public RemoteVerdictClient {
 public:
  /// Connects to the coordinator's Unix socket. Throws Error when the
  /// initial connection fails (callers degrade to no remote tier).
  explicit VsrpRemoteStore(const std::string& socket_path,
                           ReconnectPolicy reconnect = {4, 50, 1000});

  void lookup_batch(const std::vector<VerdictKey>& keys,
                    std::vector<std::optional<StoredVerdict>>* out) override;
  void publish_batch(const std::vector<std::pair<VerdictKey, StoredVerdict>>&
                         entries) override;

  u64 lookups() const { return lookups_.load(std::memory_order_relaxed); }
  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 publishes() const { return publishes_.load(std::memory_order_relaxed); }
  u64 transport_errors() const {
    return transport_errors_.load(std::memory_order_relaxed);
  }

 private:
  ServiceSession session_;
  std::atomic<u64> lookups_{0};
  std::atomic<u64> hits_{0};
  std::atomic<u64> publishes_{0};
  std::atomic<u64> transport_errors_{0};
};

}  // namespace vscrub
