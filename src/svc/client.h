// Blocking VSRP1 client: one socket, sequential request ids, replies
// demultiplexed by id so several requests can be in flight on one
// connection (submit a campaign, then cancel it, then wait). This is what
// `vscrubctl submit` and the loopback tests use; it is intentionally
// synchronous — the concurrency story lives on the server.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "svc/protocol.h"

namespace vscrub {

class ServiceClient {
 public:
  /// Connects to a vscrubd Unix-domain socket. Throws Error on failure.
  static ServiceClient connect_unix(const std::string& socket_path);
  /// Connects to a vscrubd TCP loopback port. Throws Error on failure.
  static ServiceClient connect_tcp(u16 port);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  /// Sends a request frame and returns its id without waiting for a reply.
  u64 send_request(FrameKind kind, const std::string& payload);

  /// Blocks until the terminal reply (kResult / kError / kBusy) for `id`.
  /// Non-terminal frames for `id` (kAccepted, kProgress) invoke `event` when
  /// set; terminal replies for OTHER in-flight ids are buffered for their
  /// own wait() call. Throws Error if the connection dies first.
  Frame wait(u64 id, const std::function<void(const Frame&)>& event = {});

  /// send_request + wait in one call.
  Frame call(FrameKind kind, const std::string& payload,
             const std::function<void(const Frame&)>& event = {});

  /// Liveness probe; returns the kResult pong frame.
  Frame ping() { return call(FrameKind::kPing, ""); }
  /// Server metrics snapshot (kResult, service_stats payload).
  Frame stats() { return call(FrameKind::kStats, ""); }
  /// Asks the server to cancel request `target_id`; true when the server
  /// still knew the request (queued or running).
  bool cancel_request(u64 target_id);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}
  Frame read_frame();

  int fd_ = -1;
  u64 next_id_ = 1;
  FrameDecoder decoder_;
  /// Terminal replies read while waiting for a different id.
  std::vector<std::pair<u64, Frame>> pending_;
};

}  // namespace vscrub
