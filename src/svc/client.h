// Blocking VSRP1 client — a thin wrapper over the session API
// (svc/session.h). One socket, sequential request ids, replies
// demultiplexed by id so several requests can be in flight on one
// connection (submit a campaign, then cancel it, then wait). This is what
// `vscrubctl submit` uses; it is intentionally synchronous — callers that
// want overlapping jobs, polling or streaming callbacks should hold the
// underlying ServiceSession (session()) and its JobHandles directly.
//
// Not thread-safe: one thread drives a ServiceClient (the session beneath
// it runs its own reader thread, but this wrapper's bookkeeping is
// single-threaded by design).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "svc/protocol.h"
#include "svc/session.h"

namespace vscrub {

class ServiceClient {
 public:
  /// Connects to a vscrubd Unix-domain socket. Throws Error on failure.
  static ServiceClient connect_unix(const std::string& socket_path);
  /// Connects to a vscrubd TCP loopback port. Throws Error on failure.
  static ServiceClient connect_tcp(u16 port);

  ServiceClient(ServiceClient&&) noexcept = default;
  ServiceClient& operator=(ServiceClient&&) noexcept = default;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient() = default;

  /// Sends a request frame and returns its id without waiting for a reply.
  u64 send_request(FrameKind kind, const std::string& payload);

  /// Blocks until the terminal reply (kResult / kError / kBusy) for `id`.
  /// Non-terminal frames for `id` (kAccepted, kProgress) invoke `event` when
  /// set — including ones that arrived before this call. Throws Error if the
  /// connection dies first, or when `id` is not an in-flight request.
  Frame wait(u64 id, const std::function<void(const Frame&)>& event = {});

  /// send_request + wait in one call.
  Frame call(FrameKind kind, const std::string& payload,
             const std::function<void(const Frame&)>& event = {});

  /// Liveness probe; returns the kResult pong frame.
  Frame ping() { return session_.ping(); }
  /// Server metrics snapshot (kResult, service_stats payload).
  Frame stats() { return session_.stats(); }
  /// Asks the server to cancel request `target_id`; true when the server
  /// still knew the request (queued or running).
  bool cancel_request(u64 target_id) {
    return session_.cancel_request(target_id);
  }

  /// The session underneath, for callers graduating to the v4 API.
  ServiceSession& session() { return session_; }

 private:
  explicit ServiceClient(ServiceSession session)
      : session_(std::move(session)) {}

  ServiceSession session_;
  /// In-flight handles by request id, for the send_request/wait split.
  std::map<u64, JobHandle> pending_;
};

}  // namespace vscrub
