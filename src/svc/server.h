// vscrubd transport: a Unix-domain (plus optional TCP loopback) socket
// server speaking VSRP1, one reader thread per connection, all requests
// funneled into one CampaignService. The accept loop is poll()-driven with a
// self-pipe, so request_stop() — including from a signal handler — wakes it
// without races.
//
// Shutdown discipline (the SIGTERM drain): the first stop request closes
// admission (new work gets kBusy "draining") and lets queued + running
// requests finish and deliver their replies; the second flips every live
// request's cancel flag, so campaigns stop at the next chunk boundary,
// checkpoint (VSCK3), and still deliver their interrupted results. Either
// way run() returns normally and the daemon exits 0.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.h"

namespace vscrub {

struct ServerOptions {
  /// Unix-domain socket path. Bound at start(); unlinked on shutdown.
  std::string socket_path = "/tmp/vscrubd.sock";
  /// When nonzero, also listen on 127.0.0.1:tcp_port (loopback only — the
  /// protocol carries no authentication).
  u16 tcp_port = 0;
  /// Deadline for writing one reply frame to a client. A peer that stops
  /// draining its socket past this is declared dead: its replies are dropped
  /// and the connection is shut down, so a wedged client can never pin an
  /// executor thread (or stall the SIGTERM drain) forever.
  int send_timeout_ms = 10000;
  ServiceOptions service;
};

class SocketServer {
 public:
  explicit SocketServer(ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens (and ignores SIGPIPE). Throws Error on failure.
  void start();

  /// Accept loop; returns after a drain completes (see header comment).
  void run();

  /// Requests shutdown. Async-signal-safe (writes one byte to the self
  /// pipe). First call drains gracefully; a second cancels live requests.
  void request_stop();

  /// Installs SIGTERM/SIGINT handlers that call request_stop() on this
  /// server (one server per process).
  void bind_signals();

  CampaignService& service() { return *service_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void accept_loop();
  void connection_loop(int fd, u64 client_id);
  void close_listeners();

  ServerOptions options_;
  std::unique_ptr<CampaignService> service_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  /// Connection identity passed to CampaignService::handle — scopes
  /// client-chosen request ids (cancel, live-job tracking) per connection.
  std::atomic<u64> next_client_id_{1};

  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace vscrub
