// vscrubd transport: an epoll edge-triggered event loop speaking VSRP1 over
// a Unix-domain socket (plus optional TCP loopback), all requests funneled
// into one CampaignService.
//
// Shape: ONE event-loop thread owns every socket. Accepts, reads and writes
// are nonblocking; each connection carries an incremental FrameDecoder fed
// off read-readiness and a bounded write queue drained off write-readiness.
// Executor threads never touch a socket — their emit closures only encode
// the frame, append it to the connection's queue and nudge the loop through
// an eventfd — so a stalled peer can never wedge an executor, and ten
// thousand idle connections cost ten thousand fds, not threads.
//
// The PR 5 deadline-write discipline generalizes to queue draining: a
// connection whose queue makes no progress for send_timeout_ms, or whose
// queue exceeds max_conn_backlog_bytes, is declared dead — its replies are
// dropped, the socket is shut down, and any live work it submitted is
// cancelled at the next chunk boundary (the replies could never be
// delivered anyway).
//
// Shutdown discipline (the SIGTERM drain): the first stop request closes
// admission (new work gets kBusy "draining") and lets queued + running
// requests finish and deliver their replies; the second flips every live
// request's cancel flag, so campaigns stop at the next chunk boundary,
// checkpoint, and still deliver their interrupted results. Either way run()
// returns normally — after every queued reply byte is flushed or its
// connection declared dead — and the daemon exits 0.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>

#include "svc/config.h"
#include "svc/service.h"

namespace vscrub {

class SocketServer {
 public:
  /// Validates the config (throws ServiceConfigError) and builds the
  /// default CampaignService engine; no sockets exist until start().
  explicit SocketServer(ServiceConfig config);
  /// Same transport, caller-supplied engine: the coordinator daemon runs
  /// its CoordinatorService over this exact event loop. Only the transport
  /// fields of `config` (socket path, port, backlog, timeouts) apply.
  SocketServer(ServiceConfig config, std::unique_ptr<FrameService> service);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens (and ignores SIGPIPE). Throws Error on failure.
  void start();

  /// Event loop; returns after a drain completes (see header comment).
  void run();

  /// Requests shutdown. Async-signal-safe (writes one byte to the self
  /// pipe). First call drains gracefully; a second cancels live requests.
  void request_stop();

  /// Installs SIGTERM/SIGINT handlers that call request_stop() on this
  /// server (one server per process).
  void bind_signals();

  FrameService& service() { return *service_; }
  const std::string& socket_path() const { return config_.socket_path; }

 private:
  struct Conn;
  struct WakeSignal;

  void accept_ready(int listen_fd);
  void read_ready(const std::shared_ptr<Conn>& conn);
  /// Drains the connection's write queue until empty or EAGAIN; updates the
  /// blocked/deadline state. Kills the connection on a hard send error.
  void flush_writes(const std::shared_ptr<Conn>& conn);
  /// Kills connections whose queued writes outlived the send deadline and
  /// reports the epoll timeout (ms) until the next pending deadline (-1
  /// when none).
  int enforce_deadlines();
  void close_conn(int fd);
  void close_listeners();
  bool all_flushed();

  ServiceConfig config_;
  std::unique_ptr<FrameService> service_;
  int epoll_fd_ = -1;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  /// Executor -> event-loop nudge: emit closures append to a connection's
  /// write queue and mark it dirty here; the loop drains dirty connections.
  std::shared_ptr<WakeSignal> wake_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  /// Connection identity passed to CampaignService::handle — scopes
  /// client-chosen request ids (cancel, live-job tracking) per connection.
  std::atomic<u64> next_client_id_{1};
};

}  // namespace vscrub
