#include "svc/requests.h"

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "designs/test_designs.h"
#include "pnr/pnr.h"
#include "radiation/environment.h"
#include "seu/report.h"
#include "sim/simd.h"
#include "store/verdict_store.h"
#include "system/fleet.h"

namespace vscrub {

Netlist design_by_name(const std::string& name) {
  if (name == "lfsr") return designs::lfsr_cluster(2);
  if (name == "mult") return designs::mult_tree(10);
  if (name == "vmult") return designs::vmult(8);
  if (name == "counter") return designs::counter_adder(16);
  if (name == "multadd") return designs::multiply_add(8);
  if (name == "lfsrmult") return designs::lfsr_multiplier(10);
  if (name == "fir") return designs::fir_preproc(4);
  if (name == "selfcheck") return designs::selfcheck_dsp(8, 5);
  if (name == "bram") return designs::bram_selftest(2);
  throw Error("unknown design '" + name + "' (see `vscrubctl designs`)");
}

DeviceGeometry device_by_name(const std::string& name) {
  if (name == "campaign") return device_tiny(12, 16);
  if (name == "xcv50") return device_xcv50ish();
  if (name == "xcv100") return device_xcv100ish();
  if (name == "xcv300") return device_xcv300ish();
  if (name == "xcv1000") return device_xcv1000ish();
  if (name.rfind("tiny:", 0) == 0) {
    const auto x = name.find('x', 5);
    VSCRUB_CHECK(x != std::string::npos, "tiny device format is tiny:RxC");
    return device_tiny(static_cast<u16>(std::stoi(name.substr(5, x - 5))),
                       static_cast<u16>(std::stoi(name.substr(x + 1))), 2);
  }
  throw Error("unknown device '" + name + "' (see `vscrubctl devices`)");
}

namespace {

/// Compiled designs are pure functions of (design, device), and campaigns
/// only ever read them (fault injection works on copies of the golden
/// bitstream), so the daemon memoizes place-and-route process-wide: a warm
/// served request pays a map lookup, not a compile. The cache is capped —
/// parameterized `tiny:RxC` device names are unbounded — and overflow simply
/// compiles without inserting.
std::shared_ptr<const PlacedDesign> compile_request_design(
    const std::string& design, const std::string& device) {
  static std::mutex cache_mutex;
  static std::map<std::pair<std::string, std::string>,
                  std::shared_ptr<const PlacedDesign>>
      cache;
  constexpr std::size_t kMaxCachedDesigns = 16;
  const std::pair<std::string, std::string> key{design, device};
  {
    std::lock_guard lock(cache_mutex);
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
  }
  auto compiled = std::make_shared<const PlacedDesign>(
      compile(std::make_shared<const Netlist>(design_by_name(design)),
              std::make_shared<const ConfigSpace>(device_by_name(device)),
              {}));
  std::lock_guard lock(cache_mutex);
  if (cache.size() < kMaxCachedDesigns) {
    const auto [it, inserted] = cache.emplace(key, compiled);
    return it->second;  // a racing compile may have beaten us; share theirs
  }
  return compiled;
}

/// Mirrors vscrubctl's campaign_options_from: same parameter names (with the
/// CLI's dashes as underscores), same defaults, so a served request and the
/// one-shot command run the identical campaign.
CampaignOptions campaign_options_from(const FlatJson& params,
                                      const RequestContext& ctx) {
  const u32 gang_width =
      params.get_bool("no_gang")
          ? 1u
          : static_cast<u32>(
                params.get_u64("gang_width", served_gang_width_default()));
  // Validate the engine selection at submission: GangWidthError / SimdIsaError
  // (listing the widths/tiers this binary supports) surface as typed VSRP1
  // error frames here instead of aborting the campaign mid-run.
  if (gang_width >= 2) validate_gang_width(gang_width);
  const std::string gang_isa = params.get_string("gang_isa", "auto");
  const SimdIsa requested_isa = parse_simd_isa(gang_isa);
  if (requested_isa != SimdIsa::kAuto) (void)resolve_simd_isa(requested_isa);
  CampaignOptions options =
      CampaignOptions{}
          .with_injection(InjectionOptions{}
                              .with_persistence(params.get_bool("persistence"))
                              .with_pruning(!params.get_bool("no_prune"))
                              .with_gang_width(gang_width)
                              .with_gang_isa(gang_isa)
                              .with_gang_plan(!params.get_bool("no_gang_plan")))
          .with_chunk_size(params.get_u64("chunk", 0));
  if (params.get_bool("exhaustive")) {
    options.with_exhaustive();
  } else {
    options.with_sample(params.get_u64("sample", 20000),
                        params.get_u64("seed", 99));
  }
  if (ctx.store != nullptr) options.with_shared_store(ctx.store);
  if (ctx.pool != nullptr) options.with_shared_pool(ctx.pool);
  if (ctx.remote_store != nullptr) options.with_remote_store(ctx.remote_store);
  // Fabric range restriction: [range_begin, range_end) over the campaign's
  // deterministic universe order. range_end == 0 means the whole universe.
  const u64 range_end = params.get_u64("range_end", 0);
  if (range_end > 0) {
    options.with_range(params.get_u64("range_begin", 0), range_end);
  }
  if (!ctx.checkpoint_path.empty()) {
    if (ctx.checkpoint_every_chunks > 0) {
      options.with_checkpoint(ctx.checkpoint_path, ctx.checkpoint_every_chunks);
    } else {
      options.with_checkpoint(ctx.checkpoint_path);
    }
    options.on_checkpoint = ctx.on_checkpoint;
  }
  // Cancel beats preemption: both stop the campaign at the chunk boundary
  // (writing the checkpoint), but a cancelled job must deliver its
  // interrupted report, so the service checks the cancel flag before
  // deciding a stop was a preemption.
  const std::atomic<bool>* cancelled = ctx.cancelled;
  options.with_progress(
      [cancelled, forward = ctx.on_progress,
       preempt = ctx.preempt_poll](const CampaignProgress& p) {
        if (forward) forward(p);
        if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed))
          return false;
        return !(preempt && preempt(p.chunks_done));
      },
      params.get_u64("progress_every_chunks", 8));
  return options;
}

}  // namespace

u32 served_gang_width_default() { return preferred_gang_width(); }

namespace {

JsonReport run_campaign_request(const FlatJson& params,
                                const RequestContext& ctx) {
  const std::shared_ptr<const PlacedDesign> design =
      compile_request_design(params.get_string("design", "lfsrmult"),
                             params.get_string("device", "campaign"));
  const CampaignResult r =
      run_campaign(*design, campaign_options_from(params, ctx));
  return campaign_report_json(*design, r);
}

JsonReport run_recampaign_request(const FlatJson& params,
                                  const RequestContext& ctx) {
  VSCRUB_CHECK(ctx.store != nullptr,
               "recampaign requests need a server started with --cache-dir");
  const std::shared_ptr<const PlacedDesign> design =
      compile_request_design(params.get_string("design", "lfsrmult"),
                             params.get_string("device", "campaign"));
  const RecampaignResult rr =
      run_recampaign(*design, campaign_options_from(params, ctx));
  return recampaign_report_json(*design, rr);
}

/// Mirrors vscrubctl's apply_mission_flags (same environment scaling).
void apply_mission_params(const FlatJson& params, PayloadOptions& options,
                          u64 total_bits) {
  options.environment = params.get_bool("flare")
                            ? OrbitEnvironment::leo_solar_flare()
                            : OrbitEnvironment::leo_quiet();
  options.environment.upset_rate_per_bit_s *=
      static_cast<double>(kXcv1000PaperBits) / static_cast<double>(total_bits);
  if (params.get_bool("scrub_faults")) {
    options.scrub.link_faults = ScrubLinkFaults::leo_profile();
    options.flash_faults = FlashFaultModel::leo_profile();
  }
}

/// The sensitivity campaign missions are judged against — shared pool and
/// store, so concurrent mission requests for the same device reuse each
/// other's verdicts instead of re-simulating the map.
CampaignResult mission_sensitivity_campaign(const PlacedDesign& design,
                                            const RequestContext& ctx) {
  CampaignOptions copts;
  copts.sample_bits = 10000;
  if (ctx.store != nullptr) copts.with_shared_store(ctx.store);
  if (ctx.pool != nullptr) copts.with_shared_pool(ctx.pool);
  const std::atomic<bool>* cancelled = ctx.cancelled;
  copts.with_progress([cancelled](const CampaignProgress&) {
    return cancelled == nullptr || !cancelled->load(std::memory_order_relaxed);
  });
  return run_campaign(design, copts);
}

JsonReport run_mission_request(const FlatJson& params,
                               const RequestContext& ctx) {
  const std::shared_ptr<const PlacedDesign> design = compile_request_design(
      "lfsrmult", params.get_string("device", "campaign"));
  const CampaignResult camp = mission_sensitivity_campaign(*design, ctx);
  PayloadOptions options;
  apply_mission_params(params, options, design->space->total_bits());
  const std::string policy = params.get_string("scrub_policy", "");
  if (!policy.empty()) options.scrub.policy = make_scrub_policy(policy);
  options.seed = params.get_u64("seed", 4242);
  MetricsRegistry metrics;
  options.metrics = &metrics;
  Payload payload(*design, options, camp.sensitive_set(*design));
  payload.run_mission(SimTime::hours(params.get_double("hours", 24)));
  return mission_report_json(metrics);
}

JsonReport run_fleet_request(const FlatJson& params,
                             const RequestContext& ctx) {
  const std::shared_ptr<const PlacedDesign> design = compile_request_design(
      "lfsrmult", params.get_string("device", "campaign"));
  const CampaignResult camp = mission_sensitivity_campaign(*design, ctx);
  FleetOptions options;
  options.missions = static_cast<u32>(params.get_u64("missions", 8));
  options.base_seed = params.get_u64("seed", 1);
  options.threads = static_cast<u32>(params.get_u64("threads", 0));
  options.duration = SimTime::hours(params.get_double("hours", 24));
  apply_mission_params(params, options.payload, design->space->total_bits());
  // Same spec grammar as `vscrubctl fleet --scrub-policy`: one name sets the
  // sweep's policy; a comma list or "all" races them and returns the
  // policy_race report, bit-identical to the one-shot CLI run.
  const std::vector<std::string> policies =
      parse_scrub_policy_list(params.get_string("scrub_policy", ""));
  if (policies.size() > 1) {
    PolicyRaceOptions ro;
    ro.policies = policies;
    ro.fleet = options;
    return policy_race_report_json(
        run_policy_race(*design, camp.sensitive_set(*design), ro));
  }
  if (policies.size() == 1) {
    options.payload.scrub.policy = make_scrub_policy(policies[0]);
  }
  return fleet_report_json(
      run_fleet(*design, camp.sensitive_set(*design), options));
}

}  // namespace

JsonReport execute_request(FrameKind kind, const FlatJson& params,
                           const RequestContext& ctx) {
  switch (kind) {
    case FrameKind::kCampaign: return run_campaign_request(params, ctx);
    case FrameKind::kRecampaign: return run_recampaign_request(params, ctx);
    case FrameKind::kMission: return run_mission_request(params, ctx);
    case FrameKind::kFleet: return run_fleet_request(params, ctx);
    default:
      throw Error(std::string("not a work request: ") + frame_kind_name(kind));
  }
}

}  // namespace vscrub
