#include "svc/protocol.h"

#include <cstdlib>
#include <cstring>

#include "common/crc.h"

namespace vscrub {
namespace {

constexpr char kMagic[5] = {'V', 'S', 'R', 'P', '1'};

void put_u32le(std::vector<u8>& out, u32 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v >> 16));
  out.push_back(static_cast<u8>(v >> 24));
}

void put_u64le(std::vector<u8>& out, u64 v) {
  put_u32le(out, static_cast<u32>(v));
  put_u32le(out, static_cast<u32>(v >> 32));
}

u32 get_u32le(const u8* p) {
  return static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
         static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24;
}

u64 get_u64le(const u8* p) {
  return static_cast<u64>(get_u32le(p)) |
         static_cast<u64>(get_u32le(p + 4)) << 32;
}

}  // namespace

bool frame_kind_valid(u8 kind) {
  switch (static_cast<FrameKind>(kind)) {
    case FrameKind::kPing:
    case FrameKind::kCampaign:
    case FrameKind::kRecampaign:
    case FrameKind::kMission:
    case FrameKind::kFleet:
    case FrameKind::kCancel:
    case FrameKind::kStats:
    case FrameKind::kStoreLookup:
    case FrameKind::kStorePublish:
    case FrameKind::kAccepted:
    case FrameKind::kProgress:
    case FrameKind::kResult:
    case FrameKind::kError:
    case FrameKind::kBusy:
    case FrameKind::kCheckpoint:
      return true;
  }
  return false;
}

const char* frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kPing: return "ping";
    case FrameKind::kCampaign: return "campaign";
    case FrameKind::kRecampaign: return "recampaign";
    case FrameKind::kMission: return "mission";
    case FrameKind::kFleet: return "fleet";
    case FrameKind::kCancel: return "cancel";
    case FrameKind::kStats: return "stats";
    case FrameKind::kStoreLookup: return "store_lookup";
    case FrameKind::kStorePublish: return "store_publish";
    case FrameKind::kAccepted: return "accepted";
    case FrameKind::kProgress: return "progress";
    case FrameKind::kResult: return "result";
    case FrameKind::kError: return "error";
    case FrameKind::kBusy: return "busy";
    case FrameKind::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

std::vector<u8> encode_frame(const Frame& frame) {
  VSCRUB_CHECK(frame.payload.size() <= kMaxFramePayload,
               "vsrp1: payload exceeds the frame bound");
  std::vector<u8> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  out.push_back(static_cast<u8>(frame.kind));
  put_u64le(out, frame.request_id);
  put_u32le(out, static_cast<u32>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  put_u32le(out, crc32(std::span<const u8>(out.data(), out.size())));
  return out;
}

void FrameDecoder::feed(std::span<const u8> bytes) {
  // Compact the already-consumed prefix before growing, so a long-lived
  // connection doesn't accumulate every frame it ever decoded.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Status FrameDecoder::next(Frame* out) {
  if (poisoned()) return poison_;
  const u8* data = buffer_.data() + consumed_;
  const std::size_t have = buffer_.size() - consumed_;

  // Fail the magic as soon as any prefix of it mismatches — a garbage stream
  // is rejected on its first bytes, not after a full header arrives.
  const std::size_t magic_check = have < sizeof kMagic ? have : sizeof kMagic;
  if (std::memcmp(data, kMagic, magic_check) != 0) {
    return poison_ = Status::kBadMagic;
  }
  if (have < kFrameHeaderBytes) return Status::kNeedMore;

  const u64 payload_len = get_u32le(data + 14);
  if (payload_len > kMaxFramePayload) return poison_ = Status::kOversized;
  const std::size_t total = kFrameHeaderBytes +
                            static_cast<std::size_t>(payload_len) +
                            kFrameTrailerBytes;
  if (have < total) return Status::kNeedMore;

  const u32 stored_crc = get_u32le(data + total - kFrameTrailerBytes);
  const u32 actual_crc =
      crc32(std::span<const u8>(data, total - kFrameTrailerBytes));
  if (stored_crc != actual_crc) return poison_ = Status::kBadCrc;

  const u8 kind = data[5];
  if (!frame_kind_valid(kind)) {
    // Framing intact: skip just this frame, but surface its request id so
    // the typed error reply can be correlated with the offending request.
    out->request_id = get_u64le(data + 6);
    consumed_ += total;
    return Status::kBadKind;
  }
  out->kind = static_cast<FrameKind>(kind);
  out->request_id = get_u64le(data + 6);
  out->payload.assign(reinterpret_cast<const char*>(data) + kFrameHeaderBytes,
                      static_cast<std::size_t>(payload_len));
  consumed_ += total;
  return Status::kFrame;
}

const char* decode_status_name(FrameDecoder::Status s) {
  switch (s) {
    case FrameDecoder::Status::kNeedMore: return "need_more";
    case FrameDecoder::Status::kFrame: return "frame";
    case FrameDecoder::Status::kBadMagic: return "bad_magic";
    case FrameDecoder::Status::kOversized: return "oversized";
    case FrameDecoder::Status::kBadCrc: return "bad_crc";
    case FrameDecoder::Status::kBadKind: return "bad_kind";
  }
  return "unknown";
}

namespace {

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() const { return pos < text.size() ? text[pos] : '\0'; }
  void expect(char c, const char* what) {
    VSCRUB_CHECK(peek() == c, std::string("json: expected ") + what);
    ++pos;
  }
};

std::string parse_json_string(Cursor& c) {
  c.expect('"', "string");
  std::string out;
  while (true) {
    VSCRUB_CHECK(c.pos < c.text.size(), "json: unterminated string");
    const char ch = c.text[c.pos++];
    if (ch == '"') return out;
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    VSCRUB_CHECK(c.pos < c.text.size(), "json: dangling escape");
    const char esc = c.text[c.pos++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        VSCRUB_CHECK(c.pos + 4 <= c.text.size(), "json: short \\u escape");
        u32 code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.text[c.pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<u32>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<u32>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<u32>(h - 'A' + 10);
          else throw Error("json: bad \\u escape");
        }
        // The serializer only emits \u00xx control codes; decode those and
        // pass anything wider through as UTF-8.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        throw Error("json: unknown escape");
    }
  }
}

std::string parse_json_scalar(Cursor& c) {
  const std::size_t start = c.pos;
  while (c.pos < c.text.size()) {
    const char ch = c.text[c.pos];
    if (ch == ',' || ch == '}' || ch == ' ' || ch == '\t' || ch == '\n' ||
        ch == '\r') {
      break;
    }
    VSCRUB_CHECK(ch != '{' && ch != '[',
                 "json: nested values are not part of the flat schema");
    ++c.pos;
  }
  VSCRUB_CHECK(c.pos > start, "json: empty value");
  return c.text.substr(start, c.pos - start);
}

}  // namespace

FlatJson FlatJson::parse(const std::string& text) {
  FlatJson out;
  Cursor c{text};
  c.skip_ws();
  c.expect('{', "'{'");
  c.skip_ws();
  if (c.peek() == '}') {
    ++c.pos;
    return out;
  }
  while (true) {
    c.skip_ws();
    std::string name = parse_json_string(c);
    c.skip_ws();
    c.expect(':', "':'");
    c.skip_ws();
    std::string value =
        c.peek() == '"' ? parse_json_string(c) : parse_json_scalar(c);
    out.fields_.emplace_back(std::move(name), std::move(value));
    c.skip_ws();
    if (c.peek() == ',') {
      ++c.pos;
      continue;
    }
    c.expect('}', "',' or '}'");
    return out;
  }
}

const std::string* FlatJson::raw(const std::string& name) const {
  for (const auto& [k, v] : fields_) {
    if (k == name) return &v;
  }
  return nullptr;
}

bool FlatJson::has(const std::string& name) const {
  return raw(name) != nullptr;
}

std::string FlatJson::get_string(const std::string& name,
                                 const std::string& dflt) const {
  const std::string* v = raw(name);
  return v != nullptr ? *v : dflt;
}

u64 FlatJson::get_u64(const std::string& name, u64 dflt) const {
  const std::string* v = raw(name);
  return v != nullptr ? std::strtoull(v->c_str(), nullptr, 10) : dflt;
}

double FlatJson::get_double(const std::string& name, double dflt) const {
  const std::string* v = raw(name);
  return v != nullptr ? std::atof(v->c_str()) : dflt;
}

bool FlatJson::get_bool(const std::string& name, bool dflt) const {
  const std::string* v = raw(name);
  if (v == nullptr) return dflt;
  return *v == "true" || *v == "1";
}

}  // namespace vscrub
