// Weighted fair-share admission scheduling for the campaign service: stride
// scheduling over per-tenant lanes.
//
// Each tenant (a client identity or an explicit "tenant" request parameter)
// owns one FIFO lane with a virtual-time `pass`. pop() always dispatches the
// non-empty lane with the smallest pass (lexicographic tenant order breaks
// ties, so the schedule is deterministic for a given arrival order), then
// advances that lane's pass by kStrideScale / weight. A weight-W tenant
// therefore receives W times the dispatch share of a weight-1 tenant under
// contention, while an uncontended tenant still gets the whole machine.
//
// Lanes that go idle re-enter at max(own pass, global virtual time): a
// returning tenant is next in line but cannot claim credit for the time it
// spent away, and a newly seen tenant cannot starve incumbents.
//
// The scheduler is deliberately lock-free-of-its-own: CampaignService calls
// it under its admission mutex, and the template is trivially unit-testable
// with int payloads.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <utility>

#include "common/types.h"

namespace vscrub {

template <typename Job>
class FairScheduler {
 public:
  /// Pass-per-dispatch for weight 1. Large enough that kStrideScale/weight
  /// stays meaningfully distinct for any sane weight.
  static constexpr u64 kStrideScale = 1ull << 20;

  /// Fixes a tenant's weight (>= 1) for all later dispatch accounting.
  void set_weight(const std::string& tenant, u64 weight) {
    lane(tenant).weight = weight == 0 ? 1 : weight;
  }

  /// Enqueues at the tenant's tail (normal admission).
  void push(const std::string& tenant, Job job) {
    Lane& l = lane(tenant);
    if (l.queue.empty()) l.pass = l.pass < vtime_ ? vtime_ : l.pass;
    l.queue.push_back(std::move(job));
    ++size_;
  }

  /// Enqueues at the tenant's HEAD: a preempted job resumes before anything
  /// its own tenant submitted later, but still pays full stride per quantum
  /// against other tenants.
  void push_front(const std::string& tenant, Job job) {
    Lane& l = lane(tenant);
    if (l.queue.empty()) l.pass = l.pass < vtime_ ? vtime_ : l.pass;
    l.queue.push_front(std::move(job));
    ++size_;
  }

  /// Dispatches the minimum-pass lane's head job; false when empty.
  bool pop(Job* out) {
    Lane* best = nullptr;
    for (auto& [tenant, l] : lanes_) {
      if (l.queue.empty()) continue;
      if (best == nullptr || l.pass < best->pass) best = &l;
    }
    if (best == nullptr) return false;
    *out = std::move(best->queue.front());
    best->queue.pop_front();
    --size_;
    vtime_ = best->pass;
    best->pass += kStrideScale / best->weight;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when some OTHER tenant has work queued — the preemption predicate:
  /// a running campaign only yields when the cycles it would consume are
  /// contended by a different identity, never to its own backlog.
  bool other_tenant_waiting(const std::string& tenant) const {
    for (const auto& [name, l] : lanes_) {
      if (!l.queue.empty() && name != tenant) return true;
    }
    return false;
  }

  /// Number of tenants with work queued right now (stats surface).
  std::size_t tenants_waiting() const {
    std::size_t n = 0;
    for (const auto& [name, l] : lanes_) {
      if (!l.queue.empty()) ++n;
    }
    return n;
  }

  /// Applies `fn(job)` to every queued job (drain bookkeeping).
  template <typename Fn>
  void for_each(Fn fn) {
    for (auto& [name, l] : lanes_) {
      for (Job& job : l.queue) fn(job);
    }
  }

 private:
  struct Lane {
    u64 pass = 0;
    u64 weight = 1;
    std::deque<Job> queue;
  };

  Lane& lane(const std::string& tenant) { return lanes_[tenant]; }

  /// Keyed by tenant name; std::map so min-pass ties resolve in tenant
  /// order, making the dispatch sequence reproducible.
  std::map<std::string, Lane> lanes_;
  u64 vtime_ = 0;  ///< pass of the most recently dispatched lane
  std::size_t size_ = 0;
};

}  // namespace vscrub
