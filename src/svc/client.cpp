#include "svc/client.h"

#include <utility>

namespace vscrub {

ServiceClient ServiceClient::connect_unix(const std::string& socket_path) {
  return ServiceClient(ServiceSession::connect_unix(socket_path));
}

ServiceClient ServiceClient::connect_tcp(u16 port) {
  return ServiceClient(ServiceSession::connect_tcp(port));
}

u64 ServiceClient::send_request(FrameKind kind, const std::string& payload) {
  JobHandle handle = session_.submit(kind, payload);
  const u64 id = handle.id();
  pending_.emplace(id, std::move(handle));
  return id;
}

Frame ServiceClient::wait(u64 id,
                          const std::function<void(const Frame&)>& event) {
  const auto it = pending_.find(id);
  VSCRUB_CHECK(it != pending_.end(),
               "client: wait() for an unknown request id " +
                   std::to_string(id));
  JobHandle handle = it->second;
  pending_.erase(it);
  return handle.wait(event);
}

Frame ServiceClient::call(FrameKind kind, const std::string& payload,
                          const std::function<void(const Frame&)>& event) {
  return wait(send_request(kind, payload), event);
}

}  // namespace vscrub
