#include "svc/client.h"

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "report/json.h"

namespace vscrub {
namespace {

bool terminal(FrameKind kind) {
  return kind == FrameKind::kResult || kind == FrameKind::kError ||
         kind == FrameKind::kBusy;
}

}  // namespace

ServiceClient ServiceClient::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  VSCRUB_CHECK(socket_path.size() < sizeof addr.sun_path,
               "client: socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  VSCRUB_CHECK(fd >= 0, "client: cannot create unix socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw Error("client: cannot connect to " + socket_path);
  }
  return ServiceClient(fd);
}

ServiceClient ServiceClient::connect_tcp(u16 port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  VSCRUB_CHECK(fd >= 0, "client: cannot create tcp socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw Error("client: cannot connect to loopback port " +
                std::to_string(port));
  }
  return ServiceClient(fd);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_),
      next_id_(other.next_id_),
      decoder_(std::move(other.decoder_)),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    decoder_ = std::move(other.decoder_);
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
  }
  return *this;
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

u64 ServiceClient::send_request(FrameKind kind, const std::string& payload) {
  const u64 id = next_id_++;
  const std::vector<u8> bytes = encode_frame(Frame{kind, id, payload});
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const auto n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                          MSG_NOSIGNAL);
    VSCRUB_CHECK(n > 0, "client: connection lost while sending");
    sent += static_cast<std::size_t>(n);
  }
  return id;
}

Frame ServiceClient::read_frame() {
  while (true) {
    Frame frame;
    const FrameDecoder::Status status = decoder_.next(&frame);
    if (status == FrameDecoder::Status::kFrame) return frame;
    if (status != FrameDecoder::Status::kNeedMore) {
      throw Error(std::string("client: frame decode failed: ") +
                  decode_status_name(status));
    }
    u8 buf[4096];
    const auto n = ::recv(fd_, buf, sizeof buf, 0);
    VSCRUB_CHECK(n > 0, "client: connection closed by server");
    decoder_.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
  }
}

Frame ServiceClient::wait(u64 id,
                          const std::function<void(const Frame&)>& event) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].first == id) {
      Frame frame = std::move(pending_[i].second);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      return frame;
    }
  }
  while (true) {
    Frame frame = read_frame();
    if (frame.request_id == id) {
      if (terminal(frame.kind)) return frame;
      if (event) event(frame);
      continue;
    }
    // Another in-flight request's terminal reply: keep it for its wait().
    // Its non-terminal frames are dropped — progress belongs to whoever is
    // actively waiting.
    if (terminal(frame.kind)) pending_.emplace_back(frame.request_id, frame);
  }
}

Frame ServiceClient::call(FrameKind kind, const std::string& payload,
                          const std::function<void(const Frame&)>& event) {
  return wait(send_request(kind, payload), event);
}

bool ServiceClient::cancel_request(u64 target_id) {
  const Frame reply =
      call(FrameKind::kCancel,
           JsonReport("cancel_request").set_u64("target_id", target_id)
               .to_json());
  return reply.kind == FrameKind::kResult &&
         FlatJson::parse(reply.payload).get_bool("cancelled", false);
}

}  // namespace vscrub
