#include "svc/config.h"

#include <cstdlib>
#include <limits>

namespace vscrub {

namespace {

/// Strict u64 parse: the whole string must be a decimal number. The CLI's
/// permissive option_u64 (atoi semantics) is fine for one-shot commands; a
/// daemon's config deserves to reject "--queue 1x6" instead of serving with
/// queue 1.
u64 parse_u64_or_throw(const std::string& flag, const std::string& value,
                       u64 max = std::numeric_limits<u64>::max()) {
  if (value.empty()) {
    throw ServiceConfigError("serve: " + flag + " needs a number");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0' ||
      value[0] == '-') {
    throw ServiceConfigError("serve: " + flag + " is not a number: '" +
                             value + "'");
  }
  if (parsed > max) {
    throw ServiceConfigError("serve: " + flag + " out of range (max " +
                             std::to_string(max) + "): '" + value + "'");
  }
  return static_cast<u64>(parsed);
}

}  // namespace

std::map<std::string, u64> parse_sched_weights(const std::string& spec) {
  std::map<std::string, u64> weights;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) {
      throw ServiceConfigError(
          "serve: --sched-weight entries are NAME=W, comma separated: '" +
          spec + "'");
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ServiceConfigError(
          "serve: --sched-weight entry missing NAME=W: '" + entry + "'");
    }
    const std::string name = entry.substr(0, eq);
    const u64 weight =
        parse_u64_or_throw("--sched-weight", entry.substr(eq + 1));
    if (weight == 0) {
      throw ServiceConfigError(
          "serve: --sched-weight weight must be >= 1 for '" + name + "'");
    }
    weights[name] = weight;
  }
  return weights;
}

const std::vector<ServiceConfigFlag>& service_config_flags() {
  static const std::vector<ServiceConfigFlag> flags = {
      {"--socket", true, "PATH",
       "unix socket path (default /tmp/vscrubd.sock)"},
      {"--tcp-port", true, "P", "also listen on TCP loopback port P"},
      {"--queue", true, "N", "admission queue capacity (default 16)"},
      {"--executors", true, "N", "concurrent requests (default 2)"},
      {"--threads", true, "N",
       "shared injection pool workers (0 = hardware)"},
      {"--cache-dir", true, "DIR",
       "process-wide verdict store shared by every client"},
      {"--retry-after", true, "MS", "busy-reply retry hint (default 250)"},
      {"--checkpoint-every", true, "N",
       "checkpoint served campaigns every N chunks (0 = off)"},
      {"--send-timeout", true, "MS",
       "reply write-progress deadline before a client that stops reading "
       "is dropped (default 10000)"},
      {"--sched-weight", true, "NAME=W",
       "fair-share weight for tenant NAME (repeatable / comma list; "
       "default 1)"},
      {"--preempt", true, "N",
       "preempt a served campaign after N chunks when another tenant "
       "waits; it checkpoints and resumes later (0 = off)"},
      {"--spool-dir", true, "DIR",
       "checkpoint directory when --cache-dir is unset"},
      {"--stats-json", true, "FILE",
       "write service stats JSON after the drain"},
  };
  return flags;
}

void ServiceConfig::set(const std::string& flag, const std::string& value) {
  if (flag == "--socket") {
    socket_path = value;
  } else if (flag == "--tcp-port") {
    tcp_port = static_cast<u16>(parse_u64_or_throw(flag, value, 65535));
  } else if (flag == "--queue") {
    queue_capacity = static_cast<std::size_t>(parse_u64_or_throw(flag, value));
  } else if (flag == "--executors") {
    executors = static_cast<unsigned>(parse_u64_or_throw(flag, value, 4096));
  } else if (flag == "--threads") {
    pool_threads = static_cast<unsigned>(parse_u64_or_throw(flag, value, 4096));
  } else if (flag == "--cache-dir") {
    cache_dir = value;
  } else if (flag == "--retry-after") {
    retry_after_ms = parse_u64_or_throw(flag, value);
  } else if (flag == "--checkpoint-every") {
    checkpoint_every_chunks = parse_u64_or_throw(flag, value);
  } else if (flag == "--send-timeout") {
    send_timeout_ms = static_cast<int>(
        parse_u64_or_throw(flag, value, std::numeric_limits<int>::max()));
  } else if (flag == "--sched-weight") {
    for (const auto& [name, weight] : parse_sched_weights(value)) {
      sched_weights[name] = weight;
    }
  } else if (flag == "--preempt") {
    preempt_chunks = parse_u64_or_throw(flag, value);
  } else if (flag == "--spool-dir") {
    spool_dir = value;
  } else if (flag == "--stats-json") {
    stats_json = value;
  } else {
    throw ServiceConfigError("serve: unknown flag " + flag);
  }
}

void ServiceConfig::validate() const {
  if (socket_path.empty()) {
    throw ServiceConfigError("serve: --socket path must not be empty");
  }
  // sockaddr_un::sun_path is 108 bytes on Linux; reject here with a typed
  // error instead of failing at bind time.
  if (socket_path.size() >= 108) {
    throw ServiceConfigError("serve: --socket path too long (max 107): " +
                             socket_path);
  }
  if (queue_capacity == 0) {
    throw ServiceConfigError("serve: --queue must be >= 1");
  }
  if (executors == 0) {
    throw ServiceConfigError("serve: --executors must be >= 1");
  }
  if (send_timeout_ms <= 0) {
    throw ServiceConfigError("serve: --send-timeout must be >= 1 ms");
  }
  if (max_conn_backlog_bytes == 0) {
    throw ServiceConfigError("serve: connection backlog bound must be >= 1");
  }
  if (preempt_chunks > 0 && checkpoint_dir().empty()) {
    throw ServiceConfigError(
        "serve: --preempt needs a checkpoint directory; pass --cache-dir "
        "or --spool-dir");
  }
  for (const auto& [name, weight] : sched_weights) {
    if (name.empty() || weight == 0) {
      throw ServiceConfigError(
          "serve: --sched-weight entries need a nonempty NAME and W >= 1");
    }
  }
}

}  // namespace vscrub
