// VSRP1 — the vscrubd wire protocol. One frame per request or reply:
//
//   offset  size  field
//        0     5  magic "VSRP1"
//        5     1  kind (FrameKind)
//        6     8  request_id, little-endian
//       14     4  payload length, little-endian
//       18     n  payload (UTF-8 JSON, the report/json flat-object shape)
//     18+n     4  CRC-32 (IEEE, reflected) over every preceding byte
//
// Payloads reuse the report/json serializer, so every request and reply
// opens with the same "schema_version"/"kind" pair the offline artifacts
// carry, and the CRC trailer gives the socket stream the same integrity
// discipline the bitstream records ("VSCK3"/"VVS1") already have: a
// truncated, bit-flipped or hostile frame decodes to a *typed* error, never
// to a partially-believed request.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace vscrub {

/// Frame kinds. Requests are < 16, replies >= 16; anything else is rejected
/// at decode time so a corrupted kind can't alias a valid one silently.
enum class FrameKind : u8 {
  // Client -> server.
  kPing = 1,        ///< liveness + version probe, answered inline
  kCampaign = 2,    ///< run an injection campaign (queued)
  kRecampaign = 3,  ///< delta re-campaign against the shared store (queued)
  kMission = 4,     ///< single on-orbit mission simulation (queued)
  kFleet = 5,       ///< Monte-Carlo fleet sweep (queued)
  kCancel = 6,      ///< cancel a queued/running request, answered inline
  kStats = 7,       ///< server metrics snapshot, answered inline
  // Fabric (coordinator) requests, answered inline.
  kStoreLookup = 8,   ///< batched verdict-store probe against the coordinator
  kStorePublish = 9,  ///< batched verdict publish into the coordinator's store

  // Server -> client.
  kAccepted = 16,  ///< request admitted to the work queue
  kProgress = 17,  ///< streaming chunk-complete telemetry
  kResult = 18,    ///< terminal success; payload is the report JSON
  kError = 19,     ///< terminal failure; payload carries code + message
  kBusy = 20,      ///< admission rejected; payload carries retry_after_ms
  kCheckpoint = 21,  ///< streamed VSCK range checkpoint (fabric heartbeat)
};

bool frame_kind_valid(u8 kind);
const char* frame_kind_name(FrameKind kind);

/// One decoded frame. `payload` is the JSON text (possibly empty for pings).
struct Frame {
  FrameKind kind = FrameKind::kPing;
  u64 request_id = 0;
  std::string payload;
};

inline constexpr std::size_t kFrameHeaderBytes = 18;
inline constexpr std::size_t kFrameTrailerBytes = 4;
/// Hard payload bound: a length prefix above this is rejected *before* any
/// buffering, so a hostile 4 GiB prefix cannot make the server allocate.
inline constexpr u64 kMaxFramePayload = 8ull << 20;

/// Serializes a frame (header + payload + CRC trailer).
std::vector<u8> encode_frame(const Frame& frame);

/// Incremental frame decoder over an untrusted byte stream. Feed bytes as
/// they arrive; next() yields complete frames or a typed error. Stream-level
/// errors (bad magic, oversized length, CRC mismatch) poison the decoder —
/// the stream has lost sync, so every later next() repeats the error and the
/// connection should answer with a typed error frame and close. An unknown
/// kind inside an otherwise valid frame is NOT poisoning: the frame is
/// consumed and the connection keeps going.
class FrameDecoder {
 public:
  enum class Status : u8 {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *out was filled with the next frame
    kBadMagic,  ///< stream does not start with "VSRP1" (poisoned)
    kOversized, ///< length prefix exceeds kMaxFramePayload (poisoned)
    kBadCrc,    ///< CRC trailer mismatch (poisoned)
    kBadKind,   ///< valid frame, unknown kind byte (frame consumed; only
                ///< out->request_id is filled, for the error reply)
  };

  /// Appends raw bytes from the stream.
  void feed(std::span<const u8> bytes);

  /// Extracts the next frame or reports why it can't.
  Status next(Frame* out);

  bool poisoned() const { return poison_ != Status::kNeedMore; }
  /// Bytes buffered and not yet consumed (test/introspection hook).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<u8> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
  Status poison_ = Status::kNeedMore;
};

const char* decode_status_name(FrameDecoder::Status s);

/// A parsed flat JSON object — the read side of report/json's JsonReport.
/// Handles exactly the shape every vscrub artifact uses (one object of
/// string/number/bool/null scalars) and throws Error on anything else, so a
/// malformed request degrades to one typed kError reply.
class FlatJson {
 public:
  /// Parses `{"name": value, ...}`. Throws Error on malformed input.
  static FlatJson parse(const std::string& text);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& dflt = "") const;
  u64 get_u64(const std::string& name, u64 dflt = 0) const;
  double get_double(const std::string& name, double dflt = 0.0) const;
  bool get_bool(const std::string& name, bool dflt = false) const;

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

 private:
  const std::string* raw(const std::string& name) const;
  /// (name, value) pairs; string values are unescaped, others kept verbatim.
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace vscrub
