// ServiceConfig — the ONE validated configuration object for the vscrubd
// serving stack. Transport (socket, deadlines), engine (queue, executors,
// store), and scheduler (tenant weights, preemption) settings live here
// together, and every consumer — the `vscrubd` daemon, `vscrubctl serve`,
// the loopback tests, and the service bench — builds the same struct.
//
// The declarative flag table below (service_config_flags()) is the single
// source of truth for the `serve` CLI surface: core/cli builds the serve
// command from it, serve_common applies parsed flags through set(), and the
// CLI contract tests cover every field automatically. Adding a knob means
// adding one table row + one set() case — no flag can drift from its field.
//
// Every setter failure is a typed ServiceConfigError (same discipline as
// GangWidthError / SimdIsaError): junk numbers, malformed weight specs and
// inconsistent combinations are rejected at configuration time with a
// message naming the flag, never discovered mid-serve.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace vscrub {

/// Typed error for rejected service configuration: unknown flags, unparsable
/// values, and validate() consistency failures.
class ServiceConfigError : public Error {
 public:
  explicit ServiceConfigError(const std::string& what) : Error(what) {}
};

/// One row of the serve flag surface; mirrors core/cli's CliFlag shape
/// without depending on it (svc sits below core in the link order).
struct ServiceConfigFlag {
  const char* name;        ///< "--queue"
  bool takes_value;        ///< false for boolean flags
  const char* value_name;  ///< "N", "PATH", ...
  const char* help;
};

/// Every flag the `serve` command accepts, in display order.
const std::vector<ServiceConfigFlag>& service_config_flags();

struct ServiceConfig {
  // ---- transport -------------------------------------------------------
  /// Unix-domain socket path. Bound at start(); unlinked on shutdown.
  std::string socket_path = "/tmp/vscrubd.sock";
  /// When nonzero, also listen on 127.0.0.1:tcp_port (loopback only — the
  /// protocol carries no authentication).
  u16 tcp_port = 0;
  /// Deadline for a connection's queued replies to make progress. A peer
  /// whose socket stays unwritable past this is declared dead: its write
  /// queue is dropped and the connection closed, so a wedged client can
  /// never pin server memory (or stall the SIGTERM drain) forever.
  int send_timeout_ms = 10000;
  /// Hard bound on bytes queued toward one connection. A client that
  /// submits work but never reads its replies accumulates at most this much
  /// before being declared dead. Not a CLI flag; tests shrink it to force
  /// the backpressure path deterministically.
  std::size_t max_conn_backlog_bytes = 64u << 20;

  // ---- engine ----------------------------------------------------------
  /// Admission bound; a work request arriving when this many are already
  /// queued gets a kBusy reply instead of a slot.
  std::size_t queue_capacity = 16;
  /// Executor threads — the number of requests making progress at once.
  unsigned executors = 2;
  /// Workers in the shared injection pool (0 = hardware concurrency).
  unsigned pool_threads = 0;
  /// Directory of the process-wide verdict store; empty = no store (campaign
  /// requests run uncached, recampaign requests are rejected).
  std::string cache_dir;
  /// Retry hint carried in kBusy replies.
  u64 retry_after_ms = 250;
  /// Bound on the request-latency histogram (deterministic reservoir).
  u64 latency_reservoir = 1024;
  /// Campaigns checkpoint (VSCK4) every this many chunks so a cancelled or
  /// hard-stopped request leaves a resumable trail; 0 disables periodic
  /// checkpointing (preemption checkpoints are separate — see preempt_chunks).
  u64 checkpoint_every_chunks = 0;

  // ---- scheduler -------------------------------------------------------
  /// Fair-share weights by tenant name ("--sched-weight NAME=W[,NAME=W]").
  /// Unlisted tenants get weight 1; a tenant with weight W receives W times
  /// the scheduling share of a weight-1 tenant under contention.
  std::map<std::string, u64> sched_weights;
  /// Preemption quantum: a running campaign that has completed this many
  /// chunks while a different tenant has work queued is checkpointed and
  /// requeued at its tenant's head, and the scheduler picks the next lane.
  /// 0 disables preemption. Requires a checkpoint directory (cache_dir or
  /// spool_dir).
  u64 preempt_chunks = 0;
  /// Directory for preemption/periodic checkpoints when cache_dir is empty
  /// (or should not hold scratch state). Empty = use cache_dir.
  std::string spool_dir;

  // ---- daemon ----------------------------------------------------------
  /// When nonempty, the daemon writes a service_stats report here after the
  /// drain completes.
  std::string stats_json;

  /// Applies one parsed CLI flag ("--queue", "8"). Throws ServiceConfigError
  /// on an unknown flag or an unparsable value. "--sched-weight" merges, so
  /// the flag may repeat.
  void set(const std::string& flag, const std::string& value);

  /// Cross-field consistency check; call once after the last set(). Throws
  /// ServiceConfigError naming the first violated constraint.
  void validate() const;

  /// Where served campaigns checkpoint: spool_dir when set, else cache_dir.
  std::string checkpoint_dir() const {
    return spool_dir.empty() ? cache_dir : spool_dir;
  }

  /// Scheduling weight for one tenant (default 1).
  u64 weight_for(const std::string& tenant) const {
    const auto it = sched_weights.find(tenant);
    return it == sched_weights.end() ? 1 : it->second;
  }
};

/// Parses "NAME=W[,NAME=W...]" into (tenant, weight) pairs. Throws
/// ServiceConfigError on empty names, missing '=', junk or zero weights.
std::map<std::string, u64> parse_sched_weights(const std::string& spec);

}  // namespace vscrub
