// Request execution for the vscrubd serving layer: maps a decoded VSRP1
// work request (campaign / recampaign / mission / fleet) onto the same
// library calls the vscrubctl one-shot commands make, against the service's
// shared thread pool and process-wide verdict store. Keeping this a pure
// params -> report function (no sockets, no queues) is what lets the tests
// prove a served request is bit-identical to the equivalent CLI run.
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "fabric/geometry.h"
#include "netlist/netlist.h"
#include "report/json.h"
#include "seu/campaign.h"
#include "svc/protocol.h"

namespace vscrub {

class VerdictStore;

/// The built-in design generators by CLI name (lfsr, mult, vmult, counter,
/// multadd, lfsrmult, fir, selfcheck, bram). Throws Error on an unknown name.
Netlist design_by_name(const std::string& name);

/// The device geometries by CLI name (campaign, xcv50, xcv100, xcv300,
/// xcv1000, tiny:RxC). Throws Error on an unknown name.
DeviceGeometry device_by_name(const std::string& name);

/// Everything a request executes against. All pointers are borrowed and may
/// be null: a null store disables verdict caching (and fails recampaigns), a
/// null pool gives the campaign its own workers, a null cancelled flag makes
/// the request uncancellable.
struct RequestContext {
  VerdictStore* store = nullptr;
  ThreadPool* pool = nullptr;
  const std::atomic<bool>* cancelled = nullptr;
  /// Chunk-complete telemetry hook (campaign/recampaign only); the service
  /// forwards these as kProgress frames. May be empty.
  std::function<void(const CampaignProgress&)> on_progress;
  /// Preemption hook, polled with chunks_done at every chunk boundary the
  /// progress callback sees. Returning true stops the campaign exactly like
  /// a cancel — at the boundary, writing its checkpoint — but the service
  /// requeues the job instead of delivering the interrupted report, and the
  /// next dispatch resumes from the checkpoint bit-identically. May be empty.
  std::function<bool(u64)> preempt_poll;
  /// When set, campaigns checkpoint here (VSCK) so a cancelled, preempted or
  /// hard-stopped request leaves a resumable trail. Empty = no checkpoints.
  std::string checkpoint_path;
  /// Checkpoint cadence in chunks (0 = the campaign default).
  u64 checkpoint_every_chunks = 0;
  /// Fires after every checkpoint save (periodic and final); the fabric
  /// worker ships the fresh VSCK bytes to its coordinator from here. May be
  /// empty.
  std::function<void()> on_checkpoint;
  /// Second-tier verdict source behind the local store (borrowed, may be
  /// null): the fabric wires the coordinator's store in here so workers
  /// reuse each other's verdicts.
  RemoteVerdictClient* remote_store = nullptr;
};

/// The gang width served work defaults to when a request does not pick one:
/// the widest lane width the auto-resolved SIMD tier runs natively (512 on
/// AVX-512, 256 on AVX2, 64 on scalar). Width never changes verdicts or
/// digests — the differential suite proves that — so the service defaults to
/// the fastest engine while `vscrubctl campaign` keeps its historical 64.
u32 served_gang_width_default();

/// Executes one work request and returns its report (the same JSON the
/// corresponding `vscrubctl <op> --json` writes). `kind` must be one of
/// kCampaign/kRecampaign/kMission/kFleet. Throws Error on bad parameters or
/// an unexecutable request; the service turns that into a typed kError reply.
/// Cancellation is polled at chunk boundaries for campaign kinds; mission and
/// fleet requests only honor a cancel that lands before they start.
JsonReport execute_request(FrameKind kind, const FlatJson& params,
                           const RequestContext& ctx);

}  // namespace vscrub
