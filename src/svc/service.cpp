#include "svc/service.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/log.h"
#include "svc/requests.h"

namespace vscrub {

CampaignService::CampaignService(const ServiceOptions& options)
    : options_(options),
      pool_(options.pool_threads) {
  if (!options_.cache_dir.empty()) {
    store_ = std::make_unique<VerdictStore>(options_.cache_dir);
  }
  {
    std::lock_guard lock(metrics_mutex_);
    metrics_.histogram("request_latency_ms", options_.latency_reservoir);
    metrics_.set_gauge("queue_depth", 0.0);
    metrics_.set_gauge("queue_capacity",
                       static_cast<double>(options_.queue_capacity));
  }
  const unsigned executors = options_.executors == 0 ? 1 : options_.executors;
  executors_.reserve(executors);
  for (unsigned i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

CampaignService::~CampaignService() {
  begin_drain();
  wait_drained();
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : executors_) t.join();
  pool_.shutdown();
}

JsonReport CampaignService::error_report(const std::string& code,
                                         const std::string& message) const {
  return JsonReport("error")
      .set_string("code", code)
      .set_string("error", message);
}

JsonReport CampaignService::busy_report(const std::string& reason) const {
  return JsonReport("busy")
      .set_string("reason", reason)
      .set_u64("retry_after_ms", options_.retry_after_ms);
}

void CampaignService::reply(const Emit& emit, FrameKind kind, u64 request_id,
                            const JsonReport& report) const {
  emit(Frame{kind, request_id, report.to_json()});
}

void CampaignService::handle(const Frame& request, Emit emit, u64 client_id) {
  switch (request.kind) {
    case FrameKind::kPing: {
      {
        std::lock_guard lock(metrics_mutex_);
        metrics_.counter("pings").add();
      }
      reply(emit, FrameKind::kResult, request.request_id,
            JsonReport("pong").set_u64("protocol_version", 1));
      return;
    }
    case FrameKind::kStats:
      reply(emit, FrameKind::kResult, request.request_id, stats_report());
      return;
    case FrameKind::kCancel: {
      u64 target = 0;
      try {
        target = FlatJson::parse(request.payload).get_u64("target_id", 0);
      } catch (const Error& e) {
        reply(emit, FrameKind::kError, request.request_id,
              error_report("bad_request", e.what()));
        return;
      }
      reply(emit, FrameKind::kResult, request.request_id,
            JsonReport("cancel").set_u64("target_id", target)
                .set_bool("cancelled", cancel(target, client_id)));
      return;
    }
    case FrameKind::kCampaign:
    case FrameKind::kRecampaign:
    case FrameKind::kMission:
    case FrameKind::kFleet:
      break;  // work request: admission control below
    default:
      reply(emit, FrameKind::kError, request.request_id,
            error_report("bad_request",
                         std::string("not a request kind: ") +
                             frame_kind_name(request.kind)));
      return;
  }

  // Reject-don't-buffer admission: the queue bound is the whole backpressure
  // story, so the admit-or-reject decision is made under the lock that
  // checked the bound (no admit/reject race can oversubscribe the queue).
  Job job;
  job.request = request;
  job.emit = std::move(emit);
  job.cancelled = std::make_shared<std::atomic<bool>>(false);
  job.enqueued = std::chrono::steady_clock::now();
  job.client_id = client_id;
  std::size_t depth = 0;
  // Rejects reply only after BOTH locks are released: emit can block on a
  // stalled client socket, and neither admission (mutex_) nor metrics
  // (metrics_mutex_) may wait behind that.
  const char* reject = nullptr;
  {
    std::unique_lock lock(mutex_);
    if (draining()) {
      reject = "draining";
    } else if (queue_.size() >= options_.queue_capacity) {
      reject = "queue_full";
    } else {
      job.job_id = next_job_id_++;
      live_.push_back({client_id, request.request_id, job.job_id,
                       job.cancelled});
      queue_.push_back(job);
      depth = queue_.size();
    }
  }
  if (reject != nullptr) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("admission_rejects").add();
    }
    reply(job.emit, FrameKind::kBusy, request.request_id,
          busy_report(reject));
    return;
  }
  // Emitted after unlocking: a slow client socket must never stall other
  // admissions. A very fast executor can therefore emit the result before
  // this kAccepted lands; clients treat kAccepted as advisory.
  reply(job.emit, FrameKind::kAccepted, request.request_id,
        JsonReport("accepted").set_u64("queue_depth", depth));
  {
    std::lock_guard mlock(metrics_mutex_);
    metrics_.counter("requests_total").add();
    metrics_.counter(std::string("requests_") +
                     frame_kind_name(request.kind)).add();
    metrics_.set_gauge("queue_depth", static_cast<double>(depth));
  }
  work_cv_.notify_one();
}

bool CampaignService::cancel(u64 request_id, u64 client_id) {
  std::lock_guard lock(mutex_);
  for (LiveEntry& e : live_) {
    if (e.client_id == client_id && e.request_id == request_id) {
      e.flag->store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void CampaignService::cancel_all() {
  std::lock_guard lock(mutex_);
  for (LiveEntry& e : live_) e.flag->store(true, std::memory_order_relaxed);
}

void CampaignService::begin_drain() {
  draining_.store(true, std::memory_order_release);
  work_cv_.notify_all();
}

void CampaignService::wait_drained() {
  {
    std::unique_lock lock(mutex_);
    drained_cv_.wait(lock, [this] {
      return queue_.empty() && running_ == 0;
    });
  }
  if (store_) store_->flush();
}

void CampaignService::executor_loop() {
  while (true) {
    Job job;
    std::size_t depth = 0;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
      ++running_;
    }
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.set_gauge("queue_depth", static_cast<double>(depth));
    }

    run_job(job);

    {
      std::lock_guard lock(mutex_);
      --running_;
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (live_[i].job_id == job.job_id) {
          live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      if (queue_.empty() && running_ == 0) drained_cv_.notify_all();
    }
  }
}

void CampaignService::run_job(Job& job) {
  const u64 id = job.request.request_id;
  if (job.cancelled->load(std::memory_order_relaxed)) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("cancelled_before_start").add();
    }
    reply(job.emit, FrameKind::kError, id,
          error_report("cancelled", "request cancelled before it started"));
    return;
  }

  RequestContext ctx;
  ctx.store = store_.get();
  ctx.pool = &pool_;
  ctx.cancelled = job.cancelled.get();
  if (store_ && options_.checkpoint_every_chunks > 0 &&
      (job.request.kind == FrameKind::kCampaign ||
       job.request.kind == FrameKind::kRecampaign)) {
    // Named by the server-assigned job id: client-chosen request ids collide
    // across connections, and two concurrent campaigns must never share a
    // checkpoint file.
    char name[48];
    std::snprintf(name, sizeof name, "/ckpt_%llu.vsck",
                  static_cast<unsigned long long>(job.job_id));
    ctx.checkpoint_path = store_->dir() + name;
  }
  const Emit emit = job.emit;
  ctx.on_progress = [this, emit, id](const CampaignProgress& p) {
    reply(emit, FrameKind::kProgress, id,
          JsonReport("progress")
              .set_u64("injections_done", p.injections_done)
              .set_u64("injections_total", p.injections_total)
              .set_u64("failures", p.failures)
              .set_u64("cache_hits", p.cache_hits)
              .set_u64("chunks_done", p.chunks_done)
              .set_u64("chunks_total", p.chunks_total)
              .set("bits_per_s", p.bits_per_s)
              .set("eta_s", p.eta_s));
  };
  // Progress frames stream only when asked for: every chunk-telemetry frame
  // is a socket write the client must drain.
  bool want_progress = false;
  FlatJson params;
  try {
    params = FlatJson::parse(job.request.payload.empty() ? "{}"
                                                         : job.request.payload);
    want_progress = params.get_bool("progress", false);
  } catch (const Error& e) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("bad_requests").add();
    }
    reply(job.emit, FrameKind::kError, id, error_report("bad_request", e.what()));
    return;
  }
  if (!want_progress) ctx.on_progress = nullptr;

  // Every reply happens outside metrics_mutex_: emit can block on a slow
  // client socket, and one stalled connection must not stall the metrics of
  // every other executor and admission.
  try {
    const JsonReport report = execute_request(job.request.kind, params, ctx);
    reply(job.emit, FrameKind::kResult, id, report);
    const double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - job.enqueued).count();
    std::lock_guard mlock(metrics_mutex_);
    metrics_.counter("results").add();
    metrics_.histogram("request_latency_ms", options_.latency_reservoir)
        .record(latency_ms);
  } catch (const std::exception& e) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("failed_requests").add();
    }
    reply(job.emit, FrameKind::kError, id, error_report("failed", e.what()));
  }
}

JsonReport CampaignService::stats_report() const {
  std::size_t depth;
  std::size_t live;
  {
    std::lock_guard lock(mutex_);
    depth = queue_.size();
    live = live_.size();
  }
  JsonReport report("service_stats");
  report.set_u64("protocol_version", 1)
      .set_u64("executors", executors_.size())
      .set_u64("pool_threads", pool_.thread_count())
      .set_u64("queue_depth_now", depth)
      .set_u64("live_requests", live)
      .set_bool("draining", draining())
      .set_bool("store_enabled", store_ != nullptr)
      .set_u64("store_entries", store_ ? store_->size() : 0);
  std::lock_guard mlock(metrics_mutex_);
  report.add_metrics(metrics_);
  return report;
}

}  // namespace vscrub
