#include "svc/service.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/log.h"
#include "svc/requests.h"
#include "svc/store_wire.h"

namespace vscrub {

CampaignService::CampaignService(const ServiceConfig& config)
    : config_(config),
      pool_(config.pool_threads) {
  config_.validate();
  if (!config_.cache_dir.empty()) {
    store_ = std::make_unique<VerdictStore>(config_.cache_dir);
  }
  // Preemption and periodic checkpointing both write VSCK files under the
  // checkpoint directory; make sure it exists before the first campaign
  // tries to stop there.
  if ((config_.preempt_chunks > 0 || config_.checkpoint_every_chunks > 0) &&
      !config_.checkpoint_dir().empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir(), ec);
  }
  {
    std::lock_guard lock(metrics_mutex_);
    metrics_.histogram("request_latency_ms", config_.latency_reservoir);
    metrics_.counter("preemptions");
    metrics_.set_gauge("queue_depth", 0.0);
    metrics_.set_gauge("queue_capacity",
                       static_cast<double>(config_.queue_capacity));
  }
  executors_.reserve(config_.executors);
  for (unsigned i = 0; i < config_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

CampaignService::~CampaignService() {
  begin_drain();
  wait_drained();
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : executors_) t.join();
  pool_.shutdown();
}

JsonReport CampaignService::error_report(const std::string& code,
                                         const std::string& message) const {
  return JsonReport("error")
      .set_string("code", code)
      .set_string("error", message);
}

JsonReport CampaignService::busy_report(const std::string& reason) const {
  return JsonReport("busy")
      .set_string("reason", reason)
      .set_u64("retry_after_ms", config_.retry_after_ms);
}

void CampaignService::reply(const Emit& emit, FrameKind kind, u64 request_id,
                            const JsonReport& report) const {
  emit(Frame{kind, request_id, report.to_json()});
}

void CampaignService::handle(const Frame& request, Emit emit, u64 client_id) {
  switch (request.kind) {
    case FrameKind::kPing: {
      {
        std::lock_guard lock(metrics_mutex_);
        metrics_.counter("pings").add();
      }
      reply(emit, FrameKind::kResult, request.request_id,
            JsonReport("pong").set_u64("protocol_version", 1));
      return;
    }
    case FrameKind::kStats:
      reply(emit, FrameKind::kResult, request.request_id, stats_report());
      return;
    case FrameKind::kCancel: {
      u64 target = 0;
      try {
        target = FlatJson::parse(request.payload).get_u64("target_id", 0);
      } catch (const Error& e) {
        reply(emit, FrameKind::kError, request.request_id,
              error_report("bad_request", e.what()));
        return;
      }
      reply(emit, FrameKind::kResult, request.request_id,
            JsonReport("cancel").set_u64("target_id", target)
                .set_bool("cancelled", cancel(target, client_id)));
      return;
    }
    case FrameKind::kStoreLookup:
    case FrameKind::kStorePublish:
      // Remote verdict tier, answered inline against the process-wide store:
      // a lookup/publish is a few map probes, never worth a queue slot. The
      // coordinator daemon is the usual target, but any cache-enabled
      // vscrubd can serve as a fleet's verdict hub.
      handle_store_request(request, emit);
      return;
    case FrameKind::kCampaign:
    case FrameKind::kRecampaign:
    case FrameKind::kMission:
    case FrameKind::kFleet:
      break;  // work request: admission control below
    default:
      reply(emit, FrameKind::kError, request.request_id,
            error_report("bad_request",
                         std::string("not a request kind: ") +
                             frame_kind_name(request.kind)));
      return;
  }

  // The payload must parse before admission: the tenant lane comes from it,
  // and a malformed request should cost one typed reply, not a queue slot
  // and an executor dispatch.
  std::string tenant;
  try {
    const FlatJson params = FlatJson::parse(
        request.payload.empty() ? "{}" : request.payload);
    tenant = params.get_string("tenant", "");
  } catch (const Error& e) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("bad_requests").add();
    }
    reply(emit, FrameKind::kError, request.request_id,
          error_report("bad_request", e.what()));
    return;
  }

  // Reject-don't-buffer admission: the queue bound is the whole backpressure
  // story, so the admit-or-reject decision is made under the lock that
  // checked the bound (no admit/reject race can oversubscribe the queue).
  Job job;
  job.request = request;
  job.emit = std::move(emit);
  job.cancelled = std::make_shared<std::atomic<bool>>(false);
  job.enqueued = std::chrono::steady_clock::now();
  job.client_id = client_id;
  job.tenant = tenant.empty() ? "client#" + std::to_string(client_id)
                              : std::move(tenant);
  std::size_t depth = 0;
  // Rejects reply only after BOTH locks are released: emit can block on a
  // stalled client socket, and neither admission (mutex_) nor metrics
  // (metrics_mutex_) may wait behind that.
  const char* reject = nullptr;
  {
    std::unique_lock lock(mutex_);
    if (draining()) {
      reject = "draining";
    } else if (sched_.size() >= config_.queue_capacity) {
      reject = "queue_full";
    } else {
      job.job_id = next_job_id_++;
      live_.push_back({client_id, request.request_id, job.job_id,
                       job.cancelled});
      const Emit accepted_emit = job.emit;
      const std::string lane = job.tenant;  // job is moved below
      sched_.set_weight(lane, config_.weight_for(lane));
      sched_.push(lane, std::move(job));
      job.emit = accepted_emit;  // for the kAccepted reply below
      depth = sched_.size();
    }
  }
  if (reject != nullptr) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("admission_rejects").add();
    }
    reply(job.emit, FrameKind::kBusy, request.request_id,
          busy_report(reject));
    return;
  }
  // Emitted after unlocking: a slow client socket must never stall other
  // admissions. A very fast executor can therefore emit the result before
  // this kAccepted lands; clients treat kAccepted as advisory.
  reply(job.emit, FrameKind::kAccepted, request.request_id,
        JsonReport("accepted").set_u64("queue_depth", depth));
  {
    std::lock_guard mlock(metrics_mutex_);
    metrics_.counter("requests_total").add();
    metrics_.counter(std::string("requests_") +
                     frame_kind_name(request.kind)).add();
    metrics_.set_gauge("queue_depth", static_cast<double>(depth));
  }
  work_cv_.notify_one();
}

void CampaignService::handle_store_request(const Frame& request,
                                           const Emit& emit) {
  if (store_ == nullptr) {
    reply(emit, FrameKind::kError, request.request_id,
          error_report("no_store",
                       "this daemon runs without a verdict store "
                       "(start it with --cache-dir to serve the fabric's "
                       "remote tier)"));
    return;
  }
  try {
    const FlatJson params = FlatJson::parse(
        request.payload.empty() ? "{}" : request.payload);
    if (request.kind == FrameKind::kStoreLookup) {
      u64 keys = 0, hits = 0;
      const JsonReport report =
          answer_store_lookup(*store_, params, &keys, &hits);
      {
        std::lock_guard mlock(metrics_mutex_);
        metrics_.counter("store_lookups").add(keys);
        metrics_.counter("store_lookup_hits").add(hits);
      }
      reply(emit, FrameKind::kResult, request.request_id, report);
    } else {
      u64 entries = 0;
      const JsonReport report =
          answer_store_publish(*store_, params, &entries);
      {
        std::lock_guard mlock(metrics_mutex_);
        metrics_.counter("store_publishes").add(entries);
      }
      reply(emit, FrameKind::kResult, request.request_id, report);
    }
  } catch (const Error& e) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("bad_requests").add();
    }
    reply(emit, FrameKind::kError, request.request_id,
          error_report("bad_request", e.what()));
  }
}

bool CampaignService::cancel(u64 request_id, u64 client_id) {
  std::lock_guard lock(mutex_);
  for (LiveEntry& e : live_) {
    if (e.client_id == client_id && e.request_id == request_id) {
      e.flag->store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void CampaignService::cancel_client(u64 client_id) {
  std::lock_guard lock(mutex_);
  for (LiveEntry& e : live_) {
    if (e.client_id == client_id) {
      e.flag->store(true, std::memory_order_relaxed);
    }
  }
}

void CampaignService::cancel_all() {
  std::lock_guard lock(mutex_);
  for (LiveEntry& e : live_) e.flag->store(true, std::memory_order_relaxed);
}

void CampaignService::begin_drain() {
  draining_.store(true, std::memory_order_release);
  work_cv_.notify_all();
}

void CampaignService::wait_drained() {
  {
    std::unique_lock lock(mutex_);
    drained_cv_.wait(lock, [this] {
      return sched_.empty() && running_ == 0;
    });
  }
  if (store_) store_->flush();
}

bool CampaignService::idle() const {
  std::lock_guard lock(mutex_);
  return sched_.empty() && running_ == 0;
}

void CampaignService::executor_loop() {
  while (true) {
    Job job;
    std::size_t depth = 0;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !sched_.empty(); });
      if (!sched_.pop(&job)) {
        if (stop_) return;
        continue;
      }
      depth = sched_.size();
      ++running_;
    }
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.set_gauge("queue_depth", static_cast<double>(depth));
    }

    const u64 finished_job_id = job.job_id;
    const bool finished = run_job(job);  // false: preempted, job requeued

    {
      std::lock_guard lock(mutex_);
      --running_;
      if (finished) {
        for (std::size_t i = 0; i < live_.size(); ++i) {
          if (live_[i].job_id == finished_job_id) {
            live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
      if (sched_.empty() && running_ == 0) drained_cv_.notify_all();
    }
  }
}

std::string CampaignService::checkpoint_path_for(const Job& job) const {
  // Named by the server-assigned job id: client-chosen request ids collide
  // across connections, and two concurrent campaigns must never share a
  // checkpoint file. Stable across preemption quanta — the resume path IS
  // this same file.
  char name[48];
  std::snprintf(name, sizeof name, "/ckpt_%llu.vsck",
                static_cast<unsigned long long>(job.job_id));
  return config_.checkpoint_dir() + name;
}

bool CampaignService::should_preempt(const Job& job, u64 chunks_done) {
  (void)chunks_done;
  if (draining()) return false;  // the drain wants jobs DONE, not parked
  std::lock_guard lock(mutex_);
  return sched_.other_tenant_waiting(job.tenant);
}

bool CampaignService::run_job(Job& job) {
  const u64 id = job.request.request_id;
  if (!job.started && job.cancelled->load(std::memory_order_relaxed)) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("cancelled_before_start").add();
    }
    reply(job.emit, FrameKind::kError, id,
          error_report("cancelled", "request cancelled before it started"));
    return true;
  }
  job.started = true;

  RequestContext ctx;
  ctx.store = store_.get();
  ctx.pool = &pool_;
  ctx.cancelled = job.cancelled.get();
  const bool campaign_kind = job.request.kind == FrameKind::kCampaign ||
                             job.request.kind == FrameKind::kRecampaign;
  if (campaign_kind && !config_.checkpoint_dir().empty() &&
      (config_.checkpoint_every_chunks > 0 || config_.preempt_chunks > 0)) {
    ctx.checkpoint_path = checkpoint_path_for(job);
    ctx.checkpoint_every_chunks = config_.checkpoint_every_chunks;
  }
  // Preemption hook, polled at chunk boundaries from the campaign's
  // progress callback. The quantum is measured from the first boundary seen
  // in THIS dispatch, so a resumed campaign gets a full quantum after every
  // preemption instead of being instantly re-preempted.
  bool preempted = false;
  if (campaign_kind && config_.preempt_chunks > 0) {
    ctx.preempt_poll = [this, &job, &preempted,
                        base = std::optional<u64>()](u64 chunks_done) mutable {
      if (preempted) return true;
      if (!base.has_value()) base = chunks_done;
      if (chunks_done - *base < config_.preempt_chunks) return false;
      if (should_preempt(job, chunks_done)) preempted = true;
      return preempted;
    };
  }
  const Emit emit = job.emit;
  ctx.on_progress = [this, emit, id](const CampaignProgress& p) {
    reply(emit, FrameKind::kProgress, id,
          JsonReport("progress")
              .set_u64("injections_done", p.injections_done)
              .set_u64("injections_total", p.injections_total)
              .set_u64("failures", p.failures)
              .set_u64("cache_hits", p.cache_hits)
              .set_u64("chunks_done", p.chunks_done)
              .set_u64("chunks_total", p.chunks_total)
              .set("bits_per_s", p.bits_per_s)
              .set("eta_s", p.eta_s));
  };
  // Progress frames stream only when asked for: every chunk-telemetry frame
  // is a socket write the client must drain.
  bool want_progress = false;
  FlatJson params;
  try {
    params = FlatJson::parse(job.request.payload.empty() ? "{}"
                                                         : job.request.payload);
    want_progress = params.get_bool("progress", false);
  } catch (const Error& e) {
    // Unreachable in practice — admission already parsed the payload — but
    // a defect here must degrade to a typed reply, not a crash.
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("bad_requests").add();
    }
    reply(job.emit, FrameKind::kError, id, error_report("bad_request", e.what()));
    return true;
  }
  if (!want_progress) ctx.on_progress = nullptr;

  // Fabric wiring (campaign kinds only): a worker job may ship each VSCK
  // checkpoint to its coordinator as a kCheckpoint frame, resume from a
  // blob the coordinator sent along with the range, and probe the
  // coordinator's verdict store behind the local one.
  std::unique_ptr<VsrpRemoteStore> remote;
  if (campaign_kind) {
    const bool ship = params.get_bool("ship_checkpoints", false);
    const bool needs_dir = ship || params.has("resume_checkpoint");
    if (needs_dir && ctx.checkpoint_path.empty()) {
      if (config_.checkpoint_dir().empty()) {
        reply(job.emit, FrameKind::kError, id,
              error_report("no_checkpoint_dir",
                           "checkpoint shipping needs a daemon started "
                           "with a spool directory"));
        return true;
      }
      // The constructor only creates the directory when the daemon's own
      // preemption/periodic cadence needs it; a fabric request may be the
      // first thing that writes there.
      std::error_code ec;
      std::filesystem::create_directories(config_.checkpoint_dir(), ec);
      ctx.checkpoint_path = checkpoint_path_for(job);
      ctx.checkpoint_every_chunks = config_.checkpoint_every_chunks;
    }
    if (params.has("resume_checkpoint")) {
      try {
        write_file_bytes(ctx.checkpoint_path,
                         hex_decode(params.get_string("resume_checkpoint")));
      } catch (const Error& e) {
        reply(job.emit, FrameKind::kError, id,
              error_report("bad_request", e.what()));
        return true;
      }
    }
    if (ship) {
      // The coordinator picks the shipping cadence per range; the daemon's
      // own --checkpoint-every-chunks is only the fallback, so a plain
      // worker (started without it) still checkpoints when the fabric asks.
      const u64 range_cadence = params.get_u64("checkpoint_every_chunks", 0);
      if (range_cadence > 0) ctx.checkpoint_every_chunks = range_cadence;
      if (ctx.checkpoint_every_chunks == 0) ctx.checkpoint_every_chunks = 16;
      ctx.on_checkpoint = [this, emit, id, path = ctx.checkpoint_path] {
        std::vector<u8> bytes;
        if (!read_file_bytes(path, &bytes)) return;
        reply(emit, FrameKind::kCheckpoint, id,
              JsonReport("checkpoint").set_string("blob", hex_encode(bytes)));
      };
    }
    const std::string remote_socket =
        params.get_string("remote_store_socket", "");
    if (!remote_socket.empty()) {
      try {
        remote = std::make_unique<VsrpRemoteStore>(remote_socket);
        ctx.remote_store = remote.get();
      } catch (const Error& e) {
        // Degrade: the remote tier only buys reuse, never correctness.
        VSCRUB_WARN("remote store unreachable, running without it: ",
                    e.what());
      }
    }
  }

  // Every reply happens outside metrics_mutex_: emit can block on a slow
  // client socket, and one stalled connection must not stall the metrics of
  // every other executor and admission.
  try {
    const JsonReport report = execute_request(job.request.kind, params, ctx);
    if (preempted && !job.cancelled->load(std::memory_order_relaxed)) {
      // The campaign stopped at a chunk boundary and wrote its VSCK
      // checkpoint; the interrupted report is discarded and the job parks
      // at its lane's head. The next dispatch resumes from the checkpoint
      // and the eventual report is bit-identical to an uninterrupted run.
      {
        std::lock_guard mlock(metrics_mutex_);
        metrics_.counter("preemptions").add();
      }
      {
        const std::string tenant = job.tenant;  // job is moved below
        std::lock_guard lock(mutex_);
        sched_.push_front(tenant, std::move(job));
      }
      work_cv_.notify_one();
      return false;
    }
    reply(job.emit, FrameKind::kResult, id, report);
    // A finished (non-cancelled) campaign's checkpoint is scratch state:
    // remove it. Cancelled campaigns keep theirs — the resumable trail is
    // the documented point of cancel-at-chunk-boundary.
    if (!ctx.checkpoint_path.empty() &&
        !job.cancelled->load(std::memory_order_relaxed)) {
      std::error_code ec;
      std::filesystem::remove(ctx.checkpoint_path, ec);
    }
    const double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - job.enqueued).count();
    std::lock_guard mlock(metrics_mutex_);
    metrics_.counter("results").add();
    metrics_.histogram("request_latency_ms", config_.latency_reservoir)
        .record(latency_ms);
  } catch (const std::exception& e) {
    {
      std::lock_guard mlock(metrics_mutex_);
      metrics_.counter("failed_requests").add();
    }
    reply(job.emit, FrameKind::kError, id, error_report("failed", e.what()));
  }
  return true;
}

JsonReport CampaignService::stats_report() const {
  std::size_t depth;
  std::size_t live;
  std::size_t tenants;
  {
    std::lock_guard lock(mutex_);
    depth = sched_.size();
    live = live_.size();
    tenants = sched_.tenants_waiting();
  }
  JsonReport report("service_stats");
  report.set_u64("protocol_version", 1)
      .set_u64("executors", executors_.size())
      .set_u64("pool_threads", pool_.thread_count())
      .set_u64("queue_depth_now", depth)
      .set_u64("live_requests", live)
      .set_u64("sched_tenants_waiting", tenants)
      .set_u64("preempt_chunks", config_.preempt_chunks)
      .set_bool("draining", draining())
      .set_bool("store_enabled", store_ != nullptr)
      .set_u64("store_entries", store_ ? store_->size() : 0);
  std::lock_guard mlock(metrics_mutex_);
  report.add_metrics(metrics_);
  return report;
}

}  // namespace vscrub
