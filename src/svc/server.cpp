#include "svc/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "common/log.h"

namespace vscrub {
namespace {

/// The stop-pipe write end of the process's one server, for signal handlers.
std::atomic<int> g_signal_fd{-1};

extern "C" void vscrubd_signal_handler(int) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

/// One live connection, shared between its reader thread and every executor
/// holding an emit closure for one of its requests. The fd is closed only
/// when the LAST holder lets go — an executor finishing a campaign after the
/// client hung up must never write into a recycled fd number.
struct ConnState {
  ConnState(int fd_in, int send_timeout_ms_in)
      : fd(fd_in), send_timeout_ms(send_timeout_ms_in) {}
  ~ConnState() { ::close(fd); }

  /// Writes one whole frame under the connection's write mutex, so frames
  /// from concurrent executors interleave at frame — not byte — granularity.
  /// The write is deadline-bounded: a peer that stops draining its socket
  /// buffer for send_timeout_ms is declared dead — the connection is shut
  /// down (unwedging its reader thread too) and all further replies are
  /// dropped, same as the peer-gone policy. Executor threads therefore can
  /// never block indefinitely inside a reply, and cancel_all()/wait_drained()
  /// always make progress.
  void send_frame(const Frame& frame) {
    if (dead.load(std::memory_order_relaxed)) return;
    const std::vector<u8> bytes = encode_frame(frame);
    std::lock_guard lock(write_mutex);
    if (dead.load(std::memory_order_relaxed)) return;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(send_timeout_ms);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now()).count();
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, left > 0 ? static_cast<int>(left) : 0);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) {  // timeout (peer not draining) or poll failure
        mark_dead();
        return;
      }
      const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                            MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
        continue;
      if (n <= 0) {  // peer gone; replies for it are dropped
        mark_dead();
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  void mark_dead() {
    dead.store(true, std::memory_order_relaxed);
    ::shutdown(fd, SHUT_RDWR);
  }

  const int fd;
  const int send_timeout_ms;
  std::atomic<bool> dead{false};
  std::mutex write_mutex;
};

}  // namespace

SocketServer::SocketServer(ServerOptions options)
    : options_(std::move(options)),
      service_(std::make_unique<CampaignService>(options_.service)) {}

SocketServer::~SocketServer() {
  close_listeners();
  {
    std::lock_guard lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  if (g_signal_fd.load(std::memory_order_relaxed) == stop_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

void SocketServer::start() {
  ::signal(SIGPIPE, SIG_IGN);
  VSCRUB_CHECK(::pipe(stop_pipe_) == 0, "vscrubd: cannot create stop pipe");
  ::fcntl(stop_pipe_[0], F_SETFL, O_NONBLOCK);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  VSCRUB_CHECK(options_.socket_path.size() < sizeof addr.sun_path,
               "vscrubd: socket path too long: " + options_.socket_path);
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  VSCRUB_CHECK(unix_fd_ >= 0, "vscrubd: cannot create unix socket");
  VSCRUB_CHECK(::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0,
               "vscrubd: cannot bind " + options_.socket_path);
  VSCRUB_CHECK(::listen(unix_fd_, 64) == 0,
               "vscrubd: cannot listen on " + options_.socket_path);

  if (options_.tcp_port != 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    VSCRUB_CHECK(tcp_fd_ >= 0, "vscrubd: cannot create tcp socket");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in tcp{};
    tcp.sin_family = AF_INET;
    tcp.sin_port = htons(options_.tcp_port);
    // Loopback only: the frame protocol carries no authentication, so the
    // TCP listener must never be reachable off-host.
    tcp.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    VSCRUB_CHECK(::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&tcp),
                        sizeof tcp) == 0,
                 "vscrubd: cannot bind loopback tcp port");
    VSCRUB_CHECK(::listen(tcp_fd_, 64) == 0,
                 "vscrubd: cannot listen on tcp port");
  }
}

void SocketServer::bind_signals() {
  g_signal_fd.store(stop_pipe_[1], std::memory_order_relaxed);
  ::signal(SIGTERM, vscrubd_signal_handler);
  ::signal(SIGINT, vscrubd_signal_handler);
}

void SocketServer::request_stop() {
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &byte, 1);
}

void SocketServer::close_listeners() {
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

void SocketServer::run() {
  int stops = 0;
  while (stops == 0) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {stop_pipe_[0], POLLIN, 0};
    fds[nfds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    const int ready = ::poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      VSCRUB_WARN("vscrubd: poll failed; shutting down");
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char byte;
      while (::read(stop_pipe_[0], &byte, 1) == 1) ++stops;
      break;
    }
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn < 0) continue;
      const u64 client_id =
          next_client_id_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(conn_mutex_);
      conn_fds_.push_back(conn);
      conn_threads_.emplace_back(
          [this, conn, client_id] { connection_loop(conn, client_id); });
    }
  }

  // Drain: stop admitting, let queued + running work finish and deliver.
  stopping_.store(true, std::memory_order_release);
  close_listeners();
  service_->begin_drain();
  if (stops > 1) service_->cancel_all();
  // A further stop request arriving *during* the drain escalates to cancel.
  std::thread escalation([this] {
    while (true) {
      pollfd pfd{stop_pipe_[0], POLLIN, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) return;
      char byte;
      const auto n = ::read(stop_pipe_[0], &byte, 1);
      if (n == 1) {
        service_->cancel_all();
        continue;
      }
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) return;
      if ((pfd.revents & (POLLHUP | POLLERR)) != 0) return;
    }
  });
  service_->wait_drained();
  // Closing the write end EOFs the pipe and unblocks the escalation watcher.
  if (g_signal_fd.load(std::memory_order_relaxed) == stop_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
  ::close(stop_pipe_[1]);
  stop_pipe_[1] = -1;
  escalation.join();
  {
    std::lock_guard lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard lock(conn_mutex_);
    conn_threads_.clear();
    conn_fds_.clear();
  }
  ::unlink(options_.socket_path.c_str());
}

void SocketServer::connection_loop(int fd, u64 client_id) {
  const auto state = std::make_shared<ConnState>(fd, options_.send_timeout_ms);
  const auto emit = [state](const Frame& frame) { state->send_frame(frame); };

  FrameDecoder decoder;
  u8 buf[4096];
  bool open = true;
  while (open) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));
    bool more = true;
    while (more && open) {
      Frame frame;
      const FrameDecoder::Status status = decoder.next(&frame);
      switch (status) {
        case FrameDecoder::Status::kNeedMore:
          more = false;
          break;
        case FrameDecoder::Status::kFrame:
          service_->handle(frame, emit, client_id);
          break;
        case FrameDecoder::Status::kBadKind:
          // Framing is intact: answer and keep the connection.
          emit(Frame{FrameKind::kError, frame.request_id,
                     JsonReport("error")
                         .set_string("code", "unknown_kind")
                         .set_string("error", "unknown frame kind")
                         .to_json()});
          break;
        default:
          // Stream-level corruption: the connection has lost sync. Answer
          // with a typed error so the peer learns why, then close.
          emit(Frame{FrameKind::kError, 0,
                     JsonReport("error")
                         .set_string("code", decode_status_name(status))
                         .set_string("error",
                                     "unrecoverable frame decode error")
                         .to_json()});
          open = false;
          break;
      }
    }
  }
  // Break the peer now; the fd itself is closed when the last emit closure
  // (possibly held by an executor still finishing this client's campaign)
  // releases the shared state.
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard lock(conn_mutex_);
  for (std::size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_.erase(conn_fds_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

}  // namespace vscrub
