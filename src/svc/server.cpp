#include "svc/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/log.h"

namespace vscrub {
namespace {

/// The stop-pipe write end of the process's one server, for signal handlers.
std::atomic<int> g_signal_fd{-1};

extern "C" void vscrubd_signal_handler(int) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// One live connection. The event loop owns the socket: it is the only
/// thread that ever recv()s or send()s on fd. Executor emit closures hold a
/// shared_ptr and only append encoded frames to the write queue — the fd is
/// closed when the LAST holder lets go, so an executor finishing a campaign
/// after the client hung up can never write into a recycled fd number.
struct SocketServer::Conn {
  Conn(int fd_in, u64 client_id_in) : fd(fd_in), client_id(client_id_in) {}
  ~Conn() { ::close(fd); }

  const int fd;
  const u64 client_id;

  // Event-loop-thread state (never touched by executors).
  FrameDecoder decoder;
  bool reading = true;            ///< false after a poisoned stream
  bool close_after_flush = false; ///< close once the error reply is out

  /// Set by the loop on close and by emit on backlog overflow; emit drops
  /// frames for a dead connection instead of queuing into the void.
  std::atomic<bool> dead{false};

  /// Write queue: whole encoded frames, drained front-first. Guarded by
  /// `mutex` because executors append concurrently with the loop draining.
  std::mutex mutex;
  std::deque<std::vector<u8>> out;
  std::size_t front_off = 0;   ///< bytes of out.front() already sent
  std::size_t out_bytes = 0;   ///< total queued bytes (backlog accounting)
  bool blocked = false;        ///< send hit EAGAIN with data still queued
  std::chrono::steady_clock::time_point blocked_since{};
};

/// Executor -> event-loop nudge: an eventfd plus the list of connections
/// with fresh output. Emit closures touch ONLY this and the conn's queue.
struct SocketServer::WakeSignal {
  WakeSignal() : fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {}
  ~WakeSignal() {
    if (fd >= 0) ::close(fd);
  }

  void mark_dirty(std::shared_ptr<Conn> conn) {
    {
      std::lock_guard lock(mutex);
      dirty.push_back(std::move(conn));
    }
    const u64 one = 1;
    [[maybe_unused]] const auto n = ::write(fd, &one, sizeof one);
  }

  std::vector<std::shared_ptr<Conn>> take_dirty() {
    std::lock_guard lock(mutex);
    return std::exchange(dirty, {});
  }

  const int fd;
  std::mutex mutex;
  std::vector<std::shared_ptr<Conn>> dirty;
};

SocketServer::SocketServer(ServiceConfig config)
    : config_(std::move(config)),
      service_(std::make_unique<CampaignService>(config_)),
      wake_(std::make_shared<WakeSignal>()) {
  VSCRUB_CHECK(wake_->fd >= 0, "vscrubd: cannot create wakeup eventfd");
}

SocketServer::SocketServer(ServiceConfig config,
                           std::unique_ptr<FrameService> service)
    : config_(std::move(config)),
      service_(std::move(service)),
      wake_(std::make_shared<WakeSignal>()) {
  VSCRUB_CHECK(service_ != nullptr, "vscrubd: null service engine");
  VSCRUB_CHECK(wake_->fd >= 0, "vscrubd: cannot create wakeup eventfd");
}

SocketServer::~SocketServer() {
  close_listeners();
  for (auto& [fd, conn] : conns_) {
    conn->dead.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
  }
  conns_.clear();
  // Drain and join the executors while wake_ and the surviving Conn objects
  // (held by emit closures) are still valid.
  service_.reset();
  if (g_signal_fd.load(std::memory_order_relaxed) == stop_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
}

void SocketServer::start() {
  ::signal(SIGPIPE, SIG_IGN);
  VSCRUB_CHECK(::pipe(stop_pipe_) == 0, "vscrubd: cannot create stop pipe");
  set_nonblocking(stop_pipe_[0]);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  VSCRUB_CHECK(config_.socket_path.size() < sizeof addr.sun_path,
               "vscrubd: socket path too long: " + config_.socket_path);
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  ::unlink(config_.socket_path.c_str());  // stale socket from a dead daemon
  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  VSCRUB_CHECK(unix_fd_ >= 0, "vscrubd: cannot create unix socket");
  VSCRUB_CHECK(::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0,
               "vscrubd: cannot bind " + config_.socket_path);
  VSCRUB_CHECK(::listen(unix_fd_, 256) == 0,
               "vscrubd: cannot listen on " + config_.socket_path);
  set_nonblocking(unix_fd_);

  if (config_.tcp_port != 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    VSCRUB_CHECK(tcp_fd_ >= 0, "vscrubd: cannot create tcp socket");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in tcp{};
    tcp.sin_family = AF_INET;
    tcp.sin_port = htons(config_.tcp_port);
    // Loopback only: the frame protocol carries no authentication, so the
    // TCP listener must never be reachable off-host.
    tcp.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    VSCRUB_CHECK(::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&tcp),
                        sizeof tcp) == 0,
                 "vscrubd: cannot bind loopback tcp port");
    VSCRUB_CHECK(::listen(tcp_fd_, 256) == 0,
                 "vscrubd: cannot listen on tcp port");
    set_nonblocking(tcp_fd_);
  }
}

void SocketServer::bind_signals() {
  g_signal_fd.store(stop_pipe_[1], std::memory_order_relaxed);
  ::signal(SIGTERM, vscrubd_signal_handler);
  ::signal(SIGINT, vscrubd_signal_handler);
}

void SocketServer::request_stop() {
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &byte, 1);
}

void SocketServer::close_listeners() {
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);  // a closed fd leaves its epoll set automatically
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

void SocketServer::accept_ready(int listen_fd) {
  while (true) {
    const int cfd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the accept backlog (or listener closed)
    }
    const u64 client_id =
        next_client_id_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Conn>(cfd, client_id);
    epoll_event ev{};
    // Edge-triggered both ways: read_ready recvs until EAGAIN, flush_writes
    // sends until EAGAIN, so no edge is ever absorbed without draining.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = cfd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) != 0) {
      continue;  // conn drops here, closing cfd
    }
    conns_.emplace(cfd, std::move(conn));
  }
}

void SocketServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const std::shared_ptr<Conn> conn = it->second;
  conn->dead.store(true, std::memory_order_release);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // Break the peer now; the fd itself is closed when the last emit closure
  // (possibly held by an executor still finishing this client's campaign)
  // releases the shared state.
  ::shutdown(fd, SHUT_RDWR);
  conns_.erase(it);
  // Replies for this client can no longer be delivered, so any campaign it
  // still has queued or running is pure waste: cancel it at the next chunk
  // boundary (it checkpoints, and its undeliverable report is dropped by
  // the dead-connection emit).
  service_->cancel_client(conn->client_id);
}

void SocketServer::read_ready(const std::shared_ptr<Conn>& conn) {
  if (conn->dead.load(std::memory_order_acquire)) {
    close_conn(conn->fd);
    return;
  }
  u8 buf[16384];
  while (true) {
    const auto n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n == 0) {  // orderly EOF from the peer
      close_conn(conn->fd);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(conn->fd);
      return;
    }
    if (!conn->reading) continue;  // poisoned: discard input until close
    conn->decoder.feed(std::span<const u8>(buf, static_cast<std::size_t>(n)));

    // The emit closure is what executors hold: encode, enqueue, nudge the
    // loop. It never touches the socket, so a stalled peer can only ever
    // stall its own queue — never the executor running its campaign.
    const auto wake = wake_;
    const auto cap = config_.max_conn_backlog_bytes;
    const CampaignService::Emit emit = [conn, wake, cap](const Frame& frame) {
      if (conn->dead.load(std::memory_order_acquire)) return;
      std::vector<u8> bytes = encode_frame(frame);
      bool overflow = false;
      {
        std::lock_guard lock(conn->mutex);
        conn->out_bytes += bytes.size();
        conn->out.push_back(std::move(bytes));
        overflow = conn->out_bytes > cap;
      }
      // A client that submits work and never drains its replies is declared
      // dead at the backlog bound — reject-don't-buffer, transport edition.
      if (overflow) conn->dead.store(true, std::memory_order_release);
      wake->mark_dirty(conn);
    };

    bool more = true;
    while (more && conn->reading) {
      Frame frame;
      const FrameDecoder::Status status = conn->decoder.next(&frame);
      switch (status) {
        case FrameDecoder::Status::kNeedMore:
          more = false;
          break;
        case FrameDecoder::Status::kFrame:
          service_->handle(frame, emit, conn->client_id);
          break;
        case FrameDecoder::Status::kBadKind:
          // Framing is intact: answer and keep the connection.
          emit(Frame{FrameKind::kError, frame.request_id,
                     JsonReport("error")
                         .set_string("code", "unknown_kind")
                         .set_string("error", "unknown frame kind")
                         .to_json()});
          break;
        default:
          // Stream-level corruption: the connection has lost sync. Answer
          // with a typed error so the peer learns why, then close once the
          // reply has flushed (the send deadline bounds how long that can
          // take against a non-reading peer).
          emit(Frame{FrameKind::kError, 0,
                     JsonReport("error")
                         .set_string("code", decode_status_name(status))
                         .set_string("error",
                                     "unrecoverable frame decode error")
                         .to_json()});
          conn->reading = false;
          conn->close_after_flush = true;
          break;
      }
    }
  }
}

void SocketServer::flush_writes(const std::shared_ptr<Conn>& conn) {
  if (conn->dead.load(std::memory_order_acquire)) {
    close_conn(conn->fd);
    return;
  }
  bool close_now = false;
  {
    std::unique_lock lock(conn->mutex);
    while (!conn->out.empty()) {
      const std::vector<u8>& front = conn->out.front();
      const auto n = ::send(conn->fd, front.data() + conn->front_off,
                            front.size() - conn->front_off,
                            MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        conn->front_off += static_cast<std::size_t>(n);
        conn->out_bytes -= static_cast<std::size_t>(n);
        if (conn->front_off == front.size()) {
          conn->out.pop_front();
          conn->front_off = 0;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Peer's socket buffer is full: arm the write-progress deadline and
        // wait for EPOLLOUT. Any byte of progress re-arms it.
        if (!conn->blocked) {
          conn->blocked = true;
          conn->blocked_since = std::chrono::steady_clock::now();
        }
        return;
      }
      // Hard send error: peer is gone; its remaining replies are dropped.
      lock.unlock();
      close_conn(conn->fd);
      return;
    }
    conn->blocked = false;
    close_now = conn->close_after_flush;
  }
  if (close_now) close_conn(conn->fd);
}

int SocketServer::enforce_deadlines() {
  const auto now = std::chrono::steady_clock::now();
  int next_ms = -1;
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    std::lock_guard lock(conn->mutex);
    if (!conn->blocked) continue;
    const auto waited_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - conn->blocked_since).count();
    if (waited_ms >= config_.send_timeout_ms) {
      expired.push_back(fd);
    } else {
      const int left = config_.send_timeout_ms - static_cast<int>(waited_ms);
      if (next_ms < 0 || left < next_ms) next_ms = left;
    }
  }
  for (const int fd : expired) close_conn(fd);
  return next_ms;
}

bool SocketServer::all_flushed() {
  for (const auto& [fd, conn] : conns_) {
    std::lock_guard lock(conn->mutex);
    if (!conn->out.empty()) return false;
  }
  return true;
}

void SocketServer::run() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  VSCRUB_CHECK(epoll_fd_ >= 0, "vscrubd: cannot create epoll instance");
  const auto add_level = [this](int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    VSCRUB_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                 "vscrubd: epoll_ctl failed");
  };
  add_level(stop_pipe_[0]);
  add_level(wake_->fd);
  add_level(unix_fd_);
  if (tcp_fd_ >= 0) add_level(tcp_fd_);

  int stops = 0;
  bool draining = false;
  epoll_event events[128];
  while (true) {
    // Timeout: the nearest write deadline, and while draining a short poll
    // so the loop notices service_->idle() without a dedicated waiter.
    int timeout_ms = enforce_deadlines();
    if (draining && (timeout_ms < 0 || timeout_ms > 20)) timeout_ms = 20;
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      VSCRUB_WARN("vscrubd: epoll_wait failed; shutting down");
      break;
    }
    int new_stops = 0;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const u32 ev = events[i].events;
      if (fd == stop_pipe_[0]) {
        char byte;
        while (::read(stop_pipe_[0], &byte, 1) == 1) ++new_stops;
      } else if (fd == wake_->fd) {
        u64 value;
        while (::read(wake_->fd, &value, sizeof value) > 0) {
        }
      } else if (fd == unix_fd_ || fd == tcp_fd_) {
        accept_ready(fd);
      } else {
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed earlier this batch
        const std::shared_ptr<Conn> conn = it->second;
        if ((ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
          read_ready(conn);
        }
        if ((ev & EPOLLOUT) != 0) {
          const auto still = conns_.find(fd);
          if (still != conns_.end() && still->second == conn) {
            flush_writes(conn);
          }
        }
      }
    }
    // Drain connections executors (or inline replies) marked dirty. The fd
    // may have been closed and the number recycled, so match the object,
    // not the number.
    for (const auto& conn : wake_->take_dirty()) {
      const auto it = conns_.find(conn->fd);
      if (it != conns_.end() && it->second == conn) flush_writes(conn);
    }
    if (new_stops > 0) {
      stops += new_stops;
      if (!draining) {
        draining = true;
        close_listeners();
        service_->begin_drain();
        if (stops > 1) service_->cancel_all();
      } else {
        // A further stop request arriving DURING the drain escalates to
        // cancel: live campaigns stop at the next chunk boundary,
        // checkpoint, and deliver their interrupted results.
        service_->cancel_all();
      }
    }
    if (draining && service_->idle() && all_flushed()) break;
  }

  service_->wait_drained();  // idle already; this flushes the verdict store
  std::vector<int> open_fds;
  open_fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) open_fds.push_back(fd);
  for (const int fd : open_fds) close_conn(fd);
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  ::unlink(config_.socket_path.c_str());
}

}  // namespace vscrub
