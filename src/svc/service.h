// The vscrubd request engine, independent of any transport: a bounded
// admission queue feeding a small set of executor threads, every work
// request running against ONE process-wide verdict store and ONE shared
// injection thread pool. The socket server (svc/server.h) is a thin shell
// around this; the loopback tests drive it directly.
//
// Concurrency shape: executor threads are dedicated — they block on the
// queue and on campaign completion, and only the campaign's *chunks* run on
// the shared compute pool. Request handlers never run on the compute pool
// itself; an executor blocking inside parallel_chunks while also occupying a
// compute worker would deadlock the pool under multiplexed load.
//
// Backpressure is explicit: when the queue is full (or the service is
// draining) a work request is answered immediately with a typed kBusy frame
// carrying retry_after_ms — the service never buffers unboundedly and never
// silently drops.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "report/json.h"
#include "store/verdict_store.h"
#include "svc/protocol.h"

namespace vscrub {

struct ServiceOptions {
  /// Admission-queue capacity; a work request arriving when this many are
  /// already queued gets a kBusy reply instead of a slot.
  std::size_t queue_capacity = 16;
  /// Executor threads — the number of requests making progress at once.
  unsigned executors = 2;
  /// Workers in the shared injection pool (0 = hardware concurrency).
  unsigned pool_threads = 0;
  /// Directory of the process-wide verdict store; empty = no store (campaign
  /// requests run uncached, recampaign requests are rejected).
  std::string cache_dir;
  /// Retry hint carried in kBusy replies.
  u64 retry_after_ms = 250;
  /// Bound on the request-latency histogram (deterministic reservoir).
  u64 latency_reservoir = 1024;
  /// Campaigns checkpoint under cache_dir (VSCK3) every this many chunks so
  /// a cancelled or hard-stopped request leaves a resumable trail; 0
  /// disables server-side checkpointing.
  u64 checkpoint_every_chunks = 0;
};

class CampaignService {
 public:
  /// Reply sink for one request. Called from executor threads (and inline
  /// from handle() for immediate replies), possibly concurrently across
  /// requests — implementations must be thread-safe.
  using Emit = std::function<void(const Frame&)>;

  explicit CampaignService(const ServiceOptions& options);
  /// Drains (queued and running requests finish) and joins the executors.
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Routes one decoded request frame. Immediate kinds (ping/stats/cancel)
  /// are answered synchronously through `emit`; work kinds are queued (emit
  /// gets kAccepted now and kProgress/kResult/kError later, from an executor)
  /// or rejected with kBusy. Unknown/invalid kinds get kError.
  ///
  /// `client_id` is the transport's identity for the issuing connection.
  /// Request ids are client-chosen and only unique per connection, so every
  /// job is tracked by {client_id, request_id}: a kCancel frame can only ever
  /// cancel work submitted over the same connection, never another client's
  /// request that happens to share the id.
  void handle(const Frame& request, Emit emit, u64 client_id = 0);

  /// Stops admitting work. Already-queued and running requests finish and
  /// their replies are delivered; new work requests get kBusy("draining").
  void begin_drain();
  /// Blocks until the queue is empty and every executor is idle. The
  /// verdict store is flushed before returning.
  void wait_drained();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Flips the cancel flag of the queued or running request that `client_id`
  /// submitted as `request_id`; false when no such job is live. Campaigns
  /// stop at their next chunk boundary, checkpoint, and still deliver their
  /// (interrupted) result.
  bool cancel(u64 request_id, u64 client_id = 0);
  /// Flips every live request's cancel flag regardless of owner (the hard
  /// phase of a two-step shutdown: drain first, cancel on the second signal).
  void cancel_all();

  /// Snapshot of the server-side metrics as a versioned JSON report
  /// ("kind": "service_stats"): queue depth, admission rejects, request
  /// latency p50/p99, per-kind counters, store size.
  JsonReport stats_report() const;

  VerdictStore* store() { return store_.get(); }
  const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    Frame request;
    Emit emit;
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::chrono::steady_clock::time_point enqueued;
    u64 client_id = 0;  ///< issuing connection (scopes kCancel)
    /// Server-assigned, unique for the process lifetime: the key for live_
    /// bookkeeping and checkpoint filenames, immune to request-id collisions
    /// between connections.
    u64 job_id = 0;
  };

  /// One queued-or-running job's cancel handle.
  struct LiveEntry {
    u64 client_id;
    u64 request_id;
    u64 job_id;
    std::shared_ptr<std::atomic<bool>> flag;
  };

  void executor_loop();
  void run_job(Job& job);
  void reply(const Emit& emit, FrameKind kind, u64 request_id,
             const JsonReport& report) const;
  JsonReport error_report(const std::string& code,
                          const std::string& message) const;
  JsonReport busy_report(const std::string& reason) const;

  ServiceOptions options_;
  std::unique_ptr<VerdictStore> store_;  ///< null when cache_dir is empty
  ThreadPool pool_;                      ///< shared injection compute pool

  mutable std::mutex mutex_;             ///< guards queue_/live_/counters
  std::condition_variable work_cv_;      ///< executors wait here
  std::condition_variable drained_cv_;   ///< wait_drained() waits here
  std::deque<Job> queue_;
  /// Cancel flags of queued + running jobs.
  std::vector<LiveEntry> live_;
  u64 next_job_id_ = 1;
  unsigned running_ = 0;
  std::atomic<bool> draining_{false};
  bool stop_ = false;  ///< set by the destructor after the final drain

  mutable std::mutex metrics_mutex_;
  MetricsRegistry metrics_;

  std::vector<std::thread> executors_;
};

}  // namespace vscrub
