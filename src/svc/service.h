// The vscrubd request engine, independent of any transport: a bounded
// admission queue feeding a small set of executor threads, every work
// request running against ONE process-wide verdict store and ONE shared
// injection thread pool. The socket server (svc/server.h) is a thin shell
// around this; the loopback tests drive it directly.
//
// Admission is weighted fair-share, not FIFO: every job lands in its
// tenant's lane (an explicit "tenant" request parameter, else the issuing
// connection) and executors dispatch lanes by stride scheduling
// (svc/scheduler.h), so one client flooding the queue cannot starve
// everyone else — it can only fill its own share.
//
// Long campaigns preempt at chunk boundaries: when a running campaign has
// consumed its quantum (ServiceConfig::preempt_chunks) while a DIFFERENT
// tenant has work queued, it checkpoints (VSCK4), is requeued at its
// tenant's head, and the executor picks the next lane. On redispatch the
// campaign resumes from its checkpoint, so the final report — including the
// order-independent sensitive-set digest — is bit-identical to an
// uninterrupted run. Restart-from-checkpoint is the scheduler primitive.
//
// Concurrency shape: executor threads are dedicated — they block on the
// queue and on campaign completion, and only the campaign's *chunks* run on
// the shared compute pool. Request handlers never run on the compute pool
// itself; an executor blocking inside parallel_chunks while also occupying a
// compute worker would deadlock the pool under multiplexed load.
//
// Backpressure is explicit: when the queue is full (or the service is
// draining) a work request is answered immediately with a typed kBusy frame
// carrying retry_after_ms — the service never buffers unboundedly and never
// silently drops.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "report/json.h"
#include "store/verdict_store.h"
#include "svc/config.h"
#include "svc/protocol.h"
#include "svc/scheduler.h"

namespace vscrub {

/// What the socket transport (svc/server.h) needs from a request engine —
/// nothing more. CampaignService (the worker daemon's engine) and the
/// fabric's CoordinatorService (coord/coordinator.h) both implement this,
/// so one epoll event loop serves either role; which engine a daemon runs
/// is a construction-time choice, not a transport fork.
class FrameService {
 public:
  /// Reply sink for one request. Called from executor threads (and inline
  /// from handle() for immediate replies), possibly concurrently across
  /// requests — implementations must be thread-safe and non-blocking (the
  /// event-loop transport only enqueues bytes here).
  using Emit = std::function<void(const Frame&)>;

  virtual ~FrameService() = default;

  /// Routes one decoded request frame; replies flow through `emit`.
  /// `client_id` is the transport's identity for the issuing connection.
  virtual void handle(const Frame& request, Emit emit, u64 client_id) = 0;
  /// Stops admitting work; in-flight work finishes and replies.
  virtual void begin_drain() = 0;
  /// Blocks until every admitted request has reached its terminal reply.
  virtual void wait_drained() = 0;
  /// Non-blocking wait_drained() predicate for the event loop.
  virtual bool idle() const = 0;
  /// A connection died: stop work whose replies can no longer be delivered.
  virtual void cancel_client(u64 client_id) = 0;
  /// Hard shutdown phase: flip every live request's cancel flag.
  virtual void cancel_all() = 0;
  /// Server-side metrics snapshot as a versioned JSON report.
  virtual JsonReport stats_report() const = 0;
};

class CampaignService : public FrameService {
 public:
  using Emit = FrameService::Emit;

  /// Validates `config` (throws ServiceConfigError) and starts the
  /// executors. The checkpoint directory is created when preemption or
  /// periodic checkpointing needs one.
  explicit CampaignService(const ServiceConfig& config);
  /// Drains (queued and running requests finish) and joins the executors.
  ~CampaignService() override;

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Routes one decoded request frame. Immediate kinds (ping/stats/cancel)
  /// are answered synchronously through `emit`; work kinds are queued (emit
  /// gets kAccepted now and kProgress/kResult/kError later, from an executor)
  /// or rejected with kBusy. Unknown/invalid kinds get kError.
  ///
  /// `client_id` is the transport's identity for the issuing connection.
  /// Request ids are client-chosen and only unique per connection, so every
  /// job is tracked by {client_id, request_id}: a kCancel frame can only ever
  /// cancel work submitted over the same connection, never another client's
  /// request that happens to share the id.
  void handle(const Frame& request, Emit emit, u64 client_id = 0) override;

  /// Stops admitting work. Already-queued and running requests finish and
  /// their replies are delivered; new work requests get kBusy("draining").
  void begin_drain() override;
  /// Blocks until the queue is empty and every executor is idle. The
  /// verdict store is flushed before returning.
  void wait_drained() override;
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Non-blocking wait_drained() predicate — the event loop polls this
  /// between readiness waits instead of parking a thread.
  bool idle() const override;

  /// Flips the cancel flag of the queued or running request that `client_id`
  /// submitted as `request_id`; false when no such job is live. Campaigns
  /// stop at their next chunk boundary, checkpoint, and still deliver their
  /// (interrupted) result.
  bool cancel(u64 request_id, u64 client_id = 0);
  /// Cancels every live request `client_id` owns — the transport calls this
  /// when a connection dies, so work whose replies can no longer be
  /// delivered stops at the next chunk boundary instead of burning the
  /// compute pool to the end.
  void cancel_client(u64 client_id) override;
  /// Flips every live request's cancel flag regardless of owner (the hard
  /// phase of a two-step shutdown: drain first, cancel on the second signal).
  void cancel_all() override;

  /// Snapshot of the server-side metrics as a versioned JSON report
  /// ("kind": "service_stats"): queue depth, admission rejects, request
  /// latency p50/p99, per-kind counters, preemptions, store size.
  JsonReport stats_report() const override;

  VerdictStore* store() { return store_.get(); }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Job {
    Frame request;
    Emit emit;
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::chrono::steady_clock::time_point enqueued;
    u64 client_id = 0;  ///< issuing connection (scopes kCancel)
    /// Server-assigned, unique for the process lifetime: the key for live_
    /// bookkeeping and checkpoint filenames, immune to request-id collisions
    /// between connections.
    u64 job_id = 0;
    /// Scheduler lane: the request's "tenant" parameter when given, else
    /// the issuing connection's identity.
    std::string tenant;
    /// False until the first dispatch. A cancel that lands on a never-run
    /// job is answered with a typed error; a cancel on a preempted (parked
    /// but partially-run) job redispatches it so it can deliver its
    /// interrupted result, same as a running cancel.
    bool started = false;
  };

  /// One queued-or-running job's cancel handle.
  struct LiveEntry {
    u64 client_id;
    u64 request_id;
    u64 job_id;
    std::shared_ptr<std::atomic<bool>> flag;
  };

  void executor_loop();
  /// Answers a kStoreLookup / kStorePublish frame inline against store_
  /// (typed kError "no_store" when the service runs without a cache dir).
  void handle_store_request(const Frame& request, const Emit& emit);
  /// Runs one dispatched job. Returns true when the job reached a terminal
  /// reply (its live entry must be released); false when it was preempted
  /// and requeued for a later quantum.
  bool run_job(Job& job);
  /// Preemption predicate, polled at chunk boundaries from the campaign's
  /// progress callback.
  bool should_preempt(const Job& job, u64 chunks_done);
  std::string checkpoint_path_for(const Job& job) const;
  void reply(const Emit& emit, FrameKind kind, u64 request_id,
             const JsonReport& report) const;
  JsonReport error_report(const std::string& code,
                          const std::string& message) const;
  JsonReport busy_report(const std::string& reason) const;

  ServiceConfig config_;
  std::unique_ptr<VerdictStore> store_;  ///< null when cache_dir is empty
  ThreadPool pool_;                      ///< shared injection compute pool

  mutable std::mutex mutex_;             ///< guards sched_/live_/counters
  std::condition_variable work_cv_;      ///< executors wait here
  std::condition_variable drained_cv_;   ///< wait_drained() waits here
  FairScheduler<Job> sched_;
  /// Cancel flags of queued + running jobs.
  std::vector<LiveEntry> live_;
  u64 next_job_id_ = 1;
  unsigned running_ = 0;
  std::atomic<bool> draining_{false};
  bool stop_ = false;  ///< set by the destructor after the final drain

  mutable std::mutex metrics_mutex_;
  MetricsRegistry metrics_;

  std::vector<std::thread> executors_;
};

}  // namespace vscrub
