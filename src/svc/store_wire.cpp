#include "svc/store_wire.h"

#include <cstdio>
#include <string_view>

#include "common/log.h"
#include "report/json.h"

namespace vscrub {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Minimal-width lowercase hex (no 0x). Zero renders as "0".
void append_hex(std::string* out, u64 v) {
  char buf[16];
  int n = 0;
  do {
    buf[n++] = kHexDigits[v & 0xF];
    v >>= 4;
  } while (v != 0);
  while (n > 0) out->push_back(buf[--n]);
}

u64 parse_hex(std::string_view text) {
  VSCRUB_CHECK(!text.empty() && text.size() <= 16,
               "store wire: bad hex field width");
  u64 v = 0;
  for (const char c : text) {
    const int d = hex_value(c);
    VSCRUB_CHECK(d >= 0, "store wire: non-hex character");
    v = (v << 4) | static_cast<u64>(d);
  }
  return v;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

void append_verdict_fields(std::string* out, const StoredVerdict& v) {
  const u64 flags = (v.output_error ? 1u : 0u) | (v.persistent ? 2u : 0u);
  append_hex(out, flags);
  out->push_back(':');
  append_hex(out, v.first_error_cycle);
  out->push_back(':');
  append_hex(out, v.error_output_mask_lo);
}

StoredVerdict verdict_from_fields(std::string_view flags,
                                  std::string_view cycle,
                                  std::string_view mask) {
  const u64 f = parse_hex(flags);
  VSCRUB_CHECK(f <= 3, "store wire: unknown verdict flag bits");
  StoredVerdict v;
  v.output_error = (f & 1) != 0;
  v.persistent = (f & 2) != 0;
  v.first_error_cycle = static_cast<u32>(parse_hex(cycle));
  v.error_output_mask_lo = parse_hex(mask);
  return v;
}

}  // namespace

std::string hex_encode(std::span<const u8> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const u8 b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::vector<u8> hex_decode(const std::string& text) {
  VSCRUB_CHECK(text.size() % 2 == 0, "hex blob: odd length");
  std::vector<u8> out(text.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = hex_value(text[2 * i]);
    const int lo = hex_value(text[2 * i + 1]);
    VSCRUB_CHECK(hi >= 0 && lo >= 0, "hex blob: non-hex character");
    out[i] = static_cast<u8>((hi << 4) | lo);
  }
  return out;
}

bool read_file_bytes(const std::string& path, std::vector<u8>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  u8 buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void write_file_bytes(const std::string& path, std::span<const u8> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  VSCRUB_CHECK(f != nullptr, "cannot open for write: " + tmp);
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  const bool closed = std::fclose(f) == 0;
  VSCRUB_CHECK(wrote && closed, "short write: " + tmp);
  VSCRUB_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot rename into place: " + path);
}

std::string encode_store_keys(const std::vector<VerdictKey>& keys) {
  std::string out;
  out.reserve(keys.size() * 34);
  for (const VerdictKey& key : keys) {
    if (!out.empty()) out.push_back(',');
    append_hex(&out, key.hi);
    out.push_back(':');
    append_hex(&out, key.lo);
  }
  return out;
}

std::vector<VerdictKey> decode_store_keys(const std::string& text) {
  std::vector<VerdictKey> keys;
  if (text.empty()) return keys;
  for (const std::string_view entry : split(text, ',')) {
    const std::vector<std::string_view> f = split(entry, ':');
    VSCRUB_CHECK(f.size() == 2, "store wire: key is not hi:lo");
    keys.push_back(VerdictKey{parse_hex(f[0]), parse_hex(f[1])});
  }
  return keys;
}

std::string encode_store_verdicts(
    const std::vector<std::optional<StoredVerdict>>& verdicts) {
  std::string out;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (!verdicts[i].has_value()) continue;
    if (!out.empty()) out.push_back(',');
    append_hex(&out, i);
    out.push_back(':');
    append_verdict_fields(&out, *verdicts[i]);
  }
  return out;
}

void decode_store_verdicts(const std::string& text, std::size_t key_count,
                           std::vector<std::optional<StoredVerdict>>* out) {
  out->assign(key_count, std::nullopt);
  if (text.empty()) return;
  for (const std::string_view entry : split(text, ',')) {
    const std::vector<std::string_view> f = split(entry, ':');
    VSCRUB_CHECK(f.size() == 4, "store wire: verdict is not index:fields");
    const u64 index = parse_hex(f[0]);
    VSCRUB_CHECK(index < key_count, "store wire: verdict index out of range");
    (*out)[index] = verdict_from_fields(f[1], f[2], f[3]);
  }
}

std::string encode_store_entries(
    const std::vector<std::pair<VerdictKey, StoredVerdict>>& entries) {
  std::string out;
  out.reserve(entries.size() * 44);
  for (const auto& [key, verdict] : entries) {
    if (!out.empty()) out.push_back(',');
    append_hex(&out, key.hi);
    out.push_back(':');
    append_hex(&out, key.lo);
    out.push_back(':');
    append_verdict_fields(&out, verdict);
  }
  return out;
}

std::vector<std::pair<VerdictKey, StoredVerdict>> decode_store_entries(
    const std::string& text) {
  std::vector<std::pair<VerdictKey, StoredVerdict>> entries;
  if (text.empty()) return entries;
  for (const std::string_view entry : split(text, ',')) {
    const std::vector<std::string_view> f = split(entry, ':');
    VSCRUB_CHECK(f.size() == 5, "store wire: entry is not hi:lo:fields");
    entries.emplace_back(VerdictKey{parse_hex(f[0]), parse_hex(f[1])},
                         verdict_from_fields(f[2], f[3], f[4]));
  }
  return entries;
}

JsonReport answer_store_lookup(VerdictStore& store, const FlatJson& params,
                               u64* out_keys, u64* out_hits) {
  const std::vector<VerdictKey> keys =
      decode_store_keys(params.get_string("keys"));
  std::vector<std::optional<StoredVerdict>> verdicts(keys.size());
  u64 found = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    verdicts[i] = store.find(keys[i]);
    if (verdicts[i].has_value()) ++found;
  }
  if (out_keys != nullptr) *out_keys = keys.size();
  if (out_hits != nullptr) *out_hits = found;
  return JsonReport("store_verdicts")
      .set_u64("hits", found)
      .set_string("verdicts", encode_store_verdicts(verdicts));
}

JsonReport answer_store_publish(VerdictStore& store, const FlatJson& params,
                                u64* out_entries) {
  const std::vector<std::pair<VerdictKey, StoredVerdict>> entries =
      decode_store_entries(params.get_string("entries"));
  for (const auto& [key, verdict] : entries) store.put(key, verdict);
  if (out_entries != nullptr) *out_entries = entries.size();
  return JsonReport("store_ack").set_u64("accepted", entries.size());
}

VsrpRemoteStore::VsrpRemoteStore(const std::string& socket_path,
                                 ReconnectPolicy reconnect)
    : session_(ServiceSession::connect_unix(socket_path, reconnect)) {}

void VsrpRemoteStore::lookup_batch(
    const std::vector<VerdictKey>& keys,
    std::vector<std::optional<StoredVerdict>>* out) {
  out->assign(keys.size(), std::nullopt);
  if (keys.empty()) return;
  lookups_.fetch_add(keys.size(), std::memory_order_relaxed);
  JsonReport req("store_lookup");
  req.set_string("keys", encode_store_keys(keys));
  try {
    const Frame reply = session_.call(FrameKind::kStoreLookup, req.to_json());
    if (reply.kind != FrameKind::kResult) return;  // typed server-side error
    const FlatJson body = FlatJson::parse(reply.payload);
    decode_store_verdicts(body.get_string("verdicts"), keys.size(), out);
    u64 found = 0;
    for (const auto& v : *out) found += v.has_value() ? 1u : 0u;
    hits_.fetch_add(found, std::memory_order_relaxed);
  } catch (const Error&) {
    // Degrade to all-miss: a dead coordinator costs reuse, not the campaign.
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    out->assign(keys.size(), std::nullopt);
  }
}

void VsrpRemoteStore::publish_batch(
    const std::vector<std::pair<VerdictKey, StoredVerdict>>& entries) {
  if (entries.empty()) return;
  JsonReport req("store_publish");
  req.set_string("entries", encode_store_entries(entries));
  try {
    const Frame reply = session_.call(FrameKind::kStorePublish, req.to_json());
    if (reply.kind == FrameKind::kResult) {
      publishes_.fetch_add(entries.size(), std::memory_order_relaxed);
    }
  } catch (const Error&) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace vscrub
