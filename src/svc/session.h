// Session-oriented VSRP1 client — the Workbench API v4 service surface.
//
// A ServiceSession owns one connection and a background reader thread that
// demultiplexes every inbound frame to the job it belongs to. submit()
// returns immediately with a JobHandle; any number of jobs ride one session
// concurrently, each with poll()/wait()/cancel() and an optional streaming
// event callback for its kAccepted/kProgress frames. The old blocking
// ServiceClient (svc/client.h) is a thin wrapper over this.
//
// Lifetimes: a JobHandle keeps the underlying session core (socket + reader)
// alive, so a handle may outlive the ServiceSession object that produced it
// and still wait() successfully. When the connection dies, every pending
// wait() throws a typed Error naming the reason.
//
// Threading: ServiceSession and JobHandle methods are safe to call from any
// thread EXCEPT inside an event callback — callbacks run on the session's
// reader thread, and blocking there (wait(), cancel(), ping()) would
// deadlock the demultiplexer. Callbacks should record and return.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "svc/protocol.h"

namespace vscrub {

/// Automatic reconnection for a session whose connection drops mid-life.
/// Jobs in flight at the drop are lost either way (request identity is
/// scoped to the server connection), but with a policy set the session
/// itself survives: the reader redials with capped exponential backoff and
/// later submits ride the new connection. The coordinator's worker links
/// run with this on, so a worker daemon restart costs one range
/// reassignment, not the whole fabric link.
struct ReconnectPolicy {
  u32 max_attempts = 0;       ///< 0 disables reconnection (a drop is final)
  u32 backoff_initial_ms = 50;
  u32 backoff_max_ms = 2000;  ///< exponential backoff is capped here
};

enum class SessionErrorCode : u8 {
  kConnectionLost,   ///< the connection died (no reconnect, or mid-redial)
  kReconnectFailed,  ///< every reconnect attempt was exhausted
};
const char* session_error_name(SessionErrorCode code);

/// The typed session failure: what() keeps the human-readable reason, code()
/// says whether this was a plain drop or an exhausted reconnect loop.
class SessionError : public Error {
 public:
  SessionError(SessionErrorCode code, const std::string& what)
      : Error(what), code_(code) {}
  SessionErrorCode code() const { return code_; }

 private:
  SessionErrorCode code_;
};

struct SessionCore;

/// One submitted request's lifecycle. Default-constructed handles are empty
/// (valid() == false); handles are cheap shared references, copyable.
class JobHandle {
 public:
  /// Receives the job's non-terminal frames (kAccepted, kProgress), in
  /// arrival order. Runs on the session reader thread (or inside wait() on
  /// the waiting thread for frames that arrived early) — do not block.
  using EventFn = std::function<void(const Frame&)>;

  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  /// The request id this job was submitted as (unique per session).
  u64 id() const;

  /// Non-blocking: true when wait() will return (or throw) without blocking
  /// — the terminal reply arrived or the connection died.
  bool poll() const;

  /// Blocks until the terminal reply (kResult / kError / kBusy). When
  /// `on_event` is given (and no callback was installed at submit), buffered
  /// and future non-terminal frames are delivered through it first. Throws
  /// Error if the connection dies before the terminal reply.
  Frame wait(const EventFn& on_event = {});

  /// wait() with a deadline; std::nullopt on timeout (the job stays live —
  /// poll() or wait() again later).
  std::optional<Frame> wait_for(std::chrono::milliseconds timeout,
                                const EventFn& on_event = {});

  /// Asks the server to cancel this job (a campaign stops at its next chunk
  /// boundary and delivers an interrupted result). Returns true when the
  /// server still knew the job. The terminal reply still arrives through
  /// wait(). Must not be called from an event callback.
  bool cancel();

 private:
  friend class ServiceSession;
  friend struct SessionCore;
  struct State;
  JobHandle(std::shared_ptr<SessionCore> core, std::shared_ptr<State> state)
      : core_(std::move(core)), state_(std::move(state)) {}

  std::shared_ptr<SessionCore> core_;
  std::shared_ptr<State> state_;
};

class ServiceSession {
 public:
  using EventFn = JobHandle::EventFn;

  /// Connects to a vscrubd Unix-domain socket. Throws Error on failure.
  /// `reconnect` (default: disabled) makes the session redial after a drop.
  static ServiceSession connect_unix(const std::string& socket_path,
                                     ReconnectPolicy reconnect = {});
  /// Connects to a vscrubd TCP loopback port. Throws Error on failure.
  static ServiceSession connect_tcp(u16 port, ReconnectPolicy reconnect = {});

  ServiceSession(ServiceSession&&) noexcept = default;
  ServiceSession& operator=(ServiceSession&&) noexcept = default;
  ServiceSession(const ServiceSession&) = delete;
  ServiceSession& operator=(const ServiceSession&) = delete;
  ~ServiceSession() = default;

  /// Sends one request frame and returns its handle without waiting.
  /// `on_event` (optional) streams the job's non-terminal frames from the
  /// reader thread as they arrive. Throws Error when the connection is gone.
  JobHandle submit(FrameKind kind, const std::string& payload,
                   EventFn on_event = {});

  /// submit + wait in one call; `on_event` is delivered through wait().
  Frame call(FrameKind kind, const std::string& payload,
             const EventFn& on_event = {});

  /// Liveness probe; returns the kResult pong frame.
  Frame ping() { return call(FrameKind::kPing, ""); }
  /// Server metrics snapshot (kResult, service_stats payload).
  Frame stats() { return call(FrameKind::kStats, ""); }
  /// Asks the server to cancel request `target_id`; true when the server
  /// still knew the request (queued or running).
  bool cancel_request(u64 target_id);

  /// False once the reader thread has observed the connection close.
  bool connected() const;
  /// Successful redials so far (0 without a ReconnectPolicy).
  u64 reconnects() const;

 private:
  explicit ServiceSession(std::shared_ptr<SessionCore> core)
      : core_(std::move(core)) {}

  std::shared_ptr<SessionCore> core_;
};

}  // namespace vscrub
