#include "seu/report.h"

#include <cstdio>
#include <sstream>

namespace vscrub {

std::string correlation_table_csv(const ConfigSpace& space,
                                  const CampaignResult& result) {
  std::ostringstream out;
  out << "column_kind,column,frame,offset,linear,persistent,"
         "first_error_cycle,error_output_mask\n";
  for (const auto& sb : result.sensitive_bits) {
    out << (sb.addr.frame.kind == ColumnKind::kClb ? "clb" : "bram") << ','
        << sb.addr.frame.col << ',' << sb.addr.frame.frame << ','
        << sb.addr.offset << ',' << space.linear_of(sb.addr) << ','
        << (sb.persistent ? 1 : 0) << ',' << sb.first_error_cycle << ",0x"
        << std::hex << sb.error_output_mask_lo << std::dec << '\n';
  }
  return out.str();
}

std::string campaign_summary(const CampaignResult& result) {
  std::ostringstream out;
  out << result.injections << " injections over a " << result.device_bits
      << "-bit device, " << result.failures << " design failures ("
      << result.sensitivity() * 100 << "% sensitivity, "
      << result.normalized_sensitivity() * 100 << "% normalized at "
      << result.utilization * 100 << "% utilization)";
  if (result.persistent > 0 || result.failures > 0) {
    out << "; persistence ratio " << result.persistence_ratio() * 100 << "%";
  }
  out << "; modeled testbed time " << result.modeled_hardware_time.sec()
      << " s, wall " << result.wall_seconds << " s.";
  return out.str();
}

void write_text_file(const std::string& text, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  VSCRUB_CHECK(f != nullptr, "cannot open " + path + " for writing");
  std::fputs(text.c_str(), f);
  std::fclose(f);
}

}  // namespace vscrub
