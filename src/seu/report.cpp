#include "seu/report.h"

#include <cstdio>
#include <sstream>

namespace vscrub {

std::string correlation_table_csv(const ConfigSpace& space,
                                  const CampaignResult& result) {
  std::ostringstream out;
  out << "column_kind,column,frame,offset,linear,persistent,"
         "first_error_cycle,error_output_mask\n";
  for (const auto& sb : result.sensitive_bits) {
    out << (sb.addr.frame.kind == ColumnKind::kClb ? "clb" : "bram") << ','
        << sb.addr.frame.col << ',' << sb.addr.frame.frame << ','
        << sb.addr.offset << ',' << space.linear_of(sb.addr) << ','
        << (sb.persistent ? 1 : 0) << ',' << sb.first_error_cycle << ",0x"
        << std::hex << sb.error_output_mask_lo << std::dec << '\n';
  }
  return out.str();
}

std::string campaign_summary(const CampaignResult& result) {
  std::ostringstream out;
  out << result.injections << " injections over a " << result.device_bits
      << "-bit device, " << result.failures << " design failures ("
      << result.sensitivity() * 100 << "% sensitivity, "
      << result.normalized_sensitivity() * 100 << "% normalized at "
      << result.utilization * 100 << "% utilization)";
  if (result.persistent > 0 || result.failures > 0) {
    out << "; persistence ratio " << result.persistence_ratio() * 100 << "%";
  }
  out << "; modeled testbed time " << result.modeled_hardware_time.sec()
      << " s, wall " << result.wall_seconds << " s.";
  return out.str();
}

void write_text_file(const std::string& text, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  VSCRUB_CHECK(f != nullptr, "cannot open " + path + " for writing");
  std::fputs(text.c_str(), f);
  std::fclose(f);
}

JsonReport campaign_report_json(const PlacedDesign& design,
                                const CampaignResult& result) {
  JsonReport report("campaign");
  report.set_string("design", design.netlist->name());
  report.set_string("device", design.space->geometry().name);
  report.set_u64("device_bits", result.device_bits);
  report.set_u64("injections", result.injections);
  report.set_u64("failures", result.failures);
  report.set_u64("persistent", result.persistent);
  report.set_u64("pruned", result.pruned);
  report.set_u64("resumed_injections", result.resumed_injections);
  report.set("sensitivity", result.sensitivity());
  report.set("normalized_sensitivity", result.normalized_sensitivity());
  report.set("persistence_ratio", result.persistence_ratio());
  report.set("utilization", result.utilization);
  report.set("modeled_hardware_s", result.modeled_hardware_time.sec());
  report.set("wall_seconds", result.wall_seconds);
  report.set_bool("interrupted", result.interrupted);
  report.set_bool("cache_enabled", result.cache_enabled);
  report.set_u64("cache_hits", result.cache_hits);
  report.set_u64("cache_misses", result.cache_misses);
  report.set_u64("cache_stores", result.cache_stores);
  report.set_u64("remote_hits", result.remote_hits);
  report.set_u64("remote_publishes", result.remote_publishes);
  report.set("cache_hit_rate",
             result.injections ? static_cast<double>(result.cache_hits) /
                                     static_cast<double>(result.injections)
                               : 0.0);
  report.set_u64("sensitive_bits", result.sensitive_bits.size());
  report.set_u64("sensitive_digest", result.sensitive_digest(design));
  return report;
}

JsonReport recampaign_report_json(const PlacedDesign& design,
                                  const RecampaignResult& rr) {
  JsonReport report = campaign_report_json(design, rr.result);
  report.set_string("kind", "recampaign");
  report.set_bool("had_prior", rr.had_prior);
  report.set_u64("frames_total", rr.frames_total);
  report.set_u64("frames_changed", rr.frames_changed);
  report.set_u64("prior_injections", rr.prior_injections);
  report.set("prior_wall_seconds", rr.prior_wall_seconds);
  report.set_u64("prior_sensitive_digest", rr.prior_sensitive_digest);
  report.set_u64("current_sensitive_digest", rr.current_sensitive_digest);
  report.set_bool("sensitive_match", rr.sensitive_match);
  report.set("cache_hit_rate", rr.hit_rate());
  report.set("speedup_vs_prior", rr.speedup_vs_prior());
  return report;
}

}  // namespace vscrub
