#include "seu/cache_key.h"

#include <algorithm>
#include <numeric>

#include "sim/fabric_sim.h"

namespace vscrub {
namespace {

constexpr u64 kFnvPrime = 0x100000001B3ULL;
constexpr u64 kBasis = 0xCBF29CE484222325ULL;
// Second, independent digest stream for the 128-bit key.
constexpr u64 kBasis2 = 0x84222325CBF29CE4ULL;

// Sentinels for bits with trivial influence. Distinct non-zero constants so
// the key still distinguishes the *reason* a bit is inert.
constexpr u64 kEdgeSentinel = 0x45444745ULL;  // device edge in a neighbour slot
constexpr u64 kBramSentinel = 0x4252414DULL;  // BRAM bits nothing is bound to
constexpr u64 kPadSentinel = 0x50414444ULL;   // frame padding slots

u64 fnv1a(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

u64 fnv1a(u64 h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Union-find whose roots are always the smallest tile index of their
/// component, so component identity is deterministic across runs.
class Dsu {
 public:
  explicit Dsu(u32 n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  u32 find(u32 x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(u32 a, u32 b) {
    const u32 ra = find(a), rb = find(b);
    if (ra == rb) return;
    if (ra < rb) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
  }

 private:
  std::vector<u32> parent_;
};

u64 influence_of(const CacheKeyPlan& plan, const ConfigSpace& space,
                 const BitAddress& addr) {
  if (plan.whole_design_influence) return plan.whole_design_hash;
  if (addr.frame.kind == ColumnKind::kBram) return kBramSentinel;
  const ConfigSpace::TileRef ref = space.tile_ref_of(addr);
  if (!ref.valid) return kPadSentinel;
  return plan.tile_influence[space.geometry().tile_index(ref.tile)];
}

VerdictKey derive_key(u64 mode, u64 arch, u64 stim, u64 frame_hash, u64 infl,
                      u64 linear) {
  VerdictKey key;
  u64 h = kBasis;
  h = fnv1a(h, mode);
  h = fnv1a(h, arch);
  h = fnv1a(h, stim);
  h = fnv1a(h, frame_hash);
  h = fnv1a(h, infl);
  h = fnv1a(h, linear);
  key.hi = h;
  u64 g = kBasis2;
  g = fnv1a(g, 0x5C5C5C5C5C5C5C5CULL);
  g = fnv1a(g, linear);
  g = fnv1a(g, infl);
  g = fnv1a(g, frame_hash);
  g = fnv1a(g, stim);
  g = fnv1a(g, arch);
  g = fnv1a(g, mode);
  key.lo = g;
  return key;
}

}  // namespace

std::vector<u64> hash_bitstream_frames(const Bitstream& bs) {
  std::vector<u64> hashes(bs.frame_count());
  for (u32 gf = 0; gf < bs.frame_count(); ++gf) {
    u64 h = kBasis;
    h = fnv1a(h, gf);
    for (const u64 word : bs.frame(gf).words()) h = fnv1a(h, word);
    hashes[gf] = h;
  }
  return hashes;
}

VerdictKey CacheKeyPlan::key_of(const ConfigSpace& space,
                                const BitAddress& addr, u64 linear) const {
  const u32 gf = space.global_frame_index(addr.frame);
  return derive_key(0, arch_fingerprint, stimulus_hash, frame_hashes[gf],
                    influence_of(*this, space, addr), linear);
}

VerdictKey CacheKeyPlan::fallback_key_of(const ConfigSpace& space,
                                         const BitAddress& addr,
                                         u64 linear) const {
  if (whole_design_influence) return key_of(space, addr, linear);
  const u32 gf = space.global_frame_index(addr.frame);
  return derive_key(1, arch_fingerprint, stimulus_hash, frame_hashes[gf],
                    whole_design_hash, linear);
}

CacheKeyPlan build_cache_key_plan(const PlacedDesign& design,
                                  const InjectionOptions& options) {
  const ConfigSpace& space = *design.space;
  const DeviceGeometry& geom = space.geometry();
  CacheKeyPlan plan;

  // Effective options: replicate the injector's no-dynamic warmup shrink so
  // the fingerprint covers the cycle counts that actually run.
  InjectionOptions eff = options;
  if (design.dynamic_lut_sites.empty()) {
    eff.warmup_cycles =
        std::min(eff.warmup_cycles, eff.warmup_cycles_no_dynamic);
  }

  u64 a = kBasis;
  a = fnv1a(a, std::string("vvs-key-v1"));
  a = fnv1a(a, geom.name);
  a = fnv1a(a, geom.rows);
  a = fnv1a(a, geom.cols);
  a = fnv1a(a, geom.bram_columns);
  a = fnv1a(a, geom.frame_pad_slots);
  a = fnv1a(a, eff.warmup_cycles);
  a = fnv1a(a, eff.observe_cycles);
  a = fnv1a(a, static_cast<u64>(eff.classify_persistence));
  a = fnv1a(a, eff.persistence_settle);
  a = fnv1a(a, eff.persistence_check);
  // prune_unobservable, gang_width/gang_isa/gang_plan, threads and chunking
  // are result-invariant (gang evaluation at any width, on any SIMD tier,
  // with or without the compiled eval plan, is bit-for-bit identical to the
  // scalar loop); clock_hz and timing only scale the modeled time, which is
  // recomputed from the live options rather than stored. None belong in the
  // key (same reasoning as the checkpoint fingerprint).
  plan.arch_fingerprint = a;

  // Stimulus hash: seed, input lane count (the stimulus stream is consumed
  // row-major, so every lane's sequence depends on the total width) and the
  // golden output trace itself. The trace pins the functional identity the
  // comparator judges against — two designs sharing a verdict must agree on
  // fault-free behaviour, not just on the bit's local neighbourhood.
  const std::size_t trace_len =
      static_cast<std::size_t>(eff.warmup_cycles) + eff.observe_cycles +
      (eff.classify_persistence
           ? static_cast<std::size_t>(eff.persistence_settle) +
                 eff.persistence_check
           : 0);
  const std::vector<OutputWord> golden =
      DesignHarness::reference_trace(*design.netlist, trace_len, eff.stim_seed);
  u64 sh = kBasis;
  sh = fnv1a(sh, eff.stim_seed);
  sh = fnv1a(sh, static_cast<u64>(design.netlist->num_inputs()));
  sh = fnv1a(sh, static_cast<u64>(golden.size()));
  for (const OutputWord& w : golden) {
    sh = fnv1a(sh, w.lo);
    sh = fnv1a(sh, w.hi);
  }
  plan.stimulus_hash = sh;

  plan.frame_hashes = hash_bitstream_frames(design.bitstream);

  // Whole-design hash: every frame plus the complete harness-visible
  // structure (attachment points, BRAM wiring, dynamic LUT sites). Fallback
  // keys rest on this, so it must pin everything that can reach the fabric.
  u64 wd = kBasis;
  for (const u64 h : plan.frame_hashes) wd = fnv1a(wd, h);
  u64 attach = kBasis;
  const auto fold_point = [&attach](u64 tag, u64 index, TileCoord t,
                                    u64 payload) {
    attach = fnv1a(attach, tag);
    attach = fnv1a(attach, index);
    attach = fnv1a(attach, (static_cast<u64>(t.row) << 16) | t.col);
    attach = fnv1a(attach, payload);
  };
  for (std::size_t i = 0; i < design.input_drives.size(); ++i) {
    fold_point(1, i, design.input_drives[i].tile,
               design.input_drives[i].out_index);
  }
  for (std::size_t i = 0; i < design.output_taps.size(); ++i) {
    fold_point(2, i, design.output_taps[i].tile, design.output_taps[i].pin);
  }
  for (std::size_t i = 0; i < design.external_consts.size(); ++i) {
    const auto& ec = design.external_consts[i];
    fold_point(3, i, ec.drive.tile,
               (static_cast<u64>(ec.drive.out_index) << 1) |
                   static_cast<u64>(ec.value ? 1 : 0));
  }
  for (std::size_t i = 0; i < design.brams.size(); ++i) {
    const auto& b = design.brams[i];
    attach = fnv1a(fnv1a(attach, 4), i);
    attach = fnv1a(fnv1a(attach, b.bram_col), b.block);
    for (std::size_t p = 0; p < b.input_taps.size(); ++p) {
      fold_point(5, p, b.input_taps[p].tile, b.input_taps[p].pin);
    }
    for (const u8 v : b.input_tap_valid) attach = fnv1a(attach, v);
    for (const u8 v : b.const_pin_values) attach = fnv1a(attach, v);
    for (std::size_t l = 0; l < b.dout_drives.size(); ++l) {
      fold_point(6, l, b.dout_drives[l].tile, b.dout_drives[l].out_index);
    }
    for (const u8 v : b.dout_drive_valid) attach = fnv1a(attach, v);
  }
  for (std::size_t i = 0; i < design.dynamic_lut_sites.size(); ++i) {
    fold_point(7, i, design.dynamic_lut_sites[i].tile,
               design.dynamic_lut_sites[i].lut);
  }
  wd = fnv1a(wd, attach);
  plan.whole_design_hash = wd;

  // Golden-run probe: configure a fabric and replay the whole trace once.
  // This decodes tile activity for the closure construction below, and it
  // answers one load-bearing question — does the *baseline* design ever trip
  // the fabric's oscillation handling? Oscillation-truncated values depend
  // on a global event budget, not just on a bit's closure.
  FabricSim sim(design.space);
  DesignHarness probe(design, sim, eff.stim_seed);
  probe.configure();
  for (std::size_t t = 0; t < trace_len; ++t) probe.step();

  // BRAM bindings relay values across the device through the harness,
  // dynamic LUT state gives frame writes read-modify-write side effects, and
  // a golden run that trips oscillation handling makes every evaluation
  // budget-dependent — each breaks the locality argument the influence
  // closure rests on. Key every bit against the whole image instead
  // (conservative, still a 100% warm hit on an unchanged design).
  plan.whole_design_influence = sim.oscillating() || !design.brams.empty() ||
                                !design.dynamic_lut_sites.empty();
  if (plan.whole_design_influence) return plan;

  // Per-tile hash: the tile's configuration content (all 48 frames' 16-bit
  // row windows) plus its harness attachments. Attachment identity includes
  // the list index: input lane i carries stimulus stream i, output tap i
  // owns error-mask bit i, so position matters as much as placement.
  const u32 tiles = geom.tile_count();
  std::vector<u64> tile_hash(tiles, kBasis);
  for (u16 col = 0; col < geom.cols; ++col) {
    for (u16 f = 0; f < kFramesPerClbColumn; ++f) {
      const BitVector& frame =
          design.bitstream.frame(FrameAddress{ColumnKind::kClb, col, f});
      for (u16 row = 0; row < geom.rows; ++row) {
        u64& h = tile_hash[geom.tile_index({row, col})];
        h = fnv1a(h, frame.word_at(static_cast<std::size_t>(row) *
                                       kBitsPerTilePerFrame,
                                   kBitsPerTilePerFrame));
      }
    }
  }
  std::vector<u8> attached(tiles, 0);
  const auto fold_attach = [&](TileCoord t, u64 tag, u64 index, u64 payload) {
    u64& h = tile_hash[geom.tile_index(t)];
    h = fnv1a(fnv1a(fnv1a(h, tag), index), payload);
    attached[geom.tile_index(t)] = 1;
  };
  for (std::size_t i = 0; i < design.input_drives.size(); ++i) {
    fold_attach(design.input_drives[i].tile, 1, i,
                design.input_drives[i].out_index);
  }
  for (std::size_t i = 0; i < design.output_taps.size(); ++i) {
    fold_attach(design.output_taps[i].tile, 2, i, design.output_taps[i].pin);
  }
  for (std::size_t i = 0; i < design.external_consts.size(); ++i) {
    const auto& ec = design.external_consts[i];
    fold_attach(ec.drive.tile, 3, i,
                (static_cast<u64>(ec.drive.out_index) << 1) |
                    static_cast<u64>(ec.value ? 1 : 0));
  }

  // Tile activity from the configured probe fabric (the decode oracle), with
  // attachment tiles forced active: an inactive tile with a harness drive
  // still emits overridden values, so propagation does not die there.
  std::vector<u8> active(tiles, 0);
  for (u16 r = 0; r < geom.rows; ++r) {
    for (u16 c = 0; c < geom.cols; ++c) {
      const u32 idx = geom.tile_index({r, c});
      active[idx] =
          static_cast<u8>(sim.tile_active({r, c}) || attached[idx] != 0);
    }
  }
  Dsu dsu(tiles);
  for (u16 r = 0; r < geom.rows; ++r) {
    for (u16 c = 0; c < geom.cols; ++c) {
      const u32 idx = geom.tile_index({r, c});
      if (!active[idx]) continue;
      if (r + 1 < geom.rows &&
          active[geom.tile_index({static_cast<u16>(r + 1), c})]) {
        dsu.unite(idx, geom.tile_index({static_cast<u16>(r + 1), c}));
      }
      if (c + 1 < geom.cols &&
          active[geom.tile_index({r, static_cast<u16>(c + 1)})]) {
        dsu.unite(idx, geom.tile_index({r, static_cast<u16>(c + 1)}));
      }
    }
  }
  std::vector<u64> comp_hash(tiles, kBasis);
  for (u32 t = 0; t < tiles; ++t) {
    if (!active[t]) continue;
    u64& h = comp_hash[dsu.find(t)];
    h = fnv1a(fnv1a(h, t), tile_hash[t]);
  }

  // Influence of a flip in tile T: T's own config + the configs of its
  // 4-neighbourhood (first hop of any new wire value) + the full component
  // hashes of every active component touching that neighbourhood (the logic
  // the fault can ripple through, and everything feeding it back).
  plan.tile_influence.assign(tiles, 0);
  for (u16 r = 0; r < geom.rows; ++r) {
    for (u16 c = 0; c < geom.cols; ++c) {
      const u32 idx = geom.tile_index({r, c});
      u64 h = kBasis;
      h = fnv1a(h, tile_hash[idx]);
      u32 members[5];
      std::size_t nmembers = 0;
      members[nmembers++] = idx;
      const auto fold_neighbour = [&](int nr, int nc) {
        if (nr < 0 || nc < 0 || nr >= geom.rows || nc >= geom.cols) {
          h = fnv1a(h, kEdgeSentinel);
          return;
        }
        const u32 n = geom.tile_index(
            {static_cast<u16>(nr), static_cast<u16>(nc)});
        h = fnv1a(h, tile_hash[n]);
        members[nmembers++] = n;
      };
      fold_neighbour(r - 1, c);
      fold_neighbour(r + 1, c);
      fold_neighbour(r, c - 1);
      fold_neighbour(r, c + 1);
      u64 roots[5];
      std::size_t nroots = 0;
      for (std::size_t i = 0; i < nmembers; ++i) {
        if (active[members[i]]) roots[nroots++] = dsu.find(members[i]);
      }
      // Sorted-deduped fold, insertion sort over <= 5 roots (std::sort's
      // introsort trips GCC's array-bounds analysis on the tiny buffer).
      for (std::size_t i = 1; i < nroots; ++i) {
        const u64 v = roots[i];
        std::size_t j = i;
        for (; j > 0 && roots[j - 1] > v; --j) roots[j] = roots[j - 1];
        roots[j] = v;
      }
      for (std::size_t i = 0; i < nroots; ++i) {
        if (i > 0 && roots[i] == roots[i - 1]) continue;
        h = fnv1a(h, comp_hash[roots[i]]);
      }
      plan.tile_influence[idx] = h;
    }
  }
  return plan;
}

}  // namespace vscrub
