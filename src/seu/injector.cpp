#include "seu/injector.h"

#include <algorithm>
#include <chrono>

#include "sim/gang_sim.h"

namespace vscrub {

namespace {
class PhaseTimer {
 public:
  explicit PhaseTimer(double& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    sink_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_)
                 .count();
  }

 private:
  double& sink_;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

SeuInjector::SeuInjector(const PlacedDesign& design,
                         const InjectionOptions& options)
    : design_(&design),
      options_(options),
      sim_(design.space),
      harness_(design, sim_, options.stim_seed) {
  // Fail fast on unsupported gang options: a campaign should reject a bad
  // width/ISA at submission, not after hours of scalar injections when the
  // first gang batch finally dispatches. Width 0/1 means "gang off" and
  // needs no validation.
  if (options_.gang_width >= 2) validate_gang_width(options_.gang_width);
  const SimdIsa requested_isa = parse_simd_isa(options_.gang_isa);
  if (requested_isa != SimdIsa::kAuto) (void)resolve_simd_isa(requested_isa);
  if (design.dynamic_lut_sites.empty()) {
    options_.warmup_cycles =
        std::min(options_.warmup_cycles, options_.warmup_cycles_no_dynamic);
  }
  const std::size_t trace_len =
      options_.warmup_cycles + options_.observe_cycles +
      (options_.classify_persistence
           ? options_.persistence_settle + options_.persistence_check
           : 0);
  golden_ = DesignHarness::reference_trace(*design_->netlist, trace_len,
                                           options_.stim_seed);
  harness_.configure();
  snapshot_observability();
  // The configuration just written is the dirty-tracking baseline every
  // incremental repair restores to, and the post-restart FF state is the
  // hermetic-reset baseline every injection rolls back to.
  sim_.clear_dirty_frames();
  ff_baseline_ = sim_.ff_state_snapshot();
}

SeuInjector::~SeuInjector() = default;

bool SeuInjector::gang_capable() const {
  return options_.gang_width >= 2 && design_->brams.empty() &&
         design_->dynamic_lut_sites.empty();
}

bool SeuInjector::gang_eligible(const BitAddress& addr) const {
  if (addr.frame.kind != ColumnKind::kClb) return false;
  // Pruned bits stay scalar: inject() short-circuits them (no clocked run at
  // all), which is faster than any gang lane and keeps the pruned counter
  // meaningful.
  if (options_.prune_unobservable && !bit_observable(addr)) return false;
  return true;
}

std::vector<InjectionResult> SeuInjector::run_gang(
    const std::vector<BitAddress>& addrs) {
  std::vector<InjectionResult> out;
  out.reserve(addrs.size());
  if (!gang_capable()) {
    for (const BitAddress& addr : addrs) out.push_back(inject(addr));
    return out;
  }
  if (!gang_) {
    gang_ = std::make_unique<GangSim>(*design_,
                                      GangOptions{}
                                          .with_width(options_.gang_width)
                                          .with_isa(parse_simd_isa(options_.gang_isa))
                                          .with_plan(options_.gang_plan));
  }

  GangSim::RunParams params;
  params.warmup_cycles = options_.warmup_cycles;
  params.observe_cycles = options_.observe_cycles;
  params.classify_persistence = options_.classify_persistence;
  params.persistence_settle = options_.persistence_settle;
  params.persistence_check = options_.persistence_check;
  params.stim_seed = options_.stim_seed;
  params.golden = &golden_;

  const std::size_t lanes_per_run =
      static_cast<std::size_t>(gang_->max_variants());
  std::vector<GangSim::LaneResult> lanes(lanes_per_run);
  const SimTime per_bit = modeled_iteration_time();

  for (std::size_t base = 0; base < addrs.size(); base += lanes_per_run) {
    const std::size_t n = std::min(lanes_per_run, addrs.size() - base);
    GangSim::RunStats stats;
    {
      PhaseTimer timer(phases_.run_s);
      PhaseTimer gang_timer(phases_.gang_s);
      gang_->run(addrs.data() + base, n, params, lanes.data(), &stats);
    }
    ++phases_.gang_runs;
    phases_.gang_lanes += n;
    if (stats.early_exit) ++phases_.gang_early_exits;
    for (std::size_t i = 0; i < n; ++i) {
      if (lanes[i].fallback) {
        ++phases_.gang_fallbacks;
        out.push_back(inject(addrs[base + i]));
        continue;
      }
      InjectionResult r;
      r.addr = addrs[base + i];
      r.output_error = lanes[i].output_error;
      r.persistent = lanes[i].persistent;
      r.first_error_cycle = lanes[i].first_error_cycle;
      r.error_output_mask_lo = lanes[i].error_output_mask_lo;
      // Modeled hardware time is per-bit: the real testbed runs the loop
      // serially no matter how the host simulates it.
      r.modeled_time = per_bit;
      out.push_back(r);
    }
  }
  return out;
}

void SeuInjector::snapshot_observability() {
  // A flip confined to tile T can only change T's own outputs and the wires
  // T drives. An *inactive* tile (omux all zero, no routed pins, no live
  // LUTs/FFs, no overrides) consumes nothing and forwards nothing, so a
  // corrupted T whose whole neighbourhood is inactive has no path to any
  // tap: its new wire values die at the first hop and nobody reads its
  // outputs. Hence: observable(T) = active(T) or any 4-neighbour active,
  // seeded with every harness attachment point so a constant-feeding tile
  // that happens to decode inactive is never pruned.
  const DeviceGeometry& geom = sim_.geometry();
  observable_.assign(geom.tile_count(), 0);
  for (u16 r = 0; r < geom.rows; ++r) {
    for (u16 c = 0; c < geom.cols; ++c) {
      bool obs = sim_.tile_active({r, c});
      if (!obs && r > 0) obs = sim_.tile_active({static_cast<u16>(r - 1), c});
      if (!obs && r + 1 < geom.rows)
        obs = sim_.tile_active({static_cast<u16>(r + 1), c});
      if (!obs && c > 0) obs = sim_.tile_active({r, static_cast<u16>(c - 1)});
      if (!obs && c + 1 < geom.cols)
        obs = sim_.tile_active({r, static_cast<u16>(c + 1)});
      if (obs) observable_[geom.tile_index({r, c})] = 1;
    }
  }
  auto seed = [&](TileCoord t) { observable_[geom.tile_index(t)] = 1; };
  for (const DrivePoint& d : design_->input_drives) seed(d.tile);
  for (const TapPoint& t : design_->output_taps) seed(t.tile);
  for (const auto& ec : design_->external_consts) seed(ec.drive.tile);
  for (const auto& b : design_->brams) {
    for (std::size_t p = 0; p < b.input_taps.size(); ++p) {
      if (p < b.input_tap_valid.size() && b.input_tap_valid[p]) {
        seed(b.input_taps[p].tile);
      }
    }
    for (std::size_t l = 0; l < b.dout_drives.size(); ++l) {
      if (l < b.dout_drive_valid.size() && b.dout_drive_valid[l]) {
        seed(b.dout_drives[l].tile);
      }
    }
  }
  // BRAM content/config bits matter only when the design binds a block.
  bram_observable_ = !design_->brams.empty();
}

bool SeuInjector::bit_observable(const BitAddress& addr) const {
  if (addr.frame.kind == ColumnKind::kBram) return bram_observable_;
  // Writing any frame that covers live SRL16/RAM16 cells clobbers their
  // shifting contents with stale baseline values (the §IV-A read-modify-
  // write hazard) — an effect of the *write*, not the flipped bit, and one
  // the full loop faithfully reproduces. Never prune those injections.
  if (frame_is_dynamic_masked(addr.frame)) return true;
  const ConfigSpace::TileRef ref = sim_.space().tile_ref_of(addr);
  if (!ref.valid) return false;  // padding slot: no hardware behind it
  return observable_[sim_.geometry().tile_index(ref.tile)] != 0;
}

SimTime modeled_injection_iteration_time(const PlacedDesign& design,
                                         const InjectionOptions& options) {
  const SelectMapPort port(design.space.get(), options.timing);
  // Corrupt-frame write + observation window + repair write + reset pulse.
  BitAddress any;
  any.frame = FrameAddress{ColumnKind::kClb, 0, 0};
  const SimTime frame_op = port.frame_cost(any.frame);
  const SimTime observe = SimTime::seconds(
      static_cast<double>(options.observe_cycles) / options.clock_hz);
  return frame_op + observe + frame_op + SimTime::microseconds(8);
}

SimTime SeuInjector::modeled_iteration_time() const {
  return modeled_injection_iteration_time(*design_, options_);
}

bool SeuInjector::frame_is_dynamic_masked(const FrameAddress& fa) const {
  if (fa.kind != ColumnKind::kClb) return false;
  for (const LutSiteRef& site : design_->dynamic_lut_sites) {
    if (site.tile.col == fa.col &&
        ConfigSpace::frame_holds_slice_lut_bits(fa.frame,
                                                site.lut / kLutsPerSlice)) {
      return true;
    }
  }
  return false;
}

void SeuInjector::scrub_restore(const BitAddress& addr) {
  // Incremental repair: FabricSim records every frame whose readback may
  // have diverged since the last repair (partial-reconfiguration writes,
  // runtime SRL16/RAM16 shifts, BRAM port writes), so only that set — not a
  // whole-column sweep — needs restoring from the golden image. A frame not
  // in the set provably still reads back its baseline content. The dirty
  // set naturally covers collateral corruption beyond the flipped bit's own
  // frame — e.g. a LutMode flip turns a LUT into a shift register, whose
  // contents (16 truth bits in other frames) shift away while the clock
  // runs, marking those frames as they go.
  //
  // Frames covering the design's *legitimate* dynamic LUT state get the
  // paper's §IV read-modify-write treatment: the golden frame is written
  // with the dynamic sites' bits taken from the live readback, so repairing
  // the static bits does not clobber shifting SRL contents. (A flip
  // injected *into* a dynamic bit is deliberately left in place — it is a
  // data upset that the design flushes naturally, not configuration
  // damage.)
  const u32 injected_gf = sim_.space().global_frame_index(addr.frame);
  // Copy: the write_frame calls below re-mark the frames they touch.
  const std::vector<u32> dirty = sim_.dirty_frames();
  residual_frames_.clear();
  for (const u32 gf : dirty) {
    const FrameAddress fa = sim_.space().frame_of_global(gf);
    if (fa.kind == ColumnKind::kBram) {
      // Runtime writes through the design's own BRAM ports are live data,
      // not corruption — restore only the frame the injection hit.
      if (gf == injected_gf) {
        sim_.write_frame(fa, design_->bitstream.frame(fa));
      } else {
        residual_frames_.push_back(gf);
      }
      continue;
    }
    const BitVector live = sim_.read_frame(fa);
    BitVector golden = design_->bitstream.frame(fa);
    if (frame_is_dynamic_masked(fa)) {
      residual_frames_.push_back(gf);
      for (const LutSiteRef& site : design_->dynamic_lut_sites) {
        if (site.tile.col != fa.col ||
            !ConfigSpace::frame_holds_slice_lut_bits(
                fa.frame, site.lut / kLutsPerSlice)) {
          continue;
        }
        const u32 offset =
            static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
            static_cast<u32>(site.lut % kLutsPerSlice);
        golden.set(offset, live.get(offset));
      }
    }
    if (!(live == golden)) sim_.write_frame(fa, golden);
  }
  // Everything now matches the baseline again except the deliberately-kept
  // frames recorded in residual_frames_, which hermetic_reset() reloads
  // before the next injection starts.
  sim_.clear_dirty_frames();
}

void SeuInjector::hermetic_reset() {
  // Every injection must be a pure function of its bit: any state a run can
  // leave behind — live SRL/RAM16 contents and BRAM data kept by the repair
  // (plus anything the persistence window shifted or wrote afterwards), and
  // FF values in sites only a corrupted decode ever clocked (reset() skips
  // unused FFs by design) — is rolled back to the post-configure baseline.
  std::vector<u32> stale = std::move(residual_frames_);
  residual_frames_.clear();
  const std::vector<u32>& dirty = sim_.dirty_frames();
  stale.insert(stale.end(), dirty.begin(), dirty.end());
  for (const u32 gf : stale) {
    const FrameAddress fa = sim_.space().frame_of_global(gf);
    sim_.write_frame(fa, design_->bitstream.frame(fa));
  }
  sim_.clear_dirty_frames();
  // Drop the input-drive overrides left by the last stepped cycle. Without
  // this the next injection's corrupt-time settle starts from the previous
  // run's final drive/comb fixpoint instead of the post-configure baseline —
  // and for flips that create feedback paths (multiple fixpoints) the verdict
  // depends on that starting state, breaking purity. restart() re-applies the
  // external constants, exactly as the constructor-time baseline had them.
  sim_.clear_drives();
  sim_.restore_ff_state(ff_baseline_);
  harness_.restart();
}

InjectionResult SeuInjector::inject(const BitAddress& addr) {
  InjectionResult result;
  result.addr = addr;

  // Observability pruning: when the flipped bit provably cannot reach a tap,
  // the clocked run is a foregone conclusion — no output error, no
  // persistence, and (since no clock edge occurs) no design state to reset.
  // The corrupt/repair round trip is still performed so the configuration
  // memory sees exactly the traffic the full loop would generate. Modeled
  // hardware time is unchanged: the real testbed cannot prune.
  const bool pruned =
      options_.prune_unobservable && !bit_observable(addr);

  // 1. Corrupt the bit: partial reconfiguration with the *original* frame
  //    image XOR the target bit (the simulator holds the original bitstream
  //    on the host, §III-A).
  {
    PhaseTimer timer(phases_.corrupt_s);
    BitVector img = design_->bitstream.frame(addr.frame);
    img.flip(addr.offset);
    sim_.write_frame(addr.frame, img);
  }

  // 2. Run with the clock going; the X0-style comparator checks outputs
  //    against the golden design every cycle.
  const u32 compare_from = options_.warmup_cycles;
  const u32 run_until = options_.warmup_cycles + options_.observe_cycles;
  if (!pruned) {
    PhaseTimer timer(phases_.run_s);
    for (u32 t = 0; t < run_until; ++t) {
      harness_.step();
      if (t < compare_from) continue;
      const OutputWord& got = harness_.last_outputs();
      const OutputWord& want = golden_[t];
      if (!(got == want)) {
        result.output_error = true;
        result.first_error_cycle = t;
        result.error_output_mask_lo = got.lo ^ want.lo;
        break;
      }
    }
  }

  // 3. Repair via scrubbing: restore the corrupted frames from the golden
  //    image (the flipped bit plus any collateral configuration damage).
  {
    PhaseTimer timer(phases_.repair_s);
    scrub_restore(addr);
  }

  // 4. Persistence classification: with the configuration repaired but the
  //    design NOT reset, does the error disappear (non-persistent) or does
  //    corrupted state keep the output diverged (persistent)?
  if (options_.classify_persistence && result.output_error) {
    PhaseTimer timer(phases_.persist_s);
    // Advance (unchecked) to the end of the observation window so the golden
    // trace stays cycle-aligned, then settle and check.
    while (harness_.cycle() < run_until) harness_.step();
    const u64 settle_until = run_until + options_.persistence_settle;
    while (harness_.cycle() < settle_until) harness_.step();
    const u64 check_until = settle_until + options_.persistence_check;
    while (harness_.cycle() < check_until) {
      harness_.step();
      if (!(harness_.last_outputs() == golden_[harness_.cycle() - 1])) {
        result.persistent = true;
        break;
      }
    }
  }

  // Sticky oscillation flag (cleared by the reset below): did this
  // injection ever drive the fabric through its oscillation handling?
  result.fabric_oscillated = sim_.oscillating();

  // 5. Reset for the next iteration — hermetically, so every injection is a
  //    pure function of its bit (the campaign scheduler depends on this: it
  //    hands bits to workers in a nondeterministic order). A pruned
  //    injection never clocked or re-decoded anything the repair didn't
  //    undo, so the design is still sitting in its baseline state — unless
  //    the corrupt-time decode tripped the (sticky) oscillation flag, which
  //    only a reset clears; reset then, or it would taint every later
  //    injection's fabric_oscillated.
  if (!pruned) {
    hermetic_reset();
  } else {
    ++phases_.pruned;
    if (result.fabric_oscillated) hermetic_reset();
  }

  result.modeled_time = modeled_iteration_time();
  return result;
}

}  // namespace vscrub
