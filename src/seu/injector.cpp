#include "seu/injector.h"

#include <algorithm>

namespace vscrub {

SeuInjector::SeuInjector(const PlacedDesign& design,
                         const InjectionOptions& options)
    : design_(&design),
      options_(options),
      sim_(design.space),
      harness_(design, sim_, options.stim_seed) {
  if (design.dynamic_lut_sites.empty()) {
    options_.warmup_cycles =
        std::min(options_.warmup_cycles, options_.warmup_cycles_no_dynamic);
  }
  const std::size_t trace_len =
      options_.warmup_cycles + options_.observe_cycles +
      (options_.classify_persistence
           ? options_.persistence_settle + options_.persistence_check
           : 0);
  golden_ = DesignHarness::reference_trace(*design_->netlist, trace_len,
                                           options_.stim_seed);
  harness_.configure();
}

SimTime SeuInjector::modeled_iteration_time() const {
  const SelectMapPort port(design_->space.get(), options_.timing);
  // Corrupt-frame write + observation window + repair write + reset pulse.
  BitAddress any;
  any.frame = FrameAddress{ColumnKind::kClb, 0, 0};
  const SimTime frame_op = port.frame_cost(any.frame);
  const SimTime observe = SimTime::seconds(
      static_cast<double>(options_.observe_cycles) / options_.clock_hz);
  return frame_op + observe + frame_op + SimTime::microseconds(8);
}

bool SeuInjector::frame_is_dynamic_masked(const FrameAddress& fa) const {
  if (fa.kind != ColumnKind::kClb) return false;
  for (const LutSiteRef& site : design_->dynamic_lut_sites) {
    if (site.tile.col == fa.col &&
        ConfigSpace::frame_holds_slice_lut_bits(fa.frame,
                                                site.lut / kLutsPerSlice)) {
      return true;
    }
  }
  return false;
}

void SeuInjector::scrub_restore(const BitAddress& addr) {
  // What the host-side simulator does after an injection: restore every
  // corrupted frame from the golden image. A single flipped bit can leave
  // collateral corruption beyond its own frame — e.g. a LutMode flip turns
  // a LUT into a shift register, whose contents (16 truth bits in other
  // frames) shift away while the clock runs. Only the affected column can
  // be touched, so we sweep its frames.
  //
  // Frames covering the design's *legitimate* dynamic LUT state get the
  // paper's §IV read-modify-write treatment: the golden frame is written
  // with the dynamic sites' bits taken from the live readback, so repairing
  // the static bits does not clobber shifting SRL contents. (A flip
  // injected *into* a dynamic bit is deliberately left in place — it is a
  // data upset that the design flushes naturally, not configuration
  // damage.)
  if (addr.frame.kind == ColumnKind::kBram) {
    sim_.write_frame(addr.frame, design_->bitstream.frame(addr.frame));
    return;
  }
  for (u16 f = 0; f < kFramesPerClbColumn; ++f) {
    const FrameAddress fa{ColumnKind::kClb, addr.frame.col, f};
    const BitVector live = sim_.read_frame(fa);
    BitVector golden = design_->bitstream.frame(fa);
    if (frame_is_dynamic_masked(fa)) {
      for (const LutSiteRef& site : design_->dynamic_lut_sites) {
        if (site.tile.col != fa.col ||
            !ConfigSpace::frame_holds_slice_lut_bits(
                fa.frame, site.lut / kLutsPerSlice)) {
          continue;
        }
        const u32 offset =
            static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
            static_cast<u32>(site.lut % kLutsPerSlice);
        golden.set(offset, live.get(offset));
      }
    }
    if (!(live == golden)) sim_.write_frame(fa, golden);
  }
}

InjectionResult SeuInjector::inject(const BitAddress& addr) {
  InjectionResult result;
  result.addr = addr;

  // 1. Corrupt the bit: partial reconfiguration with the *original* frame
  //    image XOR the target bit (the simulator holds the original bitstream
  //    on the host, §III-A).
  {
    BitVector img = design_->bitstream.frame(addr.frame);
    img.flip(addr.offset);
    sim_.write_frame(addr.frame, img);
  }

  // 2. Run with the clock going; the X0-style comparator checks outputs
  //    against the golden design every cycle.
  const u32 compare_from = options_.warmup_cycles;
  const u32 run_until = options_.warmup_cycles + options_.observe_cycles;
  for (u32 t = 0; t < run_until; ++t) {
    harness_.step();
    if (t < compare_from) continue;
    const OutputWord& got = harness_.last_outputs();
    const OutputWord& want = golden_[t];
    if (!(got == want)) {
      result.output_error = true;
      result.first_error_cycle = t;
      result.error_output_mask_lo = got.lo ^ want.lo;
      break;
    }
  }

  // 3. Repair via scrubbing: restore all corrupted frames from the golden
  //    image (the flipped bit plus any collateral configuration damage).
  scrub_restore(addr);

  // 4. Persistence classification: with the configuration repaired but the
  //    design NOT reset, does the error disappear (non-persistent) or does
  //    corrupted state keep the output diverged (persistent)?
  if (options_.classify_persistence && result.output_error) {
    // Advance (unchecked) to the end of the observation window so the golden
    // trace stays cycle-aligned, then settle and check.
    while (harness_.cycle() < run_until) harness_.step();
    const u64 settle_until = run_until + options_.persistence_settle;
    while (harness_.cycle() < settle_until) harness_.step();
    const u64 check_until = settle_until + options_.persistence_check;
    while (harness_.cycle() < check_until) {
      harness_.step();
      if (!(harness_.last_outputs() == golden_[harness_.cycle() - 1])) {
        result.persistent = true;
        break;
      }
    }
  }

  // 5. Reset the designs for the next iteration.
  harness_.restart();

  result.modeled_time = modeled_iteration_time();
  return result;
}

}  // namespace vscrub
