// Campaign checkpoint/resume: periodic serialization of the chunk scheduler's
// progress (done bitmap + partial aggregates) as a CRC-protected "VSCK3"
// record, so a multi-hour exhaustive campaign killed mid-run restarts from
// its last checkpoint instead of from bit zero. The fingerprint binds a
// checkpoint to the exact (device, design, options, chunking) it was taken
// under — any mismatch and the campaign silently starts fresh.
#pragma once

#include <string>
#include <vector>

#include "seu/campaign.h"

namespace vscrub {

struct CampaignCheckpoint {
  u64 fingerprint = 0;
  u64 total_injections = 0;  ///< size of the bit universe
  u64 chunk_size = 0;        ///< resolved chunk size the bitmap is indexed by
  std::vector<u8> done;      ///< chunk done bitmap, bit c = chunk c finished

  // Aggregates over the done chunks only.
  u64 injections = 0;
  u64 failures = 0;
  u64 persistent = 0;
  u64 pruned = 0;
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  i64 modeled_ps = 0;
  InjectionPhases phases;
  std::vector<CampaignResult::SensitiveBit> sensitive_bits;
  std::vector<std::pair<u8, u64>> failures_by_field;

  bool chunk_done(u64 c) const {
    return (done[c >> 3] >> (c & 7)) & 1;
  }
  void set_chunk_done(u64 c) {
    done[c >> 3] = static_cast<u8>(done[c >> 3] | (1u << (c & 7)));
  }
};

/// Identity of a campaign for checkpoint-compatibility purposes: device
/// geometry, design, bit universe, resolved chunking, and every option that
/// changes per-injection outcomes or accounting.
u64 campaign_fingerprint(const PlacedDesign& design,
                         const CampaignOptions& options, u64 total_injections,
                         u64 chunk_size);

/// Writes the checkpoint atomically (tmp + rename).
void save_campaign_checkpoint(const std::string& path,
                              const CampaignCheckpoint& ck);

/// Loads a checkpoint; returns false when the file is missing or carries a
/// different magic. Throws on a corrupted (CRC-failing) record.
bool load_campaign_checkpoint(const std::string& path, CampaignCheckpoint* ck);

}  // namespace vscrub
