// Content-addressed keying for the verdict store: what, exactly, does one
// injection verdict depend on?
//
// The verdict of flipping bit b in tile T is a pure function of
//   (1) the architecture and the verdict-affecting injection options
//       (effective warmup, observation window, persistence window) — the
//       arch fingerprint;
//   (2) the stimulus: seed, input width and the golden output trace the
//       comparator checks against — the stimulus hash;
//   (3) the content of b's own frame — the frame hash;
//   (4) the configuration of the logic the flip can propagate through — the
//       influence hash. A flip confined to T reaches at most T's own outputs
//       and the wires T drives, so it can only propagate through T, T's
//       4-neighbours, and the connected components of *active* tiles
//       (harness attachment points counted as active) touching that
//       neighbourhood: inactive tiles forward nothing, so new wire values
//       die at the first inactive hop. The influence hash folds the tile
//       configs and harness attachments of exactly that closure;
//   (5) the bit index itself.
// Two campaigns agreeing on all five get identical verdicts, which is what
// lets a delta re-campaign of a *changed* design reuse verdicts for bits
// whose closure the change did not touch.
//
// Conservative fallbacks, never unsound shortcuts: designs with BRAM
// bindings or legitimate dynamic LUT state key every bit against a
// whole-design hash (any change re-injects everything — still a 100% warm
// hit on an unchanged design). Injections that drive the fabric past its
// oscillation bound have values truncated by a *global* event budget, so
// their verdicts are stored under the whole-design fallback key too (see
// CacheKeyPlan::fallback_key_of).
#pragma once

#include <vector>

#include "seu/injector.h"
#include "store/verdict_store.h"

namespace vscrub {

struct CacheKeyPlan {
  u64 arch_fingerprint = 0;
  u64 stimulus_hash = 0;
  std::vector<u64> frame_hashes;    ///< per global frame index
  std::vector<u64> tile_influence;  ///< per tile index (empty in whole-design mode)
  /// Whole-design keying: BRAM bindings or dynamic LUT state make precise
  /// influence closures unsound, so every bit keys against the full image.
  bool whole_design_influence = false;
  u64 whole_design_hash = 0;

  /// The exact content-addressed key for one configuration bit.
  VerdictKey key_of(const ConfigSpace& space, const BitAddress& addr,
                    u64 linear) const;
  /// The conservative variant: influence widened to the whole design image.
  /// Verdicts whose evaluation is not provably context-free (oscillation-
  /// bounded runs) are stored and probed under this key — exact for an
  /// unchanged design, invalidated by any frame change. Equal to key_of()
  /// when whole_design_influence is already set.
  VerdictKey fallback_key_of(const ConfigSpace& space, const BitAddress& addr,
                             u64 linear) const;
};

/// Builds the key plan for a design under the given injection options
/// (configures a scratch fabric to decode tile activity and replays the
/// golden trace, comparable to one SeuInjector construction).
CacheKeyPlan build_cache_key_plan(const PlacedDesign& design,
                                  const InjectionOptions& options);

/// Per-frame content hashes of a bitstream, in global frame order — the
/// delta a re-campaign diffs against a prior manifest.
std::vector<u64> hash_bitstream_frames(const Bitstream& bs);

}  // namespace vscrub
