// The SEU simulator (paper §III-A, Figs. 6 & 8): corrupt one configuration
// bit through the configuration port, run the design against its golden
// trace, log discrepancies, repair the bit, optionally classify persistence,
// reset, repeat.
#pragma once

#include <optional>
#include <vector>

#include "bitstream/selectmap.h"
#include "pnr/placed_design.h"
#include "sim/harness.h"

namespace vscrub {

struct InjectionOptions {
  u64 stim_seed = 7;
  /// Cycles run before output comparison starts (lets post-reset SRL state
  /// flush; must exceed design latency).
  u32 warmup_cycles = 48;
  /// When the design holds no dynamic LUT state (nothing survives a reset),
  /// shrink the warmup to this value: a large saving on exhaustive campaigns.
  u32 warmup_cycles_no_dynamic = 8;
  /// Compared window per injection.
  u32 observe_cycles = 64;
  /// Persistence check (paper §III, Table II): after repairing the bit, run
  /// `persistence_settle` cycles unchecked, then compare `persistence_check`
  /// cycles; any mismatch => the error is persistent (a reset is required).
  bool classify_persistence = false;
  u32 persistence_settle = 64;
  u32 persistence_check = 64;
  /// Design clock for the modeled-time accounting.
  double clock_hz = 20e6;  // "operate the designs at speed (up to 20 MHz)"
  SelectMapTiming timing = SelectMapTiming::pci_profile();
  /// Observability pruning: skip the clocked run for bits that provably
  /// cannot reach an output tap (padding slots, BRAM bits of BRAM-less
  /// designs, and bits of tiles whose whole neighbourhood decodes inactive).
  /// Sound — pruned bits report exactly what the full run would — and the
  /// main host-side speedup on low-utilization devices. Disable to force
  /// every bit through the full corrupt/run/repair loop.
  bool prune_unobservable = true;

  // Fluent construction, so call sites can assemble options in one
  // expression instead of mutating an aggregate field-by-field.
  InjectionOptions& with_stim_seed(u64 v) { stim_seed = v; return *this; }
  InjectionOptions& with_warmup_cycles(u32 v) { warmup_cycles = v; return *this; }
  InjectionOptions& with_observe_cycles(u32 v) { observe_cycles = v; return *this; }
  InjectionOptions& with_persistence(bool on = true) {
    classify_persistence = on;
    return *this;
  }
  InjectionOptions& with_persistence_window(u32 settle, u32 check) {
    classify_persistence = true;
    persistence_settle = settle;
    persistence_check = check;
    return *this;
  }
  InjectionOptions& with_clock_hz(double v) { clock_hz = v; return *this; }
  InjectionOptions& with_timing(const SelectMapTiming& t) { timing = t; return *this; }
  InjectionOptions& with_pruning(bool on) { prune_unobservable = on; return *this; }
};

/// Wall-clock telemetry accumulated across inject() calls; feeds the
/// campaign's per-phase progress reports.
struct InjectionPhases {
  double corrupt_s = 0.0;  ///< planting the upset (frame write)
  double run_s = 0.0;      ///< clocked run + golden comparison
  double repair_s = 0.0;   ///< incremental scrub restore
  double persist_s = 0.0;  ///< persistence classification window
  u64 pruned = 0;  ///< injections short-circuited by observability pruning

  InjectionPhases& operator+=(const InjectionPhases& o) {
    corrupt_s += o.corrupt_s;
    run_s += o.run_s;
    repair_s += o.repair_s;
    persist_s += o.persist_s;
    pruned += o.pruned;
    return *this;
  }
};

struct InjectionResult {
  BitAddress addr;
  bool output_error = false;
  bool persistent = false;
  u32 first_error_cycle = 0;  ///< cycle index of the first mismatch
  u64 error_output_mask_lo = 0;  ///< which outputs differed first (bits 0..63)
  SimTime modeled_time;  ///< SLAAC-1V-style hardware time for this iteration
};

/// Drives injections against one fabric instance. Reusable across many bits;
/// owns the fabric, harness and cached golden trace.
class SeuInjector {
 public:
  SeuInjector(const PlacedDesign& design, const InjectionOptions& options);

  /// Full injection loop for one configuration bit (Fig. 8): corrupt ->
  /// observe -> log -> repair -> (persistence check) -> reset.
  InjectionResult inject(const BitAddress& addr);

  /// Modeled time for one loop iteration with no error found (the common
  /// case, which dominates campaign wall-clock on the real testbed).
  SimTime modeled_iteration_time() const;

  const PlacedDesign& design() const { return *design_; }
  const InjectionOptions& options() const { return options_; }
  FabricSim& fabric() { return sim_; }
  DesignHarness& harness() { return harness_; }
  const std::vector<OutputWord>& golden() const { return golden_; }

  /// Whether flipping `addr` could possibly change an observed output (see
  /// InjectionOptions::prune_unobservable for the argument).
  bool bit_observable(const BitAddress& addr) const;

  /// Accumulated per-phase wall clock since construction / reset_phases().
  const InjectionPhases& phases() const { return phases_; }
  void reset_phases() { phases_ = InjectionPhases{}; }

 private:
  bool frame_is_dynamic_masked(const FrameAddress& fa) const;
  void scrub_restore(const BitAddress& addr);
  void snapshot_observability();
  void hermetic_reset();

  const PlacedDesign* design_;
  InjectionOptions options_;
  FabricSim sim_;
  DesignHarness harness_;
  std::vector<OutputWord> golden_;
  // Observability snapshot, taken right after configuration (before any
  // corruption): per-tile "a flip here could reach a tap" flags.
  std::vector<u8> observable_;
  bool bram_observable_ = false;
  // Hermetic-reset baseline: FF state right after configure()+restart().
  std::vector<u8> ff_baseline_;
  // Frames scrub_restore() deliberately left diverged from the golden image
  // (live SRL/RAM16 contents, BRAM data written by the design's own ports);
  // hermetic_reset() reloads them before the next injection.
  std::vector<u32> residual_frames_;
  InjectionPhases phases_;
};

}  // namespace vscrub
