// The SEU simulator (paper §III-A, Figs. 6 & 8): corrupt one configuration
// bit through the configuration port, run the design against its golden
// trace, log discrepancies, repair the bit, optionally classify persistence,
// reset, repeat.
#pragma once

#include <optional>
#include <vector>

#include "bitstream/selectmap.h"
#include "pnr/placed_design.h"
#include "sim/harness.h"

namespace vscrub {

struct InjectionOptions {
  u64 stim_seed = 7;
  /// Cycles run before output comparison starts (lets post-reset SRL state
  /// flush; must exceed design latency).
  u32 warmup_cycles = 48;
  /// When the design holds no dynamic LUT state (nothing survives a reset),
  /// shrink the warmup to this value: a large saving on exhaustive campaigns.
  u32 warmup_cycles_no_dynamic = 8;
  /// Compared window per injection.
  u32 observe_cycles = 64;
  /// Persistence check (paper §III, Table II): after repairing the bit, run
  /// `persistence_settle` cycles unchecked, then compare `persistence_check`
  /// cycles; any mismatch => the error is persistent (a reset is required).
  bool classify_persistence = false;
  u32 persistence_settle = 64;
  u32 persistence_check = 64;
  /// Design clock for the modeled-time accounting.
  double clock_hz = 20e6;  // "operate the designs at speed (up to 20 MHz)"
  SelectMapTiming timing = SelectMapTiming::pci_profile();
};

struct InjectionResult {
  BitAddress addr;
  bool output_error = false;
  bool persistent = false;
  u32 first_error_cycle = 0;  ///< cycle index of the first mismatch
  u64 error_output_mask_lo = 0;  ///< which outputs differed first (bits 0..63)
  SimTime modeled_time;  ///< SLAAC-1V-style hardware time for this iteration
};

/// Drives injections against one fabric instance. Reusable across many bits;
/// owns the fabric, harness and cached golden trace.
class SeuInjector {
 public:
  SeuInjector(const PlacedDesign& design, const InjectionOptions& options);

  /// Full injection loop for one configuration bit (Fig. 8): corrupt ->
  /// observe -> log -> repair -> (persistence check) -> reset.
  InjectionResult inject(const BitAddress& addr);

  /// Modeled time for one loop iteration with no error found (the common
  /// case, which dominates campaign wall-clock on the real testbed).
  SimTime modeled_iteration_time() const;

  const PlacedDesign& design() const { return *design_; }
  const InjectionOptions& options() const { return options_; }
  FabricSim& fabric() { return sim_; }
  DesignHarness& harness() { return harness_; }
  const std::vector<OutputWord>& golden() const { return golden_; }

 private:
  bool frame_is_dynamic_masked(const FrameAddress& fa) const;
  void scrub_restore(const BitAddress& addr);

  const PlacedDesign* design_;
  InjectionOptions options_;
  FabricSim sim_;
  DesignHarness harness_;
  std::vector<OutputWord> golden_;
};

}  // namespace vscrub
