// The SEU simulator (paper §III-A, Figs. 6 & 8): corrupt one configuration
// bit through the configuration port, run the design against its golden
// trace, log discrepancies, repair the bit, optionally classify persistence,
// reset, repeat.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/selectmap.h"
#include "pnr/placed_design.h"
#include "sim/harness.h"

namespace vscrub {

struct InjectionOptions {
  u64 stim_seed = 7;
  /// Cycles run before output comparison starts (lets post-reset SRL state
  /// flush; must exceed design latency).
  u32 warmup_cycles = 48;
  /// When the design holds no dynamic LUT state (nothing survives a reset),
  /// shrink the warmup to this value: a large saving on exhaustive campaigns.
  u32 warmup_cycles_no_dynamic = 8;
  /// Compared window per injection.
  u32 observe_cycles = 64;
  /// Persistence check (paper §III, Table II): after repairing the bit, run
  /// `persistence_settle` cycles unchecked, then compare `persistence_check`
  /// cycles; any mismatch => the error is persistent (a reset is required).
  bool classify_persistence = false;
  u32 persistence_settle = 64;
  u32 persistence_check = 64;
  /// Design clock for the modeled-time accounting.
  double clock_hz = 20e6;  // "operate the designs at speed (up to 20 MHz)"
  SelectMapTiming timing = SelectMapTiming::pci_profile();
  /// Observability pruning: skip the clocked run for bits that provably
  /// cannot reach an output tap (padding slots, BRAM bits of BRAM-less
  /// designs, and bits of tiles whose whole neighbourhood decodes inactive).
  /// Sound — pruned bits report exactly what the full run would — and the
  /// main host-side speedup on low-utilization devices. Disable to force
  /// every bit through the full corrupt/run/repair loop.
  bool prune_unobservable = true;
  /// Bit-sliced gang evaluation: pack up to this many injection candidates
  /// (including the golden reference lane) into one word-parallel simulation.
  /// Results are bit-for-bit identical to the scalar loop regardless of
  /// width; <= 1 disables ganging. Only designs without BRAM bindings or
  /// legitimate dynamic LUT state are gang-capable; everything else falls
  /// back to the scalar path automatically. Supported widths: 0/1 (gang
  /// off), 2..64 (u64 engine) and the wide-word engines' 256/512; anything
  /// else throws GangWidthError at injector construction.
  u32 gang_width = 64;
  /// SIMD tier for the wide gang engines, by name: "auto" (or empty),
  /// "scalar", "avx2", "avx512". Performance-only — verdicts are identical
  /// on every tier. Unknown names throw SimdIsaError at injector
  /// construction; explicitly requesting a tier this binary/CPU cannot run
  /// throws there too. Widths <= 64 always execute scalar u64 loops.
  std::string gang_isa = "auto";
  /// Run gang golden settles from the ahead-of-time compiled eval plan when
  /// the design's active cone is acyclic (see sim/eval_plan.h). Scheduling
  /// only: verdicts and verdict-cache keys are identical with it off.
  bool gang_plan = true;

  // Fluent construction, so call sites can assemble options in one
  // expression instead of mutating an aggregate field-by-field.
  InjectionOptions& with_stim_seed(u64 v) { stim_seed = v; return *this; }
  InjectionOptions& with_warmup_cycles(u32 v) { warmup_cycles = v; return *this; }
  InjectionOptions& with_observe_cycles(u32 v) { observe_cycles = v; return *this; }
  InjectionOptions& with_persistence(bool on = true) {
    classify_persistence = on;
    return *this;
  }
  InjectionOptions& with_persistence_window(u32 settle, u32 check) {
    classify_persistence = true;
    persistence_settle = settle;
    persistence_check = check;
    return *this;
  }
  InjectionOptions& with_clock_hz(double v) { clock_hz = v; return *this; }
  InjectionOptions& with_timing(const SelectMapTiming& t) { timing = t; return *this; }
  InjectionOptions& with_pruning(bool on) { prune_unobservable = on; return *this; }
  InjectionOptions& with_gang_width(u32 w) { gang_width = w; return *this; }
  InjectionOptions& with_gang_isa(std::string name) {
    gang_isa = std::move(name);
    return *this;
  }
  InjectionOptions& with_gang_plan(bool on) { gang_plan = on; return *this; }
};

/// Wall-clock telemetry accumulated across inject() calls; feeds the
/// campaign's per-phase progress reports.
struct InjectionPhases {
  double corrupt_s = 0.0;  ///< planting the upset (frame write)
  double run_s = 0.0;      ///< clocked run + golden comparison
  double repair_s = 0.0;   ///< incremental scrub restore
  double persist_s = 0.0;  ///< persistence classification window
  double gang_s = 0.0;     ///< wall clock inside gang dispatches (within run_s)
  u64 pruned = 0;  ///< injections short-circuited by observability pruning
  u64 gang_runs = 0;           ///< gang evaluations dispatched
  u64 gang_lanes = 0;          ///< candidate lanes across all gang runs
  u64 gang_early_exits = 0;    ///< gang runs retired before their full window
  u64 gang_fallbacks = 0;      ///< lanes re-run through the scalar path

  InjectionPhases& operator+=(const InjectionPhases& o) {
    corrupt_s += o.corrupt_s;
    run_s += o.run_s;
    repair_s += o.repair_s;
    persist_s += o.persist_s;
    gang_s += o.gang_s;
    pruned += o.pruned;
    gang_runs += o.gang_runs;
    gang_lanes += o.gang_lanes;
    gang_early_exits += o.gang_early_exits;
    gang_fallbacks += o.gang_fallbacks;
    return *this;
  }
};

struct InjectionResult {
  BitAddress addr;
  bool output_error = false;
  bool persistent = false;
  u32 first_error_cycle = 0;  ///< cycle index of the first mismatch
  u64 error_output_mask_lo = 0;  ///< which outputs differed first (bits 0..63)
  SimTime modeled_time;  ///< SLAAC-1V-style hardware time for this iteration
  /// The run tripped the fabric's oscillation handling (a flip-created
  /// combinational loop or an eval past the event budget). Such values are
  /// truncated by a *global* budget, so the verdict is not provably a
  /// function of the bit's influence closure alone — the verdict cache
  /// stores these under its conservative whole-design key.
  bool fabric_oscillated = false;
};

/// Modeled hardware time for one no-error loop iteration under `options`
/// (corrupt write + observation window + repair write + reset pulse). Also
/// the per-verdict cost the campaign charges for verdict-store hits: the
/// real testbed cannot cache, so cached and fresh iterations bill alike.
SimTime modeled_injection_iteration_time(const PlacedDesign& design,
                                         const InjectionOptions& options);

/// Drives injections against one fabric instance. Reusable across many bits;
/// owns the fabric, harness and cached golden trace.
class GangSim;

class SeuInjector {
 public:
  SeuInjector(const PlacedDesign& design, const InjectionOptions& options);
  ~SeuInjector();

  /// Full injection loop for one configuration bit (Fig. 8): corrupt ->
  /// observe -> log -> repair -> (persistence check) -> reset.
  InjectionResult inject(const BitAddress& addr);

  /// Whether this design supports gang evaluation at all (no BRAM bindings,
  /// no legitimate dynamic LUT state) with the current options.
  bool gang_capable() const;
  /// Whether `addr` may ride in a gang run. Bits the observability pruner
  /// would skip stay on the scalar path (which short-circuits them), as do
  /// BRAM-column bits.
  bool gang_eligible(const BitAddress& addr) const;
  /// Evaluates a batch of bits through the bit-sliced gang engine, up to
  /// options().gang_width - 1 candidates per run. Verdicts are bit-for-bit
  /// identical to per-bit inject() calls; lanes the engine cannot decide
  /// exactly are transparently re-run through the scalar loop. results[i]
  /// corresponds to addrs[i].
  std::vector<InjectionResult> run_gang(const std::vector<BitAddress>& addrs);

  /// Modeled time for one loop iteration with no error found (the common
  /// case, which dominates campaign wall-clock on the real testbed).
  SimTime modeled_iteration_time() const;

  const PlacedDesign& design() const { return *design_; }
  const InjectionOptions& options() const { return options_; }
  FabricSim& fabric() { return sim_; }
  DesignHarness& harness() { return harness_; }
  const std::vector<OutputWord>& golden() const { return golden_; }

  /// Whether flipping `addr` could possibly change an observed output (see
  /// InjectionOptions::prune_unobservable for the argument).
  bool bit_observable(const BitAddress& addr) const;

  /// Accumulated per-phase wall clock since construction / reset_phases().
  const InjectionPhases& phases() const { return phases_; }
  void reset_phases() { phases_ = InjectionPhases{}; }

 private:
  bool frame_is_dynamic_masked(const FrameAddress& fa) const;
  void scrub_restore(const BitAddress& addr);
  void snapshot_observability();
  void hermetic_reset();

  const PlacedDesign* design_;
  InjectionOptions options_;
  FabricSim sim_;
  DesignHarness harness_;
  std::vector<OutputWord> golden_;
  // Observability snapshot, taken right after configuration (before any
  // corruption): per-tile "a flip here could reach a tap" flags.
  std::vector<u8> observable_;
  bool bram_observable_ = false;
  // Hermetic-reset baseline: FF state right after configure()+restart().
  std::vector<u8> ff_baseline_;
  // Frames scrub_restore() deliberately left diverged from the golden image
  // (live SRL/RAM16 contents, BRAM data written by the design's own ports);
  // hermetic_reset() reloads them before the next injection.
  std::vector<u32> residual_frames_;
  // Lazily-constructed gang engine. Fully independent of sim_/harness_
  // (it owns its own fabric), so scalar fallback re-runs are safe mid-batch.
  std::unique_ptr<GangSim> gang_;
  InjectionPhases phases_;
};

}  // namespace vscrub
