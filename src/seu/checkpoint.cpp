#include "seu/checkpoint.h"

#include <algorithm>
#include <bit>

#include "bitstream/record_io.h"
#include "common/log.h"

namespace vscrub {
namespace {

// VSCK2 added the gang-engine counters to the phase block; VSCK3 added the
// verdict-store counters and per-sensitive-bit cache provenance; VSCK4 added
// the gang wall-clock to the phase block.
const std::string kMagic = "VSCK4";

u64 fnv1a(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

u64 fnv1a(u64 h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void put_phases(RecordWriter& w, const InjectionPhases& p) {
  w.put_u64(std::bit_cast<u64>(p.corrupt_s));
  w.put_u64(std::bit_cast<u64>(p.run_s));
  w.put_u64(std::bit_cast<u64>(p.repair_s));
  w.put_u64(std::bit_cast<u64>(p.persist_s));
  w.put_u64(std::bit_cast<u64>(p.gang_s));
  w.put_u64(p.pruned);
  w.put_u64(p.gang_runs);
  w.put_u64(p.gang_lanes);
  w.put_u64(p.gang_early_exits);
  w.put_u64(p.gang_fallbacks);
}

InjectionPhases get_phases(RecordReader& r) {
  InjectionPhases p;
  p.corrupt_s = std::bit_cast<double>(r.get_u64());
  p.run_s = std::bit_cast<double>(r.get_u64());
  p.repair_s = std::bit_cast<double>(r.get_u64());
  p.persist_s = std::bit_cast<double>(r.get_u64());
  p.gang_s = std::bit_cast<double>(r.get_u64());
  p.pruned = r.get_u64();
  p.gang_runs = r.get_u64();
  p.gang_lanes = r.get_u64();
  p.gang_early_exits = r.get_u64();
  p.gang_fallbacks = r.get_u64();
  return p;
}

}  // namespace

u64 campaign_fingerprint(const PlacedDesign& design,
                         const CampaignOptions& options, u64 total_injections,
                         u64 chunk_size) {
  const DeviceGeometry& geom = design.space->geometry();
  u64 h = 0xCBF29CE484222325ULL;  // FNV offset basis
  h = fnv1a(h, geom.name);
  h = fnv1a(h, geom.rows);
  h = fnv1a(h, geom.cols);
  h = fnv1a(h, geom.bram_columns);
  h = fnv1a(h, geom.frame_pad_slots);
  h = fnv1a(h, design.netlist->name());
  h = fnv1a(h, total_injections);
  h = fnv1a(h, options.sample_bits);
  h = fnv1a(h, options.sample_seed);
  h = fnv1a(h, chunk_size);
  // The fabric's range restriction changes which universe positions a
  // checkpoint's chunk bitmap indexes, so two ranges of the same campaign
  // must never resume from each other's checkpoints.
  h = fnv1a(h, options.range_begin);
  h = fnv1a(h, options.range_end);
  h = fnv1a(h, static_cast<u64>(options.record_sensitive_bits));
  h = fnv1a(h, static_cast<u64>(options.record_sampled_bits));
  const InjectionOptions& inj = options.injection;
  h = fnv1a(h, inj.stim_seed);
  h = fnv1a(h, inj.warmup_cycles);
  h = fnv1a(h, inj.warmup_cycles_no_dynamic);
  h = fnv1a(h, inj.observe_cycles);
  h = fnv1a(h, static_cast<u64>(inj.classify_persistence));
  h = fnv1a(h, inj.persistence_settle);
  h = fnv1a(h, inj.persistence_check);
  h = fnv1a(h, std::bit_cast<u64>(inj.clock_hz));
  h = fnv1a(h, static_cast<u64>(inj.prune_unobservable));
  // gang_width/gang_isa/gang_plan are deliberately NOT hashed: gang
  // evaluation is result-invariant (bit-for-bit identical to scalar at any
  // width, on any SIMD tier, plan compiled or interpreted), so checkpoints
  // written with one engine configuration resume correctly under any other.
  // cache_dir is not
  // hashed for the same reason — verdict-store hits replay exactly what a
  // fresh injection would produce, so a checkpoint taken with one cache
  // configuration resumes correctly under any other.
  return h;
}

void save_campaign_checkpoint(const std::string& path,
                              const CampaignCheckpoint& ck) {
  RecordWriter w(kMagic);
  w.put_u64(ck.fingerprint);
  w.put_u64(ck.total_injections);
  w.put_u64(ck.chunk_size);
  w.put_u64(ck.done.size());
  w.put_bytes(ck.done.data(), ck.done.size());
  w.put_u64(ck.injections);
  w.put_u64(ck.failures);
  w.put_u64(ck.persistent);
  w.put_u64(ck.pruned);
  w.put_u64(ck.cache_hits);
  w.put_u64(ck.cache_misses);
  w.put_u64(static_cast<u64>(ck.modeled_ps));
  put_phases(w, ck.phases);
  w.put_u64(ck.sensitive_bits.size());
  for (const auto& sb : ck.sensitive_bits) {
    w.put_u8(static_cast<u8>(sb.addr.frame.kind));
    w.put_u16(sb.addr.frame.col);
    w.put_u16(sb.addr.frame.frame);
    w.put_u32(sb.addr.offset);
    w.put_u8(static_cast<u8>(sb.persistent));
    w.put_u32(sb.first_error_cycle);
    w.put_u64(sb.error_output_mask_lo);
    w.put_u8(static_cast<u8>(sb.from_cache));
  }
  w.put_u64(ck.failures_by_field.size());
  for (const auto& [kind, count] : ck.failures_by_field) {
    w.put_u8(kind);
    w.put_u64(count);
  }
  w.write(path);
}

bool load_campaign_checkpoint(const std::string& path,
                              CampaignCheckpoint* ck) {
  if (!record_exists(path, kMagic)) return false;
  RecordReader r(path, kMagic);
  ck->fingerprint = r.get_u64();
  ck->total_injections = r.get_u64();
  ck->chunk_size = r.get_u64();
  // Element counts are validated against the bytes actually present before
  // any resize: a corrupted-but-CRC-colliding (or truncated-and-rewritten)
  // count field must fail cleanly, not allocate gigabytes or resume from a
  // bogus cursor.
  const u64 done_n = r.get_u64();
  VSCRUB_CHECK(done_n <= r.remaining(),
               "checkpoint: done bitmap larger than record");
  ck->done.resize(done_n);
  r.get_bytes(ck->done.data(), ck->done.size());
  ck->injections = r.get_u64();
  ck->failures = r.get_u64();
  ck->persistent = r.get_u64();
  ck->pruned = r.get_u64();
  ck->cache_hits = r.get_u64();
  ck->cache_misses = r.get_u64();
  ck->modeled_ps = static_cast<i64>(r.get_u64());
  ck->phases = get_phases(r);
  // Each sensitive-bit entry is 23 bytes on the wire (u8+u16+u16+u32+u8+u32+
  // u64+u8), each failures_by_field entry 9 (u8+u64).
  const u64 sens_n = r.get_u64();
  VSCRUB_CHECK(sens_n <= r.remaining() / 23,
               "checkpoint: sensitive-bit count larger than record");
  ck->sensitive_bits.resize(sens_n);
  for (auto& sb : ck->sensitive_bits) {
    sb.addr.frame.kind = static_cast<ColumnKind>(r.get_u8());
    sb.addr.frame.col = r.get_u16();
    sb.addr.frame.frame = r.get_u16();
    sb.addr.offset = r.get_u32();
    sb.persistent = r.get_u8() != 0;
    sb.first_error_cycle = r.get_u32();
    sb.error_output_mask_lo = r.get_u64();
    sb.from_cache = r.get_u8() != 0;
  }
  const u64 fields_n = r.get_u64();
  VSCRUB_CHECK(fields_n <= r.remaining() / 9,
               "checkpoint: failure-field count larger than record");
  ck->failures_by_field.resize(fields_n);
  for (auto& [kind, count] : ck->failures_by_field) {
    kind = r.get_u8();
    count = r.get_u64();
  }
  return true;
}

}  // namespace vscrub
