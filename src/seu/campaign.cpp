#include "seu/campaign.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/log.h"
#include "common/rng.h"
#include "seu/cache_key.h"
#include "seu/checkpoint.h"
#include "store/remote_store.h"
#include "store/verdict_store.h"

namespace vscrub {
namespace {

/// Chunk sizing never derives from the thread count: results, progress and
/// checkpoints must be comparable across machines (and a checkpoint taken
/// on an 8-way host must resume on a 1-way one).
u64 resolve_chunk_size(u64 requested, u64 n) {
  if (requested != 0) return requested;
  return std::clamp<u64>(n / 256, 64, 4096);
}

/// The bit universe: every configuration bit, or a uniform sample without
/// replacement drawn via a partial Fisher–Yates over virtual indices.
std::vector<u64> build_universe(const ConfigSpace& space,
                                const CampaignOptions& options) {
  const u64 total_bits = space.total_bits();
  std::vector<u64> bits;
  if (options.sample_bits == 0 || options.sample_bits >= total_bits) {
    bits.resize(total_bits);
    for (u64 i = 0; i < total_bits; ++i) bits[i] = i;
  } else {
    Rng rng(options.sample_seed);
    bits.reserve(options.sample_bits);
    std::unordered_map<u64, u64> swapped;
    swapped.reserve(options.sample_bits);
    for (u64 i = 0; i < options.sample_bits; ++i) {
      const u64 j = i + rng.uniform(total_bits - i);
      // Reserved above, so the emplace cannot rehash and `itj` stays valid.
      const auto itj = swapped.find(j);
      const u64 vj = itj == swapped.end() ? j : itj->second;
      const auto iti = swapped.find(i);
      const u64 vi = iti == swapped.end() ? i : iti->second;
      bits.push_back(vj);
      if (itj == swapped.end()) {
        swapped.emplace(j, vi);
      } else {
        itj->second = vi;
      }
    }
  }
  return bits;
}

/// Aggregates over completed chunks; guarded by the campaign merge mutex.
struct Aggregates {
  u64 injections = 0;
  u64 failures = 0;
  u64 persistent = 0;
  u64 pruned = 0;
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  // Remote-tier counters are telemetry only: they are not checkpointed, so
  // a resumed range restarts them at zero.
  u64 remote_hits = 0;
  u64 remote_publishes = 0;
  i64 modeled_ps = 0;
  InjectionPhases phases;
  std::vector<CampaignResult::SensitiveBit> sensitive;
  std::unordered_map<u8, u64> by_field;
};

CampaignCheckpoint to_checkpoint(const Aggregates& agg,
                                 const std::vector<u8>& done, u64 fingerprint,
                                 u64 total_injections, u64 chunk_size) {
  CampaignCheckpoint ck;
  ck.fingerprint = fingerprint;
  ck.total_injections = total_injections;
  ck.chunk_size = chunk_size;
  ck.done = done;
  ck.injections = agg.injections;
  ck.failures = agg.failures;
  ck.persistent = agg.persistent;
  ck.pruned = agg.pruned;
  ck.cache_hits = agg.cache_hits;
  ck.cache_misses = agg.cache_misses;
  ck.modeled_ps = agg.modeled_ps;
  ck.phases = agg.phases;
  ck.sensitive_bits = agg.sensitive;
  ck.failures_by_field.assign(agg.by_field.begin(), agg.by_field.end());
  std::sort(ck.failures_by_field.begin(), ck.failures_by_field.end());
  return ck;
}

}  // namespace

std::unordered_set<u64> CampaignResult::sensitive_set(
    const PlacedDesign& design) const {
  std::unordered_set<u64> set;
  set.reserve(sensitive_bits.size());
  for (const auto& sb : sensitive_bits) {
    set.insert(design.space->linear_of(sb.addr));
  }
  return set;
}

u64 CampaignResult::sensitive_digest(const PlacedDesign& design) const {
  // XOR of per-bit hashes: order-independent, so the digest is stable no
  // matter how chunks were scheduled. Provenance (from_cache) is excluded —
  // a warm replay must digest identically to the cold run it replays.
  u64 digest = 0;
  for (const auto& sb : sensitive_bits) {
    u64 h = 0xCBF29CE484222325ULL;
    const auto fold = [&h](u64 v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ULL;
      }
    };
    fold(design.space->linear_of(sb.addr));
    fold(static_cast<u64>(sb.persistent));
    fold(sb.first_error_cycle);
    fold(sb.error_output_mask_lo);
    digest ^= h;
  }
  return digest;
}

CampaignResult run_campaign(const PlacedDesign& design,
                            const CampaignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const ConfigSpace& space = *design.space;

  std::vector<u64> bits = build_universe(space, options);
  // Fabric range restriction: slice the deterministic universe *after* it is
  // built, so every range of a sharded campaign sees the identical universe
  // order and disjoint ranges partition the one-shot run exactly.
  const bool range_active = options.range_end > 0;
  if (range_active) {
    VSCRUB_CHECK(options.range_end > options.range_begin,
                 "campaign: range_end must exceed range_begin");
    const u64 b = std::min<u64>(options.range_begin, bits.size());
    const u64 e = std::min<u64>(options.range_end, bits.size());
    bits.erase(bits.begin() + static_cast<std::ptrdiff_t>(e), bits.end());
    bits.erase(bits.begin(), bits.begin() + static_cast<std::ptrdiff_t>(b));
  }
  const u64 n = bits.size();
  const u64 chunk_size = resolve_chunk_size(options.chunk_size, n);
  const u64 nchunks = (n + chunk_size - 1) / chunk_size;
  const u64 fingerprint = campaign_fingerprint(design, options, n, chunk_size);

  CampaignResult result;
  result.device_bits = space.total_bits();
  result.design_slices = design.stats.slices_used;
  result.utilization = design.stats.utilization;

  // Verdict store: either the caller's shared process-wide instance
  // (options.store — the serving layer's path, where concurrent campaigns
  // hit each other's verdicts) or one opened here from cache_dir. Either
  // way the key plan is computed once and shared read-only.
  std::unique_ptr<VerdictStore> owned_store;
  VerdictStore* store = options.store;
  CacheKeyPlan plan;
  SimTime cached_iter_time;
  if (store == nullptr && !options.cache_dir.empty()) {
    owned_store = std::make_unique<VerdictStore>(options.cache_dir);
    store = owned_store.get();
  }
  RemoteVerdictClient* remote = options.remote_store;
  if (store != nullptr || remote != nullptr) {
    result.cache_enabled = store != nullptr;
    plan = build_cache_key_plan(design, options.injection);
    // Every iteration — fresh or replayed — bills the same modeled hardware
    // cost: the real testbed cannot cache.
    cached_iter_time =
        modeled_injection_iteration_time(design, options.injection);
  }

  // Resume: a compatible checkpoint pre-marks its chunks done and seeds the
  // aggregates; anything else is ignored (and overwritten on the next save).
  Aggregates agg;
  std::vector<u8> done((nchunks + 7) / 8, 0);
  u64 resumed_chunks = 0;
  if (!options.checkpoint_path.empty()) {
    CampaignCheckpoint prev;
    bool loaded = false;
    try {
      loaded = load_campaign_checkpoint(options.checkpoint_path, &prev);
    } catch (const Error& e) {
      VSCRUB_WARN("campaign: unreadable checkpoint ", options.checkpoint_path,
                  " (", e.what(), "); starting fresh");
    }
    if (loaded && prev.fingerprint == fingerprint &&
        prev.total_injections == n && prev.chunk_size == chunk_size &&
        prev.done.size() == done.size()) {
      done = prev.done;
      for (u64 c = 0; c < nchunks; ++c) {
        resumed_chunks += static_cast<u64>((done[c >> 3] >> (c & 7)) & 1);
      }
      agg.injections = prev.injections;
      agg.failures = prev.failures;
      agg.persistent = prev.persistent;
      agg.pruned = prev.pruned;
      agg.cache_hits = prev.cache_hits;
      agg.cache_misses = prev.cache_misses;
      agg.modeled_ps = prev.modeled_ps;
      agg.phases = prev.phases;
      agg.sensitive = std::move(prev.sensitive_bits);
      for (const auto& [kind, count] : prev.failures_by_field) {
        agg.by_field[kind] = count;
      }
      VSCRUB_INFO("campaign: resumed ", resumed_chunks, "/", nchunks,
                  " chunks (", agg.injections, " injections) from ",
                  options.checkpoint_path);
    } else if (loaded) {
      VSCRUB_INFO("campaign: checkpoint ", options.checkpoint_path,
                  " belongs to a different campaign; starting fresh");
    }
  }
  result.resumed_injections = agg.injections;

  // Chunks completed in *this* run never get re-claimed (the cursor is
  // monotonic), so workers only need the pre-run bitmap to skip resumed
  // work — an immutable snapshot, readable without the merge lock.
  const std::vector<u8> resumed_done = done;

  std::mutex merge_mutex;
  std::atomic<bool> stop{false};
  u64 chunks_done = resumed_chunks;     // guarded by merge_mutex
  u64 chunks_since_progress = 0;        // guarded by merge_mutex
  u64 chunks_since_checkpoint = 0;      // guarded by merge_mutex

  const auto make_progress = [&](double elapsed_s) {
    // Rate and ETA from this run's own work; resumed chunks were free.
    CampaignProgress p;
    p.injections_done = agg.injections;
    p.injections_total = n;
    p.failures = agg.failures;
    p.persistent = agg.persistent;
    p.pruned = agg.pruned;
    p.cache_hits = agg.cache_hits;
    p.chunks_done = chunks_done;
    p.chunks_total = nchunks;
    p.chunks_resumed = resumed_chunks;
    p.elapsed_s = elapsed_s;
    const u64 run_injections = agg.injections - result.resumed_injections;
    p.bits_per_s =
        elapsed_s > 0 ? static_cast<double>(run_injections) / elapsed_s : 0.0;
    p.eta_s = p.bits_per_s > 0
                  ? static_cast<double>(n - agg.injections) / p.bits_per_s
                  : 0.0;
    p.phases = agg.phases;
    return p;
  };
  const auto save_checkpoint = [&] {
    save_campaign_checkpoint(
        options.checkpoint_path,
        to_checkpoint(agg, done, fingerprint, n, chunk_size));
    if (options.on_checkpoint) options.on_checkpoint();
  };

  // Scheduling: an external shared pool when the caller provides one (the
  // serving layer's process-wide pool), else a private pool per campaign.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(options.threads);
    pool = owned_pool.get();
  }
  std::vector<std::unique_ptr<SeuInjector>> injectors(pool->thread_count());

  pool->parallel_chunks(n, chunk_size, [&](u64 begin, u64 end,
                                           unsigned worker) {
    const u64 c = begin / chunk_size;
    if ((resumed_done[c >> 3] >> (c & 7)) & 1) return;
    if (stop.load(std::memory_order_relaxed)) return;

    u64 local_failures = 0, local_persistent = 0;
    u64 local_hits = 0, local_misses = 0;
    SimTime local_time;
    std::vector<CampaignResult::SensitiveBit> local_sensitive;
    std::unordered_map<u8, u64> local_by_field;
    const auto consume = [&](const InjectionResult& r, bool from_cache) {
      local_time += r.modeled_time;
      if (r.output_error) {
        ++local_failures;
        if (r.persistent) ++local_persistent;
        if (options.record_sensitive_bits) {
          local_sensitive.push_back({r.addr, r.persistent,
                                     r.first_error_cycle,
                                     r.error_output_mask_lo, from_cache});
        }
        const auto ref = space.tile_ref_of(r.addr);
        if (ref.valid) {
          const auto& meaning = ConfigSpace::meaning_of_tile_bit(ref.tile_bit);
          ++local_by_field[static_cast<u8>(meaning.kind)];
        }
      }
    };

    // Verdict-store probe, ahead of both the scheduler's scalar loop and the
    // gang engine: a hit replays the stored verdict (bit-identical to what
    // the injection would produce) and never touches a simulator. Probe the
    // exact key first, then the conservative whole-design fallback key under
    // which oscillation-bounded verdicts were stored.
    std::vector<u64> miss_bits;
    if (store) {
      miss_bits.reserve(end - begin);
      for (u64 i = begin; i < end; ++i) {
        const u64 linear = bits[i];
        const BitAddress addr = space.address_of_linear(linear);
        std::optional<StoredVerdict> v =
            store->find(plan.key_of(space, addr, linear));
        if (!v) v = store->find(plan.fallback_key_of(space, addr, linear));
        if (!v) {
          ++local_misses;
          miss_bits.push_back(linear);
          continue;
        }
        ++local_hits;
        InjectionResult r;
        r.addr = addr;
        r.output_error = v->output_error;
        r.persistent = v->persistent;
        r.first_error_cycle = v->first_error_cycle;
        r.error_output_mask_lo = v->error_output_mask_lo;
        r.modeled_time = cached_iter_time;
        consume(r, /*from_cache=*/true);
      }
    } else {
      miss_bits.assign(bits.begin() + static_cast<std::ptrdiff_t>(begin),
                       bits.begin() + static_cast<std::ptrdiff_t>(end));
    }

    // Remote tier: one batched round trip for the chunk's local misses
    // (exact keys first, then the conservative fallback keys for whatever is
    // still missing). Hits replay exactly like local store hits and are fed
    // into the local store so later chunks stop asking the wire.
    u64 local_remote_hits = 0;
    if (remote != nullptr && !miss_bits.empty()) {
      const auto probe_remote = [&](bool fallback) {
        std::vector<VerdictKey> keys;
        keys.reserve(miss_bits.size());
        for (const u64 linear : miss_bits) {
          const BitAddress addr = space.address_of_linear(linear);
          keys.push_back(fallback ? plan.fallback_key_of(space, addr, linear)
                                  : plan.key_of(space, addr, linear));
        }
        std::vector<std::optional<StoredVerdict>> found;
        remote->lookup_batch(keys, &found);
        std::vector<u64> still;
        still.reserve(miss_bits.size());
        for (std::size_t i = 0; i < miss_bits.size(); ++i) {
          const std::optional<StoredVerdict> v =
              i < found.size() ? found[i] : std::nullopt;
          if (!v) {
            still.push_back(miss_bits[i]);
            continue;
          }
          ++local_remote_hits;
          const u64 linear = miss_bits[i];
          if (store) store->put(keys[i], *v);
          InjectionResult r;
          r.addr = space.address_of_linear(linear);
          r.output_error = v->output_error;
          r.persistent = v->persistent;
          r.first_error_cycle = v->first_error_cycle;
          r.error_output_mask_lo = v->error_output_mask_lo;
          r.modeled_time = cached_iter_time;
          consume(r, /*from_cache=*/true);
        }
        miss_bits = std::move(still);
      };
      probe_remote(/*fallback=*/false);
      if (!miss_bits.empty()) probe_remote(/*fallback=*/true);
    }

    InjectionPhases phase_delta;
    std::vector<std::pair<VerdictKey, StoredVerdict>> publish;
    if (!miss_bits.empty()) {
      // One injector per worker, built on first miss (the constructor
      // computes the golden trace and configures a fabric — not free, and a
      // fully-cached chunk never needs one).
      if (!injectors[worker]) {
        injectors[worker] =
            std::make_unique<SeuInjector>(design, options.injection);
      }
      SeuInjector& injector = *injectors[worker];
      const auto record = [&](const InjectionResult& r) {
        consume(r, /*from_cache=*/false);
        if (store || remote) {
          const u64 linear = space.linear_of(r.addr);
          // Oscillation-bounded runs are not provably a function of the
          // bit's closure alone: store them under the whole-design fallback
          // key, which any design change invalidates.
          const VerdictKey key =
              r.fabric_oscillated ? plan.fallback_key_of(space, r.addr, linear)
                                  : plan.key_of(space, r.addr, linear);
          const StoredVerdict v{r.output_error, r.persistent,
                                r.first_error_cycle, r.error_output_mask_lo};
          if (store) store->put(key, v);
          if (remote) publish.emplace_back(key, v);
        }
      };
      // Gang batching: collect this chunk's gang-eligible bits for one
      // word-parallel run; everything else goes through the scalar loop.
      // Both paths yield identical per-bit results, so the aggregation is
      // order-independent (sensitive bits are sorted at the end anyway).
      const bool use_gang = injector.gang_capable();
      std::vector<BitAddress> gang_addrs;
      if (use_gang) gang_addrs.reserve(miss_bits.size());
      for (const u64 linear : miss_bits) {
        const BitAddress addr = space.address_of_linear(linear);
        if (use_gang && injector.gang_eligible(addr)) {
          gang_addrs.push_back(addr);
          continue;
        }
        record(injector.inject(addr));
      }
      if (!gang_addrs.empty()) {
        for (const InjectionResult& r : injector.run_gang(gang_addrs)) {
          record(r);
        }
      }
      phase_delta = injector.phases();
      injector.reset_phases();
    }
    // Publish the chunk's fresh verdicts in one round trip, outside the
    // merge lock: a slow coordinator stalls this worker, not the campaign.
    if (remote != nullptr && !publish.empty()) remote->publish_batch(publish);

    std::lock_guard lock(merge_mutex);
    agg.injections += end - begin;
    agg.failures += local_failures;
    agg.persistent += local_persistent;
    agg.pruned += phase_delta.pruned;
    agg.cache_hits += local_hits;
    agg.cache_misses += local_misses;
    agg.remote_hits += local_remote_hits;
    agg.remote_publishes += publish.size();
    agg.modeled_ps += local_time.ps();
    agg.phases += phase_delta;
    agg.sensitive.insert(agg.sensitive.end(), local_sensitive.begin(),
                         local_sensitive.end());
    for (const auto& [k, v] : local_by_field) agg.by_field[k] += v;
    done[c >> 3] = static_cast<u8>(done[c >> 3] | (1u << (c & 7)));
    ++chunks_done;

    if (options.on_progress && ++chunks_since_progress >=
                                   std::max<u64>(1, options.progress_every_chunks)) {
      chunks_since_progress = 0;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!options.on_progress(make_progress(elapsed))) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
    if (!options.checkpoint_path.empty() &&
        ++chunks_since_checkpoint >=
            std::max<u64>(1, options.checkpoint_every_chunks)) {
      chunks_since_checkpoint = 0;
      save_checkpoint();
    }
  });

  // Final checkpoint first: it reads `agg`, which the moves below gut.
  if (!options.checkpoint_path.empty()) save_checkpoint();

  result.interrupted = stop.load(std::memory_order_relaxed);
  result.injections = agg.injections;
  result.failures = agg.failures;
  result.persistent = agg.persistent;
  result.pruned = agg.pruned;
  result.cache_hits = agg.cache_hits;
  result.cache_misses = agg.cache_misses;
  result.remote_hits = agg.remote_hits;
  result.remote_publishes = agg.remote_publishes;
  result.modeled_hardware_time = SimTime::picoseconds(agg.modeled_ps);
  result.phases = agg.phases;
  result.sensitive_bits = std::move(agg.sensitive);
  result.failures_by_field = std::move(agg.by_field);
  if (options.record_sampled_bits) result.sampled_bits = bits;
  std::sort(result.sensitive_bits.begin(), result.sensitive_bits.end(),
            [](const auto& a, const auto& b) { return a.addr < b.addr; });
  // Persist the store last: fresh verdicts first (flush is thread-safe, so
  // a shared store's other campaigns keep probing while this one writes),
  // then — only for a *completed* campaign — the manifest a later
  // recampaign diffs against.
  if (store) {
    result.cache_stores = store->flush();
    // A range run never writes the manifest: its counters cover one slice of
    // the universe, not the whole run a recampaign would diff against.
    if (!result.interrupted && !range_active) {
      CampaignManifest m;
      m.arch_fingerprint = plan.arch_fingerprint;
      m.stimulus_hash = plan.stimulus_hash;
      m.design_name = design.netlist->name();
      m.device_name = space.geometry().name;
      m.universe_bits = n;
      m.sample_bits = options.sample_bits;
      m.sample_seed = options.sample_seed;
      m.injections = result.injections;
      m.failures = result.failures;
      m.persistent = result.persistent;
      m.sensitive_digest = result.sensitive_digest(design);
      m.frame_hashes = plan.frame_hashes;
      m.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      try {
        save_campaign_manifest(
            campaign_manifest_path(store->dir(), m.device_name, m.design_name),
            m);
      } catch (const Error& e) {
        VSCRUB_WARN("campaign: cannot write manifest (", e.what(), ")");
      }
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (options.on_progress) options.on_progress(make_progress(result.wall_seconds));

  VSCRUB_INFO("campaign ", design.netlist->name(), ": ", result.injections,
              " injections (", result.resumed_injections, " resumed, ",
              result.pruned, " pruned", result.cache_enabled ? ", " : "",
              result.cache_enabled ? std::to_string(result.cache_hits) : "",
              result.cache_enabled ? " cached" : "", "), ", result.failures,
              " failures (", result.sensitivity() * 100.0, "%), ",
              pool->thread_count(), " workers, ", result.wall_seconds, "s",
              result.interrupted ? " [interrupted]" : "");
  return result;
}

RecampaignResult run_recampaign(const PlacedDesign& design,
                                const CampaignOptions& options) {
  VSCRUB_CHECK(options.store != nullptr || !options.cache_dir.empty(),
               "run_recampaign requires CampaignOptions::cache_dir or a "
               "shared store");
  const std::string store_dir =
      options.store != nullptr ? options.store->dir() : options.cache_dir;
  RecampaignResult rr;

  // Load the prior manifest *before* the campaign runs (a completed campaign
  // overwrites it). A missing or corrupt manifest degrades to "no prior":
  // the run is then an ordinary cache-filling campaign.
  CampaignManifest prior;
  const std::string manifest_path = campaign_manifest_path(
      store_dir, design.space->geometry().name, design.netlist->name());
  try {
    rr.had_prior = load_campaign_manifest(manifest_path, &prior);
  } catch (const Error& e) {
    VSCRUB_WARN("recampaign: unreadable manifest ", manifest_path, " (",
                e.what(), "); treating as cold");
  }
  if (rr.had_prior) {
    const std::vector<u64> frames = hash_bitstream_frames(design.bitstream);
    rr.frames_total = frames.size();
    if (prior.frame_hashes.size() == frames.size()) {
      for (std::size_t i = 0; i < frames.size(); ++i) {
        rr.frames_changed +=
            static_cast<u64>(frames[i] != prior.frame_hashes[i]);
      }
    } else {
      rr.frames_changed = frames.size();  // different device: all-new frames
    }
    rr.prior_injections = prior.injections;
    rr.prior_wall_seconds = prior.wall_seconds;
    rr.prior_sensitive_digest = prior.sensitive_digest;
    VSCRUB_INFO("recampaign ", design.netlist->name(), ": ",
                rr.frames_changed, "/", rr.frames_total,
                " frames changed vs prior run");
  }

  rr.result = run_campaign(design, options);

  rr.current_sensitive_digest = rr.result.sensitive_digest(design);
  rr.sensitive_match =
      rr.had_prior && rr.prior_sensitive_digest == rr.current_sensitive_digest;
  return rr;
}

}  // namespace vscrub
