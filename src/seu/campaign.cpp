#include "seu/campaign.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/log.h"
#include "common/rng.h"

namespace vscrub {

CampaignResult run_campaign(const PlacedDesign& design,
                            const CampaignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const ConfigSpace& space = *design.space;
  const u64 total_bits = space.total_bits();

  // Build the list of bits to inject.
  std::vector<u64> bits;
  if (options.sample_bits == 0 || options.sample_bits >= total_bits) {
    bits.resize(total_bits);
    for (u64 i = 0; i < total_bits; ++i) bits[i] = i;
  } else {
    // Sample without replacement via a partial Fisher–Yates over indices.
    Rng rng(options.sample_seed);
    bits.reserve(options.sample_bits);
    std::unordered_map<u64, u64> swapped;
    for (u64 i = 0; i < options.sample_bits; ++i) {
      const u64 j = i + rng.uniform(total_bits - i);
      u64 vi = swapped.count(i) ? swapped[i] : i;
      u64 vj = swapped.count(j) ? swapped[j] : j;
      bits.push_back(vj);
      swapped[j] = vi;
    }
  }

  CampaignResult result;
  result.device_bits = total_bits;
  result.design_slices = design.stats.slices_used;
  result.utilization = design.stats.utilization;

  std::mutex merge_mutex;
  ThreadPool pool(options.threads);
  const unsigned workers = pool.thread_count();

  pool.parallel_for(bits.size(), [&](u64 begin, u64 end) {
    SeuInjector injector(design, options.injection);
    u64 local_failures = 0, local_persistent = 0;
    SimTime local_time;
    std::vector<CampaignResult::SensitiveBit> local_sensitive;
    std::unordered_map<u8, u64> local_by_field;
    for (u64 i = begin; i < end; ++i) {
      const BitAddress addr = space.address_of_linear(bits[i]);
      const InjectionResult r = injector.inject(addr);
      local_time += r.modeled_time;
      if (r.output_error) {
        ++local_failures;
        if (r.persistent) ++local_persistent;
        if (options.record_sensitive_bits) {
          local_sensitive.push_back({addr, r.persistent, r.first_error_cycle,
                                     r.error_output_mask_lo});
        }
        const auto ref = space.tile_ref_of(addr);
        if (ref.valid) {
          const auto& meaning = ConfigSpace::meaning_of_tile_bit(ref.tile_bit);
          ++local_by_field[static_cast<u8>(meaning.kind)];
        }
      }
    }
    std::lock_guard lock(merge_mutex);
    result.failures += local_failures;
    result.persistent += local_persistent;
    result.modeled_hardware_time += local_time;
    result.sensitive_bits.insert(result.sensitive_bits.end(),
                                 local_sensitive.begin(),
                                 local_sensitive.end());
    for (const auto& [k, v] : local_by_field) result.failures_by_field[k] += v;
  });

  result.injections = bits.size();
  if (options.record_sampled_bits) result.sampled_bits = bits;
  std::sort(result.sensitive_bits.begin(), result.sensitive_bits.end(),
            [](const auto& a, const auto& b) { return a.addr < b.addr; });
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  VSCRUB_INFO("campaign ", design.netlist->name(), ": ", result.injections,
              " injections, ", result.failures, " failures (",
              result.sensitivity() * 100.0, "%), ", workers, " workers, ",
              result.wall_seconds, "s");
  return result;
}

}  // namespace vscrub
