// Campaign driver: exhaustive or sampled injection over the configuration
// space, multi-threaded, with the aggregate statistics of Tables I and II
// and the per-bit correlation data of §III-A.
#pragma once

#include <unordered_map>

#include "common/thread_pool.h"
#include "seu/injector.h"

namespace vscrub {

struct CampaignOptions {
  InjectionOptions injection;
  /// 0 => exhaustive over every configuration bit; otherwise a uniform
  /// random sample of this many distinct bits.
  u64 sample_bits = 0;
  u64 sample_seed = 99;
  unsigned threads = 0;  ///< 0 => hardware concurrency
  /// Record each sensitive bit (address + first-error data) for the
  /// correlation table. Costs memory on exhaustive campaigns.
  bool record_sensitive_bits = true;
  /// Record the sampled bit universe (linear indices) in the result, so a
  /// beam session can be restricted to the same universe.
  bool record_sampled_bits = false;
};

struct CampaignResult {
  u64 device_bits = 0;   ///< total configuration bits of the device
  u64 injections = 0;    ///< bits actually injected
  u64 failures = 0;      ///< injections producing output errors
  u64 persistent = 0;    ///< failures that survived repair without reset
  std::size_t design_slices = 0;
  double utilization = 0.0;

  double sensitivity() const {
    return injections ? static_cast<double>(failures) /
                            static_cast<double>(injections)
                      : 0.0;
  }
  /// Paper Table I: sensitivity with the area factored out.
  double normalized_sensitivity() const {
    return utilization > 0 ? sensitivity() / utilization : 0.0;
  }
  /// Paper Table II: persistent bits per sensitive bit.
  double persistence_ratio() const {
    return failures ? static_cast<double>(persistent) /
                          static_cast<double>(failures)
                    : 0.0;
  }
  /// Estimated sensitive-bit count for the whole device (scales the sampled
  /// rate up to the full configuration).
  double estimated_failures_device() const {
    return sensitivity() * static_cast<double>(device_bits);
  }

  SimTime modeled_hardware_time;  ///< SLAAC-1V time for the same campaign
  double wall_seconds = 0.0;

  struct SensitiveBit {
    BitAddress addr;
    bool persistent;
    u32 first_error_cycle;
    u64 error_output_mask_lo;
  };
  std::vector<SensitiveBit> sensitive_bits;
  /// The injected bit universe (only when options.record_sampled_bits).
  std::vector<u64> sampled_bits;

  /// Sensitive-bit counts by configuration-field kind (routing vs LUT vs
  /// control), for the cross-section analysis.
  std::unordered_map<u8, u64> failures_by_field;
};

/// Runs an injection campaign for a compiled design.
CampaignResult run_campaign(const PlacedDesign& design,
                            const CampaignOptions& options);

}  // namespace vscrub
