// Campaign driver: exhaustive or sampled injection over the configuration
// space, scheduled as fixed-size bit chunks pulled by pool workers from an
// atomic cursor, with live progress telemetry, periodic checkpointing, and
// the aggregate statistics of Tables I and II plus the per-bit correlation
// data of §III-A.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "seu/injector.h"

namespace vscrub {

class RemoteVerdictClient;
class VerdictStore;

/// Live telemetry handed to CampaignOptions::on_progress as chunks complete.
struct CampaignProgress {
  u64 injections_done = 0;
  u64 injections_total = 0;
  u64 failures = 0;
  u64 persistent = 0;
  u64 pruned = 0;  ///< injections short-circuited by observability pruning
  u64 cache_hits = 0;      ///< injections answered by the verdict store
  u64 chunks_done = 0;     ///< includes chunks restored from a checkpoint
  u64 chunks_total = 0;
  u64 chunks_resumed = 0;  ///< chunks skipped because a checkpoint covered them
  double elapsed_s = 0.0;
  double bits_per_s = 0.0;  ///< injection rate this run (excludes resumed work)
  double eta_s = 0.0;       ///< projected seconds to completion at that rate
  InjectionPhases phases;   ///< per-phase wall clock this run
};

struct CampaignOptions {
  InjectionOptions injection;
  /// 0 => exhaustive over every configuration bit; otherwise a uniform
  /// random sample of this many distinct bits.
  u64 sample_bits = 0;
  u64 sample_seed = 99;
  unsigned threads = 0;  ///< 0 => hardware concurrency
  /// Record each sensitive bit (address + first-error data) for the
  /// correlation table. Costs memory on exhaustive campaigns.
  bool record_sensitive_bits = true;
  /// Record the sampled bit universe (linear indices) in the result, so a
  /// beam session can be restricted to the same universe.
  bool record_sampled_bits = false;

  /// Fabric range restriction: when range_end > range_begin the campaign
  /// covers only universe positions [range_begin, min(range_end, n)) of the
  /// deterministic bit universe (exhaustive order or the seeded sample).
  /// Because the universe itself is identical for every range of the same
  /// campaign, disjoint ranges partition the one-shot run exactly and their
  /// order-independent sensitive digests XOR back to the one-shot digest —
  /// the distributed fabric's bit-identity invariant. A range run never
  /// writes the campaign manifest (its counters cover a slice, not the
  /// universe a recampaign would diff against).
  u64 range_begin = 0;
  u64 range_end = 0;  ///< 0 = whole universe

  /// Scheduler chunk size in bits; 0 => auto (total/256 clamped to
  /// [64, 4096]). Never derived from the thread count, so results and
  /// checkpoints are comparable across machines.
  u64 chunk_size = 0;
  /// Called (serialized, from worker threads) every `progress_every_chunks`
  /// completed chunks and once at the end. Return false to stop the
  /// campaign: in-flight chunks finish, the rest stay pending, the result
  /// comes back with `interrupted = true` (and a final checkpoint is written
  /// when checkpointing is on).
  std::function<bool(const CampaignProgress&)> on_progress;
  u64 progress_every_chunks = 8;
  /// When set, campaign progress is checkpointed here every
  /// `checkpoint_every_chunks` completed chunks (plus once at the end), and
  /// a compatible checkpoint found at this path resumes the campaign from
  /// where it stopped. An incompatible checkpoint (different device, design,
  /// options, or chunking) is ignored and overwritten.
  std::string checkpoint_path;
  u64 checkpoint_every_chunks = 32;
  /// Called (serialized, from worker threads) right after each periodic or
  /// final checkpoint save. The fabric worker uses this to ship the freshly
  /// written VSCK record to its coordinator as a range heartbeat.
  std::function<void()> on_checkpoint;

  /// When set, opens a content-addressed verdict store in this directory:
  /// bits whose key (arch fingerprint, stimulus, frame content, influence
  /// closure, bit index — see seu/cache_key.h) matches a stored verdict are
  /// answered from the store without simulation; everything injected fresh
  /// is stored back, and a campaign manifest is written on completion so a
  /// later run_recampaign() can diff against this run. Warm-cache results
  /// are bit-identical to cold runs; corrupt store files degrade to misses.
  std::string cache_dir;

  /// An already-open verdict store to use instead of opening cache_dir.
  /// Not owned; must outlive the campaign. This is how the vscrubd serving
  /// layer runs every concurrent request against one process-wide store so
  /// clients hit each other's cached verdicts (VerdictStore is thread-safe
  /// for shared find/put/flush). When set, cache_dir is ignored.
  VerdictStore* store = nullptr;

  /// A remote verdict tier (typically the coordinator's process-wide store
  /// reached over VSRP1): bits the local store misses are probed in one
  /// batched lookup per chunk, and fresh verdicts are published back in one
  /// batched call, so fabric workers reuse each other's work. Not owned;
  /// must outlive the campaign and be safe for concurrent batched calls.
  /// Remote hits replay the exact verdict an injection would produce, so
  /// results stay bit-identical with or without the tier; a dead remote
  /// degrades to misses, never to a failed campaign.
  RemoteVerdictClient* remote_store = nullptr;

  /// An external thread pool to schedule the campaign's chunks on instead of
  /// creating a pool per run. Not owned; must outlive the campaign. Several
  /// campaigns may share one pool concurrently (chunk scheduling waits on a
  /// per-call latch, not global pool idleness). When set, `threads` is
  /// ignored. The worker count never affects results, only wall clock.
  ThreadPool* pool = nullptr;

  // Fluent construction, so call sites can assemble options in one
  // expression instead of mutating an aggregate field-by-field.
  CampaignOptions& with_injection(const InjectionOptions& v) {
    injection = v;
    return *this;
  }
  CampaignOptions& with_sample(u64 bits, u64 seed = 99) {
    sample_bits = bits;
    sample_seed = seed;
    return *this;
  }
  CampaignOptions& with_exhaustive() {
    sample_bits = 0;
    return *this;
  }
  CampaignOptions& with_threads(unsigned v) {
    threads = v;
    return *this;
  }
  CampaignOptions& with_sensitive_bits(bool v) {
    record_sensitive_bits = v;
    return *this;
  }
  CampaignOptions& with_sampled_bits(bool v) {
    record_sampled_bits = v;
    return *this;
  }
  CampaignOptions& with_range(u64 begin, u64 end) {
    range_begin = begin;
    range_end = end;
    return *this;
  }
  CampaignOptions& with_chunk_size(u64 v) {
    chunk_size = v;
    return *this;
  }
  CampaignOptions& with_progress(std::function<bool(const CampaignProgress&)> cb,
                                 u64 every_chunks = 8) {
    on_progress = std::move(cb);
    progress_every_chunks = every_chunks;
    return *this;
  }
  CampaignOptions& with_checkpoint(std::string path, u64 every_chunks = 32) {
    checkpoint_path = std::move(path);
    checkpoint_every_chunks = every_chunks;
    return *this;
  }
  CampaignOptions& with_cache(std::string dir) {
    cache_dir = std::move(dir);
    return *this;
  }
  CampaignOptions& with_shared_store(VerdictStore* s) {
    store = s;
    return *this;
  }
  CampaignOptions& with_remote_store(RemoteVerdictClient* r) {
    remote_store = r;
    return *this;
  }
  CampaignOptions& with_shared_pool(ThreadPool* p) {
    pool = p;
    return *this;
  }
};

struct CampaignResult {
  u64 device_bits = 0;   ///< total configuration bits of the device
  u64 injections = 0;    ///< bits actually injected
  u64 failures = 0;      ///< injections producing output errors
  u64 persistent = 0;    ///< failures that survived repair without reset
  std::size_t design_slices = 0;
  double utilization = 0.0;

  double sensitivity() const {
    return injections ? static_cast<double>(failures) /
                            static_cast<double>(injections)
                      : 0.0;
  }
  /// Paper Table I: sensitivity with the area factored out.
  double normalized_sensitivity() const {
    return utilization > 0 ? sensitivity() / utilization : 0.0;
  }
  /// Paper Table II: persistent bits per sensitive bit.
  double persistence_ratio() const {
    return failures ? static_cast<double>(persistent) /
                          static_cast<double>(failures)
                    : 0.0;
  }
  /// Estimated sensitive-bit count for the whole device (scales the sampled
  /// rate up to the full configuration).
  double estimated_failures_device() const {
    return sensitivity() * static_cast<double>(device_bits);
  }

  SimTime modeled_hardware_time;  ///< SLAAC-1V time for the same campaign
  double wall_seconds = 0.0;

  /// True when a progress callback stopped the campaign early; the counters
  /// above then cover only the chunks that completed.
  bool interrupted = false;
  /// Injections restored from a checkpoint rather than run in this process.
  u64 resumed_injections = 0;
  /// Injections short-circuited by observability pruning (still counted in
  /// `injections`; pruning does not change any result, only host time).
  u64 pruned = 0;
  /// Host wall clock by injection phase, summed across workers.
  InjectionPhases phases;

  /// Verdict-store telemetry (all zero unless options.cache_dir was set).
  bool cache_enabled = false;
  u64 cache_hits = 0;    ///< injections answered from the store
  u64 cache_misses = 0;  ///< injections that had to run (includes pruned)
  u64 cache_stores = 0;  ///< fresh verdicts persisted by the final flush
  /// Remote-tier telemetry (all zero unless options.remote_store was set).
  u64 remote_hits = 0;       ///< verdicts answered by the remote tier
  u64 remote_publishes = 0;  ///< fresh verdicts published to the remote tier

  struct SensitiveBit {
    BitAddress addr;
    bool persistent;
    u32 first_error_cycle;
    u64 error_output_mask_lo;
    /// Provenance: true when the verdict was replayed from the store rather
    /// than produced by a fresh injection in this run.
    bool from_cache = false;
  };
  std::vector<SensitiveBit> sensitive_bits;
  /// The injected bit universe (only when options.record_sampled_bits).
  std::vector<u64> sampled_bits;

  /// Sensitive-bit counts by configuration-field kind (routing vs LUT vs
  /// control), for the cross-section analysis.
  std::unordered_map<u8, u64> failures_by_field;

  /// The sensitivity map as a linear-bit-index set, the form the beam
  /// validation and mission simulator consume.
  std::unordered_set<u64> sensitive_set(const PlacedDesign& design) const;

  /// Order-independent digest of the sensitive-bit list (linear index +
  /// verdict fields; provenance excluded, so warm and cold runs of the same
  /// design digest identically). This is what recampaigns compare.
  u64 sensitive_digest(const PlacedDesign& design) const;
};

/// Runs an injection campaign for a compiled design.
CampaignResult run_campaign(const PlacedDesign& design,
                            const CampaignOptions& options);

/// A campaign run against a prior manifest in the same verdict store: the
/// embedded result plus the frame-level delta against the prior run and the
/// reuse/speedup accounting the bench job publishes.
struct RecampaignResult {
  CampaignResult result;

  /// False when the store held no manifest for this (device, design) pair —
  /// the run then degenerates to a plain (cold, but cache-filling) campaign.
  bool had_prior = false;
  u64 frames_total = 0;
  u64 frames_changed = 0;  ///< frames whose content hash moved vs the prior
  u64 prior_injections = 0;
  double prior_wall_seconds = 0.0;
  u64 prior_sensitive_digest = 0;
  u64 current_sensitive_digest = 0;
  /// True when a prior digest exists and matches this run's — for an
  /// unchanged design this is the warm==cold bit-identity check.
  bool sensitive_match = false;

  double hit_rate() const {
    return result.injections ? static_cast<double>(result.cache_hits) /
                                   static_cast<double>(result.injections)
                             : 0.0;
  }
  double speedup_vs_prior() const {
    return (had_prior && result.wall_seconds > 0)
               ? prior_wall_seconds / result.wall_seconds
               : 0.0;
  }
};

/// Delta re-campaign: loads the prior manifest for this (device, design)
/// pair from options.cache_dir (which must be set), diffs the design's
/// frames against it, then runs the campaign with the verdict store — only
/// bits whose content-addressed key moved (changed frames, or influence
/// closures touching changed logic) are re-injected; the rest replay from
/// the store. Digest comparison assumes the same universe/sampling options
/// as the prior run.
RecampaignResult run_recampaign(const PlacedDesign& design,
                                const CampaignOptions& options);

}  // namespace vscrub
