// Report writers for campaign results: the paper's flow logs discrepancies
// to files and builds per-bit correlation tables offline (§III-A); these
// emitters produce machine-readable CSV and human-readable summaries.
#pragma once

#include <string>

#include "report/json.h"
#include "seu/campaign.h"

namespace vscrub {

/// CSV of every sensitive bit: column,frame,offset,linear,persistent,
/// first_error_cycle,error_output_mask. This is the "correlation table"
/// relating bitstream locations to output errors (§III-A).
std::string correlation_table_csv(const ConfigSpace& space,
                                  const CampaignResult& result);

/// One-paragraph human-readable summary.
std::string campaign_summary(const CampaignResult& result);

/// The campaign result as a versioned JSON report ("kind": "campaign"),
/// through the shared report/json serializer.
JsonReport campaign_report_json(const PlacedDesign& design,
                                const CampaignResult& result);

/// The recampaign result ("kind": "recampaign"): every campaign field plus
/// the frame delta, verdict reuse rate and speedup vs the prior run.
JsonReport recampaign_report_json(const PlacedDesign& design,
                                  const RecampaignResult& rr);

/// Writes `text` to `path` (convenience).
void write_text_file(const std::string& text, const std::string& path);

}  // namespace vscrub
