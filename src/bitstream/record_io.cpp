#include "bitstream/record_io.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/crc.h"
#include "common/log.h"

namespace vscrub {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

RecordWriter::RecordWriter(const std::string& magic) {
  buf_.insert(buf_.end(), magic.begin(), magic.end());
}

void RecordWriter::put_u8(u8 v) { buf_.push_back(v); }

void RecordWriter::put_u16(u16 v) {
  buf_.push_back(static_cast<u8>(v));
  buf_.push_back(static_cast<u8>(v >> 8));
}

void RecordWriter::put_u32(u32 v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
}

void RecordWriter::put_u64(u64 v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
}

void RecordWriter::put_string(const std::string& s) {
  put_u32(static_cast<u32>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void RecordWriter::put_bytes(const u8* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

void RecordWriter::write(const std::string& path) const {
  std::vector<u8> out = buf_;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<u8>(crc32(buf_) >> (8 * i)));
  }
  const std::string tmp = path + ".tmp";
  {
    const File f(std::fopen(tmp.c_str(), "wb"));
    VSCRUB_CHECK(f != nullptr, "cannot open " + tmp + " for writing");
    VSCRUB_CHECK(std::fwrite(out.data(), 1, out.size(), f.get()) == out.size(),
                 "short write to " + tmp);
    VSCRUB_CHECK(std::fflush(f.get()) == 0, "flush failed for " + tmp);
  }
  VSCRUB_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot rename " + tmp + " to " + path);
}

RecordReader::RecordReader(const std::string& path, const std::string& magic)
    : path_(path) {
  const File f(std::fopen(path.c_str(), "rb"));
  VSCRUB_CHECK(f != nullptr, "cannot open " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  VSCRUB_CHECK(size > 0, "empty record " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  buf_.resize(static_cast<std::size_t>(size));
  VSCRUB_CHECK(std::fread(buf_.data(), 1, buf_.size(), f.get()) == buf_.size(),
               "short read from " + path);

  VSCRUB_CHECK(buf_.size() > magic.size() + 4, "record too small: " + path);
  VSCRUB_CHECK(std::equal(magic.begin(), magic.end(), buf_.begin()),
               "bad record magic in " + path);
  // CRC trailer covers everything before it.
  pos_ = buf_.size() - 4;
  const u32 stored_crc = get_u32();
  buf_.resize(buf_.size() - 4);
  VSCRUB_CHECK(crc32(buf_) == stored_crc,
               "record CRC mismatch (corrupted file): " + path);
  pos_ = magic.size();
}

u8 RecordReader::get_u8() {
  VSCRUB_CHECK(pos_ + 1 <= buf_.size(), "record truncated: " + path_);
  return buf_[pos_++];
}

u16 RecordReader::get_u16() {
  VSCRUB_CHECK(pos_ + 2 <= buf_.size(), "record truncated: " + path_);
  const u16 v = static_cast<u16>(buf_[pos_] | (buf_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

u32 RecordReader::get_u32() {
  VSCRUB_CHECK(pos_ + 4 <= buf_.size(), "record truncated: " + path_);
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(buf_[pos_++]) << (8 * i);
  return v;
}

u64 RecordReader::get_u64() {
  VSCRUB_CHECK(pos_ + 8 <= buf_.size(), "record truncated: " + path_);
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(buf_[pos_++]) << (8 * i);
  return v;
}

std::string RecordReader::get_string() {
  const u32 n = get_u32();
  VSCRUB_CHECK(pos_ + n <= buf_.size(), "record truncated: " + path_);
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

void RecordReader::get_bytes(u8* out, std::size_t n) {
  VSCRUB_CHECK(pos_ + n <= buf_.size(), "record truncated: " + path_);
  std::copy(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n), out);
  pos_ += n;
}

bool record_exists(const std::string& path, const std::string& magic) {
  const File f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::string head(magic.size(), '\0');
  if (std::fread(head.data(), 1, head.size(), f.get()) != head.size()) {
    return false;
  }
  return head == magic;
}

}  // namespace vscrub
