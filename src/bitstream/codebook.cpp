#include "bitstream/codebook.h"

#include <algorithm>

namespace vscrub {

CrcCodebook::CrcCodebook(const Bitstream& golden)
    : crcs_(golden.frame_count()), masked_(golden.frame_count(), false) {
  for (u32 gf = 0; gf < golden.frame_count(); ++gf) {
    crcs_[gf] = compute(golden.frame(gf));
  }
}

u16 CrcCodebook::compute(const BitVector& frame_data) {
  const std::vector<u8> bytes = frame_data.to_bytes();
  return crc16_ccitt(bytes);
}

std::size_t CrcCodebook::masked_count() const {
  return static_cast<std::size_t>(
      std::count(masked_.begin(), masked_.end(), true));
}

bool CrcCodebook::check(u32 global_frame, const BitVector& readback_data) const {
  if (masked_[global_frame]) return true;
  return compute(readback_data) == crcs_[global_frame];
}

}  // namespace vscrub
