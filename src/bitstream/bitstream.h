// Configuration bitstream container with frame-granular and field-granular
// access. A Bitstream is pure data; behaviour comes from decoding it in
// sim/FabricSim. The SEU injector flips bits here and pushes frames through
// the device's configuration port, exactly as the paper's tool flow does.
#pragma once

#include <memory>
#include <vector>

#include "common/bitvector.h"
#include "fabric/config_space.h"
#include "fabric/routing_model.h"

namespace vscrub {

class Bitstream {
 public:
  explicit Bitstream(std::shared_ptr<const ConfigSpace> space);

  const ConfigSpace& space() const { return *space_; }
  std::shared_ptr<const ConfigSpace> space_ptr() const { return space_; }

  u32 frame_count() const { return static_cast<u32>(frames_.size()); }
  const BitVector& frame(u32 global_frame) const { return frames_[global_frame]; }
  BitVector& frame(u32 global_frame) { return frames_[global_frame]; }
  const BitVector& frame(const FrameAddress& fa) const {
    return frames_[space_->global_frame_index(fa)];
  }
  BitVector& frame(const FrameAddress& fa) {
    return frames_[space_->global_frame_index(fa)];
  }

  bool get_bit(const BitAddress& addr) const {
    return frame(addr.frame).get(addr.offset);
  }
  void set_bit(const BitAddress& addr, bool v) { frame(addr.frame).set(addr.offset, v); }
  void flip_bit(const BitAddress& addr) { frame(addr.frame).flip(addr.offset); }

  // ---- Typed tile-field access (used by bitgen and tests) -------------------
  u64 read_tile_field(TileCoord t, FieldKind kind, u8 unit, unsigned nbits) const;
  void write_tile_field(TileCoord t, FieldKind kind, u8 unit, unsigned nbits, u64 value);

  u16 lut_truth(TileCoord t, int lut) const {
    return static_cast<u16>(read_tile_field(t, FieldKind::kLutTruth,
                                            static_cast<u8>(lut), kLutTruthBits));
  }
  void set_lut_truth(TileCoord t, int lut, u16 truth) {
    write_tile_field(t, FieldKind::kLutTruth, static_cast<u8>(lut),
                     kLutTruthBits, truth);
  }
  LutMode lut_mode(TileCoord t, int lut) const {
    const u64 code = read_tile_field(t, FieldKind::kLutMode, static_cast<u8>(lut), 2);
    return code == 3 ? LutMode::kLut : static_cast<LutMode>(code);
  }
  void set_lut_mode(TileCoord t, int lut, LutMode mode) {
    write_tile_field(t, FieldKind::kLutMode, static_cast<u8>(lut), 2,
                     static_cast<u64>(mode));
  }
  bool ff_init(TileCoord t, int ff) const {
    return read_tile_field(t, FieldKind::kFfInit, static_cast<u8>(ff), 1) != 0;
  }
  void set_ff_init(TileCoord t, int ff, bool v) {
    write_tile_field(t, FieldKind::kFfInit, static_cast<u8>(ff), 1, v);
  }
  bool ff_used(TileCoord t, int ff) const {
    return read_tile_field(t, FieldKind::kFfUsed, static_cast<u8>(ff), 1) != 0;
  }
  void set_ff_used(TileCoord t, int ff, bool v) {
    write_tile_field(t, FieldKind::kFfUsed, static_cast<u8>(ff), 1, v);
  }
  bool ff_dsrc_bypass(TileCoord t, int ff) const {
    return read_tile_field(t, FieldKind::kFfDSrc, static_cast<u8>(ff), 1) != 0;
  }
  void set_ff_dsrc_bypass(TileCoord t, int ff, bool v) {
    write_tile_field(t, FieldKind::kFfDSrc, static_cast<u8>(ff), 1, v);
  }
  bool slice_clk_en(TileCoord t, int slice) const {
    return read_tile_field(t, FieldKind::kSliceClkEn, static_cast<u8>(slice), 1) != 0;
  }
  void set_slice_clk_en(TileCoord t, int slice, bool v) {
    write_tile_field(t, FieldKind::kSliceClkEn, static_cast<u8>(slice), 1, v);
  }
  u8 imux_code(TileCoord t, int pin) const {
    return static_cast<u8>(read_tile_field(t, FieldKind::kImux,
                                           static_cast<u8>(pin), kImuxBits));
  }
  void set_imux_code(TileCoord t, int pin, u8 code) {
    write_tile_field(t, FieldKind::kImux, static_cast<u8>(pin), kImuxBits, code);
  }
  u8 omux_code(TileCoord t, Dir dir, int windex) const {
    const u8 wire = static_cast<u8>(static_cast<int>(dir) * kWiresPerDir + windex);
    return static_cast<u8>(read_tile_field(t, FieldKind::kOmux, wire, kOmuxBits));
  }
  void set_omux_code(TileCoord t, Dir dir, int windex, u8 code) {
    const u8 wire = static_cast<u8>(static_cast<int>(dir) * kWiresPerDir + windex);
    write_tile_field(t, FieldKind::kOmux, wire, kOmuxBits, code);
  }

  // ---- BRAM ------------------------------------------------------------------
  bool bram_content_bit(u16 bram_col, u16 block, u16 bit) const;
  void set_bram_content_bit(u16 bram_col, u16 block, u16 bit, bool v);
  u8 bram_config(u16 bram_col, u16 block) const;
  void set_bram_config(u16 bram_col, u16 block, u8 cfg);

  /// Frames differing from `other` (global frame indices).
  std::vector<u32> differing_frames(const Bitstream& other) const;

  bool operator==(const Bitstream& other) const { return frames_ == other.frames_; }

 private:
  BitAddress bram_content_address(u16 bram_col, u16 block, u16 bit) const;

  std::shared_ptr<const ConfigSpace> space_;
  std::vector<BitVector> frames_;
};

}  // namespace vscrub
