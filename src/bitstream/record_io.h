// CRC-protected on-disk records: the little-endian, magic-tagged,
// crc32-trailed container shared by bitstream images ("VSCB1") and campaign
// checkpoints ("VSCK1"). A RecordWriter accumulates fields and writes the
// whole record atomically (tmp file + rename), so a reader never observes a
// half-written file; a RecordReader verifies magic and CRC up front and then
// hands out fields with bounds checking.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vscrub {

class RecordWriter {
 public:
  /// Starts a record with the given magic tag (e.g. "VSCB1").
  explicit RecordWriter(const std::string& magic);

  void put_u8(u8 v);
  void put_u16(u16 v);
  void put_u32(u32 v);
  void put_u64(u64 v);
  /// Length-prefixed (u32) byte string.
  void put_string(const std::string& s);
  /// Raw bytes, no length prefix (callers encode their own counts).
  void put_bytes(const u8* data, std::size_t n);

  const std::vector<u8>& bytes() const { return buf_; }

  /// Appends the crc32 trailer (over everything accumulated so far) and
  /// writes the record to `path` atomically: the bytes land in `path`.tmp
  /// first and are renamed into place, so an interrupted write leaves any
  /// previous record intact.
  void write(const std::string& path) const;

 private:
  std::vector<u8> buf_;
};

class RecordReader {
 public:
  /// Loads `path`, checks the magic tag and the crc32 trailer, and positions
  /// the cursor on the first field after the magic. Throws (VSCRUB_CHECK) on
  /// any mismatch.
  RecordReader(const std::string& path, const std::string& magic);

  u8 get_u8();
  u16 get_u16();
  u32 get_u32();
  u64 get_u64();
  std::string get_string();
  void get_bytes(u8* out, std::size_t n);

  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::vector<u8> buf_;  ///< payload without the CRC trailer
  std::size_t pos_ = 0;
  std::string path_;  ///< for error messages
};

/// True when `path` exists and carries the given magic tag (cheap sniff; no
/// CRC verification).
bool record_exists(const std::string& path, const std::string& magic);

}  // namespace vscrub
