// CRC codebook: the table of per-frame CRCs the Actel fault manager keeps in
// local SRAM (paper §II-A: "The calculated CRC is then compared with a
// codebook of stored CRCs"). Frames holding dynamic LUT/BRAM state can be
// masked out of checking (paper §IV-A).
#pragma once

#include <vector>

#include "bitstream/bitstream.h"
#include "common/crc.h"

namespace vscrub {

class CrcCodebook {
 public:
  CrcCodebook() = default;

  /// Builds the codebook from a golden bitstream.
  explicit CrcCodebook(const Bitstream& golden);

  std::size_t frame_count() const { return crcs_.size(); }
  u16 frame_crc(u32 global_frame) const { return crcs_[global_frame]; }

  /// Marks a frame as excluded from checking (dynamic state lives there).
  void mask_frame(u32 global_frame) { masked_[global_frame] = true; }
  bool is_masked(u32 global_frame) const { return masked_[global_frame]; }
  std::size_t masked_count() const;

  /// Checks readback data for one frame; masked frames always pass.
  bool check(u32 global_frame, const BitVector& readback_data) const;

  static u16 compute(const BitVector& frame_data);

 private:
  std::vector<u16> crcs_;
  std::vector<bool> masked_;
};

}  // namespace vscrub
