#include "bitstream/image_io.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/crc.h"

namespace vscrub {
namespace {

constexpr char kMagic[5] = {'V', 'S', 'C', 'B', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void put_u32(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
void put_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
}
u32 get_u32(const std::vector<u8>& in, std::size_t& pos) {
  VSCRUB_CHECK(pos + 4 <= in.size(), "image truncated");
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(in[pos++]) << (8 * i);
  return v;
}
u16 get_u16(const std::vector<u8>& in, std::size_t& pos) {
  VSCRUB_CHECK(pos + 2 <= in.size(), "image truncated");
  u16 v = static_cast<u16>(in[pos] | (in[pos + 1] << 8));
  pos += 2;
  return v;
}

}  // namespace

void save_bitstream(const Bitstream& image, const std::string& path) {
  const DeviceGeometry& geom = image.space().geometry();
  std::vector<u8> out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_u16(out, geom.rows);
  put_u16(out, geom.cols);
  put_u16(out, geom.bram_columns);
  put_u16(out, geom.frame_pad_slots);
  put_u32(out, static_cast<u32>(geom.name.size()));
  out.insert(out.end(), geom.name.begin(), geom.name.end());
  put_u32(out, image.frame_count());
  for (u32 gf = 0; gf < image.frame_count(); ++gf) {
    const auto bytes = image.frame(gf).to_bytes();
    put_u32(out, static_cast<u32>(image.frame(gf).size()));
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  put_u32(out, crc32(out));

  const File f(std::fopen(path.c_str(), "wb"));
  VSCRUB_CHECK(f != nullptr, "cannot open " + path + " for writing");
  VSCRUB_CHECK(std::fwrite(out.data(), 1, out.size(), f.get()) == out.size(),
               "short write to " + path);
}

LoadedImage load_bitstream(const std::string& path) {
  const File f(std::fopen(path.c_str(), "rb"));
  VSCRUB_CHECK(f != nullptr, "cannot open " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  VSCRUB_CHECK(size > 0, "empty image " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<u8> in(static_cast<std::size_t>(size));
  VSCRUB_CHECK(std::fread(in.data(), 1, in.size(), f.get()) == in.size(),
               "short read from " + path);

  VSCRUB_CHECK(in.size() > sizeof(kMagic) + 4, "image too small");
  VSCRUB_CHECK(std::equal(kMagic, kMagic + sizeof(kMagic), in.begin()),
               "bad image magic");
  // CRC trailer covers everything before it.
  std::size_t pos = in.size() - 4;
  const u32 stored_crc = get_u32(in, pos);
  in.resize(in.size() - 4);
  VSCRUB_CHECK(crc32(in) == stored_crc, "image CRC mismatch (corrupted file)");

  pos = sizeof(kMagic);
  DeviceGeometry geom;
  geom.rows = get_u16(in, pos);
  geom.cols = get_u16(in, pos);
  geom.bram_columns = get_u16(in, pos);
  geom.frame_pad_slots = get_u16(in, pos);
  const u32 name_len = get_u32(in, pos);
  VSCRUB_CHECK(pos + name_len <= in.size(), "image truncated");
  geom.name.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
                   in.begin() + static_cast<std::ptrdiff_t>(pos + name_len));
  pos += name_len;

  auto space = std::make_shared<const ConfigSpace>(geom);
  LoadedImage loaded{geom, Bitstream(space)};
  const u32 frames = get_u32(in, pos);
  VSCRUB_CHECK(frames == loaded.bits.frame_count(),
               "image frame count does not match geometry");
  for (u32 gf = 0; gf < frames; ++gf) {
    const u32 nbits = get_u32(in, pos);
    VSCRUB_CHECK(nbits == loaded.bits.frame(gf).size(),
                 "frame size mismatch in image");
    const std::size_t nbytes = (nbits + 7) / 8;
    VSCRUB_CHECK(pos + nbytes <= in.size(), "image truncated");
    const std::vector<u8> bytes(
        in.begin() + static_cast<std::ptrdiff_t>(pos),
        in.begin() + static_cast<std::ptrdiff_t>(pos + nbytes));
    loaded.bits.frame(gf) = BitVector::from_bytes(bytes, nbits);
    pos += nbytes;
  }
  return loaded;
}

Bitstream load_bitstream(std::shared_ptr<const ConfigSpace> space,
                         const std::string& path) {
  LoadedImage loaded = load_bitstream(path);
  const DeviceGeometry& want = space->geometry();
  VSCRUB_CHECK(loaded.geometry.rows == want.rows &&
                   loaded.geometry.cols == want.cols &&
                   loaded.geometry.bram_columns == want.bram_columns &&
                   loaded.geometry.frame_pad_slots == want.frame_pad_slots,
               "image geometry does not match the target device");
  Bitstream bits(std::move(space));
  for (u32 gf = 0; gf < bits.frame_count(); ++gf) {
    bits.frame(gf) = loaded.bits.frame(gf);
  }
  return bits;
}

}  // namespace vscrub
