#include "bitstream/image_io.h"

#include <memory>
#include <vector>

#include "bitstream/record_io.h"

namespace vscrub {
namespace {

// Byte-for-byte the historical format; only the I/O plumbing moved to the
// shared record layer (which adds atomic tmp+rename writes).
const std::string kMagic = "VSCB1";

}  // namespace

void save_bitstream(const Bitstream& image, const std::string& path) {
  const DeviceGeometry& geom = image.space().geometry();
  RecordWriter w(kMagic);
  w.put_u16(geom.rows);
  w.put_u16(geom.cols);
  w.put_u16(geom.bram_columns);
  w.put_u16(geom.frame_pad_slots);
  w.put_string(geom.name);
  w.put_u32(image.frame_count());
  for (u32 gf = 0; gf < image.frame_count(); ++gf) {
    const auto bytes = image.frame(gf).to_bytes();
    w.put_u32(static_cast<u32>(image.frame(gf).size()));
    w.put_bytes(bytes.data(), bytes.size());
  }
  w.write(path);
}

LoadedImage load_bitstream(const std::string& path) {
  RecordReader r(path, kMagic);
  DeviceGeometry geom;
  geom.rows = r.get_u16();
  geom.cols = r.get_u16();
  geom.bram_columns = r.get_u16();
  geom.frame_pad_slots = r.get_u16();
  geom.name = r.get_string();

  auto space = std::make_shared<const ConfigSpace>(geom);
  LoadedImage loaded{geom, Bitstream(space)};
  const u32 frames = r.get_u32();
  VSCRUB_CHECK(frames == loaded.bits.frame_count(),
               "image frame count does not match geometry");
  for (u32 gf = 0; gf < frames; ++gf) {
    const u32 nbits = r.get_u32();
    VSCRUB_CHECK(nbits == loaded.bits.frame(gf).size(),
                 "frame size mismatch in image");
    std::vector<u8> bytes((nbits + 7) / 8);
    r.get_bytes(bytes.data(), bytes.size());
    loaded.bits.frame(gf) = BitVector::from_bytes(bytes, nbits);
  }
  return loaded;
}

Bitstream load_bitstream(std::shared_ptr<const ConfigSpace> space,
                         const std::string& path) {
  LoadedImage loaded = load_bitstream(path);
  const DeviceGeometry& want = space->geometry();
  VSCRUB_CHECK(loaded.geometry.rows == want.rows &&
                   loaded.geometry.cols == want.cols &&
                   loaded.geometry.bram_columns == want.bram_columns &&
                   loaded.geometry.frame_pad_slots == want.frame_pad_slots,
               "image geometry does not match the target device");
  Bitstream bits(std::move(space));
  for (u32 gf = 0; gf < bits.frame_count(); ++gf) {
    bits.frame(gf) = loaded.bits.frame(gf);
  }
  return bits;
}

}  // namespace vscrub
