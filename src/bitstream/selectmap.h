// Timing model of the Virtex SelectMAP configuration interface plus the host
// overheads around it. All on-orbit and bench-test timing numbers in the
// paper trace back to this port: 180 ms to readback+CRC three XQVR1000s,
// ~214 us per injected bit on the SLAAC-1V, ~430 us per accelerator-test
// loop iteration.
//
// The model is deliberately simple: cost = fixed per-operation overhead +
// per-byte transfer cost. Two overhead profiles are provided — the Actel
// fault manager (tight FPGA-to-FPGA coupling) and the host PCI path on the
// SLAAC-1V (driver + board round trips dominate).
#pragma once

#include "common/bitvector.h"
#include "common/rng.h"
#include "common/types.h"
#include "fabric/config_space.h"

namespace vscrub {

struct SelectMapTiming {
  /// Per-byte transfer time. SelectMAP is byte-wide; 50 MHz CCLK -> 20 ns.
  SimTime byte_time = SimTime::nanoseconds(20);
  /// Fixed cost per frame operation: address setup, command words, sync.
  SimTime frame_overhead = SimTime::microseconds(9.5);
  /// Fixed cost per host-initiated operation (PCI driver round trip). Zero
  /// for the on-board Actel path.
  SimTime op_overhead = SimTime::picoseconds(0);

  SimTime frame_op(u32 frame_bytes) const {
    return op_overhead + frame_overhead + byte_time * static_cast<i64>(frame_bytes);
  }

  /// On-board fault-manager profile (used for the 180 ms scrub-cycle model).
  static SelectMapTiming actel_profile() { return SelectMapTiming{}; }

  /// Host-PCI profile (SLAAC-1V injection testbed). Calibrated so that one
  /// injection iteration — corrupt-frame write + observation window + repair
  /// write — lands near the paper's 214 us (§III-A: "a single bit can be
  /// modified and loaded in 100 us", total loop 214 us).
  static SelectMapTiming pci_profile() {
    SelectMapTiming t;
    t.op_overhead = SimTime::microseconds(87);
    t.frame_overhead = SimTime::microseconds(9.5);
    return t;
  }
};

/// Fault model of the scrub datapath itself. The paper treats readback,
/// flash fetch and partial reconfiguration as ideal; deployed scrubbers
/// (ARICH at Belle II, PDR scrubbers) report that the link upsets too:
/// readback shift registers flip bits in transit, transfers hang and must be
/// retried. All rates default to zero (ideal link, exact legacy behaviour);
/// the sampling is seeded so every campaign/mission stays deterministic.
struct ScrubLinkFaults {
  /// Per frame-readback probability that the *returned* data has one bit
  /// flipped by noise in the readback path. The configuration memory is
  /// untouched — repairing on such a read would be a false repair.
  double readback_flip_prob = 0.0;
  /// Per transfer-attempt probability that the SelectMAP transaction times
  /// out (watchdog fires) and must be retried.
  double transfer_timeout_prob = 0.0;
  /// Retries after the first timed-out attempt; exceeding them is an
  /// exhaustion the scrubber escalates to a reset.
  u32 max_transfer_retries = 3;
  /// Bus time lost per timed-out attempt (watchdog detection latency).
  SimTime timeout_cost = SimTime::microseconds(50);
  /// Backoff before retry k (0-based) is backoff_base * 2^k.
  SimTime backoff_base = SimTime::microseconds(10);
  u64 seed = 0x5eed;

  bool enabled() const {
    return readback_flip_prob > 0.0 || transfer_timeout_prob > 0.0;
  }

  /// Paper-plausible on-orbit rates: noise events a few times per hour over
  /// a board's ~180 ms scrub cycle, timeouts an order of magnitude rarer.
  static ScrubLinkFaults leo_profile() {
    ScrubLinkFaults f;
    f.readback_flip_prob = 1e-7;
    f.transfer_timeout_prob = 1e-8;
    return f;
  }
};

/// Outcome of one (possibly retried) frame transfer through the link.
struct TransferResult {
  SimTime cost;      ///< total modeled time, timeouts and backoff included
  u32 attempts = 1;  ///< 1 = first try succeeded
  bool ok = true;    ///< false when retries were exhausted
};

/// Accumulates configuration-port activity time for one device.
class SelectMapPort {
 public:
  SelectMapPort(const ConfigSpace* space, SelectMapTiming timing,
                const ScrubLinkFaults& faults = {})
      : space_(space), timing_(timing), faults_(faults), rng_(faults.seed) {}

  const SelectMapTiming& timing() const { return timing_; }
  const ScrubLinkFaults& faults() const { return faults_; }
  SimTime elapsed() const { return elapsed_; }
  void reset_elapsed() { elapsed_ = SimTime{}; }

  /// Time cost of reading back / writing one frame.
  SimTime frame_cost(const FrameAddress& fa) const {
    const u32 bytes = (space_->frame_bits(fa.kind) + 7) / 8;
    return timing_.frame_op(bytes);
  }

  void charge_frame(const FrameAddress& fa) { elapsed_ += frame_cost(fa); }
  void charge(SimTime t) { elapsed_ += t; }

  /// Samples one frame transfer against the link fault model: timed-out
  /// attempts cost timeout_cost plus exponential backoff; success costs
  /// frame_cost(fa). With the fault model disabled this is exactly
  /// {frame_cost(fa), 1, true} and consumes no randomness.
  TransferResult transfer(const FrameAddress& fa);

  /// Samples readback-path noise for frame data just read back: with
  /// probability readback_flip_prob flips one uniformly-chosen bit of `data`
  /// in place. Returns true when noise was injected.
  bool corrupt_readback(BitVector& data);

  struct LinkStats {
    u64 transfers = 0;
    u64 timeouts = 0;           ///< timed-out attempts (retried or not)
    u64 retries_exhausted = 0;  ///< transfers that never completed
    u64 noise_flips = 0;        ///< readback bits flipped in transit
  };
  const LinkStats& link_stats() const { return link_stats_; }

  /// Time to read back every frame of the device (one scrub pass of one
  /// device, before CRC compare overheads).
  SimTime full_readback_cost() const;

 private:
  const ConfigSpace* space_;
  SelectMapTiming timing_;
  ScrubLinkFaults faults_;
  Rng rng_;
  LinkStats link_stats_;
  SimTime elapsed_;
};

}  // namespace vscrub
