// Timing model of the Virtex SelectMAP configuration interface plus the host
// overheads around it. All on-orbit and bench-test timing numbers in the
// paper trace back to this port: 180 ms to readback+CRC three XQVR1000s,
// ~214 us per injected bit on the SLAAC-1V, ~430 us per accelerator-test
// loop iteration.
//
// The model is deliberately simple: cost = fixed per-operation overhead +
// per-byte transfer cost. Two overhead profiles are provided — the Actel
// fault manager (tight FPGA-to-FPGA coupling) and the host PCI path on the
// SLAAC-1V (driver + board round trips dominate).
#pragma once

#include "common/types.h"
#include "fabric/config_space.h"

namespace vscrub {

struct SelectMapTiming {
  /// Per-byte transfer time. SelectMAP is byte-wide; 50 MHz CCLK -> 20 ns.
  SimTime byte_time = SimTime::nanoseconds(20);
  /// Fixed cost per frame operation: address setup, command words, sync.
  SimTime frame_overhead = SimTime::microseconds(9.5);
  /// Fixed cost per host-initiated operation (PCI driver round trip). Zero
  /// for the on-board Actel path.
  SimTime op_overhead = SimTime::picoseconds(0);

  SimTime frame_op(u32 frame_bytes) const {
    return op_overhead + frame_overhead + byte_time * static_cast<i64>(frame_bytes);
  }

  /// On-board fault-manager profile (used for the 180 ms scrub-cycle model).
  static SelectMapTiming actel_profile() { return SelectMapTiming{}; }

  /// Host-PCI profile (SLAAC-1V injection testbed). Calibrated so that one
  /// injection iteration — corrupt-frame write + observation window + repair
  /// write — lands near the paper's 214 us (§III-A: "a single bit can be
  /// modified and loaded in 100 us", total loop 214 us).
  static SelectMapTiming pci_profile() {
    SelectMapTiming t;
    t.op_overhead = SimTime::microseconds(87);
    t.frame_overhead = SimTime::microseconds(9.5);
    return t;
  }
};

/// Accumulates configuration-port activity time for one device.
class SelectMapPort {
 public:
  SelectMapPort(const ConfigSpace* space, SelectMapTiming timing)
      : space_(space), timing_(timing) {}

  const SelectMapTiming& timing() const { return timing_; }
  SimTime elapsed() const { return elapsed_; }
  void reset_elapsed() { elapsed_ = SimTime{}; }

  /// Time cost of reading back / writing one frame.
  SimTime frame_cost(const FrameAddress& fa) const {
    const u32 bytes = (space_->frame_bits(fa.kind) + 7) / 8;
    return timing_.frame_op(bytes);
  }

  void charge_frame(const FrameAddress& fa) { elapsed_ += frame_cost(fa); }
  void charge(SimTime t) { elapsed_ += t; }

  /// Time to read back every frame of the device (one scrub pass of one
  /// device, before CRC compare overheads).
  SimTime full_readback_cost() const;

 private:
  const ConfigSpace* space_;
  SelectMapTiming timing_;
  SimTime elapsed_;
};

}  // namespace vscrub
