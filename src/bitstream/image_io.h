// Configuration-image files: the on-disk form of what the payload's FLASH
// module stores ("more than twenty configuration bit streams", §II). The
// format embeds the device geometry and a CRC-32 trailer so a corrupted
// image is rejected at load time.
#pragma once

#include <string>

#include "bitstream/bitstream.h"

namespace vscrub {

/// Writes `image` to `path` (format: magic "VSCB1", geometry header,
/// frame payload, CRC-32 trailer). Throws Error on I/O failure.
void save_bitstream(const Bitstream& image, const std::string& path);

struct LoadedImage {
  DeviceGeometry geometry;
  Bitstream bits;
};

/// Loads an image, reconstructing its ConfigSpace from the embedded
/// geometry. Throws Error on I/O failure, bad magic, or CRC mismatch.
LoadedImage load_bitstream(const std::string& path);

/// Loads an image that must match an existing ConfigSpace (e.g. to
/// partially reconfigure a live device). Throws on geometry mismatch.
Bitstream load_bitstream(std::shared_ptr<const ConfigSpace> space,
                         const std::string& path);

}  // namespace vscrub
