#include "bitstream/selectmap.h"

namespace vscrub {

TransferResult SelectMapPort::transfer(const FrameAddress& fa) {
  TransferResult result;
  ++link_stats_.transfers;
  if (!faults_.enabled()) {
    result.cost = frame_cost(fa);
    return result;
  }
  for (u32 attempt = 0; attempt <= faults_.max_transfer_retries; ++attempt) {
    if (attempt > 0) {
      result.cost += faults_.backoff_base * (i64{1} << (attempt - 1));
    }
    result.attempts = attempt + 1;
    if (!rng_.bernoulli(faults_.transfer_timeout_prob)) {
      result.cost += frame_cost(fa);
      return result;
    }
    ++link_stats_.timeouts;
    result.cost += faults_.timeout_cost;
  }
  ++link_stats_.retries_exhausted;
  result.ok = false;
  return result;
}

bool SelectMapPort::corrupt_readback(BitVector& data) {
  if (faults_.readback_flip_prob <= 0.0 || data.size() == 0) return false;
  if (!rng_.bernoulli(faults_.readback_flip_prob)) return false;
  data.flip(static_cast<std::size_t>(rng_.uniform(data.size())));
  ++link_stats_.noise_flips;
  return true;
}

SimTime SelectMapPort::full_readback_cost() const {
  SimTime total;
  for (u32 gf = 0; gf < space_->frame_count(); ++gf) {
    total += frame_cost(space_->frame_of_global(gf));
  }
  return total;
}

}  // namespace vscrub
