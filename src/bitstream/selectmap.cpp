#include "bitstream/selectmap.h"

namespace vscrub {

SimTime SelectMapPort::full_readback_cost() const {
  SimTime total;
  for (u32 gf = 0; gf < space_->frame_count(); ++gf) {
    total += frame_cost(space_->frame_of_global(gf));
  }
  return total;
}

}  // namespace vscrub
