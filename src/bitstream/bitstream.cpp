#include "bitstream/bitstream.h"

namespace vscrub {

Bitstream::Bitstream(std::shared_ptr<const ConfigSpace> space)
    : space_(std::move(space)) {
  VSCRUB_CHECK(space_ != nullptr, "Bitstream needs a ConfigSpace");
  const u32 n = space_->frame_count();
  frames_.reserve(n);
  for (u32 gf = 0; gf < n; ++gf) {
    const FrameAddress fa = space_->frame_of_global(gf);
    frames_.emplace_back(space_->frame_bits(fa.kind));
  }
}

u64 Bitstream::read_tile_field(TileCoord t, FieldKind kind, u8 unit,
                               unsigned nbits) const {
  u64 value = 0;
  for (unsigned b = 0; b < nbits; ++b) {
    const u16 tb = ConfigSpace::tile_bit_of_field(kind, unit, static_cast<u8>(b));
    if (get_bit(space_->address_of(t, tb))) value |= u64{1} << b;
  }
  return value;
}

void Bitstream::write_tile_field(TileCoord t, FieldKind kind, u8 unit,
                                 unsigned nbits, u64 value) {
  for (unsigned b = 0; b < nbits; ++b) {
    const u16 tb = ConfigSpace::tile_bit_of_field(kind, unit, static_cast<u8>(b));
    set_bit(space_->address_of(t, tb), (value >> b) & 1);
  }
}

BitAddress Bitstream::bram_content_address(u16 bram_col, u16 block, u16 bit) const {
  VSCRUB_CHECK(bram_col < space_->geometry().bram_columns, "BRAM column out of range");
  VSCRUB_CHECK(block < space_->geometry().bram_blocks_per_column(),
               "BRAM block out of range");
  VSCRUB_CHECK(bit < kBramBitsPerBlock, "BRAM content bit out of range");
  // Frame f holds bits f*64 .. f*64+63 of every block, at offset block*64+k.
  BitAddress addr;
  addr.frame = FrameAddress{ColumnKind::kBram, bram_col,
                            static_cast<u16>(bit / 64)};
  addr.offset = static_cast<u32>(block) * 64 + (bit % 64);
  return addr;
}

bool Bitstream::bram_content_bit(u16 bram_col, u16 block, u16 bit) const {
  return get_bit(bram_content_address(bram_col, block, bit));
}

void Bitstream::set_bram_content_bit(u16 bram_col, u16 block, u16 bit, bool v) {
  set_bit(bram_content_address(bram_col, block, bit), v);
}

u8 Bitstream::bram_config(u16 bram_col, u16 block) const {
  const FrameAddress fa{ColumnKind::kBram, bram_col, kBramContentFrames};
  u8 cfg = 0;
  for (int b = 0; b < kBramConfigBitsPerBlock; ++b) {
    if (frame(fa).get(static_cast<u32>(block) * 64 + static_cast<u32>(b))) {
      cfg |= static_cast<u8>(1u << b);
    }
  }
  return cfg;
}

void Bitstream::set_bram_config(u16 bram_col, u16 block, u8 cfg) {
  const FrameAddress fa{ColumnKind::kBram, bram_col, kBramContentFrames};
  for (int b = 0; b < kBramConfigBitsPerBlock; ++b) {
    frame(fa).set(static_cast<u32>(block) * 64 + static_cast<u32>(b),
                  (cfg >> b) & 1);
  }
}

std::vector<u32> Bitstream::differing_frames(const Bitstream& other) const {
  VSCRUB_CHECK(frames_.size() == other.frames_.size(), "bitstream size mismatch");
  std::vector<u32> result;
  for (u32 gf = 0; gf < frames_.size(); ++gf) {
    if (!(frames_[gf] == other.frames_[gf])) result.push_back(gf);
  }
  return result;
}

}  // namespace vscrub
