// Architectural constants of the Virtex-class fabric model.
//
// The model follows the structure the paper depends on:
//  * CLBs with 2 slices, each slice 2 LUT4 + 2 FFs (Virtex slice).
//  * 96 single-length wires per CLB, 24 per direction, of which 20 per
//    direction are driven through the CLB output multiplexer (paper §II-B:
//    "Each CLB has 96 wires, with 24 in each of four directions. Twenty of
//    the wires are part of an output multiplexer.").
//  * Configuration organized in frames, 48 per CLB column, with the LUT
//    truth bits of slice `s` confined to frames s*16 .. s*16+15 (paper §IV-A:
//    using a LUT as RAM in one slice makes "16 out of the 48 configuration
//    data frames for that CLB column" unreadable; both slices -> 32/48).
//  * Unconnected resource inputs read a hidden per-site half-latch
//    (paper §III-C, Fig. 13) that is initialized only by the full
//    configuration startup sequence.
#pragma once

#include "common/types.h"

namespace vscrub {

// ---- CLB internals ---------------------------------------------------------
inline constexpr int kSlicesPerClb = 2;
inline constexpr int kLutsPerSlice = 2;
inline constexpr int kLutsPerClb = kSlicesPerClb * kLutsPerSlice;  // 4
inline constexpr int kLutInputs = 4;
inline constexpr int kLutTruthBits = 16;
inline constexpr int kFfsPerClb = 4;   // one FF paired with each LUT site
inline constexpr int kClbOutputs = 8;  // per slice: X, Y (comb), XQ, YQ (reg)

// ---- Routing ---------------------------------------------------------------
enum class Dir : u8 { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };
inline constexpr int kDirs = 4;
inline constexpr int kWiresPerDir = 24;
inline constexpr int kWiresPerClb = kDirs * kWiresPerDir;  // 96
inline constexpr int kOmuxWiresPerDir = 20;  // wires 0..19 accept CLB outputs

constexpr Dir opposite(Dir d) {
  return static_cast<Dir>((static_cast<int>(d) + 2) & 3);
}

// ---- Input multiplexers (IMUX pins) ----------------------------------------
// Per-CLB input pins, each with a 7-bit source code:
//   0..15  LUT input pins:      pin = lut*4 + input
//   16..17 clock-enable (CE) per slice
//   18..19 synchronous-reset (SR) per slice
//   20..23 FF bypass-D (BX/BY) per FF
//   24..27 IOPAD observation pins (meaningful on any tile; the test harness
//          taps them as design outputs, standing in for IOB routing)
inline constexpr int kImuxPins = 28;
inline constexpr int kImuxBits = 7;

inline constexpr int kPinLutBase = 0;
inline constexpr int kPinCeBase = 16;
inline constexpr int kPinSrBase = 18;
inline constexpr int kPinBypBase = 20;
inline constexpr int kPinIopadBase = 24;

constexpr int lut_input_pin(int lut, int input) { return kPinLutBase + lut * kLutInputs + input; }
constexpr int ce_pin(int slice) { return kPinCeBase + slice; }
constexpr int sr_pin(int slice) { return kPinSrBase + slice; }
constexpr int byp_pin(int ff) { return kPinBypBase + ff; }
constexpr int iopad_pin(int i) { return kPinIopadBase + i; }

/// The value a pin's half-latch holds after the full-configuration startup
/// sequence (paper Fig. 14(c): "all half-latches in the device are
/// initialized to the proper state"). CE and LUT inputs idle high (enabled /
/// logic-1 constant), SR and bypass idle low (reset inactive).
constexpr bool halflatch_startup_value(int pin) {
  if (pin >= kPinSrBase && pin < kPinBypBase) return false;  // SR
  if (pin >= kPinBypBase && pin < kPinIopadBase) return false;  // BYP
  if (pin >= kPinIopadBase) return false;                       // IOPAD
  return true;  // LUT inputs and CE
}

// ---- Output multiplexers (wire source codes) --------------------------------
inline constexpr int kOmuxBits = 5;

// ---- LUT site modes ---------------------------------------------------------
enum class LutMode : u8 {
  kLut = 0,    ///< combinational lookup table / ROM
  kSrl16 = 1,  ///< 16-bit shift register (dynamic: truth bits shift at runtime)
  kRam16 = 2,  ///< 16x1 distributed RAM (dynamic: truth bits written at runtime)
  // code 3 decodes as kLut (alias); arbitrary corrupt bit patterns must
  // always decode to *some* behaviour.
};

// ---- Per-tile configuration budget ------------------------------------------
inline constexpr int kFramesPerClbColumn = 48;
inline constexpr int kBitsPerTilePerFrame = 16;
inline constexpr int kTileConfigBits = kFramesPerClbColumn * kBitsPerTilePerFrame;  // 768

// Field widths making up the 762 meaningful tile bits (6 bits/tile padding):
//   LUT truth   4*16 = 64
//   LUT mode    4*2  = 8
//   FF cfg      4*3  = 12  (init, used, d-source)
//   slice ctrl  2*1  = 2   (clock enable of the slice's FFs)
//   IMUX        28*7 = 196
//   OMUX        96*5 = 480

// ---- BRAM -------------------------------------------------------------------
inline constexpr int kBramBitsPerBlock = 4096;  // 256 x 16
inline constexpr int kBramWords = 256;
inline constexpr int kBramWidth = 16;
inline constexpr int kBramContentFrames = 64;  // 64 bits of each block per frame
inline constexpr int kBramConfigBitsPerBlock = 8;
inline constexpr int kBramFramesPerColumn = kBramContentFrames + 1;  // +1 config frame

}  // namespace vscrub
