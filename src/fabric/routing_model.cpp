#include "fabric/routing_model.h"

#include <array>

#include "common/types.h"

namespace vscrub {
namespace {

// Incoming-wire candidate for slot k on out-wire (dir, windex). The rotation
// pattern mixes directions and indices so multi-hop routes can change lanes,
// like a real switch matrix.
WireSource incoming_candidate(Dir dir, int windex, int k) {
  WireSource src;
  src.kind = WireSource::Kind::kIncoming;
  src.from_dir = static_cast<Dir>((static_cast<int>(dir) + 1 + (k & 3)) & 3);
  src.windex = static_cast<u8>((windex + 1 + (k >> 2)) % kWiresPerDir);
  return src;
}

}  // namespace

WireSource decode_omux(Dir dir, int windex, u8 code) {
  WireSource src;
  if (code == 0) return src;  // kNone
  if (windex < kOmuxWiresPerDir) {
    if (code <= kClbOutputs) {
      src.kind = WireSource::Kind::kClbOutput;
      src.output = static_cast<u8>(code - 1);
      return src;
    }
    return incoming_candidate(dir, windex, code - 1 - kClbOutputs);
  }
  return incoming_candidate(dir, windex, code - 1);
}

PinSource decode_imux(u8 code) {
  PinSource src;
  if (code == 0 || code >= 105) return src;  // kHalfLatch
  if (code <= kWiresPerClb) {
    src.kind = PinSource::Kind::kIncoming;
    src.from_dir = static_cast<Dir>((code - 1) / kWiresPerDir);
    src.windex = static_cast<u8>((code - 1) % kWiresPerDir);
    return src;
  }
  src.kind = PinSource::Kind::kClbOutput;
  src.output = static_cast<u8>(code - 1 - kWiresPerClb);
  return src;
}

std::optional<u8> encode_omux(Dir dir, int windex, const WireSource& src) {
  const int max_code = (1 << kOmuxBits) - 1;
  for (int code = 0; code <= max_code; ++code) {
    if (decode_omux(dir, windex, static_cast<u8>(code)) == src) {
      return static_cast<u8>(code);
    }
  }
  return std::nullopt;
}

u8 encode_imux(const PinSource& src) {
  switch (src.kind) {
    case PinSource::Kind::kHalfLatch:
      return 0;
    case PinSource::Kind::kIncoming:
      return static_cast<u8>(1 + static_cast<int>(src.from_dir) * kWiresPerDir +
                             src.windex);
    case PinSource::Kind::kClbOutput:
      return static_cast<u8>(1 + kWiresPerClb + src.output);
  }
  return 0;
}

namespace {

struct ReverseTables {
  // [from_dir][windex] -> consumers
  std::array<std::array<std::vector<OmuxSlot>, kWiresPerDir>, kDirs> incoming;
  std::array<std::vector<OmuxSlot>, kClbOutputs> outputs;

  ReverseTables() {
    for (int d = 0; d < kDirs; ++d) {
      for (int w = 0; w < kWiresPerDir; ++w) {
        const int max_code = (1 << kOmuxBits) - 1;
        for (int code = 1; code <= max_code; ++code) {
          const WireSource src =
              decode_omux(static_cast<Dir>(d), w, static_cast<u8>(code));
          const OmuxSlot slot{static_cast<Dir>(d), static_cast<u8>(w),
                              static_cast<u8>(code)};
          if (src.kind == WireSource::Kind::kIncoming) {
            incoming[static_cast<std::size_t>(static_cast<int>(src.from_dir))]
                    [src.windex].push_back(slot);
          } else if (src.kind == WireSource::Kind::kClbOutput) {
            outputs[src.output].push_back(slot);
          }
        }
      }
    }
  }
};

const ReverseTables& reverse_tables() {
  static const ReverseTables tables;
  return tables;
}

}  // namespace

const std::vector<OmuxSlot>& omux_consumers_of_incoming(Dir from_dir, int windex) {
  return reverse_tables()
      .incoming[static_cast<std::size_t>(static_cast<int>(from_dir))]
               [static_cast<std::size_t>(windex)];
}

const std::vector<OmuxSlot>& omux_consumers_of_output(int output) {
  return reverse_tables().outputs[static_cast<std::size_t>(output)];
}

}  // namespace vscrub
