// Pure semantics of the routing configuration codes: what each OMUX (wire
// source) and IMUX (pin source) code means, and the reverse tables the
// router uses to enumerate candidates. Position-independent: the same code
// means the same relative connection at every tile.
#pragma once

#include <optional>
#include <vector>

#include "fabric/arch.h"

namespace vscrub {

/// Source selected by an out-wire's 5-bit OMUX code.
struct WireSource {
  enum class Kind : u8 { kNone, kClbOutput, kIncoming };
  Kind kind = Kind::kNone;
  u8 output = 0;    ///< CLB output index 0..7 (kind == kClbOutput)
  Dir from_dir = Dir::kNorth;  ///< incoming wire origin (kind == kIncoming)
  u8 windex = 0;    ///< incoming wire index 0..23 (kind == kIncoming)

  bool operator==(const WireSource&) const = default;
};

/// Source selected by a pin's 7-bit IMUX code.
struct PinSource {
  enum class Kind : u8 { kHalfLatch, kIncoming, kClbOutput };
  Kind kind = Kind::kHalfLatch;
  Dir from_dir = Dir::kNorth;
  u8 windex = 0;
  u8 output = 0;

  bool operator==(const PinSource&) const = default;
};

/// Decodes the source of out-wire (dir, windex) under `code`.
/// Wires 0..kOmuxWiresPerDir-1 accept CLB outputs (codes 1..8) plus 23
/// incoming wires; wires 20..23 accept only incoming wires (31 candidates) —
/// these are the paper's "remaining four wires in each direction that are
/// not part of the output multiplexer".
WireSource decode_omux(Dir dir, int windex, u8 code);

/// Decodes a pin's source. Code 0 and codes >= 105 select no driver: the pin
/// reads its half-latch (paper Fig. 13). Codes 1..96 select incoming wires,
/// 97..104 the tile's own CLB outputs (local feedback).
PinSource decode_imux(u8 code);

/// Inverse of decode_omux: the code that selects `src` on (dir, windex), if
/// that connection exists in the switch pattern.
std::optional<u8> encode_omux(Dir dir, int windex, const WireSource& src);

/// Inverse of decode_imux. kHalfLatch encodes as 0.
u8 encode_imux(const PinSource& src);

/// Router adjacency: all (dir, windex, code) out-wire slots that can consume
/// incoming wire (from_dir, windex). Static, shared by all tiles.
struct OmuxSlot {
  Dir dir;
  u8 windex;
  u8 code;
};
const std::vector<OmuxSlot>& omux_consumers_of_incoming(Dir from_dir, int windex);

/// All out-wire slots a CLB output can drive (the 20 OMUX wires per
/// direction).
const std::vector<OmuxSlot>& omux_consumers_of_output(int output);

}  // namespace vscrub
