// ConfigSpace: the bidirectional map between configuration-bit *addresses*
// (column, frame, offset — what the SelectMAP port manipulates) and
// configuration-bit *meanings* (which LUT truth bit, which routing-mux code
// bit — what determines fabric behaviour).
//
// Everything downstream hangs off this map: bitgen writes fields through it,
// the simulator decodes frames through it, the SEU injector enumerates it,
// and the scrubber's frame-masking logic queries which frames hold dynamic
// LUT state.
#pragma once

#include <array>

#include "common/types.h"
#include "fabric/arch.h"
#include "fabric/geometry.h"

namespace vscrub {

enum class FieldKind : u8 {
  kLutTruth,    ///< unit = lut 0..3, bit = truth-table bit 0..15
  kLutMode,     ///< unit = lut 0..3, bit = 0..1
  kFfInit,      ///< unit = ff 0..3
  kFfUsed,      ///< unit = ff 0..3 (1: registered output, 0: site unused)
  kFfDSrc,      ///< unit = ff 0..3 (0: D from paired LUT, 1: D from bypass pin)
  kSliceClkEn,  ///< unit = slice 0..1 (gates the slice's FF clock)
  kImux,        ///< unit = pin 0..27, bit = code bit 0..6
  kOmux,        ///< unit = dir*24+windex 0..95, bit = code bit 0..4
  kPad,         ///< unused filler (insensitive by construction)
};

struct BitMeaning {
  FieldKind kind = FieldKind::kPad;
  u8 unit = 0;
  u8 bit = 0;
};

enum class ColumnKind : u8 { kClb = 0, kBram = 1 };

/// Frame address, the granularity of readback and partial reconfiguration.
struct FrameAddress {
  ColumnKind kind = ColumnKind::kClb;
  u16 col = 0;    ///< CLB column 0..cols-1, or BRAM column 0..bram_columns-1
  u16 frame = 0;  ///< frame within the column
  constexpr auto operator<=>(const FrameAddress&) const = default;
};

/// A single configuration bit.
struct BitAddress {
  FrameAddress frame;
  u32 offset = 0;  ///< bit offset within the frame
  constexpr auto operator<=>(const BitAddress&) const = default;
};

class ConfigSpace {
 public:
  explicit ConfigSpace(DeviceGeometry geom);

  const DeviceGeometry& geometry() const { return geom_; }

  // ---- Tile-local layout (geometry-independent) -----------------------------
  struct TilePos {
    u16 frame = 0;  ///< frame within the CLB column, 0..47
    u16 slot = 0;   ///< bit slot within the tile's 16-bit row window, 0..15
  };
  /// Meaning of tile-local configuration bit `tile_bit` (0..767).
  static const BitMeaning& meaning_of_tile_bit(u16 tile_bit);
  /// Where tile bit `tile_bit` lives within the column's frames.
  static TilePos tile_bit_pos(u16 tile_bit);
  /// Inverse: tile bit at (frame-in-column, slot), or -1 for padding.
  static int tile_bit_at(u16 frame_in_col, u16 slot);
  /// Tile-local bit index of a field (first bit of multi-bit fields).
  static u16 tile_bit_of_field(FieldKind kind, u8 unit, u8 bit = 0);

  // ---- Device-level addressing ----------------------------------------------
  BitAddress address_of(TileCoord t, u16 tile_bit) const;

  struct TileRef {
    bool valid = false;
    TileCoord tile;
    u16 tile_bit = 0;
  };
  /// Which tile/bit a CLB-column bit address refers to (invalid for padding
  /// slots and BRAM columns).
  TileRef tile_ref_of(const BitAddress& addr) const;

  u32 frame_bits(ColumnKind kind) const;
  u32 frame_count() const { return geom_.total_frames(); }
  u32 global_frame_index(const FrameAddress& fa) const;
  FrameAddress frame_of_global(u32 global_frame) const;

  u64 total_bits() const { return geom_.total_config_bits(); }
  u64 linear_of(const BitAddress& addr) const;
  BitAddress address_of_linear(u64 linear) const;

  /// True if the given CLB-column frame carries LUT truth bits of slice `s`
  /// (frames s*16 .. s*16+15). The scrubber uses this to mask frames covering
  /// LUT sites used as SRL16/RAM16 (paper §IV-A: 16/48 frames per slice).
  static bool frame_holds_slice_lut_bits(u16 frame_in_col, int slice) {
    return frame_in_col >= slice * kLutTruthBits &&
           frame_in_col < (slice + 1) * kLutTruthBits;
  }

 private:
  DeviceGeometry geom_;
};

}  // namespace vscrub
