// Device geometry: the CLB array, BRAM columns, frame counts and sizes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "fabric/arch.h"

namespace vscrub {

/// Coordinates of a CLB tile. Row 0 is the top (north) edge, column 0 the
/// west edge.
struct TileCoord {
  u16 row = 0;
  u16 col = 0;
  constexpr auto operator<=>(const TileCoord&) const = default;
};

struct DeviceGeometry {
  std::string name;
  u16 rows = 0;        ///< CLB rows
  u16 cols = 0;        ///< CLB columns
  u16 bram_columns = 0;  ///< dedicated BRAM columns (0 or 2: west & east edges)
  u16 frame_pad_slots = 2;  ///< extra 16-bit row-slots per CLB frame (IOB/clock
                            ///< overhead region; insensitive in this model)

  u32 tile_count() const { return static_cast<u32>(rows) * cols; }
  u32 tile_index(TileCoord t) const { return static_cast<u32>(t.row) * cols + t.col; }
  TileCoord tile_coord(u32 index) const {
    return TileCoord{static_cast<u16>(index / cols), static_cast<u16>(index % cols)};
  }
  bool contains(int row, int col) const {
    return row >= 0 && col >= 0 && row < rows && col < cols;
  }

  /// Neighbor in direction `d`, or nullopt at the device edge.
  std::optional<TileCoord> neighbor(TileCoord t, Dir d) const;

  // -- Frame geometry ---------------------------------------------------------
  /// Bits per CLB-column frame: one 16-bit slot per CLB row plus padding slots.
  u32 clb_frame_bits() const {
    return (static_cast<u32>(rows) + frame_pad_slots) * kBitsPerTilePerFrame;
  }
  u32 clb_frame_bytes() const { return (clb_frame_bits() + 7) / 8; }
  u32 clb_frame_count() const { return static_cast<u32>(cols) * kFramesPerClbColumn; }

  u16 bram_blocks_per_column() const { return static_cast<u16>(rows / 4); }
  u32 bram_frame_bits() const {
    return static_cast<u32>(bram_blocks_per_column()) * 64;
  }
  u32 bram_frame_count() const {
    return static_cast<u32>(bram_columns) * kBramFramesPerColumn;
  }

  u32 total_frames() const { return clb_frame_count() + bram_frame_count(); }
  u64 total_config_bits() const {
    return static_cast<u64>(clb_frame_count()) * clb_frame_bits() +
           static_cast<u64>(bram_frame_count()) * bram_frame_bits();
  }

  u32 slice_count() const { return tile_count() * kSlicesPerClb; }
  u32 halflatch_site_count() const { return tile_count() * kImuxPins; }
};

/// Device presets. The "-ish" suffix marks them as behavioural analogues of
/// the Xilinx parts, sized to give comparable slice counts and configuration
/// volumes (XCV1000ish: 6144 CLBs / 12288 slices, ~4.9M config bits, 156-byte
/// frames like the XQVR1000's).
DeviceGeometry device_xcv50ish();
DeviceGeometry device_xcv100ish();
DeviceGeometry device_xcv300ish();
DeviceGeometry device_xcv1000ish();
/// Small parts for unit tests and fast campaigns.
DeviceGeometry device_tiny(u16 rows, u16 cols, u16 bram_columns = 0);

}  // namespace vscrub
