#include "fabric/config_space.h"

#include <array>

namespace vscrub {
namespace {

struct TileLayout {
  std::array<BitMeaning, kTileConfigBits> meanings;          // by tile bit
  std::array<ConfigSpace::TilePos, kTileConfigBits> pos;     // by tile bit
  std::array<std::array<int, kBitsPerTilePerFrame>, kFramesPerClbColumn>
      bit_at;  // (frame, slot) -> tile bit, or -1
  // first tile bit of each field instance, for tile_bit_of_field
  std::array<u16, kLutsPerClb> lut_truth_base;
  std::array<u16, kLutsPerClb> lut_mode_base;
  std::array<u16, kFfsPerClb> ff_init_base;
  std::array<u16, kFfsPerClb> ff_used_base;
  std::array<u16, kFfsPerClb> ff_dsrc_base;
  std::array<u16, kSlicesPerClb> slice_clk_base;
  std::array<u16, kImuxPins> imux_base;
  std::array<u16, kWiresPerClb> omux_base;
};

TileLayout make_tile_layout() {
  TileLayout layout;
  for (auto& row : layout.bit_at) row.fill(-1);
  // Every tile bit defaults to padding until assigned.
  for (auto& m : layout.meanings) m = BitMeaning{FieldKind::kPad, 0, 0};

  u16 next_tile_bit = 0;
  std::array<std::array<bool, kBitsPerTilePerFrame>, kFramesPerClbColumn>
      taken{};

  auto place = [&](BitMeaning meaning, ConfigSpace::TilePos p) -> u16 {
    const u16 tb = next_tile_bit++;
    layout.meanings[tb] = meaning;
    layout.pos[tb] = p;
    layout.bit_at[p.frame][p.slot] = tb;
    taken[p.frame][p.slot] = true;
    return tb;
  };

  // 1. LUT truth bits at their architecturally-constrained positions: bit j
  //    of the LUTs in slice s lives in frame s*16+j, slots 0 (lut s*2) and
  //    1 (lut s*2+1).
  for (int lut = 0; lut < kLutsPerClb; ++lut) {
    const int slice = lut / kLutsPerSlice;
    for (int j = 0; j < kLutTruthBits; ++j) {
      const ConfigSpace::TilePos p{
          static_cast<u16>(slice * kLutTruthBits + j),
          static_cast<u16>(lut % kLutsPerSlice)};
      const u16 tb = place(BitMeaning{FieldKind::kLutTruth,
                                      static_cast<u8>(lut),
                                      static_cast<u8>(j)},
                           p);
      if (j == 0) layout.lut_truth_base[static_cast<std::size_t>(lut)] = tb;
    }
  }

  // 2. All remaining fields fill the free (frame, slot) positions in scan
  //    order.
  u16 scan_frame = 0;
  u16 scan_slot = 0;
  auto next_free = [&]() -> ConfigSpace::TilePos {
    while (taken[scan_frame][scan_slot]) {
      if (++scan_slot == kBitsPerTilePerFrame) {
        scan_slot = 0;
        ++scan_frame;
      }
    }
    const ConfigSpace::TilePos p{scan_frame, scan_slot};
    if (++scan_slot == kBitsPerTilePerFrame) {
      scan_slot = 0;
      ++scan_frame;
    }
    return p;
  };

  for (int lut = 0; lut < kLutsPerClb; ++lut) {
    for (int b = 0; b < 2; ++b) {
      const u16 tb = place(BitMeaning{FieldKind::kLutMode, static_cast<u8>(lut),
                                      static_cast<u8>(b)},
                           next_free());
      if (b == 0) layout.lut_mode_base[static_cast<std::size_t>(lut)] = tb;
    }
  }
  for (int ff = 0; ff < kFfsPerClb; ++ff) {
    layout.ff_init_base[static_cast<std::size_t>(ff)] =
        place(BitMeaning{FieldKind::kFfInit, static_cast<u8>(ff), 0}, next_free());
    layout.ff_used_base[static_cast<std::size_t>(ff)] =
        place(BitMeaning{FieldKind::kFfUsed, static_cast<u8>(ff), 0}, next_free());
    layout.ff_dsrc_base[static_cast<std::size_t>(ff)] =
        place(BitMeaning{FieldKind::kFfDSrc, static_cast<u8>(ff), 0}, next_free());
  }
  for (int s = 0; s < kSlicesPerClb; ++s) {
    layout.slice_clk_base[static_cast<std::size_t>(s)] =
        place(BitMeaning{FieldKind::kSliceClkEn, static_cast<u8>(s), 0},
              next_free());
  }
  for (int pin = 0; pin < kImuxPins; ++pin) {
    for (int b = 0; b < kImuxBits; ++b) {
      const u16 tb = place(BitMeaning{FieldKind::kImux, static_cast<u8>(pin),
                                      static_cast<u8>(b)},
                           next_free());
      if (b == 0) layout.imux_base[static_cast<std::size_t>(pin)] = tb;
    }
  }
  for (int wire = 0; wire < kWiresPerClb; ++wire) {
    for (int b = 0; b < kOmuxBits; ++b) {
      const u16 tb = place(BitMeaning{FieldKind::kOmux, static_cast<u8>(wire),
                                      static_cast<u8>(b)},
                           next_free());
      if (b == 0) layout.omux_base[static_cast<std::size_t>(wire)] = tb;
    }
  }

  // 3. Remaining positions are explicit padding bits.
  while (next_tile_bit < kTileConfigBits) {
    place(BitMeaning{FieldKind::kPad, 0, 0}, next_free());
  }
  return layout;
}

const TileLayout& tile_layout() {
  static const TileLayout layout = make_tile_layout();
  return layout;
}

}  // namespace

ConfigSpace::ConfigSpace(DeviceGeometry geom) : geom_(std::move(geom)) {
  (void)tile_layout();  // force table construction up front
}

const BitMeaning& ConfigSpace::meaning_of_tile_bit(u16 tile_bit) {
  VSCRUB_CHECK(tile_bit < kTileConfigBits, "tile bit out of range");
  return tile_layout().meanings[tile_bit];
}

ConfigSpace::TilePos ConfigSpace::tile_bit_pos(u16 tile_bit) {
  VSCRUB_CHECK(tile_bit < kTileConfigBits, "tile bit out of range");
  return tile_layout().pos[tile_bit];
}

int ConfigSpace::tile_bit_at(u16 frame_in_col, u16 slot) {
  VSCRUB_CHECK(frame_in_col < kFramesPerClbColumn && slot < kBitsPerTilePerFrame,
               "tile position out of range");
  return tile_layout().bit_at[frame_in_col][slot];
}

u16 ConfigSpace::tile_bit_of_field(FieldKind kind, u8 unit, u8 bit) {
  const TileLayout& layout = tile_layout();
  switch (kind) {
    case FieldKind::kLutTruth: return static_cast<u16>(layout.lut_truth_base[unit] + bit);
    case FieldKind::kLutMode: return static_cast<u16>(layout.lut_mode_base[unit] + bit);
    case FieldKind::kFfInit: return layout.ff_init_base[unit];
    case FieldKind::kFfUsed: return layout.ff_used_base[unit];
    case FieldKind::kFfDSrc: return layout.ff_dsrc_base[unit];
    case FieldKind::kSliceClkEn: return layout.slice_clk_base[unit];
    case FieldKind::kImux: return static_cast<u16>(layout.imux_base[unit] + bit);
    case FieldKind::kOmux: return static_cast<u16>(layout.omux_base[unit] + bit);
    case FieldKind::kPad: break;
  }
  throw Error("tile_bit_of_field: no address for padding");
}

BitAddress ConfigSpace::address_of(TileCoord t, u16 tile_bit) const {
  VSCRUB_CHECK(t.row < geom_.rows && t.col < geom_.cols, "tile out of range");
  const TilePos p = tile_bit_pos(tile_bit);
  BitAddress addr;
  addr.frame = FrameAddress{ColumnKind::kClb, t.col, p.frame};
  addr.offset = static_cast<u32>(t.row) * kBitsPerTilePerFrame + p.slot;
  return addr;
}

ConfigSpace::TileRef ConfigSpace::tile_ref_of(const BitAddress& addr) const {
  TileRef ref;
  if (addr.frame.kind != ColumnKind::kClb) return ref;
  const u32 row = addr.offset / kBitsPerTilePerFrame;
  const u16 slot = static_cast<u16>(addr.offset % kBitsPerTilePerFrame);
  if (row >= geom_.rows) return ref;  // frame padding region
  const int tb = tile_bit_at(addr.frame.frame, slot);
  if (tb < 0) return ref;
  ref.valid = true;
  ref.tile = TileCoord{static_cast<u16>(row), addr.frame.col};
  ref.tile_bit = static_cast<u16>(tb);
  return ref;
}

u32 ConfigSpace::frame_bits(ColumnKind kind) const {
  return kind == ColumnKind::kClb ? geom_.clb_frame_bits()
                                  : geom_.bram_frame_bits();
}

u32 ConfigSpace::global_frame_index(const FrameAddress& fa) const {
  if (fa.kind == ColumnKind::kClb) {
    VSCRUB_CHECK(fa.col < geom_.cols && fa.frame < kFramesPerClbColumn,
                 "CLB frame address out of range");
    return static_cast<u32>(fa.col) * kFramesPerClbColumn + fa.frame;
  }
  VSCRUB_CHECK(fa.col < geom_.bram_columns && fa.frame < kBramFramesPerColumn,
               "BRAM frame address out of range");
  return geom_.clb_frame_count() +
         static_cast<u32>(fa.col) * kBramFramesPerColumn + fa.frame;
}

FrameAddress ConfigSpace::frame_of_global(u32 global_frame) const {
  if (global_frame < geom_.clb_frame_count()) {
    return FrameAddress{ColumnKind::kClb,
                        static_cast<u16>(global_frame / kFramesPerClbColumn),
                        static_cast<u16>(global_frame % kFramesPerClbColumn)};
  }
  const u32 b = global_frame - geom_.clb_frame_count();
  VSCRUB_CHECK(b < geom_.bram_frame_count(), "global frame out of range");
  return FrameAddress{ColumnKind::kBram,
                      static_cast<u16>(b / kBramFramesPerColumn),
                      static_cast<u16>(b % kBramFramesPerColumn)};
}

u64 ConfigSpace::linear_of(const BitAddress& addr) const {
  VSCRUB_CHECK(addr.offset < frame_bits(addr.frame.kind),
               "bit offset exceeds frame size");
  if (addr.frame.kind == ColumnKind::kClb) {
    return static_cast<u64>(global_frame_index(addr.frame)) *
               geom_.clb_frame_bits() +
           addr.offset;
  }
  const u64 clb_bits =
      static_cast<u64>(geom_.clb_frame_count()) * geom_.clb_frame_bits();
  const u32 bram_frame = global_frame_index(addr.frame) - geom_.clb_frame_count();
  return clb_bits +
         static_cast<u64>(bram_frame) * geom_.bram_frame_bits() + addr.offset;
}

BitAddress ConfigSpace::address_of_linear(u64 linear) const {
  const u64 clb_bits =
      static_cast<u64>(geom_.clb_frame_count()) * geom_.clb_frame_bits();
  BitAddress addr;
  if (linear < clb_bits) {
    const u32 gf = static_cast<u32>(linear / geom_.clb_frame_bits());
    addr.frame = frame_of_global(gf);
    addr.offset = static_cast<u32>(linear % geom_.clb_frame_bits());
    return addr;
  }
  const u64 rest = linear - clb_bits;
  VSCRUB_CHECK(geom_.bram_frame_bits() > 0 &&
                   rest < static_cast<u64>(geom_.bram_frame_count()) *
                              geom_.bram_frame_bits(),
               "linear bit index out of range");
  const u32 bf = static_cast<u32>(rest / geom_.bram_frame_bits());
  addr.frame = frame_of_global(geom_.clb_frame_count() + bf);
  addr.offset = static_cast<u32>(rest % geom_.bram_frame_bits());
  return addr;
}

}  // namespace vscrub
