#include "fabric/geometry.h"

namespace vscrub {

std::optional<TileCoord> DeviceGeometry::neighbor(TileCoord t, Dir d) const {
  int row = t.row;
  int col = t.col;
  switch (d) {
    case Dir::kNorth: --row; break;
    case Dir::kSouth: ++row; break;
    case Dir::kEast: ++col; break;
    case Dir::kWest: --col; break;
  }
  if (!contains(row, col)) return std::nullopt;
  return TileCoord{static_cast<u16>(row), static_cast<u16>(col)};
}

DeviceGeometry device_xcv50ish() {
  return DeviceGeometry{.name = "XCV50ish", .rows = 16, .cols = 24,
                        .bram_columns = 2, .frame_pad_slots = 2};
}

DeviceGeometry device_xcv100ish() {
  return DeviceGeometry{.name = "XCV100ish", .rows = 20, .cols = 30,
                        .bram_columns = 2, .frame_pad_slots = 2};
}

DeviceGeometry device_xcv300ish() {
  return DeviceGeometry{.name = "XCV300ish", .rows = 32, .cols = 48,
                        .bram_columns = 2, .frame_pad_slots = 2};
}

DeviceGeometry device_xcv1000ish() {
  // 64 rows + 14 pad slots -> (64+14)*16 = 1248 bits = 156 bytes per frame,
  // matching the XQVR1000 frame size quoted in the paper (§II-A).
  return DeviceGeometry{.name = "XCV1000ish", .rows = 64, .cols = 96,
                        .bram_columns = 2, .frame_pad_slots = 14};
}

DeviceGeometry device_tiny(u16 rows, u16 cols, u16 bram_columns) {
  VSCRUB_CHECK(rows >= 4 && cols >= 4, "tiny device must be at least 4x4");
  VSCRUB_CHECK(rows % 4 == 0, "rows must be a multiple of 4 (BRAM banding)");
  return DeviceGeometry{.name = "tiny", .rows = rows, .cols = cols,
                        .bram_columns = bram_columns, .frame_pad_slots = 2};
}

}  // namespace vscrub
