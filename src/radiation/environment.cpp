#include "radiation/environment.h"

#include <cmath>

namespace vscrub {

double WeibullCrossSection::at(double let) const {
  if (let <= threshold_let) return 0.0;
  const double x = (let - threshold_let) / width;
  return sat_cross_section * (1.0 - std::exp(-std::pow(x, shape)));
}

OrbitEnvironment OrbitEnvironment::leo_quiet() {
  OrbitEnvironment env;
  env.name = "LEO quiet";
  // 9 devices * 5.81e6 bits * r * 3600 = 1.2/h  =>  r ≈ 6.38e-12 /bit/s
  env.upset_rate_per_bit_s =
      1.2 / (9.0 * static_cast<double>(kXcv1000PaperBits) * 3600.0);
  return env;
}

OrbitEnvironment OrbitEnvironment::leo_solar_flare() {
  OrbitEnvironment env;
  env.name = "LEO solar flare";
  env.upset_rate_per_bit_s =
      9.6 / (9.0 * static_cast<double>(kXcv1000PaperBits) * 3600.0);
  return env;
}

}  // namespace vscrub
