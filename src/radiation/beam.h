// Proton-beam test session (paper §III-B, Figs. 11 & 12): the design runs at
// speed in the beam; the flux is servoed so ~one upset lands per 0.5 s
// observation; DUT and golden outputs are compared continuously; bitstream
// readback runs at intervals, repairing detected upsets by partial
// reconfiguration; both designs are reset when an output error occurs.
//
// Unlike the SEU simulator, the beam strikes the *physical* cross-section:
// mostly configuration SRAM, but also hidden state — half-latches and the
// configuration control logic — which readback cannot see and partial
// reconfiguration cannot repair (§III-C). That residue is exactly what
// limits the simulator-vs-beam correlation to ~97.6%.
#pragma once

#include <unordered_set>

#include "common/rng.h"
#include "pnr/placed_design.h"
#include "sim/harness.h"

namespace vscrub {

struct BeamOptions {
  double proton_energy_mev = 63.3;  ///< Crocker cyclotron energy (Fig. 11)
  double observation_s = 0.5;
  double target_upsets_per_observation = 1.0;
  double design_clock_hz = 20e6;
  /// Simulated design cycles per observation (sub-sampled; modeled time is
  /// exact).
  u32 sim_cycles_per_observation = 96;
  u32 warmup_cycles = 48;
  /// Fraction of the physical upset cross-section in hidden state (the
  /// paper's configuration bits cover 99.58% of the sensitive cross-section).
  double hidden_state_fraction = 0.0042;
  /// Of hidden-state upsets, the fraction striking the configuration
  /// control logic ("the device becomes unprogrammed") vs half-latches.
  double config_logic_fraction = 0.05;
  /// Per-observation probability that a flipped half-latch spontaneously
  /// recovers (observed during proton testing, §III-C).
  double halflatch_recovery_prob = 0.05;
  /// Consecutive error observations before the operator performs a full
  /// reconfiguration (the only reliable half-latch recovery).
  u32 full_reconfig_after_errors = 3;
  u64 seed = 2026;
  u64 stim_seed = 7;
};

struct BeamResult {
  u64 observations = 0;
  u64 upsets_total = 0;
  u64 upsets_config = 0;
  u64 upsets_halflatch = 0;
  u64 upsets_config_logic = 0;

  u64 output_error_observations = 0;
  u64 predicted_errors = 0;    ///< errors attributable to simulator-predicted bits
  u64 unpredicted_errors = 0;  ///< errors with only hidden-state causes outstanding

  u64 bitstream_errors_detected = 0;
  u64 repairs = 0;
  u64 resets = 0;
  u64 full_reconfigs = 0;
  u64 unprogrammed_events = 0;

  SimTime beam_time;
  SimTime loop_iteration_time;  ///< one compare/readback iteration (~430 us)
  double fluence_protons_cm2 = 0.0;

  /// §III-B: fraction of beam-observed output errors that the SEU simulator
  /// predicted.
  double correlation() const {
    return output_error_observations
               ? static_cast<double>(predicted_errors) /
                     static_cast<double>(output_error_observations)
               : 1.0;
  }
};

class BeamSession {
 public:
  BeamSession(const PlacedDesign& design, const BeamOptions& options);

  /// Runs `observations` observation intervals against the set of
  /// configuration bits (linear indices) the SEU simulator flagged as
  /// sensitive. When `config_bit_universe` is non-empty, beam strikes are
  /// drawn from that subset of configuration bits instead of the whole
  /// device — statistically equivalent shape at a fraction of the campaign
  /// cost, provided `predicted_sensitive` was computed over the same
  /// universe.
  BeamResult run(u64 observations,
                 const std::unordered_set<u64>& predicted_sensitive,
                 const std::vector<u64>& config_bit_universe = {});

 private:
  void full_reconfigure();

  const PlacedDesign* design_;
  BeamOptions options_;
  FabricSim dut_sim_;
  FabricSim golden_sim_;
  DesignHarness dut_;
  DesignHarness golden_;
  Rng rng_;
};

}  // namespace vscrub
