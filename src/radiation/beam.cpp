#include "radiation/beam.h"

#include <algorithm>
#include <vector>

#include "bitstream/selectmap.h"
#include "radiation/environment.h"

namespace vscrub {

BeamSession::BeamSession(const PlacedDesign& design, const BeamOptions& options)
    : design_(&design),
      options_(options),
      dut_sim_(design.space),
      golden_sim_(design.space),
      dut_(design, dut_sim_, options.stim_seed),
      golden_(design, golden_sim_, options.stim_seed),
      rng_(options.seed) {
  dut_.configure();
  golden_.configure();
}

void BeamSession::full_reconfigure() {
  // Full reconfiguration with the startup sequence: restores configuration,
  // half-latches and FF init state (the only reliable half-latch recovery,
  // §III-C). Both designs restart together.
  dut_.configure();
  golden_.configure();
}

BeamResult BeamSession::run(u64 observations,
                            const std::unordered_set<u64>& predicted_sensitive,
                            const std::vector<u64>& config_bit_universe) {
  const ConfigSpace& space = *design_->space;
  const DeviceGeometry& geom = space.geometry();
  BeamResult result;

  // Outstanding (un-repaired) upsets, plus upsets repaired since the last
  // reset: a repaired configuration upset can leave persistent state
  // corruption whose output error only surfaces later (the paper matched
  // beam errors to upsets by timestamp/location analysis; the
  // recently-repaired list is that attribution).
  std::vector<u64> outstanding_config;        // linear bit indices
  std::vector<u64> repaired_since_reset;
  struct LatchHit {
    TileCoord tile;
    u8 pin;
  };
  std::vector<LatchHit> outstanding_latches;
  u32 consecutive_error_obs = 0;

  // Effective per-bit proton cross-section; only the product
  // flux*sigma*bits matters, and the flux servo pins it to the target rate.
  const double total_sites = static_cast<double>(space.total_bits()) /
                             (1.0 - options_.hidden_state_fraction);
  const double sigma_site = 1.3e-14;  // cm^2, typical proton sigma per bit
  const double flux = options_.target_upsets_per_observation /
                      (options_.observation_s * sigma_site * total_sites);

  // Run-in before the beam: flush SRL/pipeline state so comparisons are
  // meaningful from the first observation.
  for (u32 t = 0; t < options_.warmup_cycles; ++t) {
    dut_.step();
    golden_.step();
  }

  for (u64 obs = 0; obs < observations; ++obs) {
    ++result.observations;
    result.beam_time += SimTime::seconds(options_.observation_s);
    result.fluence_protons_cm2 += flux * options_.observation_s;

    // --- Beam strikes during this observation -------------------------------
    const u64 upsets = rng_.poisson(options_.target_upsets_per_observation);
    for (u64 u = 0; u < upsets; ++u) {
      ++result.upsets_total;
      if (rng_.uniform01() < options_.hidden_state_fraction) {
        if (rng_.uniform01() < options_.config_logic_fraction) {
          // Configuration state machine hit: "the device becomes
          // unprogrammed" (§III-C) — detected immediately, full reconfig.
          ++result.upsets_config_logic;
          ++result.unprogrammed_events;
          ++result.full_reconfigs;
          full_reconfigure();
          outstanding_config.clear();
          outstanding_latches.clear();
          repaired_since_reset.clear();
          consecutive_error_obs = 0;
          continue;
        }
        ++result.upsets_halflatch;
        const u32 t = static_cast<u32>(rng_.uniform(geom.tile_count()));
        const u8 pin = static_cast<u8>(rng_.uniform(kImuxPins));
        const TileCoord tile = geom.tile_coord(t);
        dut_sim_.flip_halflatch(tile, pin);
        outstanding_latches.push_back({tile, pin});
      } else {
        ++result.upsets_config;
        const u64 lin =
            config_bit_universe.empty()
                ? rng_.uniform(space.total_bits())
                : config_bit_universe[rng_.uniform(config_bit_universe.size())];
        dut_sim_.flip_config_bit(space.address_of_linear(lin));
        outstanding_config.push_back(lin);
      }
    }

    // --- Run at speed, comparing DUT vs golden every cycle ------------------
    bool output_error = false;
    for (u32 t = 0; t < options_.sim_cycles_per_observation; ++t) {
      dut_.step();
      golden_.step();
      if (!(dut_.last_outputs() == golden_.last_outputs())) {
        output_error = true;
        break;
      }
    }

    if (output_error) {
      ++result.output_error_observations;
      // Attribution: if any outstanding config upset is simulator-predicted
      // sensitive, the simulator predicted this error; otherwise only hidden
      // state can explain it.
      const auto is_predicted = [&](u64 lin) {
        return predicted_sensitive.count(lin) != 0;
      };
      const bool predicted =
          std::any_of(outstanding_config.begin(), outstanding_config.end(),
                      is_predicted) ||
          std::any_of(repaired_since_reset.begin(),
                      repaired_since_reset.end(), is_predicted);
      if (predicted) {
        ++result.predicted_errors;
      } else {
        ++result.unpredicted_errors;
      }
      ++consecutive_error_obs;
    } else {
      consecutive_error_obs = 0;
    }

    // --- Readback scan: detect & repair bitstream upsets ---------------------
    // A real readback pass compares *every* frame, so collateral corruption
    // (e.g. a flipped LutMode bit letting live LUT cells shift away) is
    // found and repaired along with the struck bits themselves.
    if (!outstanding_config.empty()) {
      const auto frame_masked = [&](const FrameAddress& fa) {
        if (fa.kind != ColumnKind::kClb) return true;  // BRAM: no readback
        for (const LutSiteRef& site : design_->dynamic_lut_sites) {
          if (site.tile.col == fa.col &&
              ConfigSpace::frame_holds_slice_lut_bits(
                  fa.frame, site.lut / kLutsPerSlice)) {
            return true;
          }
        }
        return false;
      };
      for (u64 lin : outstanding_config) {
        ++result.bitstream_errors_detected;
        repaired_since_reset.push_back(lin);
        // Upsets landing in BRAM columns (no reliable readback) are
        // repaired blind from the golden image.
        const BitAddress addr = space.address_of_linear(lin);
        if (addr.frame.kind == ColumnKind::kBram) {
          dut_sim_.write_frame(addr.frame, design_->bitstream.frame(addr.frame));
          ++result.repairs;
        }
      }
      for (u32 gf = 0; gf < space.frame_count(); ++gf) {
        const FrameAddress fa = space.frame_of_global(gf);
        if (fa.kind == ColumnKind::kBram) continue;
        const BitVector live = dut_sim_.read_frame(fa);
        BitVector golden_frame = design_->bitstream.frame(fa);
        if (frame_masked(fa)) {
          // §IV read-modify-write: preserve live dynamic LUT bits.
          for (const LutSiteRef& site : design_->dynamic_lut_sites) {
            if (site.tile.col != fa.col ||
                !ConfigSpace::frame_holds_slice_lut_bits(
                    fa.frame, site.lut / kLutsPerSlice)) {
              continue;
            }
            const u32 offset =
                static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
                static_cast<u32>(site.lut % kLutsPerSlice);
            golden_frame.set(offset, live.get(offset));
          }
        }
        if (!(live == golden_frame)) {
          dut_sim_.write_frame(fa, golden_frame);
          ++result.repairs;
        }
      }
      outstanding_config.clear();
    }

    // --- Spontaneous half-latch recovery (stochastic, §III-C) ----------------
    for (auto it = outstanding_latches.begin(); it != outstanding_latches.end();) {
      if (rng_.uniform01() < options_.halflatch_recovery_prob) {
        dut_sim_.set_halflatch(it->tile, it->pin,
                               halflatch_startup_value(it->pin));
        it = outstanding_latches.erase(it);
      } else {
        ++it;
      }
    }

    // --- Reset on output error (Fig. 12); operator full-reconfig if errors
    //     keep recurring (half-latch damage partial config cannot repair) ----
    if (output_error) {
      if (consecutive_error_obs >= options_.full_reconfig_after_errors) {
        ++result.full_reconfigs;
        full_reconfigure();
        outstanding_latches.clear();
        consecutive_error_obs = 0;
      } else {
        dut_.restart();
        golden_.restart();
        ++result.resets;
      }
      repaired_since_reset.clear();
      // Flush again after reset so the next observation compares settled
      // outputs.
      for (u32 t = 0; t < options_.warmup_cycles; ++t) {
        dut_.step();
        golden_.step();
      }
    }
  }

  // One compare/readback loop iteration (paper: ~430 us): one frame readback
  // + compare + logging on the PCI path.
  const SelectMapPort port(design_->space.get(),
                           SelectMapTiming::pci_profile());
  result.loop_iteration_time =
      port.frame_cost(FrameAddress{ColumnKind::kClb, 0, 0}) * i64{2} +
      SimTime::microseconds(215);
  return result;
}

}  // namespace vscrub
