#include "radiation/heavy_ion.h"

namespace vscrub {

HeavyIonSession::HeavyIonSession(const PlacedDesign& design,
                                 const HeavyIonOptions& options)
    : design_(&design),
      options_(options),
      fabric_(design.space),
      rng_(options.seed) {
  fabric_.full_configure(design.bitstream);
}

HeavyIonRunResult HeavyIonSession::expose(double let) {
  HeavyIonRunResult result;
  result.let = let;
  result.latchup = let > options_.sel_immune_to_let && rng_.bernoulli(0.5);

  const ConfigSpace& space = *design_->space;
  const double sigma_bit = options_.response.at(let);
  const double mean_upsets = sigma_bit * options_.fluence_per_run *
                             static_cast<double>(space.total_bits());
  const u64 upsets = rng_.poisson(mean_upsets);
  for (u64 u = 0; u < upsets; ++u) {
    fabric_.flip_config_bit(
        space.address_of_linear(rng_.uniform(space.total_bits())));
  }
  // Post-exposure readback census: count corrupted bits (static test —
  // upsets are observed by configuration comparison, not by output errors).
  u64 observed = 0;
  for (u32 gf = 0; gf < space.frame_count(); ++gf) {
    const FrameAddress fa = space.frame_of_global(gf);
    observed += fabric_.read_frame(fa).hamming_distance(
        design_->bitstream.frame(gf));
  }
  result.upsets = observed;
  // Reconfigure for the next exposure.
  fabric_.full_configure(design_->bitstream);
  return result;
}

std::vector<HeavyIonRunResult> HeavyIonSession::sweep(
    const std::vector<double>& lets) {
  std::vector<HeavyIonRunResult> runs;
  runs.reserve(lets.size());
  for (double let : lets) runs.push_back(expose(let));
  return runs;
}

}  // namespace vscrub
