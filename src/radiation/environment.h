// Radiation environment models (paper §I and §III-B).
//
// Heavy-ion response follows the standard Weibull fit with the paper's
// measured parameters: threshold LET 1.2 MeV·cm²/mg, saturation
// cross-section 8.0e-8 cm² (per-bit average). Orbit-average upset rates are
// calibrated to the paper's operational numbers for the nine-FPGA system:
// 1.2 upsets/hour in quiet low-Earth orbit and 9.6 upsets/hour during solar
// flares.
#pragma once

#include <string>

#include "common/types.h"

namespace vscrub {

/// Weibull single-event upset cross-section (cm²/bit) vs LET (MeV·cm²/mg).
struct WeibullCrossSection {
  double threshold_let = 1.2;  ///< onset LET (paper §I)
  double sat_cross_section = 8.0e-8;  ///< cm², saturation (paper §I)
  double width = 20.0;   ///< Weibull width parameter
  double shape = 1.5;    ///< Weibull shape parameter

  double at(double let) const;
};

struct OrbitEnvironment {
  std::string name;
  /// Effective upsets per device-bit per second (all species folded in).
  double upset_rate_per_bit_s = 0.0;

  /// Calibrated so that 9 XCV1000-class devices see ~1.2 upsets/hour.
  static OrbitEnvironment leo_quiet();
  /// ~9.6 upsets/hour for the nine-FPGA system (paper §I).
  static OrbitEnvironment leo_solar_flare();

  double device_upsets_per_hour(u64 device_bits) const {
    return upset_rate_per_bit_s * static_cast<double>(device_bits) * 3600.0;
  }
  double system_upsets_per_hour(u64 device_bits, int devices) const {
    return device_upsets_per_hour(device_bits) * devices;
  }
};

/// Reference bit count used for the calibration (XCV1000 bitstream,
/// paper §III-A: "the entire bitstream of 5.8 million bits").
inline constexpr u64 kXcv1000PaperBits = 5'810'048;

}  // namespace vscrub
