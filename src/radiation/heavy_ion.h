// Heavy-ion characterization (paper §I / [1]): linear-accelerator testing
// sweeps LET to measure the Weibull SEU response and confirm single-event
// latchup immunity. Where the proton BeamSession exercises the *dynamic*
// methodology (Fig. 12), this module reproduces the static device
// characterization the paper's rate numbers come from.
#pragma once

#include "common/rng.h"
#include "pnr/placed_design.h"
#include "radiation/environment.h"
#include "sim/fabric_sim.h"

namespace vscrub {

struct HeavyIonOptions {
  WeibullCrossSection response;
  /// Device SEL immunity bound (paper: XQVR parts on epitaxial wafers are
  /// latchup-immune to LET 125 MeV·cm²/mg).
  double sel_immune_to_let = 125.0;
  /// Particle fluence per exposure (ions/cm²). With the per-bit saturation
  /// cross-section of 8e-8 cm², a 61k-bit test device sees ~50 upsets per
  /// 1e4 ions/cm² at saturation.
  double fluence_per_run = 1e4;
  u64 seed = 7;
};

struct HeavyIonRunResult {
  double let = 0.0;
  u64 upsets = 0;
  bool latchup = false;  ///< never below the SEL immunity bound
  /// Measured cross-section: upsets / fluence, per bit.
  double measured_sigma_per_bit(u64 device_bits, double fluence) const {
    return static_cast<double>(upsets) /
           (fluence * static_cast<double>(device_bits));
  }
};

/// Static heavy-ion exposure: the device is configured but not clocked
/// ("static testing", §III). Upsets land in configuration bits at the
/// Weibull rate for the chosen LET; the run reports the observed upset
/// count, from which the measured cross-section is derived.
class HeavyIonSession {
 public:
  HeavyIonSession(const PlacedDesign& design, const HeavyIonOptions& options);

  HeavyIonRunResult expose(double let);
  /// Sweeps LET values and returns one run per point (fresh configuration
  /// each exposure).
  std::vector<HeavyIonRunResult> sweep(const std::vector<double>& lets);

 private:
  const PlacedDesign* design_;
  HeavyIonOptions options_;
  FabricSim fabric_;
  Rng rng_;
};

}  // namespace vscrub
