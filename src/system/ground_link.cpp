#include "system/ground_link.h"

namespace vscrub {

u64 GroundLink::image_bytes(const Bitstream& image) {
  u64 bytes = 0;
  for (u32 gf = 0; gf < image.frame_count(); ++gf) {
    bytes += (image.frame(gf).size() + 7) / 8;
  }
  return bytes;
}

SimTime GroundLink::upload_time(const Bitstream& image) const {
  const double bits = static_cast<double>(image_bytes(image)) * 8.0;
  return options_.command_overhead +
         SimTime::seconds(bits / options_.uplink_bps);
}

SimTime GroundLink::soh_downlink_time(std::size_t records,
                                      std::size_t record_bytes) const {
  const double bits =
      static_cast<double>(records) * static_cast<double>(record_bytes) * 8.0;
  return options_.command_overhead +
         SimTime::seconds(bits / options_.downlink_bps);
}

std::size_t ConfigLibrary::add_image(const Bitstream& image) {
  const u64 bytes = GroundLink::image_bytes(image);
  VSCRUB_CHECK(used_ + bytes <= capacity_,
               "flash configuration library is full");
  used_ += bytes;
  // Reuse a freed slot if one exists.
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    if (sizes_[i] == 0) {
      sizes_[i] = bytes;
      return i;
    }
  }
  sizes_.push_back(bytes);
  return sizes_.size() - 1;
}

void ConfigLibrary::remove_image(std::size_t slot) {
  VSCRUB_CHECK(slot < sizes_.size() && sizes_[slot] != 0,
               "no image in that slot");
  used_ -= sizes_[slot];
  sizes_[slot] = 0;
}

u64 ConfigLibrary::remaining_capacity_for(const Bitstream& image) const {
  const u64 bytes = GroundLink::image_bytes(image);
  return bytes == 0 ? 0 : free_bytes() / bytes;
}

}  // namespace vscrub
