#include "system/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace vscrub {

FleetResult run_fleet(const PlacedDesign& design,
                      const std::unordered_set<u64>& sensitive_bits,
                      const FleetOptions& options) {
  FleetResult result;
  result.reports.resize(options.missions);
  result.traces.resize(options.capture_traces ? options.missions : 0);

  ThreadPool pool(options.threads);
  // One mission per work item: missions vary in cost (upset counts differ by
  // seed), so the chunked work queue load-balances better than static shards.
  pool.parallel_chunks(options.missions, /*chunk_size=*/1,
                       [&](u64 begin, u64 end, unsigned) {
                         for (u64 i = begin; i < end; ++i) {
                           PayloadOptions po = options.payload;
                           po.seed = options.base_seed + i;
                           po.metrics = nullptr;
                           EventTrace trace;
                           po.trace =
                               options.capture_traces ? &trace : nullptr;
                           Payload payload(design, po, sensitive_bits);
                           result.reports[i] =
                               payload.run_mission(options.duration);
                           if (options.capture_traces) {
                             result.traces[i] = trace.joined();
                           }
                         }
                       });

  // Aggregate from the index-ordered reports (deterministic for any thread
  // count or completion order).
  Histogram latency;
  double avail_sum = 0.0;
  double avail_sq_sum = 0.0;
  double corrupted_ms_sum = 0.0;
  double bandwidth_sum = 0.0;
  for (const MissionReport& r : result.reports) {
    avail_sum += r.availability;
    avail_sq_sum += r.availability * r.availability;
    for (const double ms : r.detection_latency_ms) latency.record(ms);
    result.upsets_total += r.upsets_total;
    result.detected += r.detected;
    result.repaired += r.repaired;
    result.resets += r.resets;
    result.functional_upsets += r.functional_upsets;
    corrupted_ms_sum += r.mttr_ms * static_cast<double>(r.functional_upsets);
    bandwidth_sum += r.scrub_bandwidth_bytes_per_s;
    result.false_alarms += r.false_alarms;
    result.false_repairs += r.false_repairs;
    result.scrub_transfer_timeouts += r.scrub_transfer_timeouts;
    result.scrub_retries_exhausted += r.scrub_retries_exhausted;
    result.flash_escalations += r.flash_escalations;
    result.ecc_fallback_repairs += r.ecc_fallback_repairs;
  }
  if (result.functional_upsets > 0) {
    result.mttr_ms =
        corrupted_ms_sum / static_cast<double>(result.functional_upsets);
  }
  if (options.missions > 0) {
    result.scrub_bandwidth_bytes_per_s =
        bandwidth_sum / static_cast<double>(options.missions);
  }
  const double n = static_cast<double>(options.missions);
  if (options.missions > 0) result.availability_mean = avail_sum / n;
  if (options.missions > 1) {
    const double var = std::max(
        0.0, (avail_sq_sum - avail_sum * avail_sum / n) / (n - 1.0));
    result.availability_ci95 = 1.96 * std::sqrt(var / n);
  }
  result.detection_latency_p50_ms = latency.percentile(50.0);
  result.detection_latency_p99_ms = latency.percentile(99.0);
  return result;
}

void fill_fleet_metrics(const FleetResult& result, MetricsRegistry& metrics) {
  metrics.counter("fleet_missions").add(result.reports.size());
  metrics.counter("fleet_upsets").add(result.upsets_total);
  metrics.counter("fleet_detected").add(result.detected);
  metrics.counter("fleet_repaired").add(result.repaired);
  metrics.counter("fleet_resets").add(result.resets);
  metrics.counter("fleet_false_alarms").add(result.false_alarms);
  metrics.counter("fleet_false_repairs").add(result.false_repairs);
  metrics.counter("fleet_transfer_timeouts")
      .add(result.scrub_transfer_timeouts);
  metrics.counter("fleet_retries_exhausted")
      .add(result.scrub_retries_exhausted);
  metrics.counter("fleet_flash_escalations").add(result.flash_escalations);
  metrics.counter("fleet_ecc_fallback_repairs")
      .add(result.ecc_fallback_repairs);
  metrics.counter("fleet_functional_upsets").add(result.functional_upsets);
  metrics.set_gauge("fleet_availability_mean", result.availability_mean);
  metrics.set_gauge("fleet_availability_ci95", result.availability_ci95);
  metrics.set_gauge("fleet_mttr_ms", result.mttr_ms);
  metrics.set_gauge("fleet_scrub_bandwidth_bytes_per_s",
                    result.scrub_bandwidth_bytes_per_s);
  metrics.set_gauge("fleet_detection_latency_p50_ms",
                    result.detection_latency_p50_ms);
  metrics.set_gauge("fleet_detection_latency_p99_ms",
                    result.detection_latency_p99_ms);
  double avail_min = 1.0;
  for (const MissionReport& r : result.reports) {
    avail_min = std::min(avail_min, r.availability);
  }
  metrics.set_gauge("fleet_availability_min",
                    result.reports.empty() ? 0.0 : avail_min);
}

JsonReport fleet_report_json(const FleetResult& result) {
  MetricsRegistry metrics;
  fill_fleet_metrics(result, metrics);
  JsonReport report("fleet");
  report.add_metrics(metrics);
  return report;
}

JsonReport mission_report_json(const MetricsRegistry& metrics) {
  JsonReport report("mission");
  report.add_metrics(metrics);
  return report;
}

PolicyRaceResult run_policy_race(const PlacedDesign& design,
                                 const std::unordered_set<u64>& sensitive_bits,
                                 const PolicyRaceOptions& options) {
  const std::vector<std::string>& names =
      options.policies.empty() ? scrub_policy_names() : options.policies;
  // Resolve every name up front so a typo fails before any sweep runs.
  std::vector<ScrubPolicyPtr> policies;
  policies.reserve(names.size());
  for (const std::string& name : names) policies.push_back(make_scrub_policy(name));

  PolicyRaceResult result;
  result.entries.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    FleetOptions fo = options.fleet;
    fo.payload.scrub.policy = policies[i];
    PolicyRaceEntry entry;
    entry.policy = names[i];
    entry.fleet = run_fleet(design, sensitive_bits, fo);
    result.entries.push_back(std::move(entry));
  }
  return result;
}

JsonReport policy_race_report_json(const PolicyRaceResult& result) {
  JsonReport report("policy_race");
  report.set_u64("policies", result.entries.size());
  std::string names;
  for (const PolicyRaceEntry& e : result.entries) {
    names += names.empty() ? e.policy : "," + e.policy;
  }
  report.set_string("policy_names", names);
  for (const PolicyRaceEntry& e : result.entries) {
    const FleetResult& f = e.fleet;
    report.set(e.policy + "_availability_mean", f.availability_mean);
    report.set(e.policy + "_availability_ci95", f.availability_ci95);
    report.set(e.policy + "_mttr_ms", f.mttr_ms);
    report.set(e.policy + "_scrub_bandwidth_bytes_per_s",
               f.scrub_bandwidth_bytes_per_s);
    report.set(e.policy + "_detection_latency_p50_ms",
               f.detection_latency_p50_ms);
    report.set(e.policy + "_detection_latency_p99_ms",
               f.detection_latency_p99_ms);
    report.set_u64(e.policy + "_missions", f.reports.size());
    report.set_u64(e.policy + "_upsets", f.upsets_total);
    report.set_u64(e.policy + "_functional_upsets", f.functional_upsets);
    report.set_u64(e.policy + "_detected", f.detected);
    report.set_u64(e.policy + "_repaired", f.repaired);
    report.set_u64(e.policy + "_resets", f.resets);
    report.set_u64(e.policy + "_flash_escalations", f.flash_escalations);
    report.set_u64(e.policy + "_ecc_fallback_repairs",
                   f.ecc_fallback_repairs);
  }
  return report;
}

}  // namespace vscrub
