#include "system/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace vscrub {

FleetResult run_fleet(const PlacedDesign& design,
                      const std::unordered_set<u64>& sensitive_bits,
                      const FleetOptions& options) {
  FleetResult result;
  result.reports.resize(options.missions);
  result.traces.resize(options.capture_traces ? options.missions : 0);

  ThreadPool pool(options.threads);
  // One mission per work item: missions vary in cost (upset counts differ by
  // seed), so the chunked work queue load-balances better than static shards.
  pool.parallel_chunks(options.missions, /*chunk_size=*/1,
                       [&](u64 begin, u64 end, unsigned) {
                         for (u64 i = begin; i < end; ++i) {
                           PayloadOptions po = options.payload;
                           po.seed = options.base_seed + i;
                           po.metrics = nullptr;
                           EventTrace trace;
                           po.trace =
                               options.capture_traces ? &trace : nullptr;
                           Payload payload(design, po, sensitive_bits);
                           result.reports[i] =
                               payload.run_mission(options.duration);
                           if (options.capture_traces) {
                             result.traces[i] = trace.joined();
                           }
                         }
                       });

  // Aggregate from the index-ordered reports (deterministic for any thread
  // count or completion order).
  Histogram latency;
  double avail_sum = 0.0;
  double avail_sq_sum = 0.0;
  for (const MissionReport& r : result.reports) {
    avail_sum += r.availability;
    avail_sq_sum += r.availability * r.availability;
    for (const double ms : r.detection_latency_ms) latency.record(ms);
    result.upsets_total += r.upsets_total;
    result.detected += r.detected;
    result.repaired += r.repaired;
    result.resets += r.resets;
    result.false_alarms += r.false_alarms;
    result.false_repairs += r.false_repairs;
    result.scrub_transfer_timeouts += r.scrub_transfer_timeouts;
    result.scrub_retries_exhausted += r.scrub_retries_exhausted;
    result.flash_escalations += r.flash_escalations;
  }
  const double n = static_cast<double>(options.missions);
  if (options.missions > 0) result.availability_mean = avail_sum / n;
  if (options.missions > 1) {
    const double var = std::max(
        0.0, (avail_sq_sum - avail_sum * avail_sum / n) / (n - 1.0));
    result.availability_ci95 = 1.96 * std::sqrt(var / n);
  }
  result.detection_latency_p50_ms = latency.percentile(50.0);
  result.detection_latency_p99_ms = latency.percentile(99.0);
  return result;
}

void fill_fleet_metrics(const FleetResult& result, MetricsRegistry& metrics) {
  metrics.counter("fleet_missions").add(result.reports.size());
  metrics.counter("fleet_upsets").add(result.upsets_total);
  metrics.counter("fleet_detected").add(result.detected);
  metrics.counter("fleet_repaired").add(result.repaired);
  metrics.counter("fleet_resets").add(result.resets);
  metrics.counter("fleet_false_alarms").add(result.false_alarms);
  metrics.counter("fleet_false_repairs").add(result.false_repairs);
  metrics.counter("fleet_transfer_timeouts")
      .add(result.scrub_transfer_timeouts);
  metrics.counter("fleet_retries_exhausted")
      .add(result.scrub_retries_exhausted);
  metrics.counter("fleet_flash_escalations").add(result.flash_escalations);
  metrics.set_gauge("fleet_availability_mean", result.availability_mean);
  metrics.set_gauge("fleet_availability_ci95", result.availability_ci95);
  metrics.set_gauge("fleet_detection_latency_p50_ms",
                    result.detection_latency_p50_ms);
  metrics.set_gauge("fleet_detection_latency_p99_ms",
                    result.detection_latency_p99_ms);
  double avail_min = 1.0;
  for (const MissionReport& r : result.reports) {
    avail_min = std::min(avail_min, r.availability);
  }
  metrics.set_gauge("fleet_availability_min",
                    result.reports.empty() ? 0.0 : avail_min);
}

JsonReport fleet_report_json(const FleetResult& result) {
  MetricsRegistry metrics;
  fill_fleet_metrics(result, metrics);
  JsonReport report("fleet");
  report.add_metrics(metrics);
  return report;
}

JsonReport mission_report_json(const MetricsRegistry& metrics) {
  JsonReport report("mission");
  report.add_metrics(metrics);
  return report;
}

}  // namespace vscrub
