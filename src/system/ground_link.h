// Ground-station interface (paper §II): "The interface is used to send
// commands to the payload, upload configurations for the FPGAs, query state
// of health, and retrieve experimental data" over a 10 Mbit link; a
// configuration upload "requires one pass over a ground station". The 16 MB
// flash "stores more than twenty configuration bit streams for the Xilinx
// FPGAs (without compression)".
#pragma once

#include <vector>

#include "bitstream/bitstream.h"

namespace vscrub {

struct GroundLinkOptions {
  double uplink_bps = 10e6;    ///< 10 Mbit spacecraft interface (§II)
  double downlink_bps = 10e6;
  /// Usable contact time during one pass over the ground station.
  SimTime pass_duration = SimTime::seconds(600);
  /// Per-command protocol overhead.
  SimTime command_overhead = SimTime::milliseconds(50);
};

/// Link budget calculator for payload <-> ground-station transfers.
class GroundLink {
 public:
  explicit GroundLink(const GroundLinkOptions& options = {})
      : options_(options) {}

  /// Raw size of an image on the wire (uncompressed, as stored in flash).
  static u64 image_bytes(const Bitstream& image);

  SimTime upload_time(const Bitstream& image) const;
  bool upload_fits_in_pass(const Bitstream& image) const {
    return upload_time(image) <= options_.pass_duration;
  }
  /// State-of-health downlink: one fixed-size record per scrub event.
  SimTime soh_downlink_time(std::size_t records,
                            std::size_t record_bytes = 32) const;

  const GroundLinkOptions& options() const { return options_; }

 private:
  GroundLinkOptions options_;
};

/// The payload's configuration library: images resident in the 16 MB flash
/// module, uploadable from the ground.
class ConfigLibrary {
 public:
  explicit ConfigLibrary(u64 capacity_bytes = 16ull * 1024 * 1024)
      : capacity_(capacity_bytes) {}

  u64 capacity_bytes() const { return capacity_; }
  u64 used_bytes() const { return used_; }
  u64 free_bytes() const { return capacity_ - used_; }
  std::size_t image_count() const { return sizes_.size(); }

  /// Adds an image; returns its slot index. Throws Error when the flash is
  /// full.
  std::size_t add_image(const Bitstream& image);
  /// Frees a slot (images are stored uncompressed and contiguously in this
  /// model, so freeing simply returns the space).
  void remove_image(std::size_t slot);

  /// How many copies of `image` the remaining space could hold.
  u64 remaining_capacity_for(const Bitstream& image) const;

 private:
  u64 capacity_;
  u64 used_ = 0;
  std::vector<u64> sizes_;  ///< 0 = freed slot
};

}  // namespace vscrub
