#include "system/payload.h"

#include <algorithm>

#include "common/log.h"

namespace vscrub {

Payload::Payload(const PlacedDesign& design, PayloadOptions options,
                 std::unordered_set<u64> sensitive_bits)
    : design_(&design),
      options_(std::move(options)),
      sensitive_bits_(std::move(sensitive_bits)),
      flash_(design.bitstream),
      codebook_(design.bitstream),
      rng_(options_.seed) {
  // Mask dynamic frames in the codebook exactly as the scrubber does.
  if (options_.scrub.mask_dynamic_frames) {
    const ConfigSpace& space = *design_->space;
    for (const LutSiteRef& site : design_->dynamic_lut_sites) {
      const int slice = site.lut / kLutsPerSlice;
      for (int j = 0; j < kLutTruthBits; ++j) {
        codebook_.mask_frame(space.global_frame_index(FrameAddress{
            ColumnKind::kClb, site.tile.col,
            static_cast<u16>(slice * kLutTruthBits + j)}));
      }
    }
  }
  for (const HalfLatchUse& use : design_->halflatch_uses) {
    if (use.critical) {
      critical_latches_.insert(
          static_cast<u64>(design_->space->geometry().tile_index(use.tile)) *
              kImuxPins +
          use.pin);
    }
  }
  const int n = options_.boards * options_.fpgas_per_board;
  devices_.resize(static_cast<std::size_t>(n));
  for (auto& dev : devices_) {
    dev.sim = std::make_unique<FabricSim>(design.space);
    dev.sim->full_configure(design.bitstream);
  }
}

MissionReport Payload::run_mission(SimTime duration) {
  const ConfigSpace& space = *design_->space;
  const DeviceGeometry& geom = space.geometry();
  MissionReport report;
  report.duration = duration;
  report.devices = static_cast<int>(devices_.size());

  // Scrub rotation: the board's fault manager scans its three devices in
  // sequence; device d's frame g is visited once per board cycle.
  const SelectMapPort port(design_->space.get(), options_.scrub.timing);
  const SimTime device_pass = port.full_readback_cost();
  const SimTime board_cycle = device_pass * static_cast<i64>(options_.fpgas_per_board);
  report.scrub_cycle_per_board = board_cycle;

  const double per_device_rate_s =
      options_.environment.upset_rate_per_bit_s *
      static_cast<double>(space.total_bits()) /
      (1.0 - options_.hidden_state_fraction);
  report.predicted_upsets_per_hour =
      options_.environment.system_upsets_per_hour(space.total_bits(),
                                                  report.devices) /
      (1.0 - options_.hidden_state_fraction);

  // Visit time of (device, frame): within a board cycle, device slot
  // d_in_board starts at d*device_pass; frame g lands proportionally within
  // the device pass.
  auto next_visit = [&](std::size_t dev, u32 gf, SimTime now) -> SimTime {
    const int in_board = static_cast<int>(dev) % options_.fpgas_per_board;
    const double frac =
        (static_cast<double>(in_board) +
         static_cast<double>(gf) / static_cast<double>(space.frame_count())) /
        static_cast<double>(options_.fpgas_per_board);
    const double cycle_s = board_cycle.sec();
    const double now_s = now.sec();
    const double phase = frac * cycle_s;
    const double k = std::ceil((now_s - phase) / cycle_s);
    return SimTime::seconds(phase + std::max(0.0, k) * cycle_s);
  };

  double latency_sum_ms = 0.0;

  // Event queue built on the fly: march through upset arrivals; between
  // them, resolve pending detections.
  SimTime now;
  SimTime next_full_reconfig = options_.full_reconfig_interval.ps() > 0
                                   ? options_.full_reconfig_interval
                                   : SimTime::hours(1e9);

  struct Pending {
    std::size_t dev;
    std::size_t idx;  // into outstanding
    SimTime when;
  };

  auto resolve_until = [&](SimTime horizon) {
    // Repeatedly find the earliest pending detection before `horizon`.
    for (;;) {
      SimTime best = horizon;
      std::size_t best_dev = devices_.size();
      std::size_t best_idx = 0;
      for (std::size_t d = 0; d < devices_.size(); ++d) {
        for (std::size_t i = 0; i < devices_[d].outstanding.size(); ++i) {
          const auto& o = devices_[d].outstanding[i];
          if (!o.detectable) continue;
          const u32 gf = space.global_frame_index(
              space.address_of_linear(o.linear_bit).frame);
          const SimTime visit = next_visit(d, gf, o.at);
          if (visit < best) {
            best = visit;
            best_dev = d;
            best_idx = i;
          }
        }
      }
      if (best_dev == devices_.size()) break;
      // Execute the detection: real readback + CRC check + repair.
      Device& dev = devices_[best_dev];
      auto o = dev.outstanding[best_idx];
      const BitAddress addr = space.address_of_linear(o.linear_bit);
      const u32 gf = space.global_frame_index(addr.frame);
      const BitVector data = dev.sim->read_frame(addr.frame, true);
      VSCRUB_CHECK(!codebook_.check(gf, data),
                   "mission: CRC failed to flag a detectable upset");
      ++dev.report.detected;
      ++report.detected;
      dev.sim->write_frame(addr.frame, flash_.fetch_frame(gf));
      ++dev.report.repaired;
      ++report.repaired;
      if (options_.scrub.reset_after_repair) {
        dev.sim->reset();
        ++dev.report.resets;
        ++report.resets;
      }
      const double latency_ms = (best - o.at).ms() +
                                options_.scrub.error_handling_overhead.ms();
      latency_sum_ms += latency_ms;
      report.max_detection_latency_ms =
          std::max(report.max_detection_latency_ms, latency_ms);
      if (o.functional) {
        dev.report.corrupted_time += best - o.at;
      }
      dev.outstanding.erase(dev.outstanding.begin() +
                            static_cast<std::ptrdiff_t>(best_idx));
    }
  };

  auto full_reconfig_all = [&](SimTime when) {
    for (auto& dev : devices_) {
      // Account functional corruption up to the reconfiguration.
      for (const auto& o : dev.outstanding) {
        if (o.functional) dev.report.corrupted_time += when - o.at;
      }
      dev.outstanding.clear();
      dev.sim->full_configure(design_->bitstream);
    }
    ++report.full_reconfigs;
  };

  while (now < duration) {
    const double dt_s = rng_.exponential(
        per_device_rate_s * static_cast<double>(devices_.size()));
    SimTime next_upset = now + SimTime::seconds(dt_s);
    while (next_full_reconfig < next_upset && next_full_reconfig < duration) {
      resolve_until(next_full_reconfig);
      full_reconfig_all(next_full_reconfig);
      next_full_reconfig += options_.full_reconfig_interval;
    }
    if (next_upset >= duration) {
      resolve_until(duration);
      now = duration;
      break;
    }
    now = next_upset;
    resolve_until(now);

    // Place the upset.
    const std::size_t d = rng_.uniform(devices_.size());
    Device& dev = devices_[d];
    ++dev.report.upsets;
    ++report.upsets_total;
    Device::Outstanding o;
    o.at = now;
    if (rng_.uniform01() < options_.hidden_state_fraction) {
      o.hidden = true;
      ++dev.report.hidden_upsets;
      ++report.hidden_upsets;
      const u32 t = static_cast<u32>(rng_.uniform(geom.tile_count()));
      o.latch_tile = geom.tile_coord(t);
      o.latch_pin = static_cast<u8>(rng_.uniform(kImuxPins));
      dev.sim->flip_halflatch(o.latch_tile, o.latch_pin);
      o.functional = critical_latches_.count(
                         static_cast<u64>(t) * kImuxPins + o.latch_pin) != 0;
      o.detectable = false;  // invisible to readback (§III-C)
    } else {
      o.linear_bit = rng_.uniform(space.total_bits());
      const BitAddress addr = space.address_of_linear(o.linear_bit);
      dev.sim->flip_config_bit(addr);
      o.functional = sensitive_bits_.count(o.linear_bit) != 0;
      o.detectable =
          !codebook_.is_masked(space.global_frame_index(addr.frame));
    }
    dev.outstanding.push_back(o);
  }

  // Mission end: account whatever is still outstanding.
  for (auto& dev : devices_) {
    for (const auto& o : dev.outstanding) {
      if (o.functional) dev.report.corrupted_time += duration - o.at;
      ++dev.report.undetected_outstanding;
    }
  }

  SimTime corrupted_total;
  for (const auto& dev : devices_) corrupted_total += dev.report.corrupted_time;
  report.availability =
      1.0 - corrupted_total.sec() /
                (duration.sec() * static_cast<double>(devices_.size()));
  report.mean_detection_latency_ms =
      report.detected ? latency_sum_ms / static_cast<double>(report.detected)
                      : 0.0;
  report.observed_upsets_per_hour =
      static_cast<double>(report.upsets_total) / duration.sec() * 3600.0;
  report.scrub_passes =
      static_cast<u64>(duration.sec() / board_cycle.sec());
  report.flash_stats = flash_.stats();
  for (const auto& dev : devices_) report.per_device.push_back(dev.report);
  return report;
}

}  // namespace vscrub
